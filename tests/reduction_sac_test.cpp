// Theorem 4.2 property tests: the negation-free (positive Core XPath)
// reduction from SAC circuit value agrees with direct circuit evaluation;
// the query is genuinely negation-free; and the query size doubles per
// ∧-gate in the tower (the paper's exponential-in-depth growth, polynomial
// for SAC1's log depth).

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "reductions/sac_to_positive_core.hpp"
#include "xpath/fragment.hpp"

namespace gkx::reductions {
namespace {

using circuits::AllAssignments;
using circuits::Circuit;
using circuits::RandomSac;
using circuits::RandomSacOptions;
using eval::CoreLinearEvaluator;

bool ReductionAnswer(const CircuitReduction& instance) {
  CoreLinearEvaluator linear;
  auto nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
  EXPECT_TRUE(nodes.ok()) << nodes.status().ToString();
  return !nodes->empty();
}

TEST(SacReductionTest, TinyAndOfTwoInputs) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  circuit.AddAnd({a, b});
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = SacToPositiveCoreXPath(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(SacReductionTest, FanInOneAndGate) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  circuit.AddInput();
  circuit.AddAnd({a});  // single feed: both I-labels land on it
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = SacToPositiveCoreXPath(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(SacReductionTest, QueryIsPositiveCore) {
  Rng rng(31);
  RandomSacOptions options;
  options.num_inputs = 4;
  options.layers = 3;
  options.width = 3;
  Circuit circuit = RandomSac(&rng, options);
  CircuitReduction instance =
      SacToPositiveCoreXPath(circuit, {true, false, true, false});
  xpath::FragmentReport report = xpath::Classify(instance.query);
  EXPECT_TRUE(report.in_positive_core) << "must be negation-free Core XPath";
}

TEST(SacReductionTest, AndGatesDoubleQuerySize) {
  // A pure chain of AND gates: |Q| grows ~2x per gate (the paper's
  // "inserted twice at every ∧-step").
  Circuit chain;
  int32_t a = chain.AddInput();
  int32_t b = chain.AddInput();
  int32_t current = chain.AddAnd({a, b});
  std::vector<int> sizes;
  for (int depth = 0; depth < 4; ++depth) {
    CircuitReduction instance = SacToPositiveCoreXPath(chain, {true, true});
    sizes.push_back(instance.query.size());
    current = chain.AddAnd({current, b});
  }
  for (size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1] * 3 / 2) << i;
    EXPECT_LT(sizes[i], sizes[i - 1] * 3) << i;
  }
}

class SacPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SacPropertyTest, AgreesWithDirectEvaluation) {
  Rng rng(GetParam());
  RandomSacOptions options;
  options.num_inputs = 4;
  options.layers = 4;  // 2 AND layers in the alternation
  options.width = 3;
  for (int trial = 0; trial < 4; ++trial) {
    Circuit circuit = RandomSac(&rng, options);
    for (const auto& assignment : AllAssignments(4)) {
      CircuitReduction instance = SacToPositiveCoreXPath(circuit, assignment);
      ASSERT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment))
          << "seed=" << GetParam() << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SacPropertyTest, ::testing::Values(41, 43, 47));

TEST(SacReductionTest, PdaEvaluatorHandlesPositiveReduction) {
  // Positive Core XPath ⊆ pWF (Remark 5.2): the NAuxPDA engine must accept
  // and agree.
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  int32_t g = circuit.AddOr({a, b});
  circuit.AddAnd({g, a});
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = SacToPositiveCoreXPath(circuit, assignment);
    eval::PdaEvaluator pda;
    auto nodes = pda.EvaluateNodeSet(instance.doc, instance.query);
    ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
    EXPECT_EQ(!nodes->empty(), circuit.Evaluate(assignment));
  }
}

}  // namespace
}  // namespace gkx::reductions
