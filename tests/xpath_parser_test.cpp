// Lexer, parser, and printer tests: grammar coverage, operator precedence and
// the §3.7 lexical disambiguation, abbreviation expansion, targeted error
// messages, and print/parse round-trip stability.

#include <gtest/gtest.h>

#include "xpath/lexer.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::xpath {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("/child::a[position() = 2]");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kSlash, TokenKind::kName, TokenKind::kDoubleColon,
                TokenKind::kName, TokenKind::kLBracket, TokenKind::kName,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kEq,
                TokenKind::kNumber, TokenKind::kRBracket, TokenKind::kEof}));
}

TEST(LexerTest, StarDisambiguation) {
  // '*' after '::' is a wildcard; after an operand it is multiplication.
  auto wildcard = Tokenize("child::*");
  ASSERT_TRUE(wildcard.ok());
  EXPECT_EQ((*wildcard)[2].kind, TokenKind::kStar);

  auto multiply = Tokenize("2 * 3");
  ASSERT_TRUE(multiply.ok());
  EXPECT_EQ((*multiply)[1].kind, TokenKind::kMul);
}

TEST(LexerTest, OperatorNameDisambiguation) {
  // 'and' after an operand is the operator; at expression start it's a name.
  auto op = Tokenize("a and b");
  ASSERT_TRUE(op.ok());
  EXPECT_EQ((*op)[1].kind, TokenKind::kAnd);

  auto name = Tokenize("and");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ((*name)[0].kind, TokenKind::kName);
  EXPECT_EQ((*name)[0].text, "and");

  auto axis = Tokenize("child::div");
  ASSERT_TRUE(axis.ok());
  EXPECT_EQ((*axis)[2].kind, TokenKind::kName);
  EXPECT_EQ((*axis)[2].text, "div");
}

TEST(LexerTest, NumbersIncludingLeadingDot) {
  auto tokens = Tokenize(".5 + 42 + 3.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 0.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 42.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 3.25);
}

TEST(LexerTest, Literals) {
  auto tokens = Tokenize("'one' \"two\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "one");
  EXPECT_EQ((*tokens)[1].text, "two");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("ns:tag").ok());
  EXPECT_FALSE(Tokenize("#").ok());
}

// --- parser structure ---

TEST(ParserTest, SimplePath) {
  Query q = MustParse("/descendant::a/child::b");
  const auto& path = q.root().As<PathExpr>();
  EXPECT_TRUE(path.absolute());
  ASSERT_EQ(path.step_count(), 2u);
  EXPECT_EQ(path.step(0).axis, Axis::kDescendant);
  EXPECT_EQ(path.step(0).test.name, "a");
  EXPECT_EQ(path.step(1).axis, Axis::kChild);
}

TEST(ParserTest, DefaultAxisIsChild) {
  Query q = MustParse("a/b");
  const auto& path = q.root().As<PathExpr>();
  EXPECT_FALSE(path.absolute());
  EXPECT_EQ(path.step(0).axis, Axis::kChild);
  EXPECT_EQ(path.step(1).axis, Axis::kChild);
}

TEST(ParserTest, DoubleSlashExpansion) {
  Query q = MustParse("//a");
  const auto& path = q.root().As<PathExpr>();
  ASSERT_EQ(path.step_count(), 2u);
  EXPECT_EQ(path.step(0).axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(path.step(0).test.kind, NodeTest::Kind::kNode);
  EXPECT_EQ(path.step(1).test.name, "a");

  Query q2 = MustParse("a//b");
  EXPECT_EQ(q2.root().As<PathExpr>().step_count(), 3u);
}

TEST(ParserTest, DotAndDotDot) {
  Query q = MustParse("./..");
  const auto& path = q.root().As<PathExpr>();
  EXPECT_EQ(path.step(0).axis, Axis::kSelf);
  EXPECT_EQ(path.step(1).axis, Axis::kParent);
}

TEST(ParserTest, BareSlashIsRootPath) {
  Query q = MustParse("/");
  const auto& path = q.root().As<PathExpr>();
  EXPECT_TRUE(path.absolute());
  EXPECT_EQ(path.step_count(), 0u);
}

TEST(ParserTest, AllElevenAxes) {
  for (int a = 0; a < kNumAxes; ++a) {
    Axis axis = static_cast<Axis>(a);
    std::string text = std::string(AxisName(axis)) + "::t0";
    Query q = MustParse(text);
    EXPECT_EQ(q.root().As<PathExpr>().step(0).axis, axis) << text;
  }
}

TEST(ParserTest, Predicates) {
  Query q = MustParse("child::a[descendant::b][position() = last()]");
  const Step& step = q.root().As<PathExpr>().step(0);
  ASSERT_EQ(step.predicates.size(), 2u);
  EXPECT_EQ(step.predicates[0]->kind(), Expr::Kind::kPath);
  EXPECT_EQ(step.predicates[1]->kind(), Expr::Kind::kBinary);
}

TEST(ParserTest, PrecedenceOrAndBinds) {
  // or < and: a or b and c == a or (b and c)
  Query q = MustParse("self::a or self::b and self::c");
  const auto& root = q.root().As<BinaryExpr>();
  EXPECT_EQ(root.op(), BinaryOp::kOr);
  EXPECT_EQ(root.rhs().As<BinaryExpr>().op(), BinaryOp::kAnd);
}

TEST(ParserTest, PrecedenceArithmeticOverComparison) {
  Query q = MustParse("1 + 2 * 3 = 7");
  const auto& eq = q.root().As<BinaryExpr>();
  EXPECT_EQ(eq.op(), BinaryOp::kEq);
  const auto& add = eq.lhs().As<BinaryExpr>();
  EXPECT_EQ(add.op(), BinaryOp::kAdd);
  EXPECT_EQ(add.rhs().As<BinaryExpr>().op(), BinaryOp::kMul);
}

TEST(ParserTest, RelationalChainsLeftAssociative) {
  // 1 < 2 < 3 parses as (1 < 2) < 3 per the XPath grammar.
  Query q = MustParse("1 < 2 < 3");
  const auto& outer = q.root().As<BinaryExpr>();
  EXPECT_EQ(outer.op(), BinaryOp::kLt);
  EXPECT_EQ(outer.lhs().As<BinaryExpr>().op(), BinaryOp::kLt);
  EXPECT_EQ(outer.rhs().As<NumberLiteral>().value(), 3.0);
}

TEST(ParserTest, UnaryMinus) {
  Query q = MustParse("-2 + 3");
  const auto& add = q.root().As<BinaryExpr>();
  EXPECT_EQ(add.op(), BinaryOp::kAdd);
  EXPECT_EQ(add.lhs().kind(), Expr::Kind::kNegate);
}

TEST(ParserTest, UnionFlattens) {
  Query q = MustParse("a | b | c");
  const auto& u = q.root().As<UnionExpr>();
  EXPECT_EQ(u.branch_count(), 3u);
}

TEST(ParserTest, FunctionCalls) {
  Query q = MustParse("not(count(child::a) >= 2)");
  const auto& call = q.root().As<FunctionCall>();
  EXPECT_EQ(call.function(), Function::kNot);
  const auto& cmp = call.arg(0).As<BinaryExpr>();
  EXPECT_EQ(cmp.op(), BinaryOp::kGe);
  EXPECT_EQ(cmp.lhs().As<FunctionCall>().function(), Function::kCount);
}

TEST(ParserTest, NodeTestVariants) {
  EXPECT_EQ(MustParse("child::*").root().As<PathExpr>().step(0).test.kind,
            NodeTest::Kind::kAny);
  EXPECT_EQ(MustParse("child::node()").root().As<PathExpr>().step(0).test.kind,
            NodeTest::Kind::kNode);
  EXPECT_EQ(MustParse("child::node").root().As<PathExpr>().step(0).test.name,
            "node");  // plain tag named "node"
}

TEST(ParserTest, ParenthesizedExpression) {
  Query q = MustParse("(1 + 2) * 3");
  const auto& mul = q.root().As<BinaryExpr>();
  EXPECT_EQ(mul.op(), BinaryOp::kMul);
  EXPECT_EQ(mul.lhs().As<BinaryExpr>().op(), BinaryOp::kAdd);
}

TEST(ParserTest, QueryIdsAreDense) {
  Query q = MustParse("/descendant::a[child::b and not(child::c)]/child::d");
  EXPECT_GT(q.num_exprs(), 0);
  EXPECT_EQ(q.num_steps(), 4);  // descendant::a, child::b, child::c, child::d
  for (int i = 0; i < q.num_exprs(); ++i) EXPECT_EQ(q.expr(i).id(), i);
  for (int i = 0; i < q.num_steps(); ++i) EXPECT_EQ(q.step(i).id, i);
  EXPECT_EQ(q.size(), q.num_exprs() + q.num_steps());
}

// --- parser errors ---

void ExpectQueryError(std::string_view text, std::string_view fragment) {
  auto q = ParseQuery(text);
  ASSERT_FALSE(q.ok()) << "expected failure for: " << text;
  EXPECT_NE(q.status().message().find(fragment), std::string::npos)
      << q.status().message();
}

TEST(ParserErrorTest, AttributeAxisRejected) {
  ExpectQueryError("@id", "attribute axis");
  ExpectQueryError("attribute::id", "attribute axis");
  ExpectQueryError("a/@id", "attribute axis");
}

TEST(ParserErrorTest, NamespaceAxisRejected) {
  ExpectQueryError("namespace::x", "namespace axis");
}

TEST(ParserErrorTest, VariablesRejected) {
  ExpectQueryError("$x + 1", "variables are not supported");
}

TEST(ParserErrorTest, UnknownAxis) { ExpectQueryError("sideways::a", "unknown axis"); }

TEST(ParserErrorTest, UnknownFunction) {
  ExpectQueryError("frobnicate(1)", "unknown function");
}

TEST(ParserErrorTest, Arity) {
  ExpectQueryError("position(1)", "expects 0");
  ExpectQueryError("not()", "expects 1");
  ExpectQueryError("contains('a')", "expects 2");
  ExpectQueryError("concat('a')", "2 or more");
}

TEST(ParserErrorTest, TrailingGarbage) {
  ExpectQueryError("child::a)", "after complete expression");
}

TEST(ParserErrorTest, DanglingSlash) { ExpectQueryError("a/", "expected a step"); }

TEST(ParserErrorTest, EmptyPredicate) {
  ExpectQueryError("a[]", "expected an expression");
}

TEST(ParserErrorTest, UnionOfNonPaths) {
  ExpectQueryError("1 | child::a", "operands of '|'");
}

TEST(ParserErrorTest, TextNodeTest) {
  ExpectQueryError("child::text()", "text() node tests are not supported");
}

// --- printer round-trips ---

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsStable) {
  Query first = MustParse(GetParam());
  std::string printed = ToXPathString(first);
  Query second = MustParse(printed);
  EXPECT_EQ(ToXPathString(second), printed) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "/", "child::a", "/descendant::a/child::b",
        "/descendant-or-self::*[self::R and descendant-or-self::*[self::O1]]",
        "child::a[descendant::c and not(following-sibling::d)]",
        "child::a[position() + 1 = last()]",
        "a | b | c/d", "a | (b | c)",
        "1 + 2 * 3 - 4 div 5 mod 6", "-(1 + 2)", "- -3",
        "not(child::a or child::b)",
        "count(descendant::t1) >= 2 and sum(child::t2) < 10",
        "concat('a', \"b\", string(child::c))",
        "self::*[contains(name(), 't')]",
        "preceding-sibling::t0[last()]",
        "ancestor-or-self::*[position() = 1]/following::t3",
        "child::a[2][child::b]",
        "string-length(normalize-space('  x  ')) = 1",
        "boolean(child::a) and true() or false()",
        "floor(3.5) + ceiling(0.25) + round(2.5)",
        "'plain' != \"quote\""));

TEST(PrinterTest, CanonicalAxes) {
  EXPECT_EQ(ToXPathString(MustParse("a//b")),
            "child::a/descendant-or-self::node()/child::b");
  EXPECT_EQ(ToXPathString(MustParse(".")), "self::node()");
  EXPECT_EQ(ToXPathString(MustParse("..")), "parent::node()");
}

TEST(PrinterTest, MinimalParentheses) {
  EXPECT_EQ(ToXPathString(MustParse("1 + 2 * 3")), "1 + 2 * 3");
  EXPECT_EQ(ToXPathString(MustParse("(1 + 2) * 3")), "(1 + 2) * 3");
  EXPECT_EQ(ToXPathString(MustParse("self::a and (self::b or self::c)")),
            "self::a and (self::b or self::c)");
}

}  // namespace
}  // namespace gkx::xpath
