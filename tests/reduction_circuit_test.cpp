// Theorem 3.2 / Corollary 3.3 property tests: for randomized monotone
// circuits and assignments, the reduction's Core XPath query selects a
// non-empty node set iff the circuit evaluates to true. Structural
// invariants of the construction (document depth 2, axis census, linear
// query size, fragment membership) are asserted as well.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "reductions/circuit_to_core_xpath.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/analysis.hpp"
#include "xpath/fragment.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::reductions {
namespace {

using circuits::AllAssignments;
using circuits::CarryCircuit;
using circuits::Circuit;
using circuits::RandomMonotone;
using circuits::RandomMonotoneOptions;
using eval::CoreLinearEvaluator;
using eval::CvtEvaluator;

bool ReductionAnswer(const CircuitReduction& instance) {
  CoreLinearEvaluator linear;
  auto nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
  EXPECT_TRUE(nodes.ok()) << nodes.status().ToString();
  // Cross-check with the CVT engine.
  CvtEvaluator cvt;
  auto cvt_nodes = cvt.EvaluateNodeSet(instance.doc, instance.query);
  EXPECT_TRUE(cvt_nodes.ok());
  EXPECT_EQ(*nodes, *cvt_nodes);
  return !nodes->empty();
}

TEST(CircuitReductionTest, TinyAndGate) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  circuit.AddAnd({a, b});
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = CircuitToCoreXPath(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(CircuitReductionTest, TinyOrGate) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  circuit.AddOr({a, b});
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = CircuitToCoreXPath(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(CircuitReductionTest, CarryBitCircuitAllAssignments) {
  // The paper's own Figure 2 example, exhaustively.
  Circuit circuit = CarryCircuit(2);
  for (const auto& assignment : AllAssignments(4)) {
    CircuitReduction instance = CircuitToCoreXPath(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment))
        << "assignment index mismatch";
  }
}

TEST(CircuitReductionTest, DocumentShapeMatchesPaper) {
  Circuit circuit = CarryCircuit(2);  // M=4, N=5
  CircuitReduction instance = CircuitToCoreXPath(
      circuit, std::vector<bool>{true, false, true, true});
  const xml::DocumentStats stats = instance.doc.Stats();
  // v0 + 9 children + 9 grandchildren.
  EXPECT_EQ(stats.node_count, 1 + 9 + 9);
  EXPECT_EQ(stats.max_depth, 2);
  EXPECT_EQ(stats.max_fanout, 9);
  // v(M+N) carries R; inputs carry T0/T1.
  EXPECT_TRUE(instance.doc.NodeHasName(instance.doc.Children(0).back(), "R"));
}

TEST(CircuitReductionTest, QueryIsCoreXPathAndLinearSize) {
  RandomMonotoneOptions options;
  options.num_inputs = 4;
  Rng rng(17);
  int previous_size = 0;
  for (int32_t gates : {4, 8, 16, 32}) {
    options.num_gates = gates;
    Circuit circuit = RandomMonotone(&rng, options);
    CircuitReduction instance =
        CircuitToCoreXPath(circuit, {true, false, true, false});
    xpath::FragmentReport report = xpath::Classify(instance.query);
    EXPECT_TRUE(report.in_core);
    EXPECT_FALSE(report.in_positive_core);  // uses not()
    const int size = instance.query.size();
    if (previous_size > 0) {
      // Linear growth: doubling the gates should roughly double |Q|.
      EXPECT_LT(size, previous_size * 3);
      EXPECT_GT(size, previous_size);
    }
    previous_size = size;
  }
}

TEST(CircuitReductionTest, AxisCensusDefault) {
  Circuit circuit = CarryCircuit(2);
  CircuitReduction instance =
      CircuitToCoreXPath(circuit, {false, false, false, false});
  xpath::QueryAnalysis analysis = xpath::Analyze(instance.query);
  using xpath::Axis;
  EXPECT_TRUE(analysis.axes_used[static_cast<size_t>(Axis::kDescendantOrSelf)]);
  EXPECT_TRUE(analysis.axes_used[static_cast<size_t>(Axis::kAncestorOrSelf)]);
  EXPECT_TRUE(analysis.axes_used[static_cast<size_t>(Axis::kChild)]);
  EXPECT_TRUE(analysis.axes_used[static_cast<size_t>(Axis::kParent)]);
  EXPECT_TRUE(analysis.axes_used[static_cast<size_t>(Axis::kSelf)]);  // T(l)
  EXPECT_FALSE(analysis.axes_used[static_cast<size_t>(Axis::kFollowing)]);
  EXPECT_FALSE(analysis.axes_used[static_cast<size_t>(Axis::kDescendant)]);
}

TEST(CircuitReductionTest, Corollary33AxisSet) {
  // Only child, parent, descendant-or-self (plus self for the label tests).
  Circuit circuit = CarryCircuit(2);
  CircuitReductionOptions options;
  options.corollary33_axes = true;
  CircuitReduction instance =
      CircuitToCoreXPath(circuit, {true, true, false, true}, options);
  xpath::QueryAnalysis analysis = xpath::Analyze(instance.query);
  using xpath::Axis;
  EXPECT_FALSE(analysis.axes_used[static_cast<size_t>(Axis::kAncestorOrSelf)]);
  EXPECT_FALSE(analysis.axes_used[static_cast<size_t>(Axis::kAncestor)]);
  for (int a = 0; a < xpath::kNumAxes; ++a) {
    Axis axis = static_cast<Axis>(a);
    if (axis == Axis::kChild || axis == Axis::kParent ||
        axis == Axis::kDescendantOrSelf || axis == Axis::kSelf) {
      continue;
    }
    EXPECT_FALSE(analysis.axes_used[static_cast<size_t>(axis)])
        << xpath::AxisName(axis);
  }
}

struct RandomCaseParam {
  uint64_t seed;
  int32_t num_inputs;
  int32_t num_gates;
  bool corollary33;
};

class CircuitReductionPropertyTest
    : public ::testing::TestWithParam<RandomCaseParam> {};

TEST_P(CircuitReductionPropertyTest, AgreesWithDirectEvaluation) {
  const RandomCaseParam& param = GetParam();
  Rng rng(param.seed);
  RandomMonotoneOptions options;
  options.num_inputs = param.num_inputs;
  options.num_gates = param.num_gates;
  CircuitReductionOptions reduction_options;
  reduction_options.corollary33_axes = param.corollary33;

  for (int trial = 0; trial < 6; ++trial) {
    Circuit circuit = RandomMonotone(&rng, options);
    for (int a = 0; a < 4; ++a) {
      std::vector<bool> assignment;
      for (int32_t i = 0; i < param.num_inputs; ++i) {
        assignment.push_back(rng.Bernoulli(0.5));
      }
      CircuitReduction instance =
          CircuitToCoreXPath(circuit, assignment, reduction_options);
      EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment))
          << "seed=" << param.seed << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CircuitReductionPropertyTest,
    ::testing::Values(RandomCaseParam{1, 3, 5, false},
                      RandomCaseParam{2, 4, 10, false},
                      RandomCaseParam{3, 5, 20, false},
                      RandomCaseParam{4, 6, 40, false},
                      RandomCaseParam{5, 3, 5, true},
                      RandomCaseParam{6, 4, 12, true},
                      RandomCaseParam{7, 6, 30, true}));

TEST(CircuitReductionTest, SurfaceSyntaxAndXmlRoundTrip) {
  // End-to-end integration: the generated query prints as genuine XPath
  // surface syntax and the document serializes as genuine XML (labels via
  // the labels="..." convention); after re-parsing both, the answer is
  // unchanged. This is what makes the reduction portable to any engine.
  Circuit circuit = CarryCircuit(2);
  Rng rng(73);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<bool> assignment;
    for (int i = 0; i < 4; ++i) assignment.push_back(rng.Bernoulli(0.5));
    CircuitReduction instance = CircuitToCoreXPath(circuit, assignment);

    const std::string query_text = xpath::ToXPathString(instance.query);
    auto reparsed_query = xpath::ParseQuery(query_text);
    ASSERT_TRUE(reparsed_query.ok()) << reparsed_query.status().ToString();

    const std::string xml_text = xml::SerializeDocument(instance.doc);
    auto reparsed_doc = xml::ParseDocument(xml_text);
    ASSERT_TRUE(reparsed_doc.ok()) << reparsed_doc.status().ToString();
    ASSERT_TRUE(instance.doc.StructurallyEquals(*reparsed_doc));

    CoreLinearEvaluator linear;
    auto original = linear.EvaluateNodeSet(instance.doc, instance.query);
    auto round_tripped = linear.EvaluateNodeSet(*reparsed_doc, *reparsed_query);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(round_tripped.ok());
    EXPECT_EQ(original->empty(), round_tripped->empty());
    EXPECT_EQ(!original->empty(), circuit.Evaluate(assignment));
  }
}

TEST(CircuitReductionTest, AllTrueAndAllFalseInputs) {
  Rng rng(23);
  RandomMonotoneOptions options;
  options.num_inputs = 5;
  options.num_gates = 12;
  for (int trial = 0; trial < 5; ++trial) {
    Circuit circuit = RandomMonotone(&rng, options);
    // Monotone circuits: all-true evaluates true, all-false evaluates false.
    std::vector<bool> all_true(5, true);
    std::vector<bool> all_false(5, false);
    EXPECT_TRUE(ReductionAnswer(CircuitToCoreXPath(circuit, all_true)));
    EXPECT_FALSE(ReductionAnswer(CircuitToCoreXPath(circuit, all_false)));
  }
}

}  // namespace
}  // namespace gkx::reductions
