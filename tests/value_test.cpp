// XPath 1.0 value semantics: coercions, the §3.4 comparison rules (including
// existential node-set comparisons), arithmetic, and round().

#include <cmath>

#include <gtest/gtest.h>

#include "eval/value.hpp"
#include "xml/builder.hpp"

namespace gkx::eval {
namespace {

using xpath::BinaryOp;

xml::Document TextDoc() {
  // root with three children carrying texts "1", "2", "x".
  xml::TreeBuilder builder("root");
  xml::BuildNodeId a = builder.AddChild(builder.root(), "a");
  builder.SetText(a, "1");
  xml::BuildNodeId b = builder.AddChild(builder.root(), "b");
  builder.SetText(b, "2");
  xml::BuildNodeId c = builder.AddChild(builder.root(), "c");
  builder.SetText(c, "x");
  return std::move(builder).Build();
}

TEST(ValueTest, BooleanCoercion) {
  EXPECT_TRUE(Value::Boolean(true).ToBoolean());
  EXPECT_FALSE(Value::Boolean(false).ToBoolean());
  EXPECT_TRUE(Value::Number(1.5).ToBoolean());
  EXPECT_FALSE(Value::Number(0.0).ToBoolean());
  EXPECT_FALSE(Value::Number(std::nan("")).ToBoolean());
  EXPECT_TRUE(Value::Number(INFINITY).ToBoolean());
  EXPECT_TRUE(Value::String("x").ToBoolean());
  EXPECT_FALSE(Value::String("").ToBoolean());
  EXPECT_TRUE(Value::String("false").ToBoolean());  // non-empty string!
  EXPECT_TRUE(Value::Nodes({1}).ToBoolean());
  EXPECT_FALSE(Value::Nodes({}).ToBoolean());
}

TEST(ValueTest, NumberCoercion) {
  xml::Document doc = TextDoc();
  EXPECT_DOUBLE_EQ(Value::Boolean(true).ToNumber(doc), 1.0);
  EXPECT_DOUBLE_EQ(Value::Boolean(false).ToNumber(doc), 0.0);
  EXPECT_DOUBLE_EQ(Value::String(" 42 ").ToNumber(doc), 42.0);
  EXPECT_TRUE(std::isnan(Value::String("nope").ToNumber(doc)));
  // Node-set: number(string-value of first node).
  EXPECT_DOUBLE_EQ(Value::Nodes({1}).ToNumber(doc), 1.0);
  EXPECT_DOUBLE_EQ(Value::Nodes({2}).ToNumber(doc), 2.0);
  EXPECT_TRUE(std::isnan(Value::Nodes({3}).ToNumber(doc)));
  EXPECT_TRUE(std::isnan(Value::Nodes({}).ToNumber(doc)));
}

TEST(ValueTest, StringCoercion) {
  xml::Document doc = TextDoc();
  EXPECT_EQ(Value::Boolean(true).ToString(doc), "true");
  EXPECT_EQ(Value::Boolean(false).ToString(doc), "false");
  EXPECT_EQ(Value::Number(3.0).ToString(doc), "3");
  EXPECT_EQ(Value::Number(-0.5).ToString(doc), "-0.5");
  EXPECT_EQ(Value::Nodes({}).ToString(doc), "");
  EXPECT_EQ(Value::Nodes({1, 2}).ToString(doc), "1");  // first node only
  EXPECT_EQ(Value::Nodes({0}).ToString(doc), "12x");   // subtree string-value
}

TEST(ValueTest, EqualsIsExact) {
  EXPECT_TRUE(Value::Number(2.0).Equals(Value::Number(2.0)));
  EXPECT_FALSE(Value::Number(2.0).Equals(Value::Boolean(true)));
  EXPECT_FALSE(Value::Number(std::nan("")).Equals(Value::Number(std::nan(""))));
  EXPECT_TRUE(Value::Nodes({1, 2}).Equals(Value::Nodes({1, 2})));
  EXPECT_FALSE(Value::Nodes({1}).Equals(Value::Nodes({2})));
}

TEST(CompareTest, ScalarEquality) {
  xml::Document doc = TextDoc();
  // boolean beats number beats string.
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, Value::Boolean(true),
                            Value::Number(7.0)));  // both -> boolean
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, Value::Number(2.0),
                            Value::String("2")));  // both -> number
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, Value::String("ab"),
                            Value::String("ab")));
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kNe, Value::String("a"),
                            Value::String("b")));
}

TEST(CompareTest, OrderComparisonsGoThroughNumbers) {
  xml::Document doc = TextDoc();
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kLt, Value::String("2"),
                            Value::String("10")));  // 2 < 10 numerically
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kLt, Value::String("x"),
                             Value::String("10")));  // NaN comparisons false
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kGe, Value::Boolean(true),
                            Value::Number(1.0)));
}

TEST(CompareTest, NodeSetVsNumberIsExistential) {
  xml::Document doc = TextDoc();
  Value nodes = Value::Nodes({1, 2});  // string-values "1", "2"
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, nodes, Value::Number(2.0)));
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kEq, nodes, Value::Number(3.0)));
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kLt, nodes, Value::Number(2.0)));
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kGt, nodes, Value::Number(2.0)));
  // Mirrored operand order.
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kLt, Value::Number(1.0), nodes));
}

TEST(CompareTest, NodeSetVsString) {
  xml::Document doc = TextDoc();
  Value nodes = Value::Nodes({1, 3});  // "1", "x"
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, nodes, Value::String("x")));
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kEq, nodes, Value::String("y")));
  // != is existential too: some node differs from "x".
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kNe, nodes, Value::String("x")));
}

TEST(CompareTest, NodeSetVsBooleanUsesSetEmptiness) {
  xml::Document doc = TextDoc();
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, Value::Nodes({1}),
                            Value::Boolean(true)));
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, Value::Nodes({}),
                            Value::Boolean(false)));
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kEq, Value::Nodes({}),
                             Value::Boolean(true)));
}

TEST(CompareTest, NodeSetVsNodeSet) {
  xml::Document doc = TextDoc();
  Value left = Value::Nodes({1});      // "1"
  Value right = Value::Nodes({2, 3});  // "2", "x"
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kEq, left, right));
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kNe, left, right));
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kLt, left, right));  // 1 < 2
  Value both = Value::Nodes({1, 2});
  EXPECT_TRUE(CompareValues(doc, BinaryOp::kEq, both, right));  // "2" matches
  // Empty node-set compares false against everything.
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kEq, Value::Nodes({}), right));
  EXPECT_FALSE(CompareValues(doc, BinaryOp::kNe, Value::Nodes({}), right));
}

TEST(ArithmeticTest, Operators) {
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kAdd, 2, 3), 5);
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kSub, 2, 3), -1);
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kMul, 2, 3), 6);
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kDiv, 3, 2), 1.5);
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kMod, 5, 2), 1);
  // XPath mod keeps the dividend's sign (unlike IEEE remainder).
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kMod, -5, 2), -1);
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kMod, 5, -2), 1);
  EXPECT_DOUBLE_EQ(ArithmeticOp(BinaryOp::kMod, 1.5, 1.0), 0.5);
}

TEST(ArithmeticTest, DivisionByZero) {
  EXPECT_TRUE(std::isinf(ArithmeticOp(BinaryOp::kDiv, 1, 0)));
  EXPECT_LT(ArithmeticOp(BinaryOp::kDiv, -1, 0), 0);
  EXPECT_TRUE(std::isnan(ArithmeticOp(BinaryOp::kDiv, 0, 0)));
  EXPECT_TRUE(std::isnan(ArithmeticOp(BinaryOp::kMod, 1, 0)));
}

TEST(RoundTest, XPathRounding) {
  EXPECT_DOUBLE_EQ(XPathRound(2.5), 3.0);   // round-half-up, not banker's
  EXPECT_DOUBLE_EQ(XPathRound(-2.5), -2.0); // floor(x + 0.5)
  EXPECT_DOUBLE_EQ(XPathRound(2.4), 2.0);
  EXPECT_TRUE(std::isnan(XPathRound(std::nan(""))));
  EXPECT_TRUE(std::isinf(XPathRound(INFINITY)));
}

TEST(ValueTest, DebugStrings) {
  EXPECT_EQ(Value::Boolean(true).DebugString(), "boolean(true)");
  EXPECT_EQ(Value::Number(4).DebugString(), "number(4)");
  EXPECT_EQ(Value::String("s").DebugString(), "string('s')");
  EXPECT_EQ(Value::Nodes({1, 4}).DebugString(), "node-set{1,4}");
}

}  // namespace
}  // namespace gkx::eval
