// Concurrent DocumentStore churn: writers replace (and remove) documents
// while readers Submit against them. Readers must observe a complete
// snapshot — every answer equals the answer for SOME registered revision,
// never a torn or freed state — and removal must never crash an in-flight
// evaluation (Get hands out shared_ptrs).
//
// Race coverage is strongest under ThreadSanitizer:
//   cmake -B build-tsan -S . -DGKX_SANITIZE=thread && \
//   cmake --build build-tsan --target store_churn_test && \
//   ./build-tsan/store_churn_test
// (see README "Testing & soak"). The assertions below are also meaningful
// without TSan: a torn snapshot produces an answer matching no revision.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/query_service.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace gkx::service {
namespace {

// Revision k is a chain of k+2 nodes, so count(//t*) distinguishes every
// revision with a single scalar answer.
xml::Document Revision(int k) { return xml::ChainDocument(k + 2); }

TEST(StoreChurnTest, ReadersSeeOldOrNewSnapshotNeverTorn) {
  constexpr int kRevisions = 12;
  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 400;
  const std::string kQuery = "count(/descendant-or-self::*)";

  // Expected answer digests, one per revision: "number(k+2)".
  std::set<std::string> legal;
  QueryService scratch;
  for (int k = 0; k < kRevisions; ++k) {
    ASSERT_TRUE(scratch.RegisterDocument("probe", Revision(k)).ok());
    auto answer = scratch.Submit("probe", kQuery);
    ASSERT_TRUE(answer.ok());
    legal.insert(answer->value.DebugString());
  }
  ASSERT_EQ(legal.size(), kRevisions);  // every revision is distinguishable

  QueryService service;
  ASSERT_TRUE(service.RegisterDocument("d", Revision(0)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<int> errors{0};

  std::thread writer([&service, &stop] {
    // Cycle through the revisions until the readers are done.
    for (int k = 1; !stop.load(std::memory_order_relaxed); k = (k + 1) % kRevisions) {
      GKX_CHECK(service.RegisterDocument("d", Revision(k)).ok());
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &legal, &torn, &errors, &kQuery] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        auto answer = service.Submit("d", kQuery);
        if (!answer.ok()) {
          errors.fetch_add(1);
        } else if (legal.count(answer->value.DebugString()) == 0) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(torn.load(), 0);
}

TEST(StoreChurnTest, RemovalNeverInvalidatesInFlightReaders) {
  QueryService service;
  ASSERT_TRUE(service.RegisterDocument("d", Revision(4)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> unexpected{0};

  std::thread churner([&service, &stop] {
    bool present = true;
    while (!stop.load(std::memory_order_relaxed)) {
      if (present) {
        service.RemoveDocument("d");
      } else {
        GKX_CHECK(service.RegisterDocument("d", Revision(4)).ok());
      }
      present = !present;
    }
    GKX_CHECK(service.RegisterDocument("d", Revision(4)).ok());
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &unexpected] {
      for (int i = 0; i < 300; ++i) {
        auto answer = service.Submit("d", "/descendant::*");
        if (answer.ok()) continue;
        // The only legal failure is "unknown document key".
        if (answer.status().code() != StatusCode::kInvalidArgument) {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  churner.join();

  EXPECT_EQ(unexpected.load(), 0);
  // The store converged to the final registration.
  auto stored = service.documents().Get("d");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(xml::SerializeDocument(stored->doc()),
            xml::SerializeDocument(Revision(4)));
}

// The delta-churn analogue of the snapshot test: a writer applies subtree
// patches (UpdateDocument — splice, index maintenance, delta-scoped
// invalidation) while readers submit and a standing query rides along.
// Each insert grows the document by exactly one node, so a reader's count
// answer is legal iff it lies in [base, base + edits applied so far] — a
// torn splice, a stale cached answer, or a lost patch lands outside.
TEST(StoreChurnTest, ConcurrentSubtreeUpdatesNeverTearSnapshots) {
  constexpr int kEdits = 60;
  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 200;
  QueryService service;
  ASSERT_TRUE(service.RegisterXml("d", "<r><a/></r>").ok());
  const std::string kQuery = "count(/descendant-or-self::*)";

  std::atomic<int64_t> deliveries{0};
  auto subscription = service.Subscribe(
      "d", "//leaf",
      [&](const mview::SubscriptionEvent&) { deliveries.fetch_add(1); });
  ASSERT_TRUE(subscription.ok());

  std::atomic<int> unexpected{0};
  std::thread writer([&] {
    for (int i = 0; i < kEdits; ++i) {
      xml::SubtreeEdit edit;
      edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
      edit.target = 0;
      edit.position = 0;
      auto leaf = xml::ParseDocument("<leaf/>");
      GKX_CHECK(leaf.ok());
      edit.subtree = std::move(leaf).value();
      GKX_CHECK(service.UpdateDocument("d", edit).ok());
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        auto answer = service.Submit("d", kQuery);
        if (!answer.ok()) {
          unexpected.fetch_add(1);
          continue;
        }
        const double count = answer->value.number();
        if (count < 2.0 || count > 2.0 + kEdits) unexpected.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();
  service.FlushSubscriptions();

  EXPECT_EQ(unexpected.load(), 0);
  // No patch was lost: the final document carries every insert.
  auto final_count = service.Submit("d", kQuery);
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->value.number(), 2.0 + kEdits);
  // The standing query followed the patches to the final state: deliveries
  // are coalesced, but the last one must have brought it to kEdits leaves.
  EXPECT_GT(deliveries.load(), 0);
  EXPECT_TRUE(service.Unsubscribe(*subscription));
}

// A reader holding a shared_ptr across removal keeps a valid document AND a
// valid lazily-built index (the index is owned by the StoredDocument).
TEST(StoreChurnTest, HeldSnapshotSurvivesRemovalWithIndex) {
  DocumentStore store;
  ASSERT_TRUE(store.Put("d", Revision(6)).ok());
  auto held = store.Get("d");
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(store.Remove("d"));
  // Build the index only now — after removal — from the held snapshot.
  EXPECT_EQ(held->index().NodesWithName("t1").size(), 2u);
  EXPECT_EQ(held->doc().size(), 8);
}

}  // namespace
}  // namespace gkx::service
