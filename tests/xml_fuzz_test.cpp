// Robustness tests for the XML and XPath parsers: random byte soup, mutated
// well-formed inputs, and truncations must never crash or hang — they must
// return clean Status errors (or succeed). The XPath printer round-trip is
// additionally applied whenever a mutated query still parses. The streaming
// arena parser is differential-fuzzed against the DOM parser on every input
// class (identical accept/reject decisions, ExhaustiveEquals-identical
// documents, identical index postings), and accepted documents additionally
// round-trip through the snapshot save/map path.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "testkit/reference_edit.hpp"
#include "xml/generator.hpp"
#include "xml/index.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xml/snapshot.hpp"
#include "xml/stream_parser.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx {
namespace {

// Streaming and DOM parsers must agree exactly: same accept/reject decision,
// same error text, and — on accept — documents that are indistinguishable to
// an exhaustive field-by-field comparison, with streaming-built posting
// lists identical to a from-scratch index.
void ExpectParsersAgree(std::string_view input) {
  auto dom = xml::ParseDocument(input);
  auto stream = xml::ParseDocumentStream(input);
  ASSERT_EQ(dom.ok(), stream.ok())
      << "accept/reject disagreement on: " << input;
  if (!dom.ok()) {
    EXPECT_EQ(dom.status().message(), stream.status().message());
    return;
  }
  std::string why;
  EXPECT_TRUE(testkit::ExhaustiveEquals(*dom, stream->doc, &why)) << why;
  xml::DocumentIndex streamed(stream->doc, std::move(stream->postings));
  xml::DocumentIndex fresh(stream->doc);
  for (const std::string& name : fresh.PresentNames()) {
    EXPECT_EQ(streamed.NodesWithName(name), fresh.NodesWithName(name)) << name;
  }
  EXPECT_EQ(streamed.PresentNames(), fresh.PresentNames());
}

std::string RandomBytes(Rng* rng, size_t length, bool xmlish) {
  static constexpr char kXmlish[] = "<>/=\"' abcdefgh&;![]-?";
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (xmlish) {
      out += kXmlish[rng->UniformInt(0, sizeof(kXmlish) - 2)];
    } else {
      out += static_cast<char>(rng->UniformInt(1, 255));
    }
  }
  return out;
}

TEST(XmlFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(13131);
  for (int i = 0; i < 500; ++i) {
    std::string input = RandomBytes(&rng, 1 + i % 120, i % 2 == 0);
    auto doc = xml::ParseDocument(input);
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(doc.status().message().empty());
    }
  }
}

TEST(XmlFuzzTest, MutatedDocumentsNeverCrash) {
  Rng rng(4242);
  xml::RandomDocumentOptions options;
  options.node_count = 25;
  options.max_extra_labels = 1;
  options.text_probability = 0.4;
  for (int i = 0; i < 200; ++i) {
    xml::Document doc = xml::RandomDocument(&rng, options);
    std::string xml = xml::SerializeDocument(doc);
    // Flip/delete/insert a few bytes.
    for (int m = 0; m < 3; ++m) {
      if (xml.empty()) break;
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(xml.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          xml[at] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          xml.erase(at, 1);
          break;
        default:
          xml.insert(at, 1, '<');
      }
    }
    auto mutated = xml::ParseDocument(xml);
    if (!mutated.ok()) {
      EXPECT_EQ(mutated.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(XmlFuzzTest, TruncationsNeverCrash) {
  std::string xml =
      "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]>"
      "<r a=\"v\"><x labels=\"G R\">t&amp;x<![CDATA[raw]]></x><!--c--></r>";
  for (size_t length = 0; length <= xml.size(); ++length) {
    auto doc = xml::ParseDocument(xml.substr(0, length));
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(XmlFuzzTest, StreamingParserAgreesOnByteSoup) {
  Rng rng(90210);
  for (int i = 0; i < 400; ++i) {
    ExpectParsersAgree(RandomBytes(&rng, 1 + i % 120, i % 2 == 0));
  }
}

TEST(XmlFuzzTest, StreamingParserAgreesOnMutatedDocuments) {
  Rng rng(2468);
  xml::RandomDocumentOptions options;
  options.node_count = 30;
  options.max_extra_labels = 2;
  options.text_probability = 0.5;
  for (int i = 0; i < 150; ++i) {
    xml::Document doc = xml::RandomDocument(&rng, options);
    std::string xml = xml::SerializeDocument(doc);
    // Unmutated first: the accept path must agree too, not just rejections.
    ExpectParsersAgree(xml);
    for (int m = 0; m < 2; ++m) {
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(xml.size()) - 1));
      xml[at] = static_cast<char>(rng.UniformInt(32, 126));
    }
    ExpectParsersAgree(xml);
  }
}

TEST(XmlFuzzTest, StreamingParserAgreesOnTruncations) {
  std::string xml =
      "<?xml version=\"1.0\"?><!DOCTYPE r [<!ELEMENT r ANY>]>"
      "<r a=\"v\"><x labels=\"G R\">t&amp;x<![CDATA[raw]]></x><!--c--></r>";
  for (size_t length = 0; length <= xml.size(); ++length) {
    ExpectParsersAgree(std::string_view(xml).substr(0, length));
  }
}

TEST(XmlFuzzTest, SnapshotRoundTripOnRandomDocuments) {
  const std::string path = ::testing::TempDir() + "/fuzz_snapshot.gkx";
  Rng rng(31337);
  xml::RandomDocumentOptions options;
  options.max_extra_labels = 2;
  options.text_probability = 0.5;
  for (int i = 0; i < 40; ++i) {
    options.node_count = 1 + static_cast<int32_t>(rng.UniformInt(0, 300));
    xml::Document doc = xml::RandomDocument(&rng, options);
    ASSERT_TRUE(xml::SaveSnapshot(doc, path).ok());
    auto mapped = xml::MapSnapshot(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->mapped());
    std::string why;
    EXPECT_TRUE(testkit::ExhaustiveEquals(doc, *mapped, &why)) << why;
    // A copy of a mapped document materializes and still compares equal.
    xml::Document copy = *mapped;
    EXPECT_FALSE(copy.mapped());
    EXPECT_TRUE(testkit::ExhaustiveEquals(doc, copy, &why)) << why;
  }
  std::remove(path.c_str());
}

TEST(XPathFuzzTest, RandomQueriesNeverCrash) {
  Rng rng(777);
  static constexpr char kQueryish[] =
      "abct0:/[]()@$*|=!<>+-.,'\" anddivmodorpositionlastnot";
  for (int i = 0; i < 800; ++i) {
    std::string input;
    size_t length = 1 + static_cast<size_t>(i % 60);
    for (size_t c = 0; c < length; ++c) {
      input += kQueryish[rng.UniformInt(0, sizeof(kQueryish) - 2)];
    }
    auto query = xpath::ParseQuery(input);
    if (query.ok()) {
      // Whatever parsed must round-trip through the printer.
      std::string printed = xpath::ToXPathString(*query);
      auto reparsed = xpath::ParseQuery(printed);
      ASSERT_TRUE(reparsed.ok()) << input << " -> " << printed;
      EXPECT_EQ(xpath::ToXPathString(*reparsed), printed);
    } else {
      EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(query.status().message().empty());
    }
  }
}

TEST(XPathFuzzTest, TruncatedRealQueriesNeverCrash) {
  constexpr std::string_view kQuery =
      "/descendant-or-self::*[self::R and descendant-or-self::*[self::O2 and "
      "parent::*[not(child::*[self::I2 and not(ancestor-or-self::*)])]] and "
      "position() + 1 = last()] | //a[substring('xy', 1, 2) = 'xy']";
  for (size_t length = 0; length <= kQuery.size(); ++length) {
    auto query = xpath::ParseQuery(kQuery.substr(0, length));
    if (!query.ok()) {
      EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

}  // namespace
}  // namespace gkx
