// WAL framing and group-commit tests: payload round-trips (including a
// pinned byte-level golden — the on-disk format is a compatibility
// surface), the torn-tail truncation matrix (a journal cut at EVERY byte of
// its last record recovers exactly the complete prefix), CRC bit-flip
// detection, and a concurrent multi-writer group-commit run that reopens
// and verifies every acknowledged document (the TSan job runs this test).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/document_store.hpp"
#include "testkit/reference_edit.hpp"
#include "wal/record.hpp"
#include "wal/wal.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"

namespace gkx::wal {
namespace {

xml::Document ParseOk(std::string_view xml) {
  auto doc = xml::ParseDocument(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/wal_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------------------- payloads

TEST(WalRecordTest, PutRoundTripPreservesDocument) {
  Record record;
  record.op = Op::kPut;
  record.revision = 17;
  record.key = "doc/alpha";
  record.doc = ParseOk("<r a='1'><b>text</b><c labels='G I1'/></r>");
  std::string payload;
  EncodePayload(record, &payload);
  auto decoded = DecodePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, Op::kPut);
  EXPECT_EQ(decoded->revision, 17);
  EXPECT_EQ(decoded->key, "doc/alpha");
  std::string why;
  EXPECT_TRUE(testkit::ExhaustiveEquals(record.doc, decoded->doc, &why)) << why;
}

TEST(WalRecordTest, UpdateRoundTripPreservesEveryEditKind) {
  const xml::Document subtree = ParseOk("<sub><leaf/></sub>");
  for (auto kind : {xml::SubtreeEdit::Kind::kReplaceSubtree,
                    xml::SubtreeEdit::Kind::kRemoveSubtree,
                    xml::SubtreeEdit::Kind::kInsertSubtree,
                    xml::SubtreeEdit::Kind::kSetText,
                    xml::SubtreeEdit::Kind::kRelabel}) {
    Record record;
    record.op = Op::kUpdate;
    record.revision = 3;
    record.key = "k";
    record.edit.kind = kind;
    record.edit.target = 2;
    record.edit.position = 1;
    record.edit.text = "new text";
    record.edit.label = "Label9";
    const bool carries_subtree = kind == xml::SubtreeEdit::Kind::kReplaceSubtree ||
                                 kind == xml::SubtreeEdit::Kind::kInsertSubtree;
    if (carries_subtree) record.edit.subtree = xml::Document(subtree);
    std::string payload;
    EncodePayload(record, &payload);
    auto decoded = DecodePayload(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->edit.kind, kind);
    EXPECT_EQ(decoded->edit.target, 2);
    EXPECT_EQ(decoded->edit.position, 1);
    EXPECT_EQ(decoded->edit.text, "new text");
    EXPECT_EQ(decoded->edit.label, "Label9");
    if (carries_subtree) {
      std::string why;
      EXPECT_TRUE(
          testkit::ExhaustiveEquals(subtree, decoded->edit.subtree, &why))
          << why;
    } else {
      EXPECT_TRUE(decoded->edit.subtree.empty());
    }
  }
}

TEST(WalRecordTest, StampRevisionPatchesWithoutReencoding) {
  Record record;
  record.op = Op::kRemove;
  record.revision = 0;  // placeholder, as DocumentStore encodes it
  record.key = "victim";
  std::string payload;
  EncodePayload(record, &payload);
  StampRevision(&payload, 424242);
  auto decoded = DecodePayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->revision, 424242);
  EXPECT_EQ(decoded->key, "victim");
}

// The on-disk bytes are a compatibility surface: this golden pins the frame
// encoding of the simplest record (Remove, revision 7, key "k") byte by
// byte. If it changes, kJournalFormatVersion must be bumped.
TEST(WalRecordTest, FrameGoldenBytes) {
  Record record;
  record.op = Op::kRemove;
  record.revision = 7;
  record.key = "k";
  std::string payload;
  EncodePayload(record, &payload);
  std::string frame;
  AppendFrame(payload, &frame);
  const unsigned char expected[] = {
      0x0e, 0x00, 0x00, 0x00,                          // payload size 14
      0xc9, 0x30, 0xe2, 0xd5,                          // crc32(payload)
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // revision 7 (i64 LE)
      0x03,                                            // op = kRemove
      0x01, 0x00, 0x00, 0x00,                          // key size 1
      0x6b,                                            // 'k'
  };
  ASSERT_EQ(frame.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(frame[i]), expected[i]) << "byte " << i;
  }
}

TEST(WalRecordTest, JournalHeaderGoldenAndValidation) {
  std::string header;
  AppendJournalHeader(&header);
  ASSERT_EQ(header.size(), kJournalHeaderBytes);
  EXPECT_EQ(header.substr(0, 8), std::string("GKXWAL1\n"));
  auto offset = CheckJournalHeader(header);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, kJournalHeaderBytes);

  std::string bad_magic = header;
  bad_magic[0] = 'Z';
  EXPECT_FALSE(CheckJournalHeader(bad_magic).ok());
  std::string bad_version = header;
  bad_version[8] = 9;
  auto version = CheckJournalHeader(bad_version);
  ASSERT_FALSE(version.ok());
  EXPECT_NE(version.status().message().find("format version"),
            std::string::npos);
  EXPECT_FALSE(CheckJournalHeader(header.substr(0, 11)).ok());
}

TEST(WalRecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodePayload("").ok());
  EXPECT_FALSE(DecodePayload("short").ok());
  // Unknown op.
  Record record;
  record.op = Op::kRemove;
  record.key = "k";
  std::string payload;
  EncodePayload(record, &payload);
  payload[8] = 99;
  EXPECT_FALSE(DecodePayload(payload).ok());
  // Trailing bytes after a valid body.
  EncodePayload(record, &payload);
  payload += 'x';
  EXPECT_FALSE(DecodePayload(payload).ok());
}

// ------------------------------------------------------------- framing

/// Builds a journal byte string: header + one frame per record.
std::string BuildJournal(const std::vector<Record>& records) {
  std::string bytes;
  AppendJournalHeader(&bytes);
  for (const Record& record : records) {
    std::string payload;
    EncodePayload(record, &payload);
    AppendFrame(payload, &bytes);
  }
  return bytes;
}

/// Scans frames as recovery does; returns how many complete records were
/// read before the scan stopped (cleanly or at a torn tail).
int ScanFrames(std::string_view journal, bool* torn) {
  uint64_t offset = kJournalHeaderBytes;
  int frames = 0;
  *torn = false;
  while (offset < journal.size()) {
    auto payload = ReadFrame(journal, &offset);
    if (!payload.ok()) {
      *torn = true;
      return frames;
    }
    EXPECT_TRUE(DecodePayload(*payload).ok());
    ++frames;
  }
  return frames;
}

std::vector<Record> ThreeRecords() {
  std::vector<Record> records(3);
  records[0].op = Op::kPut;
  records[0].revision = 1;
  records[0].key = "a";
  records[0].doc = ParseOk("<r><x/></r>");
  records[1].op = Op::kUpdate;
  records[1].revision = 2;
  records[1].key = "a";
  records[1].edit.kind = xml::SubtreeEdit::Kind::kSetText;
  records[1].edit.target = 1;
  records[1].edit.text = "t";
  records[2].op = Op::kRemove;
  records[2].revision = 3;
  records[2].key = "a";
  return records;
}

// A journal cut at EVERY byte position inside the last record must recover
// exactly the two complete records before it — never a partial third,
// never fewer than two.
TEST(WalFramingTest, TruncationMatrixCutsAtEveryByteOfLastRecord) {
  const std::vector<Record> records = ThreeRecords();
  const std::string full = BuildJournal(records);
  const std::string two = BuildJournal({records[0], records[1]});
  ASSERT_LT(two.size(), full.size());
  // Cutting exactly at the record boundary is not torn — it IS a clean
  // two-record journal (a crash after a completed batch, before the next).
  {
    bool torn = false;
    EXPECT_EQ(ScanFrames(std::string_view(full).substr(0, two.size()), &torn),
              2);
    EXPECT_FALSE(torn);
  }
  for (size_t cut = two.size() + 1; cut < full.size(); ++cut) {
    bool torn = false;
    const int frames = ScanFrames(std::string_view(full).substr(0, cut), &torn);
    EXPECT_EQ(frames, 2) << "cut at byte " << cut;
    EXPECT_TRUE(torn) << "cut at byte " << cut;
  }
  // The uncut journal reads all three, cleanly.
  bool torn = false;
  EXPECT_EQ(ScanFrames(full, &torn), 3);
  EXPECT_FALSE(torn);
}

// Any single corrupted byte in a record makes the scan stop at that record:
// the complete prefix survives, nothing after it is applied.
TEST(WalFramingTest, BitFlipAnywhereIsCaught) {
  const std::vector<Record> records = ThreeRecords();
  const std::string full = BuildJournal(records);
  const size_t first_frame_end =
      BuildJournal({records[0]}).size();
  const size_t second_frame_end = BuildJournal({records[0], records[1]}).size();
  // Flip a byte at every offset of the SECOND frame (header and payload
  // alike): exactly one record must survive. A size-field flip may make the
  // remaining bytes implausible or mis-frame the third record — either way
  // the scan reports torn and never yields a corrupted decode.
  for (size_t at = first_frame_end; at < second_frame_end; ++at) {
    std::string bytes = full;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x40);
    bool torn = false;
    const int frames = ScanFrames(bytes, &torn);
    EXPECT_TRUE(torn) << "flip at byte " << at;
    EXPECT_LE(frames, 1) << "flip at byte " << at;
  }
}

// ----------------------------------------------------- group commit (TSan)

// Concurrent writers through the store: every acknowledged Put must be on
// disk when the WAL closes, whatever batches the committer chose. Reopening
// must reproduce all documents node-for-node. This is the test the TSan CI
// job runs to race Enqueue/WaitDurable/CommitterLoop/Checkpoint.
TEST(WalGroupCommitTest, ConcurrentWritersAllDurable) {
  const std::string dir = TempDirFor("group_commit");
  constexpr int kThreads = 4;
  constexpr int kDocsPerThread = 24;
  {
    service::DocumentStore store;
    WalOptions options;
    options.dir = dir;
    options.group_commit_window_us = 100;
    RecoveryReport report;
    auto wal = Wal::OpenAndRecover(options, &store, &report);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    store.AttachWal(wal->get());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&store, t] {
        for (int i = 0; i < kDocsPerThread; ++i) {
          const std::string key =
              "doc" + std::to_string(t) + "_" + std::to_string(i);
          ASSERT_TRUE(
              store
                  .Put(key, xml::ChainDocument(3 + (t * kDocsPerThread + i) % 7))
                  .ok());
        }
      });
    }
    // A checkpoint racing the writers: its manifest captures some prefix,
    // replay covers the rest.
    std::thread checkpointer([&store, &wal] {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE((*wal)->Checkpoint(store).ok());
      }
    });
    for (auto& thread : threads) thread.join();
    checkpointer.join();
    ASSERT_EQ(store.size(), static_cast<size_t>(kThreads * kDocsPerThread));
    store.AttachWal(nullptr);
  }  // clean close

  service::DocumentStore recovered;
  WalOptions options;
  options.dir = dir;
  RecoveryReport report;
  auto wal = Wal::OpenAndRecover(options, &recovered, &report);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_FALSE(report.torn()) << report.torn_tail_reason;
  ASSERT_EQ(recovered.size(), static_cast<size_t>(kThreads * kDocsPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kDocsPerThread; ++i) {
      const std::string key =
          "doc" + std::to_string(t) + "_" + std::to_string(i);
      auto stored = recovered.Get(key);
      ASSERT_NE(stored, nullptr) << key;
      std::string why;
      EXPECT_TRUE(testkit::ExhaustiveEquals(
          stored->doc(), xml::ChainDocument(3 + (t * kDocsPerThread + i) % 7),
          &why))
          << key << ": " << why;
    }
  }
  std::filesystem::remove_all(dir);
}

// Revisions survive recovery: a post-recovery mutation must draw a revision
// strictly above everything a pre-crash observer could have seen.
TEST(WalGroupCommitTest, RevisionFloorSurvivesReopen) {
  const std::string dir = TempDirFor("revision_floor");
  int64_t before = 0;
  {
    service::DocumentStore store;
    WalOptions options;
    options.dir = dir;
    RecoveryReport report;
    auto wal = Wal::OpenAndRecover(options, &store, &report);
    ASSERT_TRUE(wal.ok());
    store.AttachWal(wal->get());
    ASSERT_TRUE(store.Put("a", xml::ChainDocument(3)).ok());
    ASSERT_TRUE(store.Put("a", xml::ChainDocument(4)).ok());
    ASSERT_TRUE(store.Put("b", xml::ChainDocument(5)).ok());
    before = store.last_revision();
    EXPECT_EQ(before, 3);
    store.AttachWal(nullptr);
  }
  service::DocumentStore recovered;
  WalOptions options;
  options.dir = dir;
  RecoveryReport report;
  auto wal = Wal::OpenAndRecover(options, &recovered, &report);
  ASSERT_TRUE(wal.ok());
  EXPECT_GE(recovered.last_revision(), before);
  EXPECT_EQ(report.revision_watermark, recovered.last_revision());
  recovered.AttachWal(wal->get());
  ASSERT_TRUE(recovered.Put("c", xml::ChainDocument(6)).ok());
  EXPECT_GT(recovered.Get("c")->revision(), before);
  recovered.AttachWal(nullptr);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gkx::wal
