// The staged plan IR: normalize idempotence, per-subexpression
// classification golden cases, segment lowering, and materialization-
// boundary correctness (hybrid execution must be byte-identical to the
// naive spec-reading oracle, from root and non-root contexts alike).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/engine.hpp"
#include "eval/recursive_base.hpp"
#include "plan/exec.hpp"
#include "plan/physical.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::plan {
namespace {

using eval::NodeSet;

Logical NormalizeText(const std::string& text) {
  auto parsed = xpath::ParseQuery(text);
  GKX_CHECK(parsed.ok());
  return Normalize(std::move(*parsed));
}

Physical CompileText(const std::string& text) {
  auto parsed = xpath::ParseQuery(text);
  GKX_CHECK(parsed.ok());
  return Compile(std::move(*parsed));
}

TEST(NormalizeTest, CanonicalFormIsIdempotent) {
  const char* spellings[] = {
      "//a",
      "/descendant-or-self::node()/child::a",
      "/descendant::a[true()]",
      "a/b | c/d",
      "child::a[position() >= 1][child::b]",
      "count(/descendant::a) + 1",
      "self::node()/child::a/self::node()",
  };
  for (const char* text : spellings) {
    Logical once = NormalizeText(text);
    Logical twice = NormalizeText(once.canonical_text);
    EXPECT_EQ(once.canonical_text, twice.canonical_text) << text;
  }
}

TEST(NormalizeTest, SharesThePlanCacheNormalForm) {
  // The canonical spelling the IR computes is the same normal form
  // xpath::CanonicalXPathString prints — cache aliasing and planning agree.
  const char* spellings[] = {"//a", "/descendant::a[true()]", "a[b and c]"};
  for (const char* text : spellings) {
    auto parsed = xpath::ParseQuery(text);
    ASSERT_TRUE(parsed.ok());
    const std::string expected = xpath::CanonicalXPathString(*parsed);
    EXPECT_EQ(NormalizeText(text).canonical_text, expected) << text;
  }
}

TEST(ClassifyOpsTest, AnnotatesEveryStepWithItsCheapestRoute) {
  Physical plan =
      CompileText("/descendant::a/child::b[position() = 2]/descendant::c");
  ASSERT_EQ(plan.query.num_steps(), 3);
  // Step ids are preorder within the query; the three top-level steps.
  EXPECT_EQ(plan.steps[0].route, Route::kPfFrontier);
  EXPECT_EQ(plan.steps[1].route, Route::kCvt);
  EXPECT_FALSE(plan.steps[1].core_predicates);
  EXPECT_FALSE(plan.steps[1].note.empty());
  EXPECT_EQ(plan.steps[2].route, Route::kPfFrontier);

  EXPECT_TRUE(plan.staged);
  ASSERT_EQ(plan.branches.size(), 1u);
  ASSERT_EQ(plan.branches[0].segments.size(), 3u);
  EXPECT_EQ(plan.route_label, "pf-frontier+cvt+pf-frontier");
  EXPECT_EQ(plan.evaluator_name(), plan.route_label);
}

TEST(ClassifyOpsTest, CorePredicatesStayOnTheBitsetPath) {
  // Core bexpr predicates (including not()) are condition-set evaluable:
  // the plan stays uniform and keeps the classic whole-query dispatch.
  Physical plan = CompileText("/descendant::a[not(child::b)]/child::c");
  EXPECT_EQ(plan.steps[0].route, Route::kCoreLinear);
  EXPECT_TRUE(plan.steps[0].core_predicates);
  EXPECT_EQ(plan.steps[1].route, Route::kPfFrontier);
  EXPECT_FALSE(plan.staged) << "no CVT segment => no staging";
  EXPECT_EQ(plan.choice, Route::kCoreLinear);
  EXPECT_EQ(plan.route_label, "core-linear");
}

TEST(ClassifyOpsTest, MixedPredicatesOnOneStepNeedCvt) {
  Physical plan = CompileText("/descendant::a[child::b][position() = 2]");
  EXPECT_EQ(plan.steps[0].route, Route::kCvt);
  EXPECT_FALSE(plan.staged) << "uniform CVT => whole-query dispatch";
  EXPECT_EQ(plan.route_label, "cvt-lazy");
}

TEST(ClassifyOpsTest, ScalarRootsKeepWholeQueryDispatch) {
  Physical plan = CompileText("count(/descendant::a[position() = 2])");
  EXPECT_FALSE(plan.staged);
  EXPECT_EQ(plan.choice, Route::kCvt);
}

TEST(LowerTest, UnionBranchesLowerIndependently) {
  Physical plan =
      CompileText("/descendant::a[position() = 2]/child::b | /child::c");
  EXPECT_TRUE(plan.staged);
  ASSERT_EQ(plan.branches.size(), 2u);
  ASSERT_EQ(plan.branches[0].segments.size(), 2u);
  EXPECT_EQ(plan.branches[0].segments[0].route, Route::kCvt);
  EXPECT_EQ(plan.branches[0].segments[1].route, Route::kPfFrontier);
  ASSERT_EQ(plan.branches[1].segments.size(), 1u);
  EXPECT_EQ(plan.branches[1].segments[0].route, Route::kPfFrontier);
  EXPECT_EQ(plan.route_label, "cvt+pf-frontier");
}

// ------------------------------------------------------------------ exec

/// Hybrid execution vs the naive oracle on the plan's own (normalized)
/// query — byte-identical node sets required.
void ExpectStagedMatchesNaive(const xml::Document& doc, const Physical& plan,
                              const eval::Context& ctx) {
  eval::NaiveEvaluator naive;
  auto expected = naive.Evaluate(doc, plan.query, ctx);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto actual = ExecuteStaged(doc, plan, ctx);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_TRUE(expected->Equals(*actual))
      << plan.canonical_text << "\n  naive:  " << expected->DebugString()
      << "\n  staged: " << actual->DebugString();
}

TEST(ExecTest, MaterializationBoundariesPreserveSemantics) {
  // Generated documents use tag names t0..t{alphabet-1}.
  const char* queries[] = {
      // pf ⇄ cvt boundaries in both directions.
      "/descendant::t0/child::t1[position() = 2]/descendant::t2",
      "/descendant::t0[position() = 1]/child::t1",
      "/descendant::t1[position() = last()]/parent::t0/child::t1",
      // positional predicate after a reverse axis (axis-order positions).
      "/descendant::t2/ancestor::t0[position() = 1]/child::t1",
      // arithmetic, count(), string functions in the cvt segment.
      "/descendant::t0/child::t1[count(following-sibling::t1) + 1 = 2]/"
      "self::t1",
      "/descendant::t0[string(child::t1) = '']/child::t1",
      // iterated predicates with re-ranking inside the cvt segment.
      "/descendant::t0/child::t1[position() > 1][position() = 1]/self::t1",
      // union of a hybrid branch and a plain branch.
      "/descendant::t0[position() = 2]/child::t1 | /descendant::t2",
  };
  Rng rng(515);
  xml::RandomDocumentOptions options;
  options.node_count = 60;
  options.tag_alphabet = 3;  // tags collide with a/b/c often enough
  for (int round = 0; round < 8; ++round) {
    xml::Document doc = xml::RandomDocument(&rng, options);
    for (const char* text : queries) {
      Physical plan = CompileText(text);
      ASSERT_TRUE(plan.staged) << text;
      ExpectStagedMatchesNaive(doc, plan, eval::RootContext(doc));
    }
  }
}

TEST(ExecTest, RelativePlansRespectTheContextNode) {
  Rng rng(616);
  xml::RandomDocumentOptions options;
  options.node_count = 40;
  options.tag_alphabet = 2;
  xml::Document doc = xml::RandomDocument(&rng, options);
  Physical plan = CompileText("child::t0[position() = 2]/descendant::t1");
  ASSERT_TRUE(plan.staged);
  for (xml::NodeId start = 0; start < doc.size(); ++start) {
    ExpectStagedMatchesNaive(doc, plan, eval::Context{start, 1, 1});
  }
}

TEST(ExecTest, EngineReportsTheRouteListAndSameValue) {
  auto doc = xml::ParseDocument("<r><a><b/><b/></a><a><b/></a><c/></r>");
  ASSERT_TRUE(doc.ok());
  eval::Engine engine;
  auto answer = engine.Run(*doc, "/descendant::a/child::b[position() = 2]");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->evaluator, "pf-frontier+cvt");
  EXPECT_EQ(answer->value.nodes(), (NodeSet{3}));
}

// ------------------------------------------------------------- footprints
// The dependency extractor behind mview invalidation (footprint.hpp): name
// tests everywhere in the tree are collected, wildcard/node() tests force
// any_name, and compiled plans carry their footprint.

TEST(FootprintTest, CollectsNamesAcrossStepsPredicatesAndFunctions) {
  Footprint fp = CompileText("//a/child::b[descendant::c]").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a", "b", "c"}));

  fp = CompileText("count(/descendant::x) + count(//y)").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"x", "y"}));

  fp = CompileText("/descendant::a | //b/parent::c").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FootprintTest, UncoveredWildcardAndNodeTestsForceAnyName) {
  // No kName step guards these: they observe nodes regardless of name.
  EXPECT_TRUE(CompileText("/child::*").footprint.any_name);
  EXPECT_TRUE(CompileText("/descendant::node()").footprint.any_name);
  EXPECT_TRUE(CompileText("/child::node()/child::a").footprint.any_name);
  // The // sugar normalizes to descendant::a — no node() test survives.
  EXPECT_FALSE(CompileText("//a").footprint.any_name);
}

TEST(FootprintTest, NameGuardedWildcardAndNodeTestsStayPrecise) {
  // A */node() test downstream of (or inside a predicate of) a kName step
  // is unreachable once that name is absent from both revisions, and any
  // revision containing the name is in the changed set anyway — so the
  // name alone is a sound charge.
  Footprint fp = CompileText("//a[child::node()]").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a"}));

  fp = CompileText("//a/child::*").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a"}));

  // The abbreviated "." (self::node()) in a covered predicate — the
  // idiomatic spelling of the zero-arg string() comparison.
  fp = CompileText("//a[. = 'x']").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a"}));
}

TEST(FootprintTest, RootContentReadsForceAnyName) {
  // The bare "/" denotes the root node: coerced to string/number its value
  // is the document's whole text content, which no name set covers — so it
  // must intersect every update (string(/) would otherwise be served stale
  // across any content change that keeps the tag set).
  EXPECT_TRUE(CompileText("/").footprint.any_name);
  EXPECT_TRUE(CompileText("string(/) = 'x'").footprint.any_name);
  EXPECT_TRUE(CompileText("sum(/)").footprint.any_name);
  // Zero-argument context functions at the top level read the root node too.
  EXPECT_TRUE(CompileText("number()").footprint.any_name);
  EXPECT_TRUE(CompileText("string-length() > 2").footprint.any_name);
}

TEST(FootprintTest, NameCoveredContextKeepsPrecision) {
  // Inside a predicate of a name-tested step the context node already
  // passed that test: if 'a' occurs in neither revision the step is dead
  // and the zero-arg read is unreachable, so the name alone is sound.
  Footprint fp = CompileText("//a[starts-with(name(), 't')]").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a"}));

  fp = CompileText("//a[string-length() > 1]").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"a"}));

  // string() over a named path (not the context) stays precise as well.
  fp = CompileText("string(//b) = 'x'").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_EQ(fp.names, (std::vector<std::string>{"b"}));
}

TEST(FootprintTest, DocumentIndependentQueriesHaveEmptyFootprint) {
  Footprint fp = CompileText("1 + 2").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_TRUE(fp.names.empty());
  // A pure function of the query alone: no changed-name set invalidates it.
  EXPECT_FALSE(fp.Intersects({"a", "b", "r"}));
}

TEST(FootprintTest, IntersectionIsExactOnSortedSets) {
  Footprint fp = CompileText("//a[child::c]").footprint;
  EXPECT_TRUE(fp.Intersects({"b", "c", "d"}));
  EXPECT_FALSE(fp.Intersects({"b", "d", "z"}));
  EXPECT_FALSE(fp.Intersects({}));
  EXPECT_EQ(fp.ToString(), "{a,c}");

  Footprint any = CompileText("/child::*").footprint;
  EXPECT_TRUE(any.Intersects({}));
  EXPECT_EQ(any.ToString(), "any+wild");
}

// ------------------------------------------- delta observation classes
// The flags behind Footprint::AffectedBy's region×name sharpening
// (footprint.hpp header): wildcard selection, content reads, name reads.

TEST(FootprintTest, ObservationClassFlagsAreCollected) {
  // Pure name selection: no observation class set.
  Footprint fp = CompileText("//a/child::b[descendant::c]").footprint;
  EXPECT_FALSE(fp.wildcard);
  EXPECT_FALSE(fp.content_read);
  EXPECT_FALSE(fp.name_read);
  EXPECT_EQ(fp.ToString(), "{a,b,c}");

  // Covered wildcards stay out of any_name but are flagged: they can
  // select region nodes without naming them.
  fp = CompileText("//a/child::*").footprint;
  EXPECT_FALSE(fp.any_name);
  EXPECT_TRUE(fp.wildcard);
  EXPECT_EQ(fp.ToString(), "{a}+wild");

  // "." is self::node(): an upward wildcard never selects region nodes, so
  // the common "[. = 'x']" predicate stays structure-insensitive.
  EXPECT_FALSE(CompileText("//a[. = 'x']").footprint.wildcard);
  EXPECT_FALSE(CompileText("//a/parent::node()").footprint.wildcard);
  EXPECT_TRUE(CompileText("//a/following-sibling::*").footprint.wildcard);

  // Covered content reads: node-set coerced by comparison, function, or
  // arithmetic.
  EXPECT_TRUE(CompileText("//a[. = 'x']").footprint.content_read);
  EXPECT_TRUE(CompileText("string(//b) = 'x'").footprint.content_read);
  EXPECT_TRUE(CompileText("sum(//a)").footprint.content_read);
  EXPECT_TRUE(CompileText("//a[string-length() > 1]").footprint.content_read);
  EXPECT_TRUE(CompileText("count(//a[. = //b])").footprint.content_read);

  // Structural observations are NOT content reads: existence, counting,
  // and positions survive any text edit.
  EXPECT_FALSE(CompileText("//a[child::b]").footprint.content_read);
  EXPECT_FALSE(CompileText("count(//a) > 2").footprint.content_read);
  EXPECT_FALSE(CompileText("//a[position() = 2]").footprint.content_read);

  // name()/local-name() reads are their own class: a relabel can change
  // them without the footprint naming the relabeled node.
  fp = CompileText("//a[starts-with(name(), 't')]").footprint;
  EXPECT_TRUE(fp.name_read);
  EXPECT_FALSE(fp.content_read);
  EXPECT_FALSE(CompileText("//a[. = 'x']").footprint.name_read);
}

TEST(FootprintTest, AffectedByWholeDocumentEqualsIntersects) {
  // Null delta = whole-document replacement: the dead-query argument
  // applies, so wildcard/content/name flags add nothing.
  Footprint fp = CompileText("//a/child::*[. = 'x']").footprint;
  EXPECT_TRUE(fp.wildcard);
  EXPECT_TRUE(fp.content_read);
  EXPECT_TRUE(fp.AffectedBy({"a", "b"}, nullptr));
  EXPECT_FALSE(fp.AffectedBy({"b", "c"}, nullptr));
}

TEST(FootprintTest, AffectedByDeltaGatesObservationClasses) {
  xml::DocumentDelta text_edit;  // SetText: ids stable, content changed
  text_edit.ids_stable = true;
  text_edit.content_changed = true;

  xml::DocumentDelta structural;  // replace: ids shift, names spliced
  structural.ids_stable = false;
  structural.content_changed = true;
  structural.old_names = {"u"};
  structural.new_names = {"v"};

  xml::DocumentDelta relabel;  // tag change only
  relabel.ids_stable = true;
  relabel.content_changed = false;
  relabel.old_names = {"u"};
  relabel.new_names = {"v"};

  // Pure name selection: only the region's names matter. A text edit and
  // even a structural splice of foreign-named nodes leave it unaffected —
  // the region×name precision the delta pipeline buys (the structural case
  // relies on the cache remapping ids).
  Footprint names_only = CompileText("//a/child::b").footprint;
  EXPECT_FALSE(names_only.AffectedBy({}, &text_edit));
  EXPECT_FALSE(names_only.AffectedBy({"u", "v"}, &structural));
  EXPECT_TRUE(names_only.AffectedBy({"b", "u"}, &structural));

  // Content readers: affected exactly when the region's text changed.
  Footprint content = CompileText("//a[. = 'x']").footprint;
  EXPECT_TRUE(content.AffectedBy({}, &text_edit));
  EXPECT_FALSE(content.AffectedBy({"u", "v"}, &relabel));

  // Wildcards: affected exactly when structure changed.
  Footprint wild = CompileText("//a/child::*").footprint;
  EXPECT_TRUE(wild.AffectedBy({"u", "v"}, &structural));
  EXPECT_FALSE(wild.AffectedBy({}, &text_edit));

  // Name readers: affected whenever any name changed, even ids-stable.
  Footprint reader = CompileText("//a[name() = 'x']").footprint;
  EXPECT_TRUE(reader.AffectedBy({"u", "v"}, &relabel));
  EXPECT_FALSE(reader.AffectedBy({}, &text_edit));
}

}  // namespace
}  // namespace gkx::plan
