// Theorem 5.7 / Corollary 5.8 property tests: the negation-free reduction
// with iterated predicates (predicate chains of length exactly 2 encoding
// not() via [last()=1] / [last()>1]) agrees with direct circuit evaluation.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "reductions/circuit_to_iterated_pwf.hpp"
#include "xpath/analysis.hpp"
#include "xpath/fragment.hpp"

namespace gkx::reductions {
namespace {

using circuits::AllAssignments;
using circuits::CarryCircuit;
using circuits::Circuit;
using circuits::RandomMonotone;
using circuits::RandomMonotoneOptions;
using eval::CvtEvaluator;

bool ReductionAnswer(const CircuitReduction& instance) {
  CvtEvaluator cvt;
  auto nodes = cvt.EvaluateNodeSet(instance.doc, instance.query);
  EXPECT_TRUE(nodes.ok()) << nodes.status().ToString();
  // Cross-check with the naive spec engine.
  eval::NaiveEvaluator naive;
  auto naive_nodes = naive.EvaluateNodeSet(instance.doc, instance.query);
  EXPECT_TRUE(naive_nodes.ok());
  EXPECT_EQ(*nodes, *naive_nodes);
  return !nodes->empty();
}

TEST(IteratedReductionTest, TinyAndGate) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  circuit.AddAnd({a, b});
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = CircuitToIteratedPwf(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(IteratedReductionTest, TinyOrGate) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  circuit.AddOr({a, b});
  for (const auto& assignment : AllAssignments(2)) {
    CircuitReduction instance = CircuitToIteratedPwf(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(IteratedReductionTest, CarryCircuitExhaustive) {
  Circuit circuit = CarryCircuit(2);
  for (const auto& assignment : AllAssignments(4)) {
    CircuitReduction instance = CircuitToIteratedPwf(circuit, assignment);
    EXPECT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment));
  }
}

TEST(IteratedReductionTest, QueryShapeMatchesCorollary58) {
  Circuit circuit = CarryCircuit(2);
  CircuitReduction instance =
      CircuitToIteratedPwf(circuit, {true, false, true, true});
  xpath::QueryAnalysis analysis = xpath::Analyze(instance.query);
  // Negation-free, predicate chains of length exactly <= 2 (Cor 5.8), uses
  // last(), stays inside WF + iterated predicates.
  EXPECT_FALSE(analysis.has_negation);
  EXPECT_EQ(analysis.max_predicates_per_step, 2);
  EXPECT_TRUE(analysis.functions_used.count(xpath::Function::kLast) > 0);
  xpath::FragmentReport report = xpath::Classify(instance.query);
  EXPECT_TRUE(report.in_wf);    // WF syntax
  EXPECT_FALSE(report.in_pwf);  // iterated predicates violate Def 5.1
}

TEST(IteratedReductionTest, DocumentHasWChildrenAndALabel) {
  Circuit circuit = CarryCircuit(2);  // M=4, N=5
  CircuitReduction instance =
      CircuitToIteratedPwf(circuit, {false, false, false, false});
  // v0 + (M+N) vi + (M+N) v'i + (M+N) wi + w0.
  EXPECT_EQ(instance.doc.size(), 1 + 9 + 9 + 9 + 1);
  EXPECT_TRUE(instance.doc.NodeHasName(0, "A"));
  int w_count = 0;
  for (xml::NodeId v = 0; v < instance.doc.size(); ++v) {
    if (instance.doc.NodeHasName(v, "W")) ++w_count;
  }
  EXPECT_EQ(w_count, 10);
}

class IteratedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IteratedPropertyTest, AgreesWithDirectEvaluation) {
  Rng rng(GetParam());
  RandomMonotoneOptions options;
  options.num_inputs = 4;
  options.num_gates = 10;
  for (int trial = 0; trial < 4; ++trial) {
    Circuit circuit = RandomMonotone(&rng, options);
    for (int a = 0; a < 6; ++a) {
      std::vector<bool> assignment;
      for (int32_t i = 0; i < 4; ++i) assignment.push_back(rng.Bernoulli(0.5));
      CircuitReduction instance = CircuitToIteratedPwf(circuit, assignment);
      ASSERT_EQ(ReductionAnswer(instance), circuit.Evaluate(assignment))
          << "seed=" << GetParam() << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IteratedPropertyTest,
                         ::testing::Values(61, 67, 71, 73));

}  // namespace
}  // namespace gkx::reductions
