// Circuit substrate tests: construction/validation invariants, evaluation,
// the Figure 2 carry-bit circuit against arithmetic ground truth, random
// generators, and SAC shape constraints.

#include <gtest/gtest.h>

#include "circuits/generators.hpp"

namespace gkx::circuits {
namespace {

TEST(CircuitTest, BuildAndEvaluate) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  int32_t g_and = circuit.AddAnd({a, b});
  int32_t g_or = circuit.AddOr({a, g_and});
  circuit.SetOutput(g_or);
  ASSERT_TRUE(circuit.Validate().ok());
  EXPECT_EQ(circuit.num_inputs(), 2);
  EXPECT_EQ(circuit.num_logic_gates(), 2);
  EXPECT_FALSE(circuit.Evaluate({false, false}));
  EXPECT_TRUE(circuit.Evaluate({true, false}));
  EXPECT_TRUE(circuit.Evaluate({true, true}));
  EXPECT_FALSE(circuit.Evaluate({false, true}));
}

TEST(CircuitTest, EvaluateAllExposesGateValues) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  circuit.AddAnd({a, b});
  auto values = circuit.EvaluateAll({true, true});
  EXPECT_EQ(values, (std::vector<bool>{true, true, true}));
}

TEST(CircuitTest, UnboundedFanIn) {
  Circuit circuit;
  std::vector<int32_t> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(circuit.AddInput());
  circuit.AddOr(inputs);
  EXPECT_TRUE(circuit.Evaluate({false, false, false, false, false, true}));
  EXPECT_FALSE(circuit.Evaluate({false, false, false, false, false, false}));
}

TEST(CircuitTest, DepthComputation) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t g1 = circuit.AddOr({a});
  int32_t g2 = circuit.AddOr({g1});
  circuit.AddAnd({g2, a});
  EXPECT_EQ(circuit.Depth(), 3);
}

TEST(CircuitTest, SemiUnboundedCheck) {
  Circuit circuit;
  int32_t a = circuit.AddInput();
  int32_t b = circuit.AddInput();
  int32_t c = circuit.AddInput();
  circuit.AddAnd({a, b});
  EXPECT_TRUE(circuit.IsSemiUnbounded());
  circuit.AddAnd({a, b, c});
  EXPECT_FALSE(circuit.IsSemiUnbounded());
  circuit.AddOr({a, b, c});  // unbounded OR is fine
}

TEST(CircuitTest, ValidateRejectsEmptyAndNoInput) {
  Circuit empty;
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(CircuitTest, ToDotMentionsGates) {
  Circuit circuit = CarryCircuit(1);
  std::string dot = circuit.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("AND"), std::string::npos);
}

TEST(CarryCircuitTest, PaperExampleShape) {
  // Figure 2: 4 inputs, 5 gates (4 AND + 1 OR), output G9.
  Circuit circuit = CarryCircuit(2);
  EXPECT_EQ(circuit.num_inputs(), 4);
  EXPECT_EQ(circuit.num_logic_gates(), 5);
  EXPECT_EQ(circuit.output(), circuit.size() - 1);
  int ands = 0;
  int ors = 0;
  for (int32_t g = circuit.num_inputs(); g < circuit.size(); ++g) {
    if (circuit.gate(g).kind == GateKind::kAnd) ++ands;
    if (circuit.gate(g).kind == GateKind::kOr) ++ors;
  }
  EXPECT_EQ(ands, 4);
  EXPECT_EQ(ors, 1);
}

class CarryTruthTableTest : public ::testing::TestWithParam<int32_t> {};

TEST_P(CarryTruthTableTest, MatchesAddition) {
  const int32_t bits = GetParam();
  Circuit circuit = CarryCircuit(bits);
  for (const auto& assignment : AllAssignments(2 * bits)) {
    EXPECT_EQ(circuit.Evaluate(assignment), CarryGroundTruth(bits, assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, CarryTruthTableTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(RandomMonotoneTest, ValidatesAndIsDeterministic) {
  RandomMonotoneOptions options;
  options.num_inputs = 6;
  options.num_gates = 20;
  Rng rng1(5);
  Rng rng2(5);
  Circuit a = RandomMonotone(&rng1, options);
  Circuit b = RandomMonotone(&rng2, options);
  ASSERT_TRUE(a.Validate().ok());
  EXPECT_EQ(a.size(), 26);
  // Determinism: same evaluation on all-true inputs and a few random ones.
  Rng assign_rng(1);
  for (int i = 0; i < 10; ++i) {
    std::vector<bool> assignment;
    for (int j = 0; j < 6; ++j) assignment.push_back(assign_rng.Bernoulli(0.5));
    EXPECT_EQ(a.Evaluate(assignment), b.Evaluate(assignment));
  }
}

TEST(RandomMonotoneTest, MonotonicityProperty) {
  // Flipping any input from 0 to 1 can only raise the output.
  Rng rng(77);
  RandomMonotoneOptions options;
  options.num_inputs = 5;
  options.num_gates = 15;
  for (int trial = 0; trial < 20; ++trial) {
    Circuit circuit = RandomMonotone(&rng, options);
    for (const auto& assignment : AllAssignments(5)) {
      if (!circuit.Evaluate(assignment)) continue;
      for (int i = 0; i < 5; ++i) {
        std::vector<bool> raised = assignment;
        raised[static_cast<size_t>(i)] = true;
        EXPECT_TRUE(circuit.Evaluate(raised));
      }
    }
  }
}

TEST(RandomSacTest, ShapeConstraints) {
  Rng rng(9);
  RandomSacOptions options;
  options.num_inputs = 5;
  options.layers = 6;
  options.width = 4;
  Circuit circuit = RandomSac(&rng, options);
  ASSERT_TRUE(circuit.Validate().ok());
  EXPECT_TRUE(circuit.IsSemiUnbounded());
  EXPECT_LE(circuit.Depth(), 6);
}

TEST(AllAssignmentsTest, EnumeratesExhaustively) {
  auto assignments = AllAssignments(3);
  EXPECT_EQ(assignments.size(), 8u);
  EXPECT_EQ(assignments[0], (std::vector<bool>{false, false, false}));
  EXPECT_EQ(assignments[7], (std::vector<bool>{true, true, true}));
  EXPECT_EQ(AllAssignments(0).size(), 1u);
}

}  // namespace
}  // namespace gkx::circuits
