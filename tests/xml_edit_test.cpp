// xml::ApplyEdit — subtree patches over the preorder tree.
//   * Goldens: each edit kind on a small fixed document, checking the
//     spliced links, subtree sizes, depths, serialization, and the
//     reported DocumentDelta (interval, local name sets, flags).
//   * Metamorphic (the patch/rebuild equivalence): over randomized edits
//     on generated corpora, ApplyEdit(doc, e) is node-for-node identical —
//     links, labels, attributes, text, subtree sizes, depths, and the
//     serialized bytes — to building the edited document from scratch
//     (testkit::NaiveApplyEdit), including under chains of edits.
//   * Index splice: DocumentIndex(new, old_index, delta) equals a fresh
//     DocumentIndex(new) posting list for posting list.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "testkit/reference_edit.hpp"
#include "xml/edit.hpp"
#include "xml/generator.hpp"
#include "xml/index.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace gkx::xml {
namespace {

using testkit::ExhaustiveEquals;
using testkit::NaiveApplyEdit;

Document Parse(std::string_view xml) {
  auto doc = ParseDocument(xml);
  GKX_CHECK(doc.ok());
  return std::move(doc).value();
}

std::string OneLine(const Document& doc) {
  SerializeOptions options;
  options.indent = 0;
  return SerializeDocument(doc, options);
}

/// Every structural invariant the evaluators rely on, checked directly
/// (sizes, depths, link symmetry, preorder layout).
void ExpectWellFormed(const Document& doc) {
  for (NodeId v = 0; v < doc.size(); ++v) {
    ASSERT_GE(doc.subtree_size(v), 1);
    ASSERT_LE(v + doc.subtree_size(v), doc.size());
    if (v == 0) {
      ASSERT_EQ(doc.parent(v), kNullNode);
      ASSERT_EQ(doc.depth(v), 0);
      ASSERT_EQ(doc.subtree_size(v), doc.size());
    } else {
      ASSERT_GE(doc.parent(v), 0);
      ASSERT_LT(doc.parent(v), v);
      ASSERT_EQ(doc.depth(v), doc.depth(doc.parent(v)) + 1);
      ASSERT_TRUE(doc.IsAncestorOrSelf(doc.parent(v), v));
    }
    // Children partition (v, v + subtree_size) and link both ways.
    int64_t child_total = 0;
    NodeId expected_child = v + 1;
    NodeId previous = kNullNode;
    for (NodeId c = doc.first_child(v); c != kNullNode;
         c = doc.next_sibling(c)) {
      ASSERT_EQ(c, expected_child);
      ASSERT_EQ(doc.parent(c), v);
      ASSERT_EQ(doc.prev_sibling(c), previous);
      previous = c;
      child_total += doc.subtree_size(c);
      expected_child = c + doc.subtree_size(c);
    }
    ASSERT_EQ(doc.last_child(v), previous);
    ASSERT_EQ(child_total, doc.subtree_size(v) - 1);
  }
}

// ------------------------------------------------------------- goldens

const char kBase[] =
    "<catalog>"
    "<item><sku>a1</sku><price>10</price></item>"
    "<item><sku>b2</sku><price>20</price></item>"
    "<summary><total>30</total></summary>"
    "</catalog>";

TEST(ApplyEditTest, ReplaceSubtreeSplicesIntervalAndReportsDelta) {
  Document doc = Parse(kBase);
  // Second <item> subtree: nodes [4, 7) (catalog=0, item=1, sku=2, price=3).
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = 4;
  edit.subtree = Parse("<item><sku>c3</sku><qty>5</qty><note/></item>");

  DocumentDelta delta;
  auto edited = ApplyEdit(doc, edit, &delta);
  ASSERT_TRUE(edited.ok());
  ExpectWellFormed(*edited);
  EXPECT_EQ(OneLine(*edited),
            OneLine(Parse("<catalog>"
                          "<item><sku>a1</sku><price>10</price></item>"
                          "<item><sku>c3</sku><qty>5</qty><note/></item>"
                          "<summary><total>30</total></summary>"
                          "</catalog>")));

  EXPECT_EQ(delta.begin, 4);
  EXPECT_EQ(delta.old_count, 3);
  EXPECT_EQ(delta.new_count, 4);
  EXPECT_EQ(delta.shift(), 1);
  EXPECT_FALSE(delta.ids_stable);
  EXPECT_TRUE(delta.content_changed);  // "b2"+"20" -> "c3"+"5"
  EXPECT_EQ(delta.old_names,
            (std::vector<std::string>{"item", "price", "sku"}));
  EXPECT_EQ(delta.new_names,
            (std::vector<std::string>{"item", "note", "qty", "sku"}));
  EXPECT_EQ(delta.ChangedNames(),
            (std::vector<std::string>{"item", "note", "price", "qty", "sku"}));

  // The summary section kept its structure, one preorder slot later.
  EXPECT_EQ(edited->TagName(7 + delta.shift()), "summary");
  EXPECT_EQ(edited->StringValue(7 + delta.shift()), "30");
}

TEST(ApplyEditTest, RemoveSubtreeBypassesSiblingsAndShrinksAncestors) {
  Document doc = Parse(kBase);
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kRemoveSubtree;
  edit.target = 4;  // second <item>

  DocumentDelta delta;
  auto edited = ApplyEdit(doc, edit, &delta);
  ASSERT_TRUE(edited.ok());
  ExpectWellFormed(*edited);
  EXPECT_EQ(OneLine(*edited),
            OneLine(Parse("<catalog>"
                          "<item><sku>a1</sku><price>10</price></item>"
                          "<summary><total>30</total></summary>"
                          "</catalog>")));
  EXPECT_EQ(delta.old_count, 3);
  EXPECT_EQ(delta.new_count, 0);
  EXPECT_FALSE(delta.ids_stable);
  EXPECT_TRUE(delta.content_changed);
  EXPECT_TRUE(delta.new_names.empty());
  // first <item> and <summary> are now adjacent siblings.
  EXPECT_EQ(edited->next_sibling(1), 4);
  EXPECT_EQ(edited->prev_sibling(4), 1);
}

TEST(ApplyEditTest, InsertSubtreeAtEveryPosition) {
  for (int32_t position : {0, 1, 2, 3}) {
    Document doc = Parse(kBase);
    SubtreeEdit edit;
    edit.kind = SubtreeEdit::Kind::kInsertSubtree;
    edit.target = 0;  // under <catalog>
    edit.position = position;
    edit.subtree = Parse("<banner><text>hi</text></banner>");

    DocumentDelta delta;
    auto edited = ApplyEdit(doc, edit, &delta);
    ASSERT_TRUE(edited.ok()) << "position=" << position;
    ExpectWellFormed(*edited);
    EXPECT_TRUE(
        ExhaustiveEquals(*edited, NaiveApplyEdit(doc, edit)))
        << "position=" << position;
    EXPECT_EQ(delta.old_count, 0);
    EXPECT_EQ(delta.new_count, 2);
    EXPECT_FALSE(delta.ids_stable);
    EXPECT_TRUE(delta.content_changed);
    EXPECT_EQ(delta.new_names, (std::vector<std::string>{"banner", "text"}));
    EXPECT_EQ(edited->ChildCount(0), 4);
  }
}

TEST(ApplyEditTest, SetTextKeepsIdsAndNamesStable) {
  Document doc = Parse(kBase);
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kSetText;
  edit.target = 6;  // <price>20</price>
  edit.text = "25";

  DocumentDelta delta;
  auto edited = ApplyEdit(doc, edit, &delta);
  ASSERT_TRUE(edited.ok());
  ExpectWellFormed(*edited);
  EXPECT_EQ(edited->size(), doc.size());
  EXPECT_EQ(edited->StringValue(6), "25");
  EXPECT_TRUE(delta.ids_stable);
  EXPECT_TRUE(delta.content_changed);
  EXPECT_TRUE(delta.old_names.empty());  // a text edit changes no name
  EXPECT_TRUE(delta.new_names.empty());
  EXPECT_EQ(delta.begin, 6);
  EXPECT_EQ(delta.shift(), 0);

  // Same text => no content change reported.
  edit.text = "20";
  ASSERT_TRUE(ApplyEdit(doc, edit, &delta).ok());
  EXPECT_FALSE(delta.content_changed);
}

TEST(ApplyEditTest, RelabelReportsBothTagsAndKeepsStructure) {
  Document doc = Parse(kBase);
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kRelabel;
  edit.target = 7;  // <summary>
  edit.label = "digest";

  DocumentDelta delta;
  auto edited = ApplyEdit(doc, edit, &delta);
  ASSERT_TRUE(edited.ok());
  ExpectWellFormed(*edited);
  EXPECT_EQ(edited->TagName(7), "digest");
  EXPECT_TRUE(delta.ids_stable);
  EXPECT_FALSE(delta.content_changed);
  EXPECT_EQ(delta.old_names, (std::vector<std::string>{"summary"}));
  EXPECT_EQ(delta.new_names, (std::vector<std::string>{"digest"}));
  EXPECT_TRUE(ExhaustiveEquals(*edited, NaiveApplyEdit(doc, edit)));
}

TEST(ApplyEditTest, RejectsInvalidEdits) {
  Document doc = Parse(kBase);
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kRemoveSubtree;
  edit.target = 0;  // the root cannot be removed
  EXPECT_FALSE(ApplyEdit(doc, edit).ok());

  edit.target = doc.size();  // out of range
  EXPECT_FALSE(ApplyEdit(doc, edit).ok());

  edit.kind = SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = 1;  // empty replacement subtree
  EXPECT_FALSE(ApplyEdit(doc, edit).ok());

  edit.kind = SubtreeEdit::Kind::kInsertSubtree;
  edit.target = 0;
  edit.position = 4;  // only 3 children
  edit.subtree = Parse("<x/>");
  EXPECT_FALSE(ApplyEdit(doc, edit).ok());
}

TEST(ApplyEditTest, NameIdsOfSurvivingNodesAreStable) {
  Document doc = Parse(kBase);
  const NameId summary = doc.FindName("summary");
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = 1;
  edit.subtree = Parse("<widget><gear/></widget>");
  auto edited = ApplyEdit(doc, edit);
  ASSERT_TRUE(edited.ok());
  // Old pool prefix intact, new names appended after it.
  EXPECT_EQ(edited->FindName("summary"), summary);
  EXPECT_GE(edited->FindName("widget"),
            static_cast<NameId>(doc.InternedNames().size()));
}

// ----------------------------------------------------------- metamorphic

TEST(ApplyEditMetamorphicTest, PatchEqualsRebuildOverRandomizedEditChains) {
  RandomDocumentOptions doc_options;
  doc_options.tag_alphabet = 5;
  doc_options.tag_zipf_s = 0.6;
  doc_options.max_extra_labels = 2;
  doc_options.text_probability = 0.35;

  RandomEditOptions edit_options;
  edit_options.subtree_options = doc_options;

  for (uint64_t seed : {3u, 17u, 91u, 203u}) {
    Rng rng(seed);
    doc_options.node_count = static_cast<int32_t>(rng.UniformInt(2, 80));
    Document current = RandomDocument(&rng, doc_options);
    // Chains of edits: each round patches the previous round's output, so
    // the splicer must keep every invariant the next splice relies on
    // (including pool-superset interning).
    for (int round = 0; round < 60; ++round) {
      const SubtreeEdit edit = RandomSubtreeEdit(&rng, current, edit_options);
      DocumentDelta delta;
      auto patched = ApplyEdit(current, edit, &delta);
      ASSERT_TRUE(patched.ok())
          << "seed=" << seed << " round=" << round;
      ExpectWellFormed(*patched);

      const Document rebuilt = NaiveApplyEdit(current, edit);
      std::string why;
      ASSERT_TRUE(ExhaustiveEquals(*patched, rebuilt, &why))
          << "seed=" << seed << " round=" << round << " kind="
          << static_cast<int>(edit.kind) << " target=" << edit.target
          << ": " << why;
      // Serialized bytes agree too — modulo the labels attribute, whose
      // emission order follows per-document NameIds and therefore the
      // interning history (ExhaustiveEquals already compared labels as the
      // sets they are, Remark 3.1).
      SerializeOptions no_labels;
      no_labels.labels_attribute.clear();
      ASSERT_EQ(SerializeDocument(*patched, no_labels),
                SerializeDocument(rebuilt, no_labels))
          << "seed=" << seed << " round=" << round;

      // Delta sanity against the two documents it connects.
      ASSERT_EQ(patched->size(),
                current.size() + delta.shift())
          << "seed=" << seed << " round=" << round;
      if (delta.ids_stable) {
        ASSERT_EQ(delta.old_count, delta.new_count);
      }

      current = std::move(patched).value();
    }
  }
}

TEST(ApplyEditMetamorphicTest, SplicedIndexEqualsFreshIndex) {
  RandomDocumentOptions doc_options;
  doc_options.tag_alphabet = 4;
  doc_options.max_extra_labels = 1;
  doc_options.text_probability = 0.3;
  RandomEditOptions edit_options;
  edit_options.subtree_options = doc_options;

  for (uint64_t seed : {5u, 29u, 111u}) {
    Rng rng(seed);
    doc_options.node_count = static_cast<int32_t>(rng.UniformInt(10, 60));
    // unique_ptrs keep each document's address stable for the index that
    // borrows it across the chain.
    auto current = std::make_unique<Document>(RandomDocument(&rng, doc_options));
    auto current_index = std::make_unique<DocumentIndex>(*current);
    for (int round = 0; round < 40; ++round) {
      const SubtreeEdit edit = RandomSubtreeEdit(&rng, *current, edit_options);
      DocumentDelta delta;
      auto patched = ApplyEdit(*current, edit, &delta);
      ASSERT_TRUE(patched.ok()) << "seed=" << seed << " round=" << round;
      auto next = std::make_unique<Document>(std::move(patched).value());

      // Splice the old index across the delta and compare against a full
      // rebuild: same posting lists for every name, same PresentNames,
      // same posting count.
      auto spliced = std::make_unique<DocumentIndex>(*next, *current_index,
                                                     delta);
      DocumentIndex fresh(*next);
      ASSERT_EQ(spliced->PresentNames(), fresh.PresentNames())
          << "seed=" << seed << " round=" << round;
      ASSERT_EQ(spliced->posting_count(), fresh.posting_count())
          << "seed=" << seed << " round=" << round;
      for (const std::string& name : fresh.PresentNames()) {
        ASSERT_EQ(spliced->NodesWithName(name), fresh.NodesWithName(name))
            << "seed=" << seed << " round=" << round << " name=" << name;
      }

      // Chain off the spliced index: splice-of-splice must stay exact.
      current = std::move(next);
      current_index = std::move(spliced);
    }
  }
}

}  // namespace
}  // namespace gkx::xml
