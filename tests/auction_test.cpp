// Auction-site workload tests: generator invariants (cross-references,
// monotone bids, structure) and end-to-end engine queries over the
// realistic document shape, with cross-engine agreement.

#include <gtest/gtest.h>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/engine.hpp"
#include "eval/recursive_base.hpp"
#include "xml/auction.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

xml::Document Site(uint64_t seed = 5) {
  Rng rng(seed);
  xml::AuctionOptions options;
  options.items = 12;
  options.people = 8;
  options.open_auctions = 10;
  return xml::AuctionDocument(&rng, options);
}

TEST(AuctionGeneratorTest, TopLevelStructure) {
  xml::Document site = Site();
  Engine engine;
  auto sections = engine.Run(site, "/child::*");
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections->value.nodes().size(), 4u);
  auto items = engine.Run(site, "/child::items/child::item");
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->value.nodes().size(), 12u);
  auto people = engine.Run(site, "/child::people/child::person");
  ASSERT_TRUE(people.ok());
  EXPECT_EQ(people->value.nodes().size(), 8u);
}

TEST(AuctionGeneratorTest, EveryItemHasPriceSellerCategory) {
  xml::Document site = Site();
  Engine engine;
  auto incomplete = engine.Run(
      site,
      "/descendant::item[not(child::price) or not(child::seller) or "
      "not(child::incategory)]");
  ASSERT_TRUE(incomplete.ok());
  EXPECT_TRUE(incomplete->value.nodes().empty());
}

TEST(AuctionGeneratorTest, BidsAreMonotone) {
  // Every bid is strictly below the auction's current price; the generator
  // increases amounts monotonically.
  xml::Document site = Site();
  Engine engine;
  auto violations = engine.Run(
      site, "/descendant::open_auction/child::bid[. >= "
            "following-sibling::current]");
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->value.nodes().empty());
}

TEST(AuctionGeneratorTest, SellerReferencesResolve) {
  xml::Document site = Site();
  Engine engine;
  // Seller indices are < people count (text is the person index).
  auto bad = engine.Run(site, "/descendant::seller[. >= 8]");
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->value.nodes().empty());
}

TEST(AuctionGeneratorTest, DeterministicForSeed) {
  xml::Document a = Site(9);
  xml::Document b = Site(9);
  EXPECT_TRUE(a.StructurallyEquals(b));
  xml::Document c = Site(10);
  EXPECT_FALSE(a.StructurallyEquals(c));
}

TEST(AuctionQueriesTest, EnginesAgreeOnWorkload) {
  xml::Document site = Site();
  NaiveEvaluator naive;
  CvtEvaluator cvt;
  CoreLinearEvaluator linear;
  for (const char* text : {
           "/descendant::item/child::name",
           "/descendant::open_auction[not(child::bid)]",
           "/descendant::open_auction/child::bid[last()]",
           "/descendant::item[child::price > 80]",
           "/descendant::open_auction[child::bid[3]]",
           "/descendant::person[child::city]/child::name",
       }) {
    xpath::Query query = xpath::MustParse(text);
    auto expected = naive.EvaluateAtRoot(site, query);
    ASSERT_TRUE(expected.ok()) << text;
    auto from_cvt = cvt.EvaluateAtRoot(site, query);
    ASSERT_TRUE(from_cvt.ok()) << text;
    EXPECT_TRUE(expected->Equals(*from_cvt)) << text;
    auto from_linear = linear.EvaluateAtRoot(site, query);
    if (from_linear.ok()) {
      EXPECT_TRUE(expected->Equals(*from_linear)) << text;
    }
  }
}

TEST(AuctionQueriesTest, AggregatesAreConsistent) {
  xml::Document site = Site();
  Engine engine;
  auto bid_count = engine.Run(site, "count(/descendant::bid)");
  ASSERT_TRUE(bid_count.ok());
  auto last_bids =
      engine.Run(site, "count(/descendant::open_auction/child::bid[last()])");
  ASSERT_TRUE(last_bids.ok());
  auto auctions_with_bids =
      engine.Run(site, "count(/descendant::open_auction[child::bid])");
  ASSERT_TRUE(auctions_with_bids.ok());
  // One last-bid per auction that has bids.
  EXPECT_DOUBLE_EQ(last_bids->value.number(), auctions_with_bids->value.number());
  EXPECT_GE(bid_count->value.number(), last_bids->value.number());
}

}  // namespace
}  // namespace gkx::eval
