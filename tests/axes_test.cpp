// Axis engine tests: every axis is checked against a brute-force
// implementation of its definition on randomized documents, including axis
// order (document order for forward axes, reverse for reverse axes),
// constant-time membership, and streaming position/size.

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/axes.hpp"
#include "xml/builder.hpp"
#include "xml/generator.hpp"

namespace gkx::eval {
namespace {

using xml::Document;
using xml::NodeId;
using xpath::Axis;

// Brute-force membership straight from the axis definitions.
bool BruteContains(const Document& doc, NodeId origin, Axis axis, NodeId u) {
  const bool is_descendant = doc.IsAncestorOrSelf(origin, u) && u != origin;
  const bool is_ancestor = doc.IsAncestorOrSelf(u, origin) && u != origin;
  const bool same_parent = doc.parent(u) == doc.parent(origin) &&
                           doc.parent(origin) != xml::kNullNode;
  switch (axis) {
    case Axis::kSelf: return u == origin;
    case Axis::kChild: return doc.parent(u) == origin;
    case Axis::kParent: return doc.parent(origin) == u;
    case Axis::kDescendant: return is_descendant;
    case Axis::kDescendantOrSelf: return is_descendant || u == origin;
    case Axis::kAncestor: return is_ancestor;
    case Axis::kAncestorOrSelf: return is_ancestor || u == origin;
    case Axis::kFollowing:
      return u > origin && !is_descendant;
    case Axis::kPreceding:
      return u < origin && !is_ancestor;
    case Axis::kFollowingSibling: return same_parent && u > origin;
    case Axis::kPrecedingSibling: return same_parent && u < origin;
  }
  return false;
}

std::vector<NodeId> BruteAxisNodes(const Document& doc, NodeId origin, Axis axis) {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < doc.size(); ++u) {
    if (BruteContains(doc, origin, axis, u)) out.push_back(u);
  }
  if (xpath::IsReverseAxis(axis)) std::reverse(out.begin(), out.end());
  return out;
}

constexpr Axis kAxes[] = {
    Axis::kSelf,           Axis::kChild,
    Axis::kParent,         Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing,
    Axis::kFollowingSibling, Axis::kPreceding,
    Axis::kPrecedingSibling,
};

class AxisPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AxisPropertyTest, MatchesBruteForceOnRandomDocuments) {
  Rng rng(GetParam());
  xml::RandomDocumentOptions options;
  options.node_count = 1 + static_cast<int32_t>(GetParam() % 97);
  options.chain_bias = (GetParam() % 7) / 7.0;
  Document doc = xml::RandomDocument(&rng, options);
  const ResolvedTest any{xpath::NodeTest::Kind::kAny, xml::kNoName};

  for (NodeId origin = 0; origin < doc.size(); ++origin) {
    for (Axis axis : kAxes) {
      const std::vector<NodeId> expected = BruteAxisNodes(doc, origin, axis);
      const std::vector<NodeId> actual = AxisNodes(doc, origin, axis, any);
      ASSERT_EQ(actual, expected)
          << "axis " << xpath::AxisName(axis) << " from " << origin;
      // Membership agrees with enumeration.
      for (NodeId u = 0; u < doc.size(); ++u) {
        ASSERT_EQ(AxisContains(doc, origin, axis, u),
                  BruteContains(doc, origin, axis, u))
            << xpath::AxisName(axis) << " origin=" << origin << " u=" << u;
      }
      // Streaming positions agree with enumeration ranks.
      for (size_t rank = 0; rank < actual.size(); ++rank) {
        int64_t position = 0;
        int64_t size = 0;
        ASSERT_TRUE(AxisPositionOf(doc, origin, axis, any, actual[rank],
                                   &position, &size));
        EXPECT_EQ(position, static_cast<int64_t>(rank + 1));
        EXPECT_EQ(size, static_cast<int64_t>(actual.size()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisPropertyTest,
                         ::testing::Values(3, 17, 29, 41, 53, 67, 79));

TEST(AxisOrderTest, ForwardAxesAscendReverseAxesDescend) {
  Rng rng(5);
  xml::RandomDocumentOptions options;
  options.node_count = 80;
  Document doc = xml::RandomDocument(&rng, options);
  const ResolvedTest any{xpath::NodeTest::Kind::kAny, xml::kNoName};
  for (NodeId origin = 0; origin < doc.size(); ++origin) {
    for (Axis axis : kAxes) {
      std::vector<NodeId> nodes = AxisNodes(doc, origin, axis, any);
      for (size_t i = 1; i < nodes.size(); ++i) {
        if (xpath::IsReverseAxis(axis)) {
          EXPECT_LT(nodes[i], nodes[i - 1]);
        } else {
          EXPECT_GT(nodes[i], nodes[i - 1]);
        }
      }
    }
  }
}

TEST(AxisTest, EarlyStopEnumeration) {
  Document doc = xml::BalancedDocument(3, 3);
  int visited = 0;
  ForEachOnAxis(doc, 0, Axis::kDescendant, [&](xml::NodeId) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(visited, 5);
}

TEST(ResolvedTestTest, NameMatchingIncludesLabels) {
  xml::TreeBuilder builder("root");
  xml::BuildNodeId v = builder.AddChild(builder.root(), "n");
  builder.AddLabel(v, "G");
  Document doc = std::move(builder).Build();

  ResolvedTest g = ResolvedTest::Resolve(doc, xpath::NodeTest::Name("G"));
  EXPECT_TRUE(g.Matches(doc, 1));
  EXPECT_FALSE(g.Matches(doc, 0));

  ResolvedTest missing = ResolvedTest::Resolve(doc, xpath::NodeTest::Name("Z"));
  EXPECT_FALSE(missing.Matches(doc, 0));
  EXPECT_FALSE(missing.Matches(doc, 1));

  ResolvedTest any = ResolvedTest::Resolve(doc, xpath::NodeTest::Any());
  EXPECT_TRUE(any.Matches(doc, 0));
}

TEST(AxisTest, PartitionOfDocument) {
  // self ∪ ancestor ∪ descendant ∪ following ∪ preceding = dom, disjointly
  // (the classic XPath axis partition).
  Rng rng(23);
  xml::RandomDocumentOptions options;
  options.node_count = 60;
  Document doc = xml::RandomDocument(&rng, options);
  for (NodeId origin = 0; origin < doc.size(); ++origin) {
    for (NodeId u = 0; u < doc.size(); ++u) {
      int memberships = 0;
      for (Axis axis : {Axis::kSelf, Axis::kAncestor, Axis::kDescendant,
                        Axis::kFollowing, Axis::kPreceding}) {
        if (AxisContains(doc, origin, axis, u)) ++memberships;
      }
      ASSERT_EQ(memberships, 1) << "origin=" << origin << " u=" << u;
    }
  }
}

}  // namespace
}  // namespace gkx::eval
