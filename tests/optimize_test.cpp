// Optimizer tests: structural expectations for each rewrite, the famous
// //para[1] ≠ /descendant::para[1] suppression, and differential
// equivalence of optimized vs original queries on random documents across
// all contexts.

#include <gtest/gtest.h>

#include "eval/cvt_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/optimize.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::xpath {
namespace {

std::string Optimized(std::string_view text, OptimizeStats* stats = nullptr) {
  Query query = MustParse(text);
  return ToXPathString(Optimize(query, stats));
}

TEST(OptimizeTest, FusesDoubleSlashIdiom) {
  OptimizeStats stats;
  EXPECT_EQ(Optimized("//a", &stats), "/descendant::a");
  EXPECT_EQ(stats.fused_steps, 1);
  EXPECT_EQ(Optimized("a//b"), "child::a/descendant::b");
  EXPECT_EQ(Optimized("//a//b"), "/descendant::a/descendant::b");
  EXPECT_EQ(Optimized("//a[child::b]"), "/descendant::a[child::b]");
}

TEST(OptimizeTest, FusesDescendantAfterDos) {
  EXPECT_EQ(Optimized("descendant-or-self::node()/descendant::a"),
            "descendant::a");
}

TEST(OptimizeTest, SuppressesFusionForPositionalPredicates) {
  // //para[1] selects the first para child of each ancestor — NOT the first
  // descendant. The optimizer must leave it alone.
  EXPECT_EQ(Optimized("//a[1]"),
            "/descendant-or-self::node()/child::a[1]");
  EXPECT_EQ(Optimized("//a[position() = 2]"),
            "/descendant-or-self::node()/child::a[position() = 2]");
  EXPECT_EQ(Optimized("//a[last()]"),
            "/descendant-or-self::node()/child::a[last()]");
  // Non-positional predicates fuse fine.
  EXPECT_EQ(Optimized("//a[child::b and not(child::c)]"),
            "/descendant::a[child::b and not(child::c)]");
}

TEST(OptimizeTest, DropsIdentitySelfSteps) {
  EXPECT_EQ(Optimized("./child::a"), "child::a");
  EXPECT_EQ(Optimized("child::a/."), "child::a");
  EXPECT_EQ(Optimized("."), "self::node()");     // sole step must stay
  EXPECT_EQ(Optimized("/."), "/");
  // self with a test or predicate is not an identity.
  EXPECT_EQ(Optimized("self::a/child::b"), "self::a/child::b");
  EXPECT_EQ(Optimized("self::node()[child::a]/child::b"),
            "self::node()[child::a]/child::b");
}

TEST(OptimizeTest, DropsTrivialPredicates) {
  OptimizeStats stats;
  EXPECT_EQ(Optimized("child::a[true()]", &stats), "child::a");
  EXPECT_EQ(stats.dropped_predicates, 1);
  EXPECT_EQ(Optimized("child::a[position() >= 1]"), "child::a");
  EXPECT_EQ(Optimized("child::a[position() <= last()]"), "child::a");
  // Near-misses stay.
  EXPECT_EQ(Optimized("child::a[position() >= 2]"),
            "child::a[position() >= 2]");
  EXPECT_EQ(Optimized("child::a[false()]"), "child::a[false()]");
}

TEST(OptimizeTest, FlattensNestedUnions) {
  OptimizeStats stats;
  EXPECT_EQ(Optimized("a | (b | c)", &stats), "child::a | child::b | child::c");
  EXPECT_EQ(stats.unwrapped_unions, 1);
}

TEST(OptimizeTest, RewritesInsidePredicates) {
  EXPECT_EQ(Optimized("child::a[.//b]"),
            "child::a[descendant::b]");
}

TEST(OptimizeTest, StatsTotals) {
  OptimizeStats stats;
  Optimized("//a[true()]/./b", &stats);
  EXPECT_GE(stats.Total(), 3);  // fusion + trivial predicate + self drop
}

// Differential: optimization must preserve semantics everywhere.
class OptimizeEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimizeEquivalenceTest, OptimizedQueryIsEquivalent) {
  Query original = MustParse(GetParam());
  Query optimized = Optimize(original);
  Rng rng(2718);
  xml::RandomDocumentOptions options;
  options.node_count = 50;
  eval::CvtEvaluator engine;
  for (int trial = 0; trial < 5; ++trial) {
    xml::Document doc = xml::RandomDocument(&rng, options);
    for (xml::NodeId v = 0; v < doc.size(); v += 4) {
      eval::Context ctx{v, 1, 1};
      auto a = engine.Evaluate(doc, original, ctx);
      auto b = engine.Evaluate(doc, optimized, ctx);
      ASSERT_TRUE(a.ok() && b.ok()) << GetParam();
      EXPECT_TRUE(a->Equals(*b))
          << GetParam() << "  =>  " << ToXPathString(optimized) << " at node "
          << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, OptimizeEquivalenceTest,
    ::testing::Values("//t1", "t0//t1", "//t0//t1[child::t2]", "//t1[1]",
                      ".//t2[position() = last()]", "./t0/./t1/.",
                      "//t0[true()][child::t1]",
                      "t0[position() >= 1][position() <= last()]",
                      "descendant-or-self::node()/descendant::t3",
                      "t0 | (t1 | t2)",
                      "//t0[.//t1 or not(.//t2)]",
                      "self::node()/self::node()/t1"));

}  // namespace
}  // namespace gkx::xpath
