// Tests for the document model and builder: preorder invariants, tree links,
// subtree sizes, depths, labels, string values, and structural equality.

#include <gtest/gtest.h>

#include "xml/builder.hpp"
#include "xml/document.hpp"
#include "xml/generator.hpp"

namespace gkx::xml {
namespace {

// <a><b><d/><e/></b><c/></a>
Document SampleDoc() {
  TreeBuilder builder("a");
  BuildNodeId b = builder.AddChild(builder.root(), "b");
  builder.AddChild(b, "d");
  builder.AddChild(b, "e");
  builder.AddChild(builder.root(), "c");
  return std::move(builder).Build();
}

TEST(DocumentTest, PreorderNumbering) {
  Document doc = SampleDoc();
  ASSERT_EQ(doc.size(), 5);
  EXPECT_EQ(doc.TagName(0), "a");
  EXPECT_EQ(doc.TagName(1), "b");
  EXPECT_EQ(doc.TagName(2), "d");
  EXPECT_EQ(doc.TagName(3), "e");
  EXPECT_EQ(doc.TagName(4), "c");
}

TEST(DocumentTest, TreeLinks) {
  Document doc = SampleDoc();
  EXPECT_EQ(doc.parent(0), kNullNode);
  EXPECT_EQ(doc.parent(1), 0);
  EXPECT_EQ(doc.parent(2), 1);
  EXPECT_EQ(doc.parent(4), 0);
  EXPECT_EQ(doc.first_child(0), 1);
  EXPECT_EQ(doc.last_child(0), 4);
  EXPECT_EQ(doc.next_sibling(1), 4);
  EXPECT_EQ(doc.prev_sibling(4), 1);
  EXPECT_EQ(doc.next_sibling(2), 3);
  EXPECT_EQ(doc.prev_sibling(3), 2);
}

TEST(DocumentTest, SubtreeSizes) {
  Document doc = SampleDoc();
  EXPECT_EQ(doc.subtree_size(0), 5);
  EXPECT_EQ(doc.subtree_size(1), 3);
  EXPECT_EQ(doc.subtree_size(2), 1);
  EXPECT_EQ(doc.subtree_size(4), 1);
}

TEST(DocumentTest, Depths) {
  Document doc = SampleDoc();
  EXPECT_EQ(doc.depth(0), 0);
  EXPECT_EQ(doc.depth(1), 1);
  EXPECT_EQ(doc.depth(2), 2);
  EXPECT_EQ(doc.depth(4), 1);
}

TEST(DocumentTest, ChildrenHelper) {
  Document doc = SampleDoc();
  EXPECT_EQ(doc.Children(0), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(doc.Children(1), (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(doc.Children(2).empty());
  EXPECT_EQ(doc.ChildCount(0), 2);
}

TEST(DocumentTest, IsAncestorOrSelf) {
  Document doc = SampleDoc();
  EXPECT_TRUE(doc.IsAncestorOrSelf(0, 3));
  EXPECT_TRUE(doc.IsAncestorOrSelf(1, 1));
  EXPECT_TRUE(doc.IsAncestorOrSelf(1, 3));
  EXPECT_FALSE(doc.IsAncestorOrSelf(1, 4));
  EXPECT_FALSE(doc.IsAncestorOrSelf(3, 1));
}

TEST(DocumentTest, MultiLabels) {
  TreeBuilder builder("root");
  BuildNodeId v = builder.AddChild(builder.root(), "n");
  builder.AddLabel(v, "G");
  builder.AddLabel(v, "I3");
  builder.AddLabel(v, "G");  // duplicate ignored
  Document doc = std::move(builder).Build();
  EXPECT_TRUE(doc.NodeHasName(1, "n"));   // primary tag
  EXPECT_TRUE(doc.NodeHasName(1, "G"));   // label
  EXPECT_TRUE(doc.NodeHasName(1, "I3"));
  EXPECT_FALSE(doc.NodeHasName(1, "R"));
  EXPECT_FALSE(doc.NodeHasName(0, "G"));
  EXPECT_EQ(doc.labels(1).size(), 2u);
}

TEST(DocumentTest, LabelEqualToTagIsNotDuplicated) {
  TreeBuilder builder("root");
  BuildNodeId v = builder.AddChild(builder.root(), "G");
  builder.AddLabel(v, "G");
  Document doc = std::move(builder).Build();
  EXPECT_TRUE(doc.labels(1).empty());
  EXPECT_TRUE(doc.NodeHasName(1, "G"));
}

TEST(DocumentTest, FindNameMissing) {
  Document doc = SampleDoc();
  EXPECT_EQ(doc.FindName("zebra"), kNoName);
  EXPECT_NE(doc.FindName("a"), kNoName);
}

TEST(DocumentTest, StringValueConcatenatesSubtreeText) {
  TreeBuilder builder("a");
  builder.SetText(builder.root(), "x");
  BuildNodeId b = builder.AddChild(builder.root(), "b");
  builder.SetText(b, "y");
  BuildNodeId c = builder.AddChild(builder.root(), "c");
  builder.SetText(c, "z");
  Document doc = std::move(builder).Build();
  EXPECT_EQ(doc.StringValue(0), "xyz");
  EXPECT_EQ(doc.StringValue(1), "y");
}

TEST(DocumentTest, Attributes) {
  TreeBuilder builder("a");
  builder.AddAttribute(builder.root(), "id", "r1");
  Document doc = std::move(builder).Build();
  EXPECT_EQ(doc.AttributeValue(0, "id"), "r1");
  EXPECT_EQ(doc.AttributeValue(0, "missing"), "");
}

TEST(DocumentTest, Stats) {
  Document doc = SampleDoc();
  DocumentStats stats = doc.Stats();
  EXPECT_EQ(stats.node_count, 5);
  EXPECT_EQ(stats.max_depth, 2);
  EXPECT_EQ(stats.max_fanout, 2);
}

TEST(DocumentTest, StructuralEquality) {
  Document a = SampleDoc();
  Document b = SampleDoc();
  EXPECT_TRUE(a.StructurallyEquals(b));
  TreeBuilder builder("a");
  builder.AddChild(builder.root(), "b");
  Document c = std::move(builder).Build();
  EXPECT_FALSE(a.StructurallyEquals(c));
}

TEST(BuilderTest, AddChain) {
  TreeBuilder builder("root");
  BuildNodeId tip = builder.AddChain(builder.root(), "x", 4);
  Document doc = std::move(builder).Build();
  (void)tip;
  ASSERT_EQ(doc.size(), 5);
  EXPECT_EQ(doc.depth(4), 4);
  EXPECT_EQ(doc.Stats().max_depth, 4);
}

TEST(GeneratorTest, RandomDocumentSizeAndDeterminism) {
  RandomDocumentOptions options;
  options.node_count = 200;
  options.max_extra_labels = 2;
  Rng rng1(42);
  Rng rng2(42);
  Document a = RandomDocument(&rng1, options);
  Document b = RandomDocument(&rng2, options);
  EXPECT_EQ(a.size(), 200);
  EXPECT_TRUE(a.StructurallyEquals(b));
}

TEST(GeneratorTest, ChainBiasProducesDeepTrees) {
  RandomDocumentOptions options;
  options.node_count = 100;
  options.chain_bias = 1.0;
  Rng rng(1);
  Document doc = RandomDocument(&rng, options);
  EXPECT_EQ(doc.Stats().max_depth, 99);
}

TEST(GeneratorTest, BalancedDocument) {
  Document doc = BalancedDocument(3, 3);
  EXPECT_EQ(doc.size(), 1 + 3 + 9 + 27);
  EXPECT_EQ(doc.Stats().max_depth, 3);
  EXPECT_EQ(doc.Stats().max_fanout, 3);
}

TEST(GeneratorTest, ChainDocument) {
  Document doc = ChainDocument(10);
  EXPECT_EQ(doc.size(), 10);
  EXPECT_EQ(doc.Stats().max_depth, 9);
  EXPECT_EQ(doc.Stats().max_fanout, 1);
}

TEST(GeneratorTest, WideShallowDocument) {
  Document doc = WideShallowDocument(7);
  EXPECT_EQ(doc.size(), 1 + 2 * 7);
  EXPECT_EQ(doc.Stats().max_depth, 2);
  EXPECT_EQ(doc.Stats().max_fanout, 7);
}

// Preorder/structure invariants on random documents (property sweep).
class RandomDocInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDocInvariantTest, Invariants) {
  Rng rng(GetParam());
  RandomDocumentOptions options;
  options.node_count = 1 + static_cast<int32_t>(GetParam() % 257);
  options.chain_bias = (GetParam() % 10) / 10.0;
  Document doc = RandomDocument(&rng, options);
  ASSERT_EQ(doc.size(), options.node_count);
  int64_t subtree_sum = 0;
  for (NodeId v = 0; v < doc.size(); ++v) {
    subtree_sum += doc.subtree_size(v);
    if (v == 0) {
      EXPECT_EQ(doc.parent(v), kNullNode);
      EXPECT_EQ(doc.depth(v), 0);
    } else {
      ASSERT_GE(doc.parent(v), 0);
      ASSERT_LT(doc.parent(v), v);  // parents precede children in preorder
      EXPECT_EQ(doc.depth(v), doc.depth(doc.parent(v)) + 1);
      EXPECT_TRUE(doc.IsAncestorOrSelf(doc.parent(v), v));
    }
    // Children enumeration matches parent pointers.
    for (NodeId c : doc.Children(v)) EXPECT_EQ(doc.parent(c), v);
    // Subtree range property: nodes in (v, v+size) have v as an ancestor.
    for (NodeId u = v + 1; u < v + doc.subtree_size(v); ++u) {
      EXPECT_TRUE(doc.IsAncestorOrSelf(v, u));
    }
  }
  // Sum of subtree sizes = sum over nodes of (depth+1).
  int64_t depth_sum = 0;
  for (NodeId v = 0; v < doc.size(); ++v) depth_sum += doc.depth(v) + 1;
  EXPECT_EQ(subtree_sum, depth_sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDocInvariantTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace gkx::xml
