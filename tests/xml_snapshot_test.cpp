// Snapshot format tests: save/map round-trips (including payload-heavy and
// mapped-copy cases), serving queries straight off a mapping, and the
// corruption matrix — truncations at every prefix length, version bumps,
// checksum damage, bad magic, and missing files must all fail with clean
// diagnostics, never UB.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "testkit/reference_edit.hpp"
#include "xml/edit.hpp"
#include "xml/generator.hpp"
#include "xml/index.hpp"
#include "xml/parser.hpp"
#include "xml/snapshot.hpp"

namespace gkx::xml {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Document PayloadHeavyDoc() {
  auto doc = ParseDocument(
      "<r id='1' class='x y'><a labels='G R I1'>alpha</a>"
      "<b>beta<b2 k='v'/>gamma</b><c labels='G'/><d/></r>");
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

void ExpectMapFails(const std::string& path, std::string_view fragment) {
  auto mapped = MapSnapshot(path);
  ASSERT_FALSE(mapped.ok()) << "expected failure containing '" << fragment
                            << "'";
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument)
      << mapped.status().ToString();
  EXPECT_NE(mapped.status().message().find(fragment), std::string::npos)
      << mapped.status().message();
}

TEST(SnapshotTest, RoundTripPreservesEveryField) {
  const std::string path = TempPath("roundtrip.gkx");
  Document original = PayloadHeavyDoc();
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mapped());
  std::string why;
  EXPECT_TRUE(testkit::ExhaustiveEquals(original, *mapped, &why)) << why;
  std::remove(path.c_str());
}

TEST(SnapshotTest, MappedDocumentServesQueries) {
  const std::string path = TempPath("serving.gkx");
  Document original = PayloadHeavyDoc();
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok());
  // Name lookups, payload reads, and the index all work off the mapping.
  EXPECT_TRUE(mapped->NodeHasName(1, "G"));
  EXPECT_EQ(mapped->AttributeValue(0, "class"), "x y");
  EXPECT_EQ(mapped->StringValue(2), "betagamma");
  DocumentIndex index(*mapped);
  DocumentIndex fresh(original);
  for (const std::string& name : fresh.PresentNames()) {
    EXPECT_EQ(index.NodesWithName(name), fresh.NodesWithName(name)) << name;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, MappedDocumentCopiesMaterializeAndEdit) {
  const std::string path = TempPath("editable.gkx");
  Document original = PayloadHeavyDoc();
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok());
  SubtreeEdit edit;
  edit.kind = SubtreeEdit::Kind::kSetText;
  edit.target = 1;
  edit.text = "edited";
  auto edited = ApplyEdit(*mapped, edit);
  ASSERT_TRUE(edited.ok()) << edited.status().ToString();
  EXPECT_FALSE(edited->mapped());
  EXPECT_EQ(edited->text(1), "edited");
  // The mapping is untouched.
  EXPECT_EQ(mapped->text(1), "alpha");
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveOverwritesAtomically) {
  const std::string path = TempPath("overwrite.gkx");
  Document original = PayloadHeavyDoc();
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  Document small = ChainDocument(3);
  ASSERT_TRUE(SaveSnapshot(small, path).ok());
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->size(), 3);
  std::remove(path.c_str());
}

// --- the corruption matrix ---

TEST(SnapshotCorruptionTest, EveryTruncationFailsCleanly) {
  const std::string path = TempPath("truncated.gkx");
  ASSERT_TRUE(SaveSnapshot(ChainDocument(5), path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 0u);
  // Every proper prefix must be rejected (header-size check or the
  // header-declared file_size check), never mapped.
  for (size_t length = 0; length < bytes.size();
       length += (length < 400 ? 1 : 97)) {
    WriteFile(path, std::string_view(bytes).substr(0, length));
    ExpectMapFails(path, "truncated");
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, VersionBumpIsDiagnosed) {
  const std::string path = TempPath("version.gkx");
  ASSERT_TRUE(SaveSnapshot(ChainDocument(5), path).ok());
  std::string bytes = ReadFile(path);
  // The version field sits right after the 8-byte magic.
  bytes[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  WriteFile(path, bytes);
  ExpectMapFails(path, "format version");
}

TEST(SnapshotCorruptionTest, HeaderBitFlipFailsChecksum) {
  const std::string path = TempPath("bitflip.gkx");
  ASSERT_TRUE(SaveSnapshot(ChainDocument(5), path).ok());
  const std::string pristine = ReadFile(path);
  // Flip one byte at several header positions past magic+version (node
  // count, pool counts, section offsets/sizes): all must fail the checksum
  // (or a later structural check), none may map.
  for (size_t at : {16u, 24u, 40u, 56u, 120u, 200u}) {
    std::string bytes = pristine;
    ASSERT_LT(at, bytes.size());
    bytes[at] = static_cast<char>(bytes[at] ^ 0x5a);
    WriteFile(path, bytes);
    auto mapped = MapSnapshot(path);
    ASSERT_FALSE(mapped.ok()) << "byte " << at;
    EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, BadMagicIsDiagnosed) {
  const std::string path = TempPath("magic.gkx");
  ASSERT_TRUE(SaveSnapshot(ChainDocument(5), path).ok());
  std::string bytes = ReadFile(path);
  bytes[0] = 'Z';
  WriteFile(path, bytes);
  ExpectMapFails(path, "bad magic");
  // An unrelated file of plausible size is also just "not a snapshot".
  WriteFile(path, std::string(4096, 'x'));
  ExpectMapFails(path, "bad magic");
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, MissingFileFailsWithoutCreating) {
  const std::string path = TempPath("never_written.gkx");
  auto mapped = MapSnapshot(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_NE(mapped.status().ToString().find(path), std::string::npos);
}

// --- crash-mid-save teeth (the WAL's checkpoint atomicity rests on these) ---

// A crash can strand a stale ".tmp" sibling from an earlier save. The next
// save must plow through it, and the final file must be the new snapshot.
TEST(SnapshotCrashTest, StaleTempFileNeverPoisonsTheNextSave) {
  const std::string path = TempPath("stale_tmp.gkx");
  WriteFile(path + ".tmp", "garbage left by a crashed saver");
  Document original = PayloadHeavyDoc();
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  std::string why;
  EXPECT_TRUE(testkit::ExhaustiveEquals(original, *mapped, &why)) << why;
  // The temp sibling was consumed by the rename, not left behind.
  EXPECT_FALSE(MapSnapshot(path + ".tmp").ok());
  std::remove(path.c_str());
}

// A crash between the temp write and the rename leaves a partial ".tmp" and
// an intact previous snapshot: readers of `path` must still see the OLD
// document — the half-written bytes are invisible until the atomic rename.
TEST(SnapshotCrashTest, PartialTempWriteLeavesPreviousSnapshotReadable) {
  const std::string path = TempPath("partial_tmp.gkx");
  ASSERT_TRUE(SaveSnapshot(ChainDocument(4), path).ok());
  // Fabricate the crash: a prefix of a real snapshot, parked at the temp
  // name (never renamed).
  const std::string next = TempPath("partial_tmp_next.gkx");
  ASSERT_TRUE(SaveSnapshot(PayloadHeavyDoc(), next).ok());
  WriteFile(path + ".tmp", ReadFile(next).substr(0, 100));
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->size(), 4);
  // And if the crash happened before ANY snapshot existed, the target path
  // simply does not exist — a clean, diagnosable miss, not a torn read.
  const std::string never = TempPath("crashed_first_save.gkx");
  WriteFile(never + ".tmp", ReadFile(next).substr(0, 100));
  EXPECT_FALSE(MapSnapshot(never).ok());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove(next.c_str());
  std::remove((never + ".tmp").c_str());
}

// An unwritable temp path (here: the ".tmp" name is a directory) fails the
// save cleanly and leaves the existing snapshot untouched.
TEST(SnapshotCrashTest, UnwritableTempFailsWithoutTouchingTarget) {
  const std::string path = TempPath("blocked_tmp.gkx");
  ASSERT_TRUE(SaveSnapshot(ChainDocument(6), path).ok());
  ASSERT_TRUE(std::filesystem::create_directory(path + ".tmp"));
  EXPECT_FALSE(SaveSnapshot(PayloadHeavyDoc(), path).ok());
  auto mapped = MapSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->size(), 6);
  std::filesystem::remove(path + ".tmp");
  std::remove(path.c_str());
}

// --- the in-memory bytes codec (the WAL embeds snapshots in records) ---

TEST(SnapshotBytesTest, BytesRoundTripPreservesEveryField) {
  Document original = PayloadHeavyDoc();
  std::string bytes;
  SaveSnapshotBytes(original, &bytes);
  auto loaded = LoadSnapshotBytes(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->mapped());  // owned copy, independently editable
  std::string why;
  EXPECT_TRUE(testkit::ExhaustiveEquals(original, *loaded, &why)) << why;
}

TEST(SnapshotBytesTest, BytesMatchTheFileFormat) {
  // One codec, two carriers: the bytes SaveSnapshotBytes produces are the
  // same bytes SaveSnapshot writes (so WAL-embedded and checkpoint-file
  // snapshots can never drift apart).
  const std::string path = TempPath("bytes_vs_file.gkx");
  Document original = PayloadHeavyDoc();
  ASSERT_TRUE(SaveSnapshot(original, path).ok());
  std::string bytes;
  SaveSnapshotBytes(original, &bytes);
  EXPECT_EQ(bytes, ReadFile(path));
  std::remove(path.c_str());
}

TEST(SnapshotBytesTest, CorruptBytesAreRejected) {
  std::string bytes;
  SaveSnapshotBytes(ChainDocument(5), &bytes);
  for (size_t length = 0; length < bytes.size();
       length += (length < 400 ? 7 : 111)) {
    EXPECT_FALSE(LoadSnapshotBytes(bytes.substr(0, length)).ok())
        << "prefix " << length;
  }
  std::string flipped = bytes;
  flipped[24] = static_cast<char>(flipped[24] ^ 0x5a);
  EXPECT_FALSE(LoadSnapshotBytes(flipped).ok());
}

}  // namespace
}  // namespace gkx::xml
