// Theorem 4.3 / Figure 5 property tests: the PF query of the reachability
// reduction selects a non-empty node set iff dst is BFS-reachable from src.
// Structural invariants: the query is PF (predicate-free), uses only the
// axes child/parent/descendant/self, and document/query sizes are polynomial.

#include <gtest/gtest.h>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "graphs/digraph.hpp"
#include "reductions/reach_to_pf.hpp"
#include "xpath/analysis.hpp"
#include "xpath/fragment.hpp"

namespace gkx::reductions {
namespace {

using eval::CoreLinearEvaluator;
using graphs::CycleGraph;
using graphs::Digraph;
using graphs::IsReachable;
using graphs::PathGraph;
using graphs::RandomDigraph;

bool ReductionAnswer(const ReachabilityReduction& instance) {
  CoreLinearEvaluator linear;
  auto nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
  EXPECT_TRUE(nodes.ok()) << nodes.status().ToString();
  return !nodes->empty();
}

TEST(ReachReductionTest, PathGraphForwardOnly) {
  Digraph graph = PathGraph(4);
  for (int32_t u = 0; u < 4; ++u) {
    for (int32_t v = 0; v < 4; ++v) {
      ReachabilityReduction instance = ReachabilityToPf(graph, u, v);
      EXPECT_EQ(ReductionAnswer(instance), u <= v) << u << "->" << v;
    }
  }
}

TEST(ReachReductionTest, CycleEverythingReachable) {
  Digraph graph = CycleGraph(5);
  for (int32_t u = 0; u < 5; ++u) {
    for (int32_t v = 0; v < 5; ++v) {
      ReachabilityReduction instance = ReachabilityToPf(graph, u, v);
      EXPECT_TRUE(ReductionAnswer(instance)) << u << "->" << v;
    }
  }
}

TEST(ReachReductionTest, NoEdgesOnlySelfReachable) {
  Digraph graph(3);
  for (int32_t u = 0; u < 3; ++u) {
    for (int32_t v = 0; v < 3; ++v) {
      ReachabilityReduction instance = ReachabilityToPf(graph, u, v);
      EXPECT_EQ(ReductionAnswer(instance), u == v);
    }
  }
}

TEST(ReachReductionTest, QueryIsPF) {
  Digraph graph = PathGraph(4);
  ReachabilityReduction instance = ReachabilityToPf(graph, 0, 3);
  xpath::FragmentReport report = xpath::Classify(instance.query);
  EXPECT_TRUE(report.in_pf);
  EXPECT_EQ(report.smallest, xpath::Fragment::kPF);

  xpath::QueryAnalysis analysis = xpath::Analyze(instance.query);
  using xpath::Axis;
  EXPECT_EQ(analysis.max_predicates_per_step, 0);
  for (int a = 0; a < xpath::kNumAxes; ++a) {
    Axis axis = static_cast<Axis>(a);
    bool allowed = axis == Axis::kChild || axis == Axis::kParent ||
                   axis == Axis::kDescendant || axis == Axis::kSelf;
    if (!allowed) {
      EXPECT_FALSE(analysis.axes_used[static_cast<size_t>(axis)])
          << xpath::AxisName(axis);
    }
  }
}

TEST(ReachReductionTest, SizesArePolynomial) {
  Rng rng(5);
  for (int32_t n : {3, 6, 12}) {
    Digraph graph = RandomDigraph(&rng, n, 0.3);
    ReachabilityReduction instance = ReachabilityToPf(graph, 0, n - 1);
    // Document: O(n * |E| * n) nodes; query: O(n^2) steps.
    const int64_t edges = graph.num_edges() + n;  // + self loops
    EXPECT_LE(instance.doc.Stats().node_count, 2 + 2 * n + n + edges * (3 * n + 2));
    EXPECT_LE(instance.query.size(),
              2 * (2 + static_cast<int64_t>(n) * (4 * n + 3)));
  }
}

struct ReachCase {
  uint64_t seed;
  int32_t n;
  double p;
};

class ReachPropertyTest : public ::testing::TestWithParam<ReachCase> {};

TEST_P(ReachPropertyTest, AgreesWithBfs) {
  const ReachCase& param = GetParam();
  Rng rng(param.seed);
  Digraph graph = RandomDigraph(&rng, param.n, param.p);
  // Shared document; per-pair queries.
  Digraph with_loops = graph;
  with_loops.AddSelfLoops();
  xml::Document doc = ReachabilityDocument(with_loops);
  CoreLinearEvaluator linear;
  for (int trial = 0; trial < 10; ++trial) {
    const int32_t src = static_cast<int32_t>(rng.UniformInt(0, param.n - 1));
    const int32_t dst = static_cast<int32_t>(rng.UniformInt(0, param.n - 1));
    xpath::Query query = ReachabilityQuery(param.n, src, dst);
    auto nodes = linear.EvaluateNodeSet(doc, query);
    ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
    EXPECT_EQ(!nodes->empty(), IsReachable(graph, src, dst))
        << "seed=" << param.seed << " " << src << "->" << dst;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReachPropertyTest,
                         ::testing::Values(ReachCase{11, 4, 0.3},
                                           ReachCase{12, 6, 0.2},
                                           ReachCase{13, 8, 0.15},
                                           ReachCase{14, 8, 0.4},
                                           ReachCase{15, 10, 0.1},
                                           ReachCase{16, 12, 0.12}));

TEST(ReachReductionTest, CvtEngineAgreesOnSmallInstance) {
  Rng rng(21);
  Digraph graph = RandomDigraph(&rng, 5, 0.3);
  for (int32_t v = 0; v < 5; ++v) {
    ReachabilityReduction instance = ReachabilityToPf(graph, 0, v);
    eval::CvtEvaluator cvt;
    auto nodes = cvt.EvaluateNodeSet(instance.doc, instance.query);
    ASSERT_TRUE(nodes.ok());
    EXPECT_EQ(!nodes->empty(), IsReachable(graph, 0, v));
  }
}

}  // namespace
}  // namespace gkx::reductions
