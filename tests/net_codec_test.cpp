// gkx::net — the wire codec and the blocking TCP front-end.
//   * Golden frame bytes: the exact encoding of a representative request is
//     pinned hex-byte-for-hex-byte (version byte, type byte, little-endian
//     lengths, CRC). A mismatch is a protocol break: bump kWireVersion.
//   * Round trips: every message type, every value kind (including NaN
//     payloads and signed zeros via raw IEEE-754 bits), fragment reports,
//     subtree edits, non-OK statuses.
//   * Rejection: wrong version, unknown type, truncated bodies, trailing
//     bytes, CRC mismatches, oversized size fields — all fail cleanly.
//   * Dispatch: the server's request→response mapping, without sockets.
//   * Loopback: a real server + client over 127.0.0.1 — register, query,
//     batch (answers byte-identical to in-process), update, stats, remove.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "eval/value.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "service/sharded_service.hpp"
#include "testkit/oracle.hpp"
#include "wal/record.hpp"
#include "xml/parser.hpp"

namespace gkx::net {
namespace {

std::string Hex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

Message RoundTrip(const Message& message) {
  Result<Message> decoded = DecodeMessage(EncodeMessage(message));
  EXPECT_TRUE(decoded.ok()) << decoded.status().message();
  return decoded.ok() ? *decoded : Message{};
}

// ------------------------------------------------------------------ golden

TEST(NetCodecTest, GoldenSubmitPayloadBytes) {
  Message message;
  message.type = MsgType::kSubmit;
  message.requests.push_back({"doc7", "//a"});
  const std::string payload = EncodeMessage(message);
  // [01 version][02 kSubmit][04000000 "doc7"][03000000 "//a"]
  EXPECT_EQ(Hex(payload), "010204000000646f6337030000002f2f61");

  std::string frame;
  AppendFrame(payload, &frame);
  // [11000000 size][crc32 LE][payload]
  ASSERT_EQ(frame.size(), payload.size() + 8);
  uint32_t size = 0, crc = 0;
  std::memcpy(&size, frame.data(), 4);
  std::memcpy(&crc, frame.data() + 4, 4);
  EXPECT_EQ(size, payload.size());
  EXPECT_EQ(crc, wal::Crc32(payload.data(), payload.size()));
  EXPECT_EQ(frame.substr(8), payload);
}

TEST(NetCodecTest, GoldenTypeAndVersionBytes) {
  // The numeric type bytes are the protocol; enum reordering must not leak
  // onto the wire unnoticed.
  EXPECT_EQ(static_cast<int>(MsgType::kPing), 1);
  EXPECT_EQ(static_cast<int>(MsgType::kSubmit), 2);
  EXPECT_EQ(static_cast<int>(MsgType::kSubmitBatch), 3);
  EXPECT_EQ(static_cast<int>(MsgType::kRegisterXml), 4);
  EXPECT_EQ(static_cast<int>(MsgType::kUpdate), 5);
  EXPECT_EQ(static_cast<int>(MsgType::kRemove), 6);
  EXPECT_EQ(static_cast<int>(MsgType::kStats), 7);
  EXPECT_EQ(static_cast<int>(MsgType::kPong), 65);
  EXPECT_EQ(static_cast<int>(MsgType::kAnswer), 66);
  EXPECT_EQ(static_cast<int>(MsgType::kAnswerBatch), 67);
  EXPECT_EQ(static_cast<int>(MsgType::kStatusReply), 68);
  EXPECT_EQ(static_cast<int>(MsgType::kStatsReply), 69);
  EXPECT_EQ(kWireVersion, 1);
  EXPECT_EQ(EncodeMessage(Message{})[0], '\x01');  // version leads
}

// -------------------------------------------------------------- round trips

TEST(NetCodecTest, PingAndBatchRequestsRoundTrip) {
  Message ping;
  ping.type = MsgType::kPing;
  EXPECT_EQ(RoundTrip(ping).type, MsgType::kPing);

  Message batch;
  batch.type = MsgType::kSubmitBatch;
  for (int i = 0; i < 5; ++i) {
    batch.requests.push_back(
        {"doc" + std::to_string(i), "//a" + std::to_string(i)});
  }
  Message decoded = RoundTrip(batch);
  ASSERT_EQ(decoded.requests.size(), 5u);
  EXPECT_EQ(decoded.requests[3].doc_key, "doc3");
  EXPECT_EQ(decoded.requests[3].query, "//a3");
}

TEST(NetCodecTest, EveryValueKindRoundTripsExactly) {
  auto answer_of = [](eval::Value value) {
    Message message;
    message.type = MsgType::kAnswer;
    WireAnswer wire;
    wire.answer.value = std::move(value);
    wire.answer.evaluator = "pf-frontier";
    message.answers.push_back(std::move(wire));
    return message;
  };
  // Booleans.
  for (bool b : {true, false}) {
    Message decoded = RoundTrip(answer_of(eval::Value::Boolean(b)));
    ASSERT_EQ(decoded.answers.size(), 1u);
    EXPECT_EQ(decoded.answers[0].answer.value.boolean(), b);
    EXPECT_EQ(decoded.answers[0].answer.evaluator, "pf-frontier");
  }
  // Numbers: raw IEEE-754 bits — signed zero and NaN payloads survive.
  for (double n : {0.0, -0.0, 1.5, -273.15, 1e300,
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN()}) {
    Message decoded = RoundTrip(answer_of(eval::Value::Number(n)));
    const double back = decoded.answers[0].answer.value.number();
    uint64_t want = 0, got = 0;
    std::memcpy(&want, &n, 8);
    std::memcpy(&got, &back, 8);
    EXPECT_EQ(got, want) << n;
  }
  // Strings, including embedded NULs and non-ASCII bytes.
  const std::string tricky("a\0b\xff\xc3\xa9", 6);
  EXPECT_EQ(RoundTrip(answer_of(eval::Value::String(tricky)))
                .answers[0]
                .answer.value.string(),
            tricky);
  // Node sets keep order and ids.
  eval::NodeSet nodes = {0, 3, 5, 2147483647};
  Message decoded = RoundTrip(answer_of(eval::Value::Nodes(nodes)));
  EXPECT_EQ(decoded.answers[0].answer.value.nodes(), nodes);
}

TEST(NetCodecTest, AnswerBatchMixesStatusesAndFragments) {
  Message message;
  message.type = MsgType::kAnswerBatch;
  WireAnswer ok;
  ok.answer.value = eval::Value::Number(42);
  ok.answer.evaluator = "core-linear";
  ok.answer.fragment.in_core = true;
  ok.answer.fragment.in_wf = true;
  ok.answer.fragment.smallest = xpath::Fragment::kCore;
  WireAnswer failed;
  failed.status = InvalidArgumentError("no such document");
  message.answers.push_back(ok);
  message.answers.push_back(failed);

  Message decoded = RoundTrip(message);
  ASSERT_EQ(decoded.answers.size(), 2u);
  EXPECT_TRUE(decoded.answers[0].status.ok());
  EXPECT_TRUE(decoded.answers[0].answer.fragment.in_core);
  EXPECT_FALSE(decoded.answers[0].answer.fragment.in_pf);
  EXPECT_TRUE(decoded.answers[0].answer.fragment.in_wf);
  EXPECT_EQ(decoded.answers[0].answer.fragment.smallest,
            xpath::Fragment::kCore);
  EXPECT_FALSE(decoded.answers[1].status.ok());
  EXPECT_EQ(decoded.answers[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(decoded.answers[1].status.message(), "no such document");
}

TEST(NetCodecTest, MutationsRoundTripIncludingSubtrees) {
  Message reg;
  reg.type = MsgType::kRegisterXml;
  reg.doc_key = "doc1";
  reg.text = "<r><a>x</a></r>";
  Message decoded = RoundTrip(reg);
  EXPECT_EQ(decoded.doc_key, "doc1");
  EXPECT_EQ(decoded.text, "<r><a>x</a></r>");

  Message update;
  update.type = MsgType::kUpdate;
  update.doc_key = "doc1";
  update.edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
  update.edit.target = 0;
  update.edit.position = 1;
  auto subtree = xml::ParseDocument("<n><m>deep</m></n>");
  ASSERT_TRUE(subtree.ok());
  update.edit.subtree = std::move(*subtree);
  decoded = RoundTrip(update);
  EXPECT_EQ(decoded.edit.kind, xml::SubtreeEdit::Kind::kInsertSubtree);
  EXPECT_EQ(decoded.edit.position, 1);
  ASSERT_FALSE(decoded.edit.subtree.empty());
  EXPECT_TRUE(decoded.edit.subtree.StructurallyEquals(update.edit.subtree));

  Message relabel;
  relabel.type = MsgType::kUpdate;
  relabel.doc_key = "doc2";
  relabel.edit.kind = xml::SubtreeEdit::Kind::kRelabel;
  relabel.edit.target = 3;
  relabel.edit.label = "renamed";
  decoded = RoundTrip(relabel);
  EXPECT_EQ(decoded.edit.kind, xml::SubtreeEdit::Kind::kRelabel);
  EXPECT_EQ(decoded.edit.target, 3);
  EXPECT_EQ(decoded.edit.label, "renamed");
  EXPECT_TRUE(decoded.edit.subtree.empty());

  Message stats;
  stats.type = MsgType::kStats;
  stats.stats_format = 1;
  EXPECT_EQ(RoundTrip(stats).stats_format, 1);

  Message reply;
  reply.type = MsgType::kStatsReply;
  reply.text = "{\"schema\": \"gkx-stats-v1\"}";
  EXPECT_EQ(RoundTrip(reply).text, reply.text);
}

// --------------------------------------------------------------- rejection

TEST(NetCodecTest, RejectsMalformedPayloads) {
  Message message;
  message.type = MsgType::kSubmit;
  message.requests.push_back({"doc0", "//a"});
  const std::string good = EncodeMessage(message);

  auto expect_reject = [](std::string payload, const char* what) {
    Result<Message> decoded = DecodeMessage(payload);
    EXPECT_FALSE(decoded.ok()) << what;
  };
  expect_reject("", "empty");
  expect_reject("\x01", "type byte missing");
  std::string wrong_version = good;
  wrong_version[0] = '\x02';
  expect_reject(wrong_version, "future version");
  std::string unknown_type = good;
  unknown_type[1] = '\x7f';
  expect_reject(unknown_type, "unknown type");
  expect_reject(good.substr(0, good.size() - 1), "truncated body");
  expect_reject(good + "x", "trailing bytes");
  std::string huge_length = good;
  huge_length[2] = '\xff';  // doc_key length now bogus
  huge_length[3] = '\xff';
  expect_reject(huge_length, "length past end");
}

TEST(NetCodecTest, StreamIoRejectsCorruptionAndHonorsCleanEof) {
  // A pipe gives the stream helpers a real fd without sockets.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Message message;
  message.type = MsgType::kSubmit;
  message.requests.push_back({"doc0", "//a"});
  const std::string payload = EncodeMessage(message);

  ASSERT_TRUE(WriteFrame(fds[1], payload).ok());
  bool clean_eof = false;
  Result<std::string> read_back = ReadFrame(fds[0], &clean_eof);
  ASSERT_TRUE(read_back.ok());
  EXPECT_FALSE(clean_eof);
  EXPECT_EQ(*read_back, payload);

  // Bit flip inside the payload → CRC mismatch.
  std::string frame;
  AppendFrame(payload, &frame);
  frame[10] ^= 0x40;
  ASSERT_EQ(::write(fds[1], frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  Result<std::string> corrupted = ReadFrame(fds[0], &clean_eof);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_NE(corrupted.status().message().find("CRC"), std::string::npos);

  // Oversized size field → rejected before any allocation.
  std::string bomb(8, '\0');
  uint32_t size = 0x7fffffff;
  std::memcpy(bomb.data(), &size, 4);
  ASSERT_EQ(::write(fds[1], bomb.data(), bomb.size()),
            static_cast<ssize_t>(bomb.size()));
  EXPECT_FALSE(ReadFrame(fds[0], &clean_eof).ok());

  // Half a header then EOF → error, not clean EOF.
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  ::close(fds[1]);
  clean_eof = false;
  EXPECT_FALSE(ReadFrame(fds[0], &clean_eof).ok());
  EXPECT_FALSE(clean_eof);

  // Clean EOF before the first byte.
  int fds2[2];
  ASSERT_EQ(::pipe(fds2), 0);
  ::close(fds2[1]);
  clean_eof = false;
  Result<std::string> eof = ReadFrame(fds2[0], &clean_eof);
  ASSERT_TRUE(eof.ok());
  EXPECT_TRUE(clean_eof);
  EXPECT_TRUE(eof->empty());
  ::close(fds[0]);
  ::close(fds2[0]);
}

// ---------------------------------------------------------------- dispatch

TEST(NetCodecTest, DispatchMapsRequestsWithoutSockets) {
  service::ShardedQueryService::Options options;
  options.shards = 2;
  service::ShardedQueryService service(options);
  Server server(&service, {});

  Message reg;
  reg.type = MsgType::kRegisterXml;
  reg.doc_key = "doc0";
  reg.text = "<r><a>x</a><a>y</a></r>";
  Message reply = server.Dispatch(reg);
  EXPECT_EQ(reply.type, MsgType::kStatusReply);
  EXPECT_TRUE(reply.status.ok()) << reply.status.message();

  Message ping;
  ping.type = MsgType::kPing;
  EXPECT_EQ(server.Dispatch(ping).type, MsgType::kPong);

  Message submit;
  submit.type = MsgType::kSubmit;
  submit.requests.push_back({"doc0", "count(//a)"});
  reply = server.Dispatch(submit);
  ASSERT_EQ(reply.type, MsgType::kAnswer);
  ASSERT_EQ(reply.answers.size(), 1u);
  ASSERT_TRUE(reply.answers[0].status.ok());
  EXPECT_EQ(reply.answers[0].answer.value.number(), 2.0);

  Message missing;
  missing.type = MsgType::kSubmit;
  missing.requests.push_back({"ghost", "//a"});
  reply = server.Dispatch(missing);
  ASSERT_EQ(reply.type, MsgType::kAnswer);
  EXPECT_FALSE(reply.answers[0].status.ok());

  Message remove;
  remove.type = MsgType::kRemove;
  remove.doc_key = "ghost";
  reply = server.Dispatch(remove);
  EXPECT_EQ(reply.type, MsgType::kStatusReply);
  EXPECT_FALSE(reply.status.ok());
  remove.doc_key = "doc0";
  EXPECT_TRUE(server.Dispatch(remove).status.ok());

  // A response type arriving as a request is a protocol violation.
  Message bogus;
  bogus.type = MsgType::kPong;
  reply = server.Dispatch(bogus);
  EXPECT_EQ(reply.type, MsgType::kStatusReply);
  EXPECT_FALSE(reply.status.ok());
}

// ---------------------------------------------------------------- loopback

TEST(NetCodecTest, LoopbackServesQueriesByteIdenticalToInProcess) {
  service::ShardedQueryService::Options options;
  options.shards = 2;
  service::ShardedQueryService service(options);
  Server server(&service, {});
  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.message();
  ASSERT_NE(server.port(), 0);

  Client client;
  Status connected = client.Connect("127.0.0.1", server.port());
  ASSERT_TRUE(connected.ok()) << connected.message();
  ASSERT_TRUE(client.Ping().ok());

  // Register over the wire; corpus is visible in-process immediately.
  for (int k = 0; k < 6; ++k) {
    const std::string t = std::to_string(k);
    Status reg = client.RegisterXml(
        "doc" + t, "<d" + t + "><a" + t + ">x</a" + t + "><a" + t + ">y</a" +
                       t + "></d" + t + ">");
    ASSERT_TRUE(reg.ok()) << reg.message();
  }
  EXPECT_EQ(service.document_count(), 6u);

  // Wire answers must digest identically to in-process answers.
  std::vector<WireRequest> wire_requests;
  std::vector<service::ShardedQueryService::Request> local_requests;
  for (int k = 0; k < 6; ++k) {
    const std::string t = std::to_string(k);
    wire_requests.push_back({"doc" + t, "//a" + t});
    wire_requests.push_back({"doc" + t, "count(//a" + t + ")"});
    local_requests.push_back({"doc" + t, "//a" + t});
    local_requests.push_back({"doc" + t, "count(//a" + t + ")"});
  }
  auto wire_answers = client.SubmitBatch(wire_requests);
  auto local_answers = service.SubmitBatch(local_requests);
  ASSERT_EQ(wire_answers.size(), local_answers.size());
  for (size_t i = 0; i < wire_answers.size(); ++i) {
    ASSERT_TRUE(wire_answers[i].ok()) << wire_answers[i].status().message();
    ASSERT_TRUE(local_answers[i].ok());
    EXPECT_EQ(testkit::AnswerDigest(wire_answers[i]->value),
              testkit::AnswerDigest(local_answers[i]->value))
        << i;
    EXPECT_EQ(wire_answers[i]->evaluator, local_answers[i]->evaluator) << i;
  }

  // A wire update is observed by the next wire read.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
  edit.target = 0;
  edit.position = 0;
  auto subtree = xml::ParseDocument("<a0>z</a0>");
  ASSERT_TRUE(subtree.ok());
  edit.subtree = std::move(*subtree);
  ASSERT_TRUE(client.UpdateDocument("doc0", edit).ok());
  Result<Client::Answer> counted = client.Submit("doc0", "count(//a0)");
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->value.number(), 3.0);

  // Per-request failures stay per-request over the wire too.
  auto mixed = client.SubmitBatch({{"doc1", "//a1"}, {"ghost", "//a1"}});
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_TRUE(mixed[0].ok());
  EXPECT_FALSE(mixed[1].ok());

  Result<std::string> stats = client.ExportStats(service::StatsFormat::kJson);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"gkx-stats-v1\""), std::string::npos);
  EXPECT_NE(stats->find("\"shards\""), std::string::npos);

  ASSERT_TRUE(client.RemoveDocument("doc5").ok());
  EXPECT_FALSE(client.RemoveDocument("doc5").ok());
  EXPECT_EQ(service.document_count(), 5u);

  // A second client gets its own connection thread.
  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(second.Ping().ok());
  second.Close();

  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace gkx::net
