// Golden-seed regression: the workload generators must be byte-stable for a
// fixed base::Rng seed, across platforms and releases. The soak harness
// reports failures by seed alone — if any of these goldens drifts,
// historical seeds stop reproducing their schedules and every recorded
// failing seed becomes worthless. Goldens may only change together with a
// deliberate, CHANGES.md-documented generator break.
//
// Nothing in the generation path may iterate an unordered container or use
// platform-dependent distributions (std::mt19937 etc.); base::Rng plus
// ordered draws is the contract these exact bytes pin down.

#include <gtest/gtest.h>

#include <string>

#include "base/rng.hpp"
#include "xml/generator.hpp"
#include "xml/serializer.hpp"
#include "xpath/fragment.hpp"
#include "xpath/generator.hpp"
#include "xpath/printer.hpp"

namespace gkx {
namespace {

TEST(GeneratorStabilityTest, RngStreamIsPinned) {
  Rng rng(123);
  EXPECT_EQ(rng.Next(), 3628370374969813497ULL);
  EXPECT_EQ(rng.Next(), 17885451940711451998ULL);
  EXPECT_EQ(rng.Next(), 8622752019489400367ULL);
  EXPECT_EQ(rng.Next(), 2342437615205057030ULL);
}

TEST(GeneratorStabilityTest, RandomDocumentBytesArePinned) {
  Rng rng(42);
  xml::RandomDocumentOptions options;
  options.node_count = 12;
  options.tag_alphabet = 3;
  options.max_extra_labels = 1;
  options.text_probability = 0.5;
  xml::SerializeOptions serialize;
  serialize.indent = 0;
  EXPECT_EQ(
      xml::SerializeDocument(xml::RandomDocument(&rng, options), serialize),
      "<t0><t1><t1 labels=\"l1\">10<t2>82</t2><t0 labels=\"l2\"/></t1>"
      "<t1><t0 labels=\"l1\"/></t1></t1><t0>95<t2>64</t2><t1><t2/><t2/>"
      "</t1></t0></t0>");
}

TEST(GeneratorStabilityTest, ZipfSkewedDocumentBytesArePinned) {
  Rng rng(42);
  xml::RandomDocumentOptions options;
  options.node_count = 10;
  options.tag_alphabet = 4;
  options.tag_zipf_s = 1.2;
  xml::SerializeOptions serialize;
  serialize.indent = 0;
  EXPECT_EQ(
      xml::SerializeDocument(xml::RandomDocument(&rng, options), serialize),
      "<t0><t3><t1><t2/></t1><t2/><t2/></t3><t1/><t1><t0><t0/></t0></t1></t0>");
}

// Three consecutive draws per fragment from one stream: pins not just the
// first query but the stream position after each draw.
void ExpectQueries(xpath::Fragment fragment,
                   const std::vector<std::string>& expected) {
  Rng rng(20260730);
  xpath::RandomQueryOptions options;
  options.fragment = fragment;
  options.max_path_steps = 3;
  options.max_condition_depth = 2;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(xpath::ToXPathString(xpath::RandomQuery(&rng, options)),
              expected[i])
        << "fragment " << xpath::FragmentName(fragment) << " draw " << i;
  }
}

TEST(GeneratorStabilityTest, RandomQueryTextsArePinnedPerFragment) {
  ExpectQueries(xpath::Fragment::kPF,
                {"child::t1/self::*/following::*",
                 "descendant-or-self::t0/ancestor::*/self::t3",
                 "parent::t3/following::t1/child::t1"});
  ExpectQueries(
      xpath::Fragment::kCore,
      {"child::*/self::t0[/child::* and ancestor::*/child::t0/"
       "descendant::t0]/following-sibling::t1",
       "descendant::t1/parent::t1[descendant::t0/ancestor-or-self::*/"
       "following::*]",
       "/preceding::t1/ancestor::t3/preceding::*[not(parent::t0)] | "
       "following-sibling::t0[preceding-sibling::*[following::t1]]/"
       "child::t0[/parent::*[ancestor-or-self::t2/parent::t3/"
       "descendant::t0]] | self::t1[/descendant::t1[following::*/"
       "descendant-or-self::*]]/descendant::*/preceding::t1"});
  ExpectQueries(
      xpath::Fragment::kPWF,
      {"child::*/self::t3[last() = 1 or 4 + 1 >= position()]/"
       "child::t3[parent::t0/child::t2 or last() <= 3]",
       "self::*[descendant-or-self::t2/ancestor-or-self::*[2 * 0 = "
       "position() + last()]]",
       "following::*"});
  ExpectQueries(
      xpath::Fragment::kFullXPath,
      {"child::*/self::t2[0 * 4 + position() * position() = 1 or "
       "/self::*/parent::t0]/descendant::t0",
       "following::*/descendant-or-self::*[starts-with(name(), 't') or "
       "ancestor::t2]",
       "descendant-or-self::t2"});
}

TEST(GeneratorStabilityTest, ZipfSkewedQueryTextsArePinned) {
  Rng rng(20260730);
  xpath::RandomQueryOptions options;
  options.fragment = xpath::Fragment::kPF;
  options.tag_zipf_s = 1.5;
  options.max_path_steps = 4;
  EXPECT_EQ(xpath::ToXPathString(xpath::RandomQuery(&rng, options)),
            "child::t0");
  EXPECT_EQ(xpath::ToXPathString(xpath::RandomQuery(&rng, options)),
            "/preceding::t1/ancestor-or-self::t3/ancestor::*/child::t1");
}

TEST(GeneratorStabilityTest, ZipfSamplerIsPinnedAndSkewed) {
  Rng rng(9);
  ZipfSampler zipf(8, 1.0);
  const int64_t expected[] = {0, 0, 0, 3, 6, 3, 3, 1, 0, 1, 3, 7};
  for (int64_t want : expected) EXPECT_EQ(zipf.Sample(&rng), want);

  // Distributional sanity: rank 0 dominates under strong skew.
  Rng counts_rng(17);
  ZipfSampler skewed(16, 1.4);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 4000; ++i) ++counts[static_cast<size_t>(skewed.Sample(&counts_rng))];
  EXPECT_GT(counts[0], counts[7] * 4);
  EXPECT_GT(counts[0], 800);
}

// Extreme skew must not abort: tail weights flush to zero and rank 0 takes
// all the probability mass.
TEST(GeneratorStabilityTest, ExtremeZipfSkewFlushesTailToRankZero) {
  Rng rng(3);
  ZipfSampler extreme(48, 200.0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(extreme.Sample(&rng), 0);
}

}  // namespace
}  // namespace gkx
