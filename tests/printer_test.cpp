// Printer-focused tests: exhaustive precedence round-trips over all binary
// operator pairs in both association orders (catches any parenthesization
// bug in one sweep), DOT export sanity, and canonical forms.

#include <gtest/gtest.h>

#include "xpath/build.hpp"
#include "xpath/dot.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::xpath {
namespace {

namespace build = gkx::xpath::build;

constexpr BinaryOp kAllOps[] = {
    BinaryOp::kOr, BinaryOp::kAnd, BinaryOp::kEq,  BinaryOp::kNe,
    BinaryOp::kLt, BinaryOp::kLe,  BinaryOp::kGt,  BinaryOp::kGe,
    BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
    BinaryOp::kMod,
};

// Structural tree equality for the precedence sweep.
bool SameTree(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Expr::Kind::kNumberLiteral:
      return a.As<NumberLiteral>().value() == b.As<NumberLiteral>().value();
    case Expr::Kind::kBinary: {
      const auto& ba = a.As<BinaryExpr>();
      const auto& bb = b.As<BinaryExpr>();
      return ba.op() == bb.op() && SameTree(ba.lhs(), bb.lhs()) &&
             SameTree(ba.rhs(), bb.rhs());
    }
    case Expr::Kind::kNegate:
      return SameTree(a.As<NegateExpr>().operand(), b.As<NegateExpr>().operand());
    default:
      return false;
  }
}

TEST(PrinterPrecedenceTest, ExhaustiveBinaryPairsRoundTrip) {
  // For every (op1, op2) and both association shapes, printing then parsing
  // must reproduce the exact tree: (1 op1 2) op2 3 and 1 op1 (2 op2 3).
  for (BinaryOp op1 : kAllOps) {
    for (BinaryOp op2 : kAllOps) {
      for (bool left_nested : {true, false}) {
        ExprPtr tree;
        if (left_nested) {
          tree = build::Binary(
              op2, build::Binary(op1, build::Number(1), build::Number(2)),
              build::Number(3));
        } else {
          tree = build::Binary(
              op1, build::Number(1),
              build::Binary(op2, build::Number(2), build::Number(3)));
        }
        Query original = Query::Create(std::move(tree));
        std::string printed = ToXPathString(original);
        auto reparsed = ParseQuery(printed);
        ASSERT_TRUE(reparsed.ok())
            << printed << ": " << reparsed.status().ToString();
        EXPECT_TRUE(SameTree(original.root(), reparsed->root()))
            << "ops " << BinaryOpName(op1) << "/" << BinaryOpName(op2)
            << (left_nested ? " left" : " right") << ": " << printed << " -> "
            << ToXPathString(*reparsed);
      }
    }
  }
}

TEST(PrinterPrecedenceTest, NegationUnderBinary) {
  for (BinaryOp op : kAllOps) {
    ExprPtr tree = build::Binary(op, build::Negate(build::Number(1)),
                                 build::Negate(build::Number(2)));
    Query original = Query::Create(std::move(tree));
    std::string printed = ToXPathString(original);
    auto reparsed = ParseQuery(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_TRUE(SameTree(original.root(), reparsed->root())) << printed;
  }
}

TEST(DotExportTest, ContainsQueryStructure) {
  Query query = MustParse(
      "/descendant::a[child::b and position() = last()] | //c");
  std::string dot = ToDot(query);
  EXPECT_NE(dot.find("digraph query"), std::string::npos);
  EXPECT_NE(dot.find("descendant::a"), std::string::npos);
  EXPECT_NE(dot.find("position()"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // predicate edge
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // steps
  // One node per expression and per step.
  size_t nodes = 0;
  for (size_t at = dot.find("label=\""); at != std::string::npos;
       at = dot.find("label=\"", at + 1)) {
    ++nodes;
  }
  EXPECT_EQ(nodes, static_cast<size_t>(query.num_exprs() + query.num_steps()));
}

TEST(DotExportTest, EscapesQuotes) {
  Query query = MustParse("self::*[string(self::*) = '\"quoted\"']");
  std::string dot = ToDot(query);
  EXPECT_NE(dot.find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace gkx::xpath
