// Differential property tests: for random documents × random queries per
// fragment, every engine that accepts the query must return identical
// results. The naive engine is the spec oracle; core-linear and the NAuxPDA
// engine are fully independent implementations, so agreement across all of
// them is strong evidence that each algorithm implements the same XPath
// semantics at its own complexity (the paper's central premise).

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/engine.hpp"
#include "eval/parallel_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "plan/physical.hpp"
#include "xml/generator.hpp"
#include "xpath/fragment.hpp"
#include "xpath/generator.hpp"
#include "xpath/printer.hpp"
#include "xpath/transform.hpp"

namespace gkx::eval {
namespace {

using xml::Document;
using xpath::Fragment;
using xpath::Query;

struct AgreementCase {
  Fragment fragment;
  uint64_t seed;
  int queries;
  int doc_nodes = 40;
  int condition_depth = 2;
};

void PrintTo(const AgreementCase& c, std::ostream* os) {
  *os << FragmentName(c.fragment) << "/seed" << c.seed;
}

class AgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(AgreementTest, AllEnginesAgreeOnRandomWorkloads) {
  const AgreementCase& param = GetParam();
  Rng rng(param.seed);

  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = param.doc_nodes;
  doc_options.tag_alphabet = 4;
  doc_options.text_probability = 0.4;

  xpath::RandomQueryOptions query_options;
  query_options.fragment = param.fragment;
  query_options.max_predicates_per_step = 2;
  query_options.max_condition_depth = param.condition_depth;

  NaiveEvaluator naive;
  CvtEvaluator cvt_lazy;
  CvtEvaluator cvt_eager{CvtEvaluator::Options{.eager = true}};
  CoreLinearEvaluator linear;
  PdaEvaluator pda{PdaEvaluator::Options{.max_not_depth = 6}};
  ParallelPdaEvaluator parallel{
      ParallelPdaEvaluator::Options{.threads = 4, .pda = {.max_not_depth = 6}}};

  int linear_answers = 0;
  int pda_answers = 0;
  for (int i = 0; i < param.queries; ++i) {
    Document doc = xml::RandomDocument(&rng, doc_options);
    Query query = xpath::RandomQuery(&rng, query_options);
    const std::string text = ToXPathString(query);

    auto expected = naive.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(expected.ok()) << text << ": " << expected.status().ToString();

    for (Evaluator* engine :
         std::initializer_list<Evaluator*>{&cvt_lazy, &cvt_eager, &linear, &pda,
                                           &parallel}) {
      auto actual = engine->EvaluateAtRoot(doc, query);
      if (!actual.ok()) {
        ASSERT_EQ(actual.status().code(), StatusCode::kUnsupported)
            << engine->name() << " on " << text << ": "
            << actual.status().ToString();
        continue;
      }
      if (engine == &linear) ++linear_answers;
      if (engine == &pda) ++pda_answers;
      EXPECT_TRUE(expected->Equals(*actual))
          << engine->name() << " disagrees on " << text << "\n  naive: "
          << expected->DebugString() << "\n  " << engine->name() << ": "
          << actual->DebugString();
    }

    // Transform soundness rides along: normalization and negation pushdown
    // must preserve semantics (checked with the CVT engine).
    for (const Query& variant :
         {xpath::NormalizeIteratedPredicates(query), xpath::PushNegationsDown(query)}) {
      auto transformed = cvt_lazy.EvaluateAtRoot(doc, variant);
      ASSERT_TRUE(transformed.ok())
          << ToXPathString(variant) << ": " << transformed.status().ToString();
      EXPECT_TRUE(expected->Equals(*transformed))
          << "transform changed semantics of " << text << " => "
          << ToXPathString(variant);
    }
  }

  // The specialized engines must actually engage on their home fragments.
  if (param.fragment == Fragment::kPF ||
      param.fragment == Fragment::kPositiveCore ||
      param.fragment == Fragment::kCore) {
    EXPECT_GT(linear_answers, 0);
  }
  if (param.fragment == Fragment::kPF ||
      param.fragment == Fragment::kPositiveCore ||
      param.fragment == Fragment::kPWF) {
    EXPECT_GT(pda_answers, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fragments, AgreementTest,
    ::testing::Values(AgreementCase{Fragment::kPF, 1001, 60},
                      AgreementCase{Fragment::kPF, 1002, 60},
                      AgreementCase{Fragment::kPositiveCore, 2001, 50},
                      AgreementCase{Fragment::kPositiveCore, 2002, 50},
                      AgreementCase{Fragment::kCore, 3001, 50},
                      AgreementCase{Fragment::kCore, 3002, 50},
                      AgreementCase{Fragment::kPWF, 4001, 50},
                      AgreementCase{Fragment::kPWF, 4002, 50},
                      AgreementCase{Fragment::kWF, 5001, 40},
                      AgreementCase{Fragment::kPXPath, 6001, 40},
                      AgreementCase{Fragment::kFullXPath, 7001, 40},
                      AgreementCase{Fragment::kFullXPath, 7002, 40},
                      // Larger documents and deeper condition nesting.
                      AgreementCase{Fragment::kCore, 8001, 25, 150, 3},
                      AgreementCase{Fragment::kPWF, 8002, 25, 150, 3},
                      AgreementCase{Fragment::kPXPath, 8003, 20, 120, 3},
                      AgreementCase{Fragment::kFullXPath, 8004, 15, 120, 3}));

// Deep documents exercise the chain-heavy code paths (ancestor walks,
// preceding scans) differently — a separate sweep with chain bias.
class DeepDocAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepDocAgreementTest, AgreementOnDeepDocuments) {
  Rng rng(GetParam());
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 50;
  doc_options.chain_bias = 0.85;

  xpath::RandomQueryOptions query_options;
  query_options.fragment = Fragment::kCore;
  query_options.max_path_steps = 4;

  NaiveEvaluator naive;
  CvtEvaluator cvt;
  CoreLinearEvaluator linear;
  for (int i = 0; i < 40; ++i) {
    Document doc = xml::RandomDocument(&rng, doc_options);
    Query query = xpath::RandomQuery(&rng, query_options);
    auto expected = naive.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(expected.ok());
    auto from_cvt = cvt.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(from_cvt.ok());
    EXPECT_TRUE(expected->Equals(*from_cvt)) << ToXPathString(query);
    auto from_linear = linear.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(from_linear.ok()) << from_linear.status().ToString();
    EXPECT_TRUE(expected->Equals(*from_linear)) << ToXPathString(query);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepDocAgreementTest,
                         ::testing::Values(11, 22, 33, 44));

// Non-root contexts: all engines must respect the initial context node.
TEST(AgreementTest, NonRootContexts) {
  Rng rng(99);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 30;
  Document doc = xml::RandomDocument(&rng, doc_options);

  xpath::RandomQueryOptions query_options;
  query_options.fragment = Fragment::kPositiveCore;
  query_options.absolute_probability = 0.0;  // relative paths only

  NaiveEvaluator naive;
  CvtEvaluator cvt;
  PdaEvaluator pda;
  for (int i = 0; i < 25; ++i) {
    Query query = xpath::RandomQuery(&rng, query_options);
    const xml::NodeId start =
        static_cast<xml::NodeId>(rng.UniformInt(0, doc.size() - 1));
    const Context ctx{start, 1, 1};
    auto expected = naive.Evaluate(doc, query, ctx);
    ASSERT_TRUE(expected.ok());
    auto from_cvt = cvt.Evaluate(doc, query, ctx);
    ASSERT_TRUE(from_cvt.ok());
    EXPECT_TRUE(expected->Equals(*from_cvt))
        << ToXPathString(query) << " from " << start;
    auto from_pda = pda.Evaluate(doc, query, ctx);
    if (from_pda.ok()) {
      EXPECT_TRUE(expected->Equals(*from_pda))
          << ToXPathString(query) << " from " << start;
    }
  }
}

// Hybrid (staged) plans: generated mixed queries whose plans route
// different subexpressions to different engines must still answer
// byte-identically to the naive oracle. This is the differential check for
// the materialization boundaries of plan::ExecuteStaged.
TEST(StagedPlanAgreementTest, HybridPlansMatchTheNaiveOracle) {
  Rng rng(9001);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 50;
  doc_options.tag_alphabet = 3;
  doc_options.text_probability = 0.4;

  NaiveEvaluator naive;
  Engine engine;
  int staged_seen = 0;
  for (Fragment fragment :
       {Fragment::kPWF, Fragment::kWF, Fragment::kPXPath,
        Fragment::kFullXPath}) {
    xpath::RandomQueryOptions query_options;
    query_options.fragment = fragment;
    query_options.max_predicates_per_step = 2;
    for (int i = 0; i < 60; ++i) {
      Document doc = xml::RandomDocument(&rng, doc_options);
      Query query = xpath::RandomQuery(&rng, query_options);
      // The plan normalizes the query; compare against the oracle on the
      // plan's own AST so the check isolates staged execution (Optimize
      // soundness is the metamorphic suite's job).
      Engine::Plan plan = Engine::CompileParsed(std::move(query));
      if (!plan.staged) continue;
      ++staged_seen;
      auto expected = naive.EvaluateAtRoot(doc, plan.query);
      ASSERT_TRUE(expected.ok()) << plan.canonical_text;
      auto answer = engine.RunPlan(doc, plan);
      ASSERT_TRUE(answer.ok())
          << plan.canonical_text << ": " << answer.status().ToString();
      EXPECT_TRUE(expected->Equals(answer->value))
          << answer->evaluator << " disagrees on " << plan.canonical_text
          << "\n  naive:  " << expected->DebugString()
          << "\n  staged: " << answer->value.DebugString();
      EXPECT_NE(answer->evaluator.find('+'), std::string::npos)
          << "staged plans must report a route list: " << answer->evaluator;
    }
  }
  // The generators produce plenty of PF-spine + positional-predicate
  // shapes; if this drops to zero the lowering stopped staging anything.
  EXPECT_GT(staged_seen, 20);
}

// The CVT evaluator must do polynomially bounded work: on the nested
// condition family the naive engine's evaluation count explodes while the
// CVT count stays flat — the paper's headline contrast, as a unit test.
TEST(ComplexityContrastTest, CvtMemoizationBoundsWork) {
  // A chain keeps the nested conditions satisfiable at every level, so the
  // naive engine cannot short-circuit its way out of the blow-up.
  Document doc = xml::ChainDocument(20, /*tag_alphabet=*/1);
  NaiveEvaluator naive;
  CvtEvaluator cvt;

  Query shallow = xpath::NestedConditionQuery(3, 2);
  Query deep = xpath::NestedConditionQuery(7, 2);

  ASSERT_TRUE(naive.EvaluateAtRoot(doc, shallow).ok());
  const int64_t naive_shallow = naive.last_eval_count();
  ASSERT_TRUE(naive.EvaluateAtRoot(doc, deep).ok());
  const int64_t naive_deep = naive.last_eval_count();

  ASSERT_TRUE(cvt.EvaluateAtRoot(doc, shallow).ok());
  const int64_t cvt_shallow = cvt.last_eval_count();
  ASSERT_TRUE(cvt.EvaluateAtRoot(doc, deep).ok());
  const int64_t cvt_deep = cvt.last_eval_count();

  // Naive work explodes with depth; CVT work grows ~linearly with |Q|.
  EXPECT_GT(naive_deep, naive_shallow * 8);
  EXPECT_LT(cvt_deep, cvt_shallow * 32);
  EXPECT_LT(cvt_deep, naive_deep / 8);
}

}  // namespace
}  // namespace gkx::eval
