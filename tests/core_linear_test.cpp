// Unit tests for the O(|D|·|Q|) Core XPath machinery: bitsets, the eleven
// O(|D|) axis-image sweeps (against brute force), inverse axes, the
// right-to-left condition sets, and fragment gating.

#include <gtest/gtest.h>

#include "base/stopwatch.hpp"
#include "eval/axes.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "xml/builder.hpp"
#include "xml/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

using xml::Document;
using xml::NodeId;
using xpath::Axis;
using xpath::MustParse;

TEST(NodeBitsetTest, BasicOperations) {
  NodeBitset bits(130);
  EXPECT_TRUE(bits.Empty());
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(64));
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3);
  EXPECT_EQ(bits.ToNodeSet(), (NodeSet{0, 64, 129}));

  NodeBitset other(130);
  other.Set(64);
  NodeBitset both = bits;
  both &= other;
  EXPECT_EQ(both.ToNodeSet(), (NodeSet{64}));
  both |= bits;
  EXPECT_EQ(both.Count(), 3);
  both.AndNot(other);
  EXPECT_EQ(both.ToNodeSet(), (NodeSet{0, 129}));
}

TEST(NodeBitsetTest, ComplementRespectsUniverse) {
  NodeBitset bits(70);
  bits.Set(3);
  bits.Complement();
  EXPECT_EQ(bits.Count(), 69);
  EXPECT_FALSE(bits.Test(3));
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70);
}

TEST(InverseAxisTest, Involution) {
  for (int a = 0; a < xpath::kNumAxes; ++a) {
    Axis axis = static_cast<Axis>(a);
    EXPECT_EQ(InverseAxis(InverseAxis(axis)), axis);
  }
  EXPECT_EQ(InverseAxis(Axis::kChild), Axis::kParent);
  EXPECT_EQ(InverseAxis(Axis::kDescendant), Axis::kAncestor);
  EXPECT_EQ(InverseAxis(Axis::kFollowing), Axis::kPreceding);
  EXPECT_EQ(InverseAxis(Axis::kSelf), Axis::kSelf);
}

constexpr Axis kAxes[] = {
    Axis::kSelf,           Axis::kChild,
    Axis::kParent,         Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing,
    Axis::kFollowingSibling, Axis::kPreceding,
    Axis::kPrecedingSibling,
};

class AxisImageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AxisImageTest, MatchesPerNodeEnumeration) {
  Rng rng(GetParam());
  xml::RandomDocumentOptions options;
  options.node_count = 1 + static_cast<int32_t>(GetParam() % 83);
  options.chain_bias = (GetParam() % 5) / 5.0;
  Document doc = xml::RandomDocument(&rng, options);
  const ResolvedTest any{xpath::NodeTest::Kind::kAny, xml::kNoName};

  for (int trial = 0; trial < 12; ++trial) {
    // Random input set.
    NodeBitset input(doc.size());
    for (NodeId v = 0; v < doc.size(); ++v) {
      if (rng.Bernoulli(0.3)) input.Set(v);
    }
    for (Axis axis : kAxes) {
      NodeBitset expected(doc.size());
      for (NodeId v = 0; v < doc.size(); ++v) {
        if (!input.Test(v)) continue;
        for (NodeId u : AxisNodes(doc, v, axis, any)) expected.Set(u);
      }
      NodeBitset actual = AxisImage(doc, axis, input);
      EXPECT_EQ(actual.ToNodeSet(), expected.ToNodeSet())
          << "axis " << xpath::AxisName(axis) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxisImageTest,
                         ::testing::Values(2, 19, 37, 59, 73, 97));

TEST(AxisImageTest, FollowingMinimalCutoffIncludesDescendantCase) {
  // Regression: a descendant of an input node can have a smaller following
  // cutoff than the input node itself.
  xml::TreeBuilder b("r");
  auto v = b.AddChild(b.root(), "v");
  b.AddChild(v, "a");
  b.AddChild(v, "b");
  Document doc = std::move(b).Build();  // r=0, v=1, a=2, b=3
  NodeBitset input(doc.size());
  input.Set(1);  // v
  input.Set(2);  // a — following(a) = {b}
  EXPECT_EQ(AxisImage(doc, Axis::kFollowing, input).ToNodeSet(), (NodeSet{3}));
}

TEST(CoreLinearTest, RejectsNonCoreQueries) {
  Document doc = xml::ChainDocument(5);
  CoreLinearEvaluator linear;
  for (const char* text : {"child::*[position() = 2]", "count(child::*)",
                           "child::*[not(1 = 2)]", "1 + 1"}) {
    auto value = linear.EvaluateAtRoot(doc, MustParse(text));
    ASSERT_FALSE(value.ok()) << text;
    EXPECT_EQ(value.status().code(), StatusCode::kUnsupported) << text;
  }
}

TEST(CoreLinearTest, AcceptsWholeCoreGrammar) {
  Document doc = xml::BalancedDocument(2, 4);
  CoreLinearEvaluator linear;
  for (const char* text :
       {"/descendant-or-self::*", "child::t1[not(child::t2)]",
        "a[b and (c or not(d))]", "a | b | c[d]",
        "descendant::*[ancestor::*[child::t1]]",
        "following::*[preceding-sibling::*]"}) {
    auto value = linear.EvaluateAtRoot(doc, MustParse(text));
    EXPECT_TRUE(value.ok()) << text << ": " << value.status().ToString();
  }
}

TEST(CoreLinearTest, AbsolutePathInsideCondition) {
  // Condition /descendant::t9 is globally false; /descendant::t1 globally
  // true — the "matches from root iff matches from anywhere" rule.
  Document doc = xml::BalancedDocument(2, 3);  // tags t0..t3 by level
  CoreLinearEvaluator linear;
  auto none = linear.EvaluateNodeSet(doc, MustParse("child::*[/descendant::t9]"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  auto all = linear.EvaluateNodeSet(doc, MustParse("child::*[/descendant::t1]"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST(CoreLinearTest, ConditionCacheSharesWork) {
  // The same condition sub-expression appears twice; results must still be
  // correct (the cache is keyed by expression identity, not text).
  Document doc = xml::BalancedDocument(2, 3);
  CoreLinearEvaluator linear;
  auto value = linear.EvaluateNodeSet(
      doc, MustParse("child::*[child::t2] | descendant::*[child::t2]"));
  ASSERT_TRUE(value.ok());
  EXPECT_FALSE(value->empty());
}

TEST(CoreLinearTest, LinearScalingSmokeCheck) {
  // Work should scale ~linearly in |D|: evaluate the same Core query on
  // documents of ratio 8 in size and require the time ratio stays far below
  // quadratic. (Coarse smoke check; the bench measures properly.)
  CoreLinearEvaluator linear;
  xpath::Query query = MustParse(
      "descendant::t1[child::t2 and not(following-sibling::*[child::t3])]");
  Document small = xml::BalancedDocument(2, 10);  // ~2k nodes
  Document large = xml::BalancedDocument(2, 13);  // ~16k nodes
  auto warm = linear.EvaluateAtRoot(small, query);
  ASSERT_TRUE(warm.ok());
  Stopwatch sw;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(linear.EvaluateAtRoot(small, query).ok());
  const double t_small = sw.ElapsedSeconds();
  sw.Restart();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(linear.EvaluateAtRoot(large, query).ok());
  const double t_large = sw.ElapsedSeconds();
  EXPECT_LT(t_large, t_small * 40) << t_small << " vs " << t_large;
}

}  // namespace
}  // namespace gkx::eval
