// testkit::RunShardSoak — cross-shard isolation under concurrent churn,
// reads, and standing subscriptions (see src/testkit/shard_soak.hpp for
// what each failure class means). The 2-shard variants are the TSan CI
// targets; the durable variant adds the one-shard crash/recovery round.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "testkit/shard_soak.hpp"

namespace gkx::testkit {
namespace {

std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/shard_soak_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ShardSoakTest, TwoShardsStayIsolatedUnderChurn) {
  ShardSoakOptions options;
  options.shards = 2;
  options.documents = 16;
  options.rounds = 3;
  options.threads = 2;
  options.seed = 0x600d5eed;
  ShardSoakReport report = RunShardSoak(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.mutations, 0) << report.Summary();
  EXPECT_GT(report.reads, 0) << report.Summary();
  EXPECT_GT(report.subscription_events, 0) << report.Summary();
  EXPECT_GT(report.answer_cache_hits, 0) << report.Summary();
  EXPECT_FALSE(report.recovery_ran);
}

TEST(ShardSoakTest, FourShardsStayIsolatedUnderChurn) {
  ShardSoakOptions options;
  options.shards = 4;
  options.documents = 16;
  options.rounds = 2;
  options.threads = 2;
  options.seed = 0x40054d;
  ShardSoakReport report = RunShardSoak(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ShardSoakTest, OneShardCrashRecoversAloneAndExactly) {
  ShardSoakOptions options;
  options.shards = 2;
  options.documents = 12;
  options.rounds = 2;
  options.threads = 2;
  options.seed = 0xdead10cc;
  options.wal_dir = TempDirFor("recovery");
  ShardSoakReport report = RunShardSoak(options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.recovery_ran);
  EXPECT_GT(report.records_replayed_shard0, 0) << report.Summary();
  std::filesystem::remove_all(options.wal_dir);
}

}  // namespace
}  // namespace gkx::testkit
