// gkx::obs — the observability layer.
//   * Histogram: bucket math round-trips, percentiles checked against a
//     sorted-vector oracle within the documented 12.5% bucket width,
//     concurrent Record (the TSan target for the lock-free path), Merge.
//   * SlowQueryLog: threshold eligibility and bounded ring semantics.
//   * MetricRegistry / json: stable pointers, flatten sanitization, and a
//     Dump -> Parse round trip.
//   * QueryService::ExportStats: the live end-to-end check — JSON parses
//     back, text and JSON agree, route histograms reconcile against the
//     per-segment counters, slow queries land in the log.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/query_service.hpp"

namespace gkx::obs {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketMathRoundTrips) {
  // Every value lies strictly below its bucket's upper bound, and bucket
  // indexes are non-decreasing in the value.
  size_t last = 0;
  for (uint64_t value : {0ull, 1ull, 63ull, 64ull, 65ull, 100ull, 127ull,
                         128ull, 1000ull, 4095ull, 4096ull, 1000000ull,
                         123456789ull, 1ull << 35, 1ull << 40}) {
    const size_t index = Histogram::BucketIndex(value);
    EXPECT_LT(value, Histogram::BucketUpperBound(index)) << value;
    EXPECT_GE(index, last) << value;
    last = index;
  }
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(63), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 64u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1),
            UINT64_MAX);
  // Within an octave the 8 sub-buckets are contiguous: each bucket's upper
  // bound is the next bucket's lower bound (spot-check one octave).
  for (size_t i = 1; i + 1 < 1 + 8 * 3; ++i) {
    const uint64_t hi = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(hi), i + 1);
    EXPECT_EQ(Histogram::BucketIndex(hi - 1), i);
  }
}

TEST(HistogramTest, PercentilesMatchSortedOracleWithinBucketWidth) {
  // Golden check: reported quantiles vs the true order statistics of the
  // same samples. The report is the upper bound of the rank-th sample's
  // bucket (clamped to the exact max), so
  //   oracle <= reported <= max(oracle * 9/8, 64).
  Rng rng(4242);
  Histogram hist(Histogram::Unit::kCount);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish spread across 5 decades, the regime latencies live in.
    const uint64_t value = static_cast<uint64_t>(
        rng.UniformInt(1, 1 << rng.UniformInt(1, 24)));
    samples.push_back(value);
    hist.RecordValue(value);
  }
  std::sort(samples.begin(), samples.end());
  const auto summary = hist.Summary();
  ASSERT_EQ(summary.count, static_cast<int64_t>(samples.size()));

  const struct {
    double q;
    double reported;
  } kQuantiles[] = {{0.5, summary.p50},
                    {0.9, summary.p90},
                    {0.99, summary.p99},
                    {0.999, summary.p999}};
  for (const auto& [q, reported] : kQuantiles) {
    // Identical rank computation to Histogram::Summary.
    const size_t rank = static_cast<size_t>(std::max<int64_t>(
        1, static_cast<int64_t>(
               std::ceil(q * static_cast<double>(samples.size())))));
    const double oracle = static_cast<double>(samples[rank - 1]);
    EXPECT_GE(reported, oracle) << "q=" << q;
    EXPECT_LE(reported, std::max(oracle * 1.125, 64.0)) << "q=" << q;
  }
  EXPECT_EQ(summary.max, static_cast<double>(samples.back()));
  double exact_mean = 0.0;
  for (uint64_t s : samples) exact_mean += static_cast<double>(s);
  exact_mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(summary.mean, exact_mean, 1e-9);
}

TEST(HistogramTest, NanosUnitScalesToMilliseconds) {
  Histogram hist(Histogram::Unit::kNanos);
  for (int i = 0; i < 100; ++i) hist.Record(0.002);  // 2ms
  const auto summary = hist.Summary();
  EXPECT_EQ(summary.count, 100);
  // 2e6 ns sits in a 12.5%-wide bucket; max is exact.
  EXPECT_GE(summary.p50, 2.0);
  EXPECT_LE(summary.p50, 2.0 * 1.125);
  EXPECT_DOUBLE_EQ(summary.max, 2.0);
  EXPECT_DOUBLE_EQ(summary.mean, 2.0);
}

TEST(HistogramTest, ConcurrentRecordIsLossless) {
  // The TSan target: concurrent lock-free Record from several threads must
  // lose nothing and tear nothing.
  Histogram hist(Histogram::Unit::kCount);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.RecordValue(static_cast<uint64_t>(t * 1000 + (i % 7)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto summary = hist.Summary();
  EXPECT_EQ(summary.count, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(summary.max, 3006.0);  // t=3, i%7==6
}

TEST(HistogramTest, MergeFoldsBuckets) {
  Histogram a(Histogram::Unit::kCount);
  Histogram b(Histogram::Unit::kCount);
  for (int i = 0; i < 100; ++i) a.RecordValue(10);
  for (int i = 0; i < 50; ++i) b.RecordValue(5000);
  a.Merge(b);
  const auto summary = a.Summary();
  EXPECT_EQ(summary.count, 150);
  EXPECT_EQ(summary.max, 5000.0);
  EXPECT_LE(summary.p50, 64.0);      // median still in bucket 0
  EXPECT_GE(summary.p99, 5000.0);    // tail from b
}

// ------------------------------------------------------------- SlowQueryLog

TEST(SlowQueryLogTest, ThresholdAndBoundedRing) {
  SlowQueryLog log(/*threshold_ms=*/5.0, /*capacity=*/4);
  EXPECT_FALSE(log.Eligible(4.999));
  EXPECT_TRUE(log.Eligible(5.0));

  for (int i = 0; i < 10; ++i) {
    SlowQuery entry;
    entry.query = "q" + std::to_string(i);
    entry.total_ms = 6.0;
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.recorded(), 10);  // all crossings counted...
  const auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);  // ...but the ring keeps the newest 4
  EXPECT_EQ(snapshot.front().query, "q6");
  EXPECT_EQ(snapshot.back().query, "q9");
}

TEST(SlowQueryLogTest, ZeroCapacityNeverEligible) {
  SlowQueryLog log(/*threshold_ms=*/0.0, /*capacity=*/0);
  EXPECT_FALSE(log.Eligible(1e9));
}

// ----------------------------------------------------------- MetricRegistry

TEST(MetricRegistryTest, StablePointersAndExport) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("requests");
  EXPECT_EQ(registry.GetCounter("requests"), counter);  // stable
  counter->Add(3);

  Histogram* hist =
      registry.GetHistogram("latency_ms", Histogram::Unit::kNanos);
  EXPECT_EQ(registry.GetHistogram("latency_ms"), hist);
  hist->Record(0.001);

  registry.SetGauge("entries", [] { return 7.0; });

  const auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].first, "requests");
  EXPECT_EQ(counters[0].second, 3);
  const auto gauges = registry.GaugeValues();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].second, 7.0);
  const auto hists = registry.HistogramSummaries();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].second.count, 1);
}

TEST(HistogramFamilyTest, PerLabelHistograms) {
  HistogramFamily family(Histogram::Unit::kNanos);
  family.Get("pf-indexed")->Record(0.001);
  family.Get("pf-indexed")->Record(0.002);
  family.Get("cvt")->Record(0.004);
  const auto summaries = family.Summaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries.at("pf-indexed").count, 2);
  EXPECT_EQ(summaries.at("cvt").count, 1);
}

// --------------------------------------------------------------------- json

TEST(JsonTest, DumpParseRoundTrip) {
  json::Value root = json::Value::Object();
  root["name"] = json::Value("gkx \"quoted\"\n");
  root["pi"] = json::Value(3.25);
  root["n"] = json::Value(int64_t{-42});
  root["flag"] = json::Value(true);
  root["nothing"] = json::Value();
  json::Value items = json::Value::Array();
  items.Append(json::Value(1));
  items.Append(json::Value("two"));
  root["items"] = std::move(items);

  for (int indent : {0, 2}) {
    auto parsed = json::Parse(root.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Find("name")->AsString(), "gkx \"quoted\"\n");
    EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsNumber(), 3.25);
    EXPECT_DOUBLE_EQ(parsed->Find("n")->AsNumber(), -42.0);
    EXPECT_TRUE(parsed->Find("flag")->AsBool());
    EXPECT_EQ(parsed->Find("nothing")->type(), json::Value::Type::kNull);
    ASSERT_EQ(parsed->Find("items")->items().size(), 2u);
    EXPECT_EQ(parsed->Find("items")->items()[1].AsString(), "two");
  }
  EXPECT_FALSE(json::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(json::Parse("{\"a\": }").ok());
}

TEST(JsonTest, FlattenNumbersSanitizesComponents) {
  json::Value root = json::Value::Object();
  root["routes"] = json::Value::Object();
  root["routes"]["pf-indexed"] = json::Value::Object();
  root["routes"]["pf-indexed"]["count"] = json::Value(5);
  root["skip_me"] = json::Value("strings are not series");
  root["on"] = json::Value(true);

  std::vector<std::pair<std::string, double>> out;
  root.FlattenNumbers("gkx", &out);
  ASSERT_EQ(out.size(), 2u);  // sorted map order: "on" < "routes"
  EXPECT_EQ(out[0].first, "gkx_on");
  EXPECT_DOUBLE_EQ(out[0].second, 1.0);
  EXPECT_EQ(out[1].first, "gkx_routes_pf_indexed_count");
  EXPECT_DOUBLE_EQ(out[1].second, 5.0);
}

// ------------------------------------------------- QueryService::ExportStats

const char kDoc[] =
    "<r><a><b/><b/></a><a><b><c/></b></a><c><b/></c><d>text</d></r>";

TEST(ExportStatsTest, JsonRoundTripReconciles) {
  service::QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("doc", kDoc).ok());
  const std::vector<std::string> queries = {
      "/descendant::b",                          // PF, indexed fast path
      "/descendant::a[child::b]",                // PF with condition
      "count(/descendant::c)",                   // full XPath scalar
      "/descendant::b[position() = 2]",          // positional
      "/descendant::a/child::b[position() = 1]/descendant::c",  // staged
  };
  int64_t requests = 0;
  for (int round = 0; round < 3; ++round) {
    for (const auto& query : queries) {
      ASSERT_TRUE(svc.Submit("doc", query).ok());
      ++requests;
    }
  }

  const std::string text = svc.ExportStats(service::StatsFormat::kJson);
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = *parsed;

  EXPECT_EQ(root.Find("schema")->AsString(), "gkx-stats-v1");
  EXPECT_EQ(root.FindPath("service.requests")->AsNumber(),
            static_cast<double>(requests));
  EXPECT_EQ(root.FindPath("service.failures")->AsNumber(), 0.0);
  EXPECT_EQ(root.FindPath("latency_ms.count")->AsNumber(),
            static_cast<double>(requests));

  // Route histograms mirror the per-segment counters exactly (tracing has
  // been on since construction). With -DGKX_OBS_DISABLED the per-route
  // section is empty by design — only the always-on latency remains.
  EXPECT_EQ(root.FindPath("service.tracing")->AsBool(), !kCompiledOut);
  if (kCompiledOut) {
    EXPECT_TRUE(root.Find("routes")->members().empty());
    return;
  }
  const auto& stats = svc.Stats();
  EXPECT_FALSE(stats.segment_route_counts.empty());
  const json::Value* routes = root.Find("routes");
  ASSERT_NE(routes, nullptr);
  double route_total = 0.0;
  int64_t segment_total = 0;
  for (const auto& [label, count] : stats.segment_route_counts) {
    const json::Value* summary = routes->Find(label);
    ASSERT_NE(summary, nullptr) << label;
    EXPECT_EQ(summary->Find("count")->AsNumber(),
              static_cast<double>(count))
        << label;
    route_total += summary->Find("count")->AsNumber();
    segment_total += count;
  }
  EXPECT_EQ(routes->members().size(), stats.segment_route_counts.size());
  EXPECT_EQ(route_total, static_cast<double>(segment_total));

  // The text format is the same document flattened: the headline series
  // must agree with the JSON numbers.
  const std::string flat = svc.ExportStats(service::StatsFormat::kText);
  const std::string want =
      "gkx_service_requests " + std::to_string(requests);
  EXPECT_NE(flat.find(want + "\n"), std::string::npos) << flat;
  EXPECT_NE(flat.find("gkx_latency_ms_p99 "), std::string::npos);
}

TEST(ExportStatsTest, SlowQueryLogCapturesBreakdown) {
  service::QueryService::Options options;
  options.obs.slow_query_ms = 0.0;  // every request is "slow"
  options.obs.slow_query_capacity = 8;
  service::QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("doc", kDoc).ok());
  ASSERT_TRUE(svc.Submit("doc", "/descendant::b").ok());
  ASSERT_TRUE(svc.Submit("doc", "count(/descendant::c)").ok());

  if (kCompiledOut) {
    // The escape hatch removes the slow-query path entirely.
    EXPECT_TRUE(svc.SlowQueries().empty());
    EXPECT_EQ(svc.Stats().slow_queries, 0);
    return;
  }
  const auto slow = svc.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  for (const auto& entry : slow) {
    EXPECT_EQ(entry.doc_key, "doc");
    EXPECT_FALSE(entry.query.empty());
    EXPECT_FALSE(entry.routes.empty());
    EXPECT_FALSE(entry.stages_ms.empty());
    EXPECT_GE(entry.total_ms, 0.0);
  }
  EXPECT_EQ(svc.Stats().slow_queries, 2);

  // And the export carries them.
  auto parsed = json::Parse(svc.ExportStats(service::StatsFormat::kJson));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("slow_queries")->items().size(), 2u);
}

TEST(ExportStatsTest, TracingOffStillRecordsLatency) {
  service::QueryService::Options options;
  options.obs.tracing = false;
  service::QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("doc", kDoc).ok());
  ASSERT_TRUE(svc.Submit("doc", "/descendant::b").ok());
  const auto stats = svc.Stats();
  EXPECT_FALSE(stats.tracing);
  EXPECT_EQ(stats.latency.count, 1);          // always-on histogram
  EXPECT_TRUE(stats.route_latency.empty());   // no per-route tracing
  EXPECT_TRUE(svc.SlowQueries().empty());
}

}  // namespace
}  // namespace gkx::obs
