// Static analysis, fragment classification (the Figure 1 taxonomy), and the
// query transforms (Remark 5.2 normalization, Theorem 5.9 de Morgan
// pushdown).

#include <gtest/gtest.h>

#include "xpath/analysis.hpp"
#include "xpath/fragment.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"
#include "xpath/transform.hpp"

namespace gkx::xpath {
namespace {

QueryAnalysis AnalyzeText(std::string_view text) {
  Query q = MustParse(text);
  return Analyze(q);
}

TEST(AnalysisTest, DependenceClasses) {
  Query q = MustParse("child::a[position() = 2]/child::b[self::c]");
  QueryAnalysis analysis = Analyze(q);
  // The whole path depends on the context node only (positions rebind).
  EXPECT_EQ(analysis.traits(q.root()).dependence, ContextDependence::kNode);
  // Inside the first predicate, position()=2 depends on the full context.
  const Step& first = q.root().As<PathExpr>().step(0);
  EXPECT_EQ(analysis.traits(*first.predicates[0]).dependence,
            ContextDependence::kFull);
}

TEST(AnalysisTest, AbsolutePathIsContextFree) {
  Query q = MustParse("/descendant::a");
  QueryAnalysis analysis = Analyze(q);
  EXPECT_EQ(analysis.traits(q.root()).dependence, ContextDependence::kNone);
}

TEST(AnalysisTest, LiteralsAreContextFree) {
  Query q = MustParse("1 + 2");
  EXPECT_EQ(Analyze(q).traits(q.root()).dependence, ContextDependence::kNone);
}

TEST(AnalysisTest, ZeroArgStringFunctionsDependOnNode) {
  Query q = MustParse("string-length() = 3");
  EXPECT_EQ(Analyze(q).traits(q.root()).dependence, ContextDependence::kNode);
}

TEST(AnalysisTest, PredicateCounts) {
  EXPECT_EQ(AnalyzeText("a[b][c][d]").max_predicates_per_step, 3);
  EXPECT_EQ(AnalyzeText("a[b]/c[d]").max_predicates_per_step, 1);
  EXPECT_EQ(AnalyzeText("a/b").max_predicates_per_step, 0);
}

TEST(AnalysisTest, NotDepth) {
  EXPECT_EQ(AnalyzeText("a[not(b)]").max_not_depth, 1);
  EXPECT_EQ(AnalyzeText("a[not(b[not(c)])]").max_not_depth, 2);
  EXPECT_EQ(AnalyzeText("a[not(b) and not(c)]").max_not_depth, 1);
  EXPECT_EQ(AnalyzeText("a[b]").max_not_depth, 0);
}

TEST(AnalysisTest, ArithDepth) {
  EXPECT_EQ(AnalyzeText("1 + 2").max_arith_depth, 1);
  EXPECT_EQ(AnalyzeText("1 + 2 * 3").max_arith_depth, 2);
  EXPECT_EQ(AnalyzeText("position() = 2").max_arith_depth, 0);
  EXPECT_EQ(AnalyzeText("-(1 + 2 * 3)").max_arith_depth, 3);
}

TEST(AnalysisTest, ConcatMeasures) {
  QueryAnalysis a = AnalyzeText("concat('a', concat('b', 'c', 'd'))");
  EXPECT_EQ(a.max_concat_depth, 2);
  EXPECT_EQ(a.max_concat_arity, 3);
}

TEST(AnalysisTest, RelopOperandTyping) {
  EXPECT_TRUE(AnalyzeText("boolean(a) = true()").relop_with_boolean_operand);
  EXPECT_FALSE(AnalyzeText("position() = 2").relop_with_boolean_operand);
  EXPECT_TRUE(AnalyzeText("child::a = 'x'").relop_with_nonnumber_operand);
  EXPECT_FALSE(AnalyzeText("1 < 2").relop_with_nonnumber_operand);
}

TEST(AnalysisTest, AxisCensus) {
  QueryAnalysis a = AnalyzeText("ancestor::x/child::y");
  EXPECT_TRUE(a.axes_used[static_cast<size_t>(Axis::kAncestor)]);
  EXPECT_TRUE(a.axes_used[static_cast<size_t>(Axis::kChild)]);
  EXPECT_FALSE(a.axes_used[static_cast<size_t>(Axis::kFollowing)]);
}

// --- fragment classification ---

Fragment SmallestOf(std::string_view text) {
  Query q = MustParse(text);
  return Classify(q).smallest;
}

TEST(FragmentTest, PF) {
  EXPECT_EQ(SmallestOf("/descendant::a/child::b"), Fragment::kPF);
  EXPECT_EQ(SmallestOf("a/b | c"), Fragment::kPF);
  EXPECT_EQ(SmallestOf("ancestor-or-self::*"), Fragment::kPF);
}

TEST(FragmentTest, PositiveCore) {
  EXPECT_EQ(SmallestOf("child::a[descendant::b]"), Fragment::kPositiveCore);
  EXPECT_EQ(SmallestOf("a[b and c or d]"), Fragment::kPositiveCore);
  // Iterated predicates are fine in (positive) Core XPath (Def 2.5).
  EXPECT_EQ(SmallestOf("a[b][c]"), Fragment::kPositiveCore);
}

TEST(FragmentTest, CoreWithNegation) {
  EXPECT_EQ(SmallestOf("child::a[not(child::b)]"), Fragment::kCore);
  EXPECT_EQ(SmallestOf(
                "/descendant-or-self::*[self::R and not(child::*[self::I1])]"),
            Fragment::kCore);
}

TEST(FragmentTest, PWF) {
  EXPECT_EQ(SmallestOf("child::a[position() + 1 = last()]"), Fragment::kPWF);
  EXPECT_EQ(SmallestOf("a[2]"), Fragment::kPWF);  // numeric predicate
  EXPECT_EQ(SmallestOf("a[position() = 2 and child::b]"), Fragment::kPWF);
}

TEST(FragmentTest, WF) {
  // Negation with arithmetic: Wadler fragment but not Core, not pWF.
  EXPECT_EQ(SmallestOf("a[not(position() = 2)]"), Fragment::kWF);
  // Iterated predicates with position(): not pWF (Def 5.1 restriction 1).
  EXPECT_EQ(SmallestOf("a[position() = 2][last() = 3]"), Fragment::kWF);
}

TEST(FragmentTest, PXPath) {
  EXPECT_EQ(SmallestOf("a[concat('x', 'y') = 'xy']"), Fragment::kPXPath);
  EXPECT_EQ(SmallestOf("a[boolean(child::b)]"), Fragment::kPXPath);
  EXPECT_EQ(SmallestOf("a[contains('abc', 'b')]"), Fragment::kPXPath);
}

TEST(FragmentTest, FullXPathOnly) {
  // count() is excluded from pXPath (Def 6.1 restriction 2).
  EXPECT_EQ(SmallestOf("a[count(child::b) = 2]"), Fragment::kFullXPath);
  // Relop with boolean operand (restriction 3).
  EXPECT_EQ(SmallestOf("a[boolean(b) != true()]"), Fragment::kFullXPath);
  // not() plus string functions.
  EXPECT_EQ(SmallestOf("a[not(string(b) = 'x')]"), Fragment::kFullXPath);
}

TEST(FragmentTest, InclusionChain) {
  // Figure 1 inclusions: PF ⊂ posCore ⊂ {Core, pWF} ⊂ {WF, pXPath} ⊂ XPath.
  FragmentReport pf = Classify(MustParse("a/b"));
  EXPECT_TRUE(pf.in_pf && pf.in_positive_core && pf.in_core && pf.in_pwf &&
              pf.in_wf && pf.in_pxpath);
  FragmentReport pos = Classify(MustParse("a[b]"));
  EXPECT_TRUE(!pos.in_pf && pos.in_positive_core && pos.in_core && pos.in_pwf &&
              pos.in_wf && pos.in_pxpath);
  FragmentReport core = Classify(MustParse("a[not(b)]"));
  EXPECT_TRUE(core.in_core && core.in_wf && !core.in_pwf && !core.in_pxpath);
  FragmentReport pwf = Classify(MustParse("a[position() = 2]"));
  EXPECT_TRUE(pwf.in_pwf && pwf.in_wf && pwf.in_pxpath && !pwf.in_core);
}

TEST(FragmentTest, ArithNestingBound) {
  ClassifyOptions tight;
  tight.nesting_bound = 1;
  Query q = MustParse("a[position() + 1 + 1 = 3]");
  EXPECT_FALSE(Classify(q, tight).in_pwf);
  EXPECT_TRUE(Classify(q).in_pwf);  // default bound is generous
}

TEST(FragmentTest, ComplexityStrings) {
  EXPECT_NE(FragmentComplexity(Fragment::kPF).find("NL-complete"),
            std::string_view::npos);
  EXPECT_NE(FragmentComplexity(Fragment::kPositiveCore).find("LOGCFL"),
            std::string_view::npos);
  EXPECT_NE(FragmentComplexity(Fragment::kCore).find("P-complete"),
            std::string_view::npos);
  EXPECT_NE(FragmentComplexity(Fragment::kFullXPath).find("P-complete"),
            std::string_view::npos);
}

TEST(FragmentTest, NotesExplainExclusions) {
  FragmentReport report = Classify(MustParse("a[not(b)]"));
  bool found = false;
  for (const std::string& note : report.notes) {
    if (note.find("not()") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

// --- Paper's own example queries classify sensibly ---

TEST(FragmentTest, PaperExamples) {
  // §2.2 example.
  EXPECT_EQ(SmallestOf("/descendant::a/child::b"), Fragment::kPF);
  // §2.2 condition example (negation => Core XPath).
  EXPECT_EQ(SmallestOf("/descendant::a/child::b[descendant::c and "
                       "not(following-sibling::d)]"),
            Fragment::kCore);
  // §2.2 WF example: position() + 1 = last() — pWF (no negation, single
  // predicates, shallow arithmetic).
  EXPECT_EQ(SmallestOf("child::a[position() + 1 = last()]"), Fragment::kPWF);
}

// --- transforms ---

TEST(TransformTest, NormalizeIteratedPredicatesFolds) {
  Query q = MustParse("a[b][c]");
  Query normalized = NormalizeIteratedPredicates(q);
  EXPECT_EQ(ToXPathString(normalized), "child::a[child::b and child::c]");
  // Remark 5.2: a positive-Core query with iterated predicates lands in pWF
  // after normalization.
  EXPECT_TRUE(Classify(normalized).in_pwf);
}

TEST(TransformTest, NormalizeKeepsPositionalChains) {
  // [position()=1][b] may fold (first predicate positional is fine)...
  Query q1 = MustParse("a[position() = 1][b]");
  EXPECT_EQ(ToXPathString(NormalizeIteratedPredicates(q1)),
            "child::a[position() = 1 and child::b]");
  // ...but a later positional predicate observes re-ranking: must not fold.
  Query q2 = MustParse("a[b][position() = 1]");
  EXPECT_EQ(ToXPathString(NormalizeIteratedPredicates(q2)),
            "child::a[child::b][position() = 1]");
  // Numeric predicates never fold ([2] is an implicit position test).
  Query q3 = MustParse("a[2][b]");
  EXPECT_EQ(ToXPathString(NormalizeIteratedPredicates(q3)),
            "child::a[2][child::b]");
}

TEST(TransformTest, PushNegationsDownDeMorgan) {
  Query q = MustParse("a[not(b and c)]");
  Query pushed = PushNegationsDown(q);
  EXPECT_EQ(ToXPathString(pushed),
            "child::a[not(child::b) or not(child::c)]");
}

TEST(TransformTest, PushNegationsFlipsNumericComparisons) {
  Query q = MustParse("a[not(position() = 2)]");
  EXPECT_EQ(ToXPathString(PushNegationsDown(q)),
            "child::a[position() != 2]");
  Query q2 = MustParse("a[not(position() < last() or position() = 1)]");
  EXPECT_EQ(ToXPathString(PushNegationsDown(q2)),
            "child::a[position() >= last() and position() != 1]");
}

TEST(TransformTest, PushNegationsDoubleNegation) {
  Query q = MustParse("a[not(not(b))]");
  EXPECT_EQ(ToXPathString(PushNegationsDown(q)),
            "child::a[boolean(child::b)]");
}

TEST(TransformTest, PushNegationsKeepsNotOverPaths) {
  Query q = MustParse("a[not(b or not(c))]");
  EXPECT_EQ(ToXPathString(PushNegationsDown(q)),
            "child::a[not(child::b) and boolean(child::c)]");
}

// After PushNegationsDown, every surviving not() must wrap a location path
// (or union) — the normal form the Theorem 5.9 NAuxPDA extension relies on.
bool NotOnlyOverPaths(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kNumberLiteral:
    case Expr::Kind::kStringLiteral:
      return true;
    case Expr::Kind::kNegate:
      return NotOnlyOverPaths(expr.As<NegateExpr>().operand());
    case Expr::Kind::kBinary: {
      const auto& binary = expr.As<BinaryExpr>();
      return NotOnlyOverPaths(binary.lhs()) && NotOnlyOverPaths(binary.rhs());
    }
    case Expr::Kind::kFunctionCall: {
      const auto& call = expr.As<FunctionCall>();
      if (call.function() == Function::kNot) {
        const Expr::Kind kind = call.arg(0).kind();
        if (kind != Expr::Kind::kPath && kind != Expr::Kind::kUnion) {
          return false;
        }
      }
      for (size_t i = 0; i < call.arg_count(); ++i) {
        if (!NotOnlyOverPaths(call.arg(i))) return false;
      }
      return true;
    }
    case Expr::Kind::kPath: {
      const auto& path = expr.As<PathExpr>();
      for (size_t i = 0; i < path.step_count(); ++i) {
        for (const ExprPtr& predicate : path.step(i).predicates) {
          if (!NotOnlyOverPaths(*predicate)) return false;
        }
      }
      return true;
    }
    case Expr::Kind::kUnion: {
      const auto& u = expr.As<UnionExpr>();
      for (size_t i = 0; i < u.branch_count(); ++i) {
        if (!NotOnlyOverPaths(u.branch(i))) return false;
      }
      return true;
    }
  }
  return false;
}

TEST(TransformTest, PushNegationsNormalFormOnRandomCoreQueries) {
  // Core XPath random queries contain arbitrary nested not(); after the
  // rewrite, not() faces only location paths (number comparisons get
  // flipped, connectives get de-Morganed).
  Rng rng(509);
  RandomQueryOptions options;
  options.fragment = Fragment::kCore;
  options.max_condition_depth = 3;
  for (int i = 0; i < 60; ++i) {
    Query query = RandomQuery(&rng, options);
    Query pushed = PushNegationsDown(query);
    EXPECT_TRUE(NotOnlyOverPaths(pushed.root()))
        << ToXPathString(query) << "  =>  " << ToXPathString(pushed);
  }
  // Same for WF queries (numeric comparisons must flip away).
  options.fragment = Fragment::kWF;
  for (int i = 0; i < 60; ++i) {
    Query query = RandomQuery(&rng, options);
    Query pushed = PushNegationsDown(query);
    EXPECT_TRUE(NotOnlyOverPaths(pushed.root()))
        << ToXPathString(query) << "  =>  " << ToXPathString(pushed);
  }
}

// --- random query generator sanity: stays in its fragment ---

class GeneratorFragmentTest
    : public ::testing::TestWithParam<std::tuple<Fragment, uint64_t>> {};

TEST_P(GeneratorFragmentTest, GeneratedQueryIsInFragment) {
  auto [fragment, seed] = GetParam();
  Rng rng(seed);
  RandomQueryOptions options;
  options.fragment = fragment;
  options.max_predicates_per_step = 2;
  for (int i = 0; i < 25; ++i) {
    Query q = RandomQuery(&rng, options);
    FragmentReport report = Classify(q);
    EXPECT_TRUE(report.Contains(fragment))
        << FragmentName(fragment) << " seed=" << seed
        << " query: " << ToXPathString(q);
    // Round-trip through the printer while we are here.
    Query reparsed = MustParse(ToXPathString(q));
    EXPECT_EQ(ToXPathString(reparsed), ToXPathString(q));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFragments, GeneratorFragmentTest,
    ::testing::Combine(::testing::Values(Fragment::kPF, Fragment::kPositiveCore,
                                         Fragment::kCore, Fragment::kPWF,
                                         Fragment::kWF, Fragment::kPXPath,
                                         Fragment::kFullXPath),
                       ::testing::Values(7u, 99u, 1234u)));

TEST(GeneratorTest, NestedConditionQuerySizeGrowth) {
  // |Q| is Θ(2^depth) with two arms — the intro experiment's workload.
  int previous = NestedConditionQuery(1, 2).size();
  for (int depth = 2; depth <= 6; ++depth) {
    int current = NestedConditionQuery(depth, 2).size();
    EXPECT_GT(current, previous * 3 / 2);
    previous = current;
  }
  // One arm: linear growth, positive Core XPath either way.
  EXPECT_EQ(Classify(NestedConditionQuery(4, 2)).smallest,
            Fragment::kPositiveCore);
}

TEST(GeneratorTest, ChildStarChainQuery) {
  Query q = ChildStarChainQuery(5);
  EXPECT_EQ(q.root().As<PathExpr>().step_count(), 5u);
  EXPECT_EQ(Classify(q).smallest, Fragment::kPF);
}

}  // namespace
}  // namespace gkx::xpath
