// Definition 5.3 (Singleton-Success) tests: instance validation rules, the
// reference decider, the NAuxPDA decider, and their equivalence on random
// pWF instances — which is the operational content of Lemma 5.4.

#include <gtest/gtest.h>

#include "eval/cvt_evaluator.hpp"
#include "eval/decision.hpp"
#include "eval/recursive_base.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::eval {
namespace {

using xpath::MustParse;

xml::Document Doc() {
  Rng rng(11);
  xml::RandomDocumentOptions options;
  options.node_count = 30;
  return xml::RandomDocument(&rng, options);
}

TEST(SingletonSuccessTest, ValidationRules) {
  xml::Document doc = Doc();
  xpath::Query boolean_query = MustParse("child::t1 and child::t2");
  xpath::Query node_query = MustParse("child::t1");

  SingletonSuccessInstance instance;
  instance.doc = &doc;
  instance.query = &boolean_query;
  instance.context = RootContext(doc);

  // Boolean queries: only `true` may be asked (Definition 5.3).
  instance.value = Value::Boolean(false);
  EXPECT_FALSE(ValidateInstance(instance).ok());
  instance.value = Value::Boolean(true);
  EXPECT_TRUE(ValidateInstance(instance).ok());

  // Type mismatch.
  instance.value = Value::Number(1);
  EXPECT_FALSE(ValidateInstance(instance).ok());

  // Node-set queries need exactly one node.
  instance.query = &node_query;
  instance.value = Value::Nodes({1, 2});
  EXPECT_FALSE(ValidateInstance(instance).ok());
  instance.value = Value::Nodes({1});
  EXPECT_TRUE(ValidateInstance(instance).ok());
}

TEST(SingletonSuccessTest, NodeMembership) {
  xml::Document doc = Doc();
  xpath::Query query = MustParse("/descendant-or-self::t1");
  CvtEvaluator cvt;
  auto expected = cvt.EvaluateNodeSet(doc, query);
  ASSERT_TRUE(expected.ok());

  NaiveEvaluator naive;
  for (xml::NodeId v = 0; v < doc.size(); ++v) {
    SingletonSuccessInstance instance;
    instance.doc = &doc;
    instance.query = &query;
    instance.context = RootContext(doc);
    instance.value = Value::Nodes({v});
    auto reference = DecideSingletonSuccess(instance, &naive);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(*reference, SetContains(*expected, v));
    auto pda = DecideSingletonSuccessPda(instance);
    ASSERT_TRUE(pda.ok());
    EXPECT_EQ(*pda, *reference) << "node " << v;
  }
}

TEST(SingletonSuccessTest, ScalarInstances) {
  xml::Document doc = Doc();
  xpath::Query number_query = MustParse("2 + 3 * 4");
  SingletonSuccessInstance instance;
  instance.doc = &doc;
  instance.query = &number_query;
  instance.context = RootContext(doc);

  NaiveEvaluator naive;
  instance.value = Value::Number(14);
  auto yes = DecideSingletonSuccess(instance, &naive);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  EXPECT_TRUE(*DecideSingletonSuccessPda(instance));

  instance.value = Value::Number(15);
  auto no = DecideSingletonSuccess(instance, &naive);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
  EXPECT_FALSE(*DecideSingletonSuccessPda(instance));
}

TEST(SingletonSuccessTest, PdaRejectsOutsideFragment) {
  xml::Document doc = Doc();
  xpath::Query query = MustParse("/descendant::*[not(child::t1)]");
  SingletonSuccessInstance instance;
  instance.doc = &doc;
  instance.query = &query;
  instance.context = RootContext(doc);
  instance.value = Value::Nodes({0});
  auto result = DecideSingletonSuccessPda(instance);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

// Lemma 5.4 as a property: the PDA decider equals the reference decider on
// random pWF instances.
class Lemma54Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma54Test, PdaDeciderMatchesReference) {
  Rng rng(GetParam());
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 25;
  xpath::RandomQueryOptions query_options;
  query_options.fragment = xpath::Fragment::kPWF;

  NaiveEvaluator naive;
  for (int trial = 0; trial < 12; ++trial) {
    xml::Document doc = xml::RandomDocument(&rng, doc_options);
    xpath::Query query = xpath::RandomQuery(&rng, query_options);
    for (int probe = 0; probe < 6; ++probe) {
      SingletonSuccessInstance instance;
      instance.doc = &doc;
      instance.query = &query;
      instance.context = RootContext(doc);
      instance.value = Value::Nodes(
          {static_cast<xml::NodeId>(rng.UniformInt(0, doc.size() - 1))});
      auto reference = DecideSingletonSuccess(instance, &naive);
      ASSERT_TRUE(reference.ok()) << ToXPathString(query);
      auto pda = DecideSingletonSuccessPda(instance);
      ASSERT_TRUE(pda.ok()) << ToXPathString(query) << ": "
                            << pda.status().ToString();
      EXPECT_EQ(*pda, *reference)
          << ToXPathString(query) << " candidate "
          << instance.value.nodes().front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma54Test, ::testing::Values(54, 55, 56, 57));

}  // namespace
}  // namespace gkx::eval
