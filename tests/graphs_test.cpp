// Digraph substrate tests: edges, BFS reachability, generators.

#include <gtest/gtest.h>

#include "graphs/digraph.hpp"

namespace gkx::graphs {
namespace {

TEST(DigraphTest, EdgesAndDeduplication) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_FALSE(graph.HasEdge(1, 0));
  EXPECT_EQ(graph.OutEdges(0).size(), 1u);
}

TEST(DigraphTest, SelfLoops) {
  Digraph graph(3);
  graph.AddSelfLoops();
  EXPECT_EQ(graph.num_edges(), 3);
  EXPECT_TRUE(graph.HasEdge(2, 2));
  graph.AddSelfLoops();  // idempotent
  EXPECT_EQ(graph.num_edges(), 3);
}

TEST(ReachabilityTest, PathGraph) {
  Digraph graph = PathGraph(5);
  EXPECT_TRUE(IsReachable(graph, 0, 4));
  EXPECT_FALSE(IsReachable(graph, 4, 0));
  EXPECT_TRUE(IsReachable(graph, 2, 2));  // trivially reachable
  auto reach = ReachableFrom(graph, 2);
  EXPECT_EQ(reach, (std::vector<bool>{false, false, true, true, true}));
}

TEST(ReachabilityTest, CycleGraph) {
  Digraph graph = CycleGraph(4);
  for (int32_t u = 0; u < 4; ++u) {
    for (int32_t v = 0; v < 4; ++v) {
      EXPECT_TRUE(IsReachable(graph, u, v));
    }
  }
}

TEST(ReachabilityTest, DisconnectedComponents) {
  Digraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(2, 3);
  EXPECT_TRUE(IsReachable(graph, 0, 1));
  EXPECT_FALSE(IsReachable(graph, 0, 2));
  EXPECT_FALSE(IsReachable(graph, 1, 0));
}

TEST(ReachabilityTest, TransitivityProperty) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Digraph graph = RandomDigraph(&rng, 12, 0.15);
    for (int32_t u = 0; u < 12; ++u) {
      auto from_u = ReachableFrom(graph, u);
      for (int32_t v = 0; v < 12; ++v) {
        if (!from_u[static_cast<size_t>(v)]) continue;
        auto from_v = ReachableFrom(graph, v);
        for (int32_t w = 0; w < 12; ++w) {
          if (from_v[static_cast<size_t>(w)]) {
            EXPECT_TRUE(from_u[static_cast<size_t>(w)]);
          }
        }
      }
    }
  }
}

TEST(RandomDigraphTest, EdgeProbabilityExtremes) {
  Rng rng(3);
  Digraph empty = RandomDigraph(&rng, 6, 0.0);
  EXPECT_EQ(empty.num_edges(), 0);
  Digraph full = RandomDigraph(&rng, 6, 1.0);
  EXPECT_EQ(full.num_edges(), 30);  // no self-loops
}

}  // namespace
}  // namespace gkx::graphs
