// gkx::mview::SubscriptionManager — standing queries over the service.
//   * Initial snapshots arrive as pure-`added` diffs; churn arrives as
//     added/removed diffs against the last delivered state.
//   * Footprint-disjoint churn is skipped without evaluating; rapid churn
//     against a busy pool coalesces into consolidated diffs.
//   * Selectors: exact keys, trailing-'*' prefixes, new documents matching
//     a live selector, removal delivering the final retraction.
//   * Lifecycle: non-node-set queries are rejected; Unsubscribe stops
//     delivery; counters reconcile with observed callbacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "mview/subscription.hpp"
#include "service/query_service.hpp"
#include "xml/edit.hpp"
#include "xml/parser.hpp"

namespace gkx::mview {
namespace {

using service::QueryService;

/// Thread-safe event collector with a blocking knob for coalescing tests.
class Collector {
 public:
  SubscriptionCallback Callback() {
    return [this](const SubscriptionEvent& event) {
      std::unique_lock<std::mutex> lock(mu_);
      events_.push_back(event);
      entered_.notify_all();
      if (block_first_ && events_.size() == 1) {
        release_.wait(lock, [this] { return released_; });
      }
    };
  }

  void BlockFirstDelivery() {
    std::lock_guard<std::mutex> lock(mu_);
    block_first_ = true;
  }

  void WaitForFirstDelivery() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_.wait(lock, [this] { return !events_.empty(); });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    release_.notify_all();
  }

  std::vector<SubscriptionEvent> Events() {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_;
  std::condition_variable release_;
  bool block_first_ = false;
  bool released_ = false;
  std::vector<SubscriptionEvent> events_;
};

TEST(SelectorTest, ExactPrefixAndUniversal) {
  EXPECT_TRUE(SubscriptionManager::SelectorMatches("doc1", "doc1"));
  EXPECT_FALSE(SubscriptionManager::SelectorMatches("doc1", "doc12"));
  EXPECT_TRUE(SubscriptionManager::SelectorMatches("doc*", "doc12"));
  EXPECT_FALSE(SubscriptionManager::SelectorMatches("doc*", "dx"));
  EXPECT_TRUE(SubscriptionManager::SelectorMatches("*", "anything"));
  EXPECT_FALSE(SubscriptionManager::SelectorMatches("", "anything"));
}

TEST(SubscriptionTest, InitialSnapshotArrivesAsPureAddedDiff) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><b/><a/></r>").ok());
  Collector collector;
  auto id = svc.Subscribe("d1", "//a", collector.Callback());
  ASSERT_TRUE(id.ok());
  svc.FlushSubscriptions();

  auto events = collector.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].subscription, *id);
  EXPECT_EQ(events[0].doc_key, "d1");
  EXPECT_EQ(events[0].added, (eval::NodeSet{1, 3}));
  EXPECT_TRUE(events[0].removed.empty());
  EXPECT_FALSE(events[0].doc_removed);
  EXPECT_GT(events[0].revision, 0);
}

TEST(SubscriptionTest, ChurnDeliversTheSymmetricDifference) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/></r>").ok());
  Collector collector;
  ASSERT_TRUE(svc.Subscribe("d1", "//a", collector.Callback()).ok());
  svc.FlushSubscriptions();

  // //a was {1, 2}; now it is {1, 3}: node 2 retags to b, node 3 appears.
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><b/><a/></r>").ok());
  svc.FlushSubscriptions();

  auto events = collector.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].added, (eval::NodeSet{3}));
  EXPECT_EQ(events[1].removed, (eval::NodeSet{2}));
}

TEST(SubscriptionTest, EmptyAnswerAndNoOpChurnDeliverNothing) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><b/></r>").ok());
  Collector collector;
  ASSERT_TRUE(svc.Subscribe("d1", "//a", collector.Callback()).ok());
  svc.FlushSubscriptions();
  EXPECT_TRUE(collector.Events().empty());  // empty initial answer: no diff

  // Intersecting churn ({r, a, b} ∩ {a}) that leaves //a empty: evaluated,
  // still no diff to deliver.
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><b/><a/></r>").ok());
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><b/></r>").ok());
  svc.FlushSubscriptions();
  auto events = collector.Events();
  // The intermediate state may or may not have been observed (coalescing);
  // but a final state of empty must never deliver a dangling diff.
  eval::NodeSet applied;
  for (const auto& event : events) {
    for (xml::NodeId node : event.removed) {
      applied.erase(std::remove(applied.begin(), applied.end(), node),
                    applied.end());
    }
    applied.insert(applied.end(), event.added.begin(), event.added.end());
  }
  EXPECT_TRUE(applied.empty());
}

TEST(SubscriptionTest, FootprintDisjointChurnIsSkippedWithoutEvaluating) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d2", "<x><b/></x>").ok());
  Collector collector;
  ASSERT_TRUE(svc.Subscribe("d2", "//a", collector.Callback()).ok());
  svc.FlushSubscriptions();
  const int64_t evaluations_after_snapshot =
      svc.Stats().subscriptions.evaluations;

  // {x, b, c} is disjoint from footprint {a}: no evaluation, no delivery.
  ASSERT_TRUE(svc.RegisterXml("d2", "<x><b/><c/></x>").ok());
  svc.FlushSubscriptions();
  auto stats = svc.Stats().subscriptions;
  EXPECT_EQ(stats.evaluations, evaluations_after_snapshot);
  EXPECT_GE(stats.skipped_disjoint, 1);
  EXPECT_TRUE(collector.Events().empty());
}

TEST(SubscriptionTest, IdsStableDeltaChurnIsSkippedWithoutEvaluating) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d", "<r><a/><b>x</b></r>").ok());
  Collector collector;
  ASSERT_TRUE(svc.Subscribe("d", "//a", collector.Callback()).ok());
  svc.FlushSubscriptions();
  const int64_t evaluations_after_snapshot =
      svc.Stats().subscriptions.evaluations;

  // A text edit under <b>: delta-local names are empty and NodeIds are
  // stable, so the standing //a query is skipped outright — even though
  // {a} is very much present in the (unchanged) rest of the document.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kSetText;
  edit.target = 2;
  edit.text = "y";
  ASSERT_TRUE(svc.UpdateDocument("d", edit).ok());
  svc.FlushSubscriptions();
  auto stats = svc.Stats().subscriptions;
  EXPECT_EQ(stats.evaluations, evaluations_after_snapshot);
  EXPECT_GE(stats.skipped_disjoint, 1);
  ASSERT_EQ(collector.Events().size(), 1u);  // just the initial snapshot

  // A structural edit in a foreign-named region is NOT skipped: the a-node
  // keeps its identity but shifts id, and the subscriber must learn the
  // new spelling through a real diff.
  xml::SubtreeEdit insert;
  insert.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
  insert.target = 0;
  insert.position = 0;  // before <a/>: the a-node shifts from id 1 to id 2
  insert.subtree = *xml::ParseDocument("<c/>");
  ASSERT_TRUE(svc.UpdateDocument("d", insert).ok());
  svc.FlushSubscriptions();
  auto events = collector.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].added, (eval::NodeSet{2}));
  EXPECT_EQ(events[1].removed, (eval::NodeSet{1}));
}

TEST(SubscriptionTest, WildcardSelectorCoversDocumentsRegisteredLater) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("doc0", "<r><a/></r>").ok());
  Collector collector;
  ASSERT_TRUE(svc.Subscribe("doc*", "//a", collector.Callback()).ok());
  svc.FlushSubscriptions();
  ASSERT_EQ(collector.Events().size(), 1u);

  ASSERT_TRUE(svc.RegisterXml("doc1", "<r><a/><a/></r>").ok());
  svc.FlushSubscriptions();
  auto events = collector.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].doc_key, "doc1");
  EXPECT_EQ(events[1].added, (eval::NodeSet{1, 2}));
}

TEST(SubscriptionTest, RemovalRetractsTheLastDeliveredState) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/></r>").ok());
  Collector collector;
  ASSERT_TRUE(svc.Subscribe("d1", "//a", collector.Callback()).ok());
  svc.FlushSubscriptions();

  ASSERT_TRUE(svc.RemoveDocument("d1"));
  svc.FlushSubscriptions();
  auto events = collector.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].doc_removed);
  EXPECT_EQ(events[1].revision, -1);
  EXPECT_TRUE(events[1].added.empty());
  EXPECT_EQ(events[1].removed, (eval::NodeSet{1, 2}));
}

TEST(SubscriptionTest, RapidChurnCoalescesIntoOneConsolidatedDiff) {
  // A width-1 pool whose only worker is parked inside the first delivery:
  // every churn after the first lands on an already-scheduled pair.
  ThreadPool pool(1);
  QueryService::Options options;
  options.pool = &pool;
  QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/></r>").ok());

  Collector collector;
  collector.BlockFirstDelivery();
  ASSERT_TRUE(svc.Subscribe("d1", "//a", collector.Callback()).ok());
  collector.WaitForFirstDelivery();  // worker is now parked in the callback

  // Four churns while delivery is blocked: the first schedules the re-eval,
  // the other three coalesce into it.
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/><a/></r>").ok());
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/></r>").ok());
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/><a/><a/></r>").ok());
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/><a/><a/><a/></r>").ok());
  collector.Release();
  svc.FlushSubscriptions();

  auto events = collector.Events();
  ASSERT_EQ(events.size(), 2u);  // initial + one consolidated diff
  EXPECT_EQ(events[1].added, (eval::NodeSet{3, 4, 5}));
  EXPECT_TRUE(events[1].removed.empty());
  auto stats = svc.Stats().subscriptions;
  EXPECT_EQ(stats.fired, 2);
  EXPECT_EQ(stats.coalesced, 3);
}

TEST(SubscriptionTest, NonNodeSetQueriesAreRejected) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/></r>").ok());
  Collector collector;
  auto id = svc.Subscribe("d1", "count(//a)", collector.Callback());
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(svc.Subscribe("d1", "child::", collector.Callback()).ok());
}

TEST(SubscriptionTest, UnsubscribeStopsDeliveryAndCountersReconcile) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/></r>").ok());
  Collector collector;
  auto id = svc.Subscribe("d1", "//a", collector.Callback());
  ASSERT_TRUE(id.ok());
  svc.FlushSubscriptions();
  ASSERT_EQ(collector.Events().size(), 1u);
  EXPECT_EQ(svc.Stats().subscriptions.active, 1);

  EXPECT_TRUE(svc.Unsubscribe(*id));
  EXPECT_FALSE(svc.Unsubscribe(*id));
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/></r>").ok());
  svc.FlushSubscriptions();
  EXPECT_EQ(collector.Events().size(), 1u);  // nothing after unsubscribe
  EXPECT_EQ(svc.Stats().subscriptions.active, 0);
}

// The one-shot pattern: a callback unsubscribing its own subscription runs
// under the delivery mutex, so Unsubscribe must detect the reentrancy
// instead of self-deadlocking — the delivery in progress is the last.
TEST(SubscriptionTest, UnsubscribeFromInsideOwnCallbackDoesNotDeadlock) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/></r>").ok());
  std::mutex mu;
  std::vector<SubscriptionEvent> events;
  std::vector<bool> unsubscribed;
  auto id = svc.Subscribe(
      "d1", "//a", [&](const SubscriptionEvent& event) {
        std::lock_guard<std::mutex> lock(mu);
        events.push_back(event);
        unsubscribed.push_back(svc.Unsubscribe(event.subscription));
      });
  ASSERT_TRUE(id.ok());
  svc.FlushSubscriptions();

  // Churn that would re-deliver if the subscription were still live.
  ASSERT_TRUE(svc.RegisterXml("d1", "<r><a/><a/></r>").ok());
  svc.FlushSubscriptions();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(events.size(), 1u);  // the initial snapshot and nothing else
  EXPECT_EQ(events[0].added, (eval::NodeSet{1}));
  ASSERT_EQ(unsubscribed.size(), 1u);
  EXPECT_TRUE(unsubscribed[0]);  // the reentrant call succeeded
  EXPECT_EQ(svc.Stats().subscriptions.active, 0);
}

}  // namespace
}  // namespace gkx::mview
