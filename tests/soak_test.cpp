// gkx::testkit — the deterministic concurrent workload harness.
//   * Schedules are byte-stable: same (spec, seed) => identical corpus,
//     query pool, and operation list; different seeds differ.
//   * The flagship soak: >= 10k operations replayed over >= 4 threads
//     against a live QueryService with zipfian traffic, batches, and live
//     AddDocument churn — zero divergences from the naive single-threaded
//     oracle, zero lost updates, and fully reconciled service counters.
//   * Fault injection: a perturbed answer (via QueryService's answer_tap
//     test hook) and a perturbed eviction counter are both caught, and the
//     failure message carries the reproducing seed.

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "testkit/oracle.hpp"
#include "testkit/soak_driver.hpp"
#include "testkit/workload.hpp"
#include "xml/serializer.hpp"

namespace gkx::testkit {
namespace {

// Small pools keep the naive oracle fast; the op count carries the load.
WorkloadSpec SoakSpec(uint64_t seed) {
  WorkloadSpec spec;
  spec.seed = seed;
  spec.operations = 10000;
  spec.documents = 4;
  spec.queries = 48;
  spec.min_document_nodes = 30;
  spec.max_document_nodes = 90;
  spec.query_options.max_path_steps = 3;
  spec.query_options.max_condition_depth = 2;
  spec.query_options.tag_zipf_s = 0.7;
  spec.document_options.tag_zipf_s = 0.7;
  spec.document_options.text_probability = 0.25;
  spec.churn_probability = 0.004;
  return spec;
}

TEST(WorkloadTest, CompileIsDeterministicInSeed) {
  auto a = CompileWorkload(SoakSpec(7));
  auto b = CompileWorkload(SoakSpec(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->queries, b->queries);
  ASSERT_EQ(a->operations.size(), b->operations.size());
  ASSERT_EQ(a->total_requests, b->total_requests);
  for (size_t i = 0; i < a->operations.size(); ++i) {
    EXPECT_EQ(a->operations[i].kind, b->operations[i].kind);
    EXPECT_EQ(a->operations[i].requests, b->operations[i].requests);
    EXPECT_EQ(a->operations[i].doc, b->operations[i].doc);
    EXPECT_EQ(a->operations[i].revision, b->operations[i].revision);
  }
  ASSERT_EQ(a->revisions.size(), b->revisions.size());
  for (size_t d = 0; d < a->revisions.size(); ++d) {
    ASSERT_EQ(a->revisions[d].size(), b->revisions[d].size());
    for (size_t r = 0; r < a->revisions[d].size(); ++r) {
      EXPECT_EQ(xml::SerializeDocument(a->revisions[d][r]),
                xml::SerializeDocument(b->revisions[d][r]));
    }
  }

  auto c = CompileWorkload(SoakSpec(8));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->queries, c->queries);
}

TEST(WorkloadTest, MixesFragmentsBatchesAndChurn) {
  WorkloadSpec spec = SoakSpec(11);
  spec.churn_probability = 0.01;  // enough events to see both churn kinds
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());
  int submits = 0, batches = 0, replacements = 0, edits = 0;
  for (const Operation& op : schedule->operations) {
    switch (op.kind) {
      case Operation::Kind::kSubmit: ++submits; break;
      case Operation::Kind::kBatch: ++batches; break;
      case Operation::Kind::kAddDocument: ++replacements; break;
      case Operation::Kind::kEditDocument: ++edits; break;
    }
  }
  EXPECT_GT(submits, 0);
  EXPECT_GT(batches, 0);
  EXPECT_GT(replacements, 0);
  EXPECT_GT(edits, 0);  // default edit_probability splits churn both ways
  // Every churned revision exists in the corpus, and every edit op's
  // precomputed result is its revision (the compile already cross-checked
  // it against a from-scratch rebuild).
  for (const Operation& op : schedule->operations) {
    if (op.kind != Operation::Kind::kAddDocument &&
        op.kind != Operation::Kind::kEditDocument) {
      continue;
    }
    ASSERT_LT(static_cast<size_t>(op.revision),
              schedule->revisions[static_cast<size_t>(op.doc)].size());
    ASSERT_GE(op.revision, 1);
  }
}

TEST(WorkloadTest, ZipfPopularitySkewsTowardLowRanks) {
  auto schedule = CompileWorkload(SoakSpec(13));
  ASSERT_TRUE(schedule.ok());
  std::vector<int64_t> query_counts(schedule->queries.size(), 0);
  for (const Operation& op : schedule->operations) {
    for (const auto& [doc, query] : op.requests) {
      ++query_counts[static_cast<size_t>(query)];
    }
  }
  // Rank 0 must be requested far more often than the median rank.
  EXPECT_GT(query_counts[0], 4 * query_counts[query_counts.size() / 2]);
}

TEST(WorkloadTest, RejectsInconsistentSpecs) {
  WorkloadSpec spec = SoakSpec(1);
  spec.documents = 0;
  EXPECT_FALSE(CompileWorkload(spec).ok());
  spec = SoakSpec(1);
  spec.min_document_nodes = 10;
  spec.max_document_nodes = 5;
  EXPECT_FALSE(CompileWorkload(spec).ok());
  spec = SoakSpec(1);
  spec.mix = {{xpath::Fragment::kPF, 0.0}};
  EXPECT_FALSE(CompileWorkload(spec).ok());
  spec = SoakSpec(1);
  spec.document_zipf_s = -0.8;  // would silently invert popularity
  EXPECT_FALSE(CompileWorkload(spec).ok());
  spec = SoakSpec(1);
  spec.churn_probability = 1.5;
  EXPECT_FALSE(CompileWorkload(spec).ok());
  spec = SoakSpec(1);
  spec.edit_probability = -0.25;
  EXPECT_FALSE(CompileWorkload(spec).ok());
}

// The flagship: >= 10k operations over >= 4 threads, zero divergences.
TEST(SoakTest, TenThousandOpsFourThreadsAgreeWithOracle) {
  auto schedule = CompileWorkload(SoakSpec(42));
  ASSERT_TRUE(schedule.ok());
  ASSERT_GE(schedule->operations.size(), 10000u);

  SoakOptions options;
  options.threads = 4;
  options.service.plan_cache.capacity = 64;  // force evictions under load
  SoakReport report = RunSoak(*schedule, options);

  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.operations, 10000);
  EXPECT_GE(report.requests, 10000);
  EXPECT_EQ(report.divergences, 0);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.lost_updates, 0);
  EXPECT_EQ(report.stats_violations, 0);
  // The zipfian workload keeps the plan cache hot even at capacity 64.
  EXPECT_GE(report.stats.plan_cache.HitRate(), 0.8);
  // Both fast paths saw traffic.
  EXPECT_GT(report.stats.evaluator_counts["pf-indexed"] +
                report.stats.evaluator_counts["pf-frontier"],
            0);
  EXPECT_GT(report.stats.evaluator_counts["core-linear"], 0);
}

// Churn + subscription mode: standing queries ride along with the replay,
// every delivered diff stream is re-applied and checked against the oracle
// (each state must be a real revision's answer, the final state the highest
// revision's), and the new mview counters must reconcile.
TEST(SoakTest, ChurnPlusSubscriptionSoakAgreesWithOracle) {
  WorkloadSpec spec = SoakSpec(77);
  spec.operations = 3000;
  spec.churn_probability = 0.02;  // plenty of subscription wake-ups
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  SoakOptions options;
  options.threads = 4;
  options.standing_queries = 6;
  options.service.plan_cache.capacity = 64;
  SoakReport report = RunSoak(*schedule, options);

  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.subscriptions, 6);
  EXPECT_GT(report.subscription_events, 0);
  EXPECT_EQ(report.subscription_violations, 0);
  EXPECT_EQ(report.stats.subscriptions.fired, report.subscription_events);
  // The answer cache sat on the request path the whole time: its lookups
  // must account for every successful request, and churn must have
  // exercised the invalidation path.
  EXPECT_EQ(report.stats.answer_cache.Lookups(),
            report.stats.requests - report.stats.failures);
  EXPECT_GT(report.stats.answer_cache.hits, 0);
  EXPECT_GT(report.stats.answer_cache.invalidations +
                report.stats.answer_cache.retained,
            0);
}

// Delta churn + subscriptions: subtree edits replayed through the live
// delta pipeline (UpdateDocument), each patch differentially checked
// against its precomputed full-replacement-equivalent revision, all query
// answers checked against the oracle, diff streams re-applied and checked —
// and the SAME schedule must also pass with delta invalidation disabled
// (the whole-document baseline), proving the two invalidation modes are
// answer-equivalent and only differ in what they retain.
TEST(SoakTest, DeltaChurnSoakAgreesWithOracleInBothInvalidationModes) {
  WorkloadSpec spec = SoakSpec(101);
  spec.operations = 3000;
  spec.churn_probability = 0.02;
  spec.edit_probability = 0.7;  // mostly subtree patches, some replacements
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  int64_t delta_retained = 0;
  for (const bool delta_invalidation : {true, false}) {
    SoakOptions options;
    options.threads = 4;
    options.standing_queries = 4;
    options.service.plan_cache.capacity = 64;
    options.service.delta_invalidation = delta_invalidation;
    SoakReport report = RunSoak(*schedule, options);

    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_GT(report.patches, 0);
    EXPECT_EQ(report.patch_divergences, 0);
    EXPECT_EQ(report.divergences, 0);
    EXPECT_EQ(report.lost_updates, 0);
    EXPECT_EQ(report.subscription_violations, 0);
    if (delta_invalidation) {
      delta_retained = report.stats.answer_cache.retained;
    } else {
      // Region×name precision must retain at least as much as the
      // document×name baseline on the identical schedule.
      EXPECT_GE(delta_retained, report.stats.answer_cache.retained);
    }
  }
}

// A stale-answer fault injected via answer_tap — the tap serves a node-set
// with its tail node dropped, modelling an answer cache that survived an
// update it should not have — must be caught with the reproducing seed.
TEST(SoakTest, StaleAnswerFaultViaTapIsCaughtWithReproducingSeed) {
  WorkloadSpec spec = SoakSpec(131);
  spec.operations = 600;
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  SoakOptions options;
  options.threads = 4;
  options.standing_queries = 2;
  options.service.answer_tap = [](eval::Engine::Answer* answer) {
    if (answer->value.is_node_set() && answer->value.nodes().size() >= 2) {
      eval::NodeSet nodes = answer->value.nodes();
      nodes.pop_back();
      answer->value = eval::Value::Nodes(std::move(nodes));
    }
  };
  SoakReport report = RunSoak(*schedule, options);

  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.divergences, 0);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("seed=131"), std::string::npos)
      << report.failures[0];
}

// The honest stale-serve defect: invalidation that ignores footprints
// retains every cached answer across every update, so after intersecting
// churn the service hands out answers from dead revisions. The soak's
// oracle must flag them (and embed the seed) — this is the failure mode the
// whole mview layer exists to prevent.
TEST(SoakTest, BrokenInvalidationServesStaleAnswersAndIsCaught) {
  WorkloadSpec spec = SoakSpec(59);
  spec.operations = 4000;
  spec.churn_probability = 0.05;  // heavy churn: stale entries get re-read
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  SoakOptions options;
  options.threads = 4;
  options.service.answer_cache.fault_ignore_footprints = true;
  SoakReport report = RunSoak(*schedule, options);

  EXPECT_FALSE(report.ok()) << "stale serves went undetected";
  EXPECT_GT(report.divergences, 0);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("seed=59"), std::string::npos)
      << report.failures[0];
}

// The delta fault tooth: invalidation that skips the region×name machinery
// (retaining every entry, un-remapped, across every subtree edit) serves
// truly stale answers under edit churn — the soak's oracle must flag them
// and embed the reproducing seed. This is the defect mode the delta
// pipeline introduces and therefore must be provably caught.
TEST(SoakTest, BrokenDeltaInvalidationServesStaleAnswersAndIsCaught) {
  WorkloadSpec spec = SoakSpec(67);
  spec.operations = 4000;
  spec.churn_probability = 0.05;  // heavy churn: stale entries get re-read
  spec.edit_probability = 1.0;    // every churn event is a subtree patch
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  SoakOptions options;
  options.threads = 4;
  options.service.answer_cache.fault_ignore_delta = true;
  SoakReport report = RunSoak(*schedule, options);

  EXPECT_FALSE(report.ok()) << "stale serves went undetected";
  EXPECT_GT(report.divergences, 0);
  EXPECT_GT(report.patches, 0);
  EXPECT_EQ(report.patch_divergences, 0);  // the patches themselves applied
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("seed=67"), std::string::npos)
      << report.failures[0];
}

// A semantically faulty engine must be caught, with the seed in the report.
TEST(SoakTest, InjectedAnswerFaultIsCaughtWithReproducingSeed) {
  WorkloadSpec spec = SoakSpec(97);
  spec.operations = 400;
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  SoakOptions options;
  options.threads = 4;
  // Perturb every non-empty node-set produced by the indexed fast path:
  // drop the first node. This models a subtly wrong posting-list merge.
  options.service.answer_tap = [](eval::Engine::Answer* answer) {
    if (answer->evaluator == "pf-indexed" && answer->value.is_node_set() &&
        !answer->value.nodes().empty()) {
      eval::NodeSet nodes = answer->value.nodes();
      nodes.erase(nodes.begin());
      answer->value = eval::Value::Nodes(std::move(nodes));
    }
  };
  SoakReport report = RunSoak(*schedule, options);

  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.divergences, 0);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("seed=97"), std::string::npos)
      << report.failures[0];
  EXPECT_NE(report.failures[0].find("divergence"), std::string::npos);
}

// Eviction observation: under a tiny cache the driver's on_evict-based
// reconciliation must hold, and a caller-provided hook is composed, not
// clobbered — both see exactly counters().evictions events.
TEST(SoakTest, EvictionObservationReconcilesUnderCacheChurn) {
  WorkloadSpec spec = SoakSpec(101);
  spec.operations = 300;
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());

  SoakOptions options;
  options.threads = 2;
  options.service.plan_cache.capacity = 8;  // guarantee evictions
  std::atomic<int64_t> caller_observed{0};
  options.service.plan_cache.on_evict = [&caller_observed](const std::string&) {
    caller_observed.fetch_add(1);
  };
  SoakReport report = RunSoak(*schedule, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.stats.plan_cache.evictions, 0)
      << "spec did not trigger evictions; tighten capacity";
  EXPECT_EQ(caller_observed.load(), report.stats.plan_cache.evictions);
}

// The oracle itself: digests are per-revision, and revision windows work.
TEST(OracleTest, TracksRevisionsIndependently) {
  WorkloadSpec spec = SoakSpec(55);
  spec.operations = 500;
  spec.churn_probability = 0.05;  // plenty of revisions
  auto schedule = CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok());
  Oracle oracle(*schedule);
  EXPECT_GT(oracle.evaluations(), 0);

  // Find a (doc, query) pair used in the schedule on a doc with >= 2
  // revisions and check the window logic against the per-revision digests.
  for (const Operation& op : schedule->operations) {
    for (const auto& [doc, query] : op.requests) {
      const auto& revisions = schedule->revisions[static_cast<size_t>(doc)];
      if (revisions.size() < 2) continue;
      const int32_t hi = static_cast<int32_t>(revisions.size()) - 1;
      const std::string& first = oracle.Expected(doc, 0, query);
      EXPECT_TRUE(oracle.MatchesAnyRevision(doc, 0, hi, query, first));
      EXPECT_FALSE(oracle.MatchesAnyRevision(doc, 0, hi, query,
                                             "node-set{-1}"));
      return;
    }
  }
  GTEST_SKIP() << "no churned document was queried for this seed";
}

}  // namespace
}  // namespace gkx::testkit
