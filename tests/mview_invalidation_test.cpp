// gkx::mview::AnswerCache — materialized answers with footprint
// invalidation.
//   * Golden: updating a document whose tag set is disjoint from a plan's
//     footprint invalidates nothing — the entries are retained across the
//     revision bump and keep hitting (the precision claim), while
//     intersecting entries die (the soundness claim).
//   * Property: under random churn a cached answer is never servable once
//     stale — every Submit equals a fresh NaiveEvaluator run of the raw
//     text against the current document, for hundreds of random
//     (doc, query, churn) interleavings.
//   * Teeth: with the fault_ignore_footprints injection the same property
//     check MUST fail — proving the invalidation logic, not luck, is what
//     keeps the cache coherent.
//   * Bookkeeping: LRU + byte-budget eviction, revision-mismatch
//     self-cleaning, gauge consistency.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/rng.hpp"
#include "eval/recursive_base.hpp"
#include "mview/answer_cache.hpp"
#include "service/query_service.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::mview {
namespace {

using service::QueryService;

// Two disjoint tag families: a "listings" schema and an "orders" schema.
const char kListings[] =
    "<catalog><listing><price>10</price></listing>"
    "<listing><price>20</price></listing></catalog>";
const char kOrdersV1[] = "<orders><order><total>7</total></order></orders>";
const char kOrdersV2[] =
    "<orders><order><total>9</total></order>"
    "<order><total>12</total></order></orders>";

TEST(AnswerCacheTest, DisjointTagUpdateInvalidatesNothing) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("listings", kListings).ok());
  ASSERT_TRUE(svc.RegisterXml("orders", kOrdersV1).ok());

  // Warm: listing-family queries against BOTH documents (empty answers on
  // "orders" are answers too), one order-family query against "orders".
  ASSERT_TRUE(svc.Submit("listings", "//listing").ok());
  ASSERT_TRUE(svc.Submit("orders", "//listing").ok());
  ASSERT_TRUE(svc.Submit("orders", "//order").ok());
  ASSERT_EQ(svc.answer_cache().counters().entries, 3);

  // Replace "orders": its tag set {orders, order, total} intersects the
  // //order footprint but not the //listing footprint.
  ASSERT_TRUE(svc.RegisterXml("orders", kOrdersV2).ok());
  AnswerCache::Counters counters = svc.answer_cache().counters();
  EXPECT_EQ(counters.invalidations, 1);  // only (orders, //order)
  EXPECT_EQ(counters.retained, 1);       // (orders, //listing) re-stamped

  // Retained entries keep hitting — including on the churned document.
  auto hit = svc.Submit("orders", "//listing");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->value.nodes().empty());
  auto also_hit = svc.Submit("listings", "//listing");
  ASSERT_TRUE(also_hit.ok());
  counters = svc.answer_cache().counters();
  EXPECT_EQ(counters.hits, 2);

  // The invalidated pair re-evaluates against the new revision.
  auto fresh = svc.Submit("orders", "//order");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->value.nodes().size(), 2u);
  EXPECT_EQ(svc.answer_cache().counters().hits, 2);  // that one was a miss
}

TEST(AnswerCacheTest, FlushAllModeIsTheBaselineItSoundsLike) {
  QueryService::Options options;
  options.answer_cache.mode = AnswerCache::InvalidationMode::kFlushAll;
  QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("listings", kListings).ok());
  ASSERT_TRUE(svc.RegisterXml("orders", kOrdersV1).ok());
  ASSERT_TRUE(svc.Submit("listings", "//listing").ok());
  ASSERT_TRUE(svc.Submit("orders", "//listing").ok());
  ASSERT_TRUE(svc.RegisterXml("orders", kOrdersV2).ok());

  AnswerCache::Counters counters = svc.answer_cache().counters();
  EXPECT_EQ(counters.invalidations, 2);  // everything, even (listings, ...)
  EXPECT_EQ(counters.retained, 0);
  EXPECT_EQ(counters.entries, 0);
}

// Regression (REVIEW: footprint soundness hole): a query that reads the
// root's content — string(/) — has no name-tested step, so before the fix
// its empty footprint survived every replacement and the cache re-served
// the old document's text forever. A content change that keeps the tag set
// identical must still invalidate it.
TEST(AnswerCacheTest, RootContentQueryIsInvalidatedByContentOnlyChange) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d", "<r><a>old</a></r>").ok());
  auto before = svc.Submit("d", "string(/) = 'old'");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->value.boolean());

  // Same tag set {r, a}, different text: the changed-name delta is empty of
  // surprises, only the content moved.
  ASSERT_TRUE(svc.RegisterXml("d", "<r><a>new</a></r>").ok());
  auto after = svc.Submit("d", "string(/) = 'old'");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->value.boolean())
      << "stale root-content answer served across a content-only update";
}

// The flagship property: across random documents, queries, and churn, a
// cached answer is indistinguishable from a fresh evaluation of the raw
// query text on the current document — no interleaving of updates may leave
// a stale entry servable.
TEST(AnswerCacheTest, PropertyNoStaleAnswerIsEverServable) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    QueryService svc;

    xml::RandomDocumentOptions doc_options;
    doc_options.tag_alphabet = 5;
    doc_options.tag_zipf_s = 0.7;
    doc_options.text_probability = 0.3;
    const int kDocs = 3;
    std::vector<xml::Document> current;
    for (int d = 0; d < kDocs; ++d) {
      doc_options.node_count = static_cast<int32_t>(rng.UniformInt(20, 60));
      current.push_back(xml::RandomDocument(&rng, doc_options));
      ASSERT_TRUE(svc.RegisterDocument("doc" + std::to_string(d),
                                       xml::Document(current.back()))
                      .ok());
    }

    xpath::RandomQueryOptions query_options;
    query_options.max_path_steps = 3;
    query_options.max_condition_depth = 2;
    query_options.tag_alphabet = 5;
    std::vector<std::string> pool;
    std::vector<xpath::Query> parsed;
    const xpath::Fragment fragments[] = {
        xpath::Fragment::kPF, xpath::Fragment::kCore, xpath::Fragment::kPWF,
        xpath::Fragment::kFullXPath};
    for (int q = 0; q < 16; ++q) {
      query_options.fragment = fragments[q % std::size(fragments)];
      std::string text;
      do {
        text = xpath::ToXPathString(xpath::RandomQuery(&rng, query_options));
      } while (!xpath::ParseQuery(text).ok());
      pool.push_back(text);
      parsed.push_back(xpath::MustParse(text));
    }

    eval::NaiveEvaluator naive;
    for (int step = 0; step < 400; ++step) {
      const int d = static_cast<int>(rng.UniformInt(0, kDocs - 1));
      if (rng.Bernoulli(0.12)) {
        doc_options.node_count = static_cast<int32_t>(rng.UniformInt(20, 60));
        current[static_cast<size_t>(d)] = xml::RandomDocument(&rng, doc_options);
        ASSERT_TRUE(
            svc.RegisterDocument("doc" + std::to_string(d),
                                 xml::Document(current[static_cast<size_t>(d)]))
                .ok());
        continue;
      }
      const size_t q = static_cast<size_t>(rng.UniformInt(0, 15));
      auto got = svc.Submit("doc" + std::to_string(d), pool[q]);
      ASSERT_TRUE(got.ok()) << pool[q];
      auto want = naive.EvaluateAtRoot(current[static_cast<size_t>(d)],
                                       parsed[q]);
      ASSERT_TRUE(want.ok()) << pool[q];
      ASSERT_TRUE(got->value.Equals(*want))
          << "stale or wrong answer: seed=" << seed << " step=" << step
          << " doc=" << d << " query='" << pool[q] << "' got "
          << got->value.DebugString() << " want " << want->DebugString();
    }
    // The property run must actually have exercised the cache and churn.
    AnswerCache::Counters counters = svc.answer_cache().counters();
    EXPECT_GT(counters.hits, 0) << "seed=" << seed;
    EXPECT_GT(counters.invalidations + counters.retained, 0) << "seed=" << seed;
  }
}

// Teeth: with invalidation deliberately broken (every update treated as
// footprint-disjoint) a stale answer IS served — the coherence above is the
// invalidation logic's doing, not an accident of the workload.
TEST(AnswerCacheTest, FaultIgnoringFootprintsServesStaleAnswers) {
  QueryService::Options options;
  options.answer_cache.fault_ignore_footprints = true;
  QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("d", "<r><a/><a/></r>").ok());
  auto before = svc.Submit("d", "//a");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->value.nodes().size(), 2u);

  // Intersecting update: {r, a} ∩ footprint {a} — must invalidate, but the
  // fault retains and re-stamps the entry instead.
  ASSERT_TRUE(svc.RegisterXml("d", "<r><a/></r>").ok());
  auto after = svc.Submit("d", "//a");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value.nodes().size(), 2u)  // the stale cached answer
      << "fault injection did not serve stale data; the teeth test is dead";
  EXPECT_EQ(svc.answer_cache().counters().hits, 1);
}

// ------------------------------------------------- delta-scoped updates
// Subtree edits (QueryService::UpdateDocument) invalidate per region×name:
// an edit under one subtree leaves cached answers alone whose footprints
// only mention names the edit never touched — even though those names (and
// the cached answers) live in the SAME document, where whole-document
// name-union invalidation (PR 4) would kill them.

const char kCatalog[] =
    "<catalog>"
    "<items><item><sku>a</sku></item><item><sku>b</sku></item></items>"
    "<summary><total>2</total></summary>"
    "</catalog>";

TEST(AnswerCacheDeltaTest, EditUnderOneSectionRetainsOtherSectionsAnswers) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d", kCatalog).ok());
  // Warm both families. The names overlap document-wide: item/sku occur in
  // the edited region AND elsewhere, summary/total only elsewhere.
  auto items = svc.Submit("d", "//item");
  ASSERT_TRUE(items.ok());
  ASSERT_EQ(items->value.nodes().size(), 2u);
  auto total = svc.Submit("d", "/descendant::summary/child::total");
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->value.nodes(), (eval::NodeSet{7}));

  // Replace the second <item> subtree (region names {item, sku}) with a
  // bigger one: structure changes, ids behind the region shift by +1.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = 4;
  edit.subtree = *xml::ParseDocument("<item><sku>c</sku><qty>9</qty></item>");
  ASSERT_TRUE(svc.UpdateDocument("d", edit).ok());

  AnswerCache::Counters counters = svc.answer_cache().counters();
  EXPECT_EQ(counters.invalidations, 1);  // //item names the region
  EXPECT_EQ(counters.retained, 1);       // the summary query survives
  EXPECT_EQ(counters.remapped, 1);       // ... with its node id re-based

  // The retained entry serves the RIGHT answer at the new revision: the
  // total node moved from id 7 to id 8, and a hit must say so.
  auto after = svc.Submit("d", "/descendant::summary/child::total");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value.nodes(), (eval::NodeSet{8}));
  EXPECT_EQ(svc.answer_cache().counters().hits, 1);

  // And the invalidated family re-evaluates freshly.
  auto fresh = svc.Submit("d", "//item");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->value.nodes().size(), 2u);
}

TEST(AnswerCacheDeltaTest, TextEditInvalidatesOnlyContentReaders) {
  QueryService svc;
  ASSERT_TRUE(svc.RegisterXml("d", kCatalog).ok());
  ASSERT_TRUE(svc.Submit("d", "//sku").ok());               // names only
  ASSERT_TRUE(svc.Submit("d", "//sku[. = 'a']").ok());      // content read
  ASSERT_TRUE(svc.Submit("d", "count(//item)").ok());       // structural

  // SetText on the first sku: no names change, no ids move — only content.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kSetText;
  edit.target = 3;  // <sku>a</sku>
  edit.text = "z";
  ASSERT_TRUE(svc.UpdateDocument("d", edit).ok());

  AnswerCache::Counters counters = svc.answer_cache().counters();
  EXPECT_EQ(counters.invalidations, 1);  // only the content reader
  EXPECT_EQ(counters.retained, 2);
  EXPECT_EQ(counters.remapped, 0);  // ids stable: nothing to re-base

  // The content reader re-evaluates against the new text.
  auto reread = svc.Submit("d", "//sku[. = 'a']");
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread->value.nodes().empty());
  // The name-only and structural entries keep hitting.
  EXPECT_EQ(svc.answer_cache().counters().hits, 0);
  ASSERT_TRUE(svc.Submit("d", "//sku").ok());
  ASSERT_TRUE(svc.Submit("d", "count(//item)").ok());
  EXPECT_EQ(svc.answer_cache().counters().hits, 2);
}

TEST(AnswerCacheDeltaTest, BaselineModeFallsBackToWholeDocumentNames) {
  // delta_invalidation = false: the same subtree edit is reported as a
  // whole-document replacement, and the name-union kills both families —
  // the PR-4 baseline EXP-DELTA measures against.
  QueryService::Options options;
  options.delta_invalidation = false;
  QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("d", kCatalog).ok());
  ASSERT_TRUE(svc.Submit("d", "//item").ok());
  ASSERT_TRUE(
      svc.Submit("d", "/descendant::summary/child::total").ok());

  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = 4;
  edit.subtree = *xml::ParseDocument("<item><sku>c</sku></item>");
  ASSERT_TRUE(svc.UpdateDocument("d", edit).ok());

  AnswerCache::Counters counters = svc.answer_cache().counters();
  EXPECT_EQ(counters.invalidations, 2);
  EXPECT_EQ(counters.retained, 0);

  // The patch itself still applied, at full fidelity.
  auto total = svc.Submit("d", "/descendant::summary/child::total");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->value.nodes().size(), 1u);
}

// Teeth for the new precision: with delta invalidation deliberately
// skipped, a subtree edit that DOES intersect a cached footprint leaves the
// stale answer servable — the failure mode the edit-churn soak must catch.
TEST(AnswerCacheDeltaTest, FaultIgnoringDeltaServesStaleAnswers) {
  QueryService::Options options;
  options.answer_cache.fault_ignore_delta = true;
  QueryService svc(options);
  ASSERT_TRUE(svc.RegisterXml("d", kCatalog).ok());
  auto before = svc.Submit("d", "//item");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->value.nodes().size(), 2u);

  // Remove the second <item>: footprint {item} intersects the region, but
  // the fault retains (and does not remap) the entry.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kRemoveSubtree;
  edit.target = 4;
  ASSERT_TRUE(svc.UpdateDocument("d", edit).ok());

  auto after = svc.Submit("d", "//item");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->value.nodes().size(), 2u)  // the stale cached answer
      << "fault injection did not serve stale data; the teeth test is dead";
  EXPECT_EQ(svc.answer_cache().counters().hits, 1);

  // Whole-document replacement still invalidates: the fault breaks exactly
  // the delta machinery, nothing else.
  ASSERT_TRUE(svc.RegisterXml("d", kCatalog).ok());
  auto replaced = svc.Submit("d", "//item");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced->value.nodes().size(), 2u);
  EXPECT_EQ(svc.answer_cache().counters().hits, 1);  // that was a miss
}

// The delta-churn flagship property: under random subtree edits (mixed with
// whole-document replacements), a cached answer is never servable once
// stale — every Submit equals a fresh naive evaluation against the current
// document, including across id-shifting structural patches.
TEST(AnswerCacheDeltaTest, PropertyNoStaleAnswerUnderSubtreeChurn) {
  for (uint64_t seed : {7u, 31u, 83u}) {
    Rng rng(seed);
    QueryService svc;

    xml::RandomDocumentOptions doc_options;
    doc_options.tag_alphabet = 5;
    doc_options.tag_zipf_s = 0.7;
    doc_options.text_probability = 0.3;
    xml::RandomEditOptions edit_options;
    edit_options.subtree_options = doc_options;

    const int kDocs = 3;
    std::vector<xml::Document> current;
    for (int d = 0; d < kDocs; ++d) {
      doc_options.node_count = static_cast<int32_t>(rng.UniformInt(20, 60));
      current.push_back(xml::RandomDocument(&rng, doc_options));
      ASSERT_TRUE(svc.RegisterDocument("doc" + std::to_string(d),
                                       xml::Document(current.back()))
                      .ok());
    }

    xpath::RandomQueryOptions query_options;
    query_options.max_path_steps = 3;
    query_options.max_condition_depth = 2;
    query_options.tag_alphabet = 5;
    std::vector<std::string> pool;
    std::vector<xpath::Query> parsed;
    const xpath::Fragment fragments[] = {
        xpath::Fragment::kPF, xpath::Fragment::kCore, xpath::Fragment::kPWF,
        xpath::Fragment::kFullXPath};
    for (int q = 0; q < 16; ++q) {
      query_options.fragment = fragments[q % std::size(fragments)];
      std::string text;
      do {
        text = xpath::ToXPathString(xpath::RandomQuery(&rng, query_options));
      } while (!xpath::ParseQuery(text).ok());
      pool.push_back(text);
      parsed.push_back(xpath::MustParse(text));
    }

    eval::NaiveEvaluator naive;
    for (int step = 0; step < 400; ++step) {
      const int d = static_cast<int>(rng.UniformInt(0, kDocs - 1));
      const std::string key = "doc" + std::to_string(d);
      if (rng.Bernoulli(0.2)) {
        xml::Document& doc = current[static_cast<size_t>(d)];
        const xml::SubtreeEdit edit =
            xml::RandomSubtreeEdit(&rng, doc, edit_options);
        auto edited = xml::ApplyEdit(doc, edit);
        ASSERT_TRUE(edited.ok()) << "seed=" << seed << " step=" << step;
        doc = std::move(edited).value();
        ASSERT_TRUE(svc.UpdateDocument(key, edit).ok())
            << "seed=" << seed << " step=" << step;
        continue;
      }
      const size_t q = static_cast<size_t>(rng.UniformInt(0, 15));
      auto got = svc.Submit(key, pool[q]);
      ASSERT_TRUE(got.ok()) << pool[q];
      auto want = naive.EvaluateAtRoot(current[static_cast<size_t>(d)],
                                       parsed[q]);
      ASSERT_TRUE(want.ok()) << pool[q];
      ASSERT_TRUE(got->value.Equals(*want))
          << "stale or wrong answer: seed=" << seed << " step=" << step
          << " doc=" << d << " query='" << pool[q] << "' got "
          << got->value.DebugString() << " want " << want->DebugString();
    }
    AnswerCache::Counters counters = svc.answer_cache().counters();
    EXPECT_GT(counters.hits, 0) << "seed=" << seed;
    EXPECT_GT(counters.retained, 0) << "seed=" << seed;
    EXPECT_GT(counters.invalidations, 0) << "seed=" << seed;
  }
}

// ------------------------------------------------------- cache mechanics

plan::Footprint NamesFootprint(std::vector<std::string> names) {
  plan::Footprint fp;
  fp.names = std::move(names);
  return fp;
}

eval::Engine::Answer NodesAnswer(eval::NodeSet nodes) {
  eval::Engine::Answer answer;
  answer.value = eval::Value::Nodes(std::move(nodes));
  answer.evaluator = "test";
  return answer;
}

TEST(AnswerCacheTest, RevisionMismatchSelfCleansAndCountsAsMiss) {
  AnswerCache cache;
  cache.Insert("d", 1, "//a", NodesAnswer({1, 2}), NamesFootprint({"a"}));
  EXPECT_EQ(cache.counters().entries, 1);
  EXPECT_EQ(cache.Lookup("d", 2, "//a"), nullptr);  // stale straggler
  AnswerCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.entries, 0);  // dropped on the spot
}

// REVIEW: a reader holding a pre-update document snapshot races a fresh
// insert. Its old-revision Lookup must miss WITHOUT evicting the newer
// entry, and its old-revision Insert must not clobber it — otherwise one
// slow reader thrashes the cache under churn.
TEST(AnswerCacheTest, StragglingReaderNeverDisplacesANewerEntry) {
  AnswerCache cache;
  cache.Insert("d", 5, "//a", NodesAnswer({7}), NamesFootprint({"a"}));

  // Old-snapshot lookup: miss, entry stays.
  EXPECT_EQ(cache.Lookup("d", 4, "//a"), nullptr);
  EXPECT_EQ(cache.counters().entries, 1);

  // Old-snapshot insert: declined (keeps misses == inserts + declines),
  // the revision-5 answer is untouched.
  cache.Insert("d", 4, "//a", NodesAnswer({1, 2, 3}), NamesFootprint({"a"}));
  EXPECT_EQ(cache.counters().declined, 1);
  auto current = cache.Lookup("d", 5, "//a");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->answer.value.nodes(), (eval::NodeSet{7}));

  // A same-or-newer insert still replaces as before.
  cache.Insert("d", 6, "//a", NodesAnswer({9}), NamesFootprint({"a"}));
  EXPECT_EQ(cache.Lookup("d", 5, "//a"), nullptr);
  ASSERT_NE(cache.Lookup("d", 6, "//a"), nullptr);
  EXPECT_EQ(cache.counters().entries, 1);
}

TEST(AnswerCacheTest, OnlyMatchingOldRevisionIsRetainedAcrossUpdate) {
  AnswerCache cache;
  // A straggler from an outdated evaluation (revision 1) and a fresh entry
  // (revision 5): an update 5 -> 6 with disjoint names must carry only the
  // revision-5 entry forward.
  cache.Insert("d", 1, "//a", NodesAnswer({9}), NamesFootprint({"a"}));
  cache.Insert("d", 5, "//b", NodesAnswer({1}), NamesFootprint({"b"}));
  cache.OnDocumentUpdate("d", 5, 6, {"x", "y"});
  EXPECT_EQ(cache.counters().retained, 1);
  EXPECT_EQ(cache.counters().invalidations, 1);
  EXPECT_NE(cache.Lookup("d", 6, "//b"), nullptr);
  EXPECT_EQ(cache.Lookup("d", 6, "//a"), nullptr);
}

TEST(AnswerCacheTest, InstallAndRemovalFlushTheDocument) {
  AnswerCache cache;
  cache.Insert("d", 3, "//a", NodesAnswer({1}), NamesFootprint({"a"}));
  cache.Insert("e", 4, "//a", NodesAnswer({2}), NamesFootprint({"a"}));
  // Fresh install under "d" (old revision unknown): its entries die, "e"
  // is untouched.
  cache.OnDocumentUpdate("d", -1, 7, {});
  EXPECT_EQ(cache.counters().invalidations, 1);
  EXPECT_NE(cache.Lookup("e", 4, "//a"), nullptr);
  // Removal of "e".
  cache.OnDocumentUpdate("e", 4, -1, {});
  EXPECT_EQ(cache.counters().invalidations, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnswerCacheTest, LruAndByteBudgetEvictConsistently) {
  AnswerCache::Options options;
  options.capacity = 4;
  options.shards = 1;
  AnswerCache cache(options);
  for (int i = 0; i < 6; ++i) {
    cache.Insert("d", 1, "//t" + std::to_string(i), NodesAnswer({i}),
                 NamesFootprint({"t" + std::to_string(i)}));
  }
  AnswerCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.entries, 4);
  EXPECT_EQ(counters.evictions, 2);
  EXPECT_EQ(cache.Lookup("d", 1, "//t0"), nullptr);  // LRU victims
  EXPECT_EQ(cache.Lookup("d", 1, "//t1"), nullptr);
  EXPECT_NE(cache.Lookup("d", 1, "//t5"), nullptr);
  EXPECT_GT(cache.counters().bytes, 0);

  cache.Clear();
  counters = cache.counters();
  EXPECT_EQ(counters.entries, 0);
  EXPECT_EQ(counters.bytes, 0);
}

TEST(AnswerCacheTest, OversizedAnswersAreDeclinedNotCached) {
  AnswerCache::Options options;
  options.max_entry_bytes = 64;
  AnswerCache cache(options);
  eval::NodeSet big;
  for (int i = 0; i < 1000; ++i) big.push_back(i);
  cache.Insert("d", 1, "//a", NodesAnswer(std::move(big)),
               NamesFootprint({"a"}));
  EXPECT_EQ(cache.counters().declined, 1);
  EXPECT_EQ(cache.counters().entries, 0);
}

}  // namespace
}  // namespace gkx::mview
