// NAuxPDA evaluator tests: Table 1 row coverage (the stats counters show
// which consistency checks fire), the Definition 5.3 Singleton-Success API,
// fragment gating (Defs 5.1/6.1 restrictions rejected with pointed errors),
// and the bounded-negation extension of Theorem 5.9.

#include <gtest/gtest.h>

#include "eval/parallel_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/builder.hpp"
#include "xml/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

using xml::Document;
using xpath::MustParse;
using xpath::Query;

Document SmallDoc() {
  // r(0) -> a(1){b(2), b(3)}, a(4){c(5)}
  xml::TreeBuilder builder("r");
  auto a1 = builder.AddChild(builder.root(), "a");
  builder.AddChild(a1, "b");
  builder.AddChild(a1, "b");
  auto a2 = builder.AddChild(builder.root(), "a");
  builder.AddChild(a2, "c");
  return std::move(builder).Build();
}

TEST(PdaTest, NodeSetEvaluationViaDomLoop) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto nodes = pda.EvaluateNodeSet(doc, MustParse("/descendant::a/child::b"));
  ASSERT_TRUE(nodes.ok()) << nodes.status().ToString();
  EXPECT_EQ(*nodes, (NodeSet{2, 3}));
}

TEST(PdaTest, SingletonSuccessCheckCandidate) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  Query query = MustParse("/descendant::a[child::b]");
  const Context root = RootContext(doc);
  auto yes = pda.CheckCandidate(doc, query, root, 1);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = pda.CheckCandidate(doc, query, root, 4);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(PdaTest, Table1RowCountersFire) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto value = pda.EvaluateNodeSet(
      doc, MustParse("/descendant::a[child::b and position() + 1 >= last()]"
                     "/child::*"));
  ASSERT_TRUE(value.ok());
  const Table1Stats& stats = pda.last_stats();
  EXPECT_GT(stats.locstep, 0);
  EXPECT_GT(stats.step_predicate, 0);
  EXPECT_GT(stats.composition, 0);
  EXPECT_GT(stats.root_path, 0);
  EXPECT_GT(stats.and_op, 0);
  EXPECT_GT(stats.relop, 0);
  EXPECT_GT(stats.arithop, 0);
  EXPECT_GT(stats.position_fn, 0);
  EXPECT_GT(stats.last_fn, 0);
  EXPECT_GT(stats.Total(), 0);
}

TEST(PdaTest, PositionSizeComputedWithoutMaterialization) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  // child::b[2]: requires the position of the candidate in Y and |Y|.
  auto nodes = pda.EvaluateNodeSet(doc, MustParse("/descendant::a/child::b[2]"));
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*nodes, (NodeSet{3}));
  auto lasts =
      pda.EvaluateNodeSet(doc, MustParse("/child::a/child::*[last() = 2]"));
  ASSERT_TRUE(lasts.ok());
  EXPECT_EQ(*lasts, (NodeSet{2, 3}));
}

TEST(PdaTest, UnionBranches) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto nodes =
      pda.EvaluateNodeSet(doc, MustParse("/descendant::b | /descendant::c"));
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*nodes, (NodeSet{2, 3, 5}));
  EXPECT_GT(pda.last_stats().union_branch, 0);
}

TEST(PdaTest, BooleanAndScalarResults) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto boolean = pda.EvaluateAtRoot(doc, MustParse("child::a and 1 < 2"));
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean->boolean());
  auto number = pda.EvaluateAtRoot(doc, MustParse("3 * 4 + 1"));
  ASSERT_TRUE(number.ok());
  EXPECT_DOUBLE_EQ(number->number(), 13.0);
  auto text = pda.EvaluateAtRoot(doc, MustParse("concat('x', 'y')"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->string(), "xy");
}

TEST(PdaTest, NodeSetComparisonViaSingletonLoops) {
  xml::TreeBuilder builder("r");
  auto a = builder.AddChild(builder.root(), "a");
  builder.SetText(a, "5");
  auto b = builder.AddChild(builder.root(), "b");
  builder.SetText(b, "7");
  Document doc = std::move(builder).Build();
  PdaEvaluator pda;
  // Node-set vs number and node-set vs node-set (Theorem 6.2 extension).
  auto lt = pda.EvaluateAtRoot(doc, MustParse("child::a < 6"));
  ASSERT_TRUE(lt.ok()) << lt.status().ToString();
  EXPECT_TRUE(lt->boolean());
  auto cross = pda.EvaluateAtRoot(doc, MustParse("child::a < child::b"));
  ASSERT_TRUE(cross.ok());
  EXPECT_TRUE(cross->boolean());
  auto eq = pda.EvaluateAtRoot(doc, MustParse("child::a = child::b"));
  ASSERT_TRUE(eq.ok());
  EXPECT_FALSE(eq->boolean());
}

TEST(PdaTest, RejectsIteratedPredicates) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto value = pda.EvaluateAtRoot(doc, MustParse("child::a[child::b][child::b]"));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(value.status().message().find("Theorem 5.7"), std::string::npos);
}

TEST(PdaTest, RejectsForbiddenFunctions) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  for (const char* text :
       {"count(child::a) = 2", "sum(child::a) = 0", "string(child::a) = 'x'",
        "child::a[string-length() = 1]", "child::*[normalize-space() = '']"}) {
    auto value = pda.EvaluateAtRoot(doc, MustParse(text));
    ASSERT_FALSE(value.ok()) << text;
    EXPECT_EQ(value.status().code(), StatusCode::kUnsupported) << text;
    EXPECT_NE(value.status().message().find("Def 6.1"), std::string::npos) << text;
  }
}

TEST(PdaTest, RejectsBooleanRelop) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto value = pda.EvaluateAtRoot(doc, MustParse("boolean(child::a) = true()"));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnsupported);
}

TEST(PdaTest, NegationGatedByDepth) {
  Document doc = SmallDoc();
  PdaEvaluator no_neg;
  auto rejected = no_neg.EvaluateAtRoot(doc, MustParse("child::a[not(child::b)]"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(rejected.status().message().find("Theorem 5.9"), std::string::npos);

  PdaEvaluator with_neg{PdaEvaluator::Options{.max_not_depth = 1}};
  auto nodes =
      with_neg.EvaluateNodeSet(doc, MustParse("/descendant::a[not(child::b)]"));
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*nodes, (NodeSet{4}));
  EXPECT_GT(with_neg.last_stats().not_loop, 0);

  // Depth 2 still rejected at depth budget 1.
  auto too_deep = with_neg.EvaluateAtRoot(
      doc, MustParse("child::a[not(child::b[not(child::c)])]"));
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kUnsupported);
}

TEST(PdaTest, BareRootPath) {
  Document doc = SmallDoc();
  PdaEvaluator pda;
  auto nodes = pda.EvaluateNodeSet(doc, MustParse("/"));
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(*nodes, (NodeSet{0}));
}

TEST(ParallelPdaTest, MatchesSequentialAndScalesThreads) {
  Rng rng(314);
  xml::RandomDocumentOptions options;
  options.node_count = 120;
  Document doc = xml::RandomDocument(&rng, options);
  Query query = MustParse("/descendant::t1[child::t2 and position() >= 1]");
  PdaEvaluator sequential;
  auto expected = sequential.EvaluateNodeSet(doc, query);
  ASSERT_TRUE(expected.ok());
  for (int threads : {1, 2, 4, 8}) {
    ParallelPdaEvaluator parallel{ParallelPdaEvaluator::Options{.threads = threads}};
    auto actual = parallel.EvaluateNodeSet(doc, query);
    ASSERT_TRUE(actual.ok()) << threads;
    EXPECT_EQ(*actual, *expected) << threads << " threads";
  }
}

TEST(ParallelPdaTest, ScalarDelegation) {
  Document doc = SmallDoc();
  ParallelPdaEvaluator parallel;
  auto value = parallel.EvaluateAtRoot(doc, MustParse("1 + 1"));
  ASSERT_TRUE(value.ok());
  EXPECT_DOUBLE_EQ(value->number(), 2.0);
}

TEST(ParallelPdaTest, PropagatesUnsupported) {
  Document doc = SmallDoc();
  ParallelPdaEvaluator parallel;
  auto value = parallel.EvaluateAtRoot(doc, MustParse("/descendant::a[not(b)]"));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace gkx::eval
