// XPath semantics battery, run against every engine that supports each
// query: axis navigation, predicates (positional, iterated with re-ranking,
// reverse-axis proximity), conditions with exists-semantics, boolean
// connectives, arithmetic, functions, unions, and the worked examples from
// the paper's §2.2.

#include <gtest/gtest.h>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/parallel_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/builder.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

using xml::Document;
using xpath::MustParse;
using xpath::Query;

//        0:lib
//        ├── 1:shelf
//        │   ├── 2:book "10"
//        │   │   └── 3:title "A"
//        │   └── 4:book "20"
//        │       └── 5:title "B"
//        └── 6:shelf
//            └── 7:book "30"
Document LibraryDoc() {
  xml::TreeBuilder b("lib");
  auto shelf1 = b.AddChild(b.root(), "shelf");
  auto book1 = b.AddChild(shelf1, "book");
  b.SetText(book1, "10");
  b.SetText(b.AddChild(book1, "title"), "A");
  auto book2 = b.AddChild(shelf1, "book");
  b.SetText(book2, "20");
  b.SetText(b.AddChild(book2, "title"), "B");
  auto shelf2 = b.AddChild(b.root(), "shelf");
  auto book3 = b.AddChild(shelf2, "book");
  b.SetText(book3, "30");
  return std::move(b).Build();
}

// Evaluates with each engine; engines reporting kUnsupported are skipped,
// but at least `min_engines` must answer and all answers must agree.
NodeSet EvalAll(const Document& doc, std::string_view text, int min_engines = 2) {
  Query query = MustParse(text);
  NaiveEvaluator naive;
  CvtEvaluator cvt_lazy;
  CvtEvaluator cvt_eager{CvtEvaluator::Options{.eager = true}};
  CoreLinearEvaluator linear;
  PdaEvaluator pda{PdaEvaluator::Options{.max_not_depth = 4}};
  ParallelPdaEvaluator parallel{
      ParallelPdaEvaluator::Options{.threads = 3, .pda = {.max_not_depth = 4}}};
  Evaluator* engines[] = {&naive, &cvt_lazy, &cvt_eager, &linear, &pda, &parallel};

  bool have = false;
  NodeSet result;
  int answered = 0;
  for (Evaluator* engine : engines) {
    auto nodes = engine->EvaluateNodeSet(doc, query);
    if (!nodes.ok()) {
      EXPECT_EQ(nodes.status().code(), StatusCode::kUnsupported)
          << engine->name() << ": " << nodes.status().ToString();
      continue;
    }
    ++answered;
    if (!have) {
      result = *nodes;
      have = true;
    } else {
      EXPECT_EQ(*nodes, result) << "engine " << engine->name() << " disagrees on "
                                << text;
    }
  }
  EXPECT_GE(answered, min_engines) << text;
  EXPECT_TRUE(have) << text;
  return result;
}

TEST(SemanticsTest, ChildAndDescendant) {
  Document doc = LibraryDoc();
  // Note: in this data model (as in the paper) the document element IS the
  // root node, so "/" selects it and its children are reached directly.
  EXPECT_EQ(EvalAll(doc, "/child::shelf"), (NodeSet{1, 6}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book"), (NodeSet{2, 4, 7}));
  EXPECT_EQ(EvalAll(doc, "/descendant::title"), (NodeSet{3, 5}));
  EXPECT_EQ(EvalAll(doc, "/descendant::zzz"), (NodeSet{}));
}

TEST(SemanticsTest, RelativePathsStartAtContext) {
  Document doc = LibraryDoc();
  // Root context: relative and absolute coincide.
  EXPECT_EQ(EvalAll(doc, "child::shelf/child::book"), (NodeSet{2, 4, 7}));
}

TEST(SemanticsTest, ParentAndAncestors) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::title/parent::book"), (NodeSet{2, 4}));
  EXPECT_EQ(EvalAll(doc, "/descendant::title/ancestor::*"), (NodeSet{0, 1, 2, 4}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book/ancestor-or-self::book"),
            (NodeSet{2, 4, 7}));
}

TEST(SemanticsTest, SiblingsAndDocumentOrderAxes) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::book/following-sibling::book"),
            (NodeSet{4}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book/preceding-sibling::*"), (NodeSet{2}));
  EXPECT_EQ(EvalAll(doc, "/descendant::title/following::*"),
            (NodeSet{4, 5, 6, 7}));
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[preceding::book]"), (NodeSet{6}));
}

TEST(SemanticsTest, SelfAndNodeTests) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::*[self::book]"), (NodeSet{2, 4, 7}));
  EXPECT_EQ(EvalAll(doc, "/descendant-or-self::node()"),
            (NodeSet{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(EvalAll(doc, "/"), (NodeSet{0}));
}

TEST(SemanticsTest, ConditionsHaveExistsSemantics) {
  Document doc = LibraryDoc();
  // Footnote 3: a location path condition means "at least one match".
  EXPECT_EQ(EvalAll(doc, "/descendant::book[child::title]"), (NodeSet{2, 4}));
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[child::book/child::title]"),
            (NodeSet{1}));
}

TEST(SemanticsTest, BooleanConnectives) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::book[child::title or self::book]"),
            (NodeSet{2, 4, 7}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book[child::title and "
                         "following-sibling::book]"),
            (NodeSet{2}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book[not(child::title)]"), (NodeSet{7}));
}

TEST(SemanticsTest, PositionalPredicates) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf/child::book[1]"), (NodeSet{2, 7}));
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf/child::book[2]"), (NodeSet{4}));
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf/child::book[last()]"),
            (NodeSet{4, 7}));
  EXPECT_EQ(EvalAll(doc, "child::shelf[position() = last()]"), (NodeSet{6}));
  // The §2.2 example: position() + 1 = last() selects w(k) with k+1 = m.
  EXPECT_EQ(EvalAll(doc, "/child::shelf/child::book[position() + 1 = last()]"),
            (NodeSet{2}));
}

TEST(SemanticsTest, ReverseAxisProximityPositions) {
  Document doc = LibraryDoc();
  // ancestor::*[1] is the nearest ancestor (reverse document order).
  EXPECT_EQ(EvalAll(doc, "/descendant::title/ancestor::*[1]"), (NodeSet{2, 4}));
  EXPECT_EQ(EvalAll(doc, "/descendant::title/ancestor::*[3]"), (NodeSet{0}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book[2]/preceding-sibling::*[1]"),
            (NodeSet{2}));
  EXPECT_EQ(EvalAll(doc, "/descendant::*[preceding::*[1][self::title]]"),
            (NodeSet{4, 5, 6, 7}));
}

TEST(SemanticsTest, IteratedPredicatesReRank) {
  Document doc = LibraryDoc();
  // [position()=2][position()=1]: the survivor of the first filter is
  // re-ranked, so the second filter keeps it.
  EXPECT_EQ(EvalAll(doc, "/child::shelf[position() = 2][position() = 1]",
                    /*min_engines=*/2),
            (NodeSet{6}));
  // Folding would give the empty set — proves re-ranking happens.
  EXPECT_EQ(
      EvalAll(doc, "/child::shelf[position() = 2 and position() = 1]"),
      (NodeSet{}));
  // [child::title][2]: second among title-bearing books.
  EXPECT_EQ(EvalAll(doc, "/descendant::book[child::title][2]"), (NodeSet{4}));
}

TEST(SemanticsTest, Unions) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::title | /descendant::shelf"),
            (NodeSet{1, 3, 5, 6}));
  EXPECT_EQ(EvalAll(doc, "child::shelf | self::lib"), (NodeSet{0, 1, 6}));
}

TEST(SemanticsTest, ComparisonsOnNodeSets) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::book[child::title = 'B']"), (NodeSet{4}));
  // Existential numeric comparison on string-values. Note the books on
  // shelf 1 have string-values "10A"/"20B" (text plus title text), which are
  // NaN as numbers — only shelf 2's "30" compares.
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[child::book > 15]"), (NodeSet{6}));
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[child::book < 15]"), (NodeSet{}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book[child::title > ''] "),
            (NodeSet{}));  // order comparison on non-numeric strings is false
}

TEST(SemanticsTest, NumericFunctions) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[count(child::book) = 2]",
                    /*min_engines=*/2),
            (NodeSet{1}));
  // sum over shelf 1's books is NaN ("10A" + "20B"); only shelf 2 sums to 30.
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[sum(child::book) = 30]",
                    /*min_engines=*/2),
            (NodeSet{6}));
  EXPECT_EQ(EvalAll(doc, "/descendant::shelf[sum(child::book/child::title) = "
                         "0 - 1]",
                    /*min_engines=*/2),
            (NodeSet{}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book[floor(position() div 2) = 1]",
                    /*min_engines=*/2),
            (NodeSet{4, 7}));
}

TEST(SemanticsTest, StringFunctions) {
  Document doc = LibraryDoc();
  EXPECT_EQ(EvalAll(doc, "/descendant::*[starts-with(name(), 'boo')]",
                    /*min_engines=*/2),
            (NodeSet{2, 4, 7}));
  EXPECT_EQ(EvalAll(doc, "/descendant::*[string-length(string(self::*)) = 3]",
                    /*min_engines=*/2),
            (NodeSet{2, 4}));  // "10A", "20B"
  EXPECT_EQ(EvalAll(doc, "/descendant::title[concat('>', self::*) = '>A']",
                    /*min_engines=*/2),
            (NodeSet{3}));
  EXPECT_EQ(EvalAll(doc, "/descendant::book[contains(self::*, '0')]",
                    /*min_engines=*/2),
            (NodeSet{2, 4, 7}));
}

TEST(SemanticsTest, PaperIntroExample) {
  // /descendant::a/child::b[descendant::c and not(following-sibling::d)].
  auto doc = xml::ParseDocument(
      "<r><a><b><c/></b><b><x><c/></x></b><d/></a>"
      "<a><b/><b><c/></b><d/></a></r>");
  ASSERT_TRUE(doc.ok());
  // All b's have position before a d sibling => none pass not(); drop the d's
  // to make some pass.
  EXPECT_EQ(EvalAll(*doc, "/descendant::a/child::b[descendant::c]"),
            (NodeSet{2, 4, 10}));
  EXPECT_EQ(EvalAll(*doc, "/descendant::a/child::b[descendant::c and "
                          "not(following-sibling::d)]"),
            (NodeSet{}));
  EXPECT_EQ(EvalAll(*doc, "/descendant::a/child::b[descendant::c and "
                          "not(following-sibling::b)]"),
            (NodeSet{4, 10}));
}

TEST(SemanticsTest, ScalarResults) {
  Document doc = LibraryDoc();
  NaiveEvaluator naive;
  CvtEvaluator cvt;
  PdaEvaluator pda;
  for (Evaluator* engine : std::initializer_list<Evaluator*>{&naive, &cvt, &pda}) {
    auto value = engine->EvaluateAtRoot(doc, MustParse("1 + 2 * 3"));
    ASSERT_TRUE(value.ok()) << engine->name();
    EXPECT_DOUBLE_EQ(value->number(), 7.0) << engine->name();
  }
  auto boolean = naive.EvaluateAtRoot(doc, MustParse("boolean(/descendant::book)"));
  ASSERT_TRUE(boolean.ok());
  EXPECT_TRUE(boolean->boolean());
  auto str = naive.EvaluateAtRoot(doc, MustParse("string(/descendant::title)"));
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str->string(), "A");
}

TEST(SemanticsTest, NonRootContext) {
  Document doc = LibraryDoc();
  Query query = MustParse("child::book[last()]");
  NaiveEvaluator naive;
  CvtEvaluator cvt;
  for (Evaluator* engine : std::initializer_list<Evaluator*>{&naive, &cvt}) {
    auto value = engine->Evaluate(doc, query, Context{1, 1, 1});
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value->nodes(), (NodeSet{4})) << engine->name();
  }
}

TEST(SemanticsTest, EmptyDocumentRejected) {
  Document empty;
  NaiveEvaluator naive;
  auto value = naive.EvaluateAtRoot(empty, MustParse("/"));
  EXPECT_FALSE(value.ok());
}

TEST(SemanticsTest, NodeSetRequiredForCount) {
  Document doc = LibraryDoc();
  NaiveEvaluator naive;
  auto value = naive.EvaluateAtRoot(doc, MustParse("count(1 + 2)"));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument);
}

TEST(SemanticsTest, EvaluateNodeSetTypeChecks) {
  Document doc = LibraryDoc();
  NaiveEvaluator naive;
  auto nodes = naive.EvaluateNodeSet(doc, MustParse("1 + 1"));
  ASSERT_FALSE(nodes.ok());
  EXPECT_NE(nodes.status().message().find("node-set"), std::string::npos);
}

}  // namespace
}  // namespace gkx::eval
