// Unit tests for the base substrate: Status/Result, RNG determinism, and the
// XPath 1.0 number/string lexical helpers.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "base/status.hpp"
#include "base/string_util.hpp"

namespace gkx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad thing");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string_view> names = {
      StatusCodeName(StatusCode::kOk),
      StatusCodeName(StatusCode::kInvalidArgument),
      StatusCodeName(StatusCode::kUnsupported),
      StatusCodeName(StatusCode::kOutOfRange),
      StatusCodeName(StatusCode::kFailedPrecondition),
      StatusCodeName(StatusCode::kInternal),
  };
  EXPECT_EQ(names.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(UnsupportedError("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 5);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit over 1000 draws
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto pieces = Split("a b  c", ' ');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[2], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  \t x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("\r\n"), "");
}

TEST(StringUtilTest, NormalizeSpace) {
  EXPECT_EQ(NormalizeSpace("  a\t b  \n c "), "a b c");
  EXPECT_EQ(NormalizeSpace(""), "");
  EXPECT_EQ(NormalizeSpace("   "), "");
}

TEST(XPathNumberFormatTest, Integers) {
  EXPECT_EQ(FormatXPathNumber(0.0), "0");
  EXPECT_EQ(FormatXPathNumber(-0.0), "0");
  EXPECT_EQ(FormatXPathNumber(3.0), "3");
  EXPECT_EQ(FormatXPathNumber(-17.0), "-17");
  EXPECT_EQ(FormatXPathNumber(1e6), "1000000");
}

TEST(XPathNumberFormatTest, Specials) {
  EXPECT_EQ(FormatXPathNumber(std::nan("")), "NaN");
  EXPECT_EQ(FormatXPathNumber(INFINITY), "Infinity");
  EXPECT_EQ(FormatXPathNumber(-INFINITY), "-Infinity");
}

TEST(XPathNumberFormatTest, Fractions) {
  EXPECT_EQ(FormatXPathNumber(0.5), "0.5");
  EXPECT_EQ(FormatXPathNumber(-2.25), "-2.25");
}

TEST(XPathNumberParseTest, ValidForms) {
  EXPECT_DOUBLE_EQ(ParseXPathNumber("42"), 42.0);
  EXPECT_DOUBLE_EQ(ParseXPathNumber("  -3.5 "), -3.5);
  EXPECT_DOUBLE_EQ(ParseXPathNumber(".25"), 0.25);
  EXPECT_DOUBLE_EQ(ParseXPathNumber("7."), 7.0);
}

TEST(XPathNumberParseTest, InvalidFormsAreNaN) {
  EXPECT_TRUE(std::isnan(ParseXPathNumber("")));
  EXPECT_TRUE(std::isnan(ParseXPathNumber("abc")));
  EXPECT_TRUE(std::isnan(ParseXPathNumber("1e3")));  // no exponents in XPath
  EXPECT_TRUE(std::isnan(ParseXPathNumber("1 2")));
  EXPECT_TRUE(std::isnan(ParseXPathNumber("+5")));   // no leading plus
  EXPECT_TRUE(std::isnan(ParseXPathNumber("-")));
}

TEST(XPathNumberParseTest, RoundTripWithFormat) {
  for (double v : {0.0, 1.0, -4.0, 0.125, 123456.0, -0.75}) {
    EXPECT_DOUBLE_EQ(ParseXPathNumber(FormatXPathNumber(v)), v);
  }
}

TEST(StringUtilTest, EscapeXml) {
  EXPECT_EQ(EscapeXml("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&apos;c");
  EXPECT_EQ(EscapeXml("plain"), "plain");
}

TEST(StringUtilTest, IsValidXmlName) {
  EXPECT_TRUE(IsValidXmlName("foo"));
  EXPECT_TRUE(IsValidXmlName("_a-b.c1"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1abc"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

}  // namespace
}  // namespace gkx
