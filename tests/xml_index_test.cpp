// DocumentIndex: posting lists agree with brute-force scans over tags,
// extra labels (Remark 3.1), and attributes, on handcrafted and random
// documents.

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "xml/generator.hpp"
#include "xml/index.hpp"
#include "xml/parser.hpp"

namespace gkx::xml {
namespace {

Document Doc(std::string_view text) {
  auto doc = ParseDocument(text);
  GKX_CHECK(doc.ok());
  return std::move(doc).value();
}

TEST(DocumentIndexTest, PostingListsAreSortedAndComplete) {
  Document doc = Doc("<r><a x='1'><b/><b/></a><a/><c x='2' y='3'/></r>");
  DocumentIndex index(doc);

  EXPECT_EQ(index.NodesWithName("a"), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(index.NodesWithName("b"), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(index.NodesWithName("r"), (std::vector<NodeId>{0}));
  EXPECT_TRUE(index.NodesWithName("zzz").empty());
  EXPECT_EQ(index.NodesWithAttribute("x"), (std::vector<NodeId>{1, 5}));
  EXPECT_EQ(index.NodesWithAttribute("y"), (std::vector<NodeId>{5}));
  EXPECT_TRUE(index.NodesWithAttribute("absent").empty());
}

TEST(DocumentIndexTest, ExtraLabelsAreIndexed) {
  // The parser's labels-attribute convention (Remark 3.1 multi-labels).
  Document doc = Doc("<r><a labels='l0 l1'/><b labels='l1'/></r>");
  DocumentIndex index(doc);
  EXPECT_EQ(index.NodesWithName("l0"), (std::vector<NodeId>{1}));
  EXPECT_EQ(index.NodesWithName("l1"), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(index.NodesWithName("a"), (std::vector<NodeId>{1}));
}

TEST(DocumentIndexTest, CountWithNameInSubtree) {
  Document doc = Doc("<r><a><b/><b/></a><a><b/></a></r>");
  DocumentIndex index(doc);
  NameId b = doc.FindName("b");
  EXPECT_EQ(index.CountWithNameInSubtree(b, 0), 3);
  EXPECT_EQ(index.CountWithNameInSubtree(b, 1), 2);
  EXPECT_EQ(index.CountWithNameInSubtree(b, 4), 1);
  EXPECT_EQ(index.CountWithNameInSubtree(b, 2), 1);  // a b node itself
  EXPECT_EQ(index.CountWithNameInSubtree(doc.FindName("a"), 1), 1);
}

TEST(DocumentIndexTest, AppendNamedInRange) {
  Document doc = Doc("<r><a><b/><b/></a><a><b/></a></r>");
  DocumentIndex index(doc);
  NameId b = doc.FindName("b");
  std::vector<NodeId> out;
  index.AppendNamedInRange(b, 2, 5, &out);  // [2, 5): both b's of first a
  EXPECT_EQ(out, (std::vector<NodeId>{2, 3}));
  index.AppendNamedInRange(b, 0, doc.size(), &out);  // appends, keeps prior
  EXPECT_EQ(out, (std::vector<NodeId>{2, 3, 2, 3, 5}));
}

TEST(DocumentIndexTest, AgreesWithBruteForceOnRandomDocuments) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDocumentOptions options;
    options.node_count = 200;
    options.tag_alphabet = 3;
    options.max_extra_labels = 2;
    options.label_alphabet = 2;
    Document doc = RandomDocument(&rng, options);
    DocumentIndex index(doc);
    for (NameId name = 0; name < 8; ++name) {
      std::vector<NodeId> expected;
      for (NodeId v = 0; v < doc.size(); ++v) {
        if (doc.NodeHasName(v, name)) expected.push_back(v);
      }
      EXPECT_EQ(index.NodesWithName(name), expected) << "name " << name;
    }
  }
}

}  // namespace
}  // namespace gkx::xml
