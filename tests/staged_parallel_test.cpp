// Differential suite for intra-query parallel staged execution: the same
// staged plan run with workers ∈ {1, 2, 4, 8} — thresholds forced to 1 so
// even tiny documents exercise the partitioned sweeps and the concurrent
// per-origin cvt loop — must produce byte-identical node sets, and the
// ExecStats buckets must reconcile exactly against the plan's segment
// count. Covers hand-written hybrid plans, random documents across shapes
// (chains, bushy, mixed), random Core/PF queries run through the Engine
// facade, and the ThreadPool exception containment on the executor path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/thread_pool.hpp"
#include "eval/engine.hpp"
#include "plan/exec.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/printer.hpp"

namespace gkx::plan {
namespace {

using eval::Engine;
using eval::NodeSet;
using xml::Document;

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

/// Segment count of a staged plan — what the ExecStats buckets must sum to
/// after exactly one ExecuteStaged call.
int64_t SegmentCount(const Physical& plan) {
  int64_t total = 0;
  for (const BranchProgram& branch : plan.branches) {
    total += static_cast<int64_t>(branch.segments.size());
  }
  return total;
}

int64_t BucketSum(const ExecStats& stats) {
  return stats.parallel_segments.load(std::memory_order_relaxed) +
         stats.sequential_segments.load(std::memory_order_relaxed) +
         stats.skipped_segments.load(std::memory_order_relaxed);
}

/// Runs `plan` sequentially and at every worker count with forced
/// thresholds, asserting byte-identical node sets and exact stats
/// reconciliation at each setting.
void ExpectParallelAgreement(const Document& doc, const Physical& plan,
                             const std::string& label) {
  ASSERT_TRUE(plan.staged) << label;
  const eval::Context ctx = eval::RootContext(doc);

  auto sequential = ExecuteStaged(doc, plan, ctx);
  ASSERT_TRUE(sequential.ok()) << label << ": " << sequential.status().ToString();
  const NodeSet& expected = sequential->nodes();

  for (int workers : kWorkerCounts) {
    ExecOptions opts;
    opts.pool = &ThreadPool::Shared();
    opts.workers = workers;
    opts.min_parallel_nodes = 1;   // force partitioned sweeps at any |D|
    opts.min_parallel_origins = 1; // force the concurrent cvt origin loop
    ExecStats stats;
    ExecTrace trace;
    auto parallel = ExecuteStaged(doc, plan, ctx, &trace, opts, &stats);
    ASSERT_TRUE(parallel.ok())
        << label << " workers=" << workers << ": "
        << parallel.status().ToString();
    EXPECT_EQ(parallel->nodes(), expected)
        << label << " workers=" << workers
        << ": parallel answer diverged from sequential";
    // Every dispatched segment lands in exactly one bucket, and the trace
    // reports every segment (skipped ones at 0.0s).
    EXPECT_EQ(BucketSum(stats), SegmentCount(plan))
        << label << " workers=" << workers;
    EXPECT_EQ(static_cast<int64_t>(trace.size()), SegmentCount(plan))
        << label << " workers=" << workers;
    if (workers <= 1) {
      EXPECT_EQ(stats.parallel_segments.load(std::memory_order_relaxed), 0)
          << label << ": sequential run recorded parallel segments";
    }
  }
}

Document DeepDocument(uint64_t seed, int32_t nodes, double chain_bias) {
  Rng rng(seed);
  xml::RandomDocumentOptions options;
  options.node_count = nodes;
  options.tag_alphabet = 4;
  options.chain_bias = chain_bias;
  return xml::RandomDocument(&rng, options);
}

// The hybrid corpus: PF-routable spines with one non-Core predicate, the
// exact shape BENCH_fragments measures. Each compiles to a staged plan with
// bitset segments flanking a cvt segment.
const char* kHybridQueries[] = {
    "/descendant::t0/descendant::t1/descendant::t2/child::t3"
    "[position() = 1]",
    "/descendant::t0/descendant::t1/child::t2[count(child::t3) = 1]",
    "/descendant::t0/descendant::t1/child::t2[position() = last()]"
    "/child::t3",
    "/descendant::t0[child::t1]/descendant::t2[position() = 2]"
    "/descendant::t3",
};

TEST(StagedParallelTest, HybridPlansByteIdenticalAcrossWorkerCounts) {
  const Document doc = DeepDocument(4242, 2000, 0.85);
  for (const char* text : kHybridQueries) {
    auto plan = Engine::Compile(text);
    ASSERT_TRUE(plan.ok()) << text;
    if (!plan->staged) continue;  // cost model may demote tiny sandwiches
    ExpectParallelAgreement(doc, *plan, text);
  }
}

TEST(StagedParallelTest, DocumentShapeSweep) {
  // Chains stress descendant/ancestor block scans (deep carry chains);
  // bushy documents stress child/parent membership tests; the small sizes
  // stress partition edge cases (fewer words than chunks, empty tails).
  const struct {
    int32_t nodes;
    double chain_bias;
  } shapes[] = {{1, 0.0},   {2, 1.0},   {63, 0.5},  {64, 0.9},
                {65, 0.1},  {129, 0.95}, {512, 0.0}, {1500, 0.7}};
  for (const auto& shape : shapes) {
    const Document doc = DeepDocument(7 + shape.nodes, shape.nodes,
                                      shape.chain_bias);
    for (const char* text : kHybridQueries) {
      auto plan = Engine::Compile(text);
      ASSERT_TRUE(plan.ok()) << text;
      if (!plan->staged) continue;
      ExpectParallelAgreement(
          doc, *plan,
          std::string(text) + " @nodes=" + std::to_string(shape.nodes));
    }
  }
}

TEST(StagedParallelTest, RandomCoreQueriesThroughEngineFacade) {
  // Engine-level coverage: set_exec_options must flow into both staged
  // execution and the uniform bitset dispatches without changing answers.
  const Document doc = DeepDocument(99, 800, 0.6);
  Rng rng(20260807);
  xpath::RandomQueryOptions qopts;
  qopts.fragment = xpath::Fragment::kCore;
  qopts.max_condition_depth = 2;

  for (int trial = 0; trial < 40; ++trial) {
    xpath::Query query = xpath::RandomQuery(&rng, qopts);
    const std::string text = xpath::ToXPathString(query);
    Engine::Plan plan = Engine::CompileParsed(std::move(query));

    Engine sequential_engine;
    auto expected = sequential_engine.RunPlan(doc, plan);
    ASSERT_TRUE(expected.ok()) << text << ": " << expected.status().ToString();

    for (int workers : kWorkerCounts) {
      if (workers == 1) continue;
      Engine engine;
      ExecOptions opts;
      opts.pool = &ThreadPool::Shared();
      opts.workers = workers;
      opts.min_parallel_nodes = 1;
      opts.min_parallel_origins = 1;
      engine.set_exec_options(opts);
      ExecStats stats;
      engine.set_exec_stats(&stats);
      auto actual = engine.RunPlan(doc, plan);
      ASSERT_TRUE(actual.ok()) << text << " workers=" << workers << ": "
                               << actual.status().ToString();
      ASSERT_EQ(actual->value.type(), expected->value.type()) << text;
      if (expected->value.is_node_set()) {
        EXPECT_EQ(actual->value.nodes(), expected->value.nodes())
            << text << " workers=" << workers;
      }
      if (plan.staged) {
        EXPECT_EQ(BucketSum(stats), SegmentCount(plan))
            << text << " workers=" << workers;
      }
    }
  }
}

TEST(StagedParallelTest, MixedFragmentRandomQueriesStayIdentical) {
  // Arithmetic-fragment queries route (partly or wholly) through cvt; the
  // staged ones exercise the concurrent memo under forced chunking.
  const Document doc = DeepDocument(123, 600, 0.75);
  Rng rng(5150);
  xpath::RandomQueryOptions qopts;
  qopts.fragment = xpath::Fragment::kFullXPath;
  qopts.max_condition_depth = 2;

  int staged_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    xpath::Query query = xpath::RandomQuery(&rng, qopts);
    const std::string text = xpath::ToXPathString(query);
    Engine::Plan plan = Engine::CompileParsed(std::move(query));
    if (!plan.staged) continue;
    ++staged_seen;
    ExpectParallelAgreement(doc, plan, text);
  }
  // The generator mix must actually produce staged plans, or this test
  // silently pins nothing.
  EXPECT_GT(staged_seen, 0);
}

TEST(StagedParallelTest, WorkersWithoutPoolFallBackToSharedPool) {
  // ExecOptions{workers > 1, pool == nullptr} must resolve to the shared
  // pool rather than crash or silently sequentialize incorrectly.
  const Document doc = DeepDocument(31337, 1024, 0.8);
  auto plan = Engine::Compile(kHybridQueries[0]);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->staged);
  const eval::Context ctx = eval::RootContext(doc);

  auto sequential = ExecuteStaged(doc, *plan, ctx);
  ASSERT_TRUE(sequential.ok());

  ExecOptions opts;  // pool deliberately left null
  opts.workers = 4;
  opts.min_parallel_nodes = 1;
  opts.min_parallel_origins = 1;
  auto parallel = ExecuteStaged(doc, *plan, ctx, nullptr, opts, nullptr);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->nodes(), sequential->nodes());
}

TEST(StagedParallelTest, DefaultThresholdsKeepSmallDocumentsSequential) {
  // Cost-model guardrail: with default thresholds a sub-threshold document
  // must not fork — every non-skipped segment lands in `sequential`.
  const Document doc = DeepDocument(77, 256, 0.5);
  ASSERT_LT(doc.size(), kDefaultCostModel.min_parallel_nodes);
  auto plan = Engine::Compile(kHybridQueries[0]);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->staged);

  ExecOptions opts;
  opts.pool = &ThreadPool::Shared();
  opts.workers = 8;  // parallelism requested, thresholds say no
  // Keep the default node threshold (gates the bitset sweeps) and push the
  // origin threshold out of reach so the cvt loop can't fork either.
  opts.min_parallel_origins = 1 << 20;
  ExecStats stats;
  auto result =
      ExecuteStaged(doc, *plan, eval::RootContext(doc), nullptr, opts, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.parallel_segments.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(BucketSum(stats), SegmentCount(*plan));
}

}  // namespace
}  // namespace gkx::plan
