// Engine facade tests: fragment-driven dispatch (Core queries to the linear
// engine, everything else to context-value tables), parse error propagation,
// and end-to-end answers.

#include <gtest/gtest.h>

#include "eval/engine.hpp"
#include "xml/parser.hpp"

namespace gkx::eval {
namespace {

xml::Document Doc() {
  auto doc = xml::ParseDocument("<r><a><b/><b/></a><a/><c/></r>");
  GKX_CHECK(doc.ok());
  return std::move(doc).value();
}

TEST(EngineTest, DispatchesCoreToLinear) {
  xml::Document doc = Doc();
  Engine engine;
  auto answer = engine.Run(doc, "/descendant::a[child::b]");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->evaluator, "core-linear");
  EXPECT_TRUE(answer->fragment.in_core);
  EXPECT_EQ(answer->value.nodes(), (NodeSet{1}));
}

TEST(EngineTest, DispatchesPositionalToCvt) {
  xml::Document doc = Doc();
  Engine engine;
  auto answer = engine.Run(doc, "/descendant::a[position() = 2]");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->evaluator, "cvt-lazy");
  EXPECT_EQ(answer->fragment.smallest, xpath::Fragment::kPWF);
  EXPECT_EQ(answer->value.nodes(), (NodeSet{4}));
}

TEST(EngineTest, ScalarAnswer) {
  xml::Document doc = Doc();
  Engine engine;
  auto answer = engine.Run(doc, "count(/descendant::b) * 10");
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(answer->value.number(), 20.0);
  EXPECT_EQ(answer->fragment.smallest, xpath::Fragment::kFullXPath);
}

TEST(EngineTest, ParseErrorsPropagate) {
  xml::Document doc = Doc();
  Engine engine;
  auto answer = engine.Run(doc, "child::");
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, CustomContext) {
  xml::Document doc = Doc();
  Engine engine;
  xpath::Query query = xpath::MustParse("child::b");
  auto answer = engine.Run(doc, query, Context{1, 1, 1});
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->value.nodes(), (NodeSet{2, 3}));
}

TEST(EngineTest, FragmentReportComplexityVerdicts) {
  xml::Document doc = Doc();
  Engine engine;
  auto pf = engine.Run(doc, "child::a/child::b");
  ASSERT_TRUE(pf.ok());
  EXPECT_EQ(pf->fragment.smallest, xpath::Fragment::kPF);
  EXPECT_NE(xpath::FragmentComplexity(pf->fragment.smallest).find("NL"),
            std::string_view::npos);
}

TEST(EngineTest, DispatchesPfToFrontier) {
  xml::Document doc = Doc();
  Engine engine;
  auto answer = engine.Run(doc, "/descendant::a/child::b");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->evaluator, "pf-frontier");
  EXPECT_EQ(answer->value.nodes(), (NodeSet{2, 3}));
}

TEST(EngineTest, HybridPlansReportTheRouteList) {
  // A PF-routable spine with one non-Core predicate stages: the evaluator
  // string is the per-segment route list, not a single engine name.
  xml::Document doc = Doc();
  Engine engine;
  auto answer = engine.Run(doc, "/descendant::a/child::b[position() = 2]");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->evaluator, "pf-frontier+cvt");
  EXPECT_EQ(answer->value.nodes(), (NodeSet{3}));

  auto reversed = engine.Run(doc, "/descendant::b[position() = 2]/parent::a");
  ASSERT_TRUE(reversed.ok());
  EXPECT_EQ(reversed->evaluator, "cvt+pf-frontier");
  EXPECT_EQ(reversed->value.nodes(), (NodeSet{1}));
}

TEST(EngineTest, CompiledHybridPlanExposesSegments) {
  auto plan = Engine::Compile("/descendant::a/child::b[position() = 2]");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->staged);
  ASSERT_EQ(plan->branches.size(), 1u);
  ASSERT_EQ(plan->branches[0].segments.size(), 2u);
  EXPECT_EQ(plan->branches[0].segments[0].route, Engine::Choice::kPfFrontier);
  EXPECT_EQ(plan->branches[0].segments[1].route, Engine::Choice::kCvt);
  // The whole-query fallback route is what classic dispatch would pick.
  EXPECT_EQ(plan->choice, Engine::Choice::kCvt);
  EXPECT_EQ(plan->evaluator_name(), "pf-frontier+cvt");
}

}  // namespace
}  // namespace gkx::eval
