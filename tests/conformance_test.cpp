// Conformance mini-suite: (document, query, expected) triples transcribed
// from the XPath 1.0 recommendation's prose and examples, adapted to this
// data model (element-only dom, root = document element). Each case runs
// through the Engine facade (classifier + dispatched evaluator) and through
// the naive spec kernel.

#include <gtest/gtest.h>

#include "eval/engine.hpp"
#include "eval/recursive_base.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

// <doc>              0
//   <chapter>        1   (title "Introduction")
//     <title>        2
//     <section>      3   (title "A")
//       <title>      4
//     </section>
//     <section>      5   (title "B")
//       <title>      6
//     </section>
//   </chapter>
//   <chapter>        7   (title "Results")
//     <title>        8
//     <appendix/>    9
//   </chapter>
// </doc>
xml::Document Doc() {
  auto doc = xml::ParseDocument(
      "<doc>"
      "<chapter><title>Introduction</title>"
      "<section><title>A</title></section>"
      "<section><title>B</title></section></chapter>"
      "<chapter><title>Results</title><appendix/></chapter>"
      "</doc>");
  GKX_CHECK(doc.ok());
  return std::move(doc).value();
}

struct Case {
  const char* query;
  NodeSet expected;
};

class ConformanceTest : public ::testing::TestWithParam<Case> {};

TEST_P(ConformanceTest, NodeSetCases) {
  xml::Document doc = Doc();
  const Case& c = GetParam();
  Engine engine;
  auto answer = engine.Run(doc, c.query);
  ASSERT_TRUE(answer.ok()) << c.query << ": " << answer.status().ToString();
  EXPECT_EQ(answer->value.nodes(), c.expected) << c.query;
  NaiveEvaluator naive;
  auto reference = naive.EvaluateAtRoot(doc, xpath::MustParse(c.query));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->nodes(), c.expected) << c.query << " (naive)";
}

INSTANTIATE_TEST_SUITE_P(
    Rec, ConformanceTest,
    ::testing::Values(
        // "child::para selects the para element children" — adapted tags.
        Case{"child::chapter", {1, 7}},
        // "child::* selects all element children".
        Case{"child::*", {1, 7}},
        // "child::*/child::title".
        Case{"child::*/child::title", {2, 8}},
        // "descendant::para selects the para descendants".
        Case{"descendant::title", {2, 4, 6, 8}},
        // "ancestor::div selects all div ancestors" (from a title).
        Case{"descendant::section/ancestor::chapter", {1}},
        // "descendant-or-self::para".
        Case{"descendant-or-self::doc", {0}},
        // "self::para selects the context node iff it is a para".
        Case{"self::doc", {0}},
        Case{"self::chapter", {}},
        // "child::chapter/descendant::para" composition.
        Case{"child::chapter/descendant::title", {2, 4, 6, 8}},
        // "child::para[position()=1]".
        Case{"child::chapter[position() = 1]", {1}},
        // "child::para[position()=last()]".
        Case{"child::chapter[position() = last()]", {7}},
        // "child::para[position()=last()-1]".
        Case{"child::chapter[position() = last() - 1]", {1}},
        // "child::para[position()>1]".
        Case{"child::chapter[position() > 1]", {7}},
        // "/descendant::figure[position()=42]" shape.
        Case{"/descendant::title[position() = 3]", {6}},
        // "following-sibling::chapter[position()=1]".
        Case{"child::chapter[1]/following-sibling::chapter[position() = 1]", {7}},
        // "preceding-sibling::chapter[position()=1]".
        Case{"child::chapter[2]/preceding-sibling::chapter[position() = 1]", {1}},
        // "child::chapter[child::title='Introduction']".
        Case{"child::chapter[child::title = 'Introduction']", {1}},
        // "child::chapter[child::title]".
        Case{"child::chapter[child::title]", {1, 7}},
        // "child::*[self::chapter or self::appendix]".
        Case{"descendant::*[self::section or self::appendix]", {3, 5, 9}},
        // "child::*[self::chapter or self::appendix][position()=last()]".
        Case{"descendant::*[self::section or self::appendix]"
             "[position() = last()]",
             {9}},
        // '//' abbreviation.
        Case{"//section", {3, 5}},
        Case{"//section/title", {4, 6}},
        // '.' and '..'.
        Case{".", {0}},
        Case{"descendant::appendix/..", {7}},
        Case{"descendant::appendix/../title", {8}},
        // "para[last()]" sugar.
        Case{"child::chapter[last()]", {7}},
        // union of chapters and sections.
        Case{"//chapter | //section", {1, 3, 5, 7}},
        // not() + exists.
        Case{"child::chapter[not(descendant::section)]", {7}},
        // node() test.
        Case{"child::chapter/child::node()", {2, 3, 5, 8, 9}}));

TEST(ConformanceScalarTest, FunctionExamples) {
  xml::Document doc = Doc();
  Engine engine;

  struct ScalarCase {
    const char* query;
    double expected;
  };
  const ScalarCase numbers[] = {
      {"count(//title)", 4},
      {"count(//chapter)", 2},
      {"string-length(string(/descendant::title[1]))", 12},  // "Introduction"
      {"floor(3.7)", 3},
      {"ceiling(3.2)", 4},
      {"round(2.5)", 3},
      {"round(-2.5)", -2},
      {"7 mod 3", 1},
      {"8 div 2", 4},
  };
  for (const ScalarCase& c : numbers) {
    auto answer = engine.Run(doc, c.query);
    ASSERT_TRUE(answer.ok()) << c.query;
    EXPECT_DOUBLE_EQ(answer->value.ToNumber(doc), c.expected) << c.query;
  }

  struct StringCase {
    const char* query;
    const char* expected;
  };
  const StringCase strings[] = {
      {"string(child::chapter[2]/child::title)", "Results"},
      {"concat('a', 'b', 'c')", "abc"},
      {"substring-before('1999/04/01', '/')", "1999"},
      {"substring-after('1999/04/01', '/')", "04/01"},
      {"substring('12345', 1.5, 2.6)", "234"},
      {"normalize-space('  a  b  ')", "a b"},
      {"translate('bar', 'abc', 'ABC')", "BAr"},
      {"local-name(//appendix)", "appendix"},
  };
  for (const StringCase& c : strings) {
    auto answer = engine.Run(doc, c.query);
    ASSERT_TRUE(answer.ok()) << c.query;
    EXPECT_EQ(answer->value.ToString(doc), c.expected) << c.query;
  }

  struct BoolCase {
    const char* query;
    bool expected;
  };
  const BoolCase booleans[] = {
      {"boolean(//section)", true},
      {"boolean(//missing)", false},
      {"contains('hello', 'ell')", true},
      {"starts-with('hello', 'he')", true},
      {"not(true())", false},
      {"1 < 2 and 2 < 3", true},
      {"'7' = 7", true},          // string/number comparison via numbers
      {"//section = //title", true},  // shared string-value "A" exists
      {"//appendix = //title", false},  // "" matches no title text
  };
  for (const BoolCase& c : booleans) {
    auto answer = engine.Run(doc, c.query);
    ASSERT_TRUE(answer.ok()) << c.query;
    EXPECT_EQ(answer->value.ToBoolean(), c.expected) << c.query;
  }
}

}  // namespace
}  // namespace gkx::eval
