// ThreadPool: task execution, ParallelFor coverage, nesting (the service
// fans batches out while the parallel PDA engine fans candidates out on the
// same pool — progress must be guaranteed even at width 1).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "base/thread_pool.hpp"

namespace gkx {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(257);
  pool.ParallelFor(257, [&seen](int i) { seen[static_cast<size_t>(i)]++; });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, ParallelForMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.ParallelFor(64, [&sum](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Width 1 is the adversarial case: the outer ParallelFor runs on the only
  // pool thread's queue, and inner ParallelFors must make progress through
  // caller helping alone.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&pool, &leaves](int) {
    pool.ParallelFor(4, [&leaves](int) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPoolTest, ZeroAndOneTaskEdgeCases) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SharedPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::Shared().ParallelFor(8, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1);
}

}  // namespace
}  // namespace gkx
