// ThreadPool: task execution, ParallelFor coverage, nesting (the service
// fans batches out while the parallel PDA engine fans candidates out on the
// same pool — progress must be guaranteed even at width 1), the
// group-isolation tail-latency regression, and the exception contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/thread_pool.hpp"

namespace gkx {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> seen(257);
  pool.ParallelFor(257, [&seen](int i) { seen[static_cast<size_t>(i)]++; });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, ParallelForMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.ParallelFor(64, [&sum](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Width 1 is the adversarial case: the outer ParallelFor runs on the only
  // pool thread's queue, and inner ParallelFors must make progress through
  // caller helping alone.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&pool, &leaves](int) {
    pool.ParallelFor(4, [&leaves](int) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPoolTest, ZeroAndOneTaskEdgeCases) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

// Regression: the helping loop used to pop *any* queued task — with a slow
// unrelated task at the queue front, a ParallelFor caller would steal it
// and not return until it finished, long after its own group was done.
// Group-isolated helping bounds ParallelFor return latency by the group's
// own work.
TEST(ThreadPoolTest, ParallelForIsNotDelayedByUnrelatedSlowTask) {
  ThreadPool pool(1);
  constexpr auto kSlow = std::chrono::milliseconds(400);
  std::atomic<bool> slow_done{false};
  // The slow task sits at the queue front; the single worker (or, in the
  // old code, the helping caller) picks it up first.
  pool.Submit([&slow_done, kSlow] {
    std::this_thread::sleep_for(kSlow);
    slow_done.store(true);
  });
  std::atomic<int> ran{0};
  const auto t0 = std::chrono::steady_clock::now();
  pool.ParallelFor(8, [&ran](int) { ran.fetch_add(1); });
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(ran.load(), 8);
  // The caller must complete its own 8 trivial indices without waiting out
  // the unrelated 400ms task. Generous margin for sanitizer/CI jitter.
  EXPECT_LT(elapsed, kSlow / 2);
  // Drain the slow task so its captures outlive it.
  while (!slow_done.load()) std::this_thread::yield();
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(16,
                       [&ran](int i) {
                         ran.fetch_add(1);
                         if (i == 3) throw std::runtime_error("task failure");
                       }),
      std::runtime_error);
  // Every index was claimed (run or abandoned) before the rethrow — the
  // group quiesced, so the lambda's captures are safe to destroy.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 16);
  // The pool survives and stays usable.
  std::atomic<int> after{0};
  pool.ParallelFor(4, [&after](int) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPoolTest, ThrowingDetachedTaskIsContainedAndCounted) {
  ThreadPool pool(1);
  const int64_t before = pool.detached_exceptions();
  pool.Submit([] { throw std::runtime_error("detached failure"); });
  // The worker must survive; a follow-up ParallelFor proves liveness.
  std::atomic<int> ran{0};
  pool.ParallelFor(4, [&ran](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
  while (pool.detached_exceptions() == before) std::this_thread::yield();
  EXPECT_EQ(pool.detached_exceptions(), before + 1);
}

TEST(ThreadPoolTest, NestedParallelForUnderConcurrentGroups) {
  // Two groups interleave on a width-2 pool, each nesting further
  // ParallelFors; every leaf must run exactly once per group.
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.ParallelFor(4, [&pool, &leaves](int) {
    pool.ParallelFor(8, [&leaves](int) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 32);
}

TEST(ThreadPoolTest, SharedPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::Shared().ParallelFor(8, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1);
}

}  // namespace
}  // namespace gkx
