// Scale stress: the polynomial engines on documents one to two orders of
// magnitude beyond the property-test sizes — agreement between core-linear,
// CVT and the PF frontier engine on thousands-of-nodes documents, and the
// reductions at their largest test sizes. (The naive engine is excluded by
// design: this is where it stops being runnable.)

#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "graphs/digraph.hpp"
#include "reductions/circuit_to_core_xpath.hpp"
#include "reductions/reach_to_pf.hpp"
#include "xml/auction.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::eval {
namespace {

TEST(ScaleTest, LinearVsCvtOnLargeRandomDocuments) {
  Rng rng(1234);
  xml::RandomDocumentOptions options;
  options.node_count = 5000;
  xml::Document doc = xml::RandomDocument(&rng, options);

  xpath::RandomQueryOptions query_options;
  query_options.fragment = xpath::Fragment::kCore;
  query_options.max_path_steps = 4;
  CoreLinearEvaluator linear;
  CvtEvaluator cvt;
  for (int i = 0; i < 15; ++i) {
    xpath::Query query = xpath::RandomQuery(&rng, query_options);
    auto a = linear.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(a.ok()) << ToXPathString(query);
    auto b = cvt.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->Equals(*b)) << ToXPathString(query);
  }
}

TEST(ScaleTest, PfFrontierOnLargeDocuments) {
  Rng rng(4321);
  xml::RandomDocumentOptions options;
  options.node_count = 8000;
  options.chain_bias = 0.4;
  xml::Document doc = xml::RandomDocument(&rng, options);
  xpath::RandomQueryOptions query_options;
  query_options.fragment = xpath::Fragment::kPF;
  query_options.max_path_steps = 6;
  PfEvaluator pf;
  CoreLinearEvaluator linear;
  for (int i = 0; i < 20; ++i) {
    xpath::Query query = xpath::RandomQuery(&rng, query_options);
    auto a = pf.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(a.ok());
    auto b = linear.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->Equals(*b)) << ToXPathString(query);
  }
}

TEST(ScaleTest, LargeCircuitReduction) {
  Rng rng(99);
  circuits::RandomMonotoneOptions options;
  options.num_inputs = 8;
  options.num_gates = 512;
  circuits::Circuit circuit = circuits::RandomMonotone(&rng, options);
  std::vector<bool> assignment;
  for (int i = 0; i < 8; ++i) assignment.push_back(rng.Bernoulli(0.5));
  reductions::CircuitReduction instance =
      reductions::CircuitToCoreXPath(circuit, assignment);
  EXPECT_GT(instance.query.size(), 5000);
  CoreLinearEvaluator linear;
  auto nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
  ASSERT_TRUE(nodes.ok());
  EXPECT_EQ(!nodes->empty(), circuit.Evaluate(assignment));
}

TEST(ScaleTest, LargeReachabilityReduction) {
  Rng rng(77);
  graphs::Digraph graph = graphs::RandomDigraph(&rng, 40, 0.08);
  graphs::Digraph with_loops = graph;
  with_loops.AddSelfLoops();
  xml::Document doc = reductions::ReachabilityDocument(with_loops);
  EXPECT_GT(doc.size(), 4000);
  PfEvaluator pf;
  for (int trial = 0; trial < 6; ++trial) {
    const int32_t src = static_cast<int32_t>(rng.UniformInt(0, 39));
    const int32_t dst = static_cast<int32_t>(rng.UniformInt(0, 39));
    xpath::Query query = reductions::ReachabilityQuery(40, src, dst);
    auto nodes = pf.EvaluateNodeSet(doc, query);
    ASSERT_TRUE(nodes.ok());
    EXPECT_EQ(!nodes->empty(), graphs::IsReachable(graph, src, dst))
        << src << "->" << dst;
  }
}

TEST(ScaleTest, LargeAuctionSite) {
  Rng rng(2024);
  xml::AuctionOptions options;
  options.items = 400;
  options.people = 300;
  options.open_auctions = 250;
  xml::Document site = xml::AuctionDocument(&rng, options);
  EXPECT_GT(site.size(), 4000);
  CvtEvaluator cvt;
  CoreLinearEvaluator linear;
  for (const char* text : {
           // "has bids but fewer than four" in pure Core XPath (numeric
           // predicates like [4] are outside Def 2.5).
           "/descendant::open_auction[child::bid][not(child::bid/"
           "following-sibling::bid/following-sibling::bid/"
           "following-sibling::bid)]",
           "/descendant::item[child::incategory]/child::price",
           "/descendant::person[child::city]",
       }) {
    xpath::Query query = xpath::MustParse(text);
    auto a = cvt.EvaluateAtRoot(site, query);
    ASSERT_TRUE(a.ok()) << text;
    auto b = linear.EvaluateAtRoot(site, query);
    ASSERT_TRUE(b.ok()) << text;
    EXPECT_TRUE(a->Equals(*b)) << text;
  }
}

}  // namespace
}  // namespace gkx::eval
