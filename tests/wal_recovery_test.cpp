// Crash-recovery tests for the WAL: the kill/checkpoint/reopen soak
// (testkit::RunRecoverySoak — every acknowledged mutation must survive any
// kill, ExhaustiveEquals-identical), fault-injection teeth (torn tails and
// bit flips are detected, truncated, and reported — never applied; corrupt
// manifests/snapshots fail recovery loudly and the service degrades to
// in-memory serving), and deterministic replay-idempotence (a record
// covered by both a snapshot and the journal suffix is skipped, not
// re-applied).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/document_store.hpp"
#include "service/query_service.hpp"
#include "testkit/oracle.hpp"
#include "testkit/recovery_soak.hpp"
#include "testkit/reference_edit.hpp"
#include "testkit/workload.hpp"
#include "wal/record.hpp"
#include "wal/wal.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"

namespace gkx::wal {
namespace {

std::string TempDirFor(const char* name) {
  std::string dir = ::testing::TempDir() + "/wal_recovery_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

xml::Document ParseOk(std::string_view xml) {
  auto doc = xml::ParseDocument(xml);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

/// Opens a WAL over `store` at `dir`, expecting success.
std::unique_ptr<Wal> OpenOk(const std::string& dir,
                            service::DocumentStore* store,
                            RecoveryReport* report) {
  WalOptions options;
  options.dir = dir;
  options.group_commit_window_us = 50;
  auto wal = Wal::OpenAndRecover(options, store, report);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  return wal.ok() ? std::move(wal).value() : nullptr;
}

/// A directory with three acked records in the journal (no checkpoint since
/// they were appended): put a@1, put b@2, update b@3 (kSetText "edited").
void SeedJournal(const std::string& dir) {
  service::DocumentStore store;
  RecoveryReport report;
  auto wal = OpenOk(dir, &store, &report);
  ASSERT_NE(wal, nullptr);
  store.AttachWal(wal.get());
  ASSERT_TRUE(store.Put("a", ParseOk("<r><a1>alpha</a1></r>")).ok());
  ASSERT_TRUE(store.Put("b", ParseOk("<r><b1>beta</b1><b2/></r>")).ok());
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kSetText;
  edit.target = 1;
  edit.text = "edited";
  ASSERT_TRUE(store.Update("b", edit).ok());
  store.AttachWal(nullptr);
}

// --------------------------------------------------------------- the soak

// The tentpole acceptance test: durable mutations across kill/checkpoint/
// reopen rounds, the corpus re-verified node-for-node after every reopen.
// Rounds alternate clean closes with SimulateCrash kills; the mid-round
// checkpoint races live writers; a small auto-checkpoint threshold makes
// the byte-trigger fire under traffic too.
TEST(WalRecoverySoakTest, KillCheckpointReopenRoundsLoseNothing) {
  testkit::WorkloadSpec spec;
  spec.seed = 20260807;
  spec.operations = 260;
  spec.documents = 5;
  spec.min_document_nodes = 24;
  spec.max_document_nodes = 64;
  spec.queries = 12;
  spec.churn_probability = 0.55;  // this soak is about mutations
  spec.edit_probability = 0.5;
  auto schedule = testkit::CompileWorkload(spec);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();

  testkit::RecoverySoakOptions options;
  options.rounds = 5;
  options.threads = 4;
  options.wal_dir = TempDirFor("soak");
  options.service.wal.group_commit_window_us = 100;
  options.service.wal.checkpoint_every_bytes = 96 << 10;
  auto report = testkit::RunRecoverySoak(*schedule, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.mutations, 0);
  EXPECT_EQ(report.recoveries, 5);
  EXPECT_EQ(report.crashes, 2);
  EXPECT_EQ(report.clean_closes, 3);
  EXPECT_GT(report.snapshots_loaded, 0);
  std::filesystem::remove_all(options.wal_dir);
}

// ------------------------------------------------------------ fault teeth

// A bit flip in the journal's last record: recovery truncates the torn
// tail, reports it (reason + wal.torn_tail counter input), and restores
// exactly the records before the flip.
TEST(WalFaultTest, BitFlipInLastRecordIsTruncatedAndReported) {
  const std::string dir = TempDirFor("bitflip");
  SeedJournal(dir);
  const std::string journal = dir + "/journal.log";
  std::string bytes = ReadFile(journal);
  ASSERT_GT(bytes.size(), kJournalHeaderBytes + 8);
  // Flip one byte near the end — inside the final (update) record.
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  WriteFile(journal, bytes);

  service::DocumentStore store;
  RecoveryReport report;
  auto wal = OpenOk(dir, &store, &report);
  ASSERT_NE(wal, nullptr);
  EXPECT_TRUE(report.torn());
  EXPECT_GT(report.torn_tail_bytes, 0);
  EXPECT_NE(report.torn_tail_reason.find("CRC"), std::string::npos)
      << report.torn_tail_reason;
  EXPECT_EQ(report.records_replayed, 2);
  // The update was torn away: b is back at its pre-edit text.
  ASSERT_NE(store.Get("a"), nullptr);
  ASSERT_NE(store.Get("b"), nullptr);
  std::string why;
  EXPECT_TRUE(testkit::ExhaustiveEquals(
      store.Get("b")->doc(), ParseOk("<r><b1>beta</b1><b2/></r>"), &why))
      << why;
  wal.reset();
  std::filesystem::remove_all(dir);
}

// A crash mid-append tears the frame at an arbitrary byte: every truncation
// length recovers the complete prefix. (The byte-exhaustive matrix is in
// wal_test; this drives the same property through full OpenAndRecover,
// including the post-recovery normalization.)
TEST(WalFaultTest, TruncatedTailRecoversPrefix) {
  const std::string dir = TempDirFor("truncate");
  SeedJournal(dir);
  const std::string journal = dir + "/journal.log";
  const std::string bytes = ReadFile(journal);
  for (const size_t chop : {size_t{1}, size_t{7}, size_t{19}}) {
    // Each iteration restores the seeded journal bytes, then tears them:
    // recovery normalized the directory on the previous pass, so the
    // manifest must be re-seeded too (delete it to replay from scratch).
    std::filesystem::remove_all(dir);
    SeedJournal(dir);
    WriteFile(journal, std::string_view(bytes).substr(0, bytes.size() - chop));
    service::DocumentStore store;
    RecoveryReport report;
    auto wal = OpenOk(dir, &store, &report);
    ASSERT_NE(wal, nullptr);
    EXPECT_TRUE(report.torn()) << "chop=" << chop;
    EXPECT_EQ(report.records_replayed, 2) << "chop=" << chop;
    EXPECT_NE(store.Get("a"), nullptr);
    EXPECT_NE(store.Get("b"), nullptr);
  }
  std::filesystem::remove_all(dir);
}

// A corrupt manifest must fail recovery loudly — and QueryService must then
// degrade to in-memory serving with the reason in wal_status().
TEST(WalFaultTest, CorruptManifestFailsOpenAndServiceDegrades) {
  const std::string dir = TempDirFor("manifest");
  {
    service::QueryService::Options options;
    options.wal_dir = dir;
    service::QueryService service(options);
    ASSERT_TRUE(service.wal_status().ok()) << service.wal_status().ToString();
    ASSERT_TRUE(service.RegisterDocument("d", xml::ChainDocument(4)).ok());
    ASSERT_TRUE(service.CheckpointNow().ok());
  }
  const std::string manifest = dir + "/MANIFEST";
  std::string bytes = ReadFile(manifest);
  ASSERT_GT(bytes.size(), 12u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteFile(manifest, bytes);

  // Direct open: a hard error, not a silent empty corpus.
  {
    service::DocumentStore store;
    WalOptions options;
    options.dir = dir;
    RecoveryReport report;
    auto wal = Wal::OpenAndRecover(options, &store, &report);
    EXPECT_FALSE(wal.ok());
  }
  // Through the service: constructs, serves, reports why it is not durable.
  service::QueryService::Options options;
  options.wal_dir = dir;
  service::QueryService degraded(options);
  EXPECT_FALSE(degraded.wal_enabled());
  EXPECT_FALSE(degraded.wal_status().ok());
  ASSERT_TRUE(degraded.RegisterDocument("d", xml::ChainDocument(4)).ok());
  auto answer = degraded.Submit("d", "/descendant::*");
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  std::filesystem::remove_all(dir);
}

// A corrupt checkpoint snapshot is caught by the arena's own header
// checksum at MapSnapshot time and fails recovery.
TEST(WalFaultTest, CorruptSnapshotFailsOpen) {
  const std::string dir = TempDirFor("snapshot");
  {
    service::DocumentStore store;
    RecoveryReport report;
    auto wal = OpenOk(dir, &store, &report);
    ASSERT_NE(wal, nullptr);
    store.AttachWal(wal.get());
    ASSERT_TRUE(store.Put("d", xml::ChainDocument(8)).ok());
    ASSERT_TRUE(wal->Checkpoint(store).ok());
    store.AttachWal(nullptr);
  }
  bool corrupted = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    std::string bytes = ReadFile(entry.path().string());
    ASSERT_GT(bytes.size(), 64u);
    bytes[48] = static_cast<char>(bytes[48] ^ 0x20);
    WriteFile(entry.path().string(), bytes);
    corrupted = true;
  }
  ASSERT_TRUE(corrupted) << "checkpoint produced no snap-* file";
  service::DocumentStore store;
  WalOptions options;
  options.dir = dir;
  RecoveryReport report;
  auto wal = Wal::OpenAndRecover(options, &store, &report);
  EXPECT_FALSE(wal.ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- semantics

TEST(WalRecoveryTest, RemoveIsDurable) {
  const std::string dir = TempDirFor("remove");
  {
    service::DocumentStore store;
    RecoveryReport report;
    auto wal = OpenOk(dir, &store, &report);
    ASSERT_NE(wal, nullptr);
    store.AttachWal(wal.get());
    ASSERT_TRUE(store.Put("keep", xml::ChainDocument(3)).ok());
    ASSERT_TRUE(store.Put("gone", xml::ChainDocument(4)).ok());
    ASSERT_TRUE(store.Remove("gone"));
    store.AttachWal(nullptr);
  }
  service::DocumentStore store;
  RecoveryReport report;
  auto wal = OpenOk(dir, &store, &report);
  ASSERT_NE(wal, nullptr);
  EXPECT_NE(store.Get("keep"), nullptr);
  EXPECT_EQ(store.Get("gone"), nullptr);
  EXPECT_EQ(store.size(), 1u);
  wal.reset();
  std::filesystem::remove_all(dir);
}

// Replay idempotence, deterministically: after recovery normalizes the
// directory (snapshots cover everything, journal reset), re-appending the
// OLD journal's frames fabricates exactly the checkpoint/append race —
// records covered by both a snapshot and the suffix. Replay must skip every
// one of them and reproduce the identical corpus.
TEST(WalRecoveryTest, ReplaySkipsSnapshotCoveredRecords) {
  const std::string dir = TempDirFor("idempotence");
  SeedJournal(dir);
  const std::string journal = dir + "/journal.log";
  const std::string old_frames =
      ReadFile(journal).substr(kJournalHeaderBytes);

  // First recovery: replays the 3 records, then normalizes (checkpoint of
  // a@1 b@3, journal reset).
  service::DocumentStore first;
  {
    RecoveryReport report;
    auto wal = OpenOk(dir, &first, &report);
    ASSERT_NE(wal, nullptr);
    EXPECT_EQ(report.records_replayed, 3);
  }
  // Fabricate double coverage: the old records re-appear as the suffix.
  std::string bytes = ReadFile(journal);
  ASSERT_EQ(bytes.size(), kJournalHeaderBytes);
  WriteFile(journal, bytes + old_frames);

  service::DocumentStore second;
  RecoveryReport report;
  auto wal = OpenOk(dir, &second, &report);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(report.snapshots_loaded, 2);
  EXPECT_EQ(report.records_replayed, 0);
  EXPECT_EQ(report.records_skipped, 3);
  EXPECT_FALSE(report.torn());
  ASSERT_EQ(second.size(), first.size());
  for (const std::string& key : first.Keys()) {
    ASSERT_NE(second.Get(key), nullptr) << key;
    std::string why;
    EXPECT_TRUE(testkit::ExhaustiveEquals(first.Get(key)->doc(),
                                          second.Get(key)->doc(), &why))
        << key << ": " << why;
    EXPECT_EQ(first.Get(key)->revision(), second.Get(key)->revision()) << key;
  }
  wal.reset();
  std::filesystem::remove_all(dir);
}

// End-to-end through the service: the full mutation mix (register, edit,
// remove, replace) recovers through a fresh QueryService, which then
// serves queries against the recovered corpus.
TEST(WalRecoveryTest, ServiceRoundTripServesRecoveredCorpus) {
  const std::string dir = TempDirFor("service");
  std::string expect_b;
  {
    service::QueryService::Options options;
    options.wal_dir = dir;
    service::QueryService service(options);
    ASSERT_TRUE(service.wal_status().ok()) << service.wal_status().ToString();
    ASSERT_TRUE(service.RegisterDocument("a", xml::ChainDocument(6)).ok());
    ASSERT_TRUE(
        service.RegisterXml("b", "<r><x>one</x><y labels='G'>two</y></r>")
            .ok());
    ASSERT_TRUE(service.RegisterDocument("c", xml::ChainDocument(3)).ok());
    xml::SubtreeEdit edit;
    edit.kind = xml::SubtreeEdit::Kind::kSetText;
    edit.target = 1;
    edit.text = "edited";
    ASSERT_TRUE(service.UpdateDocument("b", edit).ok());
    ASSERT_TRUE(service.RemoveDocument("c"));
    ASSERT_TRUE(service.RegisterDocument("a", xml::ChainDocument(9)).ok());
    auto baseline = service.Submit("b", "/descendant::x");
    ASSERT_TRUE(baseline.ok());
    expect_b = testkit::AnswerDigest(baseline->value);
  }
  service::QueryService::Options options;
  options.wal_dir = dir;
  service::QueryService service(options);
  ASSERT_TRUE(service.wal_status().ok()) << service.wal_status().ToString();
  ASSERT_TRUE(service.wal_enabled());
  EXPECT_EQ(service.documents().size(), 2u);
  EXPECT_EQ(service.documents().Get("c"), nullptr);
  ASSERT_NE(service.documents().Get("a"), nullptr);
  EXPECT_EQ(service.documents().Get("a")->doc().size(), 9);
  auto answer = service.Submit("b", "/descendant::x");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(testkit::AnswerDigest(answer->value), expect_b);
  EXPECT_EQ(service.documents().Get("b")->doc().text(1), "edited");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gkx::wal
