// The XPath 1.0 string-function corner cases (§4.2 of the recommendation):
// substring's round()-based character selection with NaN/∞ arguments,
// substring-before/after, translate's mapping/dropping rules — checked on
// the shared semantics kernel (naive and CVT agree by construction; both are
// exercised).

#include <gtest/gtest.h>

#include "eval/cvt_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/builder.hpp"
#include "xpath/fragment.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

xml::Document Doc() {
  xml::TreeBuilder builder("r");
  builder.SetText(builder.root(), "12345");
  return std::move(builder).Build();
}

std::string EvalString(std::string_view text) {
  xml::Document doc = Doc();
  NaiveEvaluator naive;
  auto value = naive.EvaluateAtRoot(doc, xpath::MustParse(text));
  EXPECT_TRUE(value.ok()) << text << ": " << value.status().ToString();
  if (!value.ok()) return "<error>";
  std::string result = value->ToString(doc);
  CvtEvaluator cvt;
  auto cvt_value = cvt.EvaluateAtRoot(doc, xpath::MustParse(text));
  EXPECT_TRUE(cvt_value.ok());
  EXPECT_EQ(cvt_value->ToString(doc), result) << text;
  return result;
}

TEST(SubstringTest, BasicForms) {
  EXPECT_EQ(EvalString("substring('12345', 2)"), "2345");
  EXPECT_EQ(EvalString("substring('12345', 2, 3)"), "234");
  EXPECT_EQ(EvalString("substring('12345', 1, 5)"), "12345");
  EXPECT_EQ(EvalString("substring('', 1)"), "");
}

TEST(SubstringTest, SpecCornerCases) {
  // The W3C recommendation's own examples.
  EXPECT_EQ(EvalString("substring('12345', 1.5, 2.6)"), "234");
  EXPECT_EQ(EvalString("substring('12345', 0, 3)"), "12");
  EXPECT_EQ(EvalString("substring('12345', 0 div 0, 3)"), "");
  EXPECT_EQ(EvalString("substring('12345', 1, 0 div 0)"), "");
  EXPECT_EQ(EvalString("substring('12345', -42, 1 div 0)"), "12345");
  EXPECT_EQ(EvalString("substring('12345', -1 div 0, 1 div 0)"), "");
}

TEST(SubstringTest, OutOfRange) {
  EXPECT_EQ(EvalString("substring('abc', 10)"), "");
  EXPECT_EQ(EvalString("substring('abc', 2, -1)"), "");
  EXPECT_EQ(EvalString("substring('abc', -5)"), "abc");
}

TEST(SubstringBeforeAfterTest, Basics) {
  EXPECT_EQ(EvalString("substring-before('1999/04/01', '/')"), "1999");
  EXPECT_EQ(EvalString("substring-after('1999/04/01', '/')"), "04/01");
  EXPECT_EQ(EvalString("substring-before('abc', 'x')"), "");
  EXPECT_EQ(EvalString("substring-after('abc', 'x')"), "");
  EXPECT_EQ(EvalString("substring-after('abc', '')"), "abc");
  EXPECT_EQ(EvalString("substring-before('abc', '')"), "");
}

TEST(TranslateTest, MappingAndDropping) {
  EXPECT_EQ(EvalString("translate('bar', 'abc', 'ABC')"), "BAr");
  EXPECT_EQ(EvalString("translate('--aaa--', 'abc-', 'ABC')"), "AAA");
  EXPECT_EQ(EvalString("translate('abc', '', 'xyz')"), "abc");
  EXPECT_EQ(EvalString("translate('aabb', 'ab', 'b')"), "bb");
}

TEST(StringFunctionsTest, CoerceNodeSetArguments) {
  // The context node's string-value is "12345".
  EXPECT_EQ(EvalString("substring(self::r, 2, 2)"), "23");
  EXPECT_EQ(EvalString("translate(self::r, '15', 'xy')"), "x234y");
}

TEST(StringFunctionsTest, ExcludedFromPXPath) {
  for (const char* text :
       {"substring('a', 1)", "substring-before('a', 'b')",
        "substring-after('a', 'b')", "translate('a', 'b', 'c')"}) {
    xpath::Query query = xpath::MustParse(std::string("r[") + text + " = 'q']");
    EXPECT_FALSE(xpath::Classify(query).in_pxpath) << text;
  }
}

TEST(StringFunctionsTest, ParserArity) {
  EXPECT_FALSE(xpath::ParseQuery("substring('a')").ok());
  EXPECT_FALSE(xpath::ParseQuery("substring('a', 1, 2, 3)").ok());
  EXPECT_FALSE(xpath::ParseQuery("translate('a', 'b')").ok());
  EXPECT_TRUE(xpath::ParseQuery("substring('a', 1, 2)").ok());
}

}  // namespace
}  // namespace gkx::eval
