// Context-value-table internals: table shapes by dependence class, entry
// accounting, eager-vs-lazy behavior, evaluator reuse across documents and
// queries, and the deep-document robustness of the whole xml+eval stack
// (iterative builder/serializer, chain documents thousands of nodes deep).

#include <gtest/gtest.h>

#include "eval/cvt_evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

using xpath::MustParse;

TEST(CvtTablesTest, ConstantQueryUsesOneCell) {
  xml::Document doc = xml::BalancedDocument(2, 6);
  CvtEvaluator cvt;
  ASSERT_TRUE(cvt.EvaluateAtRoot(doc, MustParse("1 + 2 * 3")).ok());
  // Three literals + two operators — but all are context-free; each expr
  // stores exactly one cell.
  EXPECT_EQ(cvt.last_table_entries(), 5);
}

TEST(CvtTablesTest, AbsolutePathIsContextFree) {
  xml::Document doc = xml::BalancedDocument(2, 8);
  CvtEvaluator lazy;
  ASSERT_TRUE(lazy.EvaluateAtRoot(doc, MustParse("/child::t1/child::t2")).ok());
  // One cell for the whole path: it is evaluated once, from the root.
  EXPECT_EQ(lazy.last_table_entries(), 1);
}

TEST(CvtTablesTest, LazyTouchesOnlyReachableContexts) {
  xml::Document doc = xml::BalancedDocument(2, 8);  // 511 nodes
  CvtEvaluator lazy;
  CvtEvaluator eager{CvtEvaluator::Options{.eager = true}};
  xpath::Query query = MustParse("/child::*[child::t2]");
  auto lazy_value = lazy.EvaluateAtRoot(doc, query);
  auto eager_value = eager.EvaluateAtRoot(doc, query);
  ASSERT_TRUE(lazy_value.ok());
  ASSERT_TRUE(eager_value.ok());
  EXPECT_TRUE(lazy_value->Equals(*eager_value));
  // Lazy evaluates the predicate at the root's 2 children only; eager fills
  // the condition's table for all |D| nodes (the paper-faithful bottom-up
  // pass).
  EXPECT_LT(lazy.last_table_entries(), 10);
  EXPECT_GT(eager.last_table_entries(), doc.size());
}

TEST(CvtTablesTest, PositionalPredicateUsesFullContextTable) {
  xml::Document doc = xml::BalancedDocument(3, 3);
  CvtEvaluator cvt;
  xpath::Query query = MustParse("descendant::*[position() = last()]");
  auto value = cvt.EvaluateAtRoot(doc, query);
  ASSERT_TRUE(value.ok());
  // The predicate context includes position/size; entries exceed |D| since
  // the same node occurs at different (pos, size) pairs.
  EXPECT_GT(cvt.last_table_entries(), 0);
  NaiveEvaluator naive;
  auto expected = naive.EvaluateAtRoot(doc, query);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(value->Equals(*expected));
}

TEST(CvtTablesTest, EvaluatorReuseAcrossQueriesAndDocuments) {
  CvtEvaluator cvt;
  xml::Document doc1 = xml::BalancedDocument(2, 4);
  xml::Document doc2 = xml::ChainDocument(30);
  xpath::Query q1 = MustParse("descendant::t1");
  xpath::Query q2 = MustParse("descendant::t1[child::t2]");
  auto a = cvt.EvaluateAtRoot(doc1, q1);
  auto b = cvt.EvaluateAtRoot(doc2, q1);   // same query, new document
  auto c = cvt.EvaluateAtRoot(doc1, q2);   // new query, old document
  auto a2 = cvt.EvaluateAtRoot(doc1, q1);  // back to the first pair
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && a2.ok());
  EXPECT_TRUE(a->Equals(*a2));
  NaiveEvaluator naive;
  EXPECT_TRUE(b->Equals(*naive.EvaluateAtRoot(doc2, q1)));
  EXPECT_TRUE(c->Equals(*naive.EvaluateAtRoot(doc1, q2)));
}

TEST(CvtTablesTest, ErrorsInsidePredicatesPropagate) {
  xml::Document doc = xml::BalancedDocument(2, 3);
  CvtEvaluator cvt;
  // count() requires a node-set; (1+1) is a number — kInvalidArgument.
  auto value = cvt.EvaluateAtRoot(doc, MustParse("child::*[count(1 + 1) = 0]"));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeepDocumentTest, ChainOfThousandsEndToEnd) {
  // 20k-deep chain: builder, serializer, parser, and evaluators must all be
  // recursion-free along the document depth.
  constexpr int32_t kDepth = 20000;
  xml::Document doc = xml::ChainDocument(kDepth, /*tag_alphabet=*/3);
  ASSERT_EQ(doc.size(), kDepth);
  ASSERT_EQ(doc.Stats().max_depth, kDepth - 1);

  std::string xml_text = xml::SerializeDocument(doc, {.indent = 0});
  auto reparsed = xml::ParseDocument(xml_text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(doc.StructurallyEquals(*reparsed));

  CvtEvaluator cvt;
  auto count = cvt.EvaluateAtRoot(doc, MustParse("count(/descendant::t1)"));
  ASSERT_TRUE(count.ok());
  int expected_t1 = 0;
  for (int32_t i = 1; i < kDepth; ++i) {
    if (i % 3 == 1) ++expected_t1;
  }
  EXPECT_DOUBLE_EQ(count->number(), expected_t1);

  PfEvaluator pf;
  auto tips = pf.EvaluateAtRoot(doc, MustParse("/descendant::*/child::t1"));
  ASSERT_TRUE(tips.ok());
}

TEST(PfEvaluatorTest, MatchesOtherEnginesOnPf) {
  Rng rng(66);
  xml::RandomDocumentOptions options;
  options.node_count = 70;
  xpath::RandomQueryOptions query_options;
  query_options.fragment = xpath::Fragment::kPF;
  PfEvaluator pf;
  NaiveEvaluator naive;
  for (int i = 0; i < 40; ++i) {
    xml::Document doc = xml::RandomDocument(&rng, options);
    xpath::Query query = xpath::RandomQuery(&rng, query_options);
    auto expected = naive.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(expected.ok());
    auto actual = pf.EvaluateAtRoot(doc, query);
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_TRUE(expected->Equals(*actual));
  }
}

TEST(PfEvaluatorTest, RejectsPredicates) {
  xml::Document doc = xml::BalancedDocument(2, 3);
  PfEvaluator pf;
  auto value = pf.EvaluateAtRoot(doc, MustParse("child::*[child::t1]"));
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnsupported);
  auto scalar = pf.EvaluateAtRoot(doc, MustParse("1 + 1"));
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(scalar.status().code(), StatusCode::kUnsupported);
}

TEST(PfEvaluatorTest, NonRootContext) {
  xml::Document doc = xml::BalancedDocument(2, 3);
  PfEvaluator pf;
  NaiveEvaluator naive;
  xpath::Query query = MustParse("following-sibling::*/child::t2");
  for (xml::NodeId v = 0; v < doc.size(); v += 2) {
    auto expected = naive.Evaluate(doc, query, Context{v, 1, 1});
    auto actual = pf.Evaluate(doc, query, Context{v, 1, 1});
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_TRUE(expected->Equals(*actual)) << v;
  }
}

}  // namespace
}  // namespace gkx::eval
