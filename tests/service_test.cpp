// gkx::service — the serving layer.
//   * DocumentStore: registration, replacement, removal, lazy index.
//   * PlanCache: raw hits, canonical (spelling-equivalence) hits, eviction.
//   * QueryService: answers byte-identical to sequential Engine::Run over a
//     mixed workload (PF + Core + full-XPath, several documents), the
//     indexed PF fast path differential-tested against pf-frontier, and a
//     concurrent Submit stress test.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "base/rng.hpp"
#include "eval/engine.hpp"
#include "eval/pf_evaluator.hpp"
#include "service/indexed_path.hpp"
#include "service/query_service.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xml/snapshot.hpp"
#include "xpath/parser.hpp"

namespace gkx::service {
namespace {

const char kDocA[] = "<r><a><b/><b/></a><a/><c><b/></c></r>";
const char kDocB[] = "<r><x><a/><a><b/></a></x><c/><c><a/></c></r>";
const char kDocC[] = "<list><item n='1'/><item n='2'/><item n='3'/></list>";

// ------------------------------------------------------------- DocumentStore

TEST(DocumentStoreTest, PutGetRemove) {
  DocumentStore store;
  ASSERT_TRUE(store.PutXml("a", kDocA).ok());
  ASSERT_TRUE(store.PutXml("b", kDocB).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a", "b"}));

  auto stored = store.Get("a");
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->doc().size(), 7);
  EXPECT_EQ(store.Get("missing"), nullptr);

  EXPECT_TRUE(store.Remove("a"));
  EXPECT_FALSE(store.Remove("a"));
  // The shared_ptr we hold outlives removal.
  EXPECT_EQ(stored->doc().size(), 7);
}

TEST(DocumentStoreTest, RejectsBadInput) {
  DocumentStore store;
  EXPECT_FALSE(store.PutXml("bad", "<r><unclosed>").ok());
  EXPECT_EQ(store.size(), 0u);
}

TEST(DocumentStoreTest, IndexIsLazyAndCached) {
  DocumentStore store;
  ASSERT_TRUE(store.PutXml("a", kDocA).ok());
  auto stored = store.Get("a");
  EXPECT_FALSE(stored->index_built());
  const xml::DocumentIndex& index = stored->index();
  EXPECT_TRUE(stored->index_built());
  EXPECT_EQ(&stored->index(), &index);  // same instance, built once
  EXPECT_EQ(index.NodesWithName("b").size(), 3u);
}

TEST(DocumentStoreTest, UpdateAppliesSubtreePatchAndReportsDelta) {
  DocumentStore store;
  std::vector<std::string> events;
  std::vector<std::vector<std::string>> changed_sets;
  std::vector<bool> had_delta;
  store.SetUpdateListener([&](const CorpusUpdate& update) {
    events.push_back(update.key);
    changed_sets.push_back(update.changed_names);
    had_delta.push_back(update.delta != nullptr);
  });
  ASSERT_TRUE(store.PutXml("a", kDocA).ok());
  const int64_t first_revision = store.Get("a")->revision();

  // Replace the <c><b/></c> subtree (nodes 5..6) with <d><e/><e/></d>.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = 5;
  edit.subtree = *xml::ParseDocument("<d><e/><e/></d>");
  ASSERT_TRUE(store.Update("a", edit).ok());

  auto stored = store.Get("a");
  EXPECT_EQ(stored->doc().size(), 8);
  EXPECT_GT(stored->revision(), first_revision);
  EXPECT_EQ(stored->doc().TagName(5), "d");

  // The listener saw install (no names) then the delta-local update.
  ASSERT_EQ(events, (std::vector<std::string>{"a", "a"}));
  EXPECT_TRUE(changed_sets[0].empty());
  EXPECT_FALSE(had_delta[0]);
  EXPECT_TRUE(had_delta[1]);
  EXPECT_EQ(changed_sets[1], (std::vector<std::string>{"b", "c", "d", "e"}));

  // Cached name sets: the new revision's pool keeps dead entries as a
  // superset, but stays sound — and failures are visible.
  for (const char* name : {"a", "b", "d", "e", "r"}) {
    EXPECT_TRUE(std::binary_search(stored->NameSet().begin(),
                                   stored->NameSet().end(), name))
        << name;
  }

  // Invalid edits fail cleanly and mutate nothing.
  edit.target = 99;
  EXPECT_FALSE(store.Update("a", edit).ok());
  EXPECT_FALSE(store.Update("missing", edit).ok());
  EXPECT_EQ(store.Get("a"), stored);
}

TEST(DocumentStoreTest, UpdateSplicesIndexInsteadOfRebuilding) {
  DocumentStore store;
  ASSERT_TRUE(store.PutXml("a", kDocA).ok());
  auto before = store.Get("a");
  before->index();  // the old revision was queried
  ASSERT_TRUE(before->index_built());

  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
  edit.target = 0;
  edit.position = 0;
  edit.subtree = *xml::ParseDocument("<b/>");
  ASSERT_TRUE(store.Update("a", edit).ok());

  auto after = store.Get("a");
  // The spliced index was adopted at Update time — no lazy rebuild left.
  EXPECT_TRUE(after->index_built());
  EXPECT_EQ(after->index().NodesWithName("b").size(), 4u);
  // ... and it matches a from-scratch index, posting for posting.
  xml::DocumentIndex fresh(after->doc());
  for (const std::string& name : fresh.PresentNames()) {
    EXPECT_EQ(after->index().NodesWithName(name), fresh.NodesWithName(name))
        << name;
  }
  EXPECT_EQ(after->NameSet(), fresh.PresentNames());

  // An unindexed base stays lazy: no index is built just to patch.
  DocumentStore lazy_store;
  ASSERT_TRUE(lazy_store.PutXml("a", kDocA).ok());
  ASSERT_TRUE(lazy_store.Update("a", edit).ok());
  EXPECT_FALSE(lazy_store.Get("a")->index_built());
}

TEST(DocumentStoreTest, PutXmlStreamedAdoptsParseTimeIndex) {
  DocumentStore store;
  ASSERT_TRUE(store.PutXmlStreamed("a", kDocA).ok());
  auto stored = store.Get("a");
  ASSERT_NE(stored, nullptr);
  // The index arrived with the parse — no lazy build pending.
  EXPECT_TRUE(stored->index_built());
  EXPECT_EQ(stored->index().NodesWithName("b").size(), 3u);
  // Document and postings match the DOM path exactly.
  DocumentStore dom_store;
  ASSERT_TRUE(dom_store.PutXml("a", kDocA).ok());
  auto dom = dom_store.Get("a");
  EXPECT_TRUE(stored->doc().StructurallyEquals(dom->doc()));
  xml::DocumentIndex fresh(stored->doc());
  for (const std::string& name : fresh.PresentNames()) {
    EXPECT_EQ(stored->index().NodesWithName(name), fresh.NodesWithName(name))
        << name;
  }
  EXPECT_EQ(stored->NameSet(), fresh.PresentNames());
  // Streamed parse errors surface like DOM parse errors.
  EXPECT_FALSE(store.PutXmlStreamed("bad", "<r><unclosed>").ok());
}

TEST(DocumentStoreTest, PutSnapshotServesFromMapping) {
  const std::string path = ::testing::TempDir() + "/store_snapshot.gkx";
  {
    auto doc = xml::ParseDocument(kDocA);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(xml::SaveSnapshot(*doc, path).ok());
  }
  DocumentStore store;
  ASSERT_TRUE(store.PutSnapshot("a", path).ok());
  auto stored = store.Get("a");
  ASSERT_NE(stored, nullptr);
  EXPECT_TRUE(stored->doc().mapped());
  EXPECT_EQ(stored->doc().size(), 7);
  EXPECT_EQ(stored->index().NodesWithName("b").size(), 3u);
  // Mapped documents still take subtree updates: ApplyEdit materializes.
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kRemoveSubtree;
  edit.target = 5;
  ASSERT_TRUE(store.Update("a", edit).ok());
  auto after = store.Get("a");
  EXPECT_FALSE(after->doc().mapped());
  EXPECT_EQ(after->doc().size(), 5);
  // Missing files fail cleanly.
  EXPECT_FALSE(store.PutSnapshot("b", path + ".missing").ok());
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- PlanCache

TEST(PlanCacheTest, RepeatLookupsHitWithoutReparsing) {
  PlanCache cache;
  auto first = cache.GetOrCompile("/descendant::a[child::b]");
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompile("/descendant::a[child::b]");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // literally the same plan

  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ((*first)->evaluator_name(), "core-linear");
}

TEST(PlanCacheTest, EquivalentSpellingsShareOnePlan) {
  PlanCache cache;
  // "//b" is sugar for "/descendant-or-self::node()/child::b"; Optimize
  // fuses both to "/descendant::b", so all three share one canonical entry.
  auto sugar = cache.GetOrCompile("//b");
  auto expanded = cache.GetOrCompile("/descendant-or-self::node()/child::b");
  ASSERT_TRUE(sugar.ok());
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(sugar->get(), expanded->get());

  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1);
  EXPECT_EQ(counters.canonical_hits, 1);

  // Second round of either spelling is now a raw hit.
  auto again = cache.GetOrCompile("/descendant-or-self::node()/child::b");
  EXPECT_EQ(cache.counters().hits, 1);
  ASSERT_TRUE(again.ok());
}

TEST(PlanCacheTest, ParseFailuresAreReportedNotCached) {
  PlanCache cache;
  EXPECT_FALSE(cache.GetOrCompile("child::").ok());
  EXPECT_FALSE(cache.GetOrCompile("child::").ok());
  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.parse_failures, 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, LruEviction) {
  PlanCache::Options options;
  options.capacity = 4;
  options.shards = 1;  // single shard makes eviction order deterministic
  PlanCache cache(options);

  // Distinct single-step queries; each creates exactly one entry (their
  // canonical form equals the raw text).
  ASSERT_TRUE(cache.GetOrCompile("child::t0").ok());
  ASSERT_TRUE(cache.GetOrCompile("child::t1").ok());
  ASSERT_TRUE(cache.GetOrCompile("child::t2").ok());
  ASSERT_TRUE(cache.GetOrCompile("child::t3").ok());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.counters().evictions, 0);

  // Touch t0 so t1 is the LRU victim.
  ASSERT_TRUE(cache.GetOrCompile("child::t0").ok());
  ASSERT_TRUE(cache.GetOrCompile("child::t4").ok());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.counters().evictions, 1);
  EXPECT_NE(cache.Peek("child::t0"), nullptr);
  EXPECT_EQ(cache.Peek("child::t1"), nullptr);  // evicted
  EXPECT_NE(cache.Peek("child::t4"), nullptr);
}

// -------------------------------------------------------------- QueryService

// QueryService owns mutexes and is immovable; register into it in place.
void RegisterCorpus(QueryService& service) {
  GKX_CHECK(service.RegisterXml("a", kDocA).ok());
  GKX_CHECK(service.RegisterXml("b", kDocB).ok());
  GKX_CHECK(service.RegisterXml("c", kDocC).ok());
}

// A mixed workload: PF (indexed and non-indexed shapes), positive Core,
// Core with negation, and full-XPath scalar/positional queries.
const char* kMixedQueries[] = {
    "/descendant::a/child::b",                  // PF, indexed
    "//b",                                      // PF, indexed (fused //)
    "child::*/child::a",                        // PF, indexed wildcard
    "/descendant::b/parent::a",                 // PF, reverse axis: fallback
    "/descendant::a[child::b]",                 // positive Core
    "/descendant::c[not(child::b)]",            // Core with not()
    "/descendant::a[position() = 2]",           // pWF positional
    "count(/descendant::b) * 10",               // full XPath scalar
    "string(/child::*/child::item)",            // full XPath string
    "/descendant::item[2] | /descendant::c",    // union, positional
};

TEST(QueryServiceTest, AnswersMatchSequentialEngineRun) {
  QueryService service;
  RegisterCorpus(service);
  eval::Engine reference;

  for (const std::string key : {"a", "b", "c"}) {
    auto stored = service.documents().Get(key);
    ASSERT_NE(stored, nullptr);
    for (const char* query : kMixedQueries) {
      auto expected = reference.Run(stored->doc(), query);
      auto got = service.Submit(key, query);
      ASSERT_TRUE(expected.ok()) << query;
      ASSERT_TRUE(got.ok()) << query;
      // Byte-identical answers: exact value equality, no coercions.
      EXPECT_TRUE(got->value.Equals(expected->value))
          << key << " " << query << ": " << got->value.DebugString() << " vs "
          << expected->value.DebugString();
      EXPECT_EQ(got->fragment.smallest, expected->fragment.smallest) << query;
      // Dispatch label matches except where the index answered a PF query.
      if (got->evaluator != "pf-indexed") {
        EXPECT_EQ(got->evaluator, expected->evaluator) << query;
      } else {
        EXPECT_EQ(expected->evaluator, "pf-frontier") << query;
      }
    }
  }
}

TEST(QueryServiceTest, BatchAgreesWithSequentialSubmits) {
  QueryService service;
  RegisterCorpus(service);

  std::vector<QueryService::Request> requests;
  for (const std::string key : {"a", "b", "c"}) {
    for (const char* query : kMixedQueries) {
      requests.push_back({key, query});
    }
  }
  // Repeat the workload to exercise the warm cache inside one batch.
  const size_t unique = requests.size();
  for (size_t i = 0; i < unique; ++i) requests.push_back(requests[i]);

  auto batch = service.SubmitBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());

  QueryService sequential;
  RegisterCorpus(sequential);
  for (size_t i = 0; i < requests.size(); ++i) {
    auto expected =
        sequential.Submit(requests[i].doc_key, requests[i].query);
    ASSERT_TRUE(expected.ok()) << requests[i].query;
    ASSERT_TRUE(batch[i].ok()) << requests[i].query;
    EXPECT_TRUE(batch[i]->value.Equals(expected->value)) << requests[i].query;
    EXPECT_EQ(batch[i]->evaluator, expected->evaluator) << requests[i].query;
  }

  // The repeated half of the batch hit the plan cache. (≥ half, not all:
  // concurrent workers may compile the same text simultaneously, and both
  // count as misses — the cache converges, the counters record the race.)
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, static_cast<int64_t>(requests.size()));
  EXPECT_GE(stats.plan_cache.hits, static_cast<int64_t>(unique) / 2);
  EXPECT_EQ(stats.failures, 0);
}

TEST(QueryServiceTest, RepeatedWorkloadHitRateAboveNinetyPercent) {
  QueryService service;
  RegisterCorpus(service);
  // 10 unique queries, 30 rounds: 300 lookups, ≤ 10 misses.
  std::vector<QueryService::Request> requests;
  for (int round = 0; round < 30; ++round) {
    for (const char* query : kMixedQueries) {
      requests.push_back({"a", query});
    }
  }
  auto responses = service.SubmitBatch(requests);
  for (const auto& response : responses) ASSERT_TRUE(response.ok());
  EXPECT_GE(service.Stats().plan_cache.HitRate(), 0.9);
}

TEST(QueryServiceTest, ErrorsAreIsolatedPerRequest) {
  QueryService service;
  RegisterCorpus(service);
  auto batch = service.SubmitBatch({
      {"a", "/descendant::b"},
      {"missing", "/descendant::b"},   // unknown document
      {"a", "child::"},                // parse error
      {"b", "/descendant::b"},
  });
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(batch[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[3].ok());
  EXPECT_EQ(service.Stats().failures, 2);
}

TEST(QueryServiceTest, IndexedFastPathDifferentialOnRandomDocuments) {
  // The indexed PF path must agree with pf-frontier on random documents ×
  // random PF-shaped queries (including ones it declines — then it must
  // decline cleanly, not answer wrongly).
  Rng rng(1234);
  const char* queries[] = {
      "/descendant::t0/child::t1",
      "//t2",
      "//t0//t1",
      "/child::*/descendant-or-self::t1",
      "/descendant::t1 | //t3/child::t0",
      "self::t0/descendant::t2",
      "child::t1/child::t2/child::t3",
  };
  for (int trial = 0; trial < 8; ++trial) {
    xml::RandomDocumentOptions options;
    options.node_count = 300;
    options.tag_alphabet = 4;
    options.max_extra_labels = 1;
    xml::Document doc = xml::RandomDocument(&rng, options);
    xml::DocumentIndex index(doc);
    eval::PfEvaluator pf;
    for (const char* text : queries) {
      xpath::Query query = xpath::MustParse(text);
      auto indexed = TryIndexedPath(index, query);
      ASSERT_TRUE(indexed.has_value()) << text;
      auto expected = pf.EvaluateNodeSet(doc, query);
      ASSERT_TRUE(expected.ok()) << text;
      EXPECT_EQ(*indexed, *expected) << text << " trial " << trial;
    }
  }
}

TEST(QueryServiceTest, IndexedFastPathDeclinesUnsupportedShapes) {
  xml::Document doc = xml::ChainDocument(10);
  xml::DocumentIndex index(doc);
  EXPECT_FALSE(TryIndexedPath(index, xpath::MustParse("/descendant::t1/parent::t0")));
  EXPECT_FALSE(TryIndexedPath(index, xpath::MustParse("//t1/following-sibling::t2")));
  EXPECT_FALSE(TryIndexedPath(index, xpath::MustParse("count(//t1)")));
  EXPECT_FALSE(TryIndexedPath(index, xpath::MustParse("/descendant::t1[child::t2]")));
}

TEST(QueryServiceTest, ConcurrentSubmitStress) {
  QueryService service;
  RegisterCorpus(service);

  // Precompute expected answers sequentially.
  eval::Engine reference;
  std::vector<std::pair<QueryService::Request, std::string>> expected;
  for (const std::string key : {"a", "b", "c"}) {
    auto stored = service.documents().Get(key);
    for (const char* query : kMixedQueries) {
      auto answer = reference.Run(stored->doc(), query);
      GKX_CHECK(answer.ok());
      expected.push_back({{key, query}, answer->value.DebugString()});
    }
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &expected, &mismatches, &errors, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto& [request, want] =
            expected[static_cast<size_t>(t * 7 + i) % expected.size()];
        auto got = service.Submit(request.doc_key, request.query);
        if (!got.ok()) {
          errors.fetch_add(1);
        } else if (got->value.DebugString() != want) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_GE(stats.plan_cache.HitRate(), 0.9);
  EXPECT_EQ(stats.latency.count, kThreads * kPerThread);
}

TEST(QueryServiceTest, StatsTrackEvaluatorsAndDocuments) {
  QueryService service;
  RegisterCorpus(service);
  ASSERT_TRUE(service.Submit("a", "/descendant::a/child::b").ok());   // indexed
  ASSERT_TRUE(service.Submit("a", "/descendant::a[child::b]").ok());  // core
  ASSERT_TRUE(service.Submit("a", "count(/descendant::b)").ok());     // cvt
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.documents, 3u);
  EXPECT_EQ(stats.evaluator_counts["pf-indexed"], 1);
  EXPECT_EQ(stats.evaluator_counts["core-linear"], 1);
  EXPECT_EQ(stats.evaluator_counts["cvt-lazy"], 1);
  EXPECT_EQ(stats.latency.count, 3);
  EXPECT_GE(stats.latency.max_ms, 0.0);
}

TEST(QueryServiceTest, PessimizedSpellingRunsCanonicalPlan) {
  QueryService service;
  RegisterCorpus(service);
  // Optimize drops [true()], so both spellings share the canonical plan
  // "/descendant::a" — and the pessimized one gets PF's cheap engine.
  auto pessimized = service.Submit("a", "/descendant::a[true()]");
  auto canonical = service.Submit("a", "/descendant::a");
  ASSERT_TRUE(pessimized.ok());
  ASSERT_TRUE(canonical.ok());
  EXPECT_TRUE(pessimized->value.Equals(canonical->value));
  EXPECT_EQ(pessimized->evaluator, canonical->evaluator);
  EXPECT_TRUE(pessimized->fragment.in_pf);

  PlanCache::Counters counters = service.plan_cache().counters();
  EXPECT_EQ(counters.misses, 1);  // one compile serves both spellings
  EXPECT_EQ(counters.hits, 1);    // the canonical text raw-hit the entry
}

TEST(QueryServiceTest, FastPathCanBeDisabled) {
  QueryService::Options options;
  options.indexed_fast_path = false;
  QueryService service(options);
  ASSERT_TRUE(service.RegisterXml("a", kDocA).ok());
  auto answer = service.Submit("a", "/descendant::a/child::b");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->evaluator, "pf-frontier");
}

}  // namespace
}  // namespace gkx::service
