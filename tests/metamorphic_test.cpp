// Metamorphic property tests: pairs of syntactically different but
// semantically equivalent queries must evaluate identically on random
// documents. These identities are classical XPath algebra — several are the
// exact rewrites the paper's proofs rely on (axis compositions mirroring
// Corollary 3.3, predicate folding of Remark 5.2, negation laws of
// Theorem 5.9).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/cvt_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx::eval {
namespace {

struct Identity {
  const char* lhs;
  const char* rhs;
};

// All identities hold for every context node, so we quantify over contexts.
constexpr Identity kIdentities[] = {
    // Axis decompositions.
    {"descendant::t1", "child::node()/descendant-or-self::node()[self::t1]"},
    {"descendant-or-self::t1", "descendant-or-self::node()[self::t1]"},
    {"ancestor::t1", "parent::node()/ancestor-or-self::node()[self::t1]"},
    {"ancestor-or-self::t2", "ancestor-or-self::node()[self::t2]"},
    // The Corollary 3.3 rewrite restricted to non-root contexts is checked
    // in the reduction tests; the general ancestor identity:
    {"ancestor-or-self::*", "ancestor::* | self::*"},
    // following/preceding in terms of siblings and subtrees.
    {"following::t1",
     "ancestor-or-self::node()/following-sibling::node()/"
     "descendant-or-self::t1"},
    {"preceding::t2",
     "ancestor-or-self::node()/preceding-sibling::node()/"
     "descendant-or-self::t2"},
    // Predicate algebra (position-free).
    {"child::t1[child::t2 and child::t3]", "child::t1[child::t2][child::t3]"},
    {"child::t1[child::t2 or child::t3]",
     "child::t1[child::t2] | child::t1[child::t3]"},
    {"child::*[not(not(child::t1))]", "child::*[child::t1]"},
    // Double negation over comparisons (Theorem 5.9's flip table).
    {"child::*[not(position() = 2)]", "child::*[position() != 2]"},
    {"child::*[not(position() < last())]", "child::*[position() >= last()]"},
    // Union is commutative, associative, idempotent.
    {"child::t1 | child::t2", "child::t2 | child::t1"},
    {"child::t1 | (child::t2 | child::t3)",
     "(child::t1 | child::t2) | child::t3"},
    {"child::t1 | child::t1", "child::t1"},
    // Trivially-true positional filters.
    {"child::*[position() >= 1]", "child::*"},
    {"child::*[position() <= last()]", "child::*"},
    {"child::*[true()]", "child::*"},
    // position()/last() symmetry.
    {"child::*[position() = last()]", "child::*[last() = position()]"},
    // Numeric predicate sugar.
    {"child::*[2]", "child::*[position() = 2]"},
    {"descendant::t0[last()]", "descendant::t0[position() = last()]"},
    // self composition is identity.
    {"child::t1/self::node()", "child::t1"},
    {"self::node()/child::t1", "child::t1"},
    // Path conditions: exists-semantics distributes over union.
    {"child::*[child::t1 | child::t2]",
     "child::*[child::t1 or child::t2]"},
};

class MetamorphicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetamorphicTest, EquivalentQueriesAgreeEverywhere) {
  Rng rng(GetParam());
  xml::RandomDocumentOptions options;
  options.node_count = 45;
  options.tag_alphabet = 4;
  options.chain_bias = (GetParam() % 3) / 3.0;
  CvtEvaluator engine;
  for (int trial = 0; trial < 4; ++trial) {
    xml::Document doc = xml::RandomDocument(&rng, options);
    for (const Identity& identity : kIdentities) {
      xpath::Query lhs = xpath::MustParse(identity.lhs);
      xpath::Query rhs = xpath::MustParse(identity.rhs);
      for (xml::NodeId ctx_node = 0; ctx_node < doc.size(); ctx_node += 3) {
        Context ctx{ctx_node, 1, 1};
        auto left = engine.Evaluate(doc, lhs, ctx);
        auto right = engine.Evaluate(doc, rhs, ctx);
        ASSERT_TRUE(left.ok()) << identity.lhs;
        ASSERT_TRUE(right.ok()) << identity.rhs;
        EXPECT_TRUE(left->Equals(*right))
            << identity.lhs << "  !=  " << identity.rhs << "  at node "
            << ctx_node << "\n  lhs: " << left->DebugString()
            << "\n  rhs: " << right->DebugString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicTest,
                         ::testing::Values(881, 882, 883, 884, 885));

}  // namespace
}  // namespace gkx::eval
