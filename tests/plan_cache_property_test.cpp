// PlanCache canonical-aliasing property test: for randomly generated
// queries, every spelling in the same Optimize()-equivalence class — the
// raw generated text, its canonical (optimized, unabbreviated) form, and a
// pessimized variant with a vacuous [true()] predicate — must share ONE
// compiled plan (one miss, everything else aliased) and produce answers
// identical to a fresh Engine::Run of the raw text on random documents.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "base/rng.hpp"
#include "eval/engine.hpp"
#include "service/plan_cache.hpp"
#include "xml/generator.hpp"
#include "xpath/ast.hpp"
#include "xpath/generator.hpp"
#include "xpath/optimize.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::service {
namespace {

// Equivalent spellings of `query`: raw, canonical, and (for plain paths) a
// pessimized variant whose extra [true()] the optimizer must strip away.
std::vector<std::string> EquivalentSpellings(const xpath::Query& query) {
  std::vector<std::string> spellings;
  spellings.push_back(xpath::ToXPathString(query));
  spellings.push_back(xpath::CanonicalXPathString(query));
  if (query.root().kind() == xpath::Expr::Kind::kPath) {
    spellings.push_back(spellings.front() + "[true()]");
  }
  return spellings;
}

TEST(PlanCachePropertyTest, EquivalentSpellingsAliasToOnePlan) {
  Rng rng(2024);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 80;

  int trials_with_distinct_spellings = 0;
  for (int trial = 0; trial < 60; ++trial) {
    xpath::RandomQueryOptions query_options;
    // Cycle through fragments so aliasing is exercised on every engine.
    constexpr xpath::Fragment kFragments[] = {
        xpath::Fragment::kPF, xpath::Fragment::kPositiveCore,
        xpath::Fragment::kCore, xpath::Fragment::kPWF,
        xpath::Fragment::kFullXPath};
    query_options.fragment = kFragments[trial % 5];
    query_options.max_path_steps = 3;
    query_options.max_condition_depth = 2;
    xpath::Query query = xpath::RandomQuery(&rng, query_options);
    std::vector<std::string> spellings = EquivalentSpellings(query);

    // All spellings must parse (the pessimized one is built syntactically).
    bool all_parse = true;
    for (const std::string& spelling : spellings) {
      all_parse = all_parse && xpath::ParseQuery(spelling).ok();
    }
    ASSERT_TRUE(all_parse) << spellings.front();

    PlanCache cache;
    std::vector<std::shared_ptr<const eval::Engine::Plan>> plans;
    for (const std::string& spelling : spellings) {
      auto plan = cache.GetOrCompile(spelling);
      ASSERT_TRUE(plan.ok()) << spelling;
      plans.push_back(*plan);
    }

    // ONE plan serves the whole equivalence class: exactly one compile, and
    // every spelling returned literally the same object.
    PlanCache::Counters counters = cache.counters();
    EXPECT_EQ(counters.misses, 1) << spellings.front();
    for (size_t i = 1; i < plans.size(); ++i) {
      EXPECT_EQ(plans[0].get(), plans[i].get())
          << spellings[0] << " vs " << spellings[i];
    }
    bool distinct = false;
    for (size_t i = 1; i < spellings.size(); ++i) {
      distinct = distinct || spellings[i] != spellings[0];
    }
    if (distinct) ++trials_with_distinct_spellings;

    // Identical answers: the shared canonical plan vs a fresh Engine::Run
    // of each raw spelling, on a random document.
    xml::Document doc = xml::RandomDocument(&rng, doc_options);
    eval::Engine engine;
    for (size_t i = 0; i < spellings.size(); ++i) {
      auto from_plan = engine.RunPlan(doc, *plans[i]);
      auto from_text = engine.Run(doc, spellings[i]);
      ASSERT_TRUE(from_plan.ok()) << spellings[i];
      ASSERT_TRUE(from_text.ok()) << spellings[i];
      EXPECT_TRUE(from_plan->value.Equals(from_text->value))
          << spellings[i] << ": " << from_plan->value.DebugString() << " vs "
          << from_text->value.DebugString();
    }
  }
  // The property is vacuous if canonicalization never changed a spelling.
  EXPECT_GT(trials_with_distinct_spellings, 20);
}

// Aliases count toward capacity but an alias hit refreshes the shared plan:
// inserting equivalence classes never duplicates compiled plans.
TEST(PlanCachePropertyTest, AliasEntriesShareUnderlyingPlanAfterEviction) {
  PlanCache::Options options;
  options.capacity = 64;
  options.shards = 1;
  int evictions_observed = 0;
  options.on_evict = [&evictions_observed](const std::string&) {
    ++evictions_observed;
  };
  PlanCache cache(options);

  Rng rng(7);
  xpath::RandomQueryOptions query_options;
  query_options.fragment = xpath::Fragment::kCore;
  std::vector<xpath::Query> queries;
  for (int i = 0; i < 200; ++i) {
    xpath::Query query = xpath::RandomQuery(&rng, query_options);
    for (const std::string& spelling : EquivalentSpellings(query)) {
      auto plan = cache.GetOrCompile(spelling);
      ASSERT_TRUE(plan.ok()) << spelling;
    }
    queries.push_back(std::move(query));
  }
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(static_cast<int64_t>(evictions_observed),
            cache.counters().evictions);
  EXPECT_GT(evictions_observed, 0);

  // The aliasing property survives eviction: re-resolving any equivalence
  // class — whose entries were mostly evicted above — still converges on a
  // single shared plan object per class, never duplicate compiles.
  for (size_t i = 0; i < queries.size(); i += 37) {
    std::vector<std::shared_ptr<const eval::Engine::Plan>> plans;
    for (const std::string& spelling : EquivalentSpellings(queries[i])) {
      auto plan = cache.GetOrCompile(spelling);
      ASSERT_TRUE(plan.ok()) << spelling;
      plans.push_back(*plan);
    }
    for (size_t p = 1; p < plans.size(); ++p) {
      EXPECT_EQ(plans[0].get(), plans[p].get());
    }
  }
}

// Concurrent compiles of DIFFERENT spellings of one equivalence class must
// still converge on a single Plan object: the loser of the canonical-insert
// race has to adopt the winner's resident plan before aliasing its raw
// text (regression: the raw alias used to keep the loser's private plan).
TEST(PlanCachePropertyTest, ConcurrentEquivalentSpellingsConvergeOnOnePlan) {
  const std::vector<std::string> spellings = {
      "//b", "/descendant-or-self::node()/child::b", "/descendant::b[true()]",
      "/descendant::b"};
  for (int round = 0; round < 20; ++round) {
    PlanCache cache;
    std::vector<std::shared_ptr<const eval::Engine::Plan>> returned(
        spellings.size());
    std::vector<std::thread> threads;
    for (size_t i = 0; i < spellings.size(); ++i) {
      threads.emplace_back([&cache, &spellings, &returned, i] {
        auto plan = cache.GetOrCompile(spellings[i]);
        GKX_CHECK(plan.ok());
        returned[i] = *plan;
      });
    }
    for (auto& thread : threads) thread.join();

    // Whatever the interleaving, one plan serves the class — both the
    // returned handles and the now-resident entries agree.
    for (size_t i = 1; i < returned.size(); ++i) {
      EXPECT_EQ(returned[0].get(), returned[i].get())
          << spellings[i] << " round " << round;
    }
    for (const std::string& spelling : spellings) {
      EXPECT_EQ(cache.Peek(spelling).get(), returned[0].get()) << spelling;
    }
  }
}

}  // namespace
}  // namespace gkx::service
