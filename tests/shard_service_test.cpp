// ShardedQueryService — the scatter-gather router over shared-nothing
// QueryService shards (src/service/sharded_service.hpp).
//   * ShardMap: FNV-1a golden fingerprints (rehash stability is a
//     durability contract — a silent change would strand every per-shard
//     WAL directory), modular assignment, and spread.
//   * Router ≡ N=1 differential: identical corpora and traffic through
//     shards ∈ {1, 2, 4} produce byte-identical answer digests and
//     identical per-document subscription diff streams.
//   * Degenerate corpora: empty shards, a single document.
//   * SubmitBatch partial failure: a sub-batch that dies wholesale on one
//     shard poisons only that shard's slots.
//   * Stats: cross-shard sums and the ExportStats shards[] breakdown.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "eval/engine.hpp"
#include "obs/json.hpp"
#include "service/shard_map.hpp"
#include "service/sharded_service.hpp"
#include "testkit/oracle.hpp"
#include "xml/edit.hpp"
#include "xml/parser.hpp"

namespace gkx::service {
namespace {

// ------------------------------------------------------------------ ShardMap

TEST(ShardMapTest, GoldenFingerprints) {
  // Pinned FNV-1a 64 values. If any of these change, existing sharded WAL
  // directories become unroutable — that is a data-loss bug, not a test to
  // update.
  EXPECT_EQ(ShardMap::Fingerprint(""), 14695981039346656037ull);
  EXPECT_EQ(ShardMap::Fingerprint("doc0"), 15872862563901681407ull);
  EXPECT_EQ(ShardMap::Fingerprint("doc1"), 15872861464390053196ull);
  EXPECT_EQ(ShardMap::Fingerprint("gottlob"), 77082705199072292ull);
  EXPECT_EQ(ShardMap::Fingerprint("koch"), 127775170418808788ull);
  EXPECT_EQ(ShardMap::Fingerprint("pichler"), 12506886017217559388ull);
}

TEST(ShardMapTest, AssignmentIsFingerprintModuloShards) {
  ShardMap two(2), four(4);
  EXPECT_EQ(two.ShardOf("doc0"), 1);
  EXPECT_EQ(two.ShardOf("doc1"), 0);
  EXPECT_EQ(four.ShardOf("doc0"), 3);
  EXPECT_EQ(four.ShardOf("doc1"), 0);
  EXPECT_EQ(four.ShardOf("doc7"), 2);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(static_cast<uint64_t>(four.ShardOf(key)),
              ShardMap::Fingerprint(key) % 4);
    // Stability across repeated construction (no hidden per-instance salt).
    EXPECT_EQ(ShardMap(4).ShardOf(key), four.ShardOf(key));
  }
}

TEST(ShardMapTest, SpreadsRealisticKeysAcrossShards) {
  ShardMap map(4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 1000; ++i) ++counts[map.ShardOf("doc" + std::to_string(i))];
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(counts[shard], 150) << "shard " << shard;  // ~250 expected
  }
}

// ------------------------------------------------------------- differential

std::string DocKey(int k) { return "doc" + std::to_string(k); }

std::string DocXml(int k) {
  const std::string t = std::to_string(k);
  return "<d" + t + "><b" + t + "><a" + t + ">x</a" + t + "><a" + t + ">y</a" +
         t + "></b" + t + "><c" + t + ">z</c" + t + "></d" + t + ">";
}

struct StreamEvent {
  std::string doc_key;
  bool doc_removed = false;
  eval::NodeSet added;
  eval::NodeSet removed;

  bool operator==(const StreamEvent& other) const {
    return doc_key == other.doc_key && doc_removed == other.doc_removed &&
           added == other.added && removed == other.removed;
  }
};

/// Runs the same corpus + churn + traffic at a given shard count and
/// returns (answer digests in request order, per-doc subscription streams).
/// Shard-local revision counters legitimately differ across shard counts,
/// so streams are compared on (doc, removed-flag, added, removed) only.
struct DifferentialRun {
  std::vector<std::string> digests;
  std::map<std::string, std::vector<StreamEvent>> streams;
};

DifferentialRun RunDifferential(int shards, int docs) {
  DifferentialRun run;
  ShardedQueryService::Options options;
  options.shards = shards;
  ShardedQueryService service(options);

  for (int k = 0; k < docs; ++k) {
    GKX_CHECK(service.RegisterXml(DocKey(k), DocXml(k)).ok());
  }

  std::mutex mu;
  for (int k = 0; k < docs; ++k) {
    const std::string key = DocKey(k);
    auto sub = service.Subscribe(
        key, "//a" + std::to_string(k),
        [&run, &mu, key](const mview::SubscriptionEvent& event) {
          std::lock_guard<std::mutex> lock(mu);
          run.streams[key].push_back(
              {event.doc_key, event.doc_removed, event.added, event.removed});
        });
    GKX_CHECK(sub.ok());
  }
  service.FlushSubscriptions();

  // Churn: structural edit on every third doc, text churn elsewhere, one
  // remove + re-register. Then a mixed batch over the full corpus.
  for (int k = 0; k < docs; ++k) {
    xml::SubtreeEdit edit;
    if (k % 3 == 0) {
      const std::string t = std::to_string(k);
      edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
      edit.target = 0;
      edit.position = 0;
      auto subtree = xml::ParseDocument("<a" + t + ">new</a" + t + ">");
      GKX_CHECK(subtree.ok());
      edit.subtree = std::move(*subtree);
    } else {
      edit.kind = xml::SubtreeEdit::Kind::kSetText;
      edit.target = 2;
      edit.text = "churned";
    }
    GKX_CHECK(service.UpdateDocument(DocKey(k), edit).ok());
    // Flush per mutation: whether two pending diffs coalesce depends on
    // delivery timing, and the differential needs identical streams, not
    // just identical final states.
    service.FlushSubscriptions();
  }
  EXPECT_TRUE(service.RemoveDocument(DocKey(0)));
  EXPECT_FALSE(service.RemoveDocument("no-such-doc"));
  service.FlushSubscriptions();
  GKX_CHECK(service.RegisterXml(DocKey(0), DocXml(0)).ok());
  service.FlushSubscriptions();

  std::vector<ShardedQueryService::Request> requests;
  for (int k = 0; k < docs; ++k) {
    const std::string t = std::to_string(k);
    requests.push_back({DocKey(k), "//a" + t});
    requests.push_back({DocKey(k), "count(//a" + t + ")"});
    requests.push_back({DocKey(k), "/d" + t + "/b" + t + "/a" + t});
  }
  auto answers = service.SubmitBatch(requests);
  GKX_CHECK(answers.size() == requests.size());
  for (auto& answer : answers) {
    GKX_CHECK(answer.ok());
    run.digests.push_back(testkit::AnswerDigest(answer->value));
  }
  EXPECT_EQ(service.document_count(), static_cast<size_t>(docs));
  return run;
}

TEST(ShardedServiceTest, RouterMatchesSingleServiceExactly) {
  const int kDocs = 12;
  DifferentialRun baseline = RunDifferential(1, kDocs);
  for (int shards : {2, 4}) {
    DifferentialRun sharded = RunDifferential(shards, kDocs);
    ASSERT_EQ(sharded.digests.size(), baseline.digests.size()) << shards;
    for (size_t i = 0; i < baseline.digests.size(); ++i) {
      EXPECT_EQ(sharded.digests[i], baseline.digests[i])
          << "shards=" << shards << " request " << i;
    }
    ASSERT_EQ(sharded.streams.size(), baseline.streams.size()) << shards;
    for (const auto& [key, events] : baseline.streams) {
      ASSERT_TRUE(sharded.streams.count(key)) << shards << " " << key;
      EXPECT_EQ(sharded.streams[key].size(), events.size())
          << "shards=" << shards << " " << key;
      if (sharded.streams[key].size() == events.size()) {
        for (size_t i = 0; i < events.size(); ++i) {
          EXPECT_TRUE(sharded.streams[key][i] == events[i])
              << "shards=" << shards << " " << key << " event " << i;
        }
      }
    }
  }
}

TEST(ShardedServiceTest, SingleDocumentCorpusLeavesShardsEmpty) {
  ShardedQueryService::Options options;
  options.shards = 4;
  ShardedQueryService service(options);
  GKX_CHECK(service.RegisterXml("doc0", DocXml(0)).ok());
  EXPECT_EQ(service.document_count(), 1u);

  // Every request lands on the one owning shard; empty shards answer their
  // empty sub-batches without incident.
  std::vector<ShardedQueryService::Request> requests(
      8, {"doc0", "count(//a0)"});
  auto answers = service.SubmitBatch(requests);
  ASSERT_EQ(answers.size(), 8u);
  for (const auto& answer : answers) {
    ASSERT_TRUE(answer.ok());
    EXPECT_EQ(answer->value.type(), xpath::ValueType::kNumber);
    EXPECT_EQ(answer->value.number(), 2.0);
  }
  // An empty batch is fine too.
  EXPECT_TRUE(service.SubmitBatch({}).empty());

  const int owner = service.ShardOf("doc0");
  std::vector<ServiceStats> per_shard = service.ShardStats();
  for (int s = 0; s < service.shard_count(); ++s) {
    EXPECT_EQ(per_shard[s].requests, s == owner ? 8 : 0) << s;
    EXPECT_EQ(per_shard[s].documents, s == owner ? 1 : 0) << s;
  }
}

TEST(ShardedServiceTest, UnknownKeysFailPerRequestNotPerBatch) {
  ShardedQueryService::Options options;
  options.shards = 2;
  ShardedQueryService service(options);
  GKX_CHECK(service.RegisterXml("doc0", DocXml(0)).ok());
  GKX_CHECK(service.RegisterXml("doc1", DocXml(1)).ok());

  std::vector<ShardedQueryService::Request> requests = {
      {"doc0", "count(//a0)"},
      {"missing-a", "count(//a0)"},
      {"doc1", "count(//a1)"},
      {"missing-b", "count(//a1)"},
  };
  auto answers = service.SubmitBatch(requests);
  ASSERT_EQ(answers.size(), 4u);
  EXPECT_TRUE(answers[0].ok());
  EXPECT_FALSE(answers[1].ok());
  EXPECT_TRUE(answers[2].ok());
  EXPECT_FALSE(answers[3].ok());
}

// -------------------------------------------------------- partial failure

TEST(ShardedServiceTest, ShardFailurePoisonsOnlyItsOwnSlots) {
  // The answer tap (a test-only fault hook inside each shard) throws on any
  // numeric answer equal to 41 — only doc1's count query trips it. The
  // owning shard's whole sub-batch executor dies; the router must still
  // deliver every sibling shard's results.
  ShardedQueryService::Options options;
  options.shards = 2;
  options.shard.answer_tap = [](eval::Engine::Answer* answer) {
    if (answer->value.type() == xpath::ValueType::kNumber &&
        answer->value.number() == 41.0) {
      throw std::runtime_error("injected shard fault");
    }
  };
  ShardedQueryService service(options);
  // doc1 gets 41 <a1> leaves; doc0 keeps its 2 <a0> leaves. They live on
  // different shards (pinned by the ShardMap goldens above).
  ASSERT_NE(service.ShardOf("doc0"), service.ShardOf("doc1"));
  std::string xml1 = "<d1>";
  for (int i = 0; i < 41; ++i) xml1 += "<a1>v</a1>";
  xml1 += "</d1>";
  GKX_CHECK(service.RegisterXml("doc0", DocXml(0)).ok());
  GKX_CHECK(service.RegisterXml("doc1", xml1).ok());

  std::vector<ShardedQueryService::Request> requests = {
      {"doc0", "count(//a0)"},
      {"doc1", "count(//a1)"},  // trips the fault
      {"doc0", "//a0"},
      {"doc1", "//a1"},  // same shard as the fault: poisoned with it
  };
  auto answers = service.SubmitBatch(requests);
  ASSERT_EQ(answers.size(), 4u);

  EXPECT_TRUE(answers[0].ok());
  EXPECT_EQ(answers[0]->value.number(), 2.0);
  EXPECT_TRUE(answers[2].ok());

  const int faulty = service.ShardOf("doc1");
  for (size_t i : {size_t{1}, size_t{3}}) {
    ASSERT_FALSE(answers[i].ok()) << i;
    EXPECT_EQ(answers[i].status().code(), StatusCode::kInternal) << i;
    EXPECT_NE(answers[i].status().message().find(
                  "shard " + std::to_string(faulty) + " sub-batch failed"),
              std::string::npos)
        << answers[i].status().message();
    EXPECT_NE(answers[i].status().message().find("injected shard fault"),
              std::string::npos)
        << answers[i].status().message();
  }
}

// ------------------------------------------------------------------- stats

TEST(ShardedServiceTest, StatsSumAcrossShardsAndExportBreaksDown) {
  ShardedQueryService::Options options;
  options.shards = 2;
  ShardedQueryService service(options);
  const int kDocs = 8;
  for (int k = 0; k < kDocs; ++k) {
    GKX_CHECK(service.RegisterXml(DocKey(k), DocXml(k)).ok());
  }
  std::vector<ShardedQueryService::Request> requests;
  for (int k = 0; k < kDocs; ++k) {
    requests.push_back({DocKey(k), "//a" + std::to_string(k)});
    requests.push_back({DocKey(k), "//a" + std::to_string(k)});  // cache hit
  }
  auto answers = service.SubmitBatch(requests);
  for (const auto& answer : answers) ASSERT_TRUE(answer.ok());

  ServiceStats agg = service.Stats();
  std::vector<ServiceStats> per_shard = service.ShardStats();
  ASSERT_EQ(per_shard.size(), 2u);
  EXPECT_EQ(agg.requests, per_shard[0].requests + per_shard[1].requests);
  EXPECT_EQ(agg.requests, static_cast<int64_t>(requests.size()));
  EXPECT_EQ(agg.documents, per_shard[0].documents + per_shard[1].documents);
  EXPECT_EQ(agg.answer_cache.hits,
            per_shard[0].answer_cache.hits + per_shard[1].answer_cache.hits);
  EXPECT_GT(agg.answer_cache.hits, 0);
  EXPECT_EQ(agg.plan_cache.misses,
            per_shard[0].plan_cache.misses + per_shard[1].plan_cache.misses);
  // The merged latency histogram counts every request exactly once.
  EXPECT_EQ(static_cast<int64_t>(agg.latency.count), agg.requests);

  // Aggregated JSON parses and the shards[] breakdown reconciles.
  const std::string json = service.ExportStats(StatsFormat::kJson);
  Result<obs::json::Value> parsed = obs::json::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::json::Value* shards = parsed->Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  ASSERT_EQ(shards->items().size(), 2u);
  double requests_sum = 0;
  for (const auto& shard_doc : shards->items()) {
    const obs::json::Value* count = shard_doc.FindPath("service.requests");
    ASSERT_NE(count, nullptr);
    requests_sum += count->AsNumber();
  }
  const obs::json::Value* total = parsed->FindPath("service.requests");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(requests_sum, total->AsNumber());
  const obs::json::Value* shard_count = parsed->FindPath("sharding.shards");
  ASSERT_NE(shard_count, nullptr);
  EXPECT_EQ(shard_count->AsNumber(), 2.0);
  // The single-service exporter is unchanged: no sharding section.
  QueryService solo;
  Result<obs::json::Value> solo_doc =
      obs::json::Parse(solo.ExportStats(StatsFormat::kJson));
  ASSERT_TRUE(solo_doc.ok());
  EXPECT_EQ(solo_doc->Find("sharding"), nullptr);
  EXPECT_EQ(solo_doc->Find("shards"), nullptr);
}

// ---------------------------------------------------------- subscriptions

TEST(ShardedServiceTest, PrefixSubscriptionSpansShardsUnderOneId) {
  ShardedQueryService::Options options;
  options.shards = 2;
  ShardedQueryService service(options);
  GKX_CHECK(service.RegisterXml("doc0", DocXml(0)).ok());  // shard 1
  GKX_CHECK(service.RegisterXml("doc1", DocXml(1)).ok());  // shard 0

  std::mutex mu;
  std::vector<mview::SubscriptionEvent> events;
  // The corpus-wide selector must fan in from both shards. "//*" matches
  // both documents' nodes.
  auto sub = service.Subscribe("doc*", "//*",
                               [&](const mview::SubscriptionEvent& event) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 events.push_back(event);
                               });
  ASSERT_TRUE(sub.ok()) << sub.status().message();
  service.FlushSubscriptions();

  std::set<std::string> initial_docs;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& event : events) {
      EXPECT_EQ(event.subscription, *sub);
      initial_docs.insert(event.doc_key);
    }
  }
  EXPECT_EQ(initial_docs, (std::set<std::string>{"doc0", "doc1"}));

  // Churn on each shard reaches the same merged stream.
  for (const char* key : {"doc0", "doc1"}) {
    xml::SubtreeEdit edit;
    edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
    edit.target = 0;
    edit.position = 0;
    auto subtree = xml::ParseDocument("<znew>v</znew>");
    GKX_CHECK(subtree.ok());
    edit.subtree = std::move(*subtree);
    GKX_CHECK(service.UpdateDocument(key, edit).ok());
  }
  service.FlushSubscriptions();
  std::set<std::string> churned_docs;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (size_t i = initial_docs.size(); i < events.size(); ++i) {
      churned_docs.insert(events[i].doc_key);
    }
  }
  EXPECT_EQ(churned_docs, (std::set<std::string>{"doc0", "doc1"}));

  EXPECT_TRUE(service.Unsubscribe(*sub));
  EXPECT_FALSE(service.Unsubscribe(*sub));
  const size_t settled = [&] {
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
  }();
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kSetText;
  edit.target = 1;
  edit.text = "after-unsub";
  GKX_CHECK(service.UpdateDocument("doc0", edit).ok());
  service.FlushSubscriptions();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(events.size(), settled);
}

}  // namespace
}  // namespace gkx::service
