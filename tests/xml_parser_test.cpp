// XML parser and serializer tests: happy paths, every supported construct,
// error paths with positions, the labels-attribute convention, and
// parse/serialize round-trips (including randomized documents).

#include <gtest/gtest.h>

#include "xml/builder.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace gkx::xml {
namespace {

Document MustParseXml(std::string_view text) {
  auto doc = ParseDocument(text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

TEST(XmlParserTest, MinimalDocument) {
  Document doc = MustParseXml("<a/>");
  ASSERT_EQ(doc.size(), 1);
  EXPECT_EQ(doc.TagName(0), "a");
}

TEST(XmlParserTest, NestedElements) {
  Document doc = MustParseXml("<a><b><c/></b><d/></a>");
  ASSERT_EQ(doc.size(), 4);
  EXPECT_EQ(doc.TagName(1), "b");
  EXPECT_EQ(doc.parent(2), 1);
  EXPECT_EQ(doc.parent(3), 0);
}

TEST(XmlParserTest, TextContent) {
  // In whitespace-stripping mode (the default), each text chunk is trimmed.
  Document doc = MustParseXml("<a>hello <b>world</b> tail</a>");
  EXPECT_EQ(doc.text(0), "hellotail");
  EXPECT_EQ(doc.text(1), "world");
  EXPECT_EQ(doc.StringValue(0), "hellotailworld");
}

TEST(XmlParserTest, WhitespaceOnlyTextDropped) {
  Document doc = MustParseXml("<a>\n  <b/>\n</a>");
  EXPECT_TRUE(doc.text(0).empty());
}

TEST(XmlParserTest, WhitespacePreservedWhenConfigured) {
  ParseOptions options;
  options.strip_whitespace_text = false;
  auto doc = ParseDocument("<a> <b/> </a>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->text(0), "  ");
}

TEST(XmlParserTest, Attributes) {
  Document doc = MustParseXml("<a x=\"1\" y='two'/>");
  EXPECT_EQ(doc.AttributeValue(0, "x"), "1");
  EXPECT_EQ(doc.AttributeValue(0, "y"), "two");
}

TEST(XmlParserTest, LabelsAttributeBecomesLabels) {
  Document doc = MustParseXml("<a labels=\"G R I1\"/>");
  EXPECT_TRUE(doc.NodeHasName(0, "G"));
  EXPECT_TRUE(doc.NodeHasName(0, "R"));
  EXPECT_TRUE(doc.NodeHasName(0, "I1"));
  EXPECT_EQ(doc.attribute_count(0), 0);
}

TEST(XmlParserTest, LabelsConventionCanBeDisabled) {
  ParseOptions options;
  options.labels_attribute.clear();
  auto doc = ParseDocument("<a labels=\"G\"/>", options);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->NodeHasName(0, "G"));
  EXPECT_EQ(doc->AttributeValue(0, "labels"), "G");
}

TEST(XmlParserTest, EntitiesDecoded) {
  Document doc = MustParseXml("<a>&lt;&gt;&amp;&quot;&apos;</a>");
  EXPECT_EQ(doc.text(0), "<>&\"'");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  Document doc = MustParseXml("<a>&#65;&#x42;&#xe9;</a>");
  EXPECT_EQ(doc.text(0), "AB\xC3\xA9");  // é in UTF-8
}

TEST(XmlParserTest, CommentsIgnored) {
  Document doc = MustParseXml("<!-- head --><a><!-- inner --><b/></a><!-- tail -->");
  EXPECT_EQ(doc.size(), 2);
}

TEST(XmlParserTest, CdataBecomesText) {
  Document doc = MustParseXml("<a><![CDATA[<raw>&stuff;]]></a>");
  EXPECT_EQ(doc.text(0), "<raw>&stuff;");
}

TEST(XmlParserTest, PrologAndDoctypeSkipped) {
  Document doc = MustParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>");
  EXPECT_EQ(doc.size(), 1);
}

TEST(XmlParserTest, ProcessingInstructionsIgnored) {
  Document doc = MustParseXml("<a><?target data?><b/></a>");
  EXPECT_EQ(doc.size(), 2);
}

// --- error paths ---

void ExpectParseError(std::string_view text, std::string_view fragment) {
  auto doc = ParseDocument(text);
  ASSERT_FALSE(doc.ok()) << "expected failure for: " << text;
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(doc.status().message().find(fragment), std::string::npos)
      << doc.status().message();
}

TEST(XmlParserErrorTest, Empty) { ExpectParseError("", "no root element"); }

TEST(XmlParserErrorTest, MismatchedTags) {
  ExpectParseError("<a><b></a></b>", "mismatched closing tag");
}

TEST(XmlParserErrorTest, UnterminatedElement) {
  ExpectParseError("<a><b>", "unterminated element");
}

TEST(XmlParserErrorTest, MultipleRoots) {
  ExpectParseError("<a/><b/>", "after root element");
}

TEST(XmlParserErrorTest, TextOutsideRoot) {
  ExpectParseError("hello<a/>", "expected root element");
}

TEST(XmlParserErrorTest, UnknownEntity) {
  ExpectParseError("<a>&bogus;</a>", "unknown entity");
}

TEST(XmlParserErrorTest, BadAttribute) {
  ExpectParseError("<a x=1/>", "quoted attribute value");
}

TEST(XmlParserErrorTest, UnterminatedComment) {
  ExpectParseError("<a><!-- forever</a>", "unterminated comment");
}

TEST(XmlParserErrorTest, ErrorPositionIsReported) {
  auto doc = ParseDocument("<a>\n<b x=bad/></a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos)
      << doc.status().message();
}

// --- serializer and round-trips ---

TEST(XmlSerializerTest, BasicShape) {
  Document doc = MustParseXml("<a><b>text</b><c/></a>");
  std::string xml = SerializeDocument(doc);
  EXPECT_NE(xml.find("<a>"), std::string::npos);
  EXPECT_NE(xml.find("<b>text</b>"), std::string::npos);
  EXPECT_NE(xml.find("<c/>"), std::string::npos);
}

TEST(XmlSerializerTest, EscapesSpecials) {
  TreeBuilder builder("a");
  builder.SetText(builder.root(), "x<y>&");
  builder.AddAttribute(builder.root(), "k", "\"v\"");
  Document doc = std::move(builder).Build();
  std::string xml = SerializeDocument(doc);
  EXPECT_NE(xml.find("x&lt;y&gt;&amp;"), std::string::npos);
  EXPECT_NE(xml.find("&quot;v&quot;"), std::string::npos);
}

TEST(XmlSerializerTest, LabelsEmitted) {
  TreeBuilder builder("a");
  builder.AddLabel(builder.root(), "G");
  builder.AddLabel(builder.root(), "R");
  Document doc = std::move(builder).Build();
  std::string xml = SerializeDocument(doc);
  EXPECT_NE(xml.find("labels=\""), std::string::npos);
}

TEST(XmlSerializerTest, SubtreeSerialization) {
  Document doc = MustParseXml("<a><b><c/></b></a>");
  std::string xml = SerializeSubtree(doc, 1);
  EXPECT_EQ(xml.find("<a"), std::string::npos);
  EXPECT_NE(xml.find("<b"), std::string::npos);
}

TEST(XmlRoundTripTest, HandWrittenDocument) {
  Document original = MustParseXml(
      "<a x=\"1\"><b labels=\"G I1\">text</b><c><d y='2'>deep</d></c></a>");
  Document reparsed = MustParseXml(SerializeDocument(original));
  EXPECT_TRUE(original.StructurallyEquals(reparsed));
}

class XmlRoundTripRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripRandomTest, SerializeParseIsIdentity) {
  Rng rng(GetParam());
  RandomDocumentOptions options;
  options.node_count = 60;
  options.max_extra_labels = 2;
  options.text_probability = 0.5;
  Document original = RandomDocument(&rng, options);
  for (int indent : {0, 2}) {
    SerializeOptions ser;
    ser.indent = indent;
    auto reparsed = ParseDocument(SerializeDocument(original, ser));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(original.StructurallyEquals(*reparsed));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripRandomTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace gkx::xml
