// Shared experiment-harness helpers: the "paper says / we measure" header
// and a column-aligned table printer. Header-only (every bench_*.cpp is its
// own binary).

#ifndef GKX_BENCH_BENCH_UTIL_HPP_
#define GKX_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/stopwatch.hpp"
#include "base/string_util.hpp"

namespace gkx::bench {

/// Prints the experiment banner: what the paper claims, what this binary
/// measures, and how to read the shape.
inline void PrintHeader(const std::string& experiment_id,
                        const std::string& paper_claim,
                        const std::string& measurement) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("  paper:    %s\n", paper_claim.c_str());
  std::printf("  measured: %s\n", measurement.c_str());
  std::printf("================================================================\n");
}

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    GKX_CHECK_EQ(row.size(), headers_.size());
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Num(int64_t v) { return std::to_string(v); }

inline std::string Millis(double seconds, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, seconds * 1e3);
  return std::string(buf);
}

inline std::string Ratio(double value, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

inline std::string PassFail(bool ok) { return ok ? "ok" : "MISMATCH"; }

}  // namespace gkx::bench

#endif  // GKX_BENCH_BENCH_UTIL_HPP_
