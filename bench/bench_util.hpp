// Shared experiment-harness helpers: the "paper says / we measure" header
// and a column-aligned table printer. Header-only (every bench_*.cpp is its
// own binary).

#ifndef GKX_BENCH_BENCH_UTIL_HPP_
#define GKX_BENCH_BENCH_UTIL_HPP_

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "base/check.hpp"
#include "base/stopwatch.hpp"
#include "base/string_util.hpp"

// Build provenance, stamped by CMake (add_compile_definitions); the
// fallbacks cover out-of-tree compiles.
#ifndef GKX_GIT_REV
#define GKX_GIT_REV "unknown"
#endif
#ifndef GKX_BUILD_TYPE
#define GKX_BUILD_TYPE "unknown"
#endif

namespace gkx::bench {

/// Current UTC time as "YYYY-MM-DDTHH:MM:SSZ".
inline std::string UtcTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return std::string(buf);
}

/// Peak resident set size of this process, in bytes (VmHWM from
/// /proc/self/status, with a getrusage fallback). A high-water mark: once
/// a phase has touched N bytes the value never drops, so benches that care
/// about per-phase footprint must run phases in separate processes or
/// record the delta against the mark at phase start.
inline int64_t PeakRssBytes() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    long kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb > 0) return static_cast<int64_t>(kb) * 1024;
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
  }
  return 0;
}

/// Prints the experiment banner: what the paper claims, what this binary
/// measures, and how to read the shape.
inline void PrintHeader(const std::string& experiment_id,
                        const std::string& paper_claim,
                        const std::string& measurement) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment_id.c_str());
  std::printf("  paper:    %s\n", paper_claim.c_str());
  std::printf("  measured: %s\n", measurement.c_str());
  std::printf("================================================================\n");
}

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) {
    GKX_CHECK_EQ(row.size(), headers_.size());
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Num(int64_t v) { return std::to_string(v); }

/// Resolves `name` against the repository root — the nearest ancestor of
/// the current directory containing ROADMAP.md — so the BENCH_*.json
/// trajectory files land in-tree (and get committed) no matter where the
/// binary runs from (./build locally, the checkout root in CI). Falls back
/// to the bare name when no repo root is found.
inline std::string RepoRootPath(const std::string& name) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (fs::path dir = fs::current_path(ec); !ec && !dir.empty();
       dir = dir.parent_path()) {
    if (fs::exists(dir / "ROADMAP.md", ec)) return (dir / name).string();
    if (dir == dir.root_path()) break;
  }
  return name;
}

/// JSON-encodes a string (quotes + escapes).
inline std::string JsonStr(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// JSON-encodes a number (integers without a fraction, else shortest float).
inline std::string JsonNum(double v) {
  if (v == static_cast<int64_t>(v)) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

/// Machine-readable benchmark emitter so the perf trajectory is trackable
/// across PRs: one JSON object {"bench", "seed", "rows": [...]} per file.
/// Row values must be pre-encoded with JsonStr/JsonNum.
class JsonReport {
 public:
  JsonReport(std::string bench, uint64_t seed)
      : bench_(std::move(bench)), seed_(seed) {}

  /// Every row is stamped with the process's peak RSS at emission time, so
  /// the committed trajectory tracks memory footprint alongside latency.
  void AddRow(std::vector<std::pair<std::string, std::string>> fields) {
    fields.emplace_back("peak_rss_bytes",
                        JsonNum(static_cast<double>(PeakRssBytes())));
    rows_.push_back(std::move(fields));
  }

  /// Writes the report and prints the path (checked). Every file carries
  /// provenance — git rev, UTC timestamp, hardware threads, build type — so
  /// the committed trajectory stays interpretable across machines and PRs.
  void Write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    GKX_CHECK(f != nullptr);
    std::fprintf(f,
                 "{\"bench\": %s, \"seed\": %llu, \"git_rev\": %s, "
                 "\"utc\": %s, \"threads\": %u, \"build_type\": %s, "
                 "\"rows\": [",
                 JsonStr(bench_).c_str(),
                 static_cast<unsigned long long>(seed_),
                 JsonStr(GKX_GIT_REV).c_str(),
                 JsonStr(UtcTimestamp()).c_str(),
                 std::thread::hardware_concurrency(),
                 JsonStr(GKX_BUILD_TYPE).c_str());
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                     JsonStr(rows_[r][i].first).c_str(),
                     rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    GKX_CHECK(std::fclose(f) == 0);
    std::printf("  wrote %s (%zu rows)\n\n", path.c_str(), rows_.size());
  }

 private:
  std::string bench_;
  uint64_t seed_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

inline std::string Millis(double seconds, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, seconds * 1e3);
  return std::string(buf);
}

inline std::string Ratio(double value, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return std::string(buf);
}

inline std::string PassFail(bool ok) { return ok ? "ok" : "MISMATCH"; }

}  // namespace gkx::bench

#endif  // GKX_BENCH_BENCH_UTIL_HPP_
