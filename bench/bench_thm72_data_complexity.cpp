// EXP-T7.2 — Theorem 7.2: the data complexity of XPath is (very) low — the
// paper places it in L via context-value tables. With the query fixed,
// evaluation time should grow mildly (near-linearly for these queries) in
// |D|, far below the combined-complexity worst case.

#include "bench/bench_util.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx {
namespace {

void Run() {
  // Three fixed queries of increasing flavor: PF, Core, positional pWF.
  struct NamedQuery {
    const char* label;
    xpath::Query query;
  };
  NamedQuery queries[] = {
      {"PF: t1//t2", xpath::MustParse("descendant::t1/descendant::t2")},
      {"Core: negated condition",
       xpath::MustParse("descendant::t1[child::t2 and not(child::t3)]")},
      {"pWF: positional",
       xpath::MustParse("descendant::t1/child::*[position() = last()]")},
  };

  for (auto& named : queries) {
    std::printf("fixed query: %s\n", named.label);
    bench::Table table({"|D| nodes", "cvt ms", "linear ms (if Core)",
                        "cvt table entries", "entries per node"});
    Rng rng(72);
    for (int32_t nodes : {2000, 4000, 8000, 16000, 32000, 64000}) {
      xml::RandomDocumentOptions options;
      options.node_count = nodes;
      xml::Document doc = xml::RandomDocument(&rng, options);

      eval::CvtEvaluator cvt;
      Stopwatch sw;
      auto value = cvt.EvaluateAtRoot(doc, named.query);
      const double cvt_seconds = sw.ElapsedSeconds();
      GKX_CHECK(value.ok());

      eval::CoreLinearEvaluator linear;
      sw.Restart();
      auto linear_value = linear.EvaluateAtRoot(doc, named.query);
      std::string linear_ms = "(not Core)";
      if (linear_value.ok()) {
        linear_ms = bench::Millis(sw.ElapsedSeconds());
        GKX_CHECK(linear_value->Equals(*value));
      }
      table.AddRow({bench::Num(nodes), bench::Millis(cvt_seconds), linear_ms,
                    bench::Num(cvt.last_table_entries()),
                    bench::Ratio(static_cast<double>(cvt.last_table_entries()) /
                                 nodes)});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T7.2 (Theorem 7.2): data complexity is low (in L)",
      "with the query fixed, XPath evaluation is in LOGSPACE via one "
      "context-value table per query node",
      "time and table-entry growth vs |D| for fixed queries — near-linear "
      "shape, entries/node bounded by a query-dependent constant");
  gkx::Run();
  return 0;
}
