// EXP-R5.6 — Remark 5.6: pWF evaluation is "massively parallelizable"
// (LOGCFL ⊆ NC2). The Theorem 5.5 dom-loop is embarrassingly parallel: each
// candidate's Singleton-Success check is independent. This bench sweeps the
// thread count and reports speedup over the sequential NAuxPDA engine.

#include "bench/bench_util.hpp"
#include "eval/parallel_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx {
namespace {

void Run() {
  Rng rng(56);
  xml::RandomDocumentOptions options;
  options.node_count = 700;
  xml::Document doc = xml::RandomDocument(&rng, options);
  xpath::Query query = xpath::MustParse(
      "/descendant::t1[child::t2 and position() + 1 >= last() - 3]"
      "/descendant-or-self::*[following-sibling::t3 or child::t0]");

  // Sequential baseline.
  eval::ParallelPdaEvaluator baseline{
      eval::ParallelPdaEvaluator::Options{.threads = 1}};
  auto expected = baseline.EvaluateNodeSet(doc, query);
  GKX_CHECK(expected.ok());
  Stopwatch sw;
  GKX_CHECK(baseline.EvaluateNodeSet(doc, query).ok());
  const double base_seconds = sw.ElapsedSeconds();

  bench::Table table({"threads", "eval ms", "speedup", "result matches"});
  for (int threads : {1, 2, 4, 8, 16}) {
    eval::ParallelPdaEvaluator parallel{
        eval::ParallelPdaEvaluator::Options{.threads = threads}};
    sw.Restart();
    auto nodes = parallel.EvaluateNodeSet(doc, query);
    const double seconds = sw.ElapsedSeconds();
    GKX_CHECK(nodes.ok());
    table.AddRow({bench::Num(threads), bench::Millis(seconds),
                  bench::Ratio(base_seconds / seconds),
                  bench::PassFail(*nodes == *expected)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-R5.6 (Remark 5.6): parallel evaluation of pWF",
      "LOGCFL ⊆ NC2: pWF queries can be evaluated by polylog-depth circuits; "
      "the practical reading is that Singleton-Success checks for different "
      "candidate nodes are independent",
      "wall-clock speedup of the parallel dom-loop vs threads, identical "
      "results at every width");
  gkx::Run();
  return 0;
}
