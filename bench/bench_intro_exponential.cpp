// EXP-INTRO — the paper's motivating claim (§1): "all publicly available
// XPath engines take time exponential in the size of the input queries",
// while the dynamic-programming approach of [3] is polynomial. The naive
// engine here is exactly such a spec-following engine; the CVT engine is the
// paper's DP algorithm; core-linear is the O(|D|·|Q|) specialist. The
// nested-condition family makes |Q| grow linearly with depth while naive
// work explodes combinatorially.

#include "bench/bench_util.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"

namespace gkx {
namespace {

void Run() {
  xml::Document doc = xml::ChainDocument(20, /*tag_alphabet=*/1);
  bench::Table table({"depth", "|Q|", "naive evals", "naive ms", "cvt evals",
                      "cvt ms", "linear ms", "results agree"});
  eval::NaiveEvaluator naive;
  eval::CvtEvaluator cvt;
  eval::CoreLinearEvaluator linear;
  constexpr int kNaiveDepthCap = 6;  // beyond this the blow-up takes minutes
  for (int depth = 1; depth <= 9; ++depth) {
    // arms=2 with sharing-free conditions: |Q| = Θ(depth) per arm chain but
    // naive recomputation is combinatorial in the depth.
    xpath::Query query = xpath::NestedConditionQuery(depth, 2);

    std::string naive_evals = "(capped)";
    std::string naive_ms = "(capped)";
    eval::Value naive_value;
    bool have_naive = false;
    if (depth <= kNaiveDepthCap) {
      Stopwatch sw;
      auto value = naive.EvaluateAtRoot(doc, query);
      naive_ms = bench::Millis(sw.ElapsedSeconds());
      GKX_CHECK(value.ok());
      naive_evals = bench::Num(naive.last_eval_count());
      naive_value = *value;
      have_naive = true;
    }

    Stopwatch sw;
    auto cvt_value = cvt.EvaluateAtRoot(doc, query);
    const double cvt_seconds = sw.ElapsedSeconds();
    GKX_CHECK(cvt_value.ok());

    sw.Restart();
    auto linear_value = linear.EvaluateAtRoot(doc, query);
    const double linear_seconds = sw.ElapsedSeconds();
    GKX_CHECK(linear_value.ok());

    const bool agree = cvt_value->Equals(*linear_value) &&
                       (!have_naive || naive_value.Equals(*cvt_value));
    table.AddRow({bench::Num(depth), bench::Num(query.size()), naive_evals,
                  naive_ms, bench::Num(cvt.last_eval_count()),
                  bench::Millis(cvt_seconds), bench::Millis(linear_seconds),
                  bench::PassFail(agree)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-INTRO (§1): exponential engines vs the polynomial DP algorithm",
      "functional implementations of the standard are exponential in |Q|; "
      "the context-value-table algorithm of [3] is polynomial (Prop 2.7); "
      "Core XPath even runs in O(|D|·|Q|)",
      "work and time vs nesting depth on the nested-condition family: naive "
      "explodes, CVT and core-linear stay flat — who wins and where the "
      "curves part is the claim");
  gkx::Run();
  return 0;
}
