// EXP-T7.3 — Theorem 7.3: the query complexity of XPath (without
// multiplication/concat) is in L. With a small fixed document, evaluation
// time should grow polynomially (near-linearly here) in |Q| even for deep
// query towers — the bottom-up context-value-table pass touches each query
// node a bounded number of times.

#include "bench/bench_util.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/generator.hpp"
#include "xpath/build.hpp"
#include "xpath/generator.hpp"

namespace gkx {
namespace {

namespace build = xpath::build;

/// Deep Core tower: nested single-arm conditions, |Q| = Θ(depth).
xpath::Query Tower(int depth) { return xpath::NestedConditionQuery(depth, 1); }

/// Long PF chain: |Q| = Θ(steps).
xpath::Query Chain(int steps) {
  std::vector<xpath::Step> chain;
  for (int i = 0; i < steps; ++i) {
    chain.push_back(build::MakeStep(
        i % 2 == 0 ? xpath::Axis::kDescendantOrSelf : xpath::Axis::kParent,
        xpath::NodeTest::Any()));
  }
  return xpath::Query::Create(build::Path(/*absolute=*/true, std::move(chain)));
}

void Run() {
  Rng rng(73);
  xml::RandomDocumentOptions options;
  options.node_count = 60;  // fixed, small document
  xml::Document doc = xml::RandomDocument(&rng, options);

  bench::Table table({"family", "|Q|", "cvt ms", "us per query node (≈const)"});
  eval::CvtEvaluator cvt;
  for (int depth : {16, 32, 64, 128, 256}) {
    xpath::Query query = Tower(depth);
    Stopwatch sw;
    GKX_CHECK(cvt.EvaluateAtRoot(doc, query).ok());
    const double seconds = sw.ElapsedSeconds();
    table.AddRow({"condition tower", bench::Num(query.size()),
                  bench::Millis(seconds),
                  bench::Ratio(seconds * 1e6 / query.size(), 3)});
  }
  for (int steps : {64, 128, 256, 512, 1024}) {
    xpath::Query query = Chain(steps);
    Stopwatch sw;
    GKX_CHECK(cvt.EvaluateAtRoot(doc, query).ok());
    const double seconds = sw.ElapsedSeconds();
    table.AddRow({"axis chain", bench::Num(query.size()), bench::Millis(seconds),
                  bench::Ratio(seconds * 1e6 / query.size(), 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T7.3 (Theorem 7.3): query complexity is low (in L without * and "
      "concat)",
      "with the document fixed, the bottom-up context-value-table pass "
      "visits each query node O(1) times over constant-size tables",
      "time vs |Q| on deep condition towers and long axis chains over a "
      "fixed 60-node document; the normalized column should stay flat");
  gkx::Run();
  return 0;
}
