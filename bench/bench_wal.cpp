// WAL benchmark — the cost of durability (ROADMAP item 2).
//
// Phase A, durable update throughput: the EXP-DELTA subtree-update workload
// (one writer per document, kSetText patches) with and without the WAL, at
// 1 and at N threads. Group commit is the claim under test: one fdatasync
// covers every update that arrives within the commit window, so the
// durable N-thread rate must stay within 2x of the in-memory rate
// (self-check: durable >= 0.5x in-memory at N threads; the run fails
// otherwise).
//
// Phase B, recovery scaling: journals with suffixes of M updates (no
// checkpoint in between) are reopened cold; replay time must scale
// linearly in M (self-check: total time ratio across a 16x suffix ratio
// stays far below the 256x a quadratic replay would show).
//
// Phase C, recovery soak smoke: one short testkit::RunRecoverySoak
// (kill/checkpoint/reopen rounds, ExhaustiveEquals corpus oracle) must
// pass.
//
//   ./bench_wal                  # full run, writes BENCH_wal.json
//   ./bench_wal --smoke          # CI-sized
//
// Flags: --threads= writer threads for phase A (default 4), --updates=
// updates per thread (default 300), --nodes= document size in nodes
// (default 60000 — sized so the O(|D|) splice is the unit of work, as in
// EXP-DELTA), --smoke halves everything.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "base/stopwatch.hpp"
#include "bench/bench_util.hpp"
#include "service/document_store.hpp"
#include "testkit/recovery_soak.hpp"
#include "testkit/workload.hpp"
#include "wal/wal.hpp"
#include "xml/generator.hpp"

namespace {

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::string FreshDir(const char* name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "gkx_bench_wal" / name)
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// One writer per document applying kSetText patches — the EXP-DELTA update
/// shape. Returns updates/second. `wal_dir` empty = in-memory baseline.
double UpdateThroughput(int threads, int updates_per_thread, int nodes,
                        const std::string& wal_dir) {
  gkx::service::DocumentStore store;
  std::unique_ptr<gkx::wal::Wal> wal;
  if (!wal_dir.empty()) {
    gkx::wal::WalOptions options;
    options.dir = wal_dir;
    gkx::wal::RecoveryReport report;
    auto opened = gkx::wal::Wal::OpenAndRecover(options, &store, &report);
    GKX_CHECK(opened.ok());
    wal = std::move(opened).value();
    store.AttachWal(wal.get());
  }
  for (int t = 0; t < threads; ++t) {
    GKX_CHECK(store
                  .Put("doc" + std::to_string(t),
                       gkx::xml::ChainDocument(nodes))
                  .ok());
  }
  gkx::Stopwatch wall;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&store, t, updates_per_thread, nodes] {
      const std::string key = "doc" + std::to_string(t);
      gkx::xml::SubtreeEdit edit;
      edit.kind = gkx::xml::SubtreeEdit::Kind::kSetText;
      for (int i = 0; i < updates_per_thread; ++i) {
        edit.target = 1 + (i * 37) % (nodes - 1);
        edit.text = "t" + std::to_string(i);
        GKX_CHECK(store.Update(key, edit).ok());
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds = wall.ElapsedSeconds();
  if (wal != nullptr) store.AttachWal(nullptr);
  wal.reset();
  if (!wal_dir.empty()) std::filesystem::remove_all(wal_dir);
  return static_cast<double>(threads) * updates_per_thread / seconds;
}

/// Builds a journal whose suffix is `suffix` update records (fsync off —
/// the bytes are identical, building is just faster), then measures a cold
/// OpenAndRecover. Returns seconds; checks the replay really covered the
/// suffix.
double RecoveryTime(int suffix, int nodes, int64_t* replayed) {
  const std::string dir = FreshDir("recovery");
  {
    gkx::service::DocumentStore store;
    gkx::wal::WalOptions options;
    options.dir = dir;
    options.fsync = false;
    options.group_commit_window_us = 0;
    gkx::wal::RecoveryReport report;
    auto wal = gkx::wal::Wal::OpenAndRecover(options, &store, &report);
    GKX_CHECK(wal.ok());
    store.AttachWal(wal->get());
    GKX_CHECK(store.Put("doc", gkx::xml::ChainDocument(nodes)).ok());
    gkx::xml::SubtreeEdit edit;
    edit.kind = gkx::xml::SubtreeEdit::Kind::kSetText;
    for (int i = 0; i < suffix; ++i) {
      edit.target = 1 + (i * 37) % (nodes - 1);
      edit.text = "t" + std::to_string(i);
      GKX_CHECK(store.Update("doc", edit).ok());
    }
    store.AttachWal(nullptr);
  }
  gkx::service::DocumentStore recovered;
  gkx::wal::WalOptions options;
  options.dir = dir;
  gkx::wal::RecoveryReport report;
  gkx::Stopwatch wall;
  auto wal = gkx::wal::Wal::OpenAndRecover(options, &recovered, &report);
  const double seconds = wall.ElapsedSeconds();
  GKX_CHECK(wal.ok());
  // The put + every update sit in the suffix (no checkpoint since).
  GKX_CHECK(report.records_replayed == suffix + 1);
  *replayed = report.records_replayed;
  wal->reset();
  std::filesystem::remove_all(dir);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = FlagSet(argc, argv, "smoke");
  const int threads =
      static_cast<int>(FlagValue(argc, argv, "threads", 4));
  const int updates = static_cast<int>(
      FlagValue(argc, argv, "updates", smoke ? 120 : 300));
  const int nodes =
      static_cast<int>(FlagValue(argc, argv, "nodes", smoke ? 30000 : 60000));

  gkx::bench::PrintHeader(
      "wal — durable delta write-ahead log (ROADMAP item 2)",
      "group commit amortizes fsync across concurrent writers; replay "
      "is linear in the journal suffix",
      "subtree-update throughput with/without the WAL, cold recovery "
      "time vs suffix length, kill/reopen soak");

  gkx::bench::JsonReport json("wal", 1);
  bool failed = false;

  // ------------------------------------------------------------- phase A
  gkx::bench::Table throughput(
      {"mode", "threads", "updates", "updates/s", "vs in-mem", "verdict"});
  const double inmem_1 = UpdateThroughput(1, updates, nodes, "");
  const double durable_1 =
      UpdateThroughput(1, updates, nodes, FreshDir("durable1"));
  const double inmem_n = UpdateThroughput(threads, updates, nodes, "");
  const double durable_n =
      UpdateThroughput(threads, updates, nodes, FreshDir("durableN"));
  // The acceptance bar: at N threads the commit window batches concurrent
  // updates into shared fsyncs, keeping durability within 2x.
  const double ratio_n = durable_n / inmem_n;
  const bool throughput_ok = ratio_n >= 0.5;
  failed |= !throughput_ok;
  throughput.AddRow({"in-memory", gkx::bench::Num(1), gkx::bench::Num(updates),
                     gkx::bench::Num(static_cast<int64_t>(inmem_1)), "1.00",
                     ""});
  throughput.AddRow({"durable", gkx::bench::Num(1), gkx::bench::Num(updates),
                     gkx::bench::Num(static_cast<int64_t>(durable_1)),
                     gkx::bench::Ratio(durable_1 / inmem_1), ""});
  throughput.AddRow({"in-memory", gkx::bench::Num(threads),
                     gkx::bench::Num(updates),
                     gkx::bench::Num(static_cast<int64_t>(inmem_n)), "1.00",
                     ""});
  throughput.AddRow({"durable", gkx::bench::Num(threads),
                     gkx::bench::Num(updates),
                     gkx::bench::Num(static_cast<int64_t>(durable_n)),
                     gkx::bench::Ratio(ratio_n),
                     gkx::bench::PassFail(throughput_ok)});
  throughput.Print();
  json.AddRow({{"phase", gkx::bench::JsonStr("update_throughput")},
               {"nodes", gkx::bench::JsonNum(nodes)},
               {"threads", gkx::bench::JsonNum(threads)},
               {"inmem_1t_ups", gkx::bench::JsonNum(inmem_1)},
               {"durable_1t_ups", gkx::bench::JsonNum(durable_1)},
               {"inmem_nt_ups", gkx::bench::JsonNum(inmem_n)},
               {"durable_nt_ups", gkx::bench::JsonNum(durable_n)},
               {"durable_vs_inmem_nt", gkx::bench::JsonNum(ratio_n)},
               {"self_check_min_ratio", gkx::bench::JsonNum(0.5)},
               {"ok", gkx::bench::JsonNum(throughput_ok ? 1.0 : 0.0)}});

  // ------------------------------------------------------------- phase B
  gkx::bench::Table recovery(
      {"suffix", "replayed", "recover_ms", "us/record", "verdict"});
  const int recovery_nodes = smoke ? 1000 : 2000;
  const std::vector<int> suffixes =
      smoke ? std::vector<int>{64, 256, 1024}
            : std::vector<int>{128, 512, 2048};
  std::vector<double> times;
  for (const int suffix : suffixes) {
    int64_t replayed = 0;
    const double seconds = RecoveryTime(suffix, recovery_nodes, &replayed);
    times.push_back(seconds);
    recovery.AddRow({gkx::bench::Num(suffix), gkx::bench::Num(replayed),
                     gkx::bench::Millis(seconds),
                     gkx::bench::Ratio(seconds * 1e6 / replayed, 1), ""});
    json.AddRow({{"phase", gkx::bench::JsonStr("recovery_scaling")},
                 {"suffix", gkx::bench::JsonNum(suffix)},
                 {"nodes", gkx::bench::JsonNum(recovery_nodes)},
                 {"recover_seconds", gkx::bench::JsonNum(seconds)},
                 {"us_per_record",
                  gkx::bench::JsonNum(seconds * 1e6 / replayed)}});
  }
  // Linearity: the largest suffix is 16x the smallest; a linear replay
  // lands near 16x the time, a quadratic one near 256x. The bar (64x)
  // leaves room for cold-cache noise at the small end while still failing
  // anything super-linear.
  const double scale_ratio = times.back() / times.front();
  const bool recovery_ok = scale_ratio <= 64.0;
  failed |= !recovery_ok;
  recovery.AddRow({"ratio", "", gkx::bench::Ratio(scale_ratio, 1), "<= 64x",
                   gkx::bench::PassFail(recovery_ok)});
  recovery.Print();
  json.AddRow({{"phase", gkx::bench::JsonStr("recovery_linearity")},
               {"time_ratio_16x_suffix", gkx::bench::JsonNum(scale_ratio)},
               {"self_check_max_ratio", gkx::bench::JsonNum(64.0)},
               {"ok", gkx::bench::JsonNum(recovery_ok ? 1.0 : 0.0)}});

  // ------------------------------------------------------------- phase C
  gkx::testkit::WorkloadSpec spec;
  spec.seed = 7;
  spec.operations = smoke ? 160 : 240;
  spec.documents = 4;
  spec.min_document_nodes = 24;
  spec.max_document_nodes = 64;
  spec.queries = 8;
  spec.churn_probability = 0.5;
  auto schedule = gkx::testkit::CompileWorkload(spec);
  GKX_CHECK(schedule.ok());
  gkx::testkit::RecoverySoakOptions soak;
  soak.rounds = smoke ? 3 : 4;
  soak.threads = 4;
  soak.wal_dir = FreshDir("soak");
  auto soak_report = gkx::testkit::RunRecoverySoak(*schedule, soak);
  std::printf("\n%s\n", soak_report.Summary().c_str());
  failed |= !soak_report.ok();
  json.AddRow({{"phase", gkx::bench::JsonStr("recovery_soak")},
               {"mutations", gkx::bench::JsonNum(
                                 static_cast<double>(soak_report.mutations))},
               {"recoveries", gkx::bench::JsonNum(static_cast<double>(
                                  soak_report.recoveries))},
               {"records_replayed",
                gkx::bench::JsonNum(
                    static_cast<double>(soak_report.records_replayed))},
               {"ok", gkx::bench::JsonNum(soak_report.ok() ? 1.0 : 0.0)}});
  std::filesystem::remove_all(soak.wal_dir);

  json.Write(gkx::bench::RepoRootPath("BENCH_wal.json"));
  std::printf("bench_wal: %s\n", failed ? "FAIL" : "ok");
  return failed ? 1 : 0;
}
