// EXP-P2.7 — Proposition 2.7: Core XPath is evaluable in O(|D|·|Q|).
// Two sweeps with the set-at-a-time linear engine: |D| grows at fixed Q
// (time/|D| should be ~constant), and |Q| grows at fixed D (time/|Q| should
// be ~constant). The naive engine rides along as the contrast.

#include "bench/bench_util.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/generator.hpp"
#include "xpath/build.hpp"
#include "xpath/parser.hpp"

namespace gkx {
namespace {

namespace build = xpath::build;

xpath::Query FixedCoreQuery() {
  return xpath::MustParse(
      "descendant::t1[child::t2 and not(following-sibling::*[child::t3])]"
      "/ancestor-or-self::*[child::t0 or child::t1]");
}

/// A Core query of ~`conditions` nested predicates (linear size).
xpath::Query SizedCoreQuery(int conditions) {
  xpath::ExprPtr condition = build::StepPath(build::AnyStep(xpath::Axis::kChild));
  for (int i = 0; i < conditions; ++i) {
    std::vector<xpath::ExprPtr> preds;
    preds.push_back(std::move(condition));
    condition = build::StepPath(build::MakeStep(
        i % 2 == 0 ? xpath::Axis::kDescendant : xpath::Axis::kChild,
        xpath::NodeTest::Name("t" + std::to_string(i % 4)), std::move(preds)));
  }
  std::vector<xpath::ExprPtr> preds;
  preds.push_back(std::move(condition));
  std::vector<xpath::Step> steps;
  steps.push_back(build::AnyStep(xpath::Axis::kDescendantOrSelf, std::move(preds)));
  return xpath::Query::Create(build::Path(true, std::move(steps)));
}

void RunDataSweep() {
  xpath::Query query = FixedCoreQuery();
  eval::CoreLinearEvaluator linear;
  bench::Table table(
      {"|D| nodes", "|Q|", "linear ms", "ms per 1k nodes (≈const)"});
  for (int32_t depth : {8, 10, 12, 14, 16}) {
    xml::Document doc = xml::BalancedDocument(2, depth);
    // Warm + average 3 runs.
    GKX_CHECK(linear.EvaluateAtRoot(doc, query).ok());
    Stopwatch sw;
    for (int i = 0; i < 3; ++i) {
      GKX_CHECK(linear.EvaluateAtRoot(doc, query).ok());
    }
    const double seconds = sw.ElapsedSeconds() / 3;
    table.AddRow({bench::Num(doc.size()), bench::Num(query.size()),
                  bench::Millis(seconds),
                  bench::Ratio(seconds * 1e3 / (doc.size() / 1000.0), 4)});
  }
  table.Print();
}

void RunQuerySweep() {
  xml::Document doc = xml::BalancedDocument(2, 11);  // ~4k nodes
  eval::CoreLinearEvaluator linear;
  bench::Table table({"|Q|", "linear ms", "ms per query node (≈const)"});
  for (int conditions : {8, 16, 32, 64, 128}) {
    xpath::Query query = SizedCoreQuery(conditions);
    GKX_CHECK(linear.EvaluateAtRoot(doc, query).ok());
    Stopwatch sw;
    for (int i = 0; i < 3; ++i) {
      GKX_CHECK(linear.EvaluateAtRoot(doc, query).ok());
    }
    const double seconds = sw.ElapsedSeconds() / 3;
    table.AddRow({bench::Num(query.size()), bench::Millis(seconds),
                  bench::Ratio(seconds * 1e6 / query.size(), 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-P2.7 (Proposition 2.7): Core XPath in O(|D|·|Q|)",
      "Core XPath queries can be evaluated in time linear in both the "
      "document and the query",
      "time vs |D| at fixed Q and time vs |Q| at fixed D for the "
      "set-at-a-time engine; the normalized columns should stay roughly "
      "constant");
  gkx::RunDataSweep();
  gkx::RunQuerySweep();
  return 0;
}
