// EXP-TAB1 / EXP-T5.5 — Table 1 and Theorem 5.5: the NAuxPDA evaluator.
// Runs a pWF corpus (hand-written + random) through the Singleton-Success
// engine, reports how often each Table 1 local consistency check fires,
// verifies agreement with the CVT engine (Thm 5.5: node-set evaluation =
// Singleton-Success in a loop over dom), and times both.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx {
namespace {

void Run() {
  Rng rng(55);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 120;
  xml::Document doc = xml::RandomDocument(&rng, doc_options);

  std::vector<xpath::Query> corpus;
  for (const char* text : {
           "/descendant::t1/child::t2",
           "/descendant::t1[child::t2 and position() + 1 = last()]",
           "child::*[position() = last()]/descendant::t0",
           "/descendant::t2[following-sibling::t1 or child::t3]",
           "descendant::t0[2]/child::*",
           "/descendant::t3[position() * 2 <= last()]",
           "/descendant::t1[boolean(child::t2 | child::t3)]",
       }) {
    corpus.push_back(xpath::MustParse(text));
  }
  xpath::RandomQueryOptions query_options;
  query_options.fragment = xpath::Fragment::kPWF;
  for (int i = 0; i < 24; ++i) {
    corpus.push_back(xpath::RandomQuery(&rng, query_options));
  }

  eval::PdaEvaluator pda;
  eval::CvtEvaluator cvt;
  eval::Table1Stats totals;
  int agree = 0;
  int node_set_queries = 0;
  double pda_seconds = 0;
  double cvt_seconds = 0;
  for (const xpath::Query& query : corpus) {
    Stopwatch sw;
    auto pda_value = pda.Evaluate(doc, query, eval::RootContext(doc));
    pda_seconds += sw.ElapsedSeconds();
    if (!pda_value.ok()) continue;  // scalar corner the generator produced
    sw.Restart();
    auto cvt_value = cvt.Evaluate(doc, query, eval::RootContext(doc));
    cvt_seconds += sw.ElapsedSeconds();
    GKX_CHECK(cvt_value.ok());
    ++node_set_queries;
    if (pda_value->Equals(*cvt_value)) ++agree;

    const eval::Table1Stats& s = pda.last_stats();
    totals.locstep += s.locstep;
    totals.step_predicate += s.step_predicate;
    totals.composition += s.composition;
    totals.union_branch += s.union_branch;
    totals.root_path += s.root_path;
    totals.position_fn += s.position_fn;
    totals.last_fn += s.last_fn;
    totals.constant += s.constant;
    totals.boolean_fn += s.boolean_fn;
    totals.and_op += s.and_op;
    totals.or_op += s.or_op;
    totals.relop += s.relop;
    totals.arithop += s.arithop;
  }

  std::printf("corpus: %zu pWF queries, |D| = %d nodes\n", corpus.size(),
              doc.size());
  std::printf("agreement pda == cvt: %d/%d   (pda %s ms, cvt %s ms)\n\n", agree,
              node_set_queries, bench::Millis(pda_seconds).c_str(),
              bench::Millis(cvt_seconds).c_str());

  bench::Table table({"Table 1 consistency check", "times fired"});
  table.AddRow({"chi::t (leaf location step)", bench::Num(totals.locstep)});
  table.AddRow({"chi::t[e] (step with predicate)", bench::Num(totals.step_predicate)});
  table.AddRow({"pi1/pi2 (composition, guessed middle)", bench::Num(totals.composition)});
  table.AddRow({"pi1|pi2 (union branch)", bench::Num(totals.union_branch)});
  table.AddRow({"/pi (context reset to root)", bench::Num(totals.root_path)});
  table.AddRow({"position() = p", bench::Num(totals.position_fn)});
  table.AddRow({"last() = s", bench::Num(totals.last_fn)});
  table.AddRow({"constant c", bench::Num(totals.constant)});
  table.AddRow({"boolean(pi)", bench::Num(totals.boolean_fn)});
  table.AddRow({"e1 and e2", bench::Num(totals.and_op)});
  table.AddRow({"e1 or e2", bench::Num(totals.or_op)});
  table.AddRow({"e1 RelOp e2", bench::Num(totals.relop)});
  table.AddRow({"e1 ArithOp e2", bench::Num(totals.arithop)});
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-TAB1 / EXP-T5.5 (Lemma 5.4, Table 1, Theorem 5.5): the NAuxPDA "
      "Singleton-Success algorithm for pWF",
      "pWF evaluation is decided by an NAuxPDA performing the local "
      "consistency checks of Table 1; node sets are never materialized "
      "(positions/sizes streamed); full evaluation loops over dom",
      "per-row firing counts of the Table 1 checks over a pWF corpus, and "
      "agreement of the PDA engine with the CVT engine");
  gkx::Run();
  return 0;
}
