// Ablation (DESIGN.md §3.2) — eager vs lazy context-value tables. The
// paper's bottom-up algorithm ([3], recalled in Thm 7.2) fills the full
// table of every node-dependent subexpression; the demand-driven variant
// memoizes only contexts that actually arise. Same asymptotic worst case —
// this bench measures how far apart they are on selective vs exhaustive
// workloads.

#include "bench/bench_util.hpp"
#include "eval/cvt_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"

namespace gkx {
namespace {

struct Workload {
  const char* label;
  xpath::Query query;
};

void Run() {
  Rng rng(88);
  xml::RandomDocumentOptions options;
  options.node_count = 4000;
  xml::Document doc = xml::RandomDocument(&rng, options);

  Workload workloads[] = {
      // Selective: an absolute path touches one context at the root.
      {"selective: /t1/t2 chain",
       xpath::MustParse("/child::t1/child::t2/child::t3")},
      // Root-anchored condition: predicate contexts are few.
      {"selective: anchored filter",
       xpath::MustParse("/child::*[child::t1]/child::t2")},
      // Exhaustive: relative conditions evaluated from many nodes.
      {"exhaustive: descendant filter",
       xpath::MustParse("descendant::t1[child::t2 and child::t3]")},
      // Dense tower: every subcondition needed at most nodes.
      {"exhaustive: nested tower", xpath::NestedConditionQuery(6, 1)},
      // Positional: position-dependent predicate tables are demand-filled
      // in both modes; the difference is the node-keyed feeder tables.
      {"positional: last()-filter",
       xpath::MustParse("descendant::t2/child::*[position() = last()]")},
  };

  bench::Table table({"workload", "|Q|", "lazy ms", "eager ms",
                      "lazy table entries", "eager table entries",
                      "results agree"});
  for (Workload& workload : workloads) {
    eval::CvtEvaluator lazy;
    eval::CvtEvaluator eager{eval::CvtEvaluator::Options{.eager = true}};

    Stopwatch sw;
    auto lazy_value = lazy.EvaluateAtRoot(doc, workload.query);
    const double lazy_seconds = sw.ElapsedSeconds();
    GKX_CHECK(lazy_value.ok());

    sw.Restart();
    auto eager_value = eager.EvaluateAtRoot(doc, workload.query);
    const double eager_seconds = sw.ElapsedSeconds();
    GKX_CHECK(eager_value.ok());

    table.AddRow({workload.label, bench::Num(workload.query.size()),
                  bench::Millis(lazy_seconds), bench::Millis(eager_seconds),
                  bench::Num(lazy.last_table_entries()),
                  bench::Num(eager.last_table_entries()),
                  bench::PassFail(lazy_value->Equals(*eager_value))});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "Ablation: eager (paper-faithful bottom-up) vs lazy (demand-driven) "
      "context-value tables",
      "the [3] algorithm computes one table per query node over all "
      "meaningful contexts; demand-driven filling has the same worst case",
      "time and total table entries for both modes on selective vs "
      "exhaustive workloads over a 4000-node document");
  gkx::Run();
  return 0;
}
