// EXP-T5.9 — Theorems 5.9/6.3: pWF plus bounded-depth negation stays in
// LOGCFL. Random positive queries are wrapped in not() towers of depth
// k ∈ {0..3}; the de Morgan pushdown of the Thm 5.9 proof is applied, the
// PDA engine (with the matching depth budget) is compared to the CVT
// engine, and evaluation time is reported as a function of k.

#include "bench/bench_util.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "xml/generator.hpp"
#include "xpath/analysis.hpp"
#include "xpath/build.hpp"
#include "xpath/generator.hpp"
#include "xpath/transform.hpp"

namespace gkx {
namespace {

namespace build = xpath::build;

/// Wraps a positive condition in k alternating not() levels and attaches it
/// as the predicate of /descendant-or-self::*[...].
xpath::Query WrapWithNegation(Rng* rng, int depth) {
  xpath::RandomQueryOptions options;
  options.fragment = xpath::Fragment::kPositiveCore;
  options.absolute_probability = 0;
  xpath::Query inner = xpath::RandomQuery(rng, options);
  xpath::ExprPtr condition = build::CloneExpr(inner.root());
  for (int i = 0; i < depth; ++i) {
    // Alternate not(...) with a conjunction so depth actually nests.
    condition = build::Not(std::move(condition));
    if (i + 1 < depth) {
      condition = build::And(
          std::move(condition),
          build::StepPath(build::AnyStep(xpath::Axis::kDescendantOrSelf)));
      condition = build::Not(std::move(condition));
      ++i;
    }
  }
  std::vector<xpath::ExprPtr> preds;
  preds.push_back(std::move(condition));
  std::vector<xpath::Step> steps;
  steps.push_back(build::AnyStep(xpath::Axis::kDescendantOrSelf, std::move(preds)));
  return xpath::Query::Create(build::Path(/*absolute=*/true, std::move(steps)));
}

void Run() {
  Rng rng(59);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 80;
  xml::Document doc = xml::RandomDocument(&rng, doc_options);

  bench::Table table({"not() depth k", "queries", "agree (pda==cvt)",
                      "max depth seen", "pda ms", "cvt ms"});
  for (int depth : {0, 1, 2, 3}) {
    eval::PdaEvaluator pda{eval::PdaEvaluator::Options{.max_not_depth = depth}};
    eval::CvtEvaluator cvt;
    int agree = 0;
    int total = 0;
    int max_seen = 0;
    double pda_seconds = 0;
    double cvt_seconds = 0;
    for (int i = 0; i < 20; ++i) {
      xpath::Query query = WrapWithNegation(&rng, depth);
      // The Thm 5.9 proof first applies de Morgan so not() faces paths only.
      xpath::Query pushed = xpath::PushNegationsDown(query);
      max_seen = std::max(max_seen, xpath::Analyze(pushed).max_not_depth);

      Stopwatch sw;
      auto pda_value = pda.Evaluate(doc, pushed, eval::RootContext(doc));
      pda_seconds += sw.ElapsedSeconds();
      if (!pda_value.ok()) continue;  // pushdown may still exceed the budget
      sw.Restart();
      auto cvt_value = cvt.Evaluate(doc, query, eval::RootContext(doc));
      cvt_seconds += sw.ElapsedSeconds();
      GKX_CHECK(cvt_value.ok());
      ++total;
      if (pda_value->Equals(*cvt_value)) ++agree;
    }
    table.AddRow({bench::Num(depth), bench::Num(total),
                  bench::Num(agree) + "/" + bench::Num(total),
                  bench::Num(max_seen), bench::Millis(pda_seconds),
                  bench::Millis(cvt_seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T5.9 (Theorems 5.9/6.3): bounded-depth negation stays in LOGCFL",
      "after a de Morgan rewrite, not() faces only location paths; each is "
      "handled by a dom-loop, nested at most k deep, preserving the "
      "NAuxPDA's polynomial time / log space",
      "PDA-with-budget-k vs CVT agreement on randomized queries wrapped in "
      "k nested negations, plus time as a function of k");
  gkx::Run();
  return 0;
}
