// EXP-SHARD — shared-nothing corpus sharding (src/service/sharded_service).
//
// EXP-SHARD-SCALE: the standing-query churn regime from EXP-MVIEW, scaled.
// Every churn event pays an O(S) subscription-manager scan (selector +
// footprint screening over ALL standing queries under that manager's lock)
// before the mview layer can decide nothing needs re-evaluation. With S
// standing queries over one service that scan is the per-update floor;
// behind the router each shard holds only the subscriptions whose documents
// it owns, so the same churn event scans S/N entries on exactly one shard.
// The measured workload interleaves hot-document churn bursts (a run of
// cheap text edits against one document — ids stable, footprint disjoint
// from every standing query, so the scan is pure screening cost) with warm
// scatter-gather read batches, and reports batch QPS at N ∈ {1, 2, 4} on
// the SAME machine (this box has one core, so the bars measure per-shard
// work reduction, not parallelism — the honest pure-read row below shows
// ~1x, as it must on one core). Two effects stack: each screening scan
// walks S/N entries instead of S, and the S/N-entry scan block is small
// enough to stay cache-resident across a burst while the unsharded S-entry
// block is not — the classic partitioning dividend (per-shard working set
// fits in cache), and why the 4-shard bar lands above 4x here. Self-checked
// bars:
//   * batch QPS >= 1.7x at 2 shards and >= 3.0x at 4 shards vs N=1;
//   * every answer digest byte-identical across shard counts.
//
// EXP-SHARD-WIRE: the same router behind the gkx::net TCP front-end on
// loopback. One blocking client, batch sizes 1/64/256; the codec
// round-trips answers exactly (raw IEEE-754 bits, id lists), so wire
// digests must equal in-process digests byte-for-byte. Self-checked bar:
// wire QPS >= 0.5x in-process at batch >= 64 (framing + 2 syscalls
// amortize; batch=1 is reported unbarred — it prices a full round trip).
//
// --smoke shrinks the corpus and iteration counts for CI and gates only
// byte-identity and the wire floor (timing bars need the full run).
// Also writes BENCH_shard_stats.json — the 2-shard router's ExportStats
// document — which tools/check_stats_json re-validates (aggregate ==
// sum of shards[]).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/stopwatch.hpp"
#include "bench/bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/shard_map.hpp"
#include "service/sharded_service.hpp"
#include "testkit/oracle.hpp"
#include "xml/edit.hpp"

namespace gkx {
namespace {

double FlagValue(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

bool FlagSet(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

struct ShardSpec {
  int documents = 192;
  int standing_queries = 8192;
  int iterations = 120;
  int edits_per_iteration = 4;
  int batch_size = 64;
  int warmup_iterations = 8;
};

std::string DocKey(int k) { return "doc" + std::to_string(k); }

// Per-document-unique tag family: footprints, cache keys, and standing
// queries are pairwise disjoint across the corpus.
std::string DocXml(int k) {
  const std::string t = std::to_string(k);
  std::string xml = "<d" + t + ">";
  for (int s = 0; s < 4; ++s) {
    xml += "<b" + t + ">";
    for (int l = 0; l < 3; ++l) {
      xml += "<a" + t + ">v</a" + t + ">";
    }
    xml += "</b" + t + ">";
  }
  xml += "<c" + t + ">tail</c" + t + "></d" + t + ">";
  return xml;
}

std::string DocQuery(int k, int q) {
  const std::string t = std::to_string(k);
  return q == 0 ? "//a" + t : "count(//a" + t + ")";
}

std::vector<service::ShardedQueryService::Request> MakeBatch(
    const ShardSpec& spec, int iteration) {
  std::vector<service::ShardedQueryService::Request> batch;
  batch.reserve(static_cast<size_t>(spec.batch_size));
  for (int i = 0; i < spec.batch_size; ++i) {
    const int pick = iteration * spec.batch_size + i;
    batch.push_back({DocKey(pick % spec.documents), DocQuery(pick % spec.documents, pick % 2)});
  }
  return batch;
}

std::unique_ptr<service::ShardedQueryService> BuildRouter(
    const ShardSpec& spec, int shards, bool answer_cache = true) {
  service::ShardedQueryService::Options options;
  options.shards = shards;
  options.shard.answer_cache_enabled = answer_cache;
  auto router = std::make_unique<service::ShardedQueryService>(options);
  for (int k = 0; k < spec.documents; ++k) {
    GKX_CHECK(router->RegisterXml(DocKey(k), DocXml(k)).ok());
  }
  // S standing queries, round-robin over the corpus, all exact-key node-set
  // watchers. The callbacks never fire during the measured region (text
  // churn is footprint-disjoint), but every churn event must still screen
  // all of them — that screening is the workload.
  //
  // Registration is grouped by owning shard: this whole bench runs N shards
  // inside ONE process on ONE heap, and round-robin registration would
  // interleave the shards' Subscription nodes at stride N — a scan of S/N
  // entries would then touch the same cache lines as a scan of S, and the
  // measurement would be about allocator interleaving, not per-shard work.
  // A real shared-nothing deployment is a process (and heap) per shard, so
  // grouped allocation is the faithful model, not a flattering one.
  const service::ShardMap placement(shards);
  for (int shard = 0; shard < shards; ++shard) {
    for (int s = 0; s < spec.standing_queries; ++s) {
      const int k = s % spec.documents;
      if (placement.ShardOf(DocKey(k)) != shard) continue;
      auto sub = router->Subscribe(DocKey(k), DocQuery(k, 0),
                                   [](const mview::SubscriptionEvent&) {});
      GKX_CHECK(sub.ok());
    }
  }
  router->FlushSubscriptions();
  return router;
}

struct ScaleResult {
  double qps = 0;           // batch answers per second, measured region
  double elapsed = 0;
  int64_t answers = 0;
  int64_t scans_screened = 0;  // skipped_disjoint delta over the region
  std::vector<std::string> digests;
};

xml::SubtreeEdit TextEdit(int serial) {
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kSetText;
  edit.target = 2;  // first a<k> leaf (same shape in every document)
  edit.text = "r" + std::to_string(serial);
  return edit;
}

ScaleResult RunScale(service::ShardedQueryService* router,
                     const ShardSpec& spec, bool churn) {
  ScaleResult result;

  int serial = 0;
  double edit_seconds = 0;
  auto iterate = [&](int iteration, bool measured) {
    if (churn) {
      Stopwatch edit_timer;
      // A burst of edits against one document per iteration (the document
      // rotates, so every shard takes its share of the churn). Each edit
      // pays the owning shard's full screening scan; the burst is what
      // lets a cache-resident S/N scan block show its locality win.
      for (int e = 0; e < spec.edits_per_iteration; ++e) {
        const int target = iteration % spec.documents;
        GKX_CHECK(
            router->UpdateDocument(DocKey(target), TextEdit(serial++)).ok());
      }
      if (measured) edit_seconds += edit_timer.ElapsedSeconds();
    }
    auto answers = router->SubmitBatch(MakeBatch(spec, iteration));
    for (auto& answer : answers) {
      GKX_CHECK(answer.ok());
      if (measured) {
        result.digests.push_back(testkit::AnswerDigest(answer->value));
        ++result.answers;
      }
    }
  };

  for (int i = 0; i < spec.warmup_iterations; ++i) iterate(i, false);
  const int64_t screened_before = router->Stats().subscriptions.skipped_disjoint;
  Stopwatch timer;
  for (int i = 0; i < spec.iterations; ++i) iterate(i, true);
  result.elapsed = timer.ElapsedSeconds();
  result.scans_screened =
      router->Stats().subscriptions.skipped_disjoint - screened_before;
  result.qps = static_cast<double>(result.answers) / result.elapsed;
  if (churn && std::getenv("GKX_BENCH_SHARD_PROBE") != nullptr) {
    const double edits =
        static_cast<double>(spec.iterations) * spec.edits_per_iteration;
    std::printf("  [probe] edits %.0fns/edit, reads %.0fus/batch\n",
                edit_seconds / edits * 1e9,
                (result.elapsed - edit_seconds) / spec.iterations * 1e6);
  }
  return result;
}

struct WireResult {
  double inproc_qps = 0;
  double wire_qps = 0;
  double ratio = 0;
  bool digests_match = false;
};

WireResult RunWire(service::ShardedQueryService* router, const ShardSpec& spec,
                   int batch_size, int repetitions) {
  WireResult result;
  std::vector<service::ShardedQueryService::Request> local;
  std::vector<net::WireRequest> wire;
  for (int i = 0; i < batch_size; ++i) {
    const int k = i % spec.documents;
    local.push_back({DocKey(k), DocQuery(k, i % 2)});
    wire.push_back({DocKey(k), DocQuery(k, i % 2)});
  }
  // Warm both paths, keeping the digests for the identity check.
  std::vector<std::string> local_digests, wire_digests;
  for (auto& answer : router->SubmitBatch(local)) {
    GKX_CHECK(answer.ok());
    local_digests.push_back(testkit::AnswerDigest(answer->value));
  }

  net::Server server(router, {});
  GKX_CHECK(server.Start().ok());
  net::Client client;
  GKX_CHECK(client.Connect("127.0.0.1", server.port()).ok());
  for (auto& answer : client.SubmitBatch(wire)) {
    GKX_CHECK(answer.ok());
    wire_digests.push_back(testkit::AnswerDigest(answer->value));
  }
  result.digests_match = local_digests == wire_digests;

  Stopwatch timer;
  int64_t answers = 0;
  for (int r = 0; r < repetitions; ++r) {
    auto batch = router->SubmitBatch(local);
    answers += static_cast<int64_t>(batch.size());
  }
  result.inproc_qps = static_cast<double>(answers) / timer.ElapsedSeconds();

  timer.Restart();
  answers = 0;
  for (int r = 0; r < repetitions; ++r) {
    auto batch = client.SubmitBatch(wire);
    answers += static_cast<int64_t>(batch.size());
  }
  result.wire_qps = static_cast<double>(answers) / timer.ElapsedSeconds();
  result.ratio = result.wire_qps / result.inproc_qps;

  client.Close();
  server.Stop();
  return result;
}

}  // namespace
}  // namespace gkx

int main(int argc, char** argv) {
  const bool smoke = gkx::FlagSet(argc, argv, "smoke");
  gkx::ShardSpec spec;
  if (smoke) {
    spec.documents = 48;
    spec.standing_queries = 1024;
    spec.iterations = 12;
    spec.warmup_iterations = 2;
  }
  spec.documents = static_cast<int>(
      gkx::FlagValue(argc, argv, "docs", spec.documents));
  spec.standing_queries = static_cast<int>(
      gkx::FlagValue(argc, argv, "subs", spec.standing_queries));
  spec.iterations = static_cast<int>(
      gkx::FlagValue(argc, argv, "iters", spec.iterations));

  gkx::bench::PrintHeader(
      "EXP-SHARD — shared-nothing sharding: scatter-gather scaling + wire",
      "the serving layer above GKP03: per-update standing-query screening "
      "is O(S) under one manager; sharding makes it O(S/N) on one shard",
      "batch QPS at 1/2/4 shards under churn + standing queries (bars: "
      ">=1.7x @2, >=3.0x @4, byte-identical answers), and loopback wire "
      "QPS vs in-process (bar: >=0.5x at batch >= 64)");

  bool failed = false;
  gkx::bench::JsonReport json("shard", 0);

  // --probe-shards=N runs ONE shard count in this process and exits —
  // pair with GKX_BENCH_SHARD_PROBE=1 (prints per-edit / per-batch split)
  // to study a single configuration without cross-run heap effects.
  if (const double probe = gkx::FlagValue(argc, argv, "probe-shards", 0);
      probe > 0) {
    auto router = gkx::BuildRouter(spec, static_cast<int>(probe));
    gkx::ScaleResult run = gkx::RunScale(router.get(), spec, true);
    std::printf("probe shards=%d qps=%.0f\n", static_cast<int>(probe),
                run.qps);
    return 0;
  }

  // ------------------------------------------------------------- scale
  std::printf("EXP-SHARD-SCALE: docs=%d standing=%d iters=%d batch=%d "
              "edits/iter=%d\n\n",
              spec.documents, spec.standing_queries, spec.iterations,
              spec.batch_size, spec.edits_per_iteration);
  gkx::bench::Table scale_table(
      {"shards", "churn", "qps", "speedup", "screened", "answers", "verdict"});
  std::map<int, gkx::ScaleResult> churn_runs;
  double baseline_qps = 0;
  // All three routers are built BEFORE any is measured: building each on
  // the heap holes left by tearing down the previous one re-interleaves
  // its subscriptions through freed chunks, which re-creates exactly the
  // cross-shard cache-line sharing the grouped registration avoids (it
  // showed up as N=2 reproducibly landing ~25% under the c + s/N model
  // while N=1 and N=4 fit it).
  std::map<int, std::unique_ptr<gkx::service::ShardedQueryService>> routers;
  for (int shards : {1, 2, 4}) routers[shards] = gkx::BuildRouter(spec, shards);
  for (int shards : {1, 2, 4}) {
    gkx::ScaleResult run =
        gkx::RunScale(routers[shards].get(), spec, /*churn=*/true);
    if (shards == 1) baseline_qps = run.qps;
    const double speedup = run.qps / baseline_qps;
    const double bar = shards == 1 ? 0.0 : shards == 2 ? 1.7 : 3.0;
    const bool identical =
        shards == 1 || run.digests == churn_runs[1].digests;
    const bool pass = identical && (smoke || bar == 0.0 || speedup >= bar);
    if (!pass) failed = true;
    scale_table.AddRow(
        {gkx::bench::Num(shards), "yes",
         gkx::bench::Num(static_cast<int64_t>(run.qps)),
         gkx::bench::Ratio(speedup),
         gkx::bench::Num(run.scans_screened),
         gkx::bench::Num(run.answers),
         bar == 0.0 ? (identical ? "baseline" : "MISMATCH")
                    : (identical ? (pass ? "ok" : "BELOW-BAR")
                                 : "DIGEST-MISMATCH")});
    json.AddRow(
        {{"experiment", gkx::bench::JsonStr("scale")},
         {"shards", gkx::bench::JsonNum(shards)},
         {"churn", gkx::bench::JsonNum(1)},
         {"qps", gkx::bench::JsonNum(run.qps)},
         {"speedup", gkx::bench::JsonNum(speedup)},
         {"bar", gkx::bench::JsonNum(bar)},
         {"digests_identical", gkx::bench::JsonNum(identical ? 1 : 0)},
         {"screened", gkx::bench::JsonNum(static_cast<double>(run.scans_screened))},
         {"smoke", gkx::bench::JsonNum(smoke ? 1 : 0)},
         {"ok", gkx::bench::JsonNum(pass ? 1 : 0)}});
    churn_runs[shards] = std::move(run);
  }
  routers.clear();
  // The honest row: pure warm reads, no churn — on one core the router adds
  // scatter overhead and removes nothing, so this sits near (or below) 1x.
  // Unbarred; committed so the scaling table can't be read as a parallelism
  // claim.
  {
    gkx::ShardSpec read_spec = spec;
    read_spec.standing_queries = std::min(spec.standing_queries, 512);
    double read_baseline = 0;
    for (int shards : {1, 4}) {
      auto router = gkx::BuildRouter(read_spec, shards);
      gkx::ScaleResult run =
          gkx::RunScale(router.get(), read_spec, /*churn=*/false);
      if (shards == 1) read_baseline = run.qps;
      scale_table.AddRow({gkx::bench::Num(shards), "no",
                          gkx::bench::Num(static_cast<int64_t>(run.qps)),
                          gkx::bench::Ratio(run.qps / read_baseline), "-",
                          gkx::bench::Num(run.answers), "unbarred"});
      json.AddRow({{"experiment", gkx::bench::JsonStr("scale")},
                   {"shards", gkx::bench::JsonNum(shards)},
                   {"churn", gkx::bench::JsonNum(0)},
                   {"qps", gkx::bench::JsonNum(run.qps)},
                   {"speedup", gkx::bench::JsonNum(run.qps / read_baseline)},
                   {"bar", gkx::bench::JsonNum(0)},
                   {"ok", gkx::bench::JsonNum(1)}});
    }
  }
  scale_table.Print();

  // -------------------------------------------------------------- wire
  const int wire_reps = smoke ? 10 : 60;
  std::printf("EXP-SHARD-WIRE: loopback TCP, 2 shards, %d reps per batch\n\n",
              wire_reps);
  gkx::bench::Table wire_table(
      {"batch", "mode", "inproc_qps", "wire_qps", "ratio", "verdict"});
  {
    gkx::ShardSpec wire_spec = spec;
    wire_spec.standing_queries = std::min(spec.standing_queries, 512);
    // The barred rows serve evaluated queries (answer cache off — the
    // Options comment's "measure raw evaluation throughput" mode): a wire
    // front-end exists to put remote clients in front of the evaluator, so
    // that is the serving cost it is priced against. The warm-cache row is
    // kept, unbarred, to show the other regime honestly: against ~1µs hash
    // hits nothing framed over TCP can stay within 2x.
    auto eval_router = gkx::BuildRouter(wire_spec, 2, /*answer_cache=*/false);
    auto cached_router = gkx::BuildRouter(wire_spec, 2, /*answer_cache=*/true);
    struct WireCase {
      const char* mode;
      gkx::service::ShardedQueryService* router;
      int batch;
      bool barred;
    };
    const WireCase cases[] = {{"eval", eval_router.get(), 1, false},
                              {"eval", eval_router.get(), 64, true},
                              {"eval", eval_router.get(), 256, true},
                              {"cached", cached_router.get(), 64, false}};
    for (const WireCase& c : cases) {
      gkx::WireResult run = gkx::RunWire(c.router, wire_spec, c.batch,
                                         c.batch == 1 ? wire_reps * 8
                                                      : wire_reps);
      const bool pass = run.digests_match && (!c.barred || run.ratio >= 0.5);
      if (!pass) failed = true;
      wire_table.AddRow(
          {gkx::bench::Num(c.batch), c.mode,
           gkx::bench::Num(static_cast<int64_t>(run.inproc_qps)),
           gkx::bench::Num(static_cast<int64_t>(run.wire_qps)),
           gkx::bench::Ratio(run.ratio),
           !run.digests_match ? "DIGEST-MISMATCH"
           : !c.barred        ? "unbarred"
           : pass             ? "ok"
                              : "BELOW-BAR"});
      json.AddRow({{"experiment", gkx::bench::JsonStr("wire")},
                   {"mode", gkx::bench::JsonStr(c.mode)},
                   {"batch", gkx::bench::JsonNum(c.batch)},
                   {"inproc_qps", gkx::bench::JsonNum(run.inproc_qps)},
                   {"wire_qps", gkx::bench::JsonNum(run.wire_qps)},
                   {"ratio", gkx::bench::JsonNum(run.ratio)},
                   {"bar", gkx::bench::JsonNum(c.barred ? 0.5 : 0)},
                   {"digests_identical",
                    gkx::bench::JsonNum(run.digests_match ? 1 : 0)},
                   {"ok", gkx::bench::JsonNum(pass ? 1 : 0)}});
    }
    wire_table.Print();
    auto router = std::move(cached_router);

    // Stats export for tools/check_stats_json: the 2-shard router's
    // aggregated document with the shards[] breakdown.
    const std::string stats =
        router->ExportStats(gkx::service::StatsFormat::kJson);
    const std::string path = gkx::bench::RepoRootPath("BENCH_shard_stats.json");
    std::FILE* f = std::fopen(path.c_str(), "w");
    GKX_CHECK(f != nullptr);
    std::fputs(stats.c_str(), f);
    GKX_CHECK(std::fclose(f) == 0);
    std::printf("  wrote %s (2-shard stats export)\n", path.c_str());
  }

  json.Write(gkx::bench::RepoRootPath("BENCH_shard.json"));
  std::printf("EXP-SHARD %s\n", failed ? "FAIL" : "ok");
  return failed ? 1 : 0;
}
