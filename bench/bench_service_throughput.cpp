// EXP-SVC — the serving layer above the paper's evaluators. Measures
// queries/sec through QueryService::SubmitBatch on a mixed PF + Core +
// full-XPath workload over three registered documents, comparing
//   * cold: every request text is novel (the plan cache always misses, so
//     each request pays lex + parse + classify + canonicalize), vs
//   * warm: the same texts repeated (raw cache hits, evaluation only),
// at batch sizes 1 / 64 / 1024. The paper's combined-complexity results
// price a single evaluation; this experiment prices the serving overhead a
// plan cache amortizes away. The regime is many small-to-medium documents —
// the workload where compile cost and evaluation cost are comparable and a
// serving layer earns its keep (on huge documents evaluation dominates and
// the cache's effect shrinks toward 1×, which the large-batch rows show).

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "service/query_service.hpp"
#include "xml/generator.hpp"

namespace gkx {
namespace {

// Mixed-fragment templates: PF shapes (indexed and not), positive Core,
// Core with negation, positional pWF, full-XPath scalar, union, and a
// hybrid shape (PF spine + one positional predicate => staged plan).
const char* kTemplates[] = {
    "/descendant::t0/child::t1",
    "//t2",
    "/descendant::t1[child::t2]",
    "/descendant::t0[not(child::t3)]",
    "/descendant::t2[position() = 2]",
    "count(/descendant::t1)",
    "/descendant::t3 | //t0/child::t2",
    "/descendant::t1/parent::t0",
    "/descendant::t0/child::t1[position() = 2]/descendant::t2",
};

/// Request i of a workload. Cold mode (`serial` >= 0) appends a
/// semantically-inert, syntactically-novel tail so no two texts ever repeat:
/// a union branch selecting an absent tag for node-set templates, a "+ 0*k"
/// term for the scalar template.
service::QueryService::Request MakeRequest(int i, int serial) {
  static const char* kDocs[] = {"d0", "d1", "d2"};
  std::string query = kTemplates[i % std::size(kTemplates)];
  if (serial >= 0) {
    if (query.compare(0, 6, "count(") == 0) {
      query += " + 0 * " + std::to_string(serial);
    } else {
      query += " | /child::zz" + std::to_string(serial);
    }
  }
  return {kDocs[i % 3], std::move(query)};
}

std::vector<service::QueryService::Request> MakeBatch(int batch_size,
                                                      int* serial) {
  std::vector<service::QueryService::Request> requests;
  requests.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    requests.push_back(MakeRequest(i, serial ? (*serial)++ : -1));
  }
  return requests;
}

double RunOnce(service::QueryService& svc,
               const std::vector<service::QueryService::Request>& requests) {
  Stopwatch sw;
  auto responses = svc.SubmitBatch(requests);
  const double seconds = sw.ElapsedSeconds();
  for (const auto& response : responses) GKX_CHECK(response.ok());
  return seconds;
}

void RegisterCorpus(service::QueryService& svc) {
  Rng rng(97);  // identical documents in every configuration
  xml::RandomDocumentOptions options;
  for (int d = 0; d < 3; ++d) {
    options.node_count = 100 << d;  // 100 / 200 / 400 nodes
    GKX_CHECK(
        svc.RegisterDocument("d" + std::to_string(d),
                             xml::RandomDocument(&rng, options))
            .ok());
  }
}

void Run(bench::JsonReport* json) {
  bench::Table table({"batch", "mode", "requests", "total ms", "qps",
                      "hit rate", "warm/cold"});
  std::map<std::string, int64_t> segment_routes;

  for (int batch_size : {1, 64, 1024}) {
    // Enough requests per mode for a stable clock reading.
    const int rounds = batch_size == 1 ? 512 : (batch_size == 64 ? 16 : 2);
    double cold_qps = 0.0;
    for (const bool warm : {false, true}) {
      // Fresh service per mode: the cold path must never see a warm cache.
      // Plan-cache capacity exceeds the largest batch so cold misses are
      // misses, not evictions of entries we are about to reuse.
      service::QueryService::Options options;
      options.plan_cache.capacity = 4096;
      service::QueryService svc(options);
      RegisterCorpus(svc);

      int serial = 0;
      if (warm) {
        // Untimed fill: after this, every request text is cached.
        RunOnce(svc, MakeBatch(batch_size, nullptr));
      }
      double seconds = 0.0;
      int total = 0;
      for (int round = 0; round < rounds; ++round) {
        auto requests = MakeBatch(batch_size, warm ? nullptr : &serial);
        seconds += RunOnce(svc, requests);
        total += batch_size;
      }
      const double qps = static_cast<double>(total) / seconds;
      if (!warm) cold_qps = qps;
      const auto counters = svc.plan_cache().counters();
      table.AddRow({bench::Num(batch_size), warm ? "warm" : "cold",
                    bench::Num(total), bench::Millis(seconds),
                    bench::Num(static_cast<int64_t>(qps)),
                    bench::Ratio(counters.HitRate()),
                    warm ? bench::Ratio(qps / cold_qps) : std::string("-")});
      json->AddRow(
          {{"batch", bench::JsonNum(batch_size)},
           {"mode", bench::JsonStr(warm ? "warm" : "cold")},
           {"requests", bench::JsonNum(total)},
           {"total_ms", bench::JsonNum(seconds * 1e3)},
           {"qps", bench::JsonNum(qps)},
           {"hit_rate", bench::JsonNum(counters.HitRate())},
           {"warm_over_cold", bench::JsonNum(warm ? qps / cold_qps : 0.0)}});
      for (const auto& [route, count] : svc.Stats().segment_route_counts) {
        segment_routes[route] += count;
      }
    }
  }
  table.Print();

  // Per-segment route census across the whole run: the hybrid template
  // shows up as pf-frontier and cvt *segments*, not as a cvt query.
  bench::Table routes({"segment route", "segments executed"});
  for (const auto& [route, count] : segment_routes) {
    routes.AddRow({route, bench::Num(count)});
    json->AddRow({{"segment_route", bench::JsonStr(route)},
                  {"segments", bench::JsonNum(static_cast<double>(count))}});
  }
  routes.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-SVC: multi-document query service, cold vs warm plan cache",
      "serving context: the paper prices one evaluation; a service amortizes "
      "lex/parse/classify across repeated queries via a plan cache and "
      "batches concurrent work over a shared pool",
      "queries/sec through SubmitBatch at batch sizes 1/64/1024, novel "
      "query texts (cold, every request compiles) vs repeated texts (warm, "
      "raw cache hits) — expect warm >= 2x cold and hit rate ~1.0 when warm");
  gkx::bench::JsonReport json("service_throughput", 97);
  gkx::Run(&json);
  json.Write("BENCH_service.json");
  return 0;
}
