// EXP-SVC — the serving layer above the paper's evaluators. Measures
// queries/sec through QueryService::SubmitBatch on a mixed PF + Core +
// full-XPath workload over three registered documents, comparing
//   * cold: every request text is novel (the plan cache always misses, so
//     each request pays lex + parse + classify + canonicalize), vs
//   * warm: the same texts repeated (raw cache hits, evaluation only),
// at batch sizes 1 / 64 / 1024. The paper's combined-complexity results
// price a single evaluation; this experiment prices the serving overhead a
// plan cache amortizes away. The regime is many small-to-medium documents —
// the workload where compile cost and evaluation cost are comparable and a
// serving layer earns its keep (on huge documents evaluation dominates and
// the cache's effect shrinks toward 1×, which the large-batch rows show).

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "service/query_service.hpp"
#include "xml/builder.hpp"
#include "xml/edit.hpp"
#include "xml/generator.hpp"
#include "xml/serializer.hpp"

namespace gkx {
namespace {

// Mixed-fragment templates: PF shapes (indexed and not), positive Core,
// Core with negation, positional pWF, full-XPath scalar, union, and a
// hybrid shape (PF spine + one positional predicate => staged plan).
const char* kTemplates[] = {
    "/descendant::t0/child::t1",
    "//t2",
    "/descendant::t1[child::t2]",
    "/descendant::t0[not(child::t3)]",
    "/descendant::t2[position() = 2]",
    "count(/descendant::t1)",
    "/descendant::t3 | //t0/child::t2",
    "/descendant::t1/parent::t0",
    "/descendant::t0/child::t1[position() = 2]/descendant::t2",
};

/// Request i of a workload. Cold mode (`serial` >= 0) appends a
/// semantically-inert, syntactically-novel tail so no two texts ever repeat:
/// a union branch selecting an absent tag for node-set templates, a "+ 0*k"
/// term for the scalar template.
service::QueryService::Request MakeRequest(int i, int serial) {
  static const char* kDocs[] = {"d0", "d1", "d2"};
  std::string query = kTemplates[i % std::size(kTemplates)];
  if (serial >= 0) {
    if (query.compare(0, 6, "count(") == 0) {
      query += " + 0 * " + std::to_string(serial);
    } else {
      query += " | /child::zz" + std::to_string(serial);
    }
  }
  return {kDocs[i % 3], std::move(query)};
}

std::vector<service::QueryService::Request> MakeBatch(int batch_size,
                                                      int* serial) {
  std::vector<service::QueryService::Request> requests;
  requests.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    requests.push_back(MakeRequest(i, serial ? (*serial)++ : -1));
  }
  return requests;
}

double RunOnce(service::QueryService& svc,
               const std::vector<service::QueryService::Request>& requests) {
  Stopwatch sw;
  auto responses = svc.SubmitBatch(requests);
  const double seconds = sw.ElapsedSeconds();
  for (const auto& response : responses) GKX_CHECK(response.ok());
  return seconds;
}

void RegisterCorpus(service::QueryService& svc) {
  Rng rng(97);  // identical documents in every configuration
  xml::RandomDocumentOptions options;
  for (int d = 0; d < 3; ++d) {
    options.node_count = 100 << d;  // 100 / 200 / 400 nodes
    GKX_CHECK(
        svc.RegisterDocument("d" + std::to_string(d),
                             xml::RandomDocument(&rng, options))
            .ok());
  }
}

void Run(bench::JsonReport* json) {
  bench::Table table({"batch", "mode", "requests", "total ms", "qps",
                      "hit rate", "warm/cold"});
  std::map<std::string, int64_t> segment_routes;

  for (int batch_size : {1, 64, 1024}) {
    // Enough requests per mode for a stable clock reading.
    const int rounds = batch_size == 1 ? 512 : (batch_size == 64 ? 16 : 2);
    double cold_qps = 0.0;
    for (const bool warm : {false, true}) {
      // Fresh service per mode: the cold path must never see a warm cache.
      // Plan-cache capacity exceeds the largest batch so cold misses are
      // misses, not evictions of entries we are about to reuse. The answer
      // cache is off: this scenario prices the *plan* cache alone (the
      // answer cache gets its own scenarios below).
      service::QueryService::Options options;
      options.plan_cache.capacity = 4096;
      options.answer_cache_enabled = false;
      service::QueryService svc(options);
      RegisterCorpus(svc);

      int serial = 0;
      if (warm) {
        // Untimed fill: after this, every request text is cached.
        RunOnce(svc, MakeBatch(batch_size, nullptr));
      }
      double seconds = 0.0;
      int total = 0;
      for (int round = 0; round < rounds; ++round) {
        auto requests = MakeBatch(batch_size, warm ? nullptr : &serial);
        seconds += RunOnce(svc, requests);
        total += batch_size;
      }
      const double qps = static_cast<double>(total) / seconds;
      if (!warm) cold_qps = qps;
      const auto counters = svc.plan_cache().counters();
      table.AddRow({bench::Num(batch_size), warm ? "warm" : "cold",
                    bench::Num(total), bench::Millis(seconds),
                    bench::Num(static_cast<int64_t>(qps)),
                    bench::Ratio(counters.HitRate()),
                    warm ? bench::Ratio(qps / cold_qps) : std::string("-")});
      json->AddRow(
          {{"batch", bench::JsonNum(batch_size)},
           {"mode", bench::JsonStr(warm ? "warm" : "cold")},
           {"requests", bench::JsonNum(total)},
           {"total_ms", bench::JsonNum(seconds * 1e3)},
           {"qps", bench::JsonNum(qps)},
           {"hit_rate", bench::JsonNum(counters.HitRate())},
           {"warm_over_cold", bench::JsonNum(warm ? qps / cold_qps : 0.0)}});
      for (const auto& [route, count] : svc.Stats().segment_route_counts) {
        segment_routes[route] += count;
      }
    }
  }
  table.Print();

  // Per-segment route census across the whole run: the hybrid template
  // shows up as pf-frontier and cvt *segments*, not as a cvt query.
  bench::Table routes({"segment route", "segments executed"});
  for (const auto& [route, count] : segment_routes) {
    routes.AddRow({route, bench::Num(count)});
    json->AddRow({{"segment_route", bench::JsonStr(route)},
                  {"segments", bench::JsonNum(static_cast<double>(count))}});
  }
  routes.Print();
}

// ----------------------------------------------------------------- mview
// EXP-MVIEW-WARM: repeated identical queries against stable documents —
// the regime the AnswerCache turns from "evaluate every time" into "one
// lookup + one value copy". Both modes run with a warm *plan* cache, so
// the ratio isolates evaluation cost vs materialized-answer serving.

void RegisterLargeCorpus(service::QueryService& svc) {
  Rng rng(271);  // identical documents in every mode
  xml::RandomDocumentOptions options;
  options.text_probability = 0.3;
  for (int d = 0; d < 3; ++d) {
    options.node_count = 1500 << d;  // 1500 / 3000 / 6000 nodes
    GKX_CHECK(svc.RegisterDocument("big" + std::to_string(d),
                                   xml::RandomDocument(&rng, options))
                  .ok());
  }
}

std::vector<service::QueryService::Request> LargeCorpusRequests() {
  std::vector<service::QueryService::Request> requests;
  for (int d = 0; d < 3; ++d) {
    for (const char* query : kTemplates) {
      requests.push_back({"big" + std::to_string(d), query});
    }
  }
  return requests;
}

void RunAnswerCacheWarm(bench::JsonReport* json) {
  std::printf("EXP-MVIEW-WARM: repeated queries, answer cache off vs warm\n");
  const auto requests = LargeCorpusRequests();
  bench::Table table({"answer cache", "requests", "total ms", "qps",
                      "hit rate", "speedup"});
  double disabled_qps = 0.0;
  std::vector<std::string> disabled_digests;
  for (const bool enabled : {false, true}) {
    service::QueryService::Options options;
    options.plan_cache.capacity = 4096;
    options.answer_cache_enabled = enabled;
    service::QueryService svc(options);
    RegisterLargeCorpus(svc);

    RunOnce(svc, requests);  // untimed: warms plan cache (+ answer cache)
    // First timed pass doubles as the byte-identity check across modes.
    std::vector<std::string> digests;
    Stopwatch first;
    auto responses = svc.SubmitBatch(requests);
    double seconds = first.ElapsedSeconds();
    for (const auto& response : responses) {
      GKX_CHECK(response.ok());
      digests.push_back(response->value.DebugString());
    }
    if (!enabled) {
      disabled_digests = digests;
    } else {
      GKX_CHECK(digests == disabled_digests);  // byte-identical answers
    }
    const int rounds = enabled ? 64 : 4;
    int total = static_cast<int>(requests.size());
    for (int round = 1; round < rounds; ++round) {
      seconds += RunOnce(svc, requests);
      total += static_cast<int>(requests.size());
    }
    const double qps = static_cast<double>(total) / seconds;
    if (!enabled) disabled_qps = qps;
    const double hit_rate = svc.answer_cache().counters().HitRate();
    const double speedup = enabled ? qps / disabled_qps : 1.0;
    table.AddRow({enabled ? "warm" : "disabled", bench::Num(total),
                  bench::Millis(seconds),
                  bench::Num(static_cast<int64_t>(qps)),
                  enabled ? bench::Ratio(hit_rate) : std::string("-"),
                  enabled ? bench::Ratio(speedup) : std::string("-")});
    json->AddRow(
        {{"scenario", bench::JsonStr("answer_cache_warm")},
         {"mode", bench::JsonStr(enabled ? "warm" : "disabled")},
         {"requests", bench::JsonNum(total)},
         {"total_ms", bench::JsonNum(seconds * 1e3)},
         {"qps", bench::JsonNum(qps)},
         {"answer_hit_rate", bench::JsonNum(hit_rate)},
         {"speedup_vs_disabled", bench::JsonNum(speedup)}});
    if (enabled) {
      // The acceptance bar: materialized answers must beat re-evaluation
      // by at least 5x on this workload (measured 1-2 orders more).
      GKX_CHECK(speedup >= 5.0);
    }
  }
  table.Print();
}

// EXP-MVIEW-CHURN: a corpus with two disjoint tag families — "t*" documents
// serving a t-family query mix, "u*" documents churning every round. With
// footprint invalidation the churn provably cannot touch any cached answer
// (every footprint is t-only), so the hit rate stays near 1; the flush
// modes show what coarser invalidation would throw away.

const char* kFamilyQueries[] = {
    "//t0",
    "/descendant::t1/child::t2",
    "/descendant::t0[child::t1]",
    "//t2[position() = 2]",
    "/descendant::t3 | //t1/child::t0",
    "/descendant::t2[not(child::t3)]",
};

xml::Document FamilyDocument(Rng* rng, const std::string& prefix,
                             int32_t nodes) {
  xml::TreeBuilder builder(prefix + "root");
  std::vector<xml::BuildNodeId> handles{builder.root()};
  for (int32_t i = 1; i < nodes; ++i) {
    const auto parent = handles[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(handles.size()) - 1))];
    handles.push_back(builder.AddChild(
        parent, prefix + std::to_string(rng->UniformInt(0, 4))));
  }
  return std::move(builder).Build();
}

void RunDisjointChurn(bench::JsonReport* json) {
  std::printf(
      "EXP-MVIEW-CHURN: disjoint-tag churn, footprint vs flush "
      "invalidation\n");
  using Mode = gkx::mview::AnswerCache::InvalidationMode;
  bench::Table table({"invalidation", "rounds", "requests", "hit rate",
                      "invalidated", "retained"});
  const struct {
    Mode mode;
    const char* name;
  } kModes[] = {{Mode::kFootprint, "footprint"},
                {Mode::kFlushDocument, "flush-doc"},
                {Mode::kFlushAll, "flush-all"}};
  const int kRounds = 30;
  double footprint_hit_rate = 0.0;
  for (const auto& [mode, name] : kModes) {
    service::QueryService::Options options;
    options.answer_cache.mode = mode;
    service::QueryService svc(options);
    Rng rng(433);  // identical corpus and churn in every mode
    for (int d = 0; d < 2; ++d) {
      GKX_CHECK(svc.RegisterDocument("t" + std::to_string(d),
                                     FamilyDocument(&rng, "t", 800))
                    .ok());
      GKX_CHECK(svc.RegisterDocument("u" + std::to_string(d),
                                     FamilyDocument(&rng, "u", 800))
                    .ok());
    }
    std::vector<service::QueryService::Request> requests;
    for (const char* doc : {"t0", "t1", "u0", "u1"}) {
      for (const char* query : kFamilyQueries) requests.push_back({doc, query});
    }

    int64_t total = 0;
    for (int round = 0; round < kRounds; ++round) {
      if (round > 0) {
        // Replace one u-document: its tag set {u*} is disjoint from every
        // query footprint {t*}.
        GKX_CHECK(svc.RegisterDocument("u" + std::to_string(round % 2),
                                       FamilyDocument(&rng, "u", 800))
                      .ok());
      }
      for (const auto& response : svc.SubmitBatch(requests)) {
        GKX_CHECK(response.ok());
      }
      total += static_cast<int64_t>(requests.size());
    }
    const auto counters = svc.answer_cache().counters();
    if (mode == Mode::kFootprint) footprint_hit_rate = counters.HitRate();
    table.AddRow({name, bench::Num(kRounds), bench::Num(total),
                  bench::Ratio(counters.HitRate(), 3),
                  bench::Num(counters.invalidations),
                  bench::Num(counters.retained)});
    json->AddRow({{"scenario", bench::JsonStr("disjoint_churn")},
                  {"mode", bench::JsonStr(name)},
                  {"requests", bench::JsonNum(static_cast<double>(total))},
                  {"answer_hit_rate", bench::JsonNum(counters.HitRate())},
                  {"invalidations",
                   bench::JsonNum(static_cast<double>(counters.invalidations))},
                  {"retained",
                   bench::JsonNum(static_cast<double>(counters.retained))}});
  }
  table.Print();
  // Footprint invalidation must ride out disjoint churn nearly unscathed.
  GKX_CHECK(footprint_hit_rate > 0.9);
}

// ------------------------------------------------------------- EXP-DELTA
// The delta-update pipeline: corpus mutation as subtree patches
// (QueryService::UpdateDocument) instead of whole-document replacement.
// Two claims, each self-checked:
//   1. Throughput — on a large document, a subtree patch (splice + index
//      splice, no re-parse) lands updates >= 3x faster than the equivalent
//      full replacement (parse + rebuild + index rebuild), with
//      byte-identical query answers afterward.
//   2. Retention — under subtree churn whose names OVERLAP the rest of the
//      document (the regime where PR 4's whole-document name union
//      invalidates everything), region×name invalidation retains strictly
//      more cache entries and serves a strictly higher hit rate than the
//      name-only baseline, again byte-identically.

xml::Document LargeCatalog(int32_t items) {
  // <catalog> of <item><sku/><price/><desc/></item>... plus a <summary>
  // tail. Item names occur in every item subtree: any one item's region
  // names overlap the other items — and under whole-document invalidation,
  // every update drags the summary names along too.
  xml::TreeBuilder builder("catalog");
  for (int32_t i = 0; i < items; ++i) {
    xml::BuildNodeId item = builder.AddChild(builder.root(), "item");
    builder.SetText(builder.AddChild(item, "sku"), "sku" + std::to_string(i));
    builder.SetText(builder.AddChild(item, "price"), std::to_string(i % 97));
    builder.SetText(builder.AddChild(item, "desc"),
                    "item number " + std::to_string(i));
  }
  xml::BuildNodeId summary = builder.AddChild(builder.root(), "summary");
  builder.SetText(builder.AddChild(summary, "total"), std::to_string(items));
  builder.SetText(builder.AddChild(summary, "grand"), "0");
  return std::move(builder).Build();
}

xml::SubtreeEdit ReplaceItemEdit(const xml::Document& doc, Rng* rng,
                                 int serial) {
  // Replace a uniformly chosen <item> subtree with a regenerated one —
  // same tag family (overlapping names), slightly different shape.
  std::vector<xml::NodeId> items;
  for (xml::NodeId c = doc.first_child(doc.root()); c != xml::kNullNode;
       c = doc.next_sibling(c)) {
    if (doc.TagName(c) == "item") items.push_back(c);
  }
  xml::SubtreeEdit edit;
  edit.kind = xml::SubtreeEdit::Kind::kReplaceSubtree;
  edit.target = items[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  xml::TreeBuilder builder("item");
  builder.SetText(builder.AddChild(builder.root(), "sku"),
                  "resku" + std::to_string(serial));
  builder.SetText(builder.AddChild(builder.root(), "price"),
                  std::to_string(serial % 89));
  const int64_t extra = rng->UniformInt(0, 2);
  for (int64_t e = 0; e < extra; ++e) {
    builder.SetText(builder.AddChild(builder.root(), "desc"), "regenerated");
  }
  edit.subtree = std::move(builder).Build();
  return edit;
}

const char* kDeltaQueries[] = {
    "/descendant::summary/child::total",
    "count(/descendant::item)",
    "/descendant::item/child::sku",
};

/// The churn both EXP-DELTA scenarios share: a seeded chain of item
/// replacements, each applied to the previous revision. When
/// `revision_xml` is non-null it also captures each revision's serialized
/// bytes (what a whole-document client would send).
std::vector<xml::SubtreeEdit> PrecomputeEditChain(
    uint64_t seed, int rounds, const xml::Document& base,
    std::vector<std::string>* revision_xml) {
  Rng rng(seed);
  std::vector<xml::SubtreeEdit> edits;
  xml::Document current = base;
  for (int i = 0; i < rounds; ++i) {
    edits.push_back(ReplaceItemEdit(current, &rng, i));
    auto next = xml::ApplyEdit(current, edits.back());
    GKX_CHECK(next.ok());
    current = std::move(next).value();
    if (revision_xml != nullptr) {
      xml::SerializeOptions terse;
      terse.indent = 0;
      revision_xml->push_back(xml::SerializeDocument(current, terse));
    }
  }
  return edits;
}

std::vector<std::string> Digests(service::QueryService& svc,
                                 const std::string& key) {
  std::vector<std::string> out;
  for (const char* query : kDeltaQueries) {
    auto answer = svc.Submit(key, query);
    GKX_CHECK(answer.ok());
    out.push_back(answer->value.DebugString());
  }
  return out;
}

void RunDeltaUpdateThroughput(bench::JsonReport* json) {
  std::printf(
      "EXP-DELTA-UPS: subtree patch vs full replacement on a large "
      "document\n");
  const int kItems = 6000;  // ~24k nodes
  const int kRounds = 30;
  const xml::Document base = LargeCatalog(kItems);

  // Precompute the edit chain once, plus each resulting revision's XML —
  // the bytes a client of the whole-document API would have sent.
  std::vector<std::string> revision_xml;
  const std::vector<xml::SubtreeEdit> edits =
      PrecomputeEditChain(811, kRounds, base, &revision_xml);

  // One probe query per update keeps both sides honest about index
  // maintenance: the patch side splices eagerly at update time, the
  // replace side pays its lazy rebuild at the probe. The answer cache is
  // off — retention is the NEXT scenario's claim; this one prices updates.
  bench::Table table({"mode", "updates", "total ms", "updates/s",
                      "patch/replace"});
  double replace_ups = 0.0;
  double patch_ups = 0.0;
  std::vector<std::string> replace_digests;
  std::vector<std::string> patch_digests;
  for (const bool patch : {false, true}) {
    service::QueryService::Options options;
    options.answer_cache_enabled = false;
    service::QueryService svc(options);
    GKX_CHECK(svc.RegisterDocument("big", xml::Document(base)).ok());
    GKX_CHECK(svc.Submit("big", kDeltaQueries[0]).ok());  // build the index

    Stopwatch sw;
    for (int i = 0; i < kRounds; ++i) {
      if (patch) {
        GKX_CHECK(svc.UpdateDocument("big", edits[static_cast<size_t>(i)])
                      .ok());
      } else {
        GKX_CHECK(
            svc.RegisterXml("big", revision_xml[static_cast<size_t>(i)]).ok());
      }
      GKX_CHECK(svc.Submit("big", kDeltaQueries[0]).ok());
    }
    const double seconds = sw.ElapsedSeconds();
    const double ups = kRounds / seconds;
    if (patch) {
      patch_ups = ups;
      patch_digests = Digests(svc, "big");
    } else {
      replace_ups = ups;
      replace_digests = Digests(svc, "big");
    }
    table.AddRow({patch ? "patch" : "replace", bench::Num(kRounds),
                  bench::Millis(seconds), bench::Num(static_cast<int64_t>(ups)),
                  patch ? bench::Ratio(patch_ups / replace_ups)
                        : std::string("-")});
    json->AddRow(
        {{"scenario", bench::JsonStr("delta_update_throughput")},
         {"mode", bench::JsonStr(patch ? "patch" : "replace")},
         {"updates", bench::JsonNum(kRounds)},
         {"total_ms", bench::JsonNum(seconds * 1e3)},
         {"updates_per_sec", bench::JsonNum(ups)},
         {"speedup_vs_replace",
          bench::JsonNum(patch ? patch_ups / replace_ups : 1.0)}});
  }
  table.Print();
  // Byte-identical final answers: the patched corpus IS the replaced one.
  GKX_CHECK(patch_digests == replace_digests);
  // The acceptance bar: patches land >= 3x faster than full replacement.
  GKX_CHECK(patch_ups >= 3.0 * replace_ups);
}

void RunDeltaRetention(bench::JsonReport* json) {
  std::printf(
      "EXP-DELTA-RET: cache retention under subtree churn with "
      "overlapping names\n");
  const int kItems = 400;
  const int kRounds = 40;
  const xml::Document base = LargeCatalog(kItems);

  // The query mix: an item family (footprints intersect every item edit)
  // and a summary family (names live elsewhere in the SAME document). The
  // whole-document name union contains both families every round — the
  // baseline can retain nothing — while the delta's region names contain
  // only the item family.
  std::vector<service::QueryService::Request> requests;
  for (const char* query : kDeltaQueries) requests.push_back({"big", query});
  requests.push_back({"big", "/descendant::summary"});
  requests.push_back({"big", "/descendant::grand"});
  requests.push_back({"big", "/descendant::price"});

  // Identical churn in both modes.
  const std::vector<xml::SubtreeEdit> edits =
      PrecomputeEditChain(977, kRounds, base, nullptr);

  bench::Table table({"invalidation", "requests", "hit rate", "invalidated",
                      "retained", "remapped"});
  double delta_hit_rate = 0.0;
  int64_t delta_retained = 0;
  std::vector<std::string> mode_digests[2];
  for (const bool delta : {true, false}) {
    service::QueryService::Options options;
    options.delta_invalidation = delta;
    service::QueryService svc(options);
    GKX_CHECK(svc.RegisterDocument("big", xml::Document(base)).ok());

    int64_t total = 0;
    for (int round = 0; round < kRounds; ++round) {
      GKX_CHECK(
          svc.UpdateDocument("big", edits[static_cast<size_t>(round)]).ok());
      for (const auto& response : svc.SubmitBatch(requests)) {
        GKX_CHECK(response.ok());
        mode_digests[delta ? 0 : 1].push_back(response->value.DebugString());
      }
      total += static_cast<int64_t>(requests.size());
    }
    const auto counters = svc.answer_cache().counters();
    if (delta) {
      delta_hit_rate = counters.HitRate();
      delta_retained = counters.retained;
    } else {
      // The sharpened test must retain strictly more than the
      // whole-document name union on identical churn — and answer
      // byte-identically.
      GKX_CHECK(mode_digests[0] == mode_digests[1]);
      GKX_CHECK(delta_retained > counters.retained);
      GKX_CHECK(delta_hit_rate > counters.HitRate());
    }
    table.AddRow({delta ? "delta (region x name)" : "whole-doc names (PR4)",
                  bench::Num(total), bench::Ratio(counters.HitRate(), 3),
                  bench::Num(counters.invalidations),
                  bench::Num(counters.retained),
                  bench::Num(counters.remapped)});
    json->AddRow(
        {{"scenario", bench::JsonStr("delta_retention")},
         {"mode", bench::JsonStr(delta ? "delta" : "whole_doc_names")},
         {"requests", bench::JsonNum(static_cast<double>(total))},
         {"answer_hit_rate", bench::JsonNum(counters.HitRate())},
         {"invalidations",
          bench::JsonNum(static_cast<double>(counters.invalidations))},
         {"retained", bench::JsonNum(static_cast<double>(counters.retained))},
         {"remapped",
          bench::JsonNum(static_cast<double>(counters.remapped))}});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-SVC: multi-document query service, cold vs warm plan cache "
      "+ materialized answers (gkx::mview)",
      "serving context: the paper prices one evaluation; a service amortizes "
      "lex/parse/classify across repeated queries via a plan cache, skips "
      "evaluation entirely via the answer cache, and invalidates cached "
      "answers per plan footprint",
      "queries/sec through SubmitBatch: plan cache cold vs warm (batch "
      "1/64/1024); answer cache disabled vs warm (expect >= 5x, "
      "byte-identical answers); disjoint-tag churn hit rate per "
      "invalidation mode (expect footprint > 0.9); EXP-DELTA subtree "
      "patches (expect >= 3x full replacement, and region x name retention "
      "strictly above the whole-document name baseline)");
  gkx::bench::JsonReport json("service_throughput", 97);
  gkx::Run(&json);
  gkx::RunAnswerCacheWarm(&json);
  gkx::RunDisjointChurn(&json);
  gkx::RunDeltaUpdateThroughput(&json);
  gkx::RunDeltaRetention(&json);
  json.Write(gkx::bench::RepoRootPath("BENCH_service.json"));
  return 0;
}
