// EXP-SVC — the serving layer above the paper's evaluators. Measures
// queries/sec through QueryService::SubmitBatch on a mixed PF + Core +
// full-XPath workload over three registered documents, comparing
//   * cold: every request text is novel (the plan cache always misses, so
//     each request pays lex + parse + classify + canonicalize), vs
//   * warm: the same texts repeated (raw cache hits, evaluation only),
// at batch sizes 1 / 64 / 1024. The paper's combined-complexity results
// price a single evaluation; this experiment prices the serving overhead a
// plan cache amortizes away. The regime is many small-to-medium documents —
// the workload where compile cost and evaluation cost are comparable and a
// serving layer earns its keep (on huge documents evaluation dominates and
// the cache's effect shrinks toward 1×, which the large-batch rows show).

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "service/query_service.hpp"
#include "xml/builder.hpp"
#include "xml/generator.hpp"

namespace gkx {
namespace {

// Mixed-fragment templates: PF shapes (indexed and not), positive Core,
// Core with negation, positional pWF, full-XPath scalar, union, and a
// hybrid shape (PF spine + one positional predicate => staged plan).
const char* kTemplates[] = {
    "/descendant::t0/child::t1",
    "//t2",
    "/descendant::t1[child::t2]",
    "/descendant::t0[not(child::t3)]",
    "/descendant::t2[position() = 2]",
    "count(/descendant::t1)",
    "/descendant::t3 | //t0/child::t2",
    "/descendant::t1/parent::t0",
    "/descendant::t0/child::t1[position() = 2]/descendant::t2",
};

/// Request i of a workload. Cold mode (`serial` >= 0) appends a
/// semantically-inert, syntactically-novel tail so no two texts ever repeat:
/// a union branch selecting an absent tag for node-set templates, a "+ 0*k"
/// term for the scalar template.
service::QueryService::Request MakeRequest(int i, int serial) {
  static const char* kDocs[] = {"d0", "d1", "d2"};
  std::string query = kTemplates[i % std::size(kTemplates)];
  if (serial >= 0) {
    if (query.compare(0, 6, "count(") == 0) {
      query += " + 0 * " + std::to_string(serial);
    } else {
      query += " | /child::zz" + std::to_string(serial);
    }
  }
  return {kDocs[i % 3], std::move(query)};
}

std::vector<service::QueryService::Request> MakeBatch(int batch_size,
                                                      int* serial) {
  std::vector<service::QueryService::Request> requests;
  requests.reserve(static_cast<size_t>(batch_size));
  for (int i = 0; i < batch_size; ++i) {
    requests.push_back(MakeRequest(i, serial ? (*serial)++ : -1));
  }
  return requests;
}

double RunOnce(service::QueryService& svc,
               const std::vector<service::QueryService::Request>& requests) {
  Stopwatch sw;
  auto responses = svc.SubmitBatch(requests);
  const double seconds = sw.ElapsedSeconds();
  for (const auto& response : responses) GKX_CHECK(response.ok());
  return seconds;
}

void RegisterCorpus(service::QueryService& svc) {
  Rng rng(97);  // identical documents in every configuration
  xml::RandomDocumentOptions options;
  for (int d = 0; d < 3; ++d) {
    options.node_count = 100 << d;  // 100 / 200 / 400 nodes
    GKX_CHECK(
        svc.RegisterDocument("d" + std::to_string(d),
                             xml::RandomDocument(&rng, options))
            .ok());
  }
}

void Run(bench::JsonReport* json) {
  bench::Table table({"batch", "mode", "requests", "total ms", "qps",
                      "hit rate", "warm/cold"});
  std::map<std::string, int64_t> segment_routes;

  for (int batch_size : {1, 64, 1024}) {
    // Enough requests per mode for a stable clock reading.
    const int rounds = batch_size == 1 ? 512 : (batch_size == 64 ? 16 : 2);
    double cold_qps = 0.0;
    for (const bool warm : {false, true}) {
      // Fresh service per mode: the cold path must never see a warm cache.
      // Plan-cache capacity exceeds the largest batch so cold misses are
      // misses, not evictions of entries we are about to reuse. The answer
      // cache is off: this scenario prices the *plan* cache alone (the
      // answer cache gets its own scenarios below).
      service::QueryService::Options options;
      options.plan_cache.capacity = 4096;
      options.answer_cache_enabled = false;
      service::QueryService svc(options);
      RegisterCorpus(svc);

      int serial = 0;
      if (warm) {
        // Untimed fill: after this, every request text is cached.
        RunOnce(svc, MakeBatch(batch_size, nullptr));
      }
      double seconds = 0.0;
      int total = 0;
      for (int round = 0; round < rounds; ++round) {
        auto requests = MakeBatch(batch_size, warm ? nullptr : &serial);
        seconds += RunOnce(svc, requests);
        total += batch_size;
      }
      const double qps = static_cast<double>(total) / seconds;
      if (!warm) cold_qps = qps;
      const auto counters = svc.plan_cache().counters();
      table.AddRow({bench::Num(batch_size), warm ? "warm" : "cold",
                    bench::Num(total), bench::Millis(seconds),
                    bench::Num(static_cast<int64_t>(qps)),
                    bench::Ratio(counters.HitRate()),
                    warm ? bench::Ratio(qps / cold_qps) : std::string("-")});
      json->AddRow(
          {{"batch", bench::JsonNum(batch_size)},
           {"mode", bench::JsonStr(warm ? "warm" : "cold")},
           {"requests", bench::JsonNum(total)},
           {"total_ms", bench::JsonNum(seconds * 1e3)},
           {"qps", bench::JsonNum(qps)},
           {"hit_rate", bench::JsonNum(counters.HitRate())},
           {"warm_over_cold", bench::JsonNum(warm ? qps / cold_qps : 0.0)}});
      for (const auto& [route, count] : svc.Stats().segment_route_counts) {
        segment_routes[route] += count;
      }
    }
  }
  table.Print();

  // Per-segment route census across the whole run: the hybrid template
  // shows up as pf-frontier and cvt *segments*, not as a cvt query.
  bench::Table routes({"segment route", "segments executed"});
  for (const auto& [route, count] : segment_routes) {
    routes.AddRow({route, bench::Num(count)});
    json->AddRow({{"segment_route", bench::JsonStr(route)},
                  {"segments", bench::JsonNum(static_cast<double>(count))}});
  }
  routes.Print();
}

// ----------------------------------------------------------------- mview
// EXP-MVIEW-WARM: repeated identical queries against stable documents —
// the regime the AnswerCache turns from "evaluate every time" into "one
// lookup + one value copy". Both modes run with a warm *plan* cache, so
// the ratio isolates evaluation cost vs materialized-answer serving.

void RegisterLargeCorpus(service::QueryService& svc) {
  Rng rng(271);  // identical documents in every mode
  xml::RandomDocumentOptions options;
  options.text_probability = 0.3;
  for (int d = 0; d < 3; ++d) {
    options.node_count = 1500 << d;  // 1500 / 3000 / 6000 nodes
    GKX_CHECK(svc.RegisterDocument("big" + std::to_string(d),
                                   xml::RandomDocument(&rng, options))
                  .ok());
  }
}

std::vector<service::QueryService::Request> LargeCorpusRequests() {
  std::vector<service::QueryService::Request> requests;
  for (int d = 0; d < 3; ++d) {
    for (const char* query : kTemplates) {
      requests.push_back({"big" + std::to_string(d), query});
    }
  }
  return requests;
}

void RunAnswerCacheWarm(bench::JsonReport* json) {
  std::printf("EXP-MVIEW-WARM: repeated queries, answer cache off vs warm\n");
  const auto requests = LargeCorpusRequests();
  bench::Table table({"answer cache", "requests", "total ms", "qps",
                      "hit rate", "speedup"});
  double disabled_qps = 0.0;
  std::vector<std::string> disabled_digests;
  for (const bool enabled : {false, true}) {
    service::QueryService::Options options;
    options.plan_cache.capacity = 4096;
    options.answer_cache_enabled = enabled;
    service::QueryService svc(options);
    RegisterLargeCorpus(svc);

    RunOnce(svc, requests);  // untimed: warms plan cache (+ answer cache)
    // First timed pass doubles as the byte-identity check across modes.
    std::vector<std::string> digests;
    Stopwatch first;
    auto responses = svc.SubmitBatch(requests);
    double seconds = first.ElapsedSeconds();
    for (const auto& response : responses) {
      GKX_CHECK(response.ok());
      digests.push_back(response->value.DebugString());
    }
    if (!enabled) {
      disabled_digests = digests;
    } else {
      GKX_CHECK(digests == disabled_digests);  // byte-identical answers
    }
    const int rounds = enabled ? 64 : 4;
    int total = static_cast<int>(requests.size());
    for (int round = 1; round < rounds; ++round) {
      seconds += RunOnce(svc, requests);
      total += static_cast<int>(requests.size());
    }
    const double qps = static_cast<double>(total) / seconds;
    if (!enabled) disabled_qps = qps;
    const double hit_rate = svc.answer_cache().counters().HitRate();
    const double speedup = enabled ? qps / disabled_qps : 1.0;
    table.AddRow({enabled ? "warm" : "disabled", bench::Num(total),
                  bench::Millis(seconds),
                  bench::Num(static_cast<int64_t>(qps)),
                  enabled ? bench::Ratio(hit_rate) : std::string("-"),
                  enabled ? bench::Ratio(speedup) : std::string("-")});
    json->AddRow(
        {{"scenario", bench::JsonStr("answer_cache_warm")},
         {"mode", bench::JsonStr(enabled ? "warm" : "disabled")},
         {"requests", bench::JsonNum(total)},
         {"total_ms", bench::JsonNum(seconds * 1e3)},
         {"qps", bench::JsonNum(qps)},
         {"answer_hit_rate", bench::JsonNum(hit_rate)},
         {"speedup_vs_disabled", bench::JsonNum(speedup)}});
    if (enabled) {
      // The acceptance bar: materialized answers must beat re-evaluation
      // by at least 5x on this workload (measured 1-2 orders more).
      GKX_CHECK(speedup >= 5.0);
    }
  }
  table.Print();
}

// EXP-MVIEW-CHURN: a corpus with two disjoint tag families — "t*" documents
// serving a t-family query mix, "u*" documents churning every round. With
// footprint invalidation the churn provably cannot touch any cached answer
// (every footprint is t-only), so the hit rate stays near 1; the flush
// modes show what coarser invalidation would throw away.

const char* kFamilyQueries[] = {
    "//t0",
    "/descendant::t1/child::t2",
    "/descendant::t0[child::t1]",
    "//t2[position() = 2]",
    "/descendant::t3 | //t1/child::t0",
    "/descendant::t2[not(child::t3)]",
};

xml::Document FamilyDocument(Rng* rng, const std::string& prefix,
                             int32_t nodes) {
  xml::TreeBuilder builder(prefix + "root");
  std::vector<xml::BuildNodeId> handles{builder.root()};
  for (int32_t i = 1; i < nodes; ++i) {
    const auto parent = handles[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(handles.size()) - 1))];
    handles.push_back(builder.AddChild(
        parent, prefix + std::to_string(rng->UniformInt(0, 4))));
  }
  return std::move(builder).Build();
}

void RunDisjointChurn(bench::JsonReport* json) {
  std::printf(
      "EXP-MVIEW-CHURN: disjoint-tag churn, footprint vs flush "
      "invalidation\n");
  using Mode = gkx::mview::AnswerCache::InvalidationMode;
  bench::Table table({"invalidation", "rounds", "requests", "hit rate",
                      "invalidated", "retained"});
  const struct {
    Mode mode;
    const char* name;
  } kModes[] = {{Mode::kFootprint, "footprint"},
                {Mode::kFlushDocument, "flush-doc"},
                {Mode::kFlushAll, "flush-all"}};
  const int kRounds = 30;
  double footprint_hit_rate = 0.0;
  for (const auto& [mode, name] : kModes) {
    service::QueryService::Options options;
    options.answer_cache.mode = mode;
    service::QueryService svc(options);
    Rng rng(433);  // identical corpus and churn in every mode
    for (int d = 0; d < 2; ++d) {
      GKX_CHECK(svc.RegisterDocument("t" + std::to_string(d),
                                     FamilyDocument(&rng, "t", 800))
                    .ok());
      GKX_CHECK(svc.RegisterDocument("u" + std::to_string(d),
                                     FamilyDocument(&rng, "u", 800))
                    .ok());
    }
    std::vector<service::QueryService::Request> requests;
    for (const char* doc : {"t0", "t1", "u0", "u1"}) {
      for (const char* query : kFamilyQueries) requests.push_back({doc, query});
    }

    int64_t total = 0;
    for (int round = 0; round < kRounds; ++round) {
      if (round > 0) {
        // Replace one u-document: its tag set {u*} is disjoint from every
        // query footprint {t*}.
        GKX_CHECK(svc.RegisterDocument("u" + std::to_string(round % 2),
                                       FamilyDocument(&rng, "u", 800))
                      .ok());
      }
      for (const auto& response : svc.SubmitBatch(requests)) {
        GKX_CHECK(response.ok());
      }
      total += static_cast<int64_t>(requests.size());
    }
    const auto counters = svc.answer_cache().counters();
    if (mode == Mode::kFootprint) footprint_hit_rate = counters.HitRate();
    table.AddRow({name, bench::Num(kRounds), bench::Num(total),
                  bench::Ratio(counters.HitRate(), 3),
                  bench::Num(counters.invalidations),
                  bench::Num(counters.retained)});
    json->AddRow({{"scenario", bench::JsonStr("disjoint_churn")},
                  {"mode", bench::JsonStr(name)},
                  {"requests", bench::JsonNum(static_cast<double>(total))},
                  {"answer_hit_rate", bench::JsonNum(counters.HitRate())},
                  {"invalidations",
                   bench::JsonNum(static_cast<double>(counters.invalidations))},
                  {"retained",
                   bench::JsonNum(static_cast<double>(counters.retained))}});
  }
  table.Print();
  // Footprint invalidation must ride out disjoint churn nearly unscathed.
  GKX_CHECK(footprint_hit_rate > 0.9);
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-SVC: multi-document query service, cold vs warm plan cache "
      "+ materialized answers (gkx::mview)",
      "serving context: the paper prices one evaluation; a service amortizes "
      "lex/parse/classify across repeated queries via a plan cache, skips "
      "evaluation entirely via the answer cache, and invalidates cached "
      "answers per plan footprint",
      "queries/sec through SubmitBatch: plan cache cold vs warm (batch "
      "1/64/1024); answer cache disabled vs warm (expect >= 5x, "
      "byte-identical answers); disjoint-tag churn hit rate per "
      "invalidation mode (expect footprint > 0.9)");
  gkx::bench::JsonReport json("service_throughput", 97);
  gkx::Run(&json);
  gkx::RunAnswerCacheWarm(&json);
  gkx::RunDisjointChurn(&json);
  json.Write(gkx::bench::RepoRootPath("BENCH_service.json"));
  return 0;
}
