// EXP-T3.2 / EXP-C3.3 — Theorem 3.2 and Corollary 3.3: the P-hardness
// reduction at scale. Random monotone circuits are compiled to (document,
// Core XPath query); we verify the answers, confirm the construction sizes
// grow linearly, and measure polynomial evaluation time for both the
// O(|D|·|Q|) linear engine and the CVT engine — membership (Prop 2.7) and
// hardness meet in one experiment.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "reductions/circuit_to_core_xpath.hpp"

namespace gkx {
namespace {

void RunSweep(bool corollary33) {
  std::printf("%s\n", corollary33
                          ? "Corollary 3.3 mode (axes: child, parent, "
                            "descendant-or-self only):"
                          : "Theorem 3.2 mode (axes incl. ancestor-or-self):");
  bench::Table table({"gates N", "doc nodes |D|", "query size |Q|", "verified",
                      "linear ms", "cvt ms"});
  Rng rng(32);
  circuits::RandomMonotoneOptions options;
  options.num_inputs = 6;
  reductions::CircuitReductionOptions reduction_options;
  reduction_options.corollary33_axes = corollary33;

  for (int32_t gates : {8, 16, 32, 64, 128, 256}) {
    options.num_gates = gates;
    circuits::Circuit circuit = circuits::RandomMonotone(&rng, options);
    int verified = 0;
    constexpr int kAssignments = 4;
    double linear_seconds = 0;
    double cvt_seconds = 0;
    int64_t doc_nodes = 0;
    int query_size = 0;
    for (int a = 0; a < kAssignments; ++a) {
      std::vector<bool> assignment;
      for (int32_t i = 0; i < options.num_inputs; ++i) {
        assignment.push_back(rng.Bernoulli(0.5));
      }
      reductions::CircuitReduction instance =
          reductions::CircuitToCoreXPath(circuit, assignment, reduction_options);
      doc_nodes = instance.doc.Stats().node_count;
      query_size = instance.query.size();
      const bool expected = circuit.Evaluate(assignment);

      eval::CoreLinearEvaluator linear;
      Stopwatch sw;
      auto linear_nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
      linear_seconds += sw.ElapsedSeconds();
      GKX_CHECK(linear_nodes.ok());

      eval::CvtEvaluator cvt;
      sw.Restart();
      auto cvt_nodes = cvt.EvaluateNodeSet(instance.doc, instance.query);
      cvt_seconds += sw.ElapsedSeconds();
      GKX_CHECK(cvt_nodes.ok());

      if (!linear_nodes->empty() == expected && !cvt_nodes->empty() == expected) {
        ++verified;
      }
    }
    table.AddRow({bench::Num(gates), bench::Num(doc_nodes),
                  bench::Num(query_size),
                  bench::Num(verified) + "/" + bench::Num(kAssignments),
                  bench::Millis(linear_seconds), bench::Millis(cvt_seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T3.2 / EXP-C3.3 (Theorem 3.2, Corollary 3.3): Core XPath is "
      "P-complete",
      "monotone circuit value ≤log Core XPath evaluation; document depth 2, "
      "query linear in the circuit; stays P-hard with only child/parent/"
      "descendant-or-self (Cor 3.3)",
      "reduction correctness on random circuits and polynomial (near-linear) "
      "growth of |D|, |Q|, and evaluation time with the circuit size");
  gkx::RunSweep(/*corollary33=*/false);
  gkx::RunSweep(/*corollary33=*/true);
  return 0;
}
