// Micro-benchmarks (google-benchmark): axis primitives, bitset sweeps, the
// XPath lexer+parser, and the four sequential engines on a fixed mixed
// workload. These are the operation-level costs underlying the experiment
// tables.

#include <benchmark/benchmark.h>

#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "eval/recursive_base.hpp"
#include "xml/generator.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/parser.hpp"

namespace gkx {
namespace {

const xml::Document& Doc() {
  static const xml::Document* doc = [] {
    Rng rng(1);
    xml::RandomDocumentOptions options;
    options.node_count = 1000;
    return new xml::Document(xml::RandomDocument(&rng, options));
  }();
  return *doc;
}

void BM_AxisDescendantEnumeration(benchmark::State& state) {
  const xml::Document& doc = Doc();
  const eval::ResolvedTest any{xpath::NodeTest::Kind::kAny, xml::kNoName};
  for (auto _ : state) {
    auto nodes = eval::AxisNodes(doc, 0, xpath::Axis::kDescendant, any);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_AxisDescendantEnumeration);

void BM_AxisPrecedingEnumeration(benchmark::State& state) {
  const xml::Document& doc = Doc();
  const eval::ResolvedTest any{xpath::NodeTest::Kind::kAny, xml::kNoName};
  for (auto _ : state) {
    auto nodes =
        eval::AxisNodes(doc, doc.size() - 1, xpath::Axis::kPreceding, any);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_AxisPrecedingEnumeration);

void BM_AxisImageDescendant(benchmark::State& state) {
  const xml::Document& doc = Doc();
  eval::NodeBitset input(doc.size());
  for (int32_t v = 0; v < doc.size(); v += 7) input.Set(v);
  for (auto _ : state) {
    auto image = eval::AxisImage(doc, xpath::Axis::kDescendant, input);
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_AxisImageDescendant);

void BM_AxisImageFollowingSibling(benchmark::State& state) {
  const xml::Document& doc = Doc();
  eval::NodeBitset input(doc.size());
  for (int32_t v = 0; v < doc.size(); v += 5) input.Set(v);
  for (auto _ : state) {
    auto image = eval::AxisImage(doc, xpath::Axis::kFollowingSibling, input);
    benchmark::DoNotOptimize(image);
  }
}
BENCHMARK(BM_AxisImageFollowingSibling);

void BM_XmlParse(benchmark::State& state) {
  Rng rng(3);
  xml::RandomDocumentOptions options;
  options.node_count = 2000;
  options.text_probability = 0.5;
  options.max_extra_labels = 1;
  static const std::string kXml =
      xml::SerializeDocument(xml::RandomDocument(&rng, options));
  for (auto _ : state) {
    auto doc = xml::ParseDocument(kXml);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kXml.size()));
}
BENCHMARK(BM_XmlParse);

void BM_XmlSerialize(benchmark::State& state) {
  Rng rng(3);
  xml::RandomDocumentOptions options;
  options.node_count = 2000;
  options.text_probability = 0.5;
  static const xml::Document doc = xml::RandomDocument(&rng, options);
  for (auto _ : state) {
    std::string xml_text = xml::SerializeDocument(doc);
    benchmark::DoNotOptimize(xml_text);
  }
}
BENCHMARK(BM_XmlSerialize);

void BM_ParseQuery(benchmark::State& state) {
  constexpr std::string_view kText =
      "/descendant::a/child::b[descendant::c and not(following-sibling::d)]"
      "/child::*[position() + 1 = last()] | //e[f = 'x']";
  for (auto _ : state) {
    auto query = xpath::ParseQuery(kText);
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_ParseQuery);

constexpr std::string_view kWorkload =
    "/descendant::t1[child::t2 and not(child::t3)]/descendant-or-self::*"
    "[following-sibling::t0]";

void BM_NaiveEvaluator(benchmark::State& state) {
  const xml::Document& doc = Doc();
  xpath::Query query = xpath::MustParse(kWorkload);
  eval::NaiveEvaluator engine;
  for (auto _ : state) {
    auto value = engine.EvaluateAtRoot(doc, query);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_NaiveEvaluator);

void BM_CvtEvaluator(benchmark::State& state) {
  const xml::Document& doc = Doc();
  xpath::Query query = xpath::MustParse(kWorkload);
  eval::CvtEvaluator engine;
  for (auto _ : state) {
    auto value = engine.EvaluateAtRoot(doc, query);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_CvtEvaluator);

void BM_CoreLinearEvaluator(benchmark::State& state) {
  const xml::Document& doc = Doc();
  xpath::Query query = xpath::MustParse(kWorkload);
  eval::CoreLinearEvaluator engine;
  for (auto _ : state) {
    auto value = engine.EvaluateAtRoot(doc, query);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_CoreLinearEvaluator);

void BM_PdaEvaluatorPwf(benchmark::State& state) {
  Rng rng(2);
  xml::RandomDocumentOptions options;
  options.node_count = 150;  // the PDA engine is the deliberately slow one
  static const xml::Document doc = xml::RandomDocument(&rng, options);
  xpath::Query query =
      xpath::MustParse("/descendant::t1[position() = last()]/child::*");
  eval::PdaEvaluator engine;
  for (auto _ : state) {
    auto value = engine.EvaluateAtRoot(doc, query);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_PdaEvaluatorPwf);

}  // namespace
}  // namespace gkx

BENCHMARK_MAIN();
