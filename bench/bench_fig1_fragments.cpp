// EXP-F1 — Figure 1: the combined-complexity landscape of XPath fragments.
// Classifies a corpus of queries (hand-written + random per fragment) into
// the paper's taxonomy and demonstrates the landscape empirically: each
// fragment is evaluated with the engine matching its complexity class, and
// per-fragment timings on a fixed document are reported.

#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/engine.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx {
namespace {

using xpath::Classify;
using xpath::Fragment;
using xpath::FragmentComplexity;
using xpath::FragmentName;

void RunCorpusClassification() {
  const char* corpus[] = {
      "/descendant::a/child::b",
      "a/b | c/d",
      "child::a[descendant::c]",
      "a[b and c or d]",
      "child::a[not(following-sibling::d)]",
      "a[b][c]",
      "child::a[position() + 1 = last()]",
      "a[2]",
      "a[not(position() = 2)]",
      "a[position() = 1][last() = 2]",
      "a[boolean(child::b)]",
      "a[concat('x', 'y') = 'xy']",
      "a[count(child::b) = 2]",
      "a[not(string(b) = 'x')]",
  };
  bench::Table table({"query", "smallest fragment", "combined complexity"});
  for (const char* text : corpus) {
    xpath::Query query = xpath::MustParse(text);
    Fragment smallest = Classify(query).smallest;
    table.AddRow({text, std::string(FragmentName(smallest)),
                  std::string(FragmentComplexity(smallest))});
  }
  table.Print();
}

void RunRandomCensusAndTiming() {
  Rng rng(2003);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 400;
  xml::Document doc = xml::RandomDocument(&rng, doc_options);

  bench::Table table({"generated fragment", "queries", "dispatched engine",
                      "total eval ms", "classification agrees"});
  constexpr Fragment kFragments[] = {
      Fragment::kPF,  Fragment::kPositiveCore, Fragment::kCore,
      Fragment::kPWF, Fragment::kWF,           Fragment::kPXPath,
      Fragment::kFullXPath,
  };
  eval::Engine engine;
  for (Fragment fragment : kFragments) {
    xpath::RandomQueryOptions query_options;
    query_options.fragment = fragment;
    int agree = 0;
    constexpr int kQueries = 40;
    double total_seconds = 0;
    std::map<std::string, int> engine_census;
    for (int i = 0; i < kQueries; ++i) {
      xpath::Query query = xpath::RandomQuery(&rng, query_options);
      if (Classify(query).Contains(fragment)) ++agree;
      Stopwatch sw;
      auto answer = engine.Run(doc, query, eval::RootContext(doc));
      total_seconds += sw.ElapsedSeconds();
      GKX_CHECK(answer.ok());
      ++engine_census[answer->evaluator];
    }
    // Generated queries may land in a smaller fragment than requested (e.g.
    // a WF query without arithmetic is Core) — show the dispatch census.
    std::string dispatched;
    for (const auto& [name, count] : engine_census) {
      if (!dispatched.empty()) dispatched += ", ";
      dispatched += name + " x" + std::to_string(count);
    }
    table.AddRow({std::string(FragmentName(fragment)), bench::Num(kQueries),
                  dispatched, bench::Millis(total_seconds),
                  bench::Num(agree) + "/" + bench::Num(kQueries)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-F1 (Figure 1): fragment landscape",
      "PF ⊂ pos.Core ⊂ {Core, pWF} ⊂ {WF, pXPath} ⊂ XPath; complexities "
      "NL-c / LOGCFL-c / P-c as labeled in Figure 1",
      "classification of a corpus + generated-per-fragment census, with the "
      "engine dispatch and timings for each fragment");
  gkx::RunCorpusClassification();
  gkx::RunRandomCensusAndTiming();
  return 0;
}
