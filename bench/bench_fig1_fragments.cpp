// EXP-F1 — Figure 1: the combined-complexity landscape of XPath fragments.
// Classifies a corpus of queries (hand-written + random per fragment) into
// the paper's taxonomy and demonstrates the landscape empirically: each
// fragment is evaluated with the engine matching its complexity class, and
// per-fragment timings on a fixed document are reported.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "base/thread_pool.hpp"
#include "bench/bench_util.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/cvt_evaluator.hpp"
#include "eval/engine.hpp"
#include "plan/exec.hpp"
#include "plan/physical.hpp"
#include "xml/generator.hpp"
#include "xpath/generator.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx {
namespace {

using xpath::Classify;
using xpath::Fragment;
using xpath::FragmentComplexity;
using xpath::FragmentName;

// Hybrid (staged) routing: queries whose spine is PF-routable but which
// contain one non-Core predicate. Whole-query classification demotes them
// entirely to CVT; the staged plan keeps the spine on bitset sweeps and
// drops into CVT only for the offending subtree. Expect >= 2x.
void RunHybridRouting(bench::JsonReport* json) {
  constexpr uint64_t kSeed = 4242;
  Rng rng(kSeed);
  xml::RandomDocumentOptions doc_options;
  // Deep documents are where the spine matters: a descendant step's
  // per-origin enumeration touches O(depth) ancestors' worth of subtree
  // per origin under CVT, while the frontier sweep stays O(|D|) total.
  doc_options.node_count = 8000;
  doc_options.tag_alphabet = 4;
  doc_options.chain_bias = 0.85;
  xml::Document doc = xml::RandomDocument(&rng, doc_options);

  // The hybrid-win regime: the descendant chain (the PF-routable spine) is
  // where the work is — whole-query CVT pays per-origin axis enumeration
  // and per-step sort/dedup over large intermediate node sets there, while
  // the staged plan runs it as O(|D|) bitset sweeps. The one non-Core
  // predicate sits on a cheap-axis step, so the unavoidable CVT segment is
  // small in both plans.
  const char* queries[] = {
      "/descendant::t0/descendant::t1/descendant::t2/child::t3"
      "[position() = 1]",
      "/descendant::t0/descendant::t1/child::t2[count(child::t3) = 1]",
      "/descendant::t0/descendant::t1/child::t2[position() = last()]"
      "/child::t3",
  };
  constexpr int kReps = 3;

  bench::Table table({"query", "plan route", "hybrid ms", "whole-query cvt ms",
                      "speedup", "answers"});
  eval::Engine engine;
  for (const char* text : queries) {
    auto plan = eval::Engine::Compile(text);
    GKX_CHECK(plan.ok());
    GKX_CHECK(plan->staged);

    // Best-of-reps on both sides: robust to scheduler noise on shared CI
    // runners (a pause inflates the mean but rarely every rep).
    double hybrid_seconds = 1e99;
    Result<eval::Engine::Answer> hybrid = engine.RunPlan(doc, *plan);
    for (int r = 0; r < kReps; ++r) {
      Stopwatch sw;
      hybrid = engine.RunPlan(doc, *plan);
      hybrid_seconds = std::min(hybrid_seconds, sw.ElapsedSeconds());
    }
    GKX_CHECK(hybrid.ok());

    // Forced whole-query CVT on the same normalized AST — what the old
    // whole-query dispatch did to every mixed query. A FRESH evaluator per
    // rep keeps this baseline cold: the dispatch it models rebinds (and so
    // refills its tables) on every query, whereas the hybrid side above
    // runs on a persistent Engine whose binds stay warm across reps — the
    // serving configuration each side actually has.
    double cvt_seconds = 1e99;
    Result<eval::Value> forced =
        eval::CvtEvaluator().Evaluate(doc, plan->query, eval::RootContext(doc));
    for (int r = 0; r < kReps; ++r) {
      eval::CvtEvaluator cvt;
      Stopwatch sw;
      forced = cvt.Evaluate(doc, plan->query, eval::RootContext(doc));
      cvt_seconds = std::min(cvt_seconds, sw.ElapsedSeconds());
    }
    GKX_CHECK(forced.ok());

    const bool identical = forced->Equals(hybrid->value);
    GKX_CHECK(identical);
    const double speedup = cvt_seconds / hybrid_seconds;
    table.AddRow({text, hybrid->evaluator, bench::Millis(hybrid_seconds),
                  bench::Millis(cvt_seconds), bench::Ratio(speedup),
                  bench::PassFail(identical)});
    json->AddRow({{"section", bench::JsonStr("hybrid")},
                  {"seed", bench::JsonNum(static_cast<double>(kSeed))},
                  {"query", bench::JsonStr(text)},
                  {"route", bench::JsonStr(hybrid->evaluator)},
                  {"hybrid_ms", bench::JsonNum(hybrid_seconds * 1e3)},
                  {"whole_cvt_ms", bench::JsonNum(cvt_seconds * 1e3)},
                  {"speedup", bench::JsonNum(speedup)},
                  {"doc_nodes", bench::JsonNum(doc_options.node_count)}});
    // The acceptance bar for staged execution: the PF-routable spine must
    // buy at least 2x over whole-query CVT on every scenario.
    GKX_CHECK(speedup >= 2.0);
  }
  table.Print();
}

// Parallel intra-query scaling on the LOGCFL fragments: the same hybrid
// plans at 1/2/4/8 workers, answers self-checked byte-identical against
// the sequential run, latency self-checked against the FROZEN hybrid
// numbers committed before the parallel executor landed. On single-core
// runners the >= 3x bar is carried by the algorithmic work that shipped
// with the executor (sparse sweep formulations, positional fast paths,
// count pushdown, persistent binds); on multi-core runners the partitioned
// sweeps and the concurrent cvt origin loop stack on top of that.
void RunParallelScaling(bench::JsonReport* json) {
  constexpr uint64_t kSeed = 4242;
  Rng rng(kSeed);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 8000;
  doc_options.tag_alphabet = 4;
  doc_options.chain_bias = 0.85;
  xml::Document doc = xml::RandomDocument(&rng, doc_options);

  // The committed sequential hybrid_ms values for exactly this document
  // recipe (seed 4242, 8000 nodes, chain_bias 0.85) and these queries, as
  // recorded in BENCH_fragments.json at commit 72db9df — the last commit
  // before parallel execution. The acceptance bar compares against these
  // frozen numbers so the win can't be manufactured by re-running a slower
  // baseline on the same machine.
  constexpr const char* kBaselineCommit = "72db9df";
  const struct {
    const char* query;
    double committed_hybrid_ms;
  } cases[] = {
      {"/descendant::t0/descendant::t1/descendant::t2/child::t3"
       "[position() = 1]",
       0.616578},
      {"/descendant::t0/descendant::t1/child::t2[count(child::t3) = 1]",
       0.482154},
      {"/descendant::t0/descendant::t1/child::t2[position() = last()]"
       "/child::t3",
       0.47616},
  };
  constexpr int kReps = 5;
  constexpr int kWorkerCounts[] = {1, 2, 4, 8};

  bench::Table table({"query", "workers", "hybrid ms", "cold ms",
                      "vs committed", "answers"});
  for (const auto& c : cases) {
    auto plan = eval::Engine::Compile(c.query);
    GKX_CHECK(plan.ok());
    GKX_CHECK(plan->staged);

    // Sequential reference answer for the byte-identity self-check.
    eval::Engine reference;
    auto expected = reference.RunPlan(doc, *plan);
    GKX_CHECK(expected.ok());

    for (int workers : kWorkerCounts) {
      // One persistent engine per worker setting — the serving pattern the
      // executor optimizes for. The first run is the cold bind (reported
      // separately); best-of-reps then measures the steady state.
      eval::Engine engine;
      plan::ExecOptions opts;
      opts.pool = &ThreadPool::Shared();
      opts.workers = workers;
      engine.set_exec_options(opts);

      Stopwatch cold_sw;
      auto answer = engine.RunPlan(doc, *plan);
      const double cold_seconds = cold_sw.ElapsedSeconds();
      GKX_CHECK(answer.ok());

      double best_seconds = 1e99;
      for (int r = 0; r < kReps; ++r) {
        Stopwatch sw;
        answer = engine.RunPlan(doc, *plan);
        best_seconds = std::min(best_seconds, sw.ElapsedSeconds());
      }
      GKX_CHECK(answer.ok());

      const bool identical = answer->value.Equals(expected->value);
      GKX_CHECK(identical);
      const double vs_committed = c.committed_hybrid_ms / (best_seconds * 1e3);
      table.AddRow({c.query, std::to_string(workers),
                    bench::Millis(best_seconds), bench::Millis(cold_seconds),
                    bench::Ratio(vs_committed), bench::PassFail(identical)});
      json->AddRow(
          {{"section", bench::JsonStr("parallel_scaling")},
           {"seed", bench::JsonNum(static_cast<double>(kSeed))},
           {"query", bench::JsonStr(c.query)},
           {"workers", bench::JsonNum(workers)},
           {"hybrid_ms", bench::JsonNum(best_seconds * 1e3)},
           {"cold_ms", bench::JsonNum(cold_seconds * 1e3)},
           {"committed_sequential_ms", bench::JsonNum(c.committed_hybrid_ms)},
           {"baseline_commit", bench::JsonStr(kBaselineCommit)},
           {"speedup_vs_committed", bench::JsonNum(vs_committed)},
           {"doc_nodes", bench::JsonNum(doc_options.node_count)}});
      // The PR acceptance bar: at >= 4 workers, deep-document hybrid
      // latency must beat the committed sequential numbers by >= 3x (and
      // answers must be byte-identical, checked above).
      if (workers >= 4) GKX_CHECK(vs_committed >= 3.0);
    }
  }
  table.Print();
}

void RunCorpusClassification() {
  const char* corpus[] = {
      "/descendant::a/child::b",
      "a/b | c/d",
      "child::a[descendant::c]",
      "a[b and c or d]",
      "child::a[not(following-sibling::d)]",
      "a[b][c]",
      "child::a[position() + 1 = last()]",
      "a[2]",
      "a[not(position() = 2)]",
      "a[position() = 1][last() = 2]",
      "a[boolean(child::b)]",
      "a[concat('x', 'y') = 'xy']",
      "a[count(child::b) = 2]",
      "a[not(string(b) = 'x')]",
  };
  bench::Table table({"query", "smallest fragment", "combined complexity"});
  for (const char* text : corpus) {
    xpath::Query query = xpath::MustParse(text);
    Fragment smallest = Classify(query).smallest;
    table.AddRow({text, std::string(FragmentName(smallest)),
                  std::string(FragmentComplexity(smallest))});
  }
  table.Print();
}

void RunRandomCensusAndTiming(bench::JsonReport* json) {
  Rng rng(2003);
  xml::RandomDocumentOptions doc_options;
  doc_options.node_count = 400;
  xml::Document doc = xml::RandomDocument(&rng, doc_options);

  bench::Table table({"generated fragment", "queries", "dispatched engine",
                      "total eval ms", "classification agrees"});
  constexpr Fragment kFragments[] = {
      Fragment::kPF,  Fragment::kPositiveCore, Fragment::kCore,
      Fragment::kPWF, Fragment::kWF,           Fragment::kPXPath,
      Fragment::kFullXPath,
  };
  eval::Engine engine;
  for (Fragment fragment : kFragments) {
    xpath::RandomQueryOptions query_options;
    query_options.fragment = fragment;
    int agree = 0;
    constexpr int kQueries = 40;
    double total_seconds = 0;
    std::map<std::string, int> engine_census;
    for (int i = 0; i < kQueries; ++i) {
      xpath::Query query = xpath::RandomQuery(&rng, query_options);
      if (Classify(query).Contains(fragment)) ++agree;
      Stopwatch sw;
      auto answer = engine.Run(doc, query, eval::RootContext(doc));
      total_seconds += sw.ElapsedSeconds();
      GKX_CHECK(answer.ok());
      ++engine_census[answer->evaluator];
    }
    // Generated queries may land in a smaller fragment than requested (e.g.
    // a WF query without arithmetic is Core) — show the dispatch census.
    std::string dispatched;
    for (const auto& [name, count] : engine_census) {
      if (!dispatched.empty()) dispatched += ", ";
      dispatched += name + " x" + std::to_string(count);
    }
    table.AddRow({std::string(FragmentName(fragment)), bench::Num(kQueries),
                  dispatched, bench::Millis(total_seconds),
                  bench::Num(agree) + "/" + bench::Num(kQueries)});
    json->AddRow({{"section", bench::JsonStr("census")},
                  {"fragment", bench::JsonStr(FragmentName(fragment))},
                  {"queries", bench::JsonNum(kQueries)},
                  {"total_ms", bench::JsonNum(total_seconds * 1e3)},
                  {"classification_agrees", bench::JsonNum(agree)}});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-F1 (Figure 1): fragment landscape",
      "PF ⊂ pos.Core ⊂ {Core, pWF} ⊂ {WF, pXPath} ⊂ XPath; complexities "
      "NL-c / LOGCFL-c / P-c as labeled in Figure 1",
      "classification of a corpus + generated-per-fragment census with "
      "engine dispatch and timings, plus hybrid (staged) routing vs forced "
      "whole-query CVT — expect >= 2x on PF-spine queries");
  gkx::bench::JsonReport json("fig1_fragments", 2003);
  gkx::RunCorpusClassification();
  gkx::RunRandomCensusAndTiming(&json);
  gkx::RunHybridRouting(&json);
  gkx::RunParallelScaling(&json);
  json.Write(gkx::bench::RepoRootPath("BENCH_fragments.json"));
  return 0;
}
