// EXP-F2 — Figures 2 and 3: the carry-bit circuit example. Generalizes the
// paper's 2-bit full-adder carry circuit to b bits, serializes it through the
// Theorem 3.2 reduction (one gate per layer, as in Figure 3), verifies the
// XPath answer against direct circuit evaluation for every input assignment,
// and reports the construction sizes.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "reductions/circuit_to_core_xpath.hpp"

namespace gkx {
namespace {

void Run() {
  bench::Table table({"bits", "inputs M", "gates N (layers)", "doc nodes",
                      "|Q|", "assignments", "verified", "total eval ms"});
  for (int32_t bits = 1; bits <= 4; ++bits) {
    circuits::Circuit circuit = circuits::CarryCircuit(bits);
    const auto assignments = circuits::AllAssignments(2 * bits);
    eval::CoreLinearEvaluator linear;
    int correct = 0;
    double total_seconds = 0;
    int64_t doc_nodes = 0;
    int query_size = 0;
    for (const auto& assignment : assignments) {
      reductions::CircuitReduction instance =
          reductions::CircuitToCoreXPath(circuit, assignment);
      doc_nodes = instance.doc.Stats().node_count;
      query_size = instance.query.size();
      Stopwatch sw;
      auto nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
      total_seconds += sw.ElapsedSeconds();
      GKX_CHECK(nodes.ok());
      if (!nodes->empty() == circuit.Evaluate(assignment)) ++correct;
    }
    table.AddRow({bench::Num(bits), bench::Num(circuit.num_inputs()),
                  bench::Num(circuit.num_logic_gates()), bench::Num(doc_nodes),
                  bench::Num(query_size),
                  bench::Num(static_cast<int64_t>(assignments.size())),
                  bench::Num(correct) + "/" +
                      bench::Num(static_cast<int64_t>(assignments.size())),
                  bench::Millis(total_seconds)});
  }
  table.Print();

  std::printf("Figure 3 layer serialization for bits=2 (N=5 layers, one real "
              "gate per layer):\n");
  circuits::Circuit example = circuits::CarryCircuit(2);
  for (int32_t k = 1; k <= example.num_logic_gates(); ++k) {
    const circuits::Gate& gate = example.gate(example.num_inputs() + k - 1);
    std::printf("  layer L%d: gate G%d (%s), inputs {", k,
                example.num_inputs() + k, std::string(GateKindName(gate.kind)).c_str());
    for (size_t i = 0; i < gate.inputs.size(); ++i) {
      std::printf("%sG%d", i ? ", " : "", gate.inputs[i] + 1);
    }
    std::printf("}\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-F2 (Figures 2+3): carry-bit circuit through the Thm 3.2 reduction",
      "the 2-bit full-adder carry circuit (M=4, N=5) is the running example "
      "of the P-hardness construction; document depth 2, query linear in the "
      "circuit",
      "XPath answer == circuit value for every assignment, for b-bit "
      "generalizations; construction sizes per b");
  gkx::Run();
  return 0;
}
