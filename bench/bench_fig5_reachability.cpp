// EXP-T4.3 — Theorem 4.3 / Figure 5: PF (predicate-free paths) is
// NL-complete via directed reachability. Random digraphs are encoded as
// documents (spine + depth-encoded adjacency chains, Fig 5 style); the PF
// query's non-emptiness must equal BFS reachability. The table sweeps the
// vertex count and compares PF-evaluation time against the BFS baseline.

#include "bench/bench_util.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/pf_evaluator.hpp"
#include "graphs/digraph.hpp"
#include "reductions/reach_to_pf.hpp"

namespace gkx {
namespace {

void Run() {
  bench::Table table({"n vertices", "edges", "|D|", "|Q| steps", "pairs checked",
                      "agree", "PF eval ms", "BFS ms"});
  Rng rng(53);
  for (int32_t n : {4, 8, 12, 16, 24, 32}) {
    graphs::Digraph graph = graphs::RandomDigraph(&rng, n, 2.0 / n);
    graphs::Digraph with_loops = graph;
    with_loops.AddSelfLoops();
    xml::Document doc = reductions::ReachabilityDocument(with_loops);

    eval::PfEvaluator pf;
    eval::CoreLinearEvaluator linear;
    const int pairs = n <= 12 ? n * n : 40;
    int agree = 0;
    double pf_seconds = 0;
    double bfs_seconds = 0;
    int query_steps = 0;
    for (int i = 0; i < pairs; ++i) {
      int32_t src;
      int32_t dst;
      if (n <= 12) {
        src = i / n;
        dst = i % n;
      } else {
        src = static_cast<int32_t>(rng.UniformInt(0, n - 1));
        dst = static_cast<int32_t>(rng.UniformInt(0, n - 1));
      }
      xpath::Query query = reductions::ReachabilityQuery(n, src, dst);
      query_steps = query.num_steps();
      Stopwatch sw;
      auto nodes = pf.EvaluateNodeSet(doc, query);
      pf_seconds += sw.ElapsedSeconds();
      GKX_CHECK(nodes.ok());
      sw.Restart();
      const bool expected = graphs::IsReachable(graph, src, dst);
      bfs_seconds += sw.ElapsedSeconds();
      bool row_ok = !nodes->empty() == expected;
      if (n <= 12) {
        // Cross-check the frontier engine against core-linear.
        auto linear_nodes = linear.EvaluateNodeSet(doc, query);
        GKX_CHECK(linear_nodes.ok());
        row_ok = row_ok && *linear_nodes == *nodes;
      }
      if (row_ok) ++agree;
    }
    table.AddRow({bench::Num(n), bench::Num(graph.num_edges()),
                  bench::Num(doc.Stats().node_count), bench::Num(query_steps),
                  bench::Num(pairs),
                  bench::Num(agree) + "/" + bench::Num(pairs),
                  bench::Millis(pf_seconds), bench::Millis(bfs_seconds, 4)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T4.3 (Theorem 4.3 / Figure 5): PF is NL-complete",
      "directed reachability L-reduces to evaluating a predicate-free "
      "location path (axes child/parent/descendant/self; counted axis "
      "towers; target depth unary-encoded as in Fig 5)",
      "PF answer == BFS on random digraphs; |D| = O(n·|E|·n), |Q| = O(n²); "
      "PF evaluation is polynomial (BFS is the trivial baseline and wins on "
      "absolute time, as expected — NL-hardness is about structure, not "
      "speed)");
  gkx::Run();
  return 0;
}
