// EXP-HD — the huge-document tier: the SoA arena at multi-hundred-MB scale.
// Synthesizes a deterministic corpus document (default ~256 MB of XML),
// then measures the full ingestion-to-serving path:
//
//   ingest    DOM parse vs one-pass streaming parse (which also builds the
//             posting lists) — throughput in MB/s — plus the pre-scan node
//             estimate that sizes the arena columns up front.
//   snapshot  SaveSnapshot wall time and bytes: the relocatable on-disk
//             arena vs the in-memory arena (they differ only by header and
//             name table).
//   coldstart the restart race: parse-then-first-query vs mmap-then-first-
//             query on the same plan. The mmap side touches only the pages
//             the query needs; the parse side must chew through the whole
//             text first. Self-check: mmap-first-query >= 5x faster.
//   answers   every measured plan, evaluated on the DOM document, the
//             streamed document, and the mapped snapshot — all three must
//             be value-identical.
//
// Cold start here means cold *process*, warm page cache (the snapshot was
// just written) — the serving-restart case the snapshot format exists for.
//
// Usage: bench_hugedoc [--smoke | <megabytes>]
//   --smoke: ~8 MB, correctness checks only (CI tier); the >= 5x cold-start
//   bar applies at the default scale, where parse cost dominates noise.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/stopwatch.hpp"
#include "bench/bench_util.hpp"
#include "eval/engine.hpp"
#include "xml/parser.hpp"
#include "xml/parser_core.hpp"
#include "xml/snapshot.hpp"
#include "xml/stream_parser.hpp"

namespace gkx {
namespace {

// Deterministic corpus text: repeated <record> subtrees with names, labels,
// attributes, cross-references, and text payloads — every payload kind the
// arena stores, in realistic proportions (~7 nodes / ~320 bytes per record).
std::string SynthesizeCorpusXml(uint64_t target_bytes, int64_t* record_count) {
  std::string xml;
  xml.reserve(target_bytes + (1 << 16));
  xml += "<?xml version=\"1.0\"?>\n<corpus generator=\"bench_hugedoc\">";
  int64_t i = 0;
  static const char* kKinds[] = {"paper", "tool", "dataset", "survey"};
  while (xml.size() < target_bytes) {
    const std::string serial = std::to_string(i);
    xml += "<record id=\"r";
    xml += serial;
    xml += "\" kind=\"";
    xml += kKinds[i % 4];
    xml += "\"><name>entry ";
    xml += serial;
    xml += "</name><tags labels=\"";
    xml += (i % 3 == 0 ? "G R" : (i % 3 == 1 ? "G" : "R I1"));
    xml += "\"/><body>body text for record ";
    xml += serial;
    xml += " with some filler to give the heap realistic weight";
    xml += "</body><refs><ref to=\"r";
    xml += std::to_string(i / 2);
    xml += "\"/><ref to=\"r";
    xml += std::to_string(i / 3);
    xml += "\"/></refs></record>";
    ++i;
  }
  xml += "</corpus>";
  *record_count = i;
  return xml;
}

struct PlanCase {
  const char* label;
  const char* text;
};

// The measured plans: an index-friendly name lookup, a structural join, and
// a labels-convention filter — the shapes a serving tier actually sees.
constexpr PlanCase kPlans[] = {
    {"names", "/descendant::record/child::name"},
    {"refs_join", "/descendant::refs[count(child::ref) = 2]"},
    {"labels", "/descendant::tags[self::G]/parent::record"},
};

void Run(uint64_t target_bytes, bool smoke) {
  bench::PrintHeader(
      "EXP-HD: structure-of-arrays arena at huge-document scale",
      "LOGCFL/PTIME combined complexity presumes documents too large to "
      "re-walk casually; the data layout must make one pass count",
      "ingestion throughput (DOM vs streaming+index), snapshot save size, "
      "and the restart race: parse-then-query vs mmap-then-query");

  bench::JsonReport json("hugedoc", /*seed=*/0);
  const std::string snapshot_path =
      bench::RepoRootPath("build/bench_hugedoc.snapshot");

  // ---- synthesize ----
  int64_t records = 0;
  Stopwatch synth_sw;
  const std::string xml = SynthesizeCorpusXml(target_bytes, &records);
  const double synth_seconds = synth_sw.ElapsedSeconds();
  const double xml_mb = static_cast<double>(xml.size()) / (1024.0 * 1024.0);
  std::printf("  corpus: %.1f MB, %lld records (%.2fs to synthesize)\n\n",
              xml_mb, static_cast<long long>(records), synth_seconds);

  // ---- ingest: pre-scan estimate ----
  Stopwatch estimate_sw;
  const int32_t estimated = xml::parser_internal::EstimateNodeCount(xml);
  const double estimate_seconds = estimate_sw.ElapsedSeconds();

  // ---- ingest: DOM parse ----
  Stopwatch dom_sw;
  auto dom = xml::ParseDocument(xml);
  const double dom_seconds = dom_sw.ElapsedSeconds();
  GKX_CHECK(dom.ok());
  const int64_t nodes = dom->size();

  // ---- ingest: streaming parse (arena + posting lists, no DOM) ----
  Stopwatch stream_sw;
  auto streamed = xml::ParseDocumentStream(xml);
  const double stream_seconds = stream_sw.ElapsedSeconds();
  GKX_CHECK(streamed.ok());
  GKX_CHECK(streamed->doc.size() == nodes);

  const double estimate_ratio =
      static_cast<double>(estimated) / static_cast<double>(nodes);
  bench::Table ingest({"path", "seconds", "MB/s", "nodes", "arena MB"});
  const double arena_mb =
      static_cast<double>(dom->ArenaBytes()) / (1024.0 * 1024.0);
  ingest.AddRow({"dom parse", bench::Ratio(dom_seconds),
                 bench::Ratio(xml_mb / dom_seconds, 1), bench::Num(nodes),
                 bench::Ratio(arena_mb, 1)});
  ingest.AddRow({"stream parse + index", bench::Ratio(stream_seconds),
                 bench::Ratio(xml_mb / stream_seconds, 1), bench::Num(nodes),
                 bench::Ratio(arena_mb, 1)});
  ingest.Print();
  std::printf(
      "  pre-scan estimate: %d nodes vs %lld actual (ratio %.3f, %.3fs)\n\n",
      estimated, static_cast<long long>(nodes), estimate_ratio,
      estimate_seconds);
  // The estimate counts '<' + name-start; over-count comes only from
  // comments/PI/CDATA lookalikes, so it lands within a few percent here.
  GKX_CHECK(estimate_ratio >= 0.95 && estimate_ratio <= 1.10);
  json.AddRow({{"section", bench::JsonStr("ingest")},
               {"xml_mb", bench::JsonNum(xml_mb)},
               {"nodes", bench::JsonNum(static_cast<double>(nodes))},
               {"dom_parse_s", bench::JsonNum(dom_seconds)},
               {"stream_parse_index_s", bench::JsonNum(stream_seconds)},
               {"dom_mb_per_s", bench::JsonNum(xml_mb / dom_seconds)},
               {"stream_mb_per_s", bench::JsonNum(xml_mb / stream_seconds)},
               {"estimate_ratio", bench::JsonNum(estimate_ratio)},
               {"prescan_s", bench::JsonNum(estimate_seconds)},
               {"arena_mb", bench::JsonNum(arena_mb)}});

  // ---- snapshot ----
  Stopwatch save_sw;
  GKX_CHECK(xml::SaveSnapshot(*dom, snapshot_path).ok());
  const double save_seconds = save_sw.ElapsedSeconds();
  std::printf("  snapshot: wrote %.1f MB arena in %.2fs\n\n", arena_mb,
              save_seconds);
  json.AddRow({{"section", bench::JsonStr("snapshot")},
               {"save_s", bench::JsonNum(save_seconds)},
               {"arena_mb", bench::JsonNum(arena_mb)}});

  // ---- cold start + answers ----
  eval::Engine engine;
  bench::Table cold({"plan", "parse+query s", "mmap+query s", "speedup",
                     "answers"});
  for (const PlanCase& plan_case : kPlans) {
    auto plan = eval::Engine::Compile(plan_case.text);
    GKX_CHECK(plan.ok());

    // Parse-then-first-query: what a restart without snapshots pays.
    Stopwatch parse_side_sw;
    auto parse_doc = xml::ParseDocument(xml);
    GKX_CHECK(parse_doc.ok());
    auto parse_answer = engine.RunPlan(*parse_doc, *plan);
    const double parse_side_seconds = parse_side_sw.ElapsedSeconds();
    GKX_CHECK(parse_answer.ok());

    // Map-then-first-query: the same first answer straight off the file.
    Stopwatch map_side_sw;
    auto mapped = xml::MapSnapshot(snapshot_path);
    GKX_CHECK(mapped.ok());
    auto mapped_answer = engine.RunPlan(*mapped, *plan);
    const double map_side_seconds = map_side_sw.ElapsedSeconds();
    GKX_CHECK(mapped_answer.ok());

    // The same plan on the streamed document: three independent ingestion
    // paths, one answer.
    auto streamed_answer = engine.RunPlan(streamed->doc, *plan);
    GKX_CHECK(streamed_answer.ok());
    const bool identical = mapped_answer->value.Equals(parse_answer->value) &&
                           streamed_answer->value.Equals(parse_answer->value);
    GKX_CHECK(identical);

    const double speedup = parse_side_seconds / map_side_seconds;
    cold.AddRow({plan_case.label, bench::Ratio(parse_side_seconds),
                 bench::Ratio(map_side_seconds), bench::Ratio(speedup, 1),
                 bench::PassFail(identical)});
    json.AddRow({{"section", bench::JsonStr("coldstart")},
                 {"plan", bench::JsonStr(plan_case.text)},
                 {"parse_query_s", bench::JsonNum(parse_side_seconds)},
                 {"mmap_query_s", bench::JsonNum(map_side_seconds)},
                 {"speedup", bench::JsonNum(speedup)}});
    // The acceptance bar: serving off a snapshot must beat re-parsing by
    // at least 5x to first answer. Smoke scale is too small for a stable
    // ratio; correctness still holds there.
    if (!smoke) GKX_CHECK(speedup >= 5.0);
  }
  cold.Print();

  std::remove(snapshot_path.c_str());
  json.Write(bench::RepoRootPath("BENCH_hugedoc.json"));
}

}  // namespace
}  // namespace gkx

int main(int argc, char** argv) {
  uint64_t megabytes = 256;
  bool smoke = false;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--smoke") == 0) {
      smoke = true;
      megabytes = 8;
    } else {
      megabytes = static_cast<uint64_t>(std::atoll(argv[1]));
      GKX_CHECK(megabytes > 0);
    }
  }
  gkx::Run(megabytes * 1024 * 1024, smoke);
  return 0;
}
