// EXP-OBS-OVERHEAD: what request tracing costs on the hottest serving
// path. Re-runs the EXP-MVIEW-WARM regime (repeated identical queries,
// warm plan + answer caches — requests that do almost no work, so any
// per-request bookkeeping is maximally visible) three ways:
//   * tracing off  — Options::obs.tracing = false; only the always-on
//     total-latency histogram records,
//   * tracing on   — per-stage stamps, per-route histograms, slow-query
//     eligibility checks on every request,
//   * (build-time) — configuring with -DGKX_OBS_DISABLED=ON compiles the
//     traced path out entirely; this binary then measures off vs off and
//     the ratio pins the escape hatch at ~1.0.
// The acceptance bar, self-checked below: traced throughput >= 95% of
// untraced (tracing costs < 5%). Best-of-N rounds per mode so scheduler
// noise doesn't fail the bar on a loaded machine.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "obs/trace.hpp"
#include "service/query_service.hpp"
#include "xml/generator.hpp"

namespace gkx {
namespace {

const char* kTemplates[] = {
    "/descendant::t0/child::t1",
    "//t2",
    "/descendant::t1[child::t2]",
    "/descendant::t0[not(child::t3)]",
    "/descendant::t2[position() = 2]",
    "count(/descendant::t1)",
    "/descendant::t3 | //t0/child::t2",
    "/descendant::t1/parent::t0",
    "/descendant::t0/child::t1[position() = 2]/descendant::t2",
};

void RegisterCorpus(service::QueryService& svc) {
  Rng rng(271);  // identical documents in every mode
  xml::RandomDocumentOptions options;
  options.text_probability = 0.3;
  for (int d = 0; d < 3; ++d) {
    options.node_count = 1500 << d;  // 1500 / 3000 / 6000 nodes
    GKX_CHECK(svc.RegisterDocument("big" + std::to_string(d),
                                   xml::RandomDocument(&rng, options))
                  .ok());
  }
}

std::vector<service::QueryService::Request> MakeRequests() {
  std::vector<service::QueryService::Request> requests;
  for (int d = 0; d < 3; ++d) {
    for (const char* query : kTemplates) {
      requests.push_back({"big" + std::to_string(d), query});
    }
  }
  return requests;
}

struct ModeResult {
  double qps = 0.0;       // best round
  int64_t requests = 0;   // per round
};

ModeResult RunMode(bool tracing, const char* excerpt_or_null) {
  service::QueryService::Options options;
  options.plan_cache.capacity = 4096;
  options.obs.tracing = tracing;
  options.obs.slow_query_ms = 1e9;  // threshold checks run; nothing logs
  service::QueryService svc(options);
  RegisterCorpus(svc);

  const auto requests = MakeRequests();
  svc.SubmitBatch(requests);  // untimed: warm plan + answer caches

  // Best-of-kRounds: each round serves the whole request set kReps times
  // from the warm answer cache.
  const int kRounds = 5;
  const int kReps = 24;
  ModeResult result;
  result.requests =
      static_cast<int64_t>(requests.size()) * kReps;
  for (int round = 0; round < kRounds; ++round) {
    Stopwatch sw;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const auto& response : svc.SubmitBatch(requests)) {
        GKX_CHECK(response.ok());
      }
    }
    const double qps =
        static_cast<double>(result.requests) / sw.ElapsedSeconds();
    result.qps = std::max(result.qps, qps);
  }

  if (excerpt_or_null != nullptr) {
    // A few text-format lines as a README-able sample of the export.
    const std::string text = svc.ExportStats(service::StatsFormat::kText);
    std::printf("%s (ExportStats text excerpt):\n", excerpt_or_null);
    size_t printed = 0, pos = 0;
    for (const char* want :
         {"gkx_service_requests ", "gkx_latency_ms_p99 ",
          "gkx_routes_pf_indexed_count ", "gkx_answer_cache_hits "}) {
      pos = text.find(want);
      if (pos == std::string::npos) continue;
      const size_t end = text.find('\n', pos);
      std::printf("    %s\n",
                  text.substr(pos, end - pos).c_str());
      ++printed;
    }
    GKX_CHECK(printed > 0);  // the export really contains these series
  }
  return result;
}

void Run(bench::JsonReport* json) {
  const bool compiled_out = obs::kCompiledOut;
  bench::Table table(
      {"tracing", "requests/round", "best qps", "traced/untraced"});

  const ModeResult off = RunMode(false, nullptr);
  const ModeResult on = RunMode(true, "  traced service");
  const double ratio = on.qps / off.qps;

  table.AddRow({"off", bench::Num(off.requests),
                bench::Num(static_cast<int64_t>(off.qps)), "-"});
  table.AddRow({compiled_out ? "on (compiled out)" : "on",
                bench::Num(on.requests),
                bench::Num(static_cast<int64_t>(on.qps)),
                bench::Ratio(ratio, 3)});
  table.Print();

  for (const bool tracing : {false, true}) {
    const ModeResult& r = tracing ? on : off;
    json->AddRow(
        {{"scenario", bench::JsonStr("obs_overhead_warm")},
         {"tracing", bench::JsonStr(tracing ? "on" : "off")},
         {"compiled_out", bench::JsonNum(compiled_out ? 1.0 : 0.0)},
         {"requests_per_round", bench::JsonNum(static_cast<double>(r.requests))},
         {"best_qps", bench::JsonNum(r.qps)},
         {"traced_over_untraced", bench::JsonNum(tracing ? ratio : 1.0)}});
  }

  // The acceptance bar: full tracing must cost < 5% on the warm-cache
  // path (and with GKX_OBS_DISABLED both modes are the same code).
  GKX_CHECK(ratio >= 0.95);
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-OBS-OVERHEAD: request tracing cost on the warm-answer-cache path",
      "observability context: per-stage timers, per-route histograms and "
      "slow-query checks run inside every Submit; the paper's evaluators "
      "are untouched — this prices the serving layer's bookkeeping",
      "best-of-5 qps over repeated identical queries with warm plan + "
      "answer caches, Options::obs.tracing off vs on (expect traced >= "
      "0.95x untraced; -DGKX_OBS_DISABLED=ON compiles the gap away)");
  gkx::bench::JsonReport json("obs_overhead", 271);
  gkx::Run(&json);
  json.Write(gkx::bench::RepoRootPath("BENCH_obs_overhead.json"));
  return 0;
}
