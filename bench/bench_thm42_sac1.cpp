// EXP-T4.2 — Theorem 4.2: positive Core XPath is LOGCFL-hard via SAC1
// circuit value. The negation-free reduction doubles the condition tower at
// every ∧-gate (polynomial only because SAC1 circuits have logarithmic
// depth); we verify correctness, record the size growth, and time the
// LOGCFL-appropriate engines (core-linear and the NAuxPDA engine).

#include "bench/bench_util.hpp"
#include "circuits/generators.hpp"
#include "eval/core_linear_evaluator.hpp"
#include "eval/pda_evaluator.hpp"
#include "reductions/sac_to_positive_core.hpp"
#include "xpath/fragment.hpp"

namespace gkx {
namespace {

void Run() {
  bench::Table table({"∧-layers", "layers total", "|D|", "|Q|", "positive?",
                      "verified", "linear ms", "pda ms"});
  Rng rng(42);
  for (int32_t and_layers : {1, 2, 3, 4}) {
    circuits::RandomSacOptions options;
    options.num_inputs = 4;
    options.layers = 2 * and_layers;  // alternating AND/OR
    options.width = 3;
    circuits::Circuit circuit = circuits::RandomSac(&rng, options);

    int verified = 0;
    double linear_seconds = 0;
    double pda_seconds = 0;
    int64_t doc_nodes = 0;
    int query_size = 0;
    bool positive = true;
    const auto assignments = circuits::AllAssignments(options.num_inputs);
    for (const auto& assignment : assignments) {
      reductions::CircuitReduction instance =
          reductions::SacToPositiveCoreXPath(circuit, assignment);
      doc_nodes = instance.doc.Stats().node_count;
      query_size = instance.query.size();
      positive = positive && xpath::Classify(instance.query).in_positive_core;
      const bool expected = circuit.Evaluate(assignment);

      eval::CoreLinearEvaluator linear;
      Stopwatch sw;
      auto linear_nodes = linear.EvaluateNodeSet(instance.doc, instance.query);
      linear_seconds += sw.ElapsedSeconds();
      GKX_CHECK(linear_nodes.ok());
      bool ok = !linear_nodes->empty() == expected;

      if (and_layers <= 3) {  // the PDA engine is the slow, faithful one
        eval::PdaEvaluator pda;
        sw.Restart();
        auto pda_nodes = pda.EvaluateNodeSet(instance.doc, instance.query);
        pda_seconds += sw.ElapsedSeconds();
        GKX_CHECK(pda_nodes.ok());
        ok = ok && !pda_nodes->empty() == expected;
      }
      if (ok) ++verified;
    }
    table.AddRow({bench::Num(and_layers), bench::Num(options.layers),
                  bench::Num(doc_nodes), bench::Num(query_size),
                  positive ? "yes" : "NO",
                  bench::Num(verified) + "/" +
                      bench::Num(static_cast<int64_t>(assignments.size())),
                  bench::Millis(linear_seconds),
                  and_layers <= 3 ? bench::Millis(pda_seconds) : "(skipped)"});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T4.2 (Theorem 4.2): positive Core XPath is LOGCFL-hard",
      "SAC1 circuit value reduces to negation-free Core XPath; the ∧-step "
      "duplicates the subexpression, so |Q| grows ~2x per ∧-layer "
      "(polynomial for logarithmic depth)",
      "reduction correctness over all assignments; negation-free fragment "
      "check; |Q| growth per ∧-layer; LOGCFL-engine timings");
  gkx::Run();
  return 0;
}
