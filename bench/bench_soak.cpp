// Soak runner: replays deterministic concurrent workloads (gkx::testkit)
// against a QueryService until a time budget is exhausted, rotating the
// seed each round. Exits non-zero on the first failing round and prints the
// reproducing seed — rerun with --seed=<that> --rounds=1 to replay the
// exact schedule (the thread interleaving is the only nondeterminism).
//
//   ./bench_soak --seconds=30 --threads=4        # CI short mode
//   ./bench_soak --seed=42 --rounds=1            # replay one seed
//   ./bench_soak --ops=50000 --seconds=600       # heavier local soak
//
// Flags: --seed= first seed (default 1), --rounds= max rounds (default
// unlimited), --seconds= time budget (default 30), --threads= (default 4),
// --ops= schedule length per round (default 10000), --churn= probability
// (default 0.004), --edits= fraction of churn carried out as subtree
// patches through the delta pipeline (default 0.5; 0 = whole-document
// replacement only), --subs= standing queries per round (default 4 — the
// subscription soak; 0 disables), --exec-threads= intra-query workers for
// staged execution (default 1 = sequential; >1 partitions sweeps and runs
// the per-origin cvt loop concurrently — the TSan parallel soak round sets
// this), --wal-dir=DIR run every round with the durable write-ahead log
// under DIR/round<N> (each round's directory is wiped first; default off =
// in-memory), --stats-json=PATH dump the last round's
// QueryService::ExportStats(kJson) document (the CI schema check reads it).
//
// Emits BENCH_soak.json (per-round rows, repo root) for cross-PR tracking.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "base/stopwatch.hpp"
#include "bench/bench_util.hpp"
#include "testkit/soak_driver.hpp"
#include "testkit/workload.hpp"

namespace {

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return fallback;
}

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using gkx::testkit::CompileWorkload;
  using gkx::testkit::RunSoak;
  using gkx::testkit::SoakOptions;
  using gkx::testkit::SoakReport;
  using gkx::testkit::WorkloadSpec;

  const uint64_t first_seed =
      static_cast<uint64_t>(FlagValue(argc, argv, "seed", 1));
  const int64_t max_rounds = FlagValue(argc, argv, "rounds", 0);  // 0 = no cap
  const double seconds = FlagDouble(argc, argv, "seconds", 30.0);
  const int threads = static_cast<int>(FlagValue(argc, argv, "threads", 4));
  const int ops = static_cast<int>(FlagValue(argc, argv, "ops", 10000));
  const double churn = FlagDouble(argc, argv, "churn", 0.004);
  const double edits = FlagDouble(argc, argv, "edits", 0.5);
  const int subs = static_cast<int>(FlagValue(argc, argv, "subs", 4));
  const int exec_threads =
      static_cast<int>(FlagValue(argc, argv, "exec-threads", 1));
  const std::string stats_json_path =
      FlagString(argc, argv, "stats-json", "");
  const std::string wal_dir = FlagString(argc, argv, "wal-dir", "");

  gkx::bench::PrintHeader(
      "soak — deterministic concurrent differential workload",
      "every fragment-specialised engine computes the same XPath semantics",
      "QueryService answers vs a single-threaded naive oracle under "
      "concurrent mixed traffic (zipfian popularity, batches, churn, "
      "standing-query subscriptions, materialized answer cache)");

  gkx::bench::Table table({"round", "seed", "ops", "requests", "plan_hr",
                           "ans_hr", "sub_diffs", "p99_ms", "verdict"});
  gkx::bench::JsonReport json("soak", first_seed);
  gkx::Stopwatch budget;
  int64_t round = 0;
  uint64_t seed = first_seed;
  bool failed = false;
  std::string last_stats_json;
  while (!failed) {
    if (max_rounds > 0 && round >= max_rounds) break;
    if (round > 0 && budget.ElapsedSeconds() >= seconds) break;

    WorkloadSpec spec;
    spec.seed = seed;
    spec.operations = ops;
    spec.churn_probability = churn;
    spec.edit_probability = edits;
    spec.query_options.max_condition_depth = 2;
    spec.query_options.tag_zipf_s = 0.7;
    spec.document_options.tag_zipf_s = 0.7;
    spec.min_document_nodes = 30;
    spec.max_document_nodes = 90;
    auto schedule = CompileWorkload(spec);
    GKX_CHECK(schedule.ok());

    SoakOptions options;
    options.threads = threads;
    options.standing_queries = subs;
    options.service.plan_cache.capacity = 64;
    options.service.exec.workers = exec_threads;
    if (exec_threads > 1) {
      // The soak is a correctness harness, not a perf run: force the
      // cost-model thresholds down so the soak's small documents really
      // exercise the partitioned sweeps and the concurrent cvt memo
      // (otherwise everything stays sequential and the parallel paths go
      // untested — the exec stats dump would show parallel_segments == 0).
      options.service.exec.min_parallel_nodes = 1;
      options.service.exec.min_parallel_origins = 1;
    }
    if (!wal_dir.empty()) {
      // Durable soak: every mutation rides through the group-commit WAL.
      // Fresh directory per round — the soak oracle checks the live corpus,
      // recovery is bench_wal/wal_recovery_test territory.
      options.service.wal_dir = wal_dir + "/round" + std::to_string(round);
      std::filesystem::remove_all(options.service.wal_dir);
    }
    SoakReport report = RunSoak(*schedule, options);
    last_stats_json = report.stats_json;

    table.AddRow({gkx::bench::Num(round), gkx::bench::Num(static_cast<int64_t>(seed)),
                  gkx::bench::Num(report.operations),
                  gkx::bench::Num(report.requests),
                  gkx::bench::Ratio(report.stats.plan_cache.HitRate()),
                  gkx::bench::Ratio(report.stats.answer_cache.HitRate()),
                  gkx::bench::Num(report.subscription_events),
                  gkx::bench::Ratio(report.stats.latency.p99_ms, 3),
                  gkx::bench::PassFail(report.ok())});
    json.AddRow(
        {{"round", gkx::bench::JsonNum(static_cast<double>(round))},
         {"seed", gkx::bench::JsonNum(static_cast<double>(seed))},
         {"operations", gkx::bench::JsonNum(static_cast<double>(report.operations))},
         {"requests", gkx::bench::JsonNum(static_cast<double>(report.requests))},
         {"plan_hit_rate", gkx::bench::JsonNum(report.stats.plan_cache.HitRate())},
         {"answer_hit_rate",
          gkx::bench::JsonNum(report.stats.answer_cache.HitRate())},
         {"answer_invalidations",
          gkx::bench::JsonNum(
              static_cast<double>(report.stats.answer_cache.invalidations))},
         {"answer_retained",
          gkx::bench::JsonNum(
              static_cast<double>(report.stats.answer_cache.retained))},
         {"subscription_events",
          gkx::bench::JsonNum(static_cast<double>(report.subscription_events))},
         {"subscription_coalesced",
          gkx::bench::JsonNum(
              static_cast<double>(report.stats.subscriptions.coalesced))},
         {"p99_ms", gkx::bench::JsonNum(report.stats.latency.p99_ms)},
         {"p999_ms", gkx::bench::JsonNum(report.stats.latency.p999_ms)},
         {"ok", gkx::bench::JsonNum(report.ok() ? 1.0 : 0.0)}});
    if (!report.ok()) {
      failed = true;
      std::printf("%s\n", report.Summary().c_str());
      std::printf("\nREPRODUCE: %s --seed=%llu --rounds=1 --threads=%d --ops=%d --churn=%g --subs=%d --exec-threads=%d%s%s\n",
                  argv[0], static_cast<unsigned long long>(seed), threads, ops,
                  churn, subs, exec_threads,
                  wal_dir.empty() ? "" : " --wal-dir=",
                  wal_dir.empty() ? "" : wal_dir.c_str());
    }
    ++round;
    ++seed;
  }

  table.Print();
  json.Write(gkx::bench::RepoRootPath("BENCH_soak.json"));
  if (!stats_json_path.empty() && !last_stats_json.empty()) {
    std::FILE* f = std::fopen(stats_json_path.c_str(), "w");
    GKX_CHECK(f != nullptr);
    std::fputs(last_stats_json.c_str(), f);
    GKX_CHECK(std::fclose(f) == 0);
    std::printf("  wrote %s (stats export, last round)\n", stats_json_path.c_str());
  }
  std::printf("soaked %lld round(s) in %.1fs — %s\n",
              static_cast<long long>(round), budget.ElapsedSeconds(),
              failed ? "FAIL" : "ok");
  return failed ? 1 : 0;
}
