// EXP-T5.7 — Theorem 5.7 / Corollary 5.8: pWF + iterated predicates is
// P-complete. The negation-free reduction (not() encoded via predicate
// sequences [·][last()=1] / [·][last()>1] with the W-children and the
// A-labeled root) is verified against direct circuit evaluation and its
// construction sizes are tracked alongside the Theorem 3.2 baseline.

#include "bench/bench_util.hpp"
#include "circuits/generators.hpp"
#include "eval/cvt_evaluator.hpp"
#include "reductions/circuit_to_core_xpath.hpp"
#include "reductions/circuit_to_iterated_pwf.hpp"
#include "xpath/analysis.hpp"

namespace gkx {
namespace {

void Run() {
  bench::Table table({"gates N", "|D'| (W-extended)", "|Q'|", "|Q| (Thm 3.2)",
                      "max pred chain", "negation-free", "verified", "cvt ms"});
  Rng rng(57);
  circuits::RandomMonotoneOptions options;
  options.num_inputs = 5;
  for (int32_t gates : {4, 8, 16, 32, 64}) {
    options.num_gates = gates;
    circuits::Circuit circuit = circuits::RandomMonotone(&rng, options);
    int verified = 0;
    constexpr int kAssignments = 4;
    double cvt_seconds = 0;
    int64_t doc_nodes = 0;
    int query_size = 0;
    int baseline_size = 0;
    int max_chain = 0;
    bool negation_free = true;
    for (int a = 0; a < kAssignments; ++a) {
      std::vector<bool> assignment;
      for (int32_t i = 0; i < options.num_inputs; ++i) {
        assignment.push_back(rng.Bernoulli(0.5));
      }
      reductions::CircuitReduction instance =
          reductions::CircuitToIteratedPwf(circuit, assignment);
      reductions::CircuitReduction baseline =
          reductions::CircuitToCoreXPath(circuit, assignment);
      doc_nodes = instance.doc.Stats().node_count;
      query_size = instance.query.size();
      baseline_size = baseline.query.size();
      xpath::QueryAnalysis analysis = xpath::Analyze(instance.query);
      max_chain = analysis.max_predicates_per_step;
      negation_free = negation_free && !analysis.has_negation;

      eval::CvtEvaluator cvt;
      Stopwatch sw;
      auto nodes = cvt.EvaluateNodeSet(instance.doc, instance.query);
      cvt_seconds += sw.ElapsedSeconds();
      GKX_CHECK(nodes.ok());
      if (!nodes->empty() == circuit.Evaluate(assignment)) ++verified;
    }
    table.AddRow({bench::Num(gates), bench::Num(doc_nodes),
                  bench::Num(query_size), bench::Num(baseline_size),
                  bench::Num(max_chain), negation_free ? "yes" : "NO",
                  bench::Num(verified) + "/" + bench::Num(kAssignments),
                  bench::Millis(cvt_seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace gkx

int main() {
  gkx::bench::PrintHeader(
      "EXP-T5.7 (Theorem 5.7 / Corollary 5.8): iterated predicates restore "
      "P-hardness without negation",
      "predicate sequences of length 2 with last() tests encode not(); the "
      "construction extends the Thm 3.2 document with W-children and an "
      "A-labeled root",
      "reduction correctness on random circuits; predicate chains stay at "
      "length 2 (Cor 5.8); construction sizes remain linear, like Thm 3.2");
  gkx::Run();
  return 0;
}
