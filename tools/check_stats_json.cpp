// CI schema check for QueryService::ExportStats(kJson) dumps (the
// "gkx-stats-v1" document bench_soak writes via --stats-json=). Parses the
// file back through obs::json, requires every top-level section the schema
// promises, and re-proves the reconciliation invariant offline: when
// tracing was active, the per-route histogram counts must sum to the
// per-segment route counters exactly.
//
//   ./check_stats_json BENCH_soak_stats.json
//
// Exits 0 on a valid document, 1 with a diagnostic otherwise.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "check_stats_json: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    return Fail("usage: check_stats_json <stats.json>");
  }
  std::ifstream in(argv[1]);
  if (!in) return Fail(std::string("cannot open ") + argv[1]);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto parsed = gkx::obs::json::Parse(text);
  if (!parsed.ok()) {
    return Fail("parse error: " + parsed.status().ToString());
  }
  const gkx::obs::json::Value& root = *parsed;

  const auto* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->AsString() != "gkx-stats-v1") {
    return Fail("missing or wrong \"schema\" (want \"gkx-stats-v1\")");
  }

  for (const char* section :
       {"service", "plan_cache", "answer_cache", "subscriptions",
        "evaluator_counts", "segment_route_counts", "exec", "latency_ms",
        "routes", "metrics", "slow_queries"}) {
    if (root.Find(section) == nullptr) {
      return Fail(std::string("missing section \"") + section + "\"");
    }
  }

  for (const char* path :
       {"service.requests", "service.failures", "service.documents",
        "service.tracing",
        "latency_ms.count", "latency_ms.p50", "latency_ms.p99",
        "latency_ms.p999", "latency_ms.max"}) {
    if (root.FindPath(path) == nullptr) {
      return Fail(std::string("missing field \"") + path + "\"");
    }
  }

  // Always-on latency: one sample per successful request.
  const double requests = root.FindPath("service.requests")->AsNumber();
  const double failures = root.FindPath("service.failures")->AsNumber();
  const double latency_count = root.FindPath("latency_ms.count")->AsNumber();
  if (latency_count != requests - failures) {
    return Fail("latency_ms.count != service.requests - service.failures");
  }

  // Staged-executor dispatch accounting, offline: every segment a
  // successful staged run dispatched landed in exactly one bucket, so the
  // three buckets must sum to the staged-segment counter — for sequential
  // and parallel (exec.workers > 1) services alike.
  for (const char* path :
       {"exec.staged_segments", "exec.parallel_segments",
        "exec.sequential_segments", "exec.skipped_segments"}) {
    if (root.FindPath(path) == nullptr) {
      return Fail(std::string("missing field \"") + path + "\"");
    }
  }
  const double staged = root.FindPath("exec.staged_segments")->AsNumber();
  const double exec_buckets =
      root.FindPath("exec.parallel_segments")->AsNumber() +
      root.FindPath("exec.sequential_segments")->AsNumber() +
      root.FindPath("exec.skipped_segments")->AsNumber();
  if (exec_buckets != staged) {
    return Fail(
        "exec.parallel_segments + exec.sequential_segments + "
        "exec.skipped_segments != exec.staged_segments");
  }

  // Route-histogram reconciliation, offline: with tracing active since
  // construction, each route's histogram count equals its segment counter
  // and the totals match exactly.
  const bool tracing = root.FindPath("service.tracing")->AsBool();
  if (tracing) {
    const auto& routes = *root.Find("routes");
    const auto& segments = *root.Find("segment_route_counts");
    double route_total = 0.0, segment_total = 0.0;
    for (const auto& [label, summary] : routes.members()) {
      const auto* count = summary.Find("count");
      if (count == nullptr) {
        return Fail("routes." + label + " has no count");
      }
      route_total += count->AsNumber();
      const auto* segment = segments.Find(label);
      if (segment == nullptr) {
        return Fail("routes." + label + " has no segment_route_counts twin");
      }
      if (segment->AsNumber() != count->AsNumber()) {
        return Fail("routes." + label + ".count != segment_route_counts." +
                    label);
      }
    }
    for (const auto& [label, count] : segments.members()) {
      segment_total += count.AsNumber();
      if (routes.Find(label) == nullptr) {
        return Fail("segment_route_counts." + label + " has no routes twin");
      }
    }
    if (route_total != segment_total) {
      return Fail("sum(routes.*.count) != sum(segment_route_counts.*)");
    }
  }

  // Durable services export the wal.* family (src/wal/wal.hpp). The
  // section is optional — an in-memory service never creates the metrics —
  // but when a WAL was attached the whole family must be present and
  // reconcile: each enqueued record is awaited exactly once (records ==
  // append_ms.count) and occupies at least the minimum frame on disk
  // (8-byte frame header + 13-byte minimum payload, src/wal/record.hpp).
  const auto* wal = root.FindPath("metrics.wal");
  if (wal != nullptr) {
    for (const char* field :
         {"append_ms", "fsync_batch_ms", "checkpoint_ms", "replay_ms",
          "records", "bytes", "torn_tail"}) {
      if (wal->Find(field) == nullptr) {
        return Fail(std::string("metrics.wal present but missing \"") + field +
                    "\"");
      }
    }
    const double wal_records = wal->Find("records")->AsNumber();
    const auto* append_count = wal->FindPath("append_ms.count");
    if (append_count == nullptr) {
      return Fail("metrics.wal.append_ms has no count");
    }
    if (append_count->AsNumber() != wal_records) {
      return Fail("metrics.wal.records != metrics.wal.append_ms.count");
    }
    if (wal->Find("bytes")->AsNumber() < wal_records * 21.0) {
      return Fail("metrics.wal.bytes < records * minimum frame size (21)");
    }
    if (wal->Find("torn_tail")->AsNumber() < 0.0) {
      return Fail("metrics.wal.torn_tail is negative");
    }
  }

  // Sharded exports (ShardedQueryService::ExportStats) carry the same
  // aggregated document at top level plus a shards[] breakdown — one full
  // per-shard document each. The aggregate is recomputed here from the
  // breakdown: requests, failures, documents, latency samples, and every
  // per-route segment counter must sum to the top-level figures exactly
  // (scatter-gather may reorder work across shards but can neither invent
  // nor drop any of it).
  const auto* shards = root.Find("shards");
  if (shards != nullptr) {
    const auto* declared = root.FindPath("sharding.shards");
    if (declared == nullptr) {
      return Fail("\"shards\" breakdown without \"sharding.shards\"");
    }
    if (!shards->is_array() ||
        declared->AsNumber() != static_cast<double>(shards->items().size())) {
      return Fail("sharding.shards != len(shards)");
    }
    double shard_requests = 0, shard_failures = 0, shard_documents = 0,
           shard_latency = 0;
    std::map<std::string, double> shard_segments;
    for (const auto& shard : shards->items()) {
      for (const char* path :
           {"shard", "service.requests", "service.failures",
            "service.documents", "latency_ms.count"}) {
        if (shard.FindPath(path) == nullptr) {
          return Fail(std::string("shards[] entry missing \"") + path + "\"");
        }
      }
      shard_requests += shard.FindPath("service.requests")->AsNumber();
      shard_failures += shard.FindPath("service.failures")->AsNumber();
      shard_documents += shard.FindPath("service.documents")->AsNumber();
      shard_latency += shard.FindPath("latency_ms.count")->AsNumber();
      const auto* segments = shard.Find("segment_route_counts");
      if (segments == nullptr) {
        return Fail("shards[] entry missing \"segment_route_counts\"");
      }
      for (const auto& [label, count] : segments->members()) {
        shard_segments[label] += count.AsNumber();
      }
    }
    if (shard_requests != requests) {
      return Fail("sum(shards[].service.requests) != service.requests");
    }
    if (shard_failures != failures) {
      return Fail("sum(shards[].service.failures) != service.failures");
    }
    if (shard_documents != root.FindPath("service.documents")->AsNumber()) {
      return Fail("sum(shards[].service.documents) != service.documents");
    }
    if (shard_latency != latency_count) {
      return Fail("sum(shards[].latency_ms.count) != latency_ms.count");
    }
    const auto& segments = *root.Find("segment_route_counts");
    for (const auto& [label, count] : segments.members()) {
      if (shard_segments[label] != count.AsNumber()) {
        return Fail("sum(shards[].segment_route_counts." + label +
                    ") != segment_route_counts." + label);
      }
      shard_segments.erase(label);
    }
    if (!shard_segments.empty()) {
      return Fail("shards[] carry segment_route_counts." +
                  shard_segments.begin()->first +
                  " that the aggregate lacks");
    }
  }

  std::printf(
      "check_stats_json: %s ok (%zu bytes, tracing %s, wal %s, shards %s)\n",
      argv[1], text.size(), tracing ? "on" : "off",
      wal != nullptr ? "on" : "off",
      shards != nullptr ? std::to_string(shards->items().size()).c_str()
                        : "n/a");
  return 0;
}
