// Durable delta write-ahead log with snapshot checkpoints — ROADMAP item 2.
//
// Layout of a WAL directory:
//   journal.log            append-only record frames (wal/record.hpp)
//   MANIFEST               last checkpoint: snapshot set + journal offset +
//                          revision watermark, one CRC frame, written
//                          atomically (temp + rename, like snapshots)
//   snap-<seq>-<i>.arena   per-document xml::SaveSnapshot files named by
//                          the manifest; stale generations are deleted
//                          after the manifest rename
//
// Write path (group commit): DocumentStore encodes the record body OUTSIDE
// its install lock (MakePut/MakeUpdate/MakeRemove), then — under the lock,
// at the moment the revision is assigned — Enqueue() stamps the revision
// and appends the frame to an in-memory commit buffer. Journal order is
// therefore exactly revision order. A dedicated committer thread wakes on
// the first pending record, sleeps the group-commit window so concurrent
// writers pile on, then write()s + fdatasync()s the whole batch and
// advances the durable sequence; WaitDurable(ticket) blocks the mutating
// caller (outside the store lock) until its record's batch is durable. One
// fsync thus covers every mutation that arrived within the window — the
// amortization that keeps durable update throughput within reach of the
// in-memory rate (bench_wal self-checks >= 0.5x).
//
// Checkpoint: capture the journal's logical offset FIRST, then snapshot
// every document and write the manifest. Records enqueued between the
// offset capture and the document reads may be reflected in both a
// snapshot and the replayed suffix; replay skips any record whose revision
// is <= the per-key snapshot revision, so the double-coverage is harmless
// (replay idempotence, tested).
//
// Recovery (OpenAndRecover): read MANIFEST if present -> MapSnapshot each
// document into the store with its pinned revision -> replay the journal
// suffix from the manifest offset through the store's Recover* paths ->
// stop at the first bad frame (short header, implausible size, CRC
// mismatch), truncate that torn tail, and count it in wal.torn_tail. The
// recovery invariant — snapshot + replayed suffix reproduces an
// ExhaustiveEquals-identical corpus containing exactly the acked
// mutations — is what testkit::RunRecoverySoak and wal_recovery_test
// re-prove under kill/checkpoint/reopen rounds. Recovery always ends by
// writing a fresh checkpoint of the recovered state and resetting the
// journal to empty, so a recovered directory is indistinguishable from a
// freshly checkpointed one (and repeated crashes cannot grow the journal
// without bound).

#ifndef GKX_WAL_WAL_HPP_
#define GKX_WAL_WAL_HPP_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "base/status.hpp"
#include "obs/metrics.hpp"
#include "wal/record.hpp"
#include "xml/document.hpp"
#include "xml/edit.hpp"

namespace gkx::service {
class DocumentStore;
}

namespace gkx::wal {

struct WalOptions {
  /// Directory holding journal + manifest + snapshots; created if missing.
  std::string dir;
  /// How long the committer waits after the first pending record before
  /// flushing, letting concurrent writers join the batch. 0 flushes
  /// immediately (lowest latency, one fsync per record under light load).
  int64_t group_commit_window_us = 200;
  /// fdatasync every batch. Turning this off keeps the journal bytes
  /// correct but loses the durability guarantee — only for tests/benches
  /// isolating the fsync cost.
  bool fsync = true;
  /// QueryService auto-checkpoints when the journal grows this many bytes
  /// past the last checkpoint; 0 = manual checkpoints only.
  int64_t checkpoint_every_bytes = 64 << 20;
};

/// What recovery found and did; exposed via QueryService::wal_recovery().
struct RecoveryReport {
  int64_t snapshots_loaded = 0;   // documents restored from the manifest
  int64_t records_replayed = 0;   // journal suffix records applied
  int64_t records_skipped = 0;    // suffix records a snapshot already covered
  int64_t torn_tail_bytes = 0;    // bytes truncated at the first bad frame
  std::string torn_tail_reason;   // empty when the journal ended cleanly
  int64_t revision_watermark = 0; // store revision floor after recovery
  bool torn() const { return !torn_tail_reason.empty(); }
};

class Wal {
 public:
  /// A fully encoded record body awaiting its revision stamp. Built outside
  /// any lock; Enqueue consumes it.
  struct PendingRecord {
    std::string payload;
  };

  /// Names one enqueued record; WaitDurable blocks on it.
  struct Ticket {
    int64_t seq = 0;
    uint64_t enqueue_ns = 0;
  };

  /// Opens (creating if needed) the WAL at `options.dir`, recovers its
  /// state into `store`, writes a post-recovery checkpoint, and starts the
  /// committer. `registry` (optional) receives the wal.* metrics. On error
  /// the store may hold a partial corpus and must be discarded.
  static Result<std::unique_ptr<Wal>> OpenAndRecover(
      const WalOptions& options, service::DocumentStore* store,
      RecoveryReport* report, obs::MetricRegistry* registry = nullptr);

  /// Flushes any pending batch (acked records are already durable) and
  /// stops the committer.
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Record builders — the expensive body encoding, done outside the store
  // lock. The revision field is a placeholder until Enqueue stamps it.
  static PendingRecord MakePut(std::string_view key, const xml::Document& doc);
  static PendingRecord MakeUpdate(std::string_view key,
                                  const xml::SubtreeEdit& edit);
  static PendingRecord MakeRemove(std::string_view key);

  /// Stamps `revision` into the record and appends its frame to the commit
  /// buffer. Called by DocumentStore UNDER its install lock, immediately
  /// after assigning the revision — that is the mechanism that makes
  /// journal order identical to revision order. Cheap: one CRC pass + one
  /// buffer append.
  Ticket Enqueue(PendingRecord record, int64_t revision);

  /// Blocks until the batch containing `ticket` is durable (or the journal
  /// hit a sticky I/O error, returned here and to all later callers).
  Status WaitDurable(const Ticket& ticket);

  /// Snapshots every document of `store` and atomically installs a new
  /// manifest. Serialized internally; safe to call concurrently with
  /// mutations (snapshots read immutable shared_ptr documents).
  Status Checkpoint(const service::DocumentStore& store);

  /// Journal bytes enqueued since the last checkpoint — the auto-checkpoint
  /// trigger input.
  int64_t BytesSinceCheckpoint() const;

  const WalOptions& options() const { return options_; }

  /// Test hook simulating a process kill: drops any batch the committer
  /// has not yet picked up and stops without the destructor's final flush.
  /// Records whose WaitDurable returned OK are on disk regardless — that
  /// is the guarantee under test.
  void SimulateCrash();

 private:
  Wal(WalOptions options, obs::MetricRegistry* registry);

  Status Recover(service::DocumentStore* store, RecoveryReport* report);
  void CommitterLoop();

  std::string JournalPath() const;
  std::string ManifestPath() const;

  const WalOptions options_;

  // wal.* metrics; null-safe when no registry was supplied.
  obs::Histogram* append_hist_ = nullptr;      // wal.append_ms
  obs::Histogram* fsync_batch_hist_ = nullptr; // wal.fsync_batch_ms
  obs::Histogram* checkpoint_hist_ = nullptr;  // wal.checkpoint_ms
  obs::Histogram* replay_hist_ = nullptr;      // wal.replay_ms
  obs::Counter* records_counter_ = nullptr;    // wal.records
  obs::Counter* bytes_counter_ = nullptr;      // wal.bytes
  obs::Counter* torn_counter_ = nullptr;       // wal.torn_tail

  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // committer wake-up
  std::condition_variable durable_cv_;  // waiter wake-up
  std::string buffer_;                  // frames awaiting the committer
  int64_t enqueued_seq_ = 0;
  int64_t durable_seq_ = 0;
  uint64_t enqueued_offset_ = kJournalHeaderBytes;   // logical journal end
  uint64_t checkpoint_offset_ = kJournalHeaderBytes; // offset in last manifest
  Status io_status_;  // sticky first write/fsync failure
  bool stop_ = false;
  bool crashed_ = false;

  /// Serializes checkpoints; also guards checkpoint_seq_.
  std::mutex checkpoint_mu_;
  uint64_t checkpoint_seq_ = 0;

  std::thread committer_;
};

}  // namespace gkx::wal

#endif  // GKX_WAL_WAL_HPP_
