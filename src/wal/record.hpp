// Wire format of the write-ahead journal. One journal = a fixed 16-byte
// file header followed by a sequence of frames:
//
//   frame   := [u32 payload_size][u32 crc32(payload)][payload bytes]
//   payload := [i64 revision][u8 op][u32 key_size][key bytes][body]
//
// all integers little-endian. The body depends on op:
//
//   kPut    := [u64 doc_size][arena snapshot bytes]        (whole document)
//   kUpdate := [u8 edit kind][i32 target][i32 position]
//              [u32 text_size][text][u32 label_size][label]
//              [u64 subtree_size][arena snapshot bytes]    (empty if none)
//   kRemove := (empty)
//
// The revision sits at a fixed offset (0) of the payload so DocumentStore
// can stamp it under the install lock — after the expensive body encoding
// already happened outside the lock — without re-encoding. StampRevision
// patches those 8 bytes; the CRC is computed at frame-append time, which is
// also under the lock but is a single cheap pass.
//
// Recovery reads frames until the first failure (short header, implausible
// size, CRC mismatch). Because appends are sequential, any such failure is
// a torn tail from a crash mid-write (or corruption); everything from that
// offset on is truncated and reported, never partially applied — a frame's
// CRC is verified before its payload is decoded.

#ifndef GKX_WAL_RECORD_HPP_
#define GKX_WAL_RECORD_HPP_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "base/status.hpp"
#include "xml/edit.hpp"
#include "xml/document.hpp"

namespace gkx::wal {

/// Journal file header: magic, format version, reserved zero word.
inline constexpr char kJournalMagic[8] = {'G', 'K', 'X', 'W', 'A', 'L', '1', '\n'};
inline constexpr uint32_t kJournalFormatVersion = 1;
inline constexpr uint64_t kJournalHeaderBytes = 16;

/// Frame header: u32 payload size + u32 CRC.
inline constexpr uint64_t kFrameHeaderBytes = 8;

/// Smallest possible payload: revision + op + empty key + empty body.
inline constexpr uint64_t kMinPayloadBytes = 8 + 1 + 4;

/// Frames larger than this are rejected as corrupt at read time (a bit flip
/// in the size field must not cause a multi-GB allocation or a bogus skip).
inline constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 40;

enum class Op : uint8_t {
  kPut = 1,     // install a whole document
  kUpdate = 2,  // apply a SubtreeEdit to the installed document
  kRemove = 3,  // remove the document
};

/// One decoded journal record.
struct Record {
  Op op = Op::kPut;
  int64_t revision = 0;
  std::string key;
  xml::Document doc;      // kPut: the document
  xml::SubtreeEdit edit;  // kUpdate: the edit (subtree owned)
};

/// CRC-32 (IEEE 802.3, reflected), table-driven.
uint32_t Crc32(const void* data, size_t size);

/// Serializes `record` into `*payload` (frame header NOT included).
/// `record.revision` may be a placeholder; StampRevision patches it later.
void EncodePayload(const Record& record, std::string* payload);

/// Overwrites the revision field (payload offset 0) in an encoded payload.
void StampRevision(std::string* payload, int64_t revision);

/// Parses one payload back into a Record, validating framing and the
/// embedded snapshot bytes (full header checksum + section bounds).
Result<Record> DecodePayload(std::string_view payload);

/// Appends [size][crc][payload] to `*out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Reads the frame starting at `*offset` in `data`, advancing `*offset`
/// past it. Preconditions: `*offset < data.size()` (callers detect clean
/// end-of-log by offset == size before calling). Any failure — short
/// header, size out of bounds, CRC mismatch — returns InvalidArgument and
/// leaves `*offset` untouched: it marks the start of the torn tail.
Result<std::string_view> ReadFrame(std::string_view data, uint64_t* offset);

/// Appends the 16-byte journal file header to `*out`.
void AppendJournalHeader(std::string* out);

/// Validates a journal file header. Returns the first frame offset
/// (kJournalHeaderBytes) or an error.
Result<uint64_t> CheckJournalHeader(std::string_view data);

/// Little-endian primitive (de)serialization shared by the record and
/// manifest codecs.
namespace wire {

template <typename T>
inline void Append(T value, std::string* out) {
  static_assert(std::is_integral_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

inline void AppendString(std::string_view s, std::string* out) {
  Append(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader; every Read* returns false instead of
/// reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_integral_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t size = 0;
    if (!Read(&size) || data_.size() - pos_ < size) return false;
    out->assign(data_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  bool ReadBlob(uint64_t size, std::string_view* out) {
    if (data_.size() - pos_ < size) return false;
    *out = data_.substr(pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace wire

}  // namespace gkx::wal

#endif  // GKX_WAL_RECORD_HPP_
