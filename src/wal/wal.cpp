#include "wal/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "base/stopwatch.hpp"
#include "service/document_store.hpp"
#include "xml/snapshot.hpp"

namespace gkx::wal {

namespace {

namespace fs = std::filesystem;

constexpr uint32_t kManifestVersion = 1;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Errno(const std::string& what) {
  return InternalError("wal: " + what + ": " + std::strerror(errno));
}

Status WriteAllFd(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Errno("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Errno("cannot read " + path);
  return out;
}

/// Best-effort directory fsync so renames/creates survive power loss.
void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

struct ManifestEntry {
  int64_t revision = 0;
  std::string key;
  std::string file;
};

struct Manifest {
  uint64_t journal_offset = kJournalHeaderBytes;
  int64_t watermark = 0;
  uint64_t checkpoint_seq = 0;
  std::vector<ManifestEntry> entries;
};

void EncodeManifest(const Manifest& manifest, std::string* payload) {
  payload->clear();
  wire::Append(kManifestVersion, payload);
  wire::Append(manifest.journal_offset, payload);
  wire::Append(manifest.watermark, payload);
  wire::Append(manifest.checkpoint_seq, payload);
  wire::Append(static_cast<uint32_t>(manifest.entries.size()), payload);
  for (const ManifestEntry& entry : manifest.entries) {
    wire::Append(entry.revision, payload);
    wire::AppendString(entry.key, payload);
    wire::AppendString(entry.file, payload);
  }
}

Result<Manifest> DecodeManifest(std::string_view file_bytes,
                                const std::string& path) {
  auto corrupt = [&](const std::string& what) {
    return InvalidArgumentError("wal manifest " + path + ": " + what);
  };
  if (file_bytes.empty()) return corrupt("empty file");
  uint64_t offset = 0;
  auto payload = ReadFrame(file_bytes, &offset);
  if (!payload.ok()) return corrupt(payload.status().message());
  if (offset != file_bytes.size()) return corrupt("trailing bytes");
  wire::Reader reader(*payload);
  Manifest manifest;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.Read(&version)) return corrupt("truncated");
  if (version != kManifestVersion) {
    return corrupt("version " + std::to_string(version) +
                   ", this build reads version " +
                   std::to_string(kManifestVersion));
  }
  if (!reader.Read(&manifest.journal_offset) ||
      !reader.Read(&manifest.watermark) ||
      !reader.Read(&manifest.checkpoint_seq) || !reader.Read(&count)) {
    return corrupt("truncated");
  }
  manifest.entries.resize(count);
  for (ManifestEntry& entry : manifest.entries) {
    if (!reader.Read(&entry.revision) || !reader.ReadString(&entry.key) ||
        !reader.ReadString(&entry.file)) {
      return corrupt("truncated entry");
    }
  }
  if (!reader.AtEnd()) return corrupt("trailing bytes after entries");
  if (manifest.journal_offset < kJournalHeaderBytes) {
    return corrupt("journal offset inside the header");
  }
  return manifest;
}

/// Atomic manifest install: temp sibling + fsync + rename + dir fsync.
Status WriteManifest(const std::string& path, const Manifest& manifest,
                     const std::string& dir) {
  std::string payload;
  EncodeManifest(manifest, &payload);
  std::string framed;
  AppendFrame(payload, &framed);
  const std::string temp_path = path + ".tmp";
  std::FILE* f = std::fopen(temp_path.c_str(), "wb");
  if (f == nullptr) return Errno("cannot create " + temp_path);
  bool ok = std::fwrite(framed.data(), 1, framed.size(), f) == framed.size();
  ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(temp_path.c_str());
    return Errno("short write to " + temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return Errno("cannot rename into " + path);
  }
  FsyncDir(dir);
  return Status::Ok();
}

/// Removes snapshot generations the new manifest no longer references.
void DeleteStaleSnapshots(const std::string& dir, const Manifest& manifest) {
  std::vector<std::string> keep;
  keep.reserve(manifest.entries.size());
  for (const ManifestEntry& entry : manifest.entries) keep.push_back(entry.file);
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    const std::string name = dirent.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    if (std::find(keep.begin(), keep.end(), name) != keep.end()) continue;
    fs::remove(dirent.path(), ec);
  }
}

}  // namespace

Wal::Wal(WalOptions options, obs::MetricRegistry* registry)
    : options_(std::move(options)) {
  if (registry != nullptr) {
    append_hist_ = registry->GetHistogram("wal.append_ms");
    fsync_batch_hist_ = registry->GetHistogram("wal.fsync_batch_ms");
    checkpoint_hist_ = registry->GetHistogram("wal.checkpoint_ms");
    replay_hist_ = registry->GetHistogram("wal.replay_ms");
    records_counter_ = registry->GetCounter("wal.records");
    bytes_counter_ = registry->GetCounter("wal.bytes");
    torn_counter_ = registry->GetCounter("wal.torn_tail");
  }
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Wal::JournalPath() const { return options_.dir + "/journal.log"; }
std::string Wal::ManifestPath() const { return options_.dir + "/MANIFEST"; }

Result<std::unique_ptr<Wal>> Wal::OpenAndRecover(
    const WalOptions& options, service::DocumentStore* store,
    RecoveryReport* report, obs::MetricRegistry* registry) {
  GKX_CHECK(store != nullptr && report != nullptr);
  GKX_CHECK(!options.dir.empty());
  *report = RecoveryReport{};
  std::unique_ptr<Wal> wal(new Wal(options, registry));
  GKX_RETURN_IF_ERROR(wal->Recover(store, report));
  wal->committer_ = std::thread([w = wal.get()] { w->CommitterLoop(); });
  return wal;
}

Status Wal::Recover(service::DocumentStore* store, RecoveryReport* report) {
  Stopwatch replay_sw;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return InternalError("wal: cannot create directory " + options_.dir +
                         ": " + ec.message());
  }

  // --- manifest: restore the checkpointed snapshot set.
  Manifest manifest;
  bool have_manifest = fs::exists(ManifestPath(), ec) && !ec;
  // Per-key revision floor for replay idempotence: a suffix record whose
  // revision a snapshot already covers must be skipped, one that postdates
  // the snapshot must apply. Keys absent here always apply (their full
  // record history from the manifest offset on is in the suffix).
  std::map<std::string, int64_t> applied;
  if (have_manifest) {
    std::string manifest_bytes;
    GKX_ASSIGN_OR_RETURN(manifest_bytes, ReadFileToString(ManifestPath()));
    GKX_ASSIGN_OR_RETURN(manifest,
                         DecodeManifest(manifest_bytes, ManifestPath()));
    for (const ManifestEntry& entry : manifest.entries) {
      xml::Document doc;
      GKX_ASSIGN_OR_RETURN(doc,
                           xml::MapSnapshot(options_.dir + "/" + entry.file));
      store->RecoverPut(entry.key, std::move(doc), entry.revision);
      applied[entry.key] = entry.revision;
      ++report->snapshots_loaded;
    }
    store->RestoreRevisionFloor(manifest.watermark);
    checkpoint_seq_ = manifest.checkpoint_seq;
  }

  // --- journal: replay the suffix, stopping at the first bad frame.
  const std::string journal_path = JournalPath();
  int64_t max_revision = have_manifest ? manifest.watermark : 0;
  if (fs::exists(journal_path, ec) && !ec) {
    std::string data;
    GKX_ASSIGN_OR_RETURN(data, ReadFileToString(journal_path));
    uint64_t offset = data.size();
    if (data.size() >= kJournalHeaderBytes) {
      GKX_ASSIGN_OR_RETURN(offset, CheckJournalHeader(data));
      if (have_manifest) offset = manifest.journal_offset;
    } else if (!data.empty()) {
      // A crash between journal creation and the header write leaves a
      // short file; no record can precede a complete header, so there is
      // nothing to replay — but it still counts as a torn tail.
      report->torn_tail_bytes = static_cast<int64_t>(data.size());
      report->torn_tail_reason = "journal truncated inside the file header";
      if (torn_counter_ != nullptr) torn_counter_->Add();
    }
    // The manifest offset may point past the file end: records enqueued
    // after the offset capture need not have reached the disk before the
    // crash — the snapshots already cover everything below the watermark.
    while (offset < data.size()) {
      const uint64_t frame_start = offset;
      auto payload = ReadFrame(data, &offset);
      if (!payload.ok()) {
        // Torn tail: a crash mid-append (or corruption). Nothing at or
        // past this offset is applied — CRC validation precedes decoding.
        report->torn_tail_bytes =
            static_cast<int64_t>(data.size() - frame_start);
        report->torn_tail_reason = payload.status().message();
        if (torn_counter_ != nullptr) torn_counter_->Add();
        break;
      }
      Record record;
      GKX_ASSIGN_OR_RETURN(record, DecodePayload(*payload));
      auto it = applied.find(record.key);
      if (it != applied.end() && record.revision <= it->second) {
        ++report->records_skipped;
        continue;
      }
      switch (record.op) {
        case Op::kPut:
          store->RecoverPut(record.key, std::move(record.doc),
                            record.revision);
          break;
        case Op::kUpdate:
          GKX_RETURN_IF_ERROR(
              store->RecoverUpdate(record.key, record.edit, record.revision));
          break;
        case Op::kRemove:
          store->RecoverRemove(record.key);
          break;
      }
      applied[record.key] = record.revision;
      if (record.revision > max_revision) max_revision = record.revision;
      ++report->records_replayed;
    }
  }
  store->RestoreRevisionFloor(max_revision);
  report->revision_watermark = store->last_revision();

  // --- normalize: checkpoint the recovered state and reset the journal.
  // Order matters for crash-consistency: the new manifest (journal offset =
  // header end) lands atomically BEFORE the truncate; if we die in between,
  // the next recovery replays the old records against the new snapshots and
  // the per-key revision floors skip every one of them.
  fd_ = ::open(journal_path.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd_ < 0) return Errno("cannot open " + journal_path);
  std::string header;
  AppendJournalHeader(&header);
  if (::pwrite(fd_, header.data(), header.size(), 0) !=
      static_cast<ssize_t>(header.size())) {
    return Errno("cannot write header to " + journal_path);
  }
  enqueued_offset_ = kJournalHeaderBytes;
  checkpoint_offset_ = kJournalHeaderBytes;
  GKX_RETURN_IF_ERROR(Checkpoint(*store));
  if (::ftruncate(fd_, static_cast<off_t>(kJournalHeaderBytes)) != 0) {
    return Errno("cannot truncate " + journal_path);
  }
  if (options_.fsync && ::fsync(fd_) != 0) {
    return Errno("cannot fsync " + journal_path);
  }
  if (::lseek(fd_, static_cast<off_t>(kJournalHeaderBytes), SEEK_SET) < 0) {
    return Errno("cannot seek " + journal_path);
  }
  if (replay_hist_ != nullptr) replay_hist_->Record(replay_sw.ElapsedSeconds());
  return Status::Ok();
}

Wal::PendingRecord Wal::MakePut(std::string_view key,
                                const xml::Document& doc) {
  Record record;
  record.op = Op::kPut;
  record.key = std::string(key);
  record.doc = doc;  // deep copy; encoded immediately below
  PendingRecord pending;
  EncodePayload(record, &pending.payload);
  return pending;
}

Wal::PendingRecord Wal::MakeUpdate(std::string_view key,
                                   const xml::SubtreeEdit& edit) {
  Record record;
  record.op = Op::kUpdate;
  record.key = std::string(key);
  record.edit.kind = edit.kind;
  record.edit.target = edit.target;
  record.edit.position = edit.position;
  record.edit.subtree = edit.subtree;
  record.edit.text = edit.text;
  record.edit.label = edit.label;
  PendingRecord pending;
  EncodePayload(record, &pending.payload);
  return pending;
}

Wal::PendingRecord Wal::MakeRemove(std::string_view key) {
  Record record;
  record.op = Op::kRemove;
  record.key = std::string(key);
  PendingRecord pending;
  EncodePayload(record, &pending.payload);
  return pending;
}

Wal::Ticket Wal::Enqueue(PendingRecord record, int64_t revision) {
  StampRevision(&record.payload, revision);
  const int64_t frame_bytes =
      static_cast<int64_t>(kFrameHeaderBytes + record.payload.size());
  Ticket ticket;
  ticket.enqueue_ns = NowNs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    GKX_CHECK(!stop_);
    AppendFrame(record.payload, &buffer_);
    enqueued_offset_ += static_cast<uint64_t>(frame_bytes);
    ticket.seq = ++enqueued_seq_;
  }
  if (records_counter_ != nullptr) records_counter_->Add();
  if (bytes_counter_ != nullptr) bytes_counter_->Add(frame_bytes);
  work_cv_.notify_one();
  return ticket;
}

Status Wal::WaitDurable(const Ticket& ticket) {
  Status status;
  {
    std::unique_lock<std::mutex> lock(mu_);
    durable_cv_.wait(lock, [&] {
      return durable_seq_ >= ticket.seq || !io_status_.ok() || crashed_;
    });
    if (!io_status_.ok()) {
      status = io_status_;
    } else if (durable_seq_ < ticket.seq) {
      status = InternalError("wal: crashed before this record committed");
    }
  }
  if (append_hist_ != nullptr) {
    append_hist_->Record(static_cast<double>(NowNs() - ticket.enqueue_ns) *
                         1e-9);
  }
  return status;
}

void Wal::CommitterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !buffer_.empty(); });
    if (buffer_.empty()) return;  // stop requested and everything flushed
    if (options_.group_commit_window_us > 0 && !stop_) {
      // The batching window: concurrent writers enqueue into buffer_ while
      // we hold off, so one fsync below covers all of them.
      work_cv_.wait_for(
          lock, std::chrono::microseconds(options_.group_commit_window_us),
          [&] { return stop_; });
      if (buffer_.empty()) continue;  // a simulated crash drained it
    }
    std::string batch;
    batch.swap(buffer_);
    const int64_t batch_seq = enqueued_seq_;
    lock.unlock();
    Stopwatch sw;
    Status status = WriteAllFd(fd_, batch);
    if (status.ok() && options_.fsync && ::fdatasync(fd_) != 0) {
      status = Errno("fdatasync");
    }
    if (fsync_batch_hist_ != nullptr) {
      fsync_batch_hist_->Record(sw.ElapsedSeconds());
    }
    lock.lock();
    if (!status.ok() && io_status_.ok()) io_status_ = status;
    durable_seq_ = batch_seq;
    durable_cv_.notify_all();
  }
}

Status Wal::Checkpoint(const service::DocumentStore& store) {
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  Stopwatch sw;
  Manifest manifest;
  {
    // Capture the logical journal end BEFORE reading any document: records
    // racing past this point may land in both a snapshot and the replayed
    // suffix, which the per-key revision floors make idempotent. (Released
    // before touching the store — Enqueue runs under the store lock and
    // takes mu_, so holding mu_ across store reads would invert that
    // order.)
    std::lock_guard<std::mutex> lock(mu_);
    manifest.journal_offset = enqueued_offset_;
  }
  manifest.checkpoint_seq = ++checkpoint_seq_;
  int index = 0;
  for (const std::string& key : store.Keys()) {
    auto stored = store.Get(key);
    if (stored == nullptr) continue;  // raced a Remove; the journal has it
    ManifestEntry entry;
    entry.revision = stored->revision();
    entry.key = key;
    entry.file = "snap-" + std::to_string(manifest.checkpoint_seq) + "-" +
                 std::to_string(index++) + ".arena";
    GKX_RETURN_IF_ERROR(
        xml::SaveSnapshot(stored->doc(), options_.dir + "/" + entry.file));
    manifest.entries.push_back(std::move(entry));
  }
  // Captured AFTER the reads: the watermark dominates every snapshot
  // revision, so recovery's revision floor can never hand out a revision
  // some pre-crash observer already saw.
  manifest.watermark = store.last_revision();
  GKX_RETURN_IF_ERROR(WriteManifest(ManifestPath(), manifest, options_.dir));
  {
    std::lock_guard<std::mutex> lock(mu_);
    checkpoint_offset_ = manifest.journal_offset;
  }
  DeleteStaleSnapshots(options_.dir, manifest);
  if (checkpoint_hist_ != nullptr) checkpoint_hist_->Record(sw.ElapsedSeconds());
  return Status::Ok();
}

int64_t Wal::BytesSinceCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(enqueued_offset_ - checkpoint_offset_);
}

void Wal::SimulateCrash() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
    stop_ = true;
    buffer_.clear();  // the un-flushed batch dies with the "process"
  }
  work_cv_.notify_all();
  durable_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace gkx::wal
