#include "wal/record.hpp"

#include <cstring>
#include <type_traits>

#include "xml/snapshot.hpp"

namespace gkx::wal {

namespace {

/// CRC-32 lookup tables (IEEE 802.3 polynomial 0xEDB88320, reflected),
/// generated once at first use. Table 0 is the classic byte-at-a-time
/// table; tables 1..7 extend it for slice-by-8 (process 8 input bytes per
/// step, one table lookup each — same polynomial, bit-identical results,
/// roughly 5x the bytewise throughput on journal- and wire-sized payloads).
using CrcTables = uint32_t[8][256];
const CrcTables& CrcTable() {
  static const CrcTables& tables = [&]() -> const CrcTables& {
    static uint32_t entries[8][256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      entries[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = entries[0][i];
      for (int t = 1; t < 8; ++t) {
        crc = (crc >> 8) ^ entries[0][crc & 0xFFu];
        entries[t][i] = crc;
      }
    }
    return entries;
  }();
  return tables;
}

void AppendBytes(const void* data, size_t size, std::string* out) {
  out->append(static_cast<const char*>(data), size);
}

using wire::Reader;

template <typename T>
void AppendInt(T value, std::string* out) {
  if constexpr (std::is_enum_v<T>) {
    wire::Append(static_cast<std::underlying_type_t<T>>(value), out);
  } else {
    wire::Append(value, out);
  }
}

void AppendString(std::string_view s, std::string* out) {
  wire::AppendString(s, out);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const CrcTables& table = CrcTable();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  // Slice-by-8 main loop (little-endian load order matches the reflected
  // polynomial), bytewise for the unaligned tail.
  while (size >= 8) {
    uint32_t lo = 0, hi = 0;
    std::memcpy(&lo, bytes, sizeof(lo));
    std::memcpy(&hi, bytes + 4, sizeof(hi));
    lo ^= crc;
    crc = table[7][lo & 0xFFu] ^ table[6][(lo >> 8) & 0xFFu] ^
          table[5][(lo >> 16) & 0xFFu] ^ table[4][lo >> 24] ^
          table[3][hi & 0xFFu] ^ table[2][(hi >> 8) & 0xFFu] ^
          table[1][(hi >> 16) & 0xFFu] ^ table[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodePayload(const Record& record, std::string* payload) {
  payload->clear();
  AppendInt(record.revision, payload);
  AppendInt(static_cast<uint8_t>(record.op), payload);
  AppendString(record.key, payload);
  switch (record.op) {
    case Op::kPut: {
      std::string doc_bytes;
      xml::SaveSnapshotBytes(record.doc, &doc_bytes);
      AppendInt(static_cast<uint64_t>(doc_bytes.size()), payload);
      payload->append(doc_bytes);
      break;
    }
    case Op::kUpdate: {
      AppendInt(static_cast<uint8_t>(record.edit.kind), payload);
      AppendInt(record.edit.target, payload);
      AppendInt(record.edit.position, payload);
      AppendString(record.edit.text, payload);
      AppendString(record.edit.label, payload);
      if (record.edit.subtree.empty()) {
        AppendInt(uint64_t{0}, payload);
      } else {
        std::string subtree_bytes;
        xml::SaveSnapshotBytes(record.edit.subtree, &subtree_bytes);
        AppendInt(static_cast<uint64_t>(subtree_bytes.size()), payload);
        payload->append(subtree_bytes);
      }
      break;
    }
    case Op::kRemove:
      break;
  }
}

void StampRevision(std::string* payload, int64_t revision) {
  GKX_CHECK(payload->size() >= sizeof(revision));
  std::memcpy(payload->data(), &revision, sizeof(revision));
}

Result<Record> DecodePayload(std::string_view payload) {
  auto corrupt = [](const std::string& what) {
    return InvalidArgumentError("wal record: " + what);
  };
  Reader reader(payload);
  Record record;
  uint8_t op = 0;
  if (!reader.Read(&record.revision) || !reader.Read(&op) ||
      !reader.ReadString(&record.key)) {
    return corrupt("truncated envelope");
  }
  if (op < static_cast<uint8_t>(Op::kPut) ||
      op > static_cast<uint8_t>(Op::kRemove)) {
    return corrupt("unknown op " + std::to_string(op));
  }
  record.op = static_cast<Op>(op);
  switch (record.op) {
    case Op::kPut: {
      uint64_t doc_size = 0;
      std::string_view doc_bytes;
      if (!reader.Read(&doc_size) || !reader.ReadBlob(doc_size, &doc_bytes)) {
        return corrupt("truncated document body");
      }
      GKX_ASSIGN_OR_RETURN(
          record.doc, xml::LoadSnapshotBytes(doc_bytes, "wal put payload"));
      break;
    }
    case Op::kUpdate: {
      uint8_t kind = 0;
      if (!reader.Read(&kind) || !reader.Read(&record.edit.target) ||
          !reader.Read(&record.edit.position) ||
          !reader.ReadString(&record.edit.text) ||
          !reader.ReadString(&record.edit.label)) {
        return corrupt("truncated edit body");
      }
      if (kind > static_cast<uint8_t>(xml::SubtreeEdit::Kind::kRelabel)) {
        return corrupt("unknown edit kind " + std::to_string(kind));
      }
      record.edit.kind = static_cast<xml::SubtreeEdit::Kind>(kind);
      uint64_t subtree_size = 0;
      std::string_view subtree_bytes;
      if (!reader.Read(&subtree_size) ||
          !reader.ReadBlob(subtree_size, &subtree_bytes)) {
        return corrupt("truncated edit subtree");
      }
      if (subtree_size > 0) {
        GKX_ASSIGN_OR_RETURN(
            record.edit.subtree,
            xml::LoadSnapshotBytes(subtree_bytes, "wal edit subtree"));
      }
      break;
    }
    case Op::kRemove:
      break;
  }
  if (!reader.AtEnd()) return corrupt("trailing bytes after body");
  return record;
}

void AppendFrame(std::string_view payload, std::string* out) {
  AppendInt(static_cast<uint32_t>(payload.size()), out);
  AppendInt(Crc32(payload.data(), payload.size()), out);
  AppendBytes(payload.data(), payload.size(), out);
}

Result<std::string_view> ReadFrame(std::string_view data, uint64_t* offset) {
  GKX_CHECK(*offset < data.size());
  auto torn = [&](const std::string& what) {
    return InvalidArgumentError("wal frame at offset " +
                                std::to_string(*offset) + ": " + what);
  };
  const uint64_t remaining = data.size() - *offset;
  if (remaining < kFrameHeaderBytes) return torn("short frame header");
  uint32_t payload_size = 0;
  uint32_t crc = 0;
  std::memcpy(&payload_size, data.data() + *offset, sizeof(payload_size));
  std::memcpy(&crc, data.data() + *offset + sizeof(payload_size), sizeof(crc));
  if (payload_size < kMinPayloadBytes ||
      uint64_t{payload_size} > kMaxPayloadBytes ||
      uint64_t{payload_size} > remaining - kFrameHeaderBytes) {
    return torn("implausible payload size " + std::to_string(payload_size));
  }
  std::string_view payload =
      data.substr(static_cast<size_t>(*offset + kFrameHeaderBytes),
                  payload_size);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return torn("payload CRC mismatch");
  }
  *offset += kFrameHeaderBytes + payload_size;
  return payload;
}

void AppendJournalHeader(std::string* out) {
  AppendBytes(kJournalMagic, sizeof(kJournalMagic), out);
  AppendInt(kJournalFormatVersion, out);
  AppendInt(uint32_t{0}, out);
}

Result<uint64_t> CheckJournalHeader(std::string_view data) {
  if (data.size() < kJournalHeaderBytes) {
    return InvalidArgumentError("wal journal: truncated before header (" +
                                std::to_string(data.size()) + " bytes)");
  }
  if (std::memcmp(data.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return InvalidArgumentError("wal journal: bad magic");
  }
  uint32_t version = 0;
  std::memcpy(&version, data.data() + sizeof(kJournalMagic), sizeof(version));
  if (version != kJournalFormatVersion) {
    return InvalidArgumentError(
        "wal journal: format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kJournalFormatVersion));
  }
  return kJournalHeaderBytes;
}

}  // namespace gkx::wal
