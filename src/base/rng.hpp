// Deterministic, seedable pseudo-random generator (xoshiro256** core) used by
// every workload generator so experiments are reproducible across runs and
// platforms (std::mt19937 distributions are not cross-stdlib stable).

#ifndef GKX_BASE_RNG_HPP_
#define GKX_BASE_RNG_HPP_

#include <cstdint>
#include <vector>

#include "base/check.hpp"

namespace gkx {

/// Reproducible RNG. Same seed => same sequence everywhere.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator (SplitMix64 expansion of the seed).
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniformly picks an element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    GKX_CHECK(!items.empty());
    return items[static_cast<size_t>(UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Precomputed zipfian distribution over ranks {0, ..., n-1}:
/// P(k) ∝ 1/(k+1)^s, so rank 0 is the most popular. s = 0 degenerates to
/// uniform. Sampling costs one Rng draw plus a binary search over the CDF,
/// and is byte-stable for a fixed Rng stream — the popularity-weighted
/// workload generators (testkit, tag skew) all rely on that.
class ZipfSampler {
 public:
  ZipfSampler(int64_t n, double s);

  /// A rank in [0, size()), rank 0 most likely.
  int64_t Sample(Rng* rng) const;

  int64_t size() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k); back() == 1.0
};

}  // namespace gkx

#endif  // GKX_BASE_RNG_HPP_
