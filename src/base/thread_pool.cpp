#include "base/thread_pool.hpp"

#include <atomic>
#include <memory>
#include <utility>

namespace gkx {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (tasks == 1) {
    fn(0);
    return;
  }

  struct State {
    std::atomic<int> done{0};
    int total = 0;
  };
  auto state = std::make_shared<State>();
  state->total = tasks;

  // fn is captured by pointer: ParallelFor blocks until every task has run,
  // so the referent outlives all uses.
  const std::function<void(int)>* fn_ptr = &fn;
  for (int i = 0; i < tasks; ++i) {
    Submit([this, state, fn_ptr, i] {
      (*fn_ptr)(i);
      if (state->done.fetch_add(1) + 1 == state->total) {
        // Wake the ParallelFor caller (it waits on the pool cv).
        std::lock_guard<std::mutex> lock(mu_);
        cv_.notify_all();
      }
    });
  }

  // Help: run queued tasks (ours or anybody's) until all our tasks are done.
  // This guarantees progress even when every pool thread is itself blocked
  // inside a nested ParallelFor.
  std::unique_lock<std::mutex> lock(mu_);
  while (state->done.load() < state->total) {
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
    } else {
      cv_.wait(lock, [this, &state] {
        return state->done.load() >= state->total || !queue_.empty();
      });
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives all users
  return *pool;
}

}  // namespace gkx
