#include "base/thread_pool.hpp"

#include <utility>

namespace gkx {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Entry{std::move(task), nullptr});
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Entry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    if (entry.group != nullptr) {
      DrainGroup(entry.group);
    } else {
      // Detached-task contract: exceptions are contained (the worker — and
      // with it the whole service — must survive a throwing task) and
      // counted so the defect is observable.
      try {
        entry.task();
      } catch (...) {
        detached_exceptions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void ThreadPool::DrainGroup(const std::shared_ptr<Group>& group) {
  int contributed = 0;
  while (true) {
    const int i = group->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= group->total) break;
    // After the first exception the group is abandoned: remaining indices
    // are claimed and counted but not run, so the caller unblocks at the
    // speed of the claim loop instead of finishing doomed work.
    if (!group->abandoned.load(std::memory_order_relaxed)) {
      try {
        (*group->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(group->mu);
        if (group->error == nullptr) group->error = std::current_exception();
        group->abandoned.store(true, std::memory_order_relaxed);
      }
    }
    ++contributed;
  }
  if (contributed > 0 &&
      group->finished.fetch_add(contributed, std::memory_order_acq_rel) +
              contributed ==
          group->total) {
    // Group-local wake-up: only this group's caller waits on done_cv, so
    // completion no longer broadcasts on the pool-wide queue cv (which used
    // to wake every idle worker once per finished group).
    std::lock_guard<std::mutex> lock(group->mu);
    group->done = true;
    group->done_cv.notify_all();
  }
}

void ThreadPool::ParallelFor(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  if (tasks == 1) {
    fn(0);
    return;
  }

  auto group = std::make_shared<Group>();
  group->fn = &fn;  // ParallelFor outlives the group: rejoin below is strict
  group->total = tasks;

  // Proxy entries, not one entry per index: a dequeuing worker drains the
  // group via the shared claim counter, so `tasks` can be large without
  // flooding the queue. One proxy per worker saturates the pool.
  const int proxies =
      std::min(tasks - 1, static_cast<int>(workers_.size()));
  if (proxies > 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int p = 0; p < proxies; ++p) {
        queue_.push_back(Entry{nullptr, group});
      }
    }
    if (proxies == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  // The caller claims indices of its OWN group only. It never pops the pool
  // queue: an unrelated slow task queued there must not delay this return,
  // and own-group claiming alone guarantees progress (this thread can
  // finish the whole group by itself, including when every pool worker is
  // blocked inside nested ParallelFors of their own).
  DrainGroup(group);

  {
    std::unique_lock<std::mutex> lock(group->mu);
    group->done_cv.wait(lock, [&group] { return group->done; });
  }
  if (group->error != nullptr) std::rethrow_exception(group->error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(0);  // leaked: outlives all users
  return *pool;
}

}  // namespace gkx
