// A reusable fixed-size worker pool. The repo previously spun up ad-hoc
// std::threads per parallel evaluation call; thread creation is ~50µs on
// Linux, which dwarfs small-document evaluations and multiplies under a
// serving workload. This pool is created once and shared.
//
// ParallelFor is group-structured: each call owns a private group of index
// tasks. Pool workers claim indices from whichever group they dequeue, but
// the *calling* thread only ever claims indices of its own group while it
// waits. That is what makes nesting safe (a pool task may itself call
// ParallelFor — the service fans a batch out over the pool while individual
// requests fan per-query segments out on the same pool; the nested caller
// can always finish its own group single-handedly, so progress is
// guaranteed even on a pool of width 1) and what keeps return latency
// bounded by the caller's own work: a slow unrelated task queued by someone
// else is never stolen by a ParallelFor caller, so it cannot delay that
// caller's return (it used to — see thread_pool_test's
// ParallelForIsNotDelayedByUnrelatedSlowTask regression).
//
// Completion wake-ups are group-local: the last finisher signals the one
// condition variable of its own group instead of broadcasting on the pool's
// queue cv (which used to wake every idle worker per finished group).
//
// Exception contract:
//   * A task body passed to ParallelFor may throw. The first exception (in
//     completion order) is captured and rethrown on the ParallelFor caller;
//     remaining indices of that group are abandoned (claimed but not run).
//     Evaluator code that returns Status keeps returning Status — the
//     rethrow path exists so a defect cannot std::terminate the service.
//   * A detached Submit() task must not throw. If one does, the exception
//     is swallowed by the worker loop (the pool stays alive) and counted in
//     detached_exceptions() so tests and monitoring can observe the defect.

#ifndef GKX_BASE_THREAD_POOL_HPP_
#define GKX_BASE_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gkx {

class ThreadPool {
 public:
  /// `threads` = 0 uses std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int threads = 0);

  /// Joins after draining already-queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a detached task; returns immediately. The task must not
  /// throw — if it does, the exception is contained (never std::terminate)
  /// and counted in detached_exceptions().
  void Submit(std::function<void()> task);

  /// Runs fn(0), ..., fn(tasks-1) across the pool and blocks until all have
  /// finished. The calling thread participates (it claims indices of this
  /// call's own group while waiting — never unrelated queued work), so this
  /// is safe to call from inside a pool task. If any fn() throws, the first
  /// exception is rethrown here after the group quiesces.
  void ParallelFor(int tasks, const std::function<void(int)>& fn);

  /// Detached Submit() tasks that threw (contract violations, contained).
  int64_t detached_exceptions() const {
    return detached_exceptions_.load(std::memory_order_relaxed);
  }

  /// Process-wide lazily-constructed pool (hardware width).
  static ThreadPool& Shared();

 private:
  /// One ParallelFor call: workers and the caller claim indices from
  /// `next`; the last finisher signals `done_cv`. Shared-ptr'd so a proxy
  /// task dequeued after the caller already returned (e.g. all indices were
  /// claimed by the caller before any worker woke) stays valid.
  struct Group {
    const std::function<void(int)>* fn = nullptr;  // outlives the group
    int total = 0;
    std::atomic<int> next{0};      // next index to claim
    std::atomic<int> finished{0};  // indices run (or abandoned after error)
    std::atomic<bool> abandoned{false};  // first exception seen: drain fast
    std::mutex mu;                 // guards error + done signalling
    std::condition_variable done_cv;
    std::exception_ptr error;
    bool done = false;
  };

  void WorkerLoop();

  /// Claims and runs indices of `group` until none remain. Returns after
  /// contributing; completion is signalled by whoever finishes the last
  /// index.
  static void DrainGroup(const std::shared_ptr<Group>& group);

  std::mutex mu_;
  std::condition_variable cv_;
  /// Detached tasks and group proxies. A proxy entry has a non-null group
  /// and drains it; a detached entry has a null group and runs `task`.
  struct Entry {
    std::function<void()> task;      // detached only
    std::shared_ptr<Group> group;    // proxy only
  };
  std::deque<Entry> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> detached_exceptions_{0};
};

}  // namespace gkx

#endif  // GKX_BASE_THREAD_POOL_HPP_
