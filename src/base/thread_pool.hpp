// A reusable fixed-size worker pool. The repo previously spun up ad-hoc
// std::threads per parallel evaluation call; thread creation is ~50µs on
// Linux, which dwarfs small-document evaluations and multiplies under a
// serving workload. This pool is created once and shared.
//
// Deadlock safety: ParallelFor lets the *calling* thread execute queued pool
// tasks while it waits ("helping"), so nesting is safe — a pool task may
// itself call ParallelFor (the service fans a batch out over the pool while
// individual requests use the parallel PDA evaluator on the same pool) and
// progress is guaranteed even on a pool of width 1.

#ifndef GKX_BASE_THREAD_POOL_HPP_
#define GKX_BASE_THREAD_POOL_HPP_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gkx {

class ThreadPool {
 public:
  /// `threads` = 0 uses std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int threads = 0);

  /// Joins after draining already-queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Runs fn(0), ..., fn(tasks-1) across the pool and blocks until all have
  /// finished. The calling thread participates (it executes queued tasks
  /// while waiting), so this is safe to call from inside a pool task.
  void ParallelFor(int tasks, const std::function<void(int)>& fn);

  /// Process-wide lazily-constructed pool (hardware width).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gkx

#endif  // GKX_BASE_THREAD_POOL_HPP_
