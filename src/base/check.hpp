// Internal invariant checking. GKX_CHECK aborts with a diagnostic when an
// invariant is violated; it is always on (benchmarks measure algorithmic
// shape, not branch-free micro-latency, so the cost is acceptable and the
// safety is worth it in a reference implementation).

#ifndef GKX_BASE_CHECK_HPP_
#define GKX_BASE_CHECK_HPP_

#include <cstdio>
#include <cstdlib>

namespace gkx {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "GKX_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace gkx

#define GKX_CHECK(expr)                                         \
  do {                                                          \
    if (!(expr)) {                                              \
      ::gkx::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                           \
  } while (false)

#define GKX_CHECK_GE(a, b) GKX_CHECK((a) >= (b))
#define GKX_CHECK_GT(a, b) GKX_CHECK((a) > (b))
#define GKX_CHECK_LE(a, b) GKX_CHECK((a) <= (b))
#define GKX_CHECK_LT(a, b) GKX_CHECK((a) < (b))
#define GKX_CHECK_EQ(a, b) GKX_CHECK((a) == (b))
#define GKX_CHECK_NE(a, b) GKX_CHECK((a) != (b))

#endif  // GKX_BASE_CHECK_HPP_
