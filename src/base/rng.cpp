#include "base/rng.hpp"

#include <algorithm>
#include <cstring>

namespace gkx {
namespace {

// ------------------------------------------------------------------------
// Bit-deterministic (k+1)^-s for the zipf CDF. std::pow is not correctly
// rounded and differs across libm implementations, which would break the
// "same seed => byte-identical workload on every platform" contract the
// golden-seed suite pins. These helpers use only IEEE-754 basic operations
// (+, -, *, /), which ARE correctly rounded everywhere; accumulators are
// volatile so the compiler cannot contract mul+add into a platform-dependent
// FMA. Accuracy (~1e-15 relative) is ample for a popularity distribution —
// determinism is the requirement. Cold path: runs once per sampler.

constexpr double kLn2 = 0.6931471805599453;

// ln(x) for finite x >= 1: split x = m * 2^e (m in [1,2)), then the atanh
// series in z = (m-1)/(m+1), |z| < 1/3 (14 terms => < 1e-16 tail).
double DeterministicLn(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  const int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  bits = (bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL;
  double m;
  std::memcpy(&m, &bits, sizeof m);
  volatile double z = (m - 1.0) / (m + 1.0);
  const double z2 = z * z;
  volatile double term = z;
  volatile double sum = 0.0;
  for (int i = 0; i < 14; ++i) {
    sum = sum + term / static_cast<double>(2 * i + 1);
    term = term * z2;
  }
  volatile double mantissa_part = 2.0 * sum;
  volatile double exponent_part = static_cast<double>(e) * kLn2;
  return mantissa_part + exponent_part;
}

// exp(y) for y <= 0: split y = k*ln2 + r with |r| <= ln2/2, Taylor for
// exp(r) (17 terms => < 1e-17 tail), exact scaling by 2^k via exponent bits.
// Results below the normal range flush to 0 — for a popularity weight that
// just means the rank is unreachably unpopular, which is the right answer
// for extreme skews (no subnormal platform variance, no abort).
double DeterministicExp(double y) {
  volatile double quotient = y / kLn2;
  const int k = static_cast<int>(quotient + (quotient < 0.0 ? -0.5 : 0.5));
  if (k <= -1022) return 0.0;
  volatile double r = y - static_cast<double>(k) * kLn2;
  volatile double term = 1.0;
  volatile double sum = 1.0;
  for (int i = 1; i <= 17; ++i) {
    term = term * r / static_cast<double>(i);
    sum = sum + term;
  }
  uint64_t scale_bits = static_cast<uint64_t>(k + 1023) << 52;
  double scale;
  std::memcpy(&scale, &scale_bits, sizeof scale);
  return sum * scale;
}

// (k+1)^-s = exp(-s * ln(k+1)), bit-stable across platforms.
double DeterministicInversePow(double base, double s) {
  if (s == 0.0) return 1.0;
  volatile double y = -s * DeterministicLn(base);
  return DeterministicExp(y);
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  GKX_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

ZipfSampler::ZipfSampler(int64_t n, double s) {
  GKX_CHECK_GE(n, 1);
  GKX_CHECK_GE(s, 0.0);
  cdf_.resize(static_cast<size_t>(n));
  volatile double total = 0.0;  // fixed summation order, no contraction
  for (int64_t k = 0; k < n; ++k) {
    total = total + DeterministicInversePow(static_cast<double>(k + 1), s);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding in the normalization
}

int64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? size() - 1 : it - cdf_.begin();
}

}  // namespace gkx
