// Bind-identity serials. Long-lived evaluators keep caches keyed by "the
// document/query I am bound to"; a raw pointer is not a safe key because an
// allocator can hand a freed object's address to a brand-new object (the
// classic stale-prepared-statement bug). An IdentitySerial gives every
// constructed object — including copies and move targets, whose content
// lineage differs from the source object — a process-unique serial, so the
// pair (address, serial) matches only the exact object a cache was built
// against. Comparing both is O(1) and never false-positives: a recycled
// address carries a different serial, and a stale serial can't reappear at
// a new address because serials are never reused.

#ifndef GKX_BASE_IDENTITY_HPP_
#define GKX_BASE_IDENTITY_HPP_

#include <atomic>
#include <cstdint>

namespace gkx {

class IdentitySerial {
 public:
  IdentitySerial() noexcept : serial_(Next()) {}
  // Copies and moves are NEW objects: they get fresh serials, and the
  // target of an assignment changes content, so it re-serials too. (A
  // moved-from object keeps its old serial; its content is gutted, so any
  // evaluator still bound to it fails loudly before a cache could lie.)
  IdentitySerial(const IdentitySerial&) noexcept : serial_(Next()) {}
  IdentitySerial(IdentitySerial&&) noexcept : serial_(Next()) {}
  IdentitySerial& operator=(const IdentitySerial&) noexcept {
    serial_ = Next();
    return *this;
  }
  IdentitySerial& operator=(IdentitySerial&&) noexcept {
    serial_ = Next();
    return *this;
  }

  uint64_t value() const noexcept { return serial_; }

 private:
  static uint64_t Next() noexcept {
    static std::atomic<uint64_t> counter{0};
    // Serials start at 1 so an unbound cache can use 0 as "never bound".
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  uint64_t serial_;
};

}  // namespace gkx

#endif  // GKX_BASE_IDENTITY_HPP_
