// Error handling without exceptions, in the style of absl::Status /
// absl::StatusOr. A Status is OK or carries (code, message); a Result<T>
// carries either a value or a non-OK Status.

#ifndef GKX_BASE_STATUS_HPP_
#define GKX_BASE_STATUS_HPP_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "base/check.hpp"

namespace gkx {

/// Coarse error taxonomy; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (bad XML, bad XPath syntax, ...)
  kUnsupported,       // valid input outside the feature set of a component
  kOutOfRange,        // index/position out of range
  kFailedPrecondition,
  kInternal,
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

/// OK-or-error discriminated result of an operation that returns no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    GKX_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

/// Value-or-error. Construction from T or from a non-OK Status; access to the
/// value via value()/operator* checks ok() with GKX_CHECK.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    GKX_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  const T& value() const& {
    GKX_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    GKX_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    GKX_CHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace gkx

/// Propagates a non-OK Status out of the enclosing function.
#define GKX_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::gkx::Status gkx_status__ = (expr);     \
    if (!gkx_status__.ok()) return gkx_status__; \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// move-assigns the value into `lhs` (declare lhs yourself).
#define GKX_ASSIGN_OR_RETURN(lhs, expr)                  \
  do {                                                   \
    auto gkx_result__ = (expr);                          \
    if (!gkx_result__.ok()) return gkx_result__.status(); \
    lhs = std::move(gkx_result__).value();               \
  } while (false)

#endif  // GKX_BASE_STATUS_HPP_
