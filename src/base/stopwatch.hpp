// Wall-clock stopwatch for the self-timed experiment harnesses.

#ifndef GKX_BASE_STOPWATCH_HPP_
#define GKX_BASE_STOPWATCH_HPP_

#include <chrono>

namespace gkx {

/// Monotonic wall-clock stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gkx

#endif  // GKX_BASE_STOPWATCH_HPP_
