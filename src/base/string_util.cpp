#include "base/string_util.hpp"

#include <charconv>
#include <cmath>
#include <cstdlib>

namespace gkx {
namespace {

bool IsXmlSpace(char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; }

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-';
}

}  // namespace

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && IsXmlSpace(text[begin])) ++begin;
  while (end > begin && IsXmlSpace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string NormalizeSpace(std::string_view text) {
  std::string out;
  bool pending_space = false;
  for (char c : text) {
    if (IsXmlSpace(c)) {
      pending_space = !out.empty();
    } else {
      if (pending_space) out += ' ';
      pending_space = false;
      out += c;
    }
  }
  return out;
}

std::string FormatXPathNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  if (value == 0.0) return "0";  // covers -0
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    // Integer-valued: no decimal point, no exponent.
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                   static_cast<int64_t>(value));
    (void)ec;
    return std::string(buf, ptr);
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;
  return std::string(buf, ptr);
}

double ParseXPathNumber(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) return std::nan("");
  size_t i = 0;
  if (s[i] == '-') ++i;
  size_t digits_begin = i;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  size_t int_digits = i - digits_begin;
  size_t frac_digits = 0;
  if (i < s.size() && s[i] == '.') {
    ++i;
    size_t frac_begin = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
    frac_digits = i - frac_begin;
  }
  if (i != s.size() || (int_digits == 0 && frac_digits == 0)) return std::nan("");
  double out = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nan("");
  return out;
}

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

bool IsValidXmlName(std::string_view name) {
  if (name.empty() || !IsNameStart(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

}  // namespace gkx
