// Small string helpers shared across modules, including the XPath 1.0 number
// lexical forms (number() parsing and string() formatting).

#ifndef GKX_BASE_STRING_UTIL_HPP_
#define GKX_BASE_STRING_UTIL_HPP_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace gkx {

/// Transparent (heterogeneous) hash for std::string-keyed unordered maps:
/// with std::equal_to<> as the key-equal, find()/contains() accept
/// string_view (and const char*) directly — hot read paths skip the
/// temporary std::string a homogeneous map would force per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Splits on a single character; keeps empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips leading/trailing XML whitespace (space, tab, CR, LF).
std::string_view StripWhitespace(std::string_view text);

/// Collapses whitespace runs to single spaces and strips ends
/// (XPath normalize-space()).
std::string NormalizeSpace(std::string_view text);

/// Formats a double following XPath 1.0 string(number) rules: "NaN",
/// "Infinity"/"-Infinity", integers without a decimal point, otherwise the
/// shortest decimal form that round-trips. "-0" is formatted as "0".
std::string FormatXPathNumber(double value);

/// Parses per XPath 1.0 number(string): optional whitespace, optional '-',
/// digits with optional fraction. Anything else yields NaN.
double ParseXPathNumber(std::string_view text);

/// Escapes &, <, >, ", ' for XML output.
std::string EscapeXml(std::string_view text);

/// True if `name` is a valid (namespace-free) XML element name for our
/// parser: [A-Za-z_][A-Za-z0-9._-]*.
bool IsValidXmlName(std::string_view name);

}  // namespace gkx

#endif  // GKX_BASE_STRING_UTIL_HPP_
