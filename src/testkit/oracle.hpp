// The independent answer key for a compiled Schedule. The oracle evaluates
// every (document revision, query) pair the schedule can actually exercise
// with NaiveEvaluator — the direct spec-reading engine, sharing none of the
// service path's machinery (no plan cache, no Optimize, no DocumentIndex
// fast path, no fragment dispatch) — single-threaded, before the concurrent
// replay starts. Any answer the service produces that matches no live
// revision's oracle digest is a semantic divergence.
//
// Digests are Value::DebugString() renderings: exact structural equality,
// no coercions, stable across runs for a fixed document revision.

#ifndef GKX_TESTKIT_ORACLE_HPP_
#define GKX_TESTKIT_ORACLE_HPP_

#include <string>
#include <vector>

#include "eval/value.hpp"
#include "testkit/workload.hpp"

namespace gkx::testkit {

/// Digest of a successful evaluation (the driver applies the same function
/// to service answers before comparing).
std::string AnswerDigest(const eval::Value& value);

class Oracle {
 public:
  /// Precomputes digests for every (doc, query) pair that occurs in the
  /// schedule, across all revisions of that doc (a concurrent reader may
  /// legally observe any of them). `standing_queries` (pool indexes) are
  /// additionally precomputed against *every* document — standing
  /// subscriptions watch the whole corpus, not just the pairs traffic
  /// happens to touch.
  explicit Oracle(const Schedule& schedule,
                  const std::vector<int32_t>& standing_queries = {});

  /// The expected digest for (doc, revision, query). CHECK-fails if the
  /// pair cannot occur in the schedule (it was never precomputed).
  const std::string& Expected(int32_t doc, int32_t revision, int32_t query) const;

  /// True if `digest` matches the expected answer for some revision in
  /// [rev_lo, rev_hi] — the snapshot window a concurrent reader may observe.
  bool MatchesAnyRevision(int32_t doc, int32_t rev_lo, int32_t rev_hi,
                          int32_t query, const std::string& digest) const;

  /// Evaluations performed during precomputation (for reporting).
  int64_t evaluations() const { return evaluations_; }

 private:
  // digests_[doc][revision][query]; empty string = pair never precomputed.
  std::vector<std::vector<std::vector<std::string>>> digests_;
  int64_t evaluations_ = 0;
};

}  // namespace gkx::testkit

#endif  // GKX_TESTKIT_ORACLE_HPP_
