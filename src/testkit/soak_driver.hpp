// Concurrent replay of a compiled Schedule against a live QueryService,
// with every answer checked against the single-threaded Oracle.
//
// Determinism model: the schedule fixes the operations; the driver fixes
// which thread runs which operation (operation index mod threads — except
// churn, see below); only the interleaving across threads varies run to
// run. Every check is therefore phrased against a *window* of legal
// states:
//
//   * A read of document d may observe any revision in [lo, hi], where lo
//     is the last revision the reading thread itself installed (same-thread
//     Put→Get ordering through the store mutex) and hi is the last revision
//     any churn op installs. Matching none of them means a torn or stale
//     snapshot — or a wrong answer.
//   * All churn for a given document is pinned to one thread
//     (doc mod threads), so per-document revisions are installed in
//     schedule order and the final store state is deterministic: after the
//     join, document d must be byte-identical to its highest revision
//     (anything else is a lost update). Subtree-edit churn
//     (Operation::kEditDocument) is replayed through the delta path —
//     QueryService::UpdateDocument — and immediately after each patch the
//     churn thread re-reads the stored document and checks it node-for-node
//     against the schedule's precomputed revision (itself cross-checked at
//     compile time against a from-scratch rebuild): the live delta pipeline
//     is differentially tested against full replacement on every round.
//   * Service counters must reconcile: every request performs exactly one
//     plan-cache lookup, parse failures are impossible by construction,
//     evaluator counts and the latency reservoir must sum to the request
//     count, and evictions observed through the PlanCache on_evict hook
//     must equal the eviction counter. When the answer cache is enabled its
//     lookups must also sum to the successful requests and every miss must
//     resolve to an insert or an oversize decline.
//   * Standing queries (standing_queries > 0): the driver subscribes the
//     first K node-set-typed pool queries against every document before the
//     replay. After the join it flushes deliveries and re-applies each
//     (subscription, document) diff stream from the empty set: every
//     intermediate state must equal the oracle's answer for *some* revision
//     of that document, and the final state must equal the answer at the
//     highest revision — anything else is a lost, duplicated, reordered, or
//     stale diff.
//
// Every failure message embeds the schedule seed and operation index, so
// any divergence is reproducible with a single-threaded replay of the same
// (spec, seed).

#ifndef GKX_TESTKIT_SOAK_DRIVER_HPP_
#define GKX_TESTKIT_SOAK_DRIVER_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "service/query_service.hpp"
#include "testkit/oracle.hpp"
#include "testkit/workload.hpp"

namespace gkx::testkit {

struct SoakOptions {
  /// Replay threads (plain std::threads; the service's own pool still backs
  /// SubmitBatch underneath, which is the point — both layers get traffic).
  int threads = 4;
  /// Standing queries to subscribe ("doc*", i.e. the whole corpus) before
  /// replay: the first `standing_queries` node-set-typed queries of the
  /// pool (fewer if the pool runs short). 0 = no subscriptions.
  int standing_queries = 0;
  /// Service under test. answer_tap / plan-cache hooks set here are
  /// preserved (the driver composes its own observation on top).
  service::QueryService::Options service;
  /// Failure messages kept verbatim (the count is always exact).
  size_t max_failures_reported = 8;
};

struct SoakReport {
  uint64_t seed = 0;
  int threads = 0;
  int64_t operations = 0;          // schedule entries replayed
  int64_t requests = 0;            // submits, batched requests included
  int64_t oracle_evaluations = 0;  // naive-oracle work done up front
  int64_t divergences = 0;         // answers matching no legal revision
  int64_t errors = 0;              // non-OK responses (none are legal)
  int64_t lost_updates = 0;        // final doc != highest revision
  int64_t patches = 0;             // subtree-edit churn ops replayed
  int64_t patch_divergences = 0;   // post-patch store state != precomputed
                                   // revision (delta path broke)
  int64_t stats_violations = 0;    // counter reconciliation failures
  int64_t subscriptions = 0;             // standing queries registered
  int64_t subscription_events = 0;       // diffs delivered to the driver
  int64_t subscription_violations = 0;   // diff streams violating the oracle
  /// First max_failures_reported messages, each embedding seed= and op=.
  std::vector<std::string> failures;
  service::ServiceStats stats;
  /// ExportStats(kJson) captured at the same point as `stats` — what
  /// bench_soak --stats-json= dumps and the CI schema check validates.
  std::string stats_json;

  bool ok() const {
    return divergences == 0 && errors == 0 && lost_updates == 0 &&
           patch_divergences == 0 && stats_violations == 0 &&
           subscription_violations == 0;
  }
  /// One-paragraph human-readable rollup (used by bench_soak and gtest).
  std::string Summary() const;
};

/// Replays the schedule and returns the full report. Thread-count and
/// schedule size are the caller's choice; the driver itself adds no
/// randomness.
SoakReport RunSoak(const Schedule& schedule, const SoakOptions& options = {});

}  // namespace gkx::testkit

#endif  // GKX_TESTKIT_SOAK_DRIVER_HPP_
