#include "testkit/workload.hpp"

#include <utility>

#include "testkit/reference_edit.hpp"
#include "xpath/parser.hpp"
#include "xpath/printer.hpp"

namespace gkx::testkit {
namespace {

// Samples an index into `mix` by cumulative weight.
size_t SampleFragment(Rng* rng, const std::vector<FragmentShare>& mix,
                      double total_weight) {
  double u = rng->UniformDouble() * total_weight;
  for (size_t i = 0; i < mix.size(); ++i) {
    u -= mix[i].weight;
    if (u < 0.0) return i;
  }
  return mix.size() - 1;
}

}  // namespace

std::vector<FragmentShare> DefaultFragmentMix() {
  return {
      {xpath::Fragment::kPF, 0.35},
      {xpath::Fragment::kPositiveCore, 0.20},
      {xpath::Fragment::kCore, 0.20},
      {xpath::Fragment::kPWF, 0.10},
      {xpath::Fragment::kWF, 0.05},
      {xpath::Fragment::kPXPath, 0.05},
      {xpath::Fragment::kFullXPath, 0.05},
  };
}

Result<Schedule> CompileWorkload(const WorkloadSpec& spec) {
  if (spec.operations < 1) return InvalidArgumentError("operations must be >= 1");
  if (spec.documents < 1) return InvalidArgumentError("documents must be >= 1");
  if (spec.queries < 1) return InvalidArgumentError("queries must be >= 1");
  if (spec.min_document_nodes < 1 ||
      spec.min_document_nodes > spec.max_document_nodes) {
    return InvalidArgumentError("document node bounds must satisfy 1 <= min <= max");
  }
  if (spec.max_batch < 2) return InvalidArgumentError("max_batch must be >= 2");
  if (spec.query_zipf_s < 0.0 || spec.document_zipf_s < 0.0) {
    return InvalidArgumentError("zipf skews must be >= 0 (rank 0 most popular)");
  }
  if (spec.batch_probability < 0.0 || spec.batch_probability > 1.0 ||
      spec.churn_probability < 0.0 || spec.churn_probability > 1.0 ||
      spec.edit_probability < 0.0 || spec.edit_probability > 1.0) {
    return InvalidArgumentError("probabilities must be in [0, 1]");
  }

  std::vector<FragmentShare> mix =
      spec.mix.empty() ? DefaultFragmentMix() : spec.mix;
  double total_weight = 0.0;
  for (const FragmentShare& share : mix) {
    if (share.weight < 0.0) return InvalidArgumentError("negative mix weight");
    total_weight += share.weight;
  }
  if (total_weight <= 0.0) return InvalidArgumentError("mix weights sum to zero");

  Rng rng(spec.seed);
  Schedule out;
  out.seed = spec.seed;

  // ------------------------------------------------------------ query pool
  // Generated and parse-checked first: the pool's composition must not
  // depend on how many churn revisions the operation list later needs.
  out.queries.reserve(static_cast<size_t>(spec.queries));
  for (int q = 0; q < spec.queries; ++q) {
    xpath::RandomQueryOptions options = spec.query_options;
    options.fragment = mix[SampleFragment(&rng, mix, total_weight)].fragment;
    std::string text;
    bool ok = false;
    // The printer round-trips by construction; the retry loop is defensive
    // (a non-reparsing text would silently skew the mix otherwise).
    for (int attempt = 0; attempt < 8 && !ok; ++attempt) {
      text = xpath::ToXPathString(xpath::RandomQuery(&rng, options));
      ok = xpath::ParseQuery(text).ok();
    }
    if (!ok) {
      return InternalError("generated query failed to re-parse: " + text);
    }
    out.queries.push_back(std::move(text));
  }

  // ------------------------------------------------------------ corpus
  // Base revisions first: subtree-edit churn below is generated *against*
  // the then-current revision (targets are NodeIds), so the corpus and the
  // operation list grow together — every revision any churn op can install
  // is still fully pre-generated and part of the deterministic schedule.
  auto random_revision = [&] {
    xml::RandomDocumentOptions options = spec.document_options;
    options.node_count = static_cast<int32_t>(
        rng.UniformInt(spec.min_document_nodes, spec.max_document_nodes));
    return xml::RandomDocument(&rng, options);
  };
  out.doc_keys.reserve(static_cast<size_t>(spec.documents));
  out.revisions.resize(static_cast<size_t>(spec.documents));
  for (int d = 0; d < spec.documents; ++d) {
    out.doc_keys.push_back("doc" + std::to_string(d));
    out.revisions[static_cast<size_t>(d)].push_back(random_revision());
  }

  // Subtree edits reuse the corpus' alphabet and shape so edited regions
  // carry names that overlap the rest of the document.
  xml::RandomEditOptions edit_options = spec.edit_options;
  edit_options.subtree_options = spec.document_options;

  // -------------------------------------------------------- operation list
  const ZipfSampler doc_zipf(spec.documents, spec.document_zipf_s);
  const ZipfSampler query_zipf(spec.queries, spec.query_zipf_s);
  out.operations.reserve(static_cast<size_t>(spec.operations));
  for (int i = 0; i < spec.operations; ++i) {
    Operation op;
    if (rng.Bernoulli(spec.churn_probability)) {
      op.doc = static_cast<int32_t>(rng.UniformInt(0, spec.documents - 1));
      auto& revisions = out.revisions[static_cast<size_t>(op.doc)];
      op.revision = static_cast<int32_t>(revisions.size());
      if (rng.Bernoulli(spec.edit_probability)) {
        // Delta churn: a random subtree edit of the document's current
        // revision. The resulting revision is precomputed through the
        // delta path (ApplyEdit) and differentially checked against the
        // from-scratch rebuild — the patch/full-replacement equivalence is
        // re-proven for every edit of every compiled schedule.
        op.kind = Operation::Kind::kEditDocument;
        op.edit = xml::RandomSubtreeEdit(&rng, revisions.back(), edit_options);
        xml::DocumentDelta delta;
        auto edited = xml::ApplyEdit(revisions.back(), op.edit, &delta);
        if (!edited.ok()) {
          return InternalError("generated edit failed to apply (seed=" +
                               std::to_string(spec.seed) + " op=" +
                               std::to_string(i) +
                               "): " + edited.status().ToString());
        }
        std::string why;
        if (!ExhaustiveEquals(*edited,
                              NaiveApplyEdit(revisions.back(), op.edit),
                              &why)) {
          return InternalError(
              "ApplyEdit diverges from the from-scratch rebuild (seed=" +
              std::to_string(spec.seed) + " op=" + std::to_string(i) +
              "): " + why);
        }
        revisions.push_back(std::move(edited).value());
      } else {
        op.kind = Operation::Kind::kAddDocument;
        revisions.push_back(random_revision());
      }
    } else if (rng.Bernoulli(spec.batch_probability)) {
      op.kind = Operation::Kind::kBatch;
      const int64_t size = rng.UniformInt(2, spec.max_batch);
      op.requests.reserve(static_cast<size_t>(size));
      for (int64_t r = 0; r < size; ++r) {
        op.requests.emplace_back(static_cast<int32_t>(doc_zipf.Sample(&rng)),
                                 static_cast<int32_t>(query_zipf.Sample(&rng)));
      }
      out.total_requests += size;
    } else {
      op.kind = Operation::Kind::kSubmit;
      op.requests.emplace_back(static_cast<int32_t>(doc_zipf.Sample(&rng)),
                               static_cast<int32_t>(query_zipf.Sample(&rng)));
      out.total_requests += 1;
    }
    out.operations.push_back(std::move(op));
  }

  return out;
}

}  // namespace gkx::testkit
