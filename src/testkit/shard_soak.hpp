// Cross-shard isolation soak for ShardedQueryService: proves that churn on
// one shard never bleeds into a sibling — not through the answer cache, not
// through subscriptions, not through recovery.
//
// The corpus gives every document a private tag family (doc k's elements
// are a<k>/b<k>/...), so every query and subscription footprint is disjoint
// by construction and every oracle answer is exact. Churn targets exactly
// the documents the router's own ShardMap places on shard 0; the oracle is
// a single-threaded replay of the same precompiled edit chains with
// xml::ApplyEdit, digested per round with the engine. The soak then
// alternates write phases (threads apply disjoint per-document edit slices,
// each document pinned to one thread) with read phases (threads submit
// disjoint scatter-gather batches over the full corpus, twice, so the
// second pass must be served from warm answer caches) and checks every
// answer against the round's oracle digest.
//
// What a failure means:
//   * a digest mismatch on a churned document  → lost/misapplied edit or a
//     stale answer-cache serve on the churned shard;
//   * a digest mismatch on an unchurned document → cross-shard cache
//     poisoning (the defect this soak exists to catch);
//   * non-zero invalidation/churn counters on an unchurned shard → the
//     "shared-nothing" claim is false even if answers happen to be right;
//   * a subscription event for an unchurned document (beyond the initial
//     answer), or a replayed diff stream that does not reconstruct the
//     final oracle node-set → subscription fan-in crossed shards or dropped
//     a diff.
//
// With a non-empty wal_dir the soak ends with a one-shard recovery round:
// every shard except 0 checkpoints, shard 0 takes one more churn round and
// then crashes (CrashWalForTest — the in-memory tail is dropped exactly as
// kill -9 would), the whole router is destroyed and rebuilt on the same
// directory. Exactly shard 0 must replay journal records; every document
// must come back node-for-node equal (ExhaustiveEquals) to the oracle's
// final revision; and the recovered corpus must answer queries.
//
// Deterministic for a fixed (options, seed): all schedules are precomputed,
// phases are barrier-separated, and per-document work is pinned to one
// thread.

#ifndef GKX_TESTKIT_SHARD_SOAK_HPP_
#define GKX_TESTKIT_SHARD_SOAK_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "service/sharded_service.hpp"

namespace gkx::testkit {

struct ShardSoakOptions {
  int shards = 2;
  /// Corpus size; keys are "doc<k>". Must give every shard at least one
  /// document (checked).
  int documents = 24;
  /// Write/read rounds.
  int rounds = 3;
  /// Threads per phase (writers in write phases, readers in read phases).
  int threads = 2;
  uint64_t seed = 0x5eedbeef;
  /// Edits applied to each churned document per round.
  int edits_per_doc_per_round = 4;
  /// Non-empty = durable shards under <wal_dir>/shard<i> plus the final
  /// crash/recovery round. The directory must be fresh (caller wipes it).
  std::string wal_dir;
  /// Per-shard service template (wal_dir is injected from above).
  service::QueryService::Options service;
  size_t max_failures_reported = 8;
};

struct ShardSoakReport {
  uint64_t seed = 0;
  int shards = 0;
  int rounds = 0;
  int64_t mutations = 0;          // edits acknowledged by the router
  int64_t reads = 0;              // batch answers checked against the oracle
  int64_t answer_cache_hits = 0;  // summed over shards at the end
  int64_t subscription_events = 0;  // churn-driven events delivered
  int64_t oracle_evaluations = 0;
  int64_t divergences = 0;        // wrong answers / streams / counters
  int64_t errors = 0;             // failed mutations, submits, recovery
  bool recovery_ran = false;
  int64_t records_replayed_shard0 = 0;
  std::vector<std::string> failures;  // first max_failures_reported, w/ seed=

  bool ok() const { return divergences == 0 && errors == 0; }
  std::string Summary() const;
};

ShardSoakReport RunShardSoak(const ShardSoakOptions& options);

}  // namespace gkx::testkit

#endif  // GKX_TESTKIT_SHARD_SOAK_HPP_
