#include "testkit/reference_edit.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "base/check.hpp"
#include "xml/builder.hpp"

namespace gkx::testkit {
namespace {

using xml::Attribute;
using xml::BuildNodeId;
using xml::Document;
using xml::NameId;
using xml::NodeId;
using xml::SubtreeEdit;
using xml::TreeBuilder;

/// Copies the subtree of `src` rooted at `v` (decorations included) as a
/// fresh child chain under `parent`.
void CopySubtree(TreeBuilder* b, BuildNodeId parent, const Document& src,
                 NodeId v) {
  BuildNodeId id = b->AddChild(parent, src.TagName(v));
  for (NameId label : src.labels(v)) b->AddLabel(id, src.NameText(label));
  b->SetText(id, src.text(v));
  for (int32_t i = 0; i < src.attribute_count(v); ++i) {
    const xml::AttributeRef attribute = src.attribute(v, i);
    b->AddAttribute(id, attribute.name, attribute.value);
  }
  for (NodeId c : src.Children(v)) CopySubtree(b, id, src, c);
}

class Rebuilder {
 public:
  Rebuilder(const Document& doc, const SubtreeEdit& edit)
      : doc_(doc), edit_(edit) {}

  Document Build() {
    if (edit_.kind == SubtreeEdit::Kind::kReplaceSubtree &&
        edit_.target == doc_.root()) {
      // Whole-document replacement: the result IS the replacement subtree.
      TreeBuilder b(edit_.subtree.TagName(edit_.subtree.root()));
      EmitForeignDecorations(&b, b.root(), edit_.subtree,
                             edit_.subtree.root());
      for (NodeId c : edit_.subtree.Children(edit_.subtree.root())) {
        CopySubtree(&b, b.root(), edit_.subtree, c);
      }
      return std::move(b).Build();
    }
    GKX_CHECK(edit_.kind != SubtreeEdit::Kind::kRemoveSubtree ||
              edit_.target != doc_.root());
    TreeBuilder b(TagOf(doc_.root()));
    EmitDecorations(&b, b.root(), doc_.root());
    EmitChildren(&b, b.root(), doc_.root());
    return std::move(b).Build();
  }

 private:
  std::string_view TagOf(NodeId v) const {
    return edit_.kind == SubtreeEdit::Kind::kRelabel && v == edit_.target
               ? std::string_view(edit_.label)
               : doc_.TagName(v);
  }

  static void EmitForeignDecorations(TreeBuilder* b, BuildNodeId id,
                                     const Document& src, NodeId v) {
    for (NameId label : src.labels(v)) {
      b->AddLabel(id, src.NameText(label));
    }
    b->SetText(id, src.text(v));
    for (int32_t i = 0; i < src.attribute_count(v); ++i) {
      const xml::AttributeRef attribute = src.attribute(v, i);
      b->AddAttribute(id, attribute.name, attribute.value);
    }
  }

  void EmitDecorations(TreeBuilder* b, BuildNodeId id, NodeId v) const {
    for (NameId label : doc_.labels(v)) {
      b->AddLabel(id, doc_.NameText(label));
    }
    b->SetText(id, edit_.kind == SubtreeEdit::Kind::kSetText &&
                       v == edit_.target
                   ? std::string_view(edit_.text)
                   : doc_.text(v));
    for (int32_t i = 0; i < doc_.attribute_count(v); ++i) {
      const xml::AttributeRef attribute = doc_.attribute(v, i);
      b->AddAttribute(id, attribute.name, attribute.value);
    }
  }

  void EmitChildren(TreeBuilder* b, BuildNodeId id, NodeId v) const {
    const bool insert_here =
        edit_.kind == SubtreeEdit::Kind::kInsertSubtree && v == edit_.target;
    int32_t index = 0;
    for (NodeId c : doc_.Children(v)) {
      if (insert_here && index == edit_.position) {
        CopySubtree(b, id, edit_.subtree, edit_.subtree.root());
      }
      ++index;
      EmitNode(b, id, c);
    }
    if (insert_here && edit_.position >= index) {
      CopySubtree(b, id, edit_.subtree, edit_.subtree.root());
    }
  }

  void EmitNode(TreeBuilder* b, BuildNodeId parent, NodeId v) const {
    if (edit_.kind == SubtreeEdit::Kind::kRemoveSubtree && v == edit_.target) {
      return;
    }
    if (edit_.kind == SubtreeEdit::Kind::kReplaceSubtree &&
        v == edit_.target) {
      CopySubtree(b, parent, edit_.subtree, edit_.subtree.root());
      return;
    }
    BuildNodeId id = b->AddChild(parent, TagOf(v));
    EmitDecorations(b, id, v);
    EmitChildren(b, id, v);
  }

  const Document& doc_;
  const SubtreeEdit& edit_;
};

}  // namespace

Document NaiveApplyEdit(const Document& doc, const SubtreeEdit& edit) {
  return Rebuilder(doc, edit).Build();
}

bool ExhaustiveEquals(const Document& a, const Document& b, std::string* why) {
  auto fail = [why](NodeId v, const std::string& what) {
    if (why != nullptr) {
      std::ostringstream out;
      out << "node " << v << ": " << what;
      *why = out.str();
    }
    return false;
  };
  if (a.size() != b.size()) {
    return fail(-1, "sizes differ: " + std::to_string(a.size()) + " vs " +
                        std::to_string(b.size()));
  }
  for (NodeId v = 0; v < a.size(); ++v) {
    if (a.parent(v) != b.parent(v)) return fail(v, "parent");
    if (a.first_child(v) != b.first_child(v)) return fail(v, "first_child");
    if (a.last_child(v) != b.last_child(v)) return fail(v, "last_child");
    if (a.prev_sibling(v) != b.prev_sibling(v)) return fail(v, "prev_sibling");
    if (a.next_sibling(v) != b.next_sibling(v)) return fail(v, "next_sibling");
    if (a.subtree_size(v) != b.subtree_size(v)) return fail(v, "subtree_size");
    if (a.depth(v) != b.depth(v)) return fail(v, "depth");
    if (a.text(v) != b.text(v)) return fail(v, "text");
    if (a.TagName(v) != b.TagName(v)) return fail(v, "tag");
    // Label NameIds depend on interning history; compare as name sets.
    std::vector<std::string_view> la, lb;
    for (NameId label : a.labels(v)) la.push_back(a.NameText(label));
    for (NameId label : b.labels(v)) lb.push_back(b.NameText(label));
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    if (la != lb) return fail(v, "labels");
    if (a.attribute_count(v) != b.attribute_count(v)) {
      return fail(v, "attribute count");
    }
    for (int32_t i = 0; i < a.attribute_count(v); ++i) {
      const xml::AttributeRef aa = a.attribute(v, i);
      const xml::AttributeRef ab = b.attribute(v, i);
      if (aa.name != ab.name || aa.value != ab.value) {
        return fail(v, "attribute " + std::string(aa.name));
      }
    }
  }
  return true;
}

}  // namespace gkx::testkit
