// The independent answer key for xml::ApplyEdit: NaiveApplyEdit rebuilds
// the edited document from scratch through TreeBuilder — a full
// re-construction sharing none of the splicer's machinery (no interval
// arithmetic, no link remapping, no pool reuse). The metamorphic contract
// is that ApplyEdit(doc, e) and NaiveApplyEdit(doc, e) are node-for-node
// identical (links, tags, labels, attributes, text, subtree sizes, depths),
// which ExhaustiveEquals checks field by field. CompileWorkload applies the
// check to every churn edit it compiles, so the soak differentially tests
// the delta path against an equivalent full replacement on every round.

#ifndef GKX_TESTKIT_REFERENCE_EDIT_HPP_
#define GKX_TESTKIT_REFERENCE_EDIT_HPP_

#include <string>

#include "xml/document.hpp"
#include "xml/edit.hpp"

namespace gkx::testkit {

/// Rebuilds `doc` with `edit` applied, from scratch (recursive over tree
/// depth — sized for test corpora, not the Θ(n)-deep reduction spines).
/// The edit must be valid for `doc` (ApplyEdit's preconditions).
xml::Document NaiveApplyEdit(const xml::Document& doc,
                             const xml::SubtreeEdit& edit);

/// Field-by-field equality over every node: links, depth, subtree size,
/// tag/label names, attributes, text. Stricter than
/// Document::StructurallyEquals (which ignores sibling links, depths, and
/// sizes). On mismatch returns false and, when `why` is non-null, describes
/// the first differing node.
bool ExhaustiveEquals(const xml::Document& a, const xml::Document& b,
                      std::string* why = nullptr);

}  // namespace gkx::testkit

#endif  // GKX_TESTKIT_REFERENCE_EDIT_HPP_
