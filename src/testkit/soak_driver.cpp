#include "testkit/soak_driver.hpp"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "mview/subscription.hpp"
#include "testkit/reference_edit.hpp"
#include "xml/serializer.hpp"
#include "xpath/parser.hpp"

namespace gkx::testkit {
namespace {

using service::QueryService;

int64_t SumCounts(const std::map<std::string, int64_t>& counts) {
  int64_t total = 0;
  for (const auto& [name, count] : counts) total += count;
  return total;
}

/// The first `wanted` pool queries a subscription can watch (node-set-typed
/// roots; scalar queries have no added/removed diff).
std::vector<int32_t> PickStandingQueries(const Schedule& schedule, int wanted) {
  std::vector<int32_t> picked;
  for (size_t q = 0; q < schedule.queries.size() &&
                     picked.size() < static_cast<size_t>(std::max(0, wanted));
       ++q) {
    xpath::Query parsed = xpath::MustParse(schedule.queries[q]);
    if (xpath::StaticType(parsed.root()) == xpath::ValueType::kNodeSet) {
      picked.push_back(static_cast<int32_t>(q));
    }
  }
  return picked;
}

/// Applies one delivered diff to the reconstructed state; false if the diff
/// is structurally impossible (removing absent nodes / re-adding present
/// ones — a duplicated, reordered, or corrupted delivery).
bool ApplyDiff(eval::NodeSet* applied, const mview::SubscriptionEvent& event) {
  if (!std::includes(applied->begin(), applied->end(), event.removed.begin(),
                     event.removed.end())) {
    return false;
  }
  for (xml::NodeId node : event.added) {
    if (std::binary_search(applied->begin(), applied->end(), node)) return false;
  }
  eval::NodeSet after_removal;
  std::set_difference(applied->begin(), applied->end(), event.removed.begin(),
                      event.removed.end(), std::back_inserter(after_removal));
  eval::NodeSet next;
  std::set_union(after_removal.begin(), after_removal.end(),
                 event.added.begin(), event.added.end(),
                 std::back_inserter(next));
  *applied = std::move(next);
  return true;
}

class Replay {
 public:
  Replay(const Schedule& schedule, const SoakOptions& options)
      : schedule_(schedule),
        threads_(std::max(1, options.threads)),
        max_reported_(options.max_failures_reported),
        answer_cache_enabled_(options.service.answer_cache_enabled),
        exec_workers_(options.service.exec.workers),
        standing_(PickStandingQueries(schedule, options.standing_queries)),
        oracle_(schedule, standing_) {
    // Compose the eviction observation on top of any caller-provided hook.
    QueryService::Options service_options = options.service;
    auto caller_hook = service_options.plan_cache.on_evict;
    service_options.plan_cache.on_evict =
        [this, caller_hook](const std::string& key) {
          observed_evictions_.fetch_add(1, std::memory_order_relaxed);
          if (caller_hook) caller_hook(key);
        };
    service_ = std::make_unique<QueryService>(service_options);

    max_rev_.reserve(schedule.revisions.size());
    for (size_t d = 0; d < schedule.revisions.size(); ++d) {
      GKX_CHECK(service_
                    ->RegisterDocument(schedule.doc_keys[d],
                                       xml::Document(schedule.revisions[d][0]))
                    .ok());
      max_rev_.push_back(static_cast<int32_t>(schedule.revisions[d].size()) - 1);
    }

    // Standing queries watch the whole corpus; deliveries are collected per
    // (subscription, document) in arrival order (delivery per subscription
    // is serialized by the manager, so arrival order == delivery order).
    for (int32_t query : standing_) {
      auto subscribed = service_->Subscribe(
          "doc*", schedule.queries[static_cast<size_t>(query)],
          [this](const mview::SubscriptionEvent& event) {
            observed_deliveries_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(events_mu_);
            events_[{event.subscription, event.doc_key}].push_back(event);
          });
      GKX_CHECK(subscribed.ok());
      subs_.emplace_back(*subscribed, query);
    }
  }

  SoakReport Run() {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back([this, t] { Worker(t); });
    }
    for (auto& worker : workers) worker.join();
    // Churn has stopped; drain pending subscription evaluations so the
    // collected diff streams (and the fired counter) are final.
    service_->FlushSubscriptions();

    SoakReport report;
    report.seed = schedule_.seed;
    report.threads = threads_;
    report.operations = static_cast<int64_t>(schedule_.operations.size());
    report.requests = requests_.load();
    report.oracle_evaluations = oracle_.evaluations();
    report.divergences = divergences_.load();
    report.errors = errors_.load();
    report.patches = patches_.load();
    report.patch_divergences = patch_divergences_.load();
    report.stats = service_->Stats();
    report.stats_json = service_->ExportStats(service::StatsFormat::kJson);
    CheckFinalDocuments(&report);
    CheckSubscriptions(&report);
    CheckStats(&report);
    {
      std::lock_guard<std::mutex> lock(failures_mu_);
      report.failures = failures_;
    }
    return report;
  }

 private:
  void Worker(int thread) {
    // Same-thread churn is visible to later reads on this thread (the store
    // mutex orders Put before Get); that is the lower edge of the window.
    std::vector<int32_t> watermark(schedule_.revisions.size(), 0);
    for (size_t i = 0; i < schedule_.operations.size(); ++i) {
      const Operation& op = schedule_.operations[i];
      // Churn is pinned by document so per-document revisions are installed
      // in schedule order; everything else is dealt round-robin.
      const bool churn = op.kind == Operation::Kind::kAddDocument ||
                         op.kind == Operation::Kind::kEditDocument;
      const bool mine =
          churn ? op.doc % threads_ == thread
                : static_cast<int>(i % static_cast<size_t>(threads_)) == thread;
      if (!mine) continue;

      switch (op.kind) {
        case Operation::Kind::kAddDocument: {
          const size_t doc = static_cast<size_t>(op.doc);
          GKX_CHECK(
              service_
                  ->RegisterDocument(
                      schedule_.doc_keys[doc],
                      xml::Document(
                          schedule_.revisions[doc][static_cast<size_t>(
                              op.revision)]))
                  .ok());
          watermark[doc] = op.revision;
          break;
        }
        case Operation::Kind::kEditDocument: {
          const size_t doc = static_cast<size_t>(op.doc);
          patches_.fetch_add(1, std::memory_order_relaxed);
          GKX_CHECK(
              service_->UpdateDocument(schedule_.doc_keys[doc], op.edit).ok());
          watermark[doc] = op.revision;
          // Differential: this thread is the document's only writer, so the
          // store now holds exactly what the patch produced — which must be
          // node-for-node the schedule's precomputed revision (the one the
          // oracle answers are keyed on, and the one the compile step
          // already checked against a from-scratch rebuild).
          auto stored = service_->documents().Get(schedule_.doc_keys[doc]);
          std::string why;
          if (stored == nullptr ||
              !ExhaustiveEquals(
                  stored->doc(),
                  schedule_.revisions[doc][static_cast<size_t>(op.revision)],
                  &why)) {
            patch_divergences_.fetch_add(1, std::memory_order_relaxed);
            std::ostringstream message;
            message << "patch divergence: seed=" << schedule_.seed
                    << " op=" << i << " thread=" << thread << " doc="
                    << schedule_.doc_keys[doc] << " revision=" << op.revision
                    << " " << (stored == nullptr ? "document vanished" : why)
                    << " | replay: CompileWorkload(seed=" << schedule_.seed
                    << ")";
            RecordFailure(message.str());
          }
          break;
        }
        case Operation::Kind::kSubmit: {
          const auto [doc, query] = op.requests.front();
          requests_.fetch_add(1, std::memory_order_relaxed);
          auto response =
              service_->Submit(schedule_.doc_keys[static_cast<size_t>(doc)],
                               schedule_.queries[static_cast<size_t>(query)]);
          CheckAnswer(i, thread, doc, query,
                      watermark[static_cast<size_t>(doc)], response);
          break;
        }
        case Operation::Kind::kBatch: {
          std::vector<QueryService::Request> batch;
          batch.reserve(op.requests.size());
          for (const auto& [doc, query] : op.requests) {
            batch.push_back(
                {schedule_.doc_keys[static_cast<size_t>(doc)],
                 schedule_.queries[static_cast<size_t>(query)]});
          }
          requests_.fetch_add(static_cast<int64_t>(batch.size()),
                              std::memory_order_relaxed);
          auto responses = service_->SubmitBatch(batch);
          for (size_t r = 0; r < responses.size(); ++r) {
            const auto [doc, query] = op.requests[r];
            CheckAnswer(i, thread, doc, query,
                        watermark[static_cast<size_t>(doc)], responses[r]);
          }
          break;
        }
      }
    }
  }

  void CheckAnswer(size_t op_index, int thread, int32_t doc, int32_t query,
                   int32_t rev_lo, const Result<QueryService::Answer>& response) {
    const int32_t rev_hi = max_rev_[static_cast<size_t>(doc)];
    if (!response.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream message;
      message << "error: seed=" << schedule_.seed << " op=" << op_index
              << " thread=" << thread << " doc="
              << schedule_.doc_keys[static_cast<size_t>(doc)] << " query='"
              << schedule_.queries[static_cast<size_t>(query)]
              << "' status=" << response.status().ToString();
      RecordFailure(message.str());
      return;
    }
    const std::string digest = AnswerDigest(response->value);
    if (oracle_.MatchesAnyRevision(doc, rev_lo, rev_hi, query, digest)) return;
    divergences_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream message;
    message << "divergence: seed=" << schedule_.seed << " op=" << op_index
            << " thread=" << thread << " doc="
            << schedule_.doc_keys[static_cast<size_t>(doc)] << " query='"
            << schedule_.queries[static_cast<size_t>(query)]
            << "' evaluator=" << response->evaluator << " rev_window=["
            << rev_lo << "," << rev_hi << "] got=" << digest
            << " want(rev" << rev_hi << ")="
            << oracle_.Expected(doc, rev_hi, query)
            << " | replay: CompileWorkload(seed=" << schedule_.seed << ")";
    RecordFailure(message.str());
  }

  /// Lost-update check: churn per document is single-threaded, so the final
  /// store state must be exactly the highest revision, byte for byte.
  void CheckFinalDocuments(SoakReport* report) {
    for (size_t d = 0; d < schedule_.revisions.size(); ++d) {
      auto stored = service_->documents().Get(schedule_.doc_keys[d]);
      const xml::Document& expected = schedule_.revisions[d].back();
      if (stored != nullptr && xml::SerializeDocument(stored->doc()) ==
                                   xml::SerializeDocument(expected)) {
        continue;
      }
      ++report->lost_updates;
      std::ostringstream message;
      message << "lost update: seed=" << schedule_.seed << " doc="
              << schedule_.doc_keys[d] << " final store state is not revision "
              << schedule_.revisions[d].size() - 1;
      RecordFailure(message.str());
    }
  }

  /// Re-applies each (subscription, document) diff stream from the empty
  /// set: every intermediate state must be the oracle answer at *some*
  /// revision (diffs are coalesced snapshots of states that really
  /// existed), and the final state must match the highest revision.
  void CheckSubscriptions(SoakReport* report) {
    report->subscriptions = static_cast<int64_t>(subs_.size());
    report->subscription_events = observed_deliveries_.load();
    if (subs_.empty()) return;
    auto violation = [this, report](int64_t sub, int32_t doc, int32_t query,
                                    size_t event_index, const std::string& what,
                                    const std::string& digest) {
      ++report->subscription_violations;
      std::ostringstream message;
      message << "subscription violation: seed=" << schedule_.seed
              << " op=post-join sub=" << sub << " doc="
              << schedule_.doc_keys[static_cast<size_t>(doc)] << " query='"
              << schedule_.queries[static_cast<size_t>(query)] << "' event="
              << event_index << " " << what << " state=" << digest
              << " | replay: CompileWorkload(seed=" << schedule_.seed << ")";
      RecordFailure(message.str());
    };
    for (const auto& [sub_id, query] : subs_) {
      for (size_t d = 0; d < schedule_.doc_keys.size(); ++d) {
        const int32_t doc = static_cast<int32_t>(d);
        const int32_t hi = max_rev_[d];
        eval::NodeSet applied;
        auto it = events_.find({sub_id, schedule_.doc_keys[d]});
        if (it != events_.end()) {
          for (size_t e = 0; e < it->second.size(); ++e) {
            if (!ApplyDiff(&applied, it->second[e])) {
              violation(sub_id, doc, query, e,
                        "diff removes absent / re-adds present nodes",
                        AnswerDigest(eval::Value::Nodes(eval::NodeSet(applied))));
              break;
            }
            const std::string digest =
                AnswerDigest(eval::Value::Nodes(eval::NodeSet(applied)));
            if (!oracle_.MatchesAnyRevision(doc, 0, hi, query, digest)) {
              violation(sub_id, doc, query, e,
                        "state matches no revision's oracle answer", digest);
            }
          }
        }
        const std::string final_digest =
            AnswerDigest(eval::Value::Nodes(std::move(applied)));
        if (final_digest != oracle_.Expected(doc, hi, query)) {
          violation(sub_id, doc, query,
                    it == events_.end() ? 0 : it->second.size(),
                    "final state != highest revision (want " +
                        oracle_.Expected(doc, hi, query) + ")",
                    final_digest);
        }
      }
    }
  }

  void CheckStats(SoakReport* report) {
    const service::ServiceStats& stats = report->stats;
    int64_t batch_ops = 0;
    for (const Operation& op : schedule_.operations) {
      if (op.kind == Operation::Kind::kBatch) ++batch_ops;
    }
    auto require = [this, report](bool condition, const std::string& what) {
      if (condition) return;
      ++report->stats_violations;
      RecordFailure("stats inconsistency: seed=" +
                    std::to_string(schedule_.seed) + " " + what);
    };
    require(report->requests == schedule_.total_requests,
            "executed requests != schedule total");
    require(stats.requests == report->requests,
            "service request counter != executed requests");
    require(stats.batches == batch_ops, "batch counter != batch operations");
    require(stats.failures == report->errors,
            "failure counter != observed errors");
    require(stats.plan_cache.parse_failures == 0,
            "parse failures on a parse-checked pool");
    require(stats.plan_cache.Lookups() == stats.requests,
            "hits+canonical_hits+misses+parse_failures != requests");
    require(SumCounts(stats.evaluator_counts) == stats.requests - stats.failures,
            "evaluator counts don't sum to successful requests");
    require(stats.latency.count == stats.requests - stats.failures,
            "latency histogram count != successful requests");
    if (stats.tracing) {
      // The per-route latency histograms mirror the segment dispatch
      // counters one-for-one: same labels, same counts (traced runs emit a
      // timing for every plan segment, including frontier-skipped ones).
      int64_t route_hist_total = 0;
      for (const auto& [label, summary] : stats.route_latency) {
        auto it = stats.segment_route_counts.find(label);
        require(it != stats.segment_route_counts.end(),
                "route histogram '" + label + "' has no segment counter");
        if (it != stats.segment_route_counts.end()) {
          require(summary.count == it->second,
                  "route histogram '" + label + "' count " +
                      std::to_string(summary.count) + " != segment counter " +
                      std::to_string(it->second));
        }
        route_hist_total += summary.count;
      }
      for (const auto& entry : stats.segment_route_counts) {
        require(stats.route_latency.count(entry.first) == 1,
                "segment route '" + entry.first +
                    "' missing a latency histogram");
      }
      require(route_hist_total == SumCounts(stats.segment_route_counts),
              "sum of route histogram counts != sum of segment counters");
    }
    // Staged-executor accounting: every segment a staged run dispatched
    // landed in exactly one of the parallel/sequential/skipped buckets —
    // also when segments executed concurrently (exec.workers > 1; the
    // parallel soak rounds run this way under TSan).
    require(stats.exec_parallel_segments + stats.exec_sequential_segments +
                    stats.exec_skipped_segments ==
                stats.staged_segments,
            "exec parallel+sequential+skipped buckets != staged segments");
    require(stats.staged_segments <= SumCounts(stats.segment_route_counts),
            "staged segments exceed total segment dispatches");
    if (exec_workers_ <= 1) {
      require(stats.exec_parallel_segments == 0,
              "parallel segments recorded with exec.workers <= 1");
    }
    require(stats.plan_cache.evictions == observed_evictions_.load(),
            "eviction counter != evictions observed via on_evict");
    require(stats.plan_cache_entries <= service_->plan_cache().capacity_bound(),
            "plan cache exceeded its capacity bound");
    if (answer_cache_enabled_ && report->errors == 0) {
      require(stats.answer_cache.hits + stats.answer_cache.misses ==
                  stats.requests - stats.failures,
              "answer cache lookups != successful requests");
      require(stats.answer_cache.inserts + stats.answer_cache.declined ==
                  stats.answer_cache.misses,
              "answer cache misses don't reconcile to inserts + declines");
      require(stats.answer_cache.entries <=
                  static_cast<int64_t>(service_->answer_cache().capacity_bound()),
              "answer cache exceeded its capacity bound");
      require(stats.answer_cache.bytes >= 0,
              "answer cache byte gauge went negative");
    }
    require(stats.subscriptions.fired == observed_deliveries_.load(),
            "subscription fired counter != deliveries observed");
    require(stats.subscriptions.active == static_cast<int64_t>(subs_.size()),
            "active subscription gauge != registered standing queries");
  }

  void RecordFailure(std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu_);
    if (failures_.size() < max_reported_) failures_.push_back(std::move(message));
  }

  const Schedule& schedule_;
  const int threads_;
  const size_t max_reported_;
  const bool answer_cache_enabled_;
  const int exec_workers_;
  std::vector<int32_t> standing_;  // pool indexes (before oracle_: init order)
  Oracle oracle_;
  std::unique_ptr<QueryService> service_;
  std::vector<std::pair<int64_t, int32_t>> subs_;  // (subscription id, query)
  std::vector<int32_t> max_rev_;
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> divergences_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> patches_{0};
  std::atomic<int64_t> patch_divergences_{0};
  std::atomic<int64_t> observed_evictions_{0};
  std::atomic<int64_t> observed_deliveries_{0};
  std::mutex events_mu_;
  std::map<std::pair<int64_t, std::string>, std::vector<mview::SubscriptionEvent>>
      events_;
  std::mutex failures_mu_;
  std::vector<std::string> failures_;
};

}  // namespace

std::string SoakReport::Summary() const {
  std::ostringstream out;
  out << "soak seed=" << seed << ": " << operations << " ops (" << requests
      << " requests) on " << threads << " threads, oracle="
      << oracle_evaluations << " evals — "
      << (ok() ? "PASS" : "FAIL") << " (divergences=" << divergences
      << " errors=" << errors << " lost_updates=" << lost_updates
      << " patches=" << patches
      << " patch_divergences=" << patch_divergences
      << " stats_violations=" << stats_violations
      << " subscription_violations=" << subscription_violations
      << "); plan cache hit rate " << stats.plan_cache.HitRate()
      << ", answer cache hit rate " << stats.answer_cache.HitRate() << " ("
      << stats.answer_cache.invalidations << " invalidated, "
      << stats.answer_cache.retained << " retained), " << subscriptions
      << " standing queries (" << subscription_events << " diffs, "
      << stats.subscriptions.coalesced << " coalesced)";
  for (const std::string& failure : failures) out << "\n  " << failure;
  return out.str();
}

SoakReport RunSoak(const Schedule& schedule, const SoakOptions& options) {
  Replay replay(schedule, options);
  return replay.Run();
}

}  // namespace gkx::testkit
