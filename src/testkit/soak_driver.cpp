#include "testkit/soak_driver.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "xml/serializer.hpp"

namespace gkx::testkit {
namespace {

using service::QueryService;

int64_t SumCounts(const std::map<std::string, int64_t>& counts) {
  int64_t total = 0;
  for (const auto& [name, count] : counts) total += count;
  return total;
}

class Replay {
 public:
  Replay(const Schedule& schedule, const SoakOptions& options)
      : schedule_(schedule),
        threads_(std::max(1, options.threads)),
        max_reported_(options.max_failures_reported),
        oracle_(schedule) {
    // Compose the eviction observation on top of any caller-provided hook.
    QueryService::Options service_options = options.service;
    auto caller_hook = service_options.plan_cache.on_evict;
    service_options.plan_cache.on_evict =
        [this, caller_hook](const std::string& key) {
          observed_evictions_.fetch_add(1, std::memory_order_relaxed);
          if (caller_hook) caller_hook(key);
        };
    service_ = std::make_unique<QueryService>(service_options);

    max_rev_.reserve(schedule.revisions.size());
    for (size_t d = 0; d < schedule.revisions.size(); ++d) {
      GKX_CHECK(service_
                    ->RegisterDocument(schedule.doc_keys[d],
                                       xml::Document(schedule.revisions[d][0]))
                    .ok());
      max_rev_.push_back(static_cast<int32_t>(schedule.revisions[d].size()) - 1);
    }
  }

  SoakReport Run() {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back([this, t] { Worker(t); });
    }
    for (auto& worker : workers) worker.join();

    SoakReport report;
    report.seed = schedule_.seed;
    report.threads = threads_;
    report.operations = static_cast<int64_t>(schedule_.operations.size());
    report.requests = requests_.load();
    report.oracle_evaluations = oracle_.evaluations();
    report.divergences = divergences_.load();
    report.errors = errors_.load();
    report.stats = service_->Stats();
    CheckFinalDocuments(&report);
    CheckStats(&report);
    {
      std::lock_guard<std::mutex> lock(failures_mu_);
      report.failures = failures_;
    }
    return report;
  }

 private:
  void Worker(int thread) {
    // Same-thread churn is visible to later reads on this thread (the store
    // mutex orders Put before Get); that is the lower edge of the window.
    std::vector<int32_t> watermark(schedule_.revisions.size(), 0);
    for (size_t i = 0; i < schedule_.operations.size(); ++i) {
      const Operation& op = schedule_.operations[i];
      // Churn is pinned by document so per-document revisions are installed
      // in schedule order; everything else is dealt round-robin.
      const bool mine =
          op.kind == Operation::Kind::kAddDocument
              ? op.doc % threads_ == thread
              : static_cast<int>(i % static_cast<size_t>(threads_)) == thread;
      if (!mine) continue;

      switch (op.kind) {
        case Operation::Kind::kAddDocument: {
          const size_t doc = static_cast<size_t>(op.doc);
          GKX_CHECK(
              service_
                  ->RegisterDocument(
                      schedule_.doc_keys[doc],
                      xml::Document(
                          schedule_.revisions[doc][static_cast<size_t>(
                              op.revision)]))
                  .ok());
          watermark[doc] = op.revision;
          break;
        }
        case Operation::Kind::kSubmit: {
          const auto [doc, query] = op.requests.front();
          requests_.fetch_add(1, std::memory_order_relaxed);
          auto response =
              service_->Submit(schedule_.doc_keys[static_cast<size_t>(doc)],
                               schedule_.queries[static_cast<size_t>(query)]);
          CheckAnswer(i, thread, doc, query,
                      watermark[static_cast<size_t>(doc)], response);
          break;
        }
        case Operation::Kind::kBatch: {
          std::vector<QueryService::Request> batch;
          batch.reserve(op.requests.size());
          for (const auto& [doc, query] : op.requests) {
            batch.push_back(
                {schedule_.doc_keys[static_cast<size_t>(doc)],
                 schedule_.queries[static_cast<size_t>(query)]});
          }
          requests_.fetch_add(static_cast<int64_t>(batch.size()),
                              std::memory_order_relaxed);
          auto responses = service_->SubmitBatch(batch);
          for (size_t r = 0; r < responses.size(); ++r) {
            const auto [doc, query] = op.requests[r];
            CheckAnswer(i, thread, doc, query,
                        watermark[static_cast<size_t>(doc)], responses[r]);
          }
          break;
        }
      }
    }
  }

  void CheckAnswer(size_t op_index, int thread, int32_t doc, int32_t query,
                   int32_t rev_lo, const Result<QueryService::Answer>& response) {
    const int32_t rev_hi = max_rev_[static_cast<size_t>(doc)];
    if (!response.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream message;
      message << "error: seed=" << schedule_.seed << " op=" << op_index
              << " thread=" << thread << " doc="
              << schedule_.doc_keys[static_cast<size_t>(doc)] << " query='"
              << schedule_.queries[static_cast<size_t>(query)]
              << "' status=" << response.status().ToString();
      RecordFailure(message.str());
      return;
    }
    const std::string digest = AnswerDigest(response->value);
    if (oracle_.MatchesAnyRevision(doc, rev_lo, rev_hi, query, digest)) return;
    divergences_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream message;
    message << "divergence: seed=" << schedule_.seed << " op=" << op_index
            << " thread=" << thread << " doc="
            << schedule_.doc_keys[static_cast<size_t>(doc)] << " query='"
            << schedule_.queries[static_cast<size_t>(query)]
            << "' evaluator=" << response->evaluator << " rev_window=["
            << rev_lo << "," << rev_hi << "] got=" << digest
            << " want(rev" << rev_hi << ")="
            << oracle_.Expected(doc, rev_hi, query)
            << " | replay: CompileWorkload(seed=" << schedule_.seed << ")";
    RecordFailure(message.str());
  }

  /// Lost-update check: churn per document is single-threaded, so the final
  /// store state must be exactly the highest revision, byte for byte.
  void CheckFinalDocuments(SoakReport* report) {
    for (size_t d = 0; d < schedule_.revisions.size(); ++d) {
      auto stored = service_->documents().Get(schedule_.doc_keys[d]);
      const xml::Document& expected = schedule_.revisions[d].back();
      if (stored != nullptr && xml::SerializeDocument(stored->doc()) ==
                                   xml::SerializeDocument(expected)) {
        continue;
      }
      ++report->lost_updates;
      std::ostringstream message;
      message << "lost update: seed=" << schedule_.seed << " doc="
              << schedule_.doc_keys[d] << " final store state is not revision "
              << schedule_.revisions[d].size() - 1;
      RecordFailure(message.str());
    }
  }

  void CheckStats(SoakReport* report) {
    const service::ServiceStats& stats = report->stats;
    int64_t batch_ops = 0;
    for (const Operation& op : schedule_.operations) {
      if (op.kind == Operation::Kind::kBatch) ++batch_ops;
    }
    auto require = [this, report](bool condition, const std::string& what) {
      if (condition) return;
      ++report->stats_violations;
      RecordFailure("stats inconsistency: seed=" +
                    std::to_string(schedule_.seed) + " " + what);
    };
    require(report->requests == schedule_.total_requests,
            "executed requests != schedule total");
    require(stats.requests == report->requests,
            "service request counter != executed requests");
    require(stats.batches == batch_ops, "batch counter != batch operations");
    require(stats.failures == report->errors,
            "failure counter != observed errors");
    require(stats.plan_cache.parse_failures == 0,
            "parse failures on a parse-checked pool");
    require(stats.plan_cache.Lookups() == stats.requests,
            "hits+canonical_hits+misses+parse_failures != requests");
    require(SumCounts(stats.evaluator_counts) == stats.requests - stats.failures,
            "evaluator counts don't sum to successful requests");
    require(stats.latency.count == stats.requests - stats.failures,
            "latency reservoir count != successful requests");
    require(stats.plan_cache.evictions == observed_evictions_.load(),
            "eviction counter != evictions observed via on_evict");
    require(stats.plan_cache_entries <= service_->plan_cache().capacity_bound(),
            "plan cache exceeded its capacity bound");
  }

  void RecordFailure(std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu_);
    if (failures_.size() < max_reported_) failures_.push_back(std::move(message));
  }

  const Schedule& schedule_;
  const int threads_;
  const size_t max_reported_;
  Oracle oracle_;
  std::unique_ptr<QueryService> service_;
  std::vector<int32_t> max_rev_;
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> divergences_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> observed_evictions_{0};
  std::mutex failures_mu_;
  std::vector<std::string> failures_;
};

}  // namespace

std::string SoakReport::Summary() const {
  std::ostringstream out;
  out << "soak seed=" << seed << ": " << operations << " ops (" << requests
      << " requests) on " << threads << " threads, oracle="
      << oracle_evaluations << " evals — "
      << (ok() ? "PASS" : "FAIL") << " (divergences=" << divergences
      << " errors=" << errors << " lost_updates=" << lost_updates
      << " stats_violations=" << stats_violations << "); cache hit rate "
      << stats.plan_cache.HitRate();
  for (const std::string& failure : failures) out << "\n  " << failure;
  return out.str();
}

SoakReport RunSoak(const Schedule& schedule, const SoakOptions& options) {
  Replay replay(schedule, options);
  return replay.Run();
}

}  // namespace gkx::testkit
