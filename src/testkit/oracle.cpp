#include "testkit/oracle.hpp"

#include <vector>

#include "base/check.hpp"
#include "eval/recursive_base.hpp"
#include "xpath/parser.hpp"

namespace gkx::testkit {

std::string AnswerDigest(const eval::Value& value) {
  return value.DebugString();
}

Oracle::Oracle(const Schedule& schedule,
               const std::vector<int32_t>& standing_queries) {
  // Which queries ever run against which document? The zipfian workload
  // touches a small popular core, so precomputing only occurring pairs is
  // much cheaper than the full cross product.
  std::vector<std::vector<bool>> used(
      schedule.revisions.size(),
      std::vector<bool>(schedule.queries.size(), false));
  for (const Operation& op : schedule.operations) {
    for (const auto& [doc, query] : op.requests) {
      used[static_cast<size_t>(doc)][static_cast<size_t>(query)] = true;
    }
  }
  for (int32_t query : standing_queries) {
    for (auto& doc_used : used) doc_used[static_cast<size_t>(query)] = true;
  }

  // Parse the pool once; the oracle evaluates the RAW query text — it must
  // not inherit the service's canonicalization, or it could not catch a
  // faulty rewrite.
  std::vector<xpath::Query> parsed;
  parsed.reserve(schedule.queries.size());
  for (const std::string& text : schedule.queries) {
    parsed.push_back(xpath::MustParse(text));
  }

  eval::NaiveEvaluator naive;
  digests_.resize(schedule.revisions.size());
  for (size_t doc = 0; doc < schedule.revisions.size(); ++doc) {
    const auto& revisions = schedule.revisions[doc];
    digests_[doc].resize(revisions.size());
    for (size_t rev = 0; rev < revisions.size(); ++rev) {
      digests_[doc][rev].resize(schedule.queries.size());
      for (size_t query = 0; query < schedule.queries.size(); ++query) {
        if (!used[doc][query]) continue;
        auto result = naive.EvaluateAtRoot(revisions[rev], parsed[query]);
        GKX_CHECK(result.ok());  // the pool contains only evaluable queries
        digests_[doc][rev][query] = AnswerDigest(*result);
        ++evaluations_;
      }
    }
  }
}

const std::string& Oracle::Expected(int32_t doc, int32_t revision,
                                    int32_t query) const {
  const std::string& digest =
      digests_[static_cast<size_t>(doc)][static_cast<size_t>(revision)]
              [static_cast<size_t>(query)];
  GKX_CHECK(!digest.empty());
  return digest;
}

bool Oracle::MatchesAnyRevision(int32_t doc, int32_t rev_lo, int32_t rev_hi,
                                int32_t query, const std::string& digest) const {
  for (int32_t rev = rev_lo; rev <= rev_hi; ++rev) {
    if (Expected(doc, rev, query) == digest) return true;
  }
  return false;
}

}  // namespace gkx::testkit
