#include "testkit/recovery_soak.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "testkit/reference_edit.hpp"

namespace gkx::testkit {
namespace {

using service::QueryService;

class RecoveryReplay {
 public:
  RecoveryReplay(const Schedule& schedule, const RecoverySoakOptions& options)
      : schedule_(schedule),
        options_(options),
        rounds_(std::max(1, options.rounds)),
        threads_(std::max(1, options.threads)),
        watermark_(schedule.revisions.size(), 0) {
    GKX_CHECK(!options.wal_dir.empty());
    for (size_t i = 0; i < schedule.operations.size(); ++i) {
      const Operation& op = schedule.operations[i];
      if (op.kind == Operation::Kind::kAddDocument ||
          op.kind == Operation::Kind::kEditDocument) {
        churn_.push_back(i);
      }
    }
  }

  RecoverySoakReport Run() {
    report_.seed = schedule_.seed;
    report_.rounds = rounds_;
    report_.threads = threads_;
    for (int round = 0; round < rounds_; ++round) {
      RunRound(round);
    }
    // One extra incarnation proves the LAST kill's state recovers too.
    auto service = Open(rounds_);
    VerifyCorpus(*service, rounds_, "final recovery");
    report_.errors = errors_.load();
    {
      std::lock_guard<std::mutex> lock(failures_mu_);
      report_.failures = failures_;
    }
    return report_;
  }

 private:
  std::unique_ptr<QueryService> Open(int round) {
    QueryService::Options service_options = options_.service;
    service_options.wal_dir = options_.wal_dir;
    auto service = std::make_unique<QueryService>(service_options);
    if (!service->wal_status().ok()) {
      Fail(round, "wal failed to open: " + service->wal_status().ToString());
    } else if (!service->wal_enabled()) {
      Fail(round, "wal_dir set but wal_enabled() is false");
    }
    if (round > 0) {
      ++report_.recoveries;
      const wal::RecoveryReport& recovered = service->wal_recovery();
      report_.snapshots_loaded += recovered.snapshots_loaded;
      report_.records_replayed += recovered.records_replayed;
      report_.records_skipped += recovered.records_skipped;
      // Writers were joined before every kill, so each acknowledged record
      // was fully flushed: a torn tail here is a WAL bug, not a crash
      // artifact. (The fault-injection tests tear tails on purpose.)
      if (recovered.torn()) {
        Fail(round, "unexpected torn tail (" +
                        std::to_string(recovered.torn_tail_bytes) +
                        " bytes): " + recovered.torn_tail_reason);
      }
    }
    return service;
  }

  /// Every document must sit at exactly its watermark revision,
  /// node-for-node. `when` labels the check (post-recovery vs pre-kill).
  void VerifyCorpus(QueryService& service, int round, const std::string& when) {
    for (size_t d = 0; d < schedule_.revisions.size(); ++d) {
      auto stored = service.documents().Get(schedule_.doc_keys[d]);
      const int32_t revision = watermark_[d];
      std::string why;
      if (stored == nullptr) {
        why = "document vanished";
      } else if (ExhaustiveEquals(
                     stored->doc(),
                     schedule_.revisions[d][static_cast<size_t>(revision)],
                     &why)) {
        continue;
      }
      ++report_.recovery_divergences;
      std::ostringstream message;
      message << "recovery divergence (" << when << "): doc="
              << schedule_.doc_keys[d] << " expected revision " << revision
              << ": " << why;
      Fail(round, message.str());
    }
    if (!options_.probe_queries) return;
    // The recovered corpus must serve, not just compare equal: one query
    // per document forces a document lookup + index build + evaluation.
    for (size_t d = 0; d < schedule_.doc_keys.size(); ++d) {
      if (schedule_.queries.empty()) break;
      const std::string& query =
          schedule_.queries[d % schedule_.queries.size()];
      auto answer = service.Submit(schedule_.doc_keys[d], query);
      if (!answer.ok()) {
        Fail(round, "probe query '" + query + "' on " + schedule_.doc_keys[d] +
                        " failed " + when + ": " + answer.status().ToString());
      }
    }
  }

  void RunRound(int round) {
    auto service = Open(round);
    if (round == 0) {
      // First incarnation: the initial corpus goes through the WAL like any
      // other mutation (these Puts are what round 1 must recover).
      for (size_t d = 0; d < schedule_.revisions.size(); ++d) {
        Status put = service->RegisterDocument(
            schedule_.doc_keys[d], xml::Document(schedule_.revisions[d][0]));
        if (!put.ok()) {
          Fail(round, "initial Put of " + schedule_.doc_keys[d] +
                          " failed: " + put.ToString());
        }
      }
    } else {
      VerifyCorpus(*service, round, "post-recovery");
    }

    // This round's contiguous slice of the global churn order.
    const size_t begin = churn_.size() * static_cast<size_t>(round) /
                         static_cast<size_t>(rounds_);
    const size_t end = churn_.size() * static_cast<size_t>(round + 1) /
                       static_cast<size_t>(rounds_);
    const size_t halfway = begin + (end - begin) / 2;

    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      workers.emplace_back([this, t, begin, end, halfway, round,
                            svc = service.get()] {
        for (size_t c = begin; c < end; ++c) {
          const Operation& op =
              schedule_.operations[churn_[c]];
          // Churn pinned per document: per-document revision order is the
          // schedule order, which is what makes watermark_ the oracle.
          if (op.doc % threads_ != t) continue;
          const size_t doc = static_cast<size_t>(op.doc);
          Status applied =
              op.kind == Operation::Kind::kAddDocument
                  ? svc->RegisterDocument(
                        schedule_.doc_keys[doc],
                        xml::Document(schedule_.revisions[doc][static_cast<
                            size_t>(op.revision)]))
                  : svc->UpdateDocument(schedule_.doc_keys[doc], op.edit);
          if (!applied.ok()) {
            Fail(round, "mutation op=" + std::to_string(churn_[c]) +
                            " failed: " + applied.ToString());
            return;
          }
          mutations_.fetch_add(1, std::memory_order_relaxed);
          if (options_.checkpoint_midway && c == halfway) {
            // Forced mid-traffic: the manifest capture races the other
            // writer threads' appends, every round.
            Status checkpoint = svc->CheckpointNow();
            if (!checkpoint.ok()) {
              Fail(round, "mid-round checkpoint failed: " +
                              checkpoint.ToString());
            } else {
              checkpoints_.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (size_t c = begin; c < end; ++c) {
      const Operation& op = schedule_.operations[churn_[c]];
      watermark_[static_cast<size_t>(op.doc)] = op.revision;
    }
    report_.mutations = mutations_.load();
    report_.checkpoints = checkpoints_.load();

    // Pre-kill sanity separates "lost before the crash" from "lost in
    // recovery" when a divergence does show up.
    VerifyCorpus(*service, round, "pre-kill");

    if (round % 2 == 1) {
      // Hard kill: drop the WAL's volatile tail exactly as kill -9 would.
      // Everything above was acknowledged, so nothing may be lost anyway.
      service->CrashWalForTest();
      ++report_.crashes;
    } else {
      ++report_.clean_closes;
    }
    service.reset();
  }

  // Thread-safe (worker threads report mutation failures through it); the
  // report's error count is folded in after the joins.
  void Fail(int round, const std::string& what) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream message;
    message << "recovery soak: seed=" << schedule_.seed << " round=" << round
            << " " << what << " | replay: CompileWorkload(seed="
            << schedule_.seed << ")";
    std::lock_guard<std::mutex> lock(failures_mu_);
    if (failures_.size() < options_.max_failures_reported) {
      failures_.push_back(message.str());
    }
  }

  const Schedule& schedule_;
  const RecoverySoakOptions& options_;
  const int rounds_;
  const int threads_;
  std::vector<size_t> churn_;      // operation indices, schedule order
  std::vector<int32_t> watermark_; // highest acknowledged revision per doc
  RecoverySoakReport report_;
  std::atomic<int64_t> mutations_{0};
  std::atomic<int64_t> checkpoints_{0};
  std::atomic<int64_t> errors_{0};
  std::mutex failures_mu_;
  std::vector<std::string> failures_;
};

}  // namespace

std::string RecoverySoakReport::Summary() const {
  std::ostringstream out;
  out << "recovery soak seed=" << seed << ": " << mutations
      << " durable mutations over " << rounds << " rounds x " << threads
      << " threads (" << crashes << " crashes, " << clean_closes
      << " clean closes, " << checkpoints << " mid-round checkpoints) — "
      << (ok() ? "PASS" : "FAIL") << " (recoveries=" << recoveries
      << " snapshots_loaded=" << snapshots_loaded << " records_replayed="
      << records_replayed << " records_skipped=" << records_skipped
      << " divergences=" << recovery_divergences << " errors=" << errors
      << ")";
  for (const std::string& failure : failures) out << "\n  " << failure;
  return out.str();
}

RecoverySoakReport RunRecoverySoak(const Schedule& schedule,
                                   const RecoverySoakOptions& options) {
  RecoveryReplay replay(schedule, options);
  return replay.Run();
}

}  // namespace gkx::testkit
