#include "testkit/shard_soak.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "eval/engine.hpp"
#include "testkit/oracle.hpp"
#include "testkit/reference_edit.hpp"
#include "xml/edit.hpp"
#include "xml/parser.hpp"

namespace gkx::testkit {

namespace {

// Per-document query templates; <T> is the document's private tag suffix.
// Query 0 is the node-set query subscriptions watch.
constexpr int kQueriesPerDoc = 3;

std::string DocKey(int k) { return "doc" + std::to_string(k); }

std::string DocQuery(int k, int q) {
  const std::string t = std::to_string(k);
  switch (q) {
    case 0: return "//a" + t;
    case 1: return "count(//a" + t + ")";
    default: return "/d" + t + "/b" + t + "/a" + t;
  }
}

// Every tag embeds the document number, so no two documents share a name:
// footprints, cache keys, and subscriptions are pairwise disjoint across
// the corpus by construction.
std::string DocXml(int k, Rng* rng) {
  const std::string t = std::to_string(k);
  std::ostringstream xml;
  xml << "<d" << t << ">";
  const int sections = static_cast<int>(rng->UniformInt(2, 4));
  for (int s = 0; s < sections; ++s) {
    xml << "<b" << t << ">";
    const int leaves = static_cast<int>(rng->UniformInt(1, 3));
    for (int l = 0; l < leaves; ++l) {
      xml << "<a" << t << ">v" << s << l << "</a" << t << ">";
    }
    xml << "</b" << t << ">";
  }
  xml << "<c" << t << ">tail</c" << t << "></d" << t << ">";
  return xml.str();
}

// One churn edit against the oracle's current revision of doc k. Mostly
// cheap text churn; every fourth edit is structural (insert a fresh a<k>
// leaf) so node-sets actually change and subscription diffs carry adds.
xml::SubtreeEdit MakeEdit(const xml::Document& doc, int k, int step,
                          Rng* rng) {
  xml::SubtreeEdit edit;
  const auto target = static_cast<xml::NodeId>(
      rng->UniformInt(0, static_cast<int64_t>(doc.size()) - 1));
  if (step % 4 == 3) {
    const std::string t = std::to_string(k);
    edit.kind = xml::SubtreeEdit::Kind::kInsertSubtree;
    edit.target = doc.root();
    edit.position = static_cast<int32_t>(
        rng->UniformInt(0, doc.ChildCount(doc.root())));
    Result<xml::Document> subtree = xml::ParseDocument(
        "<a" + t + ">n" + std::to_string(step) + "</a" + t + ">");
    GKX_CHECK(subtree.ok());
    edit.subtree = std::move(*subtree);
  } else {
    edit.kind = xml::SubtreeEdit::Kind::kSetText;
    edit.target = target;
    edit.text = "r" + std::to_string(step);
  }
  return edit;
}

struct SubStream {
  std::mutex mu;
  std::vector<mview::SubscriptionEvent> events;
};

class Failures {
 public:
  Failures(ShardSoakReport* report, const ShardSoakOptions& options)
      : report_(report), options_(options) {}

  void Diverged(const std::string& what) { Add(&report_->divergences, what); }
  void Errored(const std::string& what) { Add(&report_->errors, what); }

 private:
  void Add(int64_t* counter, const std::string& what) {
    std::lock_guard<std::mutex> lock(mu_);
    ++*counter;
    if (report_->failures.size() < options_.max_failures_reported) {
      report_->failures.push_back("seed=" + std::to_string(options_.seed) +
                                  " " + what);
    }
  }

  std::mutex mu_;
  ShardSoakReport* report_;
  const ShardSoakOptions& options_;
};

}  // namespace

std::string ShardSoakReport::Summary() const {
  std::ostringstream out;
  out << "shard soak: seed=" << seed << " shards=" << shards
      << " rounds=" << rounds << " mutations=" << mutations
      << " reads=" << reads << " cache_hits=" << answer_cache_hits
      << " sub_events=" << subscription_events
      << " oracle_evals=" << oracle_evaluations;
  if (recovery_ran) {
    out << " recovery(shard0_replayed=" << records_replayed_shard0 << ")";
  }
  out << " divergences=" << divergences << " errors=" << errors
      << (ok() ? " OK" : " FAILED");
  for (const std::string& failure : failures) out << "\n  " << failure;
  return out.str();
}

ShardSoakReport RunShardSoak(const ShardSoakOptions& options) {
  ShardSoakReport report;
  report.seed = options.seed;
  report.shards = options.shards;
  report.rounds = options.rounds;
  Failures failures(&report, options);

  GKX_CHECK(options.shards >= 2);  // isolation needs a sibling to poison
  GKX_CHECK(options.documents >= options.shards);
  GKX_CHECK(options.threads >= 1 && options.rounds >= 1);

  service::ShardedQueryService::Options router_options;
  router_options.shards = options.shards;
  router_options.shard = options.service;
  router_options.wal_dir = options.wal_dir;
  auto router =
      std::make_unique<service::ShardedQueryService>(router_options);

  // ------------------------------------------------------------ compile
  // Oracle documents, per-round edit chains for the shard-0 documents, and
  // per-(doc, round, query) expected digests — all before any concurrency.
  Rng rng(options.seed);
  eval::Engine engine;
  const int docs = options.documents;
  const bool durable = !options.wal_dir.empty();
  const int churn_rounds = options.rounds + (durable ? 1 : 0);

  std::vector<xml::Document> oracle_docs;
  std::vector<int> churn_docs;  // indexes of the docs living on shard 0
  for (int k = 0; k < docs; ++k) {
    Result<xml::Document> doc = xml::ParseDocument(DocXml(k, &rng));
    GKX_CHECK(doc.ok());
    oracle_docs.push_back(std::move(*doc));
    if (router->ShardOf(DocKey(k)) == 0) churn_docs.push_back(k);
  }
  GKX_CHECK(!churn_docs.empty());
  GKX_CHECK(churn_docs.size() < static_cast<size_t>(docs));

  // edits[doc][round] = the round's edit slice; digests[doc][round][query]
  // with round 0 = pre-churn. Unchurned documents keep round-0 digests.
  std::map<int, std::vector<std::vector<xml::SubtreeEdit>>> edits;
  std::vector<std::vector<std::vector<std::string>>> digests(
      static_cast<size_t>(docs));
  auto digest_round = [&](int k, std::vector<std::vector<std::string>>* out) {
    std::vector<std::string> row;
    for (int q = 0; q < kQueriesPerDoc; ++q) {
      Result<eval::Engine::Answer> answer =
          engine.Run(oracle_docs[static_cast<size_t>(k)], DocQuery(k, q));
      GKX_CHECK(answer.ok());
      row.push_back(AnswerDigest(answer->value));
      ++report.oracle_evaluations;
    }
    out->push_back(std::move(row));
  };
  for (int k = 0; k < docs; ++k) {
    digest_round(k, &digests[static_cast<size_t>(k)]);
  }
  int step = 0;
  for (int k : churn_docs) {
    edits[k].resize(static_cast<size_t>(churn_rounds));
  }
  // Oracle node-set of query 0 per churned doc as of round `options.rounds`
  // — where the subscription streams are checked (the durable variant's
  // extra round happens after that check).
  std::map<int, std::set<xml::NodeId>> final_nodes;
  for (int round = 0; round < churn_rounds; ++round) {
    for (int k : churn_docs) {
      for (int e = 0; e < options.edits_per_doc_per_round; ++e) {
        xml::SubtreeEdit edit =
            MakeEdit(oracle_docs[static_cast<size_t>(k)], k, step++, &rng);
        Result<xml::Document> next =
            xml::ApplyEdit(oracle_docs[static_cast<size_t>(k)], edit);
        GKX_CHECK(next.ok());
        oracle_docs[static_cast<size_t>(k)] = std::move(*next);
        edits[k][static_cast<size_t>(round)].push_back(std::move(edit));
      }
      digest_round(k, &digests[static_cast<size_t>(k)]);
      if (round == options.rounds - 1) {
        Result<eval::Engine::Answer> answer =
            engine.Run(oracle_docs[static_cast<size_t>(k)], DocQuery(k, 0));
        GKX_CHECK(answer.ok() &&
                  answer->value.type() == xpath::ValueType::kNodeSet);
        final_nodes[k] = {answer->value.nodes().begin(),
                          answer->value.nodes().end()};
      }
    }
  }

  // ------------------------------------------------------------ register
  {
    Rng reg_rng(options.seed);
    for (int k = 0; k < docs; ++k) {
      Result<xml::Document> doc = xml::ParseDocument(DocXml(k, &reg_rng));
      GKX_CHECK(doc.ok());
      Status status = router->RegisterDocument(DocKey(k), std::move(*doc));
      if (!status.ok()) {
        failures.Errored("register " + DocKey(k) + ": " +
                         std::string(status.message()));
      }
    }
  }

  // One exact-key subscription per document on the node-set query. Events
  // fan in from whichever shard owns the document; streams are recorded
  // per document and replayed against the oracle at the end.
  std::vector<std::unique_ptr<SubStream>> streams;
  std::vector<int64_t> sub_ids(static_cast<size_t>(docs), -1);
  for (int k = 0; k < docs; ++k) {
    streams.push_back(std::make_unique<SubStream>());
    SubStream* stream = streams.back().get();
    Result<int64_t> sub = router->Subscribe(
        DocKey(k), DocQuery(k, 0), [stream](const mview::SubscriptionEvent& event) {
          std::lock_guard<std::mutex> lock(stream->mu);
          stream->events.push_back(event);
        });
    if (!sub.ok()) {
      failures.Errored("subscribe " + DocKey(k) + ": " +
                       std::string(sub.status().message()));
    } else {
      sub_ids[static_cast<size_t>(k)] = *sub;
    }
  }
  router->FlushSubscriptions();  // drain the initial answers

  // -------------------------------------------------------------- rounds
  auto write_round = [&](int round) {
    std::vector<std::thread> writers;
    std::mutex mutation_mu;
    for (int t = 0; t < options.threads; ++t) {
      writers.emplace_back([&, t] {
        int64_t applied = 0;
        for (size_t c = static_cast<size_t>(t); c < churn_docs.size();
             c += static_cast<size_t>(options.threads)) {
          const int k = churn_docs[c];
          const std::string key = DocKey(k);
          for (const xml::SubtreeEdit& edit :
               edits[k][static_cast<size_t>(round)]) {
            Status status = router->UpdateDocument(key, edit);
            if (!status.ok()) {
              failures.Errored("round " + std::to_string(round) + " update " +
                               key + ": " + std::string(status.message()));
            }
            ++applied;
          }
        }
        std::lock_guard<std::mutex> lock(mutation_mu);
        report.mutations += applied;
      });
    }
    for (std::thread& w : writers) w.join();
  };

  auto read_round = [&](service::ShardedQueryService* svc, int round) {
    // Two passes: the second must be answerable from warm caches. Requests
    // are sliced contiguously across reader threads; every thread runs its
    // own scatter-gather batches concurrently with the others.
    std::vector<service::ShardedQueryService::Request> all;
    for (int k = 0; k < docs; ++k) {
      for (int q = 0; q < kQueriesPerDoc; ++q) {
        all.push_back({DocKey(k), DocQuery(k, q)});
      }
    }
    auto expected = [&](size_t request_index) -> const std::string& {
      const int k = static_cast<int>(request_index) / kQueriesPerDoc;
      const int q = static_cast<int>(request_index) % kQueriesPerDoc;
      const auto& rounds = digests[static_cast<size_t>(k)];
      const size_t row = edits.count(k) ? static_cast<size_t>(round)
                                        : size_t{0};
      return rounds[row][static_cast<size_t>(q)];
    };
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::thread> readers;
      std::mutex read_mu;
      const size_t chunk =
          (all.size() + static_cast<size_t>(options.threads) - 1) /
          static_cast<size_t>(options.threads);
      for (int t = 0; t < options.threads; ++t) {
        readers.emplace_back([&, t] {
          const size_t begin = static_cast<size_t>(t) * chunk;
          const size_t end = std::min(all.size(), begin + chunk);
          if (begin >= end) return;
          std::vector<service::ShardedQueryService::Request> slice(
              all.begin() + static_cast<int64_t>(begin),
              all.begin() + static_cast<int64_t>(end));
          std::vector<Result<service::ShardedQueryService::Answer>> answers =
              svc->SubmitBatch(slice);
          int64_t checked = 0;
          for (size_t i = 0; i < answers.size(); ++i) {
            const size_t request_index = begin + i;
            if (!answers[i].ok()) {
              failures.Errored("round " + std::to_string(round) + " submit " +
                               slice[i].doc_key + " [" + slice[i].query +
                               "]: " +
                               std::string(answers[i].status().message()));
              continue;
            }
            const std::string got = AnswerDigest(answers[i]->value);
            if (got != expected(request_index)) {
              failures.Diverged(
                  "round " + std::to_string(round) + " pass " +
                  std::to_string(pass) + " " + slice[i].doc_key + " [" +
                  slice[i].query + "]: got " + got + " want " +
                  expected(request_index));
            }
            ++checked;
          }
          std::lock_guard<std::mutex> lock(read_mu);
          report.reads += checked;
        });
      }
      for (std::thread& r : readers) r.join();
    }
  };

  read_round(router.get(), 0);  // cold pass against the initial corpus
  for (int round = 1; round <= options.rounds; ++round) {
    write_round(round - 1);
    router->FlushSubscriptions();
    read_round(router.get(), round);
  }

  // --------------------------------------------------- isolation checks
  // Shared-nothing proof by counters: a shard that owns no churned
  // document must never have invalidated, retained, or remapped a cached
  // answer, and its subscriptions must never have re-fired.
  {
    std::vector<service::ServiceStats> per_shard = router->ShardStats();
    for (size_t s = 1; s < per_shard.size(); ++s) {
      const auto& ac = per_shard[s].answer_cache;
      if (ac.invalidations != 0 || ac.retained != 0 || ac.remapped != 0) {
        failures.Diverged("shard " + std::to_string(s) +
                          " saw churn it does not own: invalidations=" +
                          std::to_string(ac.invalidations) + " retained=" +
                          std::to_string(ac.retained) + " remapped=" +
                          std::to_string(ac.remapped));
      }
      if (per_shard[s].answer_cache_enabled && ac.hits == 0) {
        failures.Diverged("shard " + std::to_string(s) +
                          " served no warm answers — cache never engaged");
      }
    }
    for (const auto& stats : per_shard) {
      report.answer_cache_hits += stats.answer_cache.hits;
    }
  }
  // Subscription streams: an unchurned document gets exactly the initial
  // answer; a churned document's stream, replayed add/remove by add/remove,
  // must reconstruct the final oracle node-set.
  for (int k = 0; k < docs; ++k) {
    if (sub_ids[static_cast<size_t>(k)] < 0) continue;
    std::vector<mview::SubscriptionEvent> events;
    {
      std::lock_guard<std::mutex> lock(streams[static_cast<size_t>(k)]->mu);
      events = streams[static_cast<size_t>(k)]->events;
    }
    if (events.empty()) {
      failures.Diverged(DocKey(k) + ": no initial subscription answer");
      continue;
    }
    for (const auto& event : events) {
      if (event.subscription != sub_ids[static_cast<size_t>(k)]) {
        failures.Diverged(DocKey(k) + ": event carries foreign sub id " +
                          std::to_string(event.subscription));
      }
      if (event.doc_key != DocKey(k)) {
        failures.Diverged(DocKey(k) + ": event for foreign doc " +
                          event.doc_key);
      }
    }
    report.subscription_events += static_cast<int64_t>(events.size()) - 1;
    if (!edits.count(k)) {
      if (events.size() != 1) {
        failures.Diverged(DocKey(k) + ": unchurned doc received " +
                          std::to_string(events.size() - 1) +
                          " churn events from sibling shards");
      }
      continue;
    }
    std::set<xml::NodeId> state;
    for (const auto& event : events) {
      for (xml::NodeId node : event.removed) state.erase(node);
      for (xml::NodeId node : event.added) state.insert(node);
    }
    if (state != final_nodes[k]) {
      failures.Diverged(DocKey(k) + ": replayed subscription stream has " +
                        std::to_string(state.size()) + " nodes, oracle has " +
                        std::to_string(final_nodes[k].size()));
    }
  }

  // ------------------------------------------------------------ recovery
  if (durable) {
    report.recovery_ran = true;
    // Checkpoint every shard EXCEPT 0, then churn shard 0 once more and
    // crash only its WAL: reopen must replay a journal suffix on shard 0
    // and pure snapshots everywhere else.
    for (int s = 1; s < router->shard_count(); ++s) {
      Status status = router->shard(s).CheckpointNow();
      if (!status.ok()) {
        failures.Errored("checkpoint shard " + std::to_string(s) + ": " +
                         std::string(status.message()));
      }
    }
    write_round(options.rounds);  // the extra (uncheckpointed) round
    router->FlushSubscriptions();
    router->shard(0).CrashWalForTest();
    router.reset();

    auto recovered =
        std::make_unique<service::ShardedQueryService>(router_options);
    report.records_replayed_shard0 =
        recovered->shard(0).wal_recovery().records_replayed;
    if (report.records_replayed_shard0 <= 0) {
      failures.Diverged("shard 0 replayed no journal records after crash");
    }
    for (int s = 1; s < recovered->shard_count(); ++s) {
      const wal::RecoveryReport& rec = recovered->shard(s).wal_recovery();
      if (rec.records_replayed != 0) {
        failures.Diverged("shard " + std::to_string(s) + " replayed " +
                          std::to_string(rec.records_replayed) +
                          " records despite checkpointing everything");
      }
      if (rec.snapshots_loaded <= 0) {
        failures.Diverged("shard " + std::to_string(s) +
                          " recovered no snapshots");
      }
    }
    // Node-for-node equality against the oracle's final revision, then a
    // full query pass: recovered answers must match the final digests.
    for (int k = 0; k < docs; ++k) {
      const std::string key = DocKey(k);
      auto stored =
          recovered->shard(recovered->ShardOf(key)).documents().Get(key);
      if (stored == nullptr) {
        failures.Diverged(key + ": missing after recovery");
        continue;
      }
      std::string why;
      if (!ExhaustiveEquals(stored->doc(),
                            oracle_docs[static_cast<size_t>(k)], &why)) {
        failures.Diverged(key + ": recovered tree diverges: " + why);
      }
    }
    for (int k = 0; k < docs; ++k) {
      for (int q = 0; q < kQueriesPerDoc; ++q) {
        Result<service::ShardedQueryService::Answer> answer =
            recovered->Submit(DocKey(k), DocQuery(k, q));
        if (!answer.ok()) {
          failures.Errored("post-recovery submit " + DocKey(k) + ": " +
                           std::string(answer.status().message()));
          continue;
        }
        ++report.reads;
        const std::string got = AnswerDigest(answer->value);
        const auto& rounds = digests[static_cast<size_t>(k)];
        const std::string& want = rounds.back()[static_cast<size_t>(q)];
        if (got != want) {
          failures.Diverged("post-recovery " + DocKey(k) + " [" +
                            DocQuery(k, q) + "]: got " + got + " want " +
                            want);
        }
      }
    }
  }

  return report;
}

}  // namespace gkx::testkit
