// Deterministic concurrent-workload generation for the serving layer.
//
// A WorkloadSpec describes a traffic shape — fragment mix, zipfian query and
// document popularity, batch-size distribution, live document churn — and
// CompileWorkload() expands it into a fixed Schedule: the document corpus
// (every revision pre-generated), the query pool, and a flat operation list.
// Compilation draws from a single base::Rng stream, so a (spec, seed) pair
// yields byte-identical schedules on every platform and every run: a soak
// failure is replayed exactly by re-compiling with the reported seed.
//
// The schedule fixes WHAT happens, not WHEN: the SoakDriver replays it over
// N threads, and the thread interleaving is the only nondeterminism left —
// exactly the regime the differential oracle is designed to check.

#ifndef GKX_TESTKIT_WORKLOAD_HPP_
#define GKX_TESTKIT_WORKLOAD_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/rng.hpp"
#include "base/status.hpp"
#include "xml/document.hpp"
#include "xml/edit.hpp"
#include "xml/generator.hpp"
#include "xpath/fragment.hpp"
#include "xpath/generator.hpp"

namespace gkx::testkit {

/// One slice of the fragment mix: queries of `fragment` make up a share of
/// the pool proportional to `weight`.
struct FragmentShare {
  xpath::Fragment fragment = xpath::Fragment::kPF;
  double weight = 1.0;
};

/// The serving-realistic default mix: paths dominate, a tail of heavier
/// fragments keeps every engine (pf-frontier/pf-indexed, core-linear,
/// cvt-lazy) on the hook.
std::vector<FragmentShare> DefaultFragmentMix();

struct WorkloadSpec {
  /// Master seed; everything below is a pure function of (spec, seed).
  uint64_t seed = 1;

  /// Schedule entries (a batch counts as one operation).
  int operations = 10000;

  // ------------------------------------------------------------ corpus
  /// Documents registered before the run ("doc0", "doc1", ...).
  int documents = 4;
  /// Per-revision node count, UniformInt(min_document_nodes, max).
  int min_document_nodes = 40;
  int max_document_nodes = 120;
  /// Shape knobs shared by every generated revision (node_count is
  /// overridden per revision).
  xml::RandomDocumentOptions document_options;

  // ------------------------------------------------------------ queries
  /// Unique query texts in the pool.
  int queries = 48;
  /// Fragment mix; weights need not sum to 1. Empty = DefaultFragmentMix().
  std::vector<FragmentShare> mix;
  /// Shape knobs shared by every generated query (fragment is overridden
  /// per draw). Defaults are sized so the naive oracle stays tractable.
  xpath::RandomQueryOptions query_options;

  // ------------------------------------------------------------ traffic
  /// Zipf skew of query popularity (0 = uniform): rank-0 queries dominate,
  /// which is what makes the plan cache earn its keep.
  double query_zipf_s = 1.1;
  /// Zipf skew of document popularity.
  double document_zipf_s = 0.8;
  /// Probability that an operation is a SubmitBatch instead of a Submit.
  double batch_probability = 0.2;
  /// Batch sizes are UniformInt(2, max_batch).
  int max_batch = 8;
  /// Probability that an operation mutates a live document (churn).
  double churn_probability = 0.005;
  /// Of the churn events, the fraction carried out as a subtree edit
  /// (DocumentStore::Update — the delta pipeline) instead of a whole
  /// document replacement. 0 restores pure AddDocument churn.
  double edit_probability = 0.5;
  /// Subtree-edit shape (kind weights, spliced-subtree size). The
  /// generated subtrees reuse `document_options`' alphabet/shape knobs, so
  /// edited regions carry the same names as the rest of the corpus — the
  /// overlapping-names regime region×name invalidation is for.
  xml::RandomEditOptions edit_options;
};

struct Operation {
  enum class Kind { kSubmit, kBatch, kAddDocument, kEditDocument };
  Kind kind = Kind::kSubmit;
  /// (document index, query index) pairs: one for kSubmit, several for
  /// kBatch, empty for the churn kinds.
  std::vector<std::pair<int32_t, int32_t>> requests;
  /// Churn kinds: which document is mutated, and the revision index the
  /// mutation produces (kAddDocument installs revisions[doc][revision]
  /// wholesale; kEditDocument applies `edit`, whose precomputed result IS
  /// revisions[doc][revision]).
  int32_t doc = -1;
  int32_t revision = -1;
  /// kEditDocument: the subtree patch, valid against revisions[doc][revision - 1].
  xml::SubtreeEdit edit;
};

/// A fully materialized workload. Immutable once compiled; safe to share
/// read-only across driver threads.
struct Schedule {
  uint64_t seed = 0;
  std::vector<std::string> doc_keys;                  // "doc<i>"
  std::vector<std::vector<xml::Document>> revisions;  // [doc][revision]
  std::vector<std::string> queries;                   // parse-checked texts
  std::vector<Operation> operations;
  /// Total Submit-equivalents (batched requests counted individually).
  int64_t total_requests = 0;
};

/// Expands a spec into a schedule. Fails on inconsistent specs (no
/// documents, no queries, empty mix weights, ...); never fails for valid
/// specs — every generated query text is checked to re-parse.
Result<Schedule> CompileWorkload(const WorkloadSpec& spec);

}  // namespace gkx::testkit

#endif  // GKX_TESTKIT_WORKLOAD_HPP_
