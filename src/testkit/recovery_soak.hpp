// Kill/checkpoint/reopen soak for the write-ahead log (src/wal/wal.hpp).
//
// The durability oracle is the compiled Schedule itself: churn for a given
// document is pinned to one thread (as in the SoakDriver), so per-document
// revisions are installed in schedule order and every acknowledged mutation
// has a unique precomputed expected state — revisions[doc][watermark]. The
// soak replays the schedule's churn operations in rounds against a
// WAL-backed QueryService; after each round it joins the writer threads
// (every mutation is acknowledged, hence durable), kills the service —
// alternating a clean destructor close with Wal::SimulateCrash, which drops
// the in-memory tail exactly as kill -9 would — and reopens the same
// directory. Recovery must reconstruct every document node-for-node
// (testkit::ExhaustiveEquals) at its watermark revision: anything else is a
// lost acknowledged write, a replay mis-ordering, or snapshot corruption.
//
// Mid-round, the thread that executes the round's halfway operation forces
// a checkpoint, so reopen exercises the general case — a snapshot set plus
// a journal suffix, not just one or the other — and concurrent mutations
// race the checkpoint's manifest capture on every round.
//
// Every failure message embeds the schedule seed and round, so a divergence
// reproduces with a single-threaded replay of the same (spec, seed).

#ifndef GKX_TESTKIT_RECOVERY_SOAK_HPP_
#define GKX_TESTKIT_RECOVERY_SOAK_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "service/query_service.hpp"
#include "testkit/workload.hpp"

namespace gkx::testkit {

struct RecoverySoakOptions {
  /// Kill/reopen rounds the schedule's churn is divided over. The final
  /// verification opens one extra (read-only) incarnation.
  int rounds = 4;
  /// Writer threads per round (churn stays pinned per document).
  int threads = 4;
  /// WAL directory — required, and wiped by the caller, not the soak (a
  /// pre-populated directory is itself a recovery test).
  std::string wal_dir;
  /// Service under test; wal_dir above overrides service.wal_dir.
  service::QueryService::Options service;
  /// Force a checkpoint from the thread executing each round's halfway
  /// operation (concurrently with the other writers).
  bool checkpoint_midway = true;
  /// After each reopen, submit one pool query per document and require it
  /// to answer — the recovered corpus must be servable, not just present.
  bool probe_queries = true;
  size_t max_failures_reported = 8;
};

struct RecoverySoakReport {
  uint64_t seed = 0;
  int rounds = 0;
  int threads = 0;
  int64_t mutations = 0;          // churn operations replayed (all rounds)
  int64_t checkpoints = 0;        // explicit mid-round checkpoints forced
  int64_t crashes = 0;            // SimulateCrash kills
  int64_t clean_closes = 0;       // destructor-only kills
  int64_t recoveries = 0;         // reopens of a non-empty directory
  int64_t snapshots_loaded = 0;   // summed over recoveries
  int64_t records_replayed = 0;   // summed over recoveries
  int64_t records_skipped = 0;    // summed over recoveries
  int64_t recovery_divergences = 0;  // recovered corpus != watermark state
  int64_t errors = 0;             // failed mutations/probes/wal_status
  /// First max_failures_reported messages, each embedding seed= and round=.
  std::vector<std::string> failures;

  bool ok() const { return recovery_divergences == 0 && errors == 0; }
  std::string Summary() const;
};

/// Replays the schedule's churn in kill/reopen rounds (see the header
/// comment). The schedule's read operations (kSubmit/kBatch) are ignored —
/// RunSoak covers those; this soak is about what survives a crash.
RecoverySoakReport RunRecoverySoak(const Schedule& schedule,
                                   const RecoverySoakOptions& options);

}  // namespace gkx::testkit

#endif  // GKX_TESTKIT_RECOVERY_SOAK_HPP_
