// A per-document acceleration side-structure. Document is immutable and
// knows nothing about query workloads; DocumentIndex is built next to it
// (lazily, by the service's DocumentStore) and maps
//   * each interned name  -> the preorder-sorted list of nodes carrying it
//                            (as tag or extra label, Remark 3.1), and
//   * each attribute name -> the preorder-sorted list of nodes carrying it.
// Because NodeId is preorder rank and a subtree is the contiguous interval
// [v, v + subtree_size), "descendants of v named t" is a binary-search range
// in the name's posting list — O(log |D| + answer) instead of an O(subtree)
// walk. The service's indexed PF fast path (service/indexed_path.hpp) is
// built on exactly this.

#ifndef GKX_XML_INDEX_HPP_
#define GKX_XML_INDEX_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/document.hpp"
#include "xml/edit.hpp"

namespace gkx::xml {

class DocumentIndex {
 public:
  /// Posting lists assembled externally (by the streaming parser, which sees
  /// every node exactly once in preorder, so each list is born sorted). Ids
  /// must be final Document NodeIds; by_name is indexed by NameId.
  struct Prebuilt {
    std::vector<std::vector<NodeId>> by_name;
    std::unordered_map<std::string, std::vector<NodeId>> by_attribute;
  };

  /// Builds the full index in one O(|D| + Σ postings) pass. The document
  /// must outlive the index.
  explicit DocumentIndex(const Document& doc);

  /// Adopts posting lists built alongside `doc` (no document walk). The
  /// lists must be exactly what DocumentIndex(doc) would have produced.
  DocumentIndex(const Document& doc, Prebuilt prebuilt);

  /// Delta-aware construction: `doc` must be the result of applying the
  /// edit described by `delta` to `old_index.doc()` (ApplyEdit keeps
  /// NameIds stable, which is what makes this legal). Instead of walking
  /// the whole document, each posting list is spliced — the prefix is
  /// copied verbatim, the changed interval is re-scanned, and the suffix is
  /// copied with the delta's constant id shift — so the node walk covers
  /// only the edited region. For an ids-stable content edit the lists are
  /// copied untouched.
  DocumentIndex(const Document& doc, const DocumentIndex& old_index,
                const DocumentDelta& delta);

  const Document& doc() const { return *doc_; }

  /// Preorder-sorted ids of nodes whose tag or extra label is `name`.
  /// Empty list for kNoName / out-of-pool names.
  const std::vector<NodeId>& NodesWithName(NameId name) const;

  /// Convenience: posting list by name text.
  const std::vector<NodeId>& NodesWithName(std::string_view name) const {
    return NodesWithName(doc_->FindName(name));
  }

  /// Preorder-sorted ids of nodes carrying an attribute called `name`.
  const std::vector<NodeId>& NodesWithAttribute(std::string_view name) const;

  /// Number of nodes named `name` in the subtree rooted at `v` (v included).
  int32_t CountWithNameInSubtree(NameId name, NodeId v) const;

  /// Appends (in preorder) the nodes named `name` inside the half-open
  /// preorder interval [first, limit) to *out.
  void AppendNamedInRange(NameId name, NodeId first, NodeId limit,
                          std::vector<NodeId>* out) const;

  /// Total posting-list entries (for stats / memory accounting).
  int64_t posting_count() const { return posting_count_; }

  /// The document's tag set: sorted, duplicate-free names (tags and extra
  /// labels) carried by at least one node. This is what footprint-based
  /// invalidation (gkx::mview) intersects plan footprints against, so it is
  /// materialized once at index build time.
  const std::vector<std::string>& PresentNames() const { return name_set_; }

 private:
  const Document* doc_;
  std::vector<std::vector<NodeId>> by_name_;  // indexed by NameId
  std::unordered_map<std::string, std::vector<NodeId>> by_attribute_;
  std::vector<std::string> name_set_;  // sorted names with >= 1 posting
  int64_t posting_count_ = 0;
};

}  // namespace gkx::xml

#endif  // GKX_XML_INDEX_HPP_
