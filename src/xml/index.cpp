#include "xml/index.hpp"

#include <algorithm>

namespace gkx::xml {

namespace {
const std::vector<NodeId>& EmptyPostings() {
  static const std::vector<NodeId> kEmpty;
  return kEmpty;
}
}  // namespace

DocumentIndex::DocumentIndex(const Document& doc) : doc_(&doc) {
  // One preorder pass; node ids ascend, so each posting list is born sorted.
  NameId max_name = kNoName;
  for (NodeId v = 0; v < doc.size(); ++v) {
    const Node& node = doc.node(v);
    max_name = std::max(max_name, node.tag);
    for (NameId label : node.labels) max_name = std::max(max_name, label);
  }
  by_name_.resize(static_cast<size_t>(max_name + 1));
  for (NodeId v = 0; v < doc.size(); ++v) {
    const Node& node = doc.node(v);
    by_name_[static_cast<size_t>(node.tag)].push_back(v);
    ++posting_count_;
    for (NameId label : node.labels) {
      by_name_[static_cast<size_t>(label)].push_back(v);
      ++posting_count_;
    }
    for (const Attribute& attribute : node.attributes) {
      by_attribute_[attribute.name].push_back(v);
      ++posting_count_;
    }
  }
  for (NameId name = 0; name < static_cast<NameId>(by_name_.size()); ++name) {
    if (!by_name_[static_cast<size_t>(name)].empty()) {
      name_set_.emplace_back(doc.NameText(name));
    }
  }
  std::sort(name_set_.begin(), name_set_.end());
}

const std::vector<NodeId>& DocumentIndex::NodesWithName(NameId name) const {
  if (name < 0 || name >= static_cast<NameId>(by_name_.size())) {
    return EmptyPostings();
  }
  return by_name_[static_cast<size_t>(name)];
}

const std::vector<NodeId>& DocumentIndex::NodesWithAttribute(
    std::string_view name) const {
  auto it = by_attribute_.find(std::string(name));
  return it == by_attribute_.end() ? EmptyPostings() : it->second;
}

int32_t DocumentIndex::CountWithNameInSubtree(NameId name, NodeId v) const {
  const std::vector<NodeId>& postings = NodesWithName(name);
  const NodeId limit = v + doc_->node(v).subtree_size;
  auto lo = std::lower_bound(postings.begin(), postings.end(), v);
  auto hi = std::lower_bound(lo, postings.end(), limit);
  return static_cast<int32_t>(hi - lo);
}

void DocumentIndex::AppendNamedInRange(NameId name, NodeId first, NodeId limit,
                                       std::vector<NodeId>* out) const {
  const std::vector<NodeId>& postings = NodesWithName(name);
  auto lo = std::lower_bound(postings.begin(), postings.end(), first);
  auto hi = std::lower_bound(lo, postings.end(), limit);
  out->insert(out->end(), lo, hi);
}

}  // namespace gkx::xml
