#include "xml/index.hpp"

#include <algorithm>
#include <utility>

namespace gkx::xml {

namespace {
const std::vector<NodeId>& EmptyPostings() {
  static const std::vector<NodeId> kEmpty;
  return kEmpty;
}
}  // namespace

DocumentIndex::DocumentIndex(const Document& doc) : doc_(&doc) {
  // One preorder pass; node ids ascend, so each posting list is born sorted.
  NameId max_name = kNoName;
  for (NodeId v = 0; v < doc.size(); ++v) {
    max_name = std::max(max_name, doc.tag(v));
    for (NameId label : doc.labels(v)) max_name = std::max(max_name, label);
  }
  by_name_.resize(static_cast<size_t>(max_name + 1));
  for (NodeId v = 0; v < doc.size(); ++v) {
    by_name_[static_cast<size_t>(doc.tag(v))].push_back(v);
    ++posting_count_;
    for (NameId label : doc.labels(v)) {
      by_name_[static_cast<size_t>(label)].push_back(v);
      ++posting_count_;
    }
    const int32_t attr_count = doc.attribute_count(v);
    for (int32_t i = 0; i < attr_count; ++i) {
      by_attribute_[std::string(doc.attribute(v, i).name)].push_back(v);
      ++posting_count_;
    }
  }
  for (NameId name = 0; name < static_cast<NameId>(by_name_.size()); ++name) {
    if (!by_name_[static_cast<size_t>(name)].empty()) {
      name_set_.emplace_back(doc.NameText(name));
    }
  }
  std::sort(name_set_.begin(), name_set_.end());
}

DocumentIndex::DocumentIndex(const Document& doc, Prebuilt prebuilt)
    : doc_(&doc),
      by_name_(std::move(prebuilt.by_name)),
      by_attribute_(std::move(prebuilt.by_attribute)) {
  for (const std::vector<NodeId>& postings : by_name_) {
    posting_count_ += static_cast<int64_t>(postings.size());
  }
  for (const auto& [attribute, postings] : by_attribute_) {
    posting_count_ += static_cast<int64_t>(postings.size());
  }
  for (NameId name = 0; name < static_cast<NameId>(by_name_.size()); ++name) {
    if (!by_name_[static_cast<size_t>(name)].empty()) {
      name_set_.emplace_back(doc.NameText(name));
    }
  }
  std::sort(name_set_.begin(), name_set_.end());
}

DocumentIndex::DocumentIndex(const Document& doc,
                             const DocumentIndex& old_index,
                             const DocumentDelta& delta)
    : doc_(&doc) {
  const NodeId begin = delta.begin;
  const NodeId old_end = begin + delta.old_count;
  const NodeId new_end = begin + delta.new_count;
  const int32_t shift = delta.shift();

  // The new region's postings, collected in one walk over just the edited
  // interval (ascending ids keep each list born sorted).
  const size_t pool = doc.InternedNames().size();
  std::vector<std::vector<NodeId>> region_by_name(pool);
  std::unordered_map<std::string, std::vector<NodeId>> region_by_attribute;
  for (NodeId v = begin; v < new_end; ++v) {
    region_by_name[static_cast<size_t>(doc.tag(v))].push_back(v);
    for (NameId label : doc.labels(v)) {
      region_by_name[static_cast<size_t>(label)].push_back(v);
    }
    const int32_t attr_count = doc.attribute_count(v);
    for (int32_t i = 0; i < attr_count; ++i) {
      region_by_attribute[std::string(doc.attribute(v, i).name)].push_back(v);
    }
  }

  // Per-list splice: prefix verbatim ++ region ++ suffix shifted. NameIds
  // are stable across ApplyEdit, so old lists line up with new names.
  auto splice = [&](const std::vector<NodeId>& old_postings,
                    std::vector<NodeId>* region) {
    std::vector<NodeId> out;
    auto lo = std::lower_bound(old_postings.begin(), old_postings.end(), begin);
    auto hi = std::lower_bound(lo, old_postings.end(), old_end);
    out.reserve(static_cast<size_t>(lo - old_postings.begin()) +
                (region ? region->size() : 0) +
                static_cast<size_t>(old_postings.end() - hi));
    out.insert(out.end(), old_postings.begin(), lo);
    if (region != nullptr) {
      out.insert(out.end(), region->begin(), region->end());
    }
    for (auto it = hi; it != old_postings.end(); ++it) {
      out.push_back(*it + shift);
    }
    posting_count_ += static_cast<int64_t>(out.size());
    return out;
  };

  by_name_.resize(pool);
  for (size_t name = 0; name < pool; ++name) {
    const std::vector<NodeId>& old_postings =
        name < old_index.by_name_.size() ? old_index.by_name_[name]
                                         : EmptyPostings();
    by_name_[name] = splice(old_postings, &region_by_name[name]);
  }
  for (const auto& [attribute, old_postings] : old_index.by_attribute_) {
    auto region = region_by_attribute.find(attribute);
    std::vector<NodeId> spliced = splice(
        old_postings,
        region == region_by_attribute.end() ? nullptr : &region->second);
    if (!spliced.empty()) by_attribute_.emplace(attribute, std::move(spliced));
    region_by_attribute.erase(attribute);
  }
  // Attributes the edit introduced that the old document never had.
  for (auto& [attribute, postings] : region_by_attribute) {
    posting_count_ += static_cast<int64_t>(postings.size());
    by_attribute_.emplace(attribute, std::move(postings));
  }

  for (NameId name = 0; name < static_cast<NameId>(by_name_.size()); ++name) {
    if (!by_name_[static_cast<size_t>(name)].empty()) {
      name_set_.emplace_back(doc.NameText(name));
    }
  }
  std::sort(name_set_.begin(), name_set_.end());
}

const std::vector<NodeId>& DocumentIndex::NodesWithName(NameId name) const {
  if (name < 0 || name >= static_cast<NameId>(by_name_.size())) {
    return EmptyPostings();
  }
  return by_name_[static_cast<size_t>(name)];
}

const std::vector<NodeId>& DocumentIndex::NodesWithAttribute(
    std::string_view name) const {
  auto it = by_attribute_.find(std::string(name));
  return it == by_attribute_.end() ? EmptyPostings() : it->second;
}

int32_t DocumentIndex::CountWithNameInSubtree(NameId name, NodeId v) const {
  const std::vector<NodeId>& postings = NodesWithName(name);
  const NodeId limit = v + doc_->subtree_size(v);
  auto lo = std::lower_bound(postings.begin(), postings.end(), v);
  auto hi = std::lower_bound(lo, postings.end(), limit);
  return static_cast<int32_t>(hi - lo);
}

void DocumentIndex::AppendNamedInRange(NameId name, NodeId first, NodeId limit,
                                       std::vector<NodeId>* out) const {
  const std::vector<NodeId>& postings = NodesWithName(name);
  auto lo = std::lower_bound(postings.begin(), postings.end(), first);
  auto hi = std::lower_bound(lo, postings.end(), limit);
  out->insert(out->end(), lo, hi);
}

}  // namespace gkx::xml
