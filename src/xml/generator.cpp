#include "xml/generator.hpp"

#include <optional>
#include <string>
#include <vector>

#include "xml/builder.hpp"

namespace gkx::xml {
namespace {

std::string TagName(int64_t index) { return "t" + std::to_string(index); }
std::string LabelName(int64_t index) { return "l" + std::to_string(index); }

}  // namespace

Document RandomDocument(Rng* rng, const RandomDocumentOptions& options) {
  GKX_CHECK_GE(options.node_count, 1);
  GKX_CHECK_GE(options.tag_alphabet, 1);
  // The uniform path must keep drawing through UniformInt so historic seeds
  // stay byte-stable; the zipf sampler is only consulted when skew is on.
  std::optional<ZipfSampler> zipf;
  if (options.tag_zipf_s > 0.0) zipf.emplace(options.tag_alphabet, options.tag_zipf_s);
  auto tag_index = [&]() -> int64_t {
    return zipf ? zipf->Sample(rng)
                : rng->UniformInt(0, options.tag_alphabet - 1);
  };
  TreeBuilder builder(TagName(tag_index()));
  std::vector<BuildNodeId> nodes = {builder.root()};

  auto decorate = [&](BuildNodeId node) {
    if (options.max_extra_labels > 0) {
      int64_t label_count = rng->UniformInt(0, options.max_extra_labels);
      for (int64_t i = 0; i < label_count; ++i) {
        builder.AddLabel(node,
                         LabelName(rng->UniformInt(0, options.label_alphabet - 1)));
      }
    }
    if (rng->Bernoulli(options.text_probability)) {
      builder.SetText(node, std::to_string(rng->UniformInt(0, 99)));
    }
  };
  decorate(builder.root());

  for (int32_t i = 1; i < options.node_count; ++i) {
    BuildNodeId parent =
        rng->Bernoulli(options.chain_bias)
            ? nodes.back()
            : nodes[static_cast<size_t>(
                  rng->UniformInt(0, static_cast<int64_t>(nodes.size()) - 1))];
    BuildNodeId node = builder.AddChild(parent, TagName(tag_index()));
    decorate(node);
    nodes.push_back(node);
  }
  return std::move(builder).Build();
}

Document BalancedDocument(int32_t fanout, int32_t depth, int32_t tag_alphabet) {
  GKX_CHECK_GE(fanout, 1);
  GKX_CHECK_GE(depth, 0);
  GKX_CHECK_GE(tag_alphabet, 1);
  TreeBuilder builder(TagName(0));
  std::vector<BuildNodeId> frontier = {builder.root()};
  for (int32_t level = 1; level <= depth; ++level) {
    std::vector<BuildNodeId> next;
    next.reserve(frontier.size() * static_cast<size_t>(fanout));
    for (BuildNodeId parent : frontier) {
      for (int32_t i = 0; i < fanout; ++i) {
        next.push_back(builder.AddChild(parent, TagName(level % tag_alphabet)));
      }
    }
    frontier = std::move(next);
  }
  return std::move(builder).Build();
}

Document ChainDocument(int32_t length, int32_t tag_alphabet) {
  GKX_CHECK_GE(length, 1);
  GKX_CHECK_GE(tag_alphabet, 1);
  TreeBuilder builder(TagName(0));
  BuildNodeId current = builder.root();
  for (int32_t i = 1; i < length; ++i) {
    current = builder.AddChild(current, TagName(i % tag_alphabet));
  }
  return std::move(builder).Build();
}

Document WideShallowDocument(int32_t width, int32_t tag_alphabet) {
  GKX_CHECK_GE(width, 0);
  GKX_CHECK_GE(tag_alphabet, 1);
  TreeBuilder builder("root");
  for (int32_t i = 0; i < width; ++i) {
    BuildNodeId child = builder.AddChild(builder.root(), TagName(i % tag_alphabet));
    builder.AddChild(child, TagName((i + 1) % tag_alphabet));
  }
  return std::move(builder).Build();
}

SubtreeEdit RandomSubtreeEdit(Rng* rng, const Document& doc,
                              const RandomEditOptions& options) {
  GKX_CHECK(!doc.empty());
  // Weighted kind draw; removal drops out when only the root exists.
  struct Choice {
    SubtreeEdit::Kind kind;
    double weight;
  };
  const Choice choices[] = {
      {SubtreeEdit::Kind::kReplaceSubtree, options.replace_weight},
      {SubtreeEdit::Kind::kInsertSubtree, options.insert_weight},
      {SubtreeEdit::Kind::kRemoveSubtree,
       doc.size() > 1 ? options.remove_weight : 0.0},
      {SubtreeEdit::Kind::kSetText, options.set_text_weight},
      {SubtreeEdit::Kind::kRelabel, options.relabel_weight},
  };
  double total = 0.0;
  for (const Choice& choice : choices) total += choice.weight;
  GKX_CHECK(total > 0.0);
  double u = rng->UniformDouble() * total;
  SubtreeEdit::Kind kind = SubtreeEdit::Kind::kSetText;
  for (const Choice& choice : choices) {
    u -= choice.weight;
    if (u < 0.0) {
      kind = choice.kind;
      break;
    }
  }

  auto random_subtree = [&] {
    RandomDocumentOptions subtree_options = options.subtree_options;
    subtree_options.node_count = static_cast<int32_t>(rng->UniformInt(
        options.min_subtree_nodes, options.max_subtree_nodes));
    return RandomDocument(rng, subtree_options);
  };

  SubtreeEdit edit;
  edit.kind = kind;
  switch (kind) {
    case SubtreeEdit::Kind::kReplaceSubtree:
      // Non-root targets keep replacement subtree-local (a root replacement
      // is whole-document churn, which kAddDocument-style traffic covers);
      // on a single-node document the root is all there is.
      edit.target = static_cast<NodeId>(
          rng->UniformInt(doc.size() > 1 ? 1 : 0, doc.size() - 1));
      edit.subtree = random_subtree();
      break;
    case SubtreeEdit::Kind::kInsertSubtree:
      edit.target = static_cast<NodeId>(rng->UniformInt(0, doc.size() - 1));
      edit.position = static_cast<int32_t>(
          rng->UniformInt(0, doc.ChildCount(edit.target)));
      edit.subtree = random_subtree();
      break;
    case SubtreeEdit::Kind::kRemoveSubtree:
      edit.target = static_cast<NodeId>(rng->UniformInt(1, doc.size() - 1));
      break;
    case SubtreeEdit::Kind::kSetText:
      edit.target = static_cast<NodeId>(rng->UniformInt(0, doc.size() - 1));
      if (!rng->Bernoulli(0.25)) {  // a quarter of text edits clear the text
        edit.text = std::to_string(rng->UniformInt(0, 99));
      }
      break;
    case SubtreeEdit::Kind::kRelabel:
      edit.target = static_cast<NodeId>(rng->UniformInt(0, doc.size() - 1));
      edit.label = TagName(rng->UniformInt(
          0, options.subtree_options.tag_alphabet - 1));
      break;
  }
  return edit;
}

}  // namespace gkx::xml
