#include "xml/generator.hpp"

#include <optional>
#include <string>
#include <vector>

#include "xml/builder.hpp"

namespace gkx::xml {
namespace {

std::string TagName(int64_t index) { return "t" + std::to_string(index); }
std::string LabelName(int64_t index) { return "l" + std::to_string(index); }

}  // namespace

Document RandomDocument(Rng* rng, const RandomDocumentOptions& options) {
  GKX_CHECK_GE(options.node_count, 1);
  GKX_CHECK_GE(options.tag_alphabet, 1);
  // The uniform path must keep drawing through UniformInt so historic seeds
  // stay byte-stable; the zipf sampler is only consulted when skew is on.
  std::optional<ZipfSampler> zipf;
  if (options.tag_zipf_s > 0.0) zipf.emplace(options.tag_alphabet, options.tag_zipf_s);
  auto tag_index = [&]() -> int64_t {
    return zipf ? zipf->Sample(rng)
                : rng->UniformInt(0, options.tag_alphabet - 1);
  };
  TreeBuilder builder(TagName(tag_index()));
  std::vector<BuildNodeId> nodes = {builder.root()};

  auto decorate = [&](BuildNodeId node) {
    if (options.max_extra_labels > 0) {
      int64_t label_count = rng->UniformInt(0, options.max_extra_labels);
      for (int64_t i = 0; i < label_count; ++i) {
        builder.AddLabel(node,
                         LabelName(rng->UniformInt(0, options.label_alphabet - 1)));
      }
    }
    if (rng->Bernoulli(options.text_probability)) {
      builder.SetText(node, std::to_string(rng->UniformInt(0, 99)));
    }
  };
  decorate(builder.root());

  for (int32_t i = 1; i < options.node_count; ++i) {
    BuildNodeId parent =
        rng->Bernoulli(options.chain_bias)
            ? nodes.back()
            : nodes[static_cast<size_t>(
                  rng->UniformInt(0, static_cast<int64_t>(nodes.size()) - 1))];
    BuildNodeId node = builder.AddChild(parent, TagName(tag_index()));
    decorate(node);
    nodes.push_back(node);
  }
  return std::move(builder).Build();
}

Document BalancedDocument(int32_t fanout, int32_t depth, int32_t tag_alphabet) {
  GKX_CHECK_GE(fanout, 1);
  GKX_CHECK_GE(depth, 0);
  GKX_CHECK_GE(tag_alphabet, 1);
  TreeBuilder builder(TagName(0));
  std::vector<BuildNodeId> frontier = {builder.root()};
  for (int32_t level = 1; level <= depth; ++level) {
    std::vector<BuildNodeId> next;
    next.reserve(frontier.size() * static_cast<size_t>(fanout));
    for (BuildNodeId parent : frontier) {
      for (int32_t i = 0; i < fanout; ++i) {
        next.push_back(builder.AddChild(parent, TagName(level % tag_alphabet)));
      }
    }
    frontier = std::move(next);
  }
  return std::move(builder).Build();
}

Document ChainDocument(int32_t length, int32_t tag_alphabet) {
  GKX_CHECK_GE(length, 1);
  GKX_CHECK_GE(tag_alphabet, 1);
  TreeBuilder builder(TagName(0));
  BuildNodeId current = builder.root();
  for (int32_t i = 1; i < length; ++i) {
    current = builder.AddChild(current, TagName(i % tag_alphabet));
  }
  return std::move(builder).Build();
}

Document WideShallowDocument(int32_t width, int32_t tag_alphabet) {
  GKX_CHECK_GE(width, 0);
  GKX_CHECK_GE(tag_alphabet, 1);
  TreeBuilder builder("root");
  for (int32_t i = 0; i < width; ++i) {
    BuildNodeId child = builder.AddChild(builder.root(), TagName(i % tag_alphabet));
    builder.AddChild(child, TagName((i + 1) % tag_alphabet));
  }
  return std::move(builder).Build();
}

}  // namespace gkx::xml
