#include "xml/auction.hpp"

#include <string>

#include "xml/builder.hpp"

namespace gkx::xml {
namespace {

std::string Id(const char* prefix, int64_t index) {
  return std::string(prefix) + std::to_string(index);
}

}  // namespace

Document AuctionDocument(Rng* rng, const AuctionOptions& options) {
  GKX_CHECK_GE(options.categories, 1);
  GKX_CHECK_GE(options.people, 1);
  GKX_CHECK_GE(options.items, 1);
  GKX_CHECK_GE(options.open_auctions, 0);
  TreeBuilder b("site");

  BuildNodeId categories = b.AddChild(b.root(), "categories");
  for (int32_t c = 0; c < options.categories; ++c) {
    BuildNodeId category = b.AddChild(categories, "category");
    b.AddAttribute(category, "id", Id("cat", c));
    BuildNodeId name = b.AddChild(category, "name");
    b.SetText(name, "category " + std::to_string(c));
  }

  BuildNodeId people = b.AddChild(b.root(), "people");
  for (int32_t p = 0; p < options.people; ++p) {
    BuildNodeId person = b.AddChild(people, "person");
    b.AddAttribute(person, "id", Id("person", p));
    BuildNodeId name = b.AddChild(person, "name");
    b.SetText(name, "person " + std::to_string(p));
    if (rng->Bernoulli(0.7)) {
      BuildNodeId city = b.AddChild(person, "city");
      b.SetText(city, "city " + std::to_string(rng->UniformInt(0, 4)));
    }
  }

  BuildNodeId items = b.AddChild(b.root(), "items");
  for (int32_t i = 0; i < options.items; ++i) {
    BuildNodeId item = b.AddChild(items, "item");
    b.AddAttribute(item, "id", Id("item", i));
    BuildNodeId name = b.AddChild(item, "name");
    b.SetText(name, "item " + std::to_string(i));
    BuildNodeId price = b.AddChild(item, "price");
    b.SetText(price, std::to_string(rng->UniformInt(1, options.max_price)));
    BuildNodeId seller = b.AddChild(item, "seller");
    b.SetText(seller, std::to_string(rng->UniformInt(0, options.people - 1)));
    BuildNodeId category = b.AddChild(item, "incategory");
    b.SetText(category, std::to_string(rng->UniformInt(0, options.categories - 1)));
  }

  BuildNodeId auctions = b.AddChild(b.root(), "open_auctions");
  for (int32_t a = 0; a < options.open_auctions; ++a) {
    BuildNodeId auction = b.AddChild(auctions, "open_auction");
    b.AddAttribute(auction, "id", Id("auction", a));
    BuildNodeId itemref = b.AddChild(auction, "itemref");
    b.SetText(itemref, std::to_string(rng->UniformInt(0, options.items - 1)));
    const int64_t bids = rng->UniformInt(0, options.max_bids_per_auction);
    int64_t current = rng->UniformInt(1, options.max_price / 2);
    for (int64_t bid_index = 0; bid_index < bids; ++bid_index) {
      BuildNodeId bid = b.AddChild(auction, "bid");
      b.AddAttribute(bid, "bidder",
                     Id("person", rng->UniformInt(0, options.people - 1)));
      b.SetText(bid, std::to_string(current));
      current += rng->UniformInt(1, 10);
    }
    BuildNodeId current_node = b.AddChild(auction, "current");
    b.SetText(current_node, std::to_string(current));
  }

  return std::move(b).Build();
}

}  // namespace gkx::xml
