#include "xml/stream_parser.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "xml/parser_core.hpp"

namespace gkx::xml {

/// Event sink building the arena columns and posting lists directly (friend
/// of Document). Invariants it relies on, guaranteed by the event core:
/// events are strictly nested, and an element's attribute/label events all
/// arrive before its first child/text/EndElement event.
class StreamBuilder {
 public:
  explicit StreamBuilder(int32_t reserve_hint) {
    if (reserve_hint > 0) {
      const size_t n = static_cast<size_t>(reserve_hint);
      Document::Owned& a = doc_.owned_;
      a.parent.reserve(n);
      a.first_child.reserve(n);
      a.last_child.reserve(n);
      a.prev_sibling.reserve(n);
      a.next_sibling.reserve(n);
      a.subtree_size.reserve(n);
      a.depth.reserve(n);
      a.tag.reserve(n);
      a.text_span.reserve(n);
      a.label_span.reserve(n);
      a.attr_span.reserve(n);
    }
  }

  void StartElement(std::string_view tag) {
    FlushLabels();
    Document::Owned& a = doc_.owned_;
    const NodeId id = static_cast<NodeId>(a.parent.size());
    const NodeId parent = depth_ == 0 ? kNullNode : open_ids_[depth_ - 1];

    a.parent.push_back(parent);
    a.first_child.push_back(kNullNode);
    a.last_child.push_back(kNullNode);
    a.prev_sibling.push_back(kNullNode);
    a.next_sibling.push_back(kNullNode);
    a.subtree_size.push_back(1);  // finalized at EndElement
    a.depth.push_back(depth_);
    const NameId tag_id = doc_.InternName(tag);
    a.tag.push_back(tag_id);
    a.text_span.push_back(PayloadSpan{});   // finalized at EndElement
    a.label_span.push_back(PayloadSpan{});  // finalized at FlushLabels
    a.attr_span.push_back(
        PayloadSpan{static_cast<uint32_t>(a.attr_pool.size()), 0});

    if (parent != kNullNode) {
      const size_t p = static_cast<size_t>(parent);
      if (a.first_child[p] == kNullNode) {
        a.first_child[p] = id;
      } else {
        a.next_sibling[static_cast<size_t>(a.last_child[p])] = id;
        a.prev_sibling[static_cast<size_t>(id)] = a.last_child[p];
      }
      a.last_child[p] = id;
    }

    PostName(tag_id, id);
    labels_node_ = id;

    if (open_ids_.size() == static_cast<size_t>(depth_)) {
      open_ids_.push_back(id);
      open_texts_.emplace_back();
    } else {
      open_ids_[static_cast<size_t>(depth_)] = id;
      open_texts_[static_cast<size_t>(depth_)].clear();
    }
    ++depth_;
  }

  void AddAttribute(std::string_view name, std::string_view value) {
    Document::Owned& a = doc_.owned_;
    a.attr_pool.push_back(doc_.MakeAttrEntry(name, value));
    ++a.attr_span.back().length;
    postings_.by_attribute[std::string(name)].push_back(labels_node_);
  }

  void AddLabel(std::string_view label) {
    pending_labels_.push_back(doc_.InternName(label));
  }

  void AppendText(std::string_view text) {
    FlushLabels();
    open_texts_[static_cast<size_t>(depth_ - 1)] += text;
  }

  void EndElement() {
    FlushLabels();
    Document::Owned& a = doc_.owned_;
    --depth_;
    const NodeId id = open_ids_[static_cast<size_t>(depth_)];
    a.subtree_size[static_cast<size_t>(id)] =
        static_cast<int32_t>(a.parent.size()) - id;
    a.text_span[static_cast<size_t>(id)] =
        doc_.AppendHeapBytes(open_texts_[static_cast<size_t>(depth_)]);
  }

  StreamParseResult Finish() && {
    doc_.SealViews();
    return StreamParseResult{std::move(doc_), std::move(postings_)};
  }

 private:
  /// Interns are append-only, so a node's label set is sorted/deduped once,
  /// when the next event proves no more labels can arrive for it.
  void FlushLabels() {
    if (labels_node_ == kNullNode) return;
    const NodeId id = labels_node_;
    labels_node_ = kNullNode;
    if (pending_labels_.empty()) return;
    Document::Owned& a = doc_.owned_;
    const NameId tag_id = a.tag[static_cast<size_t>(id)];
    std::sort(pending_labels_.begin(), pending_labels_.end());
    pending_labels_.erase(
        std::unique(pending_labels_.begin(), pending_labels_.end()),
        pending_labels_.end());
    const uint32_t start = static_cast<uint32_t>(a.label_pool.size());
    for (NameId label : pending_labels_) {
      if (label == tag_id) continue;  // tag/labels stay disjoint
      a.label_pool.push_back(label);
      PostName(label, id);
    }
    a.label_span[static_cast<size_t>(id)] = PayloadSpan{
        start, static_cast<uint32_t>(a.label_pool.size()) - start};
    pending_labels_.clear();
  }

  void PostName(NameId name, NodeId id) {
    if (postings_.by_name.size() <= static_cast<size_t>(name)) {
      postings_.by_name.resize(static_cast<size_t>(name) + 1);
    }
    postings_.by_name[static_cast<size_t>(name)].push_back(id);
  }

  Document doc_;
  DocumentIndex::Prebuilt postings_;
  std::vector<NodeId> open_ids_;
  std::vector<std::string> open_texts_;  // reused across siblings per depth
  std::vector<NameId> pending_labels_;
  NodeId labels_node_ = kNullNode;
  int32_t depth_ = 0;
};

Result<StreamParseResult> ParseDocumentStream(std::string_view xml,
                                              const ParseOptions& options) {
  StreamBuilder sink(parser_internal::EstimateNodeCount(xml));
  parser_internal::EventParser<StreamBuilder> parser(xml, options, &sink);
  GKX_RETURN_IF_ERROR(parser.Run());
  return std::move(sink).Finish();
}

}  // namespace gkx::xml
