// Subtree patches over the preorder tree. Because NodeId is preorder rank,
// a subtree is the contiguous id interval [v, v + subtree_size(v)) — so an
// edit that replaces, removes, or inserts one subtree touches exactly one
// interval, every node before it keeps its id, and every node after it
// shifts by a constant. ApplyEdit exploits that: it splices the edit into
// an existing Document in one O(|D|) pass over the node array (straight
// copies with integer link fix-ups — no re-parse, no TreeBuilder, no name
// re-interning for the untouched part) and reports a DocumentDelta
// describing precisely what the edit could have changed. The delta is what
// the rest of the pipeline keys on: DocumentIndex splices posting lists per
// interval, DocumentStore::Update forwards it to listeners, and the mview
// layer invalidates per region×name instead of per document (see
// plan/footprint.hpp for the sharpened soundness argument).
//
// NameId stability: the edited document's intern pool is the old pool plus
// any names the spliced-in subtree introduces, in that order. NameIds of
// surviving nodes are therefore unchanged — the index splice copies posting
// lists without translation. The price is that a pool entry may outlive the
// last node carrying it (Document::InternedNames becomes a superset of the
// present names after edits); DocumentIndex::PresentNames stays exact, and
// every consumer of the pool-based name set tolerates supersets (they only
// ever over-invalidate).

#ifndef GKX_XML_EDIT_HPP_
#define GKX_XML_EDIT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.hpp"
#include "xml/document.hpp"

namespace gkx::xml {

/// One subtree-granular mutation of a Document.
struct SubtreeEdit {
  enum class Kind {
    kReplaceSubtree,  // splice `subtree` in place of the subtree at `target`
    kRemoveSubtree,   // delete the subtree at `target` (target != root)
    kInsertSubtree,   // graft `subtree` as the position-th child of `target`
    kSetText,         // replace the direct text of `target` (ids stable)
    kRelabel,         // replace the tag of `target` with `label` (ids stable)
  };

  Kind kind = Kind::kSetText;
  /// The subtree root for replace/remove, the node for settext/relabel, the
  /// PARENT under which to graft for insert.
  NodeId target = 0;
  /// Insert only: child index in [0, ChildCount(target)]; ChildCount appends.
  int32_t position = 0;
  /// Replace/insert: the spliced-in content (a non-empty Document whose root
  /// becomes the new subtree root).
  Document subtree;
  /// SetText: the new direct text content.
  std::string text;
  /// Relabel: the new tag.
  std::string label;
};

/// What an applied edit may have changed, in the coordinates both revisions
/// share: the region is the half-open preorder interval starting at `begin`
/// covering `old_count` nodes of the old document and `new_count` nodes of
/// the new one. Everything before `begin` is bitwise-identical in both;
/// everything at or after `begin + old_count` reappears at its old id plus
/// `shift()`.
struct DocumentDelta {
  NodeId begin = 0;
  int32_t old_count = 0;
  int32_t new_count = 0;
  /// True when the edit changed no tree structure (kSetText / kRelabel):
  /// every NodeId denotes the same structural node in both revisions, so
  /// node-set answers and delivered subscription states carry over verbatim.
  bool ids_stable = true;
  /// True when the region's text content (concatenated in document order)
  /// differs between the revisions — the only way any node's XPath
  /// string-value can have changed.
  bool content_changed = false;
  /// Sorted, duplicate-free tag/label names carried by nodes of the old
  /// region and of the new region. Empty on both sides for pure text edits:
  /// a SetText changes no name, so name-only footprints survive it.
  std::vector<std::string> old_names;
  std::vector<std::string> new_names;

  /// Id displacement of every node at or after the old region's end.
  int32_t shift() const { return new_count - old_count; }
  bool structure_changed() const { return !ids_stable; }
  /// True when any node's name set changed (relabel, or any spliced names).
  bool names_changed() const {
    return !old_names.empty() || !new_names.empty();
  }
  /// Sorted union of old_names and new_names — the delta-local analogue of
  /// the whole-document changed-name set.
  std::vector<std::string> ChangedNames() const;
  /// "[begin,+old)->+new names={...}" for logs and test diagnostics.
  std::string ToString() const;
};

/// Applies `edit` to `doc`, returning the edited document and (when `delta`
/// is non-null) the delta. The input document is untouched; surviving nodes
/// keep their NameIds (see the header comment). Fails on out-of-range
/// targets, removing the root, inserting at an out-of-range position, or an
/// empty replacement subtree.
Result<Document> ApplyEdit(const Document& doc, const SubtreeEdit& edit,
                           DocumentDelta* delta = nullptr);

}  // namespace gkx::xml

#endif  // GKX_XML_EDIT_HPP_
