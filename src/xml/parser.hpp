// A self-contained XML parser producing Documents. Supports the XML subset a
// query-evaluation workload needs: elements, attributes, character data,
// comments, CDATA sections, processing instructions, an optional prolog and
// DOCTYPE, and the predefined + numeric character references. Namespaces are
// not interpreted (colons are allowed in names and kept verbatim).
//
// Multi-label round-tripping: if `options.labels_attribute` is non-empty
// (default "labels"), an attribute of that name is parsed as a
// whitespace-separated list of extra node labels (Remark 3.1) instead of a
// plain attribute. The serializer emits the same convention.

#ifndef GKX_XML_PARSER_HPP_
#define GKX_XML_PARSER_HPP_

#include <string>
#include <string_view>

#include "base/status.hpp"
#include "xml/document.hpp"

namespace gkx::xml {

struct ParseOptions {
  /// Attribute treated as the extra-label list; empty disables the convention.
  std::string labels_attribute = "labels";
  /// If true, text consisting only of whitespace is dropped.
  bool strip_whitespace_text = true;
};

/// Parse error with 1-based position information baked into the message.
Result<Document> ParseDocument(std::string_view xml,
                               const ParseOptions& options = {});

}  // namespace gkx::xml

#endif  // GKX_XML_PARSER_HPP_
