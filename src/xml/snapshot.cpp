#include "xml/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gkx::xml {

namespace internal {

/// RAII handle for the mapped file; Documents share it via shared_ptr so the
/// mapping outlives every copy of the views into it.
class MappedSnapshot {
 public:
  MappedSnapshot(void* base, size_t length) : base_(base), length_(length) {}
  ~MappedSnapshot() {
    if (base_ != nullptr) ::munmap(base_, length_);
  }
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  const char* data() const { return static_cast<const char*>(base_); }
  size_t size() const { return length_; }

 private:
  void* base_;
  size_t length_;
};

}  // namespace internal

namespace {

constexpr char kMagic[8] = {'G', 'K', 'X', 'A', 'R', 'N', 'A', '\n'};

/// Section order in the file. Every section is 8-byte aligned.
enum Section : int {
  kParent = 0,
  kFirstChild,
  kLastChild,
  kPrevSibling,
  kNextSibling,
  kSubtreeSize,
  kDepth,
  kTag,
  kTextSpan,
  kLabelSpan,
  kAttrSpan,
  kLabelPool,
  kAttrPool,
  kHeap,
  kNames,
  kSectionCount,
};

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t name_count;
  int64_t node_count;
  uint64_t label_pool_count;
  uint64_t attr_pool_count;
  uint64_t heap_size;
  uint64_t file_size;
  uint64_t section_offset[kSectionCount];
  uint64_t section_bytes[kSectionCount];
  uint64_t checksum;  // FNV-1a of the header with this field zeroed
};
static_assert(sizeof(SnapshotHeader) % 8 == 0, "header must stay 8-aligned");

uint64_t HeaderChecksum(SnapshotHeader header) {
  header.checksum = 0;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&header);
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < sizeof(header); ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t AlignUp8(uint64_t value) { return (value + 7) & ~uint64_t{7}; }

Status IoError(const std::string& what, const std::string& path) {
  return InternalError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

/// Friend of Document: reads the views for Save/Encode, installs them for
/// Map/Decode. The file and in-memory paths share one layout computation
/// and one validating decoder, so the two byte formats cannot drift.
class SnapshotCodec {
 public:
  static Status Save(const Document& doc, const std::string& path);
  static Result<Document> Map(const std::string& path);
  static void EncodeBytes(const Document& doc, std::string* out);
  static Result<Document> DecodeBytes(std::string_view bytes,
                                      const std::string& label);

 private:
  /// Header + section pointers for one serialization. `names_blob` backs
  /// section_data[kNames]; keep the Layout alive while writing.
  struct Layout {
    SnapshotHeader header;
    const void* section_data[kSectionCount];
    std::vector<char> names_blob;
  };
  static Layout ComputeLayout(const Document& doc);

  /// Validates and wires up a Document over `size` bytes at `data`. When
  /// `mapping` is null the views alias the caller's buffer — the caller
  /// must deep-copy before the buffer goes away.
  static Result<Document> Decode(
      const char* data, uint64_t size, const std::string& label,
      std::shared_ptr<internal::MappedSnapshot> mapping);
};

SnapshotCodec::Layout SnapshotCodec::ComputeLayout(const Document& doc) {
  const Document::Views& v = doc.v_;
  const uint64_t n = static_cast<uint64_t>(v.size);
  Layout out;

  // The interned-name table, as (uint32 length, bytes) records.
  for (const std::string& name : doc.names_) {
    const uint32_t length = static_cast<uint32_t>(name.size());
    const char* length_bytes = reinterpret_cast<const char*>(&length);
    out.names_blob.insert(out.names_blob.end(), length_bytes,
                          length_bytes + sizeof(length));
    out.names_blob.insert(out.names_blob.end(), name.begin(), name.end());
  }

  SnapshotHeader& header = out.header;
  header = SnapshotHeader{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kSnapshotFormatVersion;
  header.name_count = static_cast<uint32_t>(doc.names_.size());
  header.node_count = v.size;
  header.label_pool_count = v.label_pool_size;
  header.attr_pool_count = v.attr_pool_size;
  header.heap_size = v.heap_size;

  out.section_data[kParent] = v.parent;
  out.section_data[kFirstChild] = v.first_child;
  out.section_data[kLastChild] = v.last_child;
  out.section_data[kPrevSibling] = v.prev_sibling;
  out.section_data[kNextSibling] = v.next_sibling;
  out.section_data[kSubtreeSize] = v.subtree_size;
  out.section_data[kDepth] = v.depth;
  out.section_data[kTag] = v.tag;
  out.section_data[kTextSpan] = v.text_span;
  out.section_data[kLabelSpan] = v.label_span;
  out.section_data[kAttrSpan] = v.attr_span;
  out.section_data[kLabelPool] = v.label_pool;
  out.section_data[kAttrPool] = v.attr_pool;
  out.section_data[kHeap] = v.heap;
  out.section_data[kNames] = out.names_blob.data();

  header.section_bytes[kParent] = n * sizeof(NodeId);
  header.section_bytes[kFirstChild] = n * sizeof(NodeId);
  header.section_bytes[kLastChild] = n * sizeof(NodeId);
  header.section_bytes[kPrevSibling] = n * sizeof(NodeId);
  header.section_bytes[kNextSibling] = n * sizeof(NodeId);
  header.section_bytes[kSubtreeSize] = n * sizeof(int32_t);
  header.section_bytes[kDepth] = n * sizeof(int32_t);
  header.section_bytes[kTag] = n * sizeof(NameId);
  header.section_bytes[kTextSpan] = n * sizeof(PayloadSpan);
  header.section_bytes[kLabelSpan] = n * sizeof(PayloadSpan);
  header.section_bytes[kAttrSpan] = n * sizeof(PayloadSpan);
  header.section_bytes[kLabelPool] = v.label_pool_size * sizeof(NameId);
  header.section_bytes[kAttrPool] = v.attr_pool_size * sizeof(AttrEntry);
  header.section_bytes[kHeap] = v.heap_size;
  header.section_bytes[kNames] = out.names_blob.size();

  uint64_t offset = sizeof(SnapshotHeader);
  for (int s = 0; s < kSectionCount; ++s) {
    header.section_offset[s] = offset;
    offset = AlignUp8(offset + header.section_bytes[s]);
  }
  header.file_size = offset;
  header.checksum = HeaderChecksum(header);
  return out;
}

Status SnapshotCodec::Save(const Document& doc, const std::string& path) {
  const Layout layout = ComputeLayout(doc);
  const SnapshotHeader& header = layout.header;

  // Write to a temp sibling and rename: a crashed save never leaves a
  // half-written file at `path`.
  const std::string temp_path = path + ".tmp";
  FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) return IoError("cannot create", temp_path);
  auto write_all = [&](const void* data, uint64_t bytes) {
    return bytes == 0 ||
           std::fwrite(data, 1, static_cast<size_t>(bytes), file) == bytes;
  };
  bool ok = write_all(&header, sizeof(header));
  static constexpr char kPadding[8] = {};
  for (int s = 0; ok && s < kSectionCount; ++s) {
    ok = write_all(layout.section_data[s], header.section_bytes[s]) &&
         write_all(kPadding,
                   AlignUp8(header.section_bytes[s]) - header.section_bytes[s]);
  }
  // fflush + fsync before the rename: the WAL's checkpoint manifest must
  // never name a snapshot whose bytes are still in the page cache when the
  // machine dies. (rename alone orders the directory entry, not the data.)
  ok = ok && std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(temp_path.c_str());
    return IoError("short write to", temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return IoError("cannot rename into", path);
  }
  return Status::Ok();
}

void SnapshotCodec::EncodeBytes(const Document& doc, std::string* out) {
  const Layout layout = ComputeLayout(doc);
  const SnapshotHeader& header = layout.header;
  out->clear();
  out->reserve(static_cast<size_t>(header.file_size));
  out->append(reinterpret_cast<const char*>(&header), sizeof(header));
  static constexpr char kPadding[8] = {};
  for (int s = 0; s < kSectionCount; ++s) {
    if (header.section_bytes[s] != 0) {
      out->append(static_cast<const char*>(layout.section_data[s]),
                  static_cast<size_t>(header.section_bytes[s]));
    }
    out->append(kPadding, static_cast<size_t>(AlignUp8(header.section_bytes[s]) -
                                              header.section_bytes[s]));
  }
}

Result<Document> SnapshotCodec::DecodeBytes(std::string_view bytes,
                                            const std::string& label) {
  Result<Document> viewed = Decode(bytes.data(), bytes.size(), label, nullptr);
  if (!viewed.ok()) return viewed;
  // The decoded views alias `bytes`; the copy constructor materializes
  // owned storage, so the result outlives the input buffer.
  return Document(*viewed);
}

Result<Document> SnapshotCodec::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("cannot open snapshot", path);
  struct stat file_stat;
  if (::fstat(fd, &file_stat) != 0) {
    ::close(fd);
    return IoError("cannot stat snapshot", path);
  }
  const uint64_t file_size = static_cast<uint64_t>(file_stat.st_size);
  if (file_size < sizeof(SnapshotHeader)) {
    ::close(fd);
    return InvalidArgumentError("snapshot " + path +
                                ": truncated before header (" +
                                std::to_string(file_size) + " bytes)");
  }
  void* base = ::mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) return IoError("cannot mmap snapshot", path);
  auto mapping = std::make_shared<internal::MappedSnapshot>(
      base, static_cast<size_t>(file_size));
  const char* data = mapping->data();
  return Decode(data, file_size, path, std::move(mapping));
}

Result<Document> SnapshotCodec::Decode(
    const char* data, uint64_t size, const std::string& label,
    std::shared_ptr<internal::MappedSnapshot> mapping) {
  const uint64_t file_size = size;
  auto corrupt = [&](const std::string& what) {
    return InvalidArgumentError("snapshot " + label + ": " + what);
  };
  if (file_size < sizeof(SnapshotHeader)) {
    return corrupt("truncated before header (" + std::to_string(file_size) +
                   " bytes)");
  }

  // Validate the header completely before touching any section: nothing
  // below may read through an offset the checks have not bounded.
  SnapshotHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic (not an arena snapshot)");
  }
  if (header.version != kSnapshotFormatVersion) {
    return corrupt("format version " + std::to_string(header.version) +
                   ", this build reads version " +
                   std::to_string(kSnapshotFormatVersion));
  }
  if (header.checksum != HeaderChecksum(header)) {
    return corrupt("header checksum mismatch");
  }
  if (header.file_size != file_size) {
    return corrupt("truncated: header says " +
                   std::to_string(header.file_size) + " bytes, file has " +
                   std::to_string(file_size));
  }
  if (header.node_count < 0 ||
      header.node_count > std::numeric_limits<int32_t>::max()) {
    return corrupt("implausible node count");
  }
  const uint64_t n = static_cast<uint64_t>(header.node_count);
  const uint64_t expected_bytes[kSectionCount] = {
      n * sizeof(NodeId),      n * sizeof(NodeId),
      n * sizeof(NodeId),      n * sizeof(NodeId),
      n * sizeof(NodeId),      n * sizeof(int32_t),
      n * sizeof(int32_t),     n * sizeof(NameId),
      n * sizeof(PayloadSpan), n * sizeof(PayloadSpan),
      n * sizeof(PayloadSpan), header.label_pool_count * sizeof(NameId),
      header.attr_pool_count * sizeof(AttrEntry), header.heap_size,
      header.section_bytes[kNames]};
  for (int s = 0; s < kSectionCount; ++s) {
    if (header.section_bytes[s] != expected_bytes[s]) {
      return corrupt("section " + std::to_string(s) +
                     " size disagrees with header counts");
    }
    if (header.section_offset[s] % 8 != 0 ||
        header.section_offset[s] < sizeof(SnapshotHeader) ||
        header.section_offset[s] > file_size ||
        header.section_bytes[s] > file_size - header.section_offset[s]) {
      return corrupt("section " + std::to_string(s) + " out of bounds");
    }
  }

  // Materialize the name table (small) and validate its framing.
  std::vector<std::string> names;
  names.reserve(header.name_count);
  {
    const char* cursor = data + header.section_offset[kNames];
    uint64_t remaining = header.section_bytes[kNames];
    for (uint32_t i = 0; i < header.name_count; ++i) {
      uint32_t length;
      if (remaining < sizeof(length)) return corrupt("name table truncated");
      std::memcpy(&length, cursor, sizeof(length));
      cursor += sizeof(length);
      remaining -= sizeof(length);
      if (remaining < length) return corrupt("name table truncated");
      names.emplace_back(cursor, length);
      cursor += length;
      remaining -= length;
    }
  }

  Document doc;
  doc.mapping_ = std::move(mapping);
  doc.names_ = std::move(names);
  doc.name_ids_.reserve(doc.names_.size());
  for (NameId id = 0; id < static_cast<NameId>(doc.names_.size()); ++id) {
    doc.name_ids_.emplace(doc.names_[static_cast<size_t>(id)], id);
  }
  Document::Views& v = doc.v_;
  auto section = [&](int s) { return data + header.section_offset[s]; };
  v.parent = reinterpret_cast<const NodeId*>(section(kParent));
  v.first_child = reinterpret_cast<const NodeId*>(section(kFirstChild));
  v.last_child = reinterpret_cast<const NodeId*>(section(kLastChild));
  v.prev_sibling = reinterpret_cast<const NodeId*>(section(kPrevSibling));
  v.next_sibling = reinterpret_cast<const NodeId*>(section(kNextSibling));
  v.subtree_size = reinterpret_cast<const int32_t*>(section(kSubtreeSize));
  v.depth = reinterpret_cast<const int32_t*>(section(kDepth));
  v.tag = reinterpret_cast<const NameId*>(section(kTag));
  v.text_span = reinterpret_cast<const PayloadSpan*>(section(kTextSpan));
  v.label_span = reinterpret_cast<const PayloadSpan*>(section(kLabelSpan));
  v.attr_span = reinterpret_cast<const PayloadSpan*>(section(kAttrSpan));
  v.label_pool = reinterpret_cast<const NameId*>(section(kLabelPool));
  v.attr_pool = reinterpret_cast<const AttrEntry*>(section(kAttrPool));
  v.heap = section(kHeap);
  v.size = static_cast<int32_t>(header.node_count);
  v.label_pool_size = header.label_pool_count;
  v.attr_pool_size = header.attr_pool_count;
  v.heap_size = header.heap_size;
  return doc;
}

Status SaveSnapshot(const Document& doc, const std::string& path) {
  return SnapshotCodec::Save(doc, path);
}

Result<Document> MapSnapshot(const std::string& path) {
  return SnapshotCodec::Map(path);
}

void SaveSnapshotBytes(const Document& doc, std::string* out) {
  SnapshotCodec::EncodeBytes(doc, out);
}

Result<Document> LoadSnapshotBytes(std::string_view bytes,
                                   const std::string& label) {
  return SnapshotCodec::DecodeBytes(bytes, label);
}

}  // namespace gkx::xml
