#include "xml/edit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace gkx::xml {

namespace {

/// Concatenated direct text of the preorder interval [begin, begin+count) —
/// exactly the region's contribution to every enclosing string-value.
std::string RegionText(const Document& doc, NodeId begin, int32_t count) {
  std::string out;
  for (NodeId v = begin; v < begin + count; ++v) out += doc.text(v);
  return out;
}

/// Sorted, duplicate-free names (tags and extra labels) carried by nodes of
/// the preorder interval [begin, begin+count).
std::vector<std::string> RegionNames(const Document& doc, NodeId begin,
                                     int32_t count) {
  std::vector<NameId> ids;
  for (NodeId v = begin; v < begin + count; ++v) {
    ids.push_back(doc.tag(v));
    const std::span<const NameId> labels = doc.labels(v);
    ids.insert(ids.end(), labels.begin(), labels.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (NameId id : ids) names.emplace_back(doc.NameText(id));
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::vector<std::string> DocumentDelta::ChangedNames() const {
  std::vector<std::string> out;
  out.reserve(old_names.size() + new_names.size());
  std::set_union(old_names.begin(), old_names.end(), new_names.begin(),
                 new_names.end(), std::back_inserter(out));
  return out;
}

std::string DocumentDelta::ToString() const {
  std::ostringstream out;
  out << "[" << begin << ",+" << old_count << ")->+" << new_count
      << (ids_stable ? " ids-stable" : "")
      << (content_changed ? " content" : "") << " names={";
  const std::vector<std::string> changed = ChangedNames();
  for (size_t i = 0; i < changed.size(); ++i) {
    if (i > 0) out << ',';
    out << changed[i];
  }
  out << "}";
  return out.str();
}

/// Friend of Document: performs the splice with direct column access.
class EditSplicer {
 public:
  static Result<Document> Apply(const Document& doc, const SubtreeEdit& edit,
                                DocumentDelta* delta);

 private:
  /// Structural splice: the old interval [r, r+old_count) is replaced by
  /// `sub`'s tree (nullptr = pure removal). `parent`/`prev`/`next` wire the
  /// new region root into the surrounding tree, all in OLD coordinates
  /// (parent and prev precede the region; next follows it or is null).
  static Document Splice(const Document& doc, NodeId r, int32_t old_count,
                         const Document* sub, NodeId parent, NodeId prev,
                         NodeId next, int32_t root_depth);

  /// Id-stable clone (kSetText/kRelabel): dense columns are copied verbatim
  /// while the payload pools are rebuilt compactly, so a churn of text edits
  /// cannot accumulate orphaned heap bytes. `text_override`/`tag_override`
  /// (nullable) apply to `target`.
  static Document CloneCompacted(const Document& doc, NodeId target,
                                 const std::string* text_override,
                                 const std::string* tag_override);
};

Document EditSplicer::CloneCompacted(const Document& doc, NodeId target,
                                     const std::string* text_override,
                                     const std::string* tag_override) {
  const int32_t n = doc.size();
  Document out;
  out.names_ = doc.names_;
  out.name_ids_ = doc.name_ids_;
  Document::Owned& a = out.owned_;
  const Document::Views& o = doc.v_;

  // Dense link/meta columns are unchanged by id-stable edits.
  a.parent.assign(o.parent, o.parent + n);
  a.first_child.assign(o.first_child, o.first_child + n);
  a.last_child.assign(o.last_child, o.last_child + n);
  a.prev_sibling.assign(o.prev_sibling, o.prev_sibling + n);
  a.next_sibling.assign(o.next_sibling, o.next_sibling + n);
  a.subtree_size.assign(o.subtree_size, o.subtree_size + n);
  a.depth.assign(o.depth, o.depth + n);
  a.tag.assign(o.tag, o.tag + n);

  const NameId new_tag =
      tag_override ? out.InternName(*tag_override) : kNoName;
  if (tag_override) a.tag[static_cast<size_t>(target)] = new_tag;

  a.text_span.reserve(static_cast<size_t>(n));
  a.label_span.reserve(static_cast<size_t>(n));
  a.attr_span.reserve(static_cast<size_t>(n));
  a.label_pool.reserve(o.label_pool_size);
  a.heap.reserve(o.heap_size);
  for (NodeId v = 0; v < n; ++v) {
    const std::string_view text =
        (text_override && v == target) ? std::string_view(*text_override)
                                       : doc.text(v);
    a.text_span.push_back(out.AppendHeapBytes(text));

    const std::span<const NameId> labels = doc.labels(v);
    const uint32_t label_start = static_cast<uint32_t>(a.label_pool.size());
    for (NameId label : labels) {
      // Keep the tag/labels disjointness invariant: if the new tag was an
      // extra label of the relabelled node, it is now redundant.
      if (tag_override && v == target && label == new_tag) continue;
      a.label_pool.push_back(label);
    }
    a.label_span.push_back(PayloadSpan{
        label_start,
        static_cast<uint32_t>(a.label_pool.size()) - label_start});

    const uint32_t attr_start = static_cast<uint32_t>(a.attr_pool.size());
    const int32_t attr_count = doc.attribute_count(v);
    for (int32_t i = 0; i < attr_count; ++i) {
      const AttributeRef attr = doc.attribute(v, i);
      a.attr_pool.push_back(out.MakeAttrEntry(attr.name, attr.value));
    }
    a.attr_span.push_back(
        PayloadSpan{attr_start, static_cast<uint32_t>(attr_count)});
  }
  out.SealViews();
  return out;
}

Result<Document> EditSplicer::Apply(const Document& doc,
                                    const SubtreeEdit& edit,
                                    DocumentDelta* delta) {
  if (doc.empty()) return InvalidArgumentError("cannot edit an empty document");
  DocumentDelta local;
  DocumentDelta& d = delta ? *delta : local;
  d = DocumentDelta{};

  switch (edit.kind) {
    case SubtreeEdit::Kind::kSetText: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("SetText target out of range");
      }
      d.begin = edit.target;
      d.old_count = d.new_count = 1;
      d.ids_stable = true;
      d.content_changed = doc.text(edit.target) != edit.text;
      return CloneCompacted(doc, edit.target, &edit.text, nullptr);
    }

    case SubtreeEdit::Kind::kRelabel: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("Relabel target out of range");
      }
      if (edit.label.empty()) {
        return InvalidArgumentError("Relabel needs a non-empty tag");
      }
      d.begin = edit.target;
      d.old_count = d.new_count = 1;
      d.ids_stable = true;
      d.content_changed = false;
      d.old_names = {std::string(doc.TagName(edit.target))};
      d.new_names = {edit.label};
      return CloneCompacted(doc, edit.target, nullptr, &edit.label);
    }

    case SubtreeEdit::Kind::kReplaceSubtree: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("ReplaceSubtree target out of range");
      }
      if (edit.subtree.empty()) {
        return InvalidArgumentError("ReplaceSubtree needs a non-empty subtree");
      }
      d.begin = edit.target;
      d.old_count = doc.subtree_size(edit.target);
      d.new_count = edit.subtree.size();
      d.ids_stable = false;
      d.content_changed = RegionText(doc, d.begin, d.old_count) !=
                          RegionText(edit.subtree, 0, d.new_count);
      d.old_names = RegionNames(doc, d.begin, d.old_count);
      d.new_names = RegionNames(edit.subtree, 0, d.new_count);
      return Splice(doc, d.begin, d.old_count, &edit.subtree,
                    doc.parent(edit.target), doc.prev_sibling(edit.target),
                    doc.next_sibling(edit.target), doc.depth(edit.target));
    }

    case SubtreeEdit::Kind::kRemoveSubtree: {
      if (edit.target <= 0 || edit.target >= doc.size()) {
        return InvalidArgumentError(
            "RemoveSubtree target must be a non-root node");
      }
      d.begin = edit.target;
      d.old_count = doc.subtree_size(edit.target);
      d.new_count = 0;
      d.ids_stable = false;
      d.content_changed = !RegionText(doc, d.begin, d.old_count).empty();
      d.old_names = RegionNames(doc, d.begin, d.old_count);
      return Splice(doc, d.begin, d.old_count, nullptr,
                    doc.parent(edit.target), doc.prev_sibling(edit.target),
                    doc.next_sibling(edit.target), doc.depth(edit.target));
    }

    case SubtreeEdit::Kind::kInsertSubtree: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("InsertSubtree parent out of range");
      }
      if (edit.subtree.empty()) {
        return InvalidArgumentError("InsertSubtree needs a non-empty subtree");
      }
      const int32_t child_count = doc.ChildCount(edit.target);
      if (edit.position < 0 || edit.position > child_count) {
        return InvalidArgumentError("InsertSubtree position out of range");
      }
      // The new subtree's preorder slot: right before the position-th child,
      // or (appending) right after the parent's whole subtree interval.
      NodeId next = doc.first_child(edit.target);
      NodeId prev = kNullNode;
      for (int32_t i = 0; i < edit.position; ++i) {
        prev = next;
        next = doc.next_sibling(next);
      }
      const NodeId r = next != kNullNode
                           ? next
                           : edit.target + doc.subtree_size(edit.target);
      d.begin = r;
      d.old_count = 0;
      d.new_count = edit.subtree.size();
      d.ids_stable = false;
      d.content_changed = !RegionText(edit.subtree, 0, d.new_count).empty();
      d.new_names = RegionNames(edit.subtree, 0, d.new_count);
      return Splice(doc, r, 0, &edit.subtree, edit.target, prev, next,
                    doc.depth(edit.target) + 1);
    }
  }
  return InternalError("unreachable edit kind");
}

Document EditSplicer::Splice(const Document& doc, NodeId r, int32_t old_count,
                             const Document* sub, NodeId parent, NodeId prev,
                             NodeId next, int32_t root_depth) {
  const int32_t new_count = sub ? sub->size() : 0;
  const int32_t shift = new_count - old_count;
  const NodeId old_end = r + old_count;
  const size_t out_size = static_cast<size_t>(doc.size() + shift);

  Document out;
  // Old pool first (surviving NameIds are identity-mapped), then the
  // subtree's names appended as needed.
  out.names_ = doc.names_;
  out.name_ids_ = doc.name_ids_;
  std::vector<NameId> sub_name_map;
  if (sub != nullptr) {
    sub_name_map.reserve(sub->names_.size());
    for (const std::string& name : sub->names_) {
      sub_name_map.push_back(out.InternName(name));
    }
  }

  // Generic id translation for links between surviving nodes. A link equal
  // to r (the old region root) is only ever held by the region's parent and
  // adjacent siblings; it maps to r — correct for replacement, and fixed up
  // explicitly below for removal/insertion.
  auto remap = [&](NodeId id) -> NodeId {
    if (id == kNullNode || id < r) return id;
    if (id >= old_end) return id + shift;
    GKX_CHECK(id == r);  // interior region nodes are unreachable from outside
    return r;
  };
  auto rebase = [&](NodeId id) -> NodeId {
    return id == kNullNode ? kNullNode : r + id;
  };

  Document::Owned& a = out.owned_;
  a.parent.reserve(out_size);
  a.first_child.reserve(out_size);
  a.last_child.reserve(out_size);
  a.prev_sibling.reserve(out_size);
  a.next_sibling.reserve(out_size);
  a.subtree_size.reserve(out_size);
  a.depth.reserve(out_size);
  a.tag.reserve(out_size);
  a.text_span.reserve(out_size);
  a.label_span.reserve(out_size);
  a.attr_span.reserve(out_size);

  // Payloads are re-appended compactly into the output's own pools; the
  // surviving part needs no name translation, the region goes through
  // sub_name_map.
  std::vector<NameId> mapped_labels;
  auto append_payload = [&](const Document& src, NodeId v, bool map_names) {
    a.text_span.push_back(out.AppendHeapBytes(src.text(v)));

    const std::span<const NameId> labels = src.labels(v);
    const uint32_t label_start = static_cast<uint32_t>(a.label_pool.size());
    if (map_names) {
      mapped_labels.clear();
      for (NameId label : labels) {
        mapped_labels.push_back(sub_name_map[static_cast<size_t>(label)]);
      }
      std::sort(mapped_labels.begin(), mapped_labels.end());
      a.label_pool.insert(a.label_pool.end(), mapped_labels.begin(),
                          mapped_labels.end());
    } else {
      a.label_pool.insert(a.label_pool.end(), labels.begin(), labels.end());
    }
    a.label_span.push_back(
        PayloadSpan{label_start, static_cast<uint32_t>(labels.size())});

    const uint32_t attr_start = static_cast<uint32_t>(a.attr_pool.size());
    const int32_t attr_count = src.attribute_count(v);
    for (int32_t i = 0; i < attr_count; ++i) {
      const AttributeRef attr = src.attribute(v, i);
      a.attr_pool.push_back(out.MakeAttrEntry(attr.name, attr.value));
    }
    a.attr_span.push_back(
        PayloadSpan{attr_start, static_cast<uint32_t>(attr_count)});
  };

  // Prefix [0, r): verbatim except for remapped links.
  for (NodeId v = 0; v < r; ++v) {
    a.parent.push_back(remap(doc.parent(v)));
    a.first_child.push_back(remap(doc.first_child(v)));
    a.last_child.push_back(remap(doc.last_child(v)));
    a.prev_sibling.push_back(remap(doc.prev_sibling(v)));
    a.next_sibling.push_back(remap(doc.next_sibling(v)));
    a.subtree_size.push_back(doc.subtree_size(v));
    a.depth.push_back(doc.depth(v));
    a.tag.push_back(doc.tag(v));
    append_payload(doc, v, /*map_names=*/false);
  }

  // Region: the spliced-in subtree, re-based to ids [r, r+new_count).
  for (NodeId i = 0; i < new_count; ++i) {
    a.parent.push_back(i == 0 ? parent : rebase(sub->parent(i)));
    a.first_child.push_back(rebase(sub->first_child(i)));
    a.last_child.push_back(rebase(sub->last_child(i)));
    a.prev_sibling.push_back(i == 0 ? prev : rebase(sub->prev_sibling(i)));
    a.next_sibling.push_back(i == 0 ? remap(next)
                                    : rebase(sub->next_sibling(i)));
    a.subtree_size.push_back(sub->subtree_size(i));
    a.depth.push_back(root_depth + sub->depth(i));
    a.tag.push_back(sub_name_map[static_cast<size_t>(sub->tag(i))]);
    append_payload(*sub, i, /*map_names=*/true);
  }

  // Suffix [old_end, |D|): verbatim except for remapped links; depths and
  // subtree sizes of nodes outside the region and off the ancestor chain
  // are untouched by a sibling-subtree splice.
  for (NodeId v = old_end; v < doc.size(); ++v) {
    a.parent.push_back(remap(doc.parent(v)));
    a.first_child.push_back(remap(doc.first_child(v)));
    a.last_child.push_back(remap(doc.last_child(v)));
    a.prev_sibling.push_back(remap(doc.prev_sibling(v)));
    a.next_sibling.push_back(remap(doc.next_sibling(v)));
    a.subtree_size.push_back(doc.subtree_size(v));
    a.depth.push_back(doc.depth(v));
    a.tag.push_back(doc.tag(v));
    append_payload(doc, v, /*map_names=*/false);
  }

  // Ancestors of the region absorb the size shift (all precede r).
  for (NodeId anc = parent; anc != kNullNode; anc = doc.parent(anc)) {
    a.subtree_size[static_cast<size_t>(anc)] += shift;
  }

  // Explicit wiring of the links that referenced the old region root.
  if (sub == nullptr) {
    // Removal: the parent's child list and the adjacent siblings bypass r.
    const size_t p = static_cast<size_t>(parent);
    if (doc.first_child(parent) == r) a.first_child[p] = remap(next);
    if (doc.last_child(parent) == r) a.last_child[p] = prev;
    if (prev != kNullNode) {
      a.next_sibling[static_cast<size_t>(prev)] = remap(next);
    }
    if (next != kNullNode) {
      a.prev_sibling[static_cast<size_t>(remap(next))] = prev;
    }
  } else if (old_count == 0) {
    // Insertion: the new root slots in between prev and next.
    const size_t p = static_cast<size_t>(parent);
    if (prev == kNullNode) {
      a.first_child[p] = r;
    } else {
      a.next_sibling[static_cast<size_t>(prev)] = r;
    }
    if (next == kNullNode) {
      a.last_child[p] = r;
    } else {
      a.prev_sibling[static_cast<size_t>(remap(next))] = r;
    }
  }
  // Replacement: the new root already occupies id r, which every
  // surrounding link was remapped to.

  out.SealViews();
  return out;
}

Result<Document> ApplyEdit(const Document& doc, const SubtreeEdit& edit,
                           DocumentDelta* delta) {
  return EditSplicer::Apply(doc, edit, delta);
}

}  // namespace gkx::xml
