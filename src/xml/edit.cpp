#include "xml/edit.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace gkx::xml {

namespace {

/// Concatenated direct text of the preorder interval [begin, begin+count) —
/// exactly the region's contribution to every enclosing string-value.
std::string RegionText(const Document& doc, NodeId begin, int32_t count) {
  std::string out;
  for (NodeId v = begin; v < begin + count; ++v) out += doc.node(v).text;
  return out;
}

/// Sorted, duplicate-free names (tags and extra labels) carried by nodes of
/// the preorder interval [begin, begin+count).
std::vector<std::string> RegionNames(const Document& doc, NodeId begin,
                                     int32_t count) {
  std::vector<NameId> ids;
  for (NodeId v = begin; v < begin + count; ++v) {
    const Node& node = doc.node(v);
    ids.push_back(node.tag);
    ids.insert(ids.end(), node.labels.begin(), node.labels.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<std::string> names;
  names.reserve(ids.size());
  for (NameId id : ids) names.emplace_back(doc.NameText(id));
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::vector<std::string> DocumentDelta::ChangedNames() const {
  std::vector<std::string> out;
  out.reserve(old_names.size() + new_names.size());
  std::set_union(old_names.begin(), old_names.end(), new_names.begin(),
                 new_names.end(), std::back_inserter(out));
  return out;
}

std::string DocumentDelta::ToString() const {
  std::ostringstream out;
  out << "[" << begin << ",+" << old_count << ")->+" << new_count
      << (ids_stable ? " ids-stable" : "")
      << (content_changed ? " content" : "") << " names={";
  const std::vector<std::string> changed = ChangedNames();
  for (size_t i = 0; i < changed.size(); ++i) {
    if (i > 0) out << ',';
    out << changed[i];
  }
  out << "}";
  return out.str();
}

/// Friend of Document: performs the splice with direct node-array access.
class EditSplicer {
 public:
  static Result<Document> Apply(const Document& doc, const SubtreeEdit& edit,
                                DocumentDelta* delta);

 private:
  /// Structural splice: the old interval [r, r+old_count) is replaced by
  /// `sub`'s tree (nullptr = pure removal). `parent`/`prev`/`next` wire the
  /// new region root into the surrounding tree, all in OLD coordinates
  /// (parent and prev precede the region; next follows it or is null).
  static Document Splice(const Document& doc, NodeId r, int32_t old_count,
                         const Document* sub, NodeId parent, NodeId prev,
                         NodeId next, int32_t root_depth);
};

Result<Document> EditSplicer::Apply(const Document& doc,
                                    const SubtreeEdit& edit,
                                    DocumentDelta* delta) {
  if (doc.empty()) return InvalidArgumentError("cannot edit an empty document");
  DocumentDelta local;
  DocumentDelta& d = delta ? *delta : local;
  d = DocumentDelta{};

  switch (edit.kind) {
    case SubtreeEdit::Kind::kSetText: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("SetText target out of range");
      }
      Document out = doc;
      Node& node = out.nodes_[static_cast<size_t>(edit.target)];
      d.begin = edit.target;
      d.old_count = d.new_count = 1;
      d.ids_stable = true;
      d.content_changed = node.text != edit.text;
      node.text = edit.text;
      return out;
    }

    case SubtreeEdit::Kind::kRelabel: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("Relabel target out of range");
      }
      if (edit.label.empty()) {
        return InvalidArgumentError("Relabel needs a non-empty tag");
      }
      Document out = doc;
      Node& node = out.nodes_[static_cast<size_t>(edit.target)];
      d.begin = edit.target;
      d.old_count = d.new_count = 1;
      d.ids_stable = true;
      d.content_changed = false;
      d.old_names = {std::string(doc.NameText(node.tag))};
      d.new_names = {edit.label};
      node.tag = out.InternName(edit.label);
      // Keep the tag/labels disjointness invariant: if the new tag was an
      // extra label, it is now redundant.
      auto dup = std::find(node.labels.begin(), node.labels.end(), node.tag);
      if (dup != node.labels.end()) node.labels.erase(dup);
      return out;
    }

    case SubtreeEdit::Kind::kReplaceSubtree: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("ReplaceSubtree target out of range");
      }
      if (edit.subtree.empty()) {
        return InvalidArgumentError("ReplaceSubtree needs a non-empty subtree");
      }
      const Node& old_root = doc.node(edit.target);
      d.begin = edit.target;
      d.old_count = old_root.subtree_size;
      d.new_count = edit.subtree.size();
      d.ids_stable = false;
      d.content_changed = RegionText(doc, d.begin, d.old_count) !=
                          RegionText(edit.subtree, 0, d.new_count);
      d.old_names = RegionNames(doc, d.begin, d.old_count);
      d.new_names = RegionNames(edit.subtree, 0, d.new_count);
      return Splice(doc, d.begin, d.old_count, &edit.subtree, old_root.parent,
                    old_root.prev_sibling, old_root.next_sibling,
                    old_root.depth);
    }

    case SubtreeEdit::Kind::kRemoveSubtree: {
      if (edit.target <= 0 || edit.target >= doc.size()) {
        return InvalidArgumentError(
            "RemoveSubtree target must be a non-root node");
      }
      const Node& old_root = doc.node(edit.target);
      d.begin = edit.target;
      d.old_count = old_root.subtree_size;
      d.new_count = 0;
      d.ids_stable = false;
      d.content_changed = !RegionText(doc, d.begin, d.old_count).empty();
      d.old_names = RegionNames(doc, d.begin, d.old_count);
      return Splice(doc, d.begin, d.old_count, nullptr, old_root.parent,
                    old_root.prev_sibling, old_root.next_sibling,
                    old_root.depth);
    }

    case SubtreeEdit::Kind::kInsertSubtree: {
      if (edit.target < 0 || edit.target >= doc.size()) {
        return InvalidArgumentError("InsertSubtree parent out of range");
      }
      if (edit.subtree.empty()) {
        return InvalidArgumentError("InsertSubtree needs a non-empty subtree");
      }
      const Node& parent = doc.node(edit.target);
      const int32_t child_count = doc.ChildCount(edit.target);
      if (edit.position < 0 || edit.position > child_count) {
        return InvalidArgumentError("InsertSubtree position out of range");
      }
      // The new subtree's preorder slot: right before the position-th child,
      // or (appending) right after the parent's whole subtree interval.
      NodeId next = parent.first_child;
      NodeId prev = kNullNode;
      for (int32_t i = 0; i < edit.position; ++i) {
        prev = next;
        next = doc.node(next).next_sibling;
      }
      const NodeId r = next != kNullNode ? next
                                         : edit.target + parent.subtree_size;
      d.begin = r;
      d.old_count = 0;
      d.new_count = edit.subtree.size();
      d.ids_stable = false;
      d.content_changed = !RegionText(edit.subtree, 0, d.new_count).empty();
      d.new_names = RegionNames(edit.subtree, 0, d.new_count);
      return Splice(doc, r, 0, &edit.subtree, edit.target, prev, next,
                    parent.depth + 1);
    }
  }
  return InternalError("unreachable edit kind");
}

Document EditSplicer::Splice(const Document& doc, NodeId r, int32_t old_count,
                             const Document* sub, NodeId parent, NodeId prev,
                             NodeId next, int32_t root_depth) {
  const int32_t new_count = sub ? sub->size() : 0;
  const int32_t shift = new_count - old_count;
  const NodeId old_end = r + old_count;

  Document out;
  // Old pool first (surviving NameIds are identity-mapped), then the
  // subtree's names appended as needed.
  out.names_ = doc.names_;
  out.name_ids_ = doc.name_ids_;
  std::vector<NameId> sub_name_map;
  if (sub != nullptr) {
    sub_name_map.reserve(sub->names_.size());
    for (const std::string& name : sub->names_) {
      sub_name_map.push_back(out.InternName(name));
    }
  }

  // Generic id translation for links between surviving nodes. A link equal
  // to r (the old region root) is only ever held by the region's parent and
  // adjacent siblings; it maps to r — correct for replacement, and fixed up
  // explicitly below for removal/insertion.
  auto remap = [&](NodeId id) -> NodeId {
    if (id == kNullNode || id < r) return id;
    if (id >= old_end) return id + shift;
    GKX_CHECK(id == r);  // interior region nodes are unreachable from outside
    return r;
  };

  out.nodes_.reserve(static_cast<size_t>(doc.size() + shift));

  // Prefix [0, r): verbatim except for remapped links.
  for (NodeId v = 0; v < r; ++v) {
    const Node& src = doc.nodes_[static_cast<size_t>(v)];
    Node node = src;
    node.parent = remap(src.parent);
    node.first_child = remap(src.first_child);
    node.last_child = remap(src.last_child);
    node.prev_sibling = remap(src.prev_sibling);
    node.next_sibling = remap(src.next_sibling);
    out.nodes_.push_back(std::move(node));
  }

  // Region: the spliced-in subtree, re-based to ids [r, r+new_count).
  auto rebase = [&](NodeId id) -> NodeId {
    return id == kNullNode ? kNullNode : r + id;
  };
  for (NodeId i = 0; i < new_count; ++i) {
    const Node& src = sub->nodes_[static_cast<size_t>(i)];
    Node node;
    node.parent = i == 0 ? parent : rebase(src.parent);
    node.first_child = rebase(src.first_child);
    node.last_child = rebase(src.last_child);
    node.prev_sibling = i == 0 ? prev : rebase(src.prev_sibling);
    node.next_sibling = i == 0 ? remap(next) : rebase(src.next_sibling);
    node.subtree_size = src.subtree_size;
    node.depth = root_depth + src.depth;
    node.tag = sub_name_map[static_cast<size_t>(src.tag)];
    node.labels.reserve(src.labels.size());
    for (NameId label : src.labels) {
      node.labels.push_back(sub_name_map[static_cast<size_t>(label)]);
    }
    std::sort(node.labels.begin(), node.labels.end());
    node.attributes = src.attributes;
    node.text = src.text;
    out.nodes_.push_back(std::move(node));
  }

  // Suffix [old_end, |D|): verbatim except for remapped links; depths and
  // subtree sizes of nodes outside the region and off the ancestor chain
  // are untouched by a sibling-subtree splice.
  for (NodeId v = old_end; v < doc.size(); ++v) {
    const Node& src = doc.nodes_[static_cast<size_t>(v)];
    Node node = src;
    node.parent = remap(src.parent);
    node.first_child = remap(src.first_child);
    node.last_child = remap(src.last_child);
    node.prev_sibling = remap(src.prev_sibling);
    node.next_sibling = remap(src.next_sibling);
    out.nodes_.push_back(std::move(node));
  }

  // Ancestors of the region absorb the size shift (all precede r).
  for (NodeId a = parent; a != kNullNode; a = doc.node(a).parent) {
    out.nodes_[static_cast<size_t>(a)].subtree_size += shift;
  }

  // Explicit wiring of the links that referenced the old region root.
  if (sub == nullptr) {
    // Removal: the parent's child list and the adjacent siblings bypass r.
    Node& p = out.nodes_[static_cast<size_t>(parent)];
    if (doc.node(parent).first_child == r) p.first_child = remap(next);
    if (doc.node(parent).last_child == r) p.last_child = prev;
    if (prev != kNullNode) {
      out.nodes_[static_cast<size_t>(prev)].next_sibling = remap(next);
    }
    if (next != kNullNode) {
      out.nodes_[static_cast<size_t>(remap(next))].prev_sibling = prev;
    }
  } else if (old_count == 0) {
    // Insertion: the new root slots in between prev and next.
    Node& p = out.nodes_[static_cast<size_t>(parent)];
    if (prev == kNullNode) {
      p.first_child = r;
    } else {
      out.nodes_[static_cast<size_t>(prev)].next_sibling = r;
    }
    if (next == kNullNode) {
      p.last_child = r;
    } else {
      out.nodes_[static_cast<size_t>(remap(next))].prev_sibling = r;
    }
  }
  // Replacement: the new root already occupies id r, which every
  // surrounding link was remapped to.

  return out;
}

Result<Document> ApplyEdit(const Document& doc, const SubtreeEdit& edit,
                           DocumentDelta* delta) {
  return EditSplicer::Apply(doc, edit, delta);
}

}  // namespace gkx::xml
