// A small auction-site document generator in the spirit of the XMark XML
// benchmark family — the kind of workload XPath was designed for and the
// paper's introduction motivates (XQuery/XSLT/XML Schema all navigate such
// documents with XPath). Element text is numeric where comparisons are
// interesting (prices, bid amounts), so WF-style queries have bite.
//
// Shape:
//   <site>
//     <categories> <category> <name>..  </category>* </categories>
//     <people>     <person>   <name>.. <city>..  </person>*      </people>
//     <items>      <item>     <name>.. <price>.. <seller>.. <incategory>..
//                  </item>*                                      </items>
//     <open_auctions> <open_auction> <itemref>.. <bid>..* <current>..
//                     </open_auction>*                   </open_auctions>
//   </site>

#ifndef GKX_XML_AUCTION_HPP_
#define GKX_XML_AUCTION_HPP_

#include "base/rng.hpp"
#include "xml/document.hpp"

namespace gkx::xml {

struct AuctionOptions {
  int32_t categories = 4;
  int32_t people = 15;
  int32_t items = 20;
  int32_t open_auctions = 12;
  int32_t max_bids_per_auction = 5;
  int32_t max_price = 100;
};

/// Deterministic in (*rng) state. All cross-references (seller, itemref,
/// bidder, incategory) are ids of existing entities, carried as attributes
/// and as numeric text where queries need to compare them.
Document AuctionDocument(Rng* rng, const AuctionOptions& options = {});

}  // namespace gkx::xml

#endif  // GKX_XML_AUCTION_HPP_
