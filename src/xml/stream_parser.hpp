// One-pass streaming ingestion: parses XML straight into the SoA arena and
// its DocumentIndex posting lists with no DOM intermediate. Elements appear
// in the source text in preorder — exactly the order the arena stores them —
// so the sink appends column entries as tags open, buffers per-open-element
// text (chunks interleave with child elements), and finalizes subtree sizes
// as tags close. Posting lists are born sorted because node ids only ascend.
//
// The grammar, entity decoding, and error positions are shared with
// ParseDocument through parser_core.hpp; for any input, the two frontends
// accept/reject identically and produce testkit::ExhaustiveEquals-identical
// documents (the differential fuzz suite in xml_fuzz_test enforces this).

#ifndef GKX_XML_STREAM_PARSER_HPP_
#define GKX_XML_STREAM_PARSER_HPP_

#include <string_view>

#include "base/status.hpp"
#include "xml/document.hpp"
#include "xml/index.hpp"
#include "xml/parser.hpp"

namespace gkx::xml {

/// The arena plus the posting lists built alongside it. Hand `postings` to
/// DocumentIndex(doc, std::move(postings)) to get a query-ready index
/// without a second document walk.
struct StreamParseResult {
  Document doc;
  DocumentIndex::Prebuilt postings;
};

/// Streaming counterpart of ParseDocument: same language, same errors, one
/// pass, no DOM. Pre-scans the input to reserve the arena columns up front.
Result<StreamParseResult> ParseDocumentStream(std::string_view xml,
                                              const ParseOptions& options = {});

}  // namespace gkx::xml

#endif  // GKX_XML_STREAM_PARSER_HPP_
