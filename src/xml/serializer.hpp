// Document -> XML text. Inverse of ParseDocument under the conventions
// described there (extra labels emitted as a `labels="..."` attribute, direct
// text emitted before child elements).

#ifndef GKX_XML_SERIALIZER_HPP_
#define GKX_XML_SERIALIZER_HPP_

#include <string>

#include "xml/document.hpp"

namespace gkx::xml {

struct SerializeOptions {
  /// Indent per nesting level; 0 emits everything on one line.
  int indent = 2;
  /// Attribute used for extra labels; empty drops labels from the output.
  std::string labels_attribute = "labels";
};

/// Serializes the whole document.
std::string SerializeDocument(const Document& doc, const SerializeOptions& options = {});

/// Serializes the subtree rooted at `node`.
std::string SerializeSubtree(const Document& doc, NodeId node,
                             const SerializeOptions& options = {});

}  // namespace gkx::xml

#endif  // GKX_XML_SERIALIZER_HPP_
