// Synthetic document workloads for tests and experiments: uniformly random
// recursive trees (with controllable depth bias, tag alphabet, labels, and
// text), balanced b-ary trees, and chains.

#ifndef GKX_XML_GENERATOR_HPP_
#define GKX_XML_GENERATOR_HPP_

#include "base/rng.hpp"
#include "xml/document.hpp"
#include "xml/edit.hpp"

namespace gkx::xml {

struct RandomDocumentOptions {
  /// Total number of element nodes (>= 1, including the root).
  int32_t node_count = 50;
  /// Tags are drawn from {t0, ..., t<alphabet-1>}.
  int32_t tag_alphabet = 4;
  /// Zipf skew for tag popularity: 0 = uniform (byte-identical to the
  /// historical generator), s > 0 makes t0 the most common tag with
  /// P(t_k) ∝ 1/(k+1)^s — realistic corpora are heavily skewed.
  double tag_zipf_s = 0.0;
  /// Each node gets UniformInt(0, max_extra_labels) extra labels drawn from
  /// {l0, ..., l<label_alphabet-1>}.
  int32_t max_extra_labels = 0;
  int32_t label_alphabet = 4;
  /// Probability that a node carries a short numeric text payload.
  double text_probability = 0.2;
  /// 0.0 = attach each node to a uniformly random existing node (random
  /// recursive tree, expected depth O(log n)); 1.0 = always attach to the
  /// previously inserted node (a chain). Values in between interpolate.
  double chain_bias = 0.0;
};

/// Random document; deterministic in (*rng) state.
Document RandomDocument(Rng* rng, const RandomDocumentOptions& options = {});

/// Complete `fanout`-ary tree of the given depth (depth 0 = root only).
/// Tags cycle by depth: t0 at the root, t1 below, ...
Document BalancedDocument(int32_t fanout, int32_t depth, int32_t tag_alphabet = 4);

/// Chain of `length` nodes (length >= 1), tags cycling over the alphabet.
Document ChainDocument(int32_t length, int32_t tag_alphabet = 4);

/// The paper's Theorem 3.2 document *shape*: a root with `width` children,
/// each child having exactly one grandchild (depth 2). Tags cycle.
Document WideShallowDocument(int32_t width, int32_t tag_alphabet = 4);

struct RandomEditOptions {
  /// Node-count bounds for replacement/inserted subtrees.
  int32_t min_subtree_nodes = 1;
  int32_t max_subtree_nodes = 8;
  /// Shape/alphabet knobs for generated subtrees (node_count is overridden
  /// per draw). Sharing the document's options keeps the edit's names
  /// overlapping the rest of the corpus — the regime delta-local
  /// invalidation is built for.
  RandomDocumentOptions subtree_options;
  /// Relative weights of the edit kinds. Removal is skipped automatically
  /// on single-node documents (the root cannot be removed).
  double replace_weight = 0.35;
  double insert_weight = 0.20;
  double remove_weight = 0.15;
  double set_text_weight = 0.20;
  double relabel_weight = 0.10;
};

/// A random, always-applicable subtree edit against `doc`; deterministic in
/// (*rng) state. Targets are uniform over the applicable nodes.
SubtreeEdit RandomSubtreeEdit(Rng* rng, const Document& doc,
                              const RandomEditOptions& options = {});

}  // namespace gkx::xml

#endif  // GKX_XML_GENERATOR_HPP_
