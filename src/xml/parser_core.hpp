// The event-driven core shared by the two parsing frontends. ParseDocument
// (parser.cpp) feeds events into a TreeBuilder; ParseDocumentStreaming
// (stream_parser.cpp) feeds the same events straight into the SoA arena and
// its posting lists. Keeping one lexer/control-flow means the frontends
// cannot disagree on the accepted language, entity decoding, whitespace
// stripping, or error positions — the differential fuzz suite then only has
// to catch sink bugs, not grammar drift.
//
// Sink contract (all calls strictly nested, elements open/close like the
// source text):
//   void StartElement(std::string_view tag);       // also the root
//   void AddAttribute(std::string_view name, std::string_view value);
//   void AddLabel(std::string_view label);         // labels_attribute entry
//   void AppendText(std::string_view text);        // innermost open element
//   void EndElement();                             // matches StartElement
// Attribute/label events arrive between an element's StartElement and its
// first child/text/EndElement event. Text arrives decoded (and per-chunk
// trimmed under strip_whitespace_text); CDATA content arrives verbatim.

#ifndef GKX_XML_PARSER_CORE_HPP_
#define GKX_XML_PARSER_CORE_HPP_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hpp"
#include "base/string_util.hpp"
#include "xml/parser.hpp"

namespace gkx::xml::parser_internal {

inline bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

inline bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

inline bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '.' || c == '-';
}

/// Cheap pre-scan element-count estimate: every open tag is a '<' followed
/// by a name-start character. Over-counts matches inside comments/CDATA and
/// counts nothing else, so it is a good reserve() hint, not a promise.
inline int32_t EstimateNodeCount(std::string_view xml) {
  int64_t count = 0;
  for (size_t i = 0; i + 1 < xml.size(); ++i) {
    if (xml[i] == '<' && IsNameStart(xml[i + 1])) ++count;
  }
  return static_cast<int32_t>(
      std::min<int64_t>(count, std::numeric_limits<int32_t>::max()));
}

template <typename Sink>
class EventParser {
 public:
  EventParser(std::string_view xml, const ParseOptions& options, Sink* sink)
      : xml_(xml), options_(options), sink_(sink) {}

  Status Run() {
    SkipMisc(/*allow_doctype=*/true);
    if (AtEnd()) return Error("document has no root element");
    if (Peek() != '<') return Error("expected root element");

    bool have_root = false;

    while (!AtEnd()) {
      if (Peek() == '<') {
        if (Match("<!--")) {
          GKX_RETURN_IF_ERROR(SkipUntil("-->", "unterminated comment"));
        } else if (Match("<![CDATA[")) {
          size_t start = pos_;
          GKX_RETURN_IF_ERROR(SkipUntil("]]>", "unterminated CDATA section"));
          if (!open_names_.empty()) {
            // CDATA content is verbatim: no entity decoding, no trimming.
            sink_->AppendText(xml_.substr(start, pos_ - 3 - start));
          }
        } else if (Match("<?")) {
          GKX_RETURN_IF_ERROR(
              SkipUntil("?>", "unterminated processing instruction"));
        } else if (Match("</")) {
          std::string name;
          GKX_RETURN_IF_ERROR(ReadName(&name));
          SkipSpace();
          if (!Match(">")) return Error("expected '>' in closing tag");
          if (open_names_.empty()) {
            return Error("closing tag without open element");
          }
          // Tag-name match check against the element being closed.
          if (open_names_.back() != name) {
            return Error("mismatched closing tag </" + name +
                         ">, expected </" + open_names_.back() + ">");
          }
          open_names_.pop_back();
          sink_->EndElement();
          if (open_names_.empty()) {
            SkipMisc(/*allow_doctype=*/false);
            if (!AtEnd()) return Error("content after root element");
            break;
          }
        } else {
          ++pos_;  // consume '<'
          std::string name;
          GKX_RETURN_IF_ERROR(ReadName(&name));
          if (have_root && open_names_.empty()) {
            return Error("multiple root elements");
          }
          have_root = true;
          sink_->StartElement(name);
          GKX_RETURN_IF_ERROR(ReadAttributes());
          SkipSpace();
          if (Match("/>")) {
            sink_->EndElement();
            if (open_names_.empty()) {  // self-closing root
              SkipMisc(/*allow_doctype=*/false);
              if (!AtEnd()) return Error("content after root element");
              break;
            }
          } else if (Match(">")) {
            open_names_.push_back(name);
          } else {
            return Error("expected '>' or '/>' in tag");
          }
        }
      } else {
        size_t start = pos_;
        while (!AtEnd() && Peek() != '<') ++pos_;
        if (open_names_.empty()) {
          std::string_view gap = xml_.substr(start, pos_ - start);
          if (!StripWhitespace(gap).empty()) {
            return Error("text outside of root element");
          }
          continue;
        }
        std::string text;
        GKX_RETURN_IF_ERROR(
            DecodeText(xml_.substr(start, pos_ - start), &text));
        if (options_.strip_whitespace_text) {
          // Trim each chunk: indentation around markup is not content.
          std::string trimmed(StripWhitespace(text));
          if (!trimmed.empty()) sink_->AppendText(trimmed);
        } else {
          sink_->AppendText(text);
        }
      }
    }
    if (!open_names_.empty()) {
      return Error("unterminated element <" + open_names_.back() + ">");
    }
    if (!have_root) return Error("document has no root element");
    return Status::Ok();
  }

 private:
  bool AtEnd() const { return pos_ >= xml_.size(); }
  char Peek() const { return xml_[pos_]; }

  bool Match(std::string_view token) {
    if (xml_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) ++pos_;
  }

  /// Skips whitespace, comments, PIs (and optionally one DOCTYPE) between
  /// top-level constructs.
  void SkipMisc(bool allow_doctype) {
    while (true) {
      SkipSpace();
      if (Match("<!--")) {
        (void)SkipUntil("-->", "");
      } else if (Match("<?")) {
        (void)SkipUntil("?>", "");
      } else if (allow_doctype && xml_.substr(pos_, 9) == "<!DOCTYPE") {
        // Skip to the matching '>' (tolerating an internal subset in [...]).
        int bracket_depth = 0;
        while (!AtEnd()) {
          char c = xml_[pos_++];
          if (c == '[') ++bracket_depth;
          if (c == ']') --bracket_depth;
          if (c == '>' && bracket_depth == 0) break;
        }
      } else {
        return;
      }
    }
  }

  Status SkipUntil(std::string_view terminator, std::string_view error) {
    size_t found = xml_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      pos_ = xml_.size();
      return error.empty() ? Status::Ok() : Error(std::string(error));
    }
    pos_ = found + terminator.size();
    return Status::Ok();
  }

  Status ReadName(std::string* out) {
    if (AtEnd() || !IsNameStart(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    *out = std::string(xml_.substr(start, pos_ - start));
    return Status::Ok();
  }

  Status ReadAttributes() {
    while (true) {
      size_t before = pos_;
      SkipSpace();
      if (AtEnd() || !IsNameStart(Peek())) {
        pos_ = before;
        SkipSpace();
        return Status::Ok();
      }
      std::string name;
      GKX_RETURN_IF_ERROR(ReadName(&name));
      SkipSpace();
      if (!Match("=")) return Error("expected '=' after attribute name");
      SkipSpace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated attribute value");
      std::string value;
      GKX_RETURN_IF_ERROR(DecodeText(xml_.substr(start, pos_ - start), &value));
      ++pos_;  // closing quote
      if (!options_.labels_attribute.empty() &&
          name == options_.labels_attribute) {
        for (const std::string& label : Split(value, ' ')) {
          if (!label.empty()) sink_->AddLabel(label);
        }
      } else {
        sink_->AddAttribute(name, value);
      }
    }
  }

  Status DecodeText(std::string_view raw, std::string* out) {
    out->reserve(out->size() + raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out->push_back('<');
      } else if (entity == "gt") {
        out->push_back('>');
      } else if (entity == "amp") {
        out->push_back('&');
      } else if (entity == "quot") {
        out->push_back('"');
      } else if (entity == "apos") {
        out->push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        uint32_t code = 0;
        bool ok = false;
        std::string_view digits = entity.substr(1);
        int base = 10;
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits = digits.substr(1);
        }
        for (char c : digits) {
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (base == 16 && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (base == 16 && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return Error("bad character reference");
          }
          code =
              code * static_cast<uint32_t>(base) + static_cast<uint32_t>(digit);
          ok = true;
        }
        if (!ok || code > 0x10FFFF) return Error("bad character reference");
        AppendUtf8(code, out);
      } else {
        return Error("unknown entity &" + std::string(entity) + ";");
      }
      i = semi + 1;
    }
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status Error(std::string message) const {
    // Compute 1-based line/column of pos_.
    int line = 1;
    int col = 1;
    for (size_t i = 0; i < pos_ && i < xml_.size(); ++i) {
      if (xml_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return InvalidArgumentError(
        "XML parse error at line " + std::to_string(line) + ", column " +
        std::to_string(col) + ": " + message);
  }

  std::string_view xml_;
  const ParseOptions& options_;
  Sink* sink_;
  size_t pos_ = 0;
  std::vector<std::string> open_names_;
};

}  // namespace gkx::xml::parser_internal

#endif  // GKX_XML_PARSER_CORE_HPP_
