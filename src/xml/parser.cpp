#include "xml/parser.hpp"

#include <utility>
#include <vector>

#include "xml/builder.hpp"
#include "xml/parser_core.hpp"

namespace gkx::xml {
namespace {

/// Event sink feeding a TreeBuilder (the DOM-building frontend).
class BuilderSink {
 public:
  explicit BuilderSink(int32_t reserve_hint)
      : builder_(""), reserve_hint_(reserve_hint) {}

  void StartElement(std::string_view tag) {
    BuildNodeId node;
    if (!have_root_) {
      // Retag the placeholder root, applying the pre-scan reserve hint.
      builder_ = TreeBuilder(tag);
      builder_.Reserve(reserve_hint_);
      node = builder_.root();
      have_root_ = true;
    } else {
      node = builder_.AddChild(open_.back(), tag);
    }
    open_.push_back(node);
  }

  void AddAttribute(std::string_view name, std::string_view value) {
    builder_.AddAttribute(open_.back(), name, value);
  }

  void AddLabel(std::string_view label) {
    builder_.AddLabel(open_.back(), label);
  }

  void AppendText(std::string_view text) {
    builder_.AppendText(open_.back(), text);
  }

  void EndElement() { open_.pop_back(); }

  Document Finish() && { return std::move(builder_).Build(); }

 private:
  TreeBuilder builder_;
  int32_t reserve_hint_ = 0;
  bool have_root_ = false;
  std::vector<BuildNodeId> open_;
};

}  // namespace

Result<Document> ParseDocument(std::string_view xml,
                               const ParseOptions& options) {
  BuilderSink sink(parser_internal::EstimateNodeCount(xml));
  parser_internal::EventParser<BuilderSink> parser(xml, options, &sink);
  GKX_RETURN_IF_ERROR(parser.Run());
  return std::move(sink).Finish();
}

}  // namespace gkx::xml
