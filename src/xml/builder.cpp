#include "xml/builder.hpp"

#include <algorithm>
#include <utility>

namespace gkx::xml {

TreeBuilder::TreeBuilder(std::string_view root_tag) {
  nodes_.push_back(PendingNode{std::string(root_tag), {}, {}, {}, {}});
}

TreeBuilder::PendingNode& TreeBuilder::At(BuildNodeId id) {
  GKX_CHECK(id >= 0 && id < size());
  return nodes_[static_cast<size_t>(id)];
}

BuildNodeId TreeBuilder::AddChild(BuildNodeId parent, std::string_view tag) {
  BuildNodeId id = size();
  At(parent).children.push_back(id);
  nodes_.push_back(PendingNode{std::string(tag), {}, {}, {}, {}});
  return id;
}

BuildNodeId TreeBuilder::AddChain(BuildNodeId top, std::string_view tag,
                                  int32_t length) {
  GKX_CHECK_GE(length, 1);
  BuildNodeId current = top;
  for (int32_t i = 0; i < length; ++i) current = AddChild(current, tag);
  return current;
}

void TreeBuilder::AddLabel(BuildNodeId node, std::string_view label) {
  auto& labels = At(node).labels;
  if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
    labels.emplace_back(label);
  }
}

void TreeBuilder::SetText(BuildNodeId node, std::string_view text) {
  At(node).text = std::string(text);
}

void TreeBuilder::AppendText(BuildNodeId node, std::string_view text) {
  At(node).text += text;
}

void TreeBuilder::AddAttribute(BuildNodeId node, std::string_view name,
                               std::string_view value) {
  At(node).attributes.push_back(Attribute{std::string(name), std::string(value)});
}

Document TreeBuilder::Build() && {
  Document doc;
  doc.nodes_.reserve(nodes_.size());

  // Iterative preorder DFS: documents can be deep chains (the reductions
  // build Θ(n)-deep spines), so no recursion.
  struct Frame {
    BuildNodeId build_id;
    NodeId parent;
    int32_t depth;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, kNullNode, 0});
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    PendingNode& pending = nodes_[static_cast<size_t>(frame.build_id)];

    NodeId id = static_cast<NodeId>(doc.nodes_.size());
    doc.nodes_.emplace_back();
    Node& node = doc.nodes_.back();
    node.parent = frame.parent;
    node.depth = frame.depth;
    node.tag = doc.InternName(pending.tag);
    node.text = std::move(pending.text);
    node.attributes = std::move(pending.attributes);
    for (const std::string& label : pending.labels) {
      NameId name = doc.InternName(label);
      if (name != node.tag) node.labels.push_back(name);
    }
    std::sort(node.labels.begin(), node.labels.end());
    node.labels.erase(std::unique(node.labels.begin(), node.labels.end()),
                      node.labels.end());

    if (frame.parent != kNullNode) {
      Node& parent = doc.nodes_[static_cast<size_t>(frame.parent)];
      if (parent.first_child == kNullNode) {
        parent.first_child = id;
      } else {
        doc.nodes_[static_cast<size_t>(parent.last_child)].next_sibling = id;
        node.prev_sibling = parent.last_child;
      }
      parent.last_child = id;
    }

    // Push children in reverse so they pop in document order.
    for (auto it = pending.children.rbegin(); it != pending.children.rend(); ++it) {
      stack.push_back(Frame{*it, id, frame.depth + 1});
    }
  }

  // subtree_size: children have larger preorder ids, so a reverse sweep
  // accumulates sizes bottom-up.
  for (NodeId v = static_cast<NodeId>(doc.nodes_.size()) - 1; v > 0; --v) {
    doc.nodes_[static_cast<size_t>(doc.nodes_[static_cast<size_t>(v)].parent)]
        .subtree_size += doc.nodes_[static_cast<size_t>(v)].subtree_size;
  }
  return doc;
}

}  // namespace gkx::xml
