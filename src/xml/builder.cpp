#include "xml/builder.hpp"

#include <algorithm>
#include <utility>

namespace gkx::xml {

TreeBuilder::TreeBuilder(std::string_view root_tag) {
  nodes_.push_back(PendingNode{std::string(root_tag), {}, {}, {}, {}});
}

void TreeBuilder::Reserve(int32_t node_count) {
  if (node_count > 0) nodes_.reserve(static_cast<size_t>(node_count));
}

TreeBuilder::PendingNode& TreeBuilder::At(BuildNodeId id) {
  GKX_CHECK(id >= 0 && id < size());
  return nodes_[static_cast<size_t>(id)];
}

BuildNodeId TreeBuilder::AddChild(BuildNodeId parent, std::string_view tag) {
  BuildNodeId id = size();
  At(parent).children.push_back(id);
  nodes_.push_back(PendingNode{std::string(tag), {}, {}, {}, {}});
  return id;
}

BuildNodeId TreeBuilder::AddChain(BuildNodeId top, std::string_view tag,
                                  int32_t length) {
  GKX_CHECK_GE(length, 1);
  BuildNodeId current = top;
  for (int32_t i = 0; i < length; ++i) current = AddChild(current, tag);
  return current;
}

void TreeBuilder::AddLabel(BuildNodeId node, std::string_view label) {
  auto& labels = At(node).labels;
  if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
    labels.emplace_back(label);
  }
}

void TreeBuilder::SetText(BuildNodeId node, std::string_view text) {
  At(node).text = std::string(text);
}

void TreeBuilder::AppendText(BuildNodeId node, std::string_view text) {
  At(node).text += text;
}

void TreeBuilder::AddAttribute(BuildNodeId node, std::string_view name,
                               std::string_view value) {
  At(node).attributes.push_back(Attribute{std::string(name), std::string(value)});
}

Document TreeBuilder::Build() && {
  Document doc;
  Document::Owned& a = doc.owned_;
  const size_t n = nodes_.size();
  a.parent.reserve(n);
  a.first_child.reserve(n);
  a.last_child.reserve(n);
  a.prev_sibling.reserve(n);
  a.next_sibling.reserve(n);
  a.subtree_size.reserve(n);
  a.depth.reserve(n);
  a.tag.reserve(n);
  a.text_span.reserve(n);
  a.label_span.reserve(n);
  a.attr_span.reserve(n);

  // Iterative preorder DFS: documents can be deep chains (the reductions
  // build Θ(n)-deep spines), so no recursion.
  struct Frame {
    BuildNodeId build_id;
    NodeId parent;
    int32_t depth;
  };
  std::vector<NameId> label_ids;
  std::vector<Frame> stack;
  stack.push_back(Frame{0, kNullNode, 0});
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    PendingNode& pending = nodes_[static_cast<size_t>(frame.build_id)];

    const NodeId id = static_cast<NodeId>(a.parent.size());
    a.parent.push_back(frame.parent);
    a.first_child.push_back(kNullNode);
    a.last_child.push_back(kNullNode);
    a.prev_sibling.push_back(kNullNode);
    a.next_sibling.push_back(kNullNode);
    a.subtree_size.push_back(1);
    a.depth.push_back(frame.depth);
    const NameId tag = doc.InternName(pending.tag);
    a.tag.push_back(tag);

    a.text_span.push_back(doc.AppendHeapBytes(pending.text));

    label_ids.clear();
    for (const std::string& label : pending.labels) {
      NameId name = doc.InternName(label);
      if (name != tag) label_ids.push_back(name);
    }
    std::sort(label_ids.begin(), label_ids.end());
    label_ids.erase(std::unique(label_ids.begin(), label_ids.end()),
                    label_ids.end());
    a.label_span.push_back(
        PayloadSpan{static_cast<uint32_t>(a.label_pool.size()),
                    static_cast<uint32_t>(label_ids.size())});
    a.label_pool.insert(a.label_pool.end(), label_ids.begin(), label_ids.end());

    a.attr_span.push_back(
        PayloadSpan{static_cast<uint32_t>(a.attr_pool.size()),
                    static_cast<uint32_t>(pending.attributes.size())});
    for (const Attribute& attr : pending.attributes) {
      a.attr_pool.push_back(doc.MakeAttrEntry(attr.name, attr.value));
    }

    if (frame.parent != kNullNode) {
      const size_t p = static_cast<size_t>(frame.parent);
      if (a.first_child[p] == kNullNode) {
        a.first_child[p] = id;
      } else {
        a.next_sibling[static_cast<size_t>(a.last_child[p])] = id;
        a.prev_sibling[static_cast<size_t>(id)] = a.last_child[p];
      }
      a.last_child[p] = id;
    }

    // Push children in reverse so they pop in document order.
    for (auto it = pending.children.rbegin(); it != pending.children.rend(); ++it) {
      stack.push_back(Frame{*it, id, frame.depth + 1});
    }
  }

  // subtree_size: children have larger preorder ids, so a reverse sweep
  // accumulates sizes bottom-up.
  for (NodeId v = static_cast<NodeId>(a.parent.size()) - 1; v > 0; --v) {
    a.subtree_size[static_cast<size_t>(a.parent[static_cast<size_t>(v)])] +=
        a.subtree_size[static_cast<size_t>(v)];
  }
  doc.SealViews();
  return doc;
}

}  // namespace gkx::xml
