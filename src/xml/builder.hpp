// Incremental tree construction. The builder accepts nodes in any order
// (children appended to any existing node) and produces a preorder-numbered
// immutable Document. Used by the XML parser, the workload generators, and
// every hardness reduction.

#ifndef GKX_XML_BUILDER_HPP_
#define GKX_XML_BUILDER_HPP_

#include <string>
#include <string_view>
#include <vector>

#include "xml/document.hpp"

namespace gkx::xml {

/// Builder-local node handle (NOT a Document NodeId; preorder ids are
/// assigned at Build() time).
using BuildNodeId = int32_t;

/// Builds Documents programmatically. Typical use:
///   TreeBuilder b("root");
///   BuildNodeId a = b.AddChild(b.root(), "a");
///   b.AddLabel(a, "G");
///   Document doc = std::move(b).Build();
class TreeBuilder {
 public:
  /// Starts a document whose root element has the given tag.
  explicit TreeBuilder(std::string_view root_tag);

  /// Handle of the root element.
  BuildNodeId root() const { return 0; }

  /// Pre-reserves capacity for `node_count` nodes (parser pre-scan sizing).
  void Reserve(int32_t node_count);

  /// Appends a new last child with the given tag; returns its handle.
  BuildNodeId AddChild(BuildNodeId parent, std::string_view tag);

  /// Appends a chain child/grandchild/... of `length` nodes all tagged `tag`
  /// below `top`; returns the deepest node. Requires length >= 1.
  BuildNodeId AddChain(BuildNodeId top, std::string_view tag, int32_t length);

  /// Adds an extra label (Remark 3.1 multi-labels). Duplicates are ignored.
  void AddLabel(BuildNodeId node, std::string_view label);

  /// Sets the direct text content.
  void SetText(BuildNodeId node, std::string_view text);

  /// Appends to the direct text content.
  void AppendText(BuildNodeId node, std::string_view text);

  /// Appends an attribute.
  void AddAttribute(BuildNodeId node, std::string_view name, std::string_view value);

  /// Number of nodes added so far.
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  /// Produces the preorder Document. The builder is consumed.
  Document Build() &&;

 private:
  struct PendingNode {
    std::string tag;
    std::vector<std::string> labels;
    std::vector<Attribute> attributes;
    std::string text;
    std::vector<BuildNodeId> children;
  };

  PendingNode& At(BuildNodeId id);

  std::vector<PendingNode> nodes_;
};

}  // namespace gkx::xml

#endif  // GKX_XML_BUILDER_HPP_
