#include "xml/document.hpp"

#include <algorithm>

namespace gkx::xml {

NameId Document::FindName(std::string_view name) const {
  auto it = name_ids_.find(std::string(name));
  return it == name_ids_.end() ? kNoName : it->second;
}

NameId Document::InternName(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

PayloadSpan Document::AppendHeapBytes(std::string_view bytes) {
  GKX_CHECK(mapping_ == nullptr);
  GKX_CHECK(owned_.heap.size() + bytes.size() <= UINT32_MAX);
  const PayloadSpan span{static_cast<uint32_t>(owned_.heap.size()),
                         static_cast<uint32_t>(bytes.size())};
  owned_.heap.insert(owned_.heap.end(), bytes.begin(), bytes.end());
  return span;
}

AttrEntry Document::MakeAttrEntry(std::string_view name,
                                  std::string_view value) {
  const PayloadSpan n = AppendHeapBytes(name);
  const PayloadSpan v = AppendHeapBytes(value);
  return AttrEntry{n.offset, n.length, v.offset, v.length};
}

void Document::SealViews() {
  GKX_CHECK(mapping_ == nullptr);
  v_.parent = owned_.parent.data();
  v_.first_child = owned_.first_child.data();
  v_.last_child = owned_.last_child.data();
  v_.prev_sibling = owned_.prev_sibling.data();
  v_.next_sibling = owned_.next_sibling.data();
  v_.subtree_size = owned_.subtree_size.data();
  v_.depth = owned_.depth.data();
  v_.tag = owned_.tag.data();
  v_.text_span = owned_.text_span.data();
  v_.label_span = owned_.label_span.data();
  v_.attr_span = owned_.attr_span.data();
  v_.label_pool = owned_.label_pool.data();
  v_.attr_pool = owned_.attr_pool.data();
  v_.heap = owned_.heap.data();
  v_.size = static_cast<int32_t>(owned_.parent.size());
  v_.label_pool_size = owned_.label_pool.size();
  v_.attr_pool_size = owned_.attr_pool.size();
  v_.heap_size = owned_.heap.size();
}

void Document::CopyFrom(const Document& other) {
  // Copy through the views, not the owned vectors: this materializes owned
  // storage whether `other` is owned or mapped.
  const Views& o = other.v_;
  const size_t n = static_cast<size_t>(o.size);
  owned_.parent.assign(o.parent, o.parent + n);
  owned_.first_child.assign(o.first_child, o.first_child + n);
  owned_.last_child.assign(o.last_child, o.last_child + n);
  owned_.prev_sibling.assign(o.prev_sibling, o.prev_sibling + n);
  owned_.next_sibling.assign(o.next_sibling, o.next_sibling + n);
  owned_.subtree_size.assign(o.subtree_size, o.subtree_size + n);
  owned_.depth.assign(o.depth, o.depth + n);
  owned_.tag.assign(o.tag, o.tag + n);
  owned_.text_span.assign(o.text_span, o.text_span + n);
  owned_.label_span.assign(o.label_span, o.label_span + n);
  owned_.attr_span.assign(o.attr_span, o.attr_span + n);
  owned_.label_pool.assign(o.label_pool, o.label_pool + o.label_pool_size);
  owned_.attr_pool.assign(o.attr_pool, o.attr_pool + o.attr_pool_size);
  owned_.heap.assign(o.heap, o.heap + o.heap_size);
  names_ = other.names_;
  name_ids_ = other.name_ids_;
  mapping_.reset();
  identity_ = IdentitySerial();  // copies are new bind identities
  SealViews();
}

bool Document::NodeHasName(NodeId id, NameId name) const {
  if (tag(id) == name) return true;
  const std::span<const NameId> l = labels(id);
  return std::binary_search(l.begin(), l.end(), name);
}

std::string_view Document::AttributeValue(NodeId id,
                                          std::string_view name) const {
  const int32_t count = attribute_count(id);
  for (int32_t i = 0; i < count; ++i) {
    const AttributeRef attr = attribute(id, i);
    if (attr.name == name) return attr.value;
  }
  return {};
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child(id); c != kNullNode; c = next_sibling(c)) {
    out.push_back(c);
  }
  return out;
}

int32_t Document::ChildCount(NodeId id) const {
  int32_t count = 0;
  for (NodeId c = first_child(id); c != kNullNode; c = next_sibling(c)) {
    ++count;
  }
  return count;
}

std::string Document::StringValue(NodeId id) const {
  std::string out;
  const NodeId end = id + subtree_size(id);
  for (NodeId v = id; v < end; ++v) out += text(v);
  return out;
}

DocumentStats Document::Stats() const {
  DocumentStats stats;
  stats.node_count = size();
  for (NodeId v = 0; v < size(); ++v) {
    stats.max_depth = std::max(stats.max_depth, depth(v));
    stats.label_count += static_cast<int64_t>(labels(v).size());
    stats.max_fanout = std::max(stats.max_fanout, ChildCount(v));
  }
  return stats;
}

int64_t Document::ArenaBytes() const {
  const int64_t n = size();
  return n * static_cast<int64_t>(5 * sizeof(NodeId) + 2 * sizeof(int32_t) +
                                  sizeof(NameId) + 3 * sizeof(PayloadSpan)) +
         static_cast<int64_t>(v_.label_pool_size * sizeof(NameId)) +
         static_cast<int64_t>(v_.attr_pool_size * sizeof(AttrEntry)) +
         static_cast<int64_t>(v_.heap_size);
}

bool Document::StructurallyEquals(const Document& other) const {
  if (size() != other.size()) return false;
  for (NodeId v = 0; v < size(); ++v) {
    if (parent(v) != other.parent(v) || text(v) != other.text(v)) return false;
    if (TagName(v) != other.TagName(v)) return false;
    const std::span<const NameId> la = labels(v);
    const std::span<const NameId> lb = other.labels(v);
    if (la.size() != lb.size()) return false;
    // Labels are sorted by per-document NameId, whose order depends on
    // interning history — compare as sets of names.
    std::vector<std::string_view> a_names;
    std::vector<std::string_view> b_names;
    for (NameId name : la) a_names.push_back(NameText(name));
    for (NameId name : lb) b_names.push_back(other.NameText(name));
    std::sort(a_names.begin(), a_names.end());
    std::sort(b_names.begin(), b_names.end());
    if (a_names != b_names) return false;
    if (attribute_count(v) != other.attribute_count(v)) return false;
    for (int32_t i = 0; i < attribute_count(v); ++i) {
      const AttributeRef a = attribute(v, i);
      const AttributeRef b = other.attribute(v, i);
      if (a.name != b.name || a.value != b.value) return false;
    }
  }
  return true;
}

}  // namespace gkx::xml
