#include "xml/document.hpp"

#include <algorithm>

namespace gkx::xml {

NameId Document::FindName(std::string_view name) const {
  auto it = name_ids_.find(std::string(name));
  return it == name_ids_.end() ? kNoName : it->second;
}

NameId Document::InternName(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) return it->second;
  NameId id = static_cast<NameId>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

bool Document::NodeHasName(NodeId id, NameId name) const {
  const Node& n = node(id);
  if (n.tag == name) return true;
  return std::binary_search(n.labels.begin(), n.labels.end(), name);
}

std::string_view Document::AttributeValue(NodeId id, std::string_view name) const {
  for (const Attribute& attr : node(id).attributes) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c = node(id).first_child; c != kNullNode; c = node(c).next_sibling) {
    out.push_back(c);
  }
  return out;
}

int32_t Document::ChildCount(NodeId id) const {
  int32_t count = 0;
  for (NodeId c = node(id).first_child; c != kNullNode; c = node(c).next_sibling) {
    ++count;
  }
  return count;
}

std::string Document::StringValue(NodeId id) const {
  std::string out;
  const NodeId end = id + node(id).subtree_size;
  for (NodeId v = id; v < end; ++v) out += node(v).text;
  return out;
}

DocumentStats Document::Stats() const {
  DocumentStats stats;
  stats.node_count = size();
  for (const Node& n : nodes_) {
    stats.max_depth = std::max(stats.max_depth, n.depth);
    stats.label_count += static_cast<int64_t>(n.labels.size());
  }
  for (NodeId v = 0; v < size(); ++v) {
    stats.max_fanout = std::max(stats.max_fanout, ChildCount(v));
  }
  return stats;
}

bool Document::StructurallyEquals(const Document& other) const {
  if (size() != other.size()) return false;
  for (NodeId v = 0; v < size(); ++v) {
    const Node& a = node(v);
    const Node& b = other.node(v);
    if (a.parent != b.parent || a.text != b.text) return false;
    if (TagName(v) != other.TagName(v)) return false;
    if (a.labels.size() != b.labels.size()) return false;
    // Labels are sorted by per-document NameId, whose order depends on
    // interning history — compare as sets of names.
    std::vector<std::string_view> a_names;
    std::vector<std::string_view> b_names;
    for (NameId name : a.labels) a_names.push_back(NameText(name));
    for (NameId name : b.labels) b_names.push_back(other.NameText(name));
    std::sort(a_names.begin(), a_names.end());
    std::sort(b_names.begin(), b_names.end());
    if (a_names != b_names) return false;
    if (a.attributes.size() != b.attributes.size()) return false;
    for (size_t i = 0; i < a.attributes.size(); ++i) {
      if (a.attributes[i].name != b.attributes[i].name ||
          a.attributes[i].value != b.attributes[i].value) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace gkx::xml
