// The XML document substrate: an immutable tree of element nodes stored in
// preorder. This is exactly the data model the paper works over ("dom" is the
// set of element nodes, document order is preorder, and — per Remark 3.1 —
// a node may carry several labels). NodeId equals preorder rank, so
//   * descendants of v are the contiguous id range (v, v + subtree_size(v)),
//   * following(v) is [v + subtree_size(v), size()),
//   * document order is integer order on ids.
//
// Memory layout: a structure-of-arrays arena. The tree lives in parallel
// id-indexed columns —
//   parent | first_child | last_child | prev_sibling | next_sibling
//   subtree_size | depth | tag
// — so the linear-time sweeps (eval/core_linear_evaluator.cpp, the service's
// indexed PF path) stream exactly the 4-byte column they need instead of
// dragging a fat Node struct (labels vector, attributes vector, text string)
// through every cache line. The sparse payloads live in side tables: per-node
// POD spans (text_span / label_span / attr_span) into pooled arrays (a NameId
// label pool, an AttrEntry pool, one shared char heap), so a payload-free
// node costs zero heap objects and the columns are trivially copyable.
//
// Because every column and pool is a flat POD array addressed by offsets,
// the whole arena has a relocatable on-disk form: xml/snapshot.hpp saves it
// as one blob and memory-maps it straight back into serving with no fix-up
// pass — a mapped Document's views point into the mapping (kept alive by a
// shared handle) instead of owned vectors. Mapped documents are immutable;
// copying one (e.g. to edit it) materializes owned storage.

#ifndef GKX_XML_DOCUMENT_HPP_
#define GKX_XML_DOCUMENT_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/check.hpp"
#include "base/identity.hpp"

namespace gkx::xml {

/// Preorder rank of a node within its Document.
using NodeId = int32_t;

/// Sentinel for "no node" (absent parent/sibling/child).
inline constexpr NodeId kNullNode = -1;

/// Interned name id (tags and extra labels share one pool per document).
using NameId = int32_t;

/// Sentinel for a name that is not interned in the document.
inline constexpr NameId kNoName = -1;

/// An XML attribute as builder/test input (name is not interned; attributes
/// are payload, not navigation — the paper's fragments have no attribute
/// axis). Inside a Document attributes are stored as heap spans; this owning
/// form is what TreeBuilder accepts.
struct Attribute {
  std::string name;
  std::string value;
};

/// A (offset, length) window into one of the arena's pooled arrays. POD on
/// purpose: span columns are bulk-copied and memory-mapped verbatim.
struct PayloadSpan {
  uint32_t offset = 0;
  uint32_t length = 0;
};

/// One pooled attribute: name and value as windows into the char heap.
struct AttrEntry {
  uint32_t name_offset = 0;
  uint32_t name_length = 0;
  uint32_t value_offset = 0;
  uint32_t value_length = 0;
};

/// Non-owning view of one attribute, resolved against the heap.
struct AttributeRef {
  std::string_view name;
  std::string_view value;
};

/// Summary statistics used by experiment tables.
struct DocumentStats {
  int64_t node_count = 0;
  int32_t max_depth = 0;
  int32_t max_fanout = 0;
  int64_t label_count = 0;  // extra labels across all nodes
};

namespace internal {
class MappedSnapshot;  // snapshot.cpp: RAII mmap handle
}  // namespace internal

/// An immutable preorder element tree. Construct via TreeBuilder,
/// ParseDocument / ParseDocumentStream, or MapSnapshot; Documents are movable
/// and cheaply shareable by const ref.
class Document {
 public:
  Document() = default;
  /// Deep copy: materializes owned columns even when `other` is mapped.
  Document(const Document& other) { CopyFrom(other); }
  Document& operator=(const Document& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Document(Document&& other) noexcept
      : identity_(std::move(other.identity_)),
        owned_(std::move(other.owned_)),
        v_(other.v_),
        mapping_(std::move(other.mapping_)),
        names_(std::move(other.names_)),
        name_ids_(std::move(other.name_ids_)) {
    other.v_ = Views{};
  }
  Document& operator=(Document&& other) noexcept {
    if (this != &other) {
      identity_ = std::move(other.identity_);
      owned_ = std::move(other.owned_);
      v_ = other.v_;
      mapping_ = std::move(other.mapping_);
      names_ = std::move(other.names_);
      name_ids_ = std::move(other.name_ids_);
      other.v_ = Views{};
    }
    return *this;
  }

  /// Process-unique bind identity (base/identity.hpp). Evaluators that keep
  /// per-document caches across Bind calls compare (address, serial) — a
  /// match guarantees this is the exact object the cache was built against,
  /// even if the allocator recycled a freed document's address.
  uint64_t serial() const { return identity_.value(); }

  /// Root node id (always 0 for a non-empty document).
  NodeId root() const { return 0; }

  /// Number of element nodes.
  int32_t size() const { return v_.size; }

  bool empty() const { return v_.size == 0; }

  // ------------------------------------------------------------- columns
  // Per-node column accessors (bounds-checked; the dense sweeps use the raw
  // *_data() pointers below and supply their own range proofs).

  NodeId parent(NodeId id) const { return v_.parent[Checked(id)]; }
  NodeId first_child(NodeId id) const { return v_.first_child[Checked(id)]; }
  NodeId last_child(NodeId id) const { return v_.last_child[Checked(id)]; }
  NodeId prev_sibling(NodeId id) const { return v_.prev_sibling[Checked(id)]; }
  NodeId next_sibling(NodeId id) const { return v_.next_sibling[Checked(id)]; }
  int32_t subtree_size(NodeId id) const { return v_.subtree_size[Checked(id)]; }
  int32_t depth(NodeId id) const { return v_.depth[Checked(id)]; }
  NameId tag(NodeId id) const { return v_.tag[Checked(id)]; }

  /// Raw column pointers, each `size()` entries. The partitioned preorder-
  /// interval sweeps read these directly so a chunk touches one contiguous
  /// 4-byte-per-node stripe.
  const NodeId* parent_data() const { return v_.parent; }
  const NodeId* first_child_data() const { return v_.first_child; }
  const NodeId* last_child_data() const { return v_.last_child; }
  const NodeId* prev_sibling_data() const { return v_.prev_sibling; }
  const NodeId* next_sibling_data() const { return v_.next_sibling; }
  const int32_t* subtree_size_data() const { return v_.subtree_size; }
  const int32_t* depth_data() const { return v_.depth; }
  const NameId* tag_data() const { return v_.tag; }

  // ------------------------------------------------------------ payloads

  /// Extra labels (Remark 3.1), sorted ascending, disjoint from tag(id).
  std::span<const NameId> labels(NodeId id) const {
    const PayloadSpan s = v_.label_span[Checked(id)];
    return {v_.label_pool + s.offset, s.length};
  }

  /// Direct text content (all text children concatenated). Views into the
  /// arena heap; valid as long as the Document (or its mapping) lives.
  std::string_view text(NodeId id) const {
    const PayloadSpan s = v_.text_span[Checked(id)];
    return {v_.heap + s.offset, s.length};
  }

  int32_t attribute_count(NodeId id) const {
    return static_cast<int32_t>(v_.attr_span[Checked(id)].length);
  }

  AttributeRef attribute(NodeId id, int32_t index) const {
    const PayloadSpan s = v_.attr_span[Checked(id)];
    GKX_CHECK(index >= 0 && static_cast<uint32_t>(index) < s.length);
    const AttrEntry& e = v_.attr_pool[s.offset + static_cast<uint32_t>(index)];
    return {{v_.heap + e.name_offset, e.name_length},
            {v_.heap + e.value_offset, e.value_length}};
  }

  // ------------------------------------------------------------- queries

  /// Tag name of a node.
  std::string_view TagName(NodeId id) const { return NameText(tag(id)); }

  /// Text of an interned name id.
  std::string_view NameText(NameId name) const {
    GKX_CHECK(name >= 0 && name < static_cast<NameId>(names_.size()));
    return names_[static_cast<size_t>(name)];
  }

  /// Id of an interned name, or kNoName if this document never uses it.
  NameId FindName(std::string_view name) const;

  /// The interned name pool, indexed by NameId. TreeBuilder interns a name
  /// only when a node carries it; ApplyEdit (xml/edit.hpp) keeps the old
  /// pool so NameIds stay stable across edits, which can leave entries no
  /// node carries any more. The pool is therefore a cheap SUPERSET of the
  /// present names (exact for freshly built documents) — good enough for
  /// the mview changed-name fallback, which only ever over-invalidates;
  /// DocumentIndex::PresentNames is the exact set.
  const std::vector<std::string>& InternedNames() const { return names_; }

  /// True if the node's tag or any extra label equals `name`.
  bool NodeHasName(NodeId id, NameId name) const;

  /// Convenience: NodeHasName by string (kNoName-safe).
  bool NodeHasName(NodeId id, std::string_view name) const {
    NameId n = FindName(name);
    return n != kNoName && NodeHasName(id, n);
  }

  /// Attribute value or empty view if absent.
  std::string_view AttributeValue(NodeId id, std::string_view name) const;

  /// True if `ancestor` is an ancestor of `v` or v itself.
  bool IsAncestorOrSelf(NodeId ancestor, NodeId v) const {
    return ancestor <= v && v < ancestor + subtree_size(ancestor);
  }

  /// Children of a node in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// Number of children.
  int32_t ChildCount(NodeId id) const;

  /// XPath string-value: the node's direct text followed by the text of its
  /// descendants in document order. (Text is attached to elements in this
  /// model; see DESIGN.md for the approximation note.)
  std::string StringValue(NodeId id) const;

  DocumentStats Stats() const;

  /// Structural equality: same shape, tags, labels, attributes, and text.
  bool StructurallyEquals(const Document& other) const;

  // ------------------------------------------------------------ snapshots

  /// True when this document's columns view a memory-mapped snapshot
  /// (xml/snapshot.hpp) instead of owned vectors.
  bool mapped() const { return mapping_ != nullptr; }

  /// Total arena bytes (columns + pools + heap), i.e. the resident cost of
  /// the tree itself — and the payload size of a snapshot.
  int64_t ArenaBytes() const;

 private:
  friend class TreeBuilder;
  friend class EditSplicer;    // xml/edit.cpp: subtree splicing
  friend class StreamBuilder;  // xml/stream_parser.cpp: one-pass ingestion
  friend class SnapshotCodec;  // xml/snapshot.cpp: save/map

  /// Owned column storage. Empty (all vectors) for mapped documents.
  struct Owned {
    std::vector<NodeId> parent, first_child, last_child, prev_sibling,
        next_sibling;
    std::vector<int32_t> subtree_size, depth;
    std::vector<NameId> tag;
    std::vector<PayloadSpan> text_span, label_span, attr_span;
    std::vector<NameId> label_pool;
    std::vector<AttrEntry> attr_pool;
    std::vector<char> heap;
  };

  /// The read surface: raw pointers into either `owned_` or the mapping.
  struct Views {
    const NodeId* parent = nullptr;
    const NodeId* first_child = nullptr;
    const NodeId* last_child = nullptr;
    const NodeId* prev_sibling = nullptr;
    const NodeId* next_sibling = nullptr;
    const int32_t* subtree_size = nullptr;
    const int32_t* depth = nullptr;
    const NameId* tag = nullptr;
    const PayloadSpan* text_span = nullptr;
    const PayloadSpan* label_span = nullptr;
    const PayloadSpan* attr_span = nullptr;
    const NameId* label_pool = nullptr;
    const AttrEntry* attr_pool = nullptr;
    const char* heap = nullptr;
    int32_t size = 0;
    size_t label_pool_size = 0;
    size_t attr_pool_size = 0;
    size_t heap_size = 0;
  };

  NodeId Checked(NodeId id) const {
    GKX_CHECK(id >= 0 && id < v_.size);
    return id;
  }

  NameId InternName(std::string_view name);

  /// Appends bytes to the owned heap, returning their span. Offsets are
  /// uint32, so one arena holds at most 4 GiB of payload bytes (checked).
  PayloadSpan AppendHeapBytes(std::string_view bytes);

  /// Appends an attribute's name and value to the owned heap.
  AttrEntry MakeAttrEntry(std::string_view name, std::string_view value);

  /// Points the views at `owned_` (after any mutation of owned storage).
  void SealViews();

  /// Deep copy through `other`'s views into owned storage.
  void CopyFrom(const Document& other);

  IdentitySerial identity_;
  Owned owned_;
  Views v_;
  std::shared_ptr<internal::MappedSnapshot> mapping_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_ids_;
};

}  // namespace gkx::xml

#endif  // GKX_XML_DOCUMENT_HPP_
