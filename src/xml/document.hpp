// The XML document substrate: an immutable tree of element nodes stored in
// preorder. This is exactly the data model the paper works over ("dom" is the
// set of element nodes, document order is preorder, and — per Remark 3.1 —
// a node may carry several labels). NodeId equals preorder rank, so
//   * descendants of v are the contiguous id range (v, v + subtree_size(v)),
//   * following(v) is [v + subtree_size(v), size()),
//   * document order is integer order on ids.

#ifndef GKX_XML_DOCUMENT_HPP_
#define GKX_XML_DOCUMENT_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/check.hpp"
#include "base/identity.hpp"

namespace gkx::xml {

/// Preorder rank of a node within its Document.
using NodeId = int32_t;

/// Sentinel for "no node" (absent parent/sibling/child).
inline constexpr NodeId kNullNode = -1;

/// Interned name id (tags and extra labels share one pool per document).
using NameId = int32_t;

/// Sentinel for a name that is not interned in the document.
inline constexpr NameId kNoName = -1;

/// An XML attribute (name is not interned; attributes are payload, not
/// navigation — the paper's fragments have no attribute axis).
struct Attribute {
  std::string name;
  std::string value;
};

/// One element node. All tree links are NodeIds into the owning Document.
struct Node {
  NodeId parent = kNullNode;
  NodeId first_child = kNullNode;
  NodeId last_child = kNullNode;
  NodeId prev_sibling = kNullNode;
  NodeId next_sibling = kNullNode;
  /// Number of nodes in the subtree rooted here, including this node.
  int32_t subtree_size = 1;
  /// Root has depth 0.
  int32_t depth = 0;
  /// Primary tag (interned).
  NameId tag = 0;
  /// Extra labels (Remark 3.1), sorted ascending, disjoint from `tag`.
  std::vector<NameId> labels;
  std::vector<Attribute> attributes;
  /// Direct text content (all text children concatenated).
  std::string text;
};

/// Summary statistics used by experiment tables.
struct DocumentStats {
  int64_t node_count = 0;
  int32_t max_depth = 0;
  int32_t max_fanout = 0;
  int64_t label_count = 0;  // extra labels across all nodes
};

/// An immutable preorder element tree. Construct via TreeBuilder or
/// ParseDocument; Documents are movable and cheaply shareable by const ref.
class Document {
 public:
  /// Process-unique bind identity (base/identity.hpp). Evaluators that keep
  /// per-document caches across Bind calls compare (address, serial) — a
  /// match guarantees this is the exact object the cache was built against,
  /// even if the allocator recycled a freed document's address.
  uint64_t serial() const { return identity_.value(); }

  /// Root node id (always 0 for a non-empty document).
  NodeId root() const { return 0; }

  /// Number of element nodes.
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  bool empty() const { return nodes_.empty(); }

  const Node& node(NodeId id) const {
    GKX_CHECK(id >= 0 && id < size());
    return nodes_[static_cast<size_t>(id)];
  }

  /// Tag name of a node.
  std::string_view TagName(NodeId id) const { return NameText(node(id).tag); }

  /// Text of an interned name id.
  std::string_view NameText(NameId name) const {
    GKX_CHECK(name >= 0 && name < static_cast<NameId>(names_.size()));
    return names_[static_cast<size_t>(name)];
  }

  /// Id of an interned name, or kNoName if this document never uses it.
  NameId FindName(std::string_view name) const;

  /// The interned name pool, indexed by NameId. TreeBuilder interns a name
  /// only when a node carries it; ApplyEdit (xml/edit.hpp) keeps the old
  /// pool so NameIds stay stable across edits, which can leave entries no
  /// node carries any more. The pool is therefore a cheap SUPERSET of the
  /// present names (exact for freshly built documents) — good enough for
  /// the mview changed-name fallback, which only ever over-invalidates;
  /// DocumentIndex::PresentNames is the exact set.
  const std::vector<std::string>& InternedNames() const { return names_; }

  /// True if the node's tag or any extra label equals `name`.
  bool NodeHasName(NodeId id, NameId name) const;

  /// Convenience: NodeHasName by string (kNoName-safe).
  bool NodeHasName(NodeId id, std::string_view name) const {
    NameId n = FindName(name);
    return n != kNoName && NodeHasName(id, n);
  }

  /// Attribute value or empty view if absent.
  std::string_view AttributeValue(NodeId id, std::string_view name) const;

  /// True if `ancestor` is an ancestor of `v` or v itself.
  bool IsAncestorOrSelf(NodeId ancestor, NodeId v) const {
    return ancestor <= v && v < ancestor + node(ancestor).subtree_size;
  }

  /// Children of a node in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// Number of children.
  int32_t ChildCount(NodeId id) const;

  /// XPath string-value: the node's direct text followed by the text of its
  /// descendants in document order. (Text is attached to elements in this
  /// model; see DESIGN.md for the approximation note.)
  std::string StringValue(NodeId id) const;

  DocumentStats Stats() const;

  /// Structural equality: same shape, tags, labels, attributes, and text.
  bool StructurallyEquals(const Document& other) const;

 private:
  friend class TreeBuilder;
  friend class EditSplicer;  // xml/edit.cpp: subtree splicing

  NameId InternName(std::string_view name);

  IdentitySerial identity_;
  std::vector<Node> nodes_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NameId> name_ids_;
};

}  // namespace gkx::xml

#endif  // GKX_XML_DOCUMENT_HPP_
