// Relocatable on-disk form of the SoA arena. Because every column and pool
// is a flat POD array and every cross-reference is an offset (NodeId,
// NameId, PayloadSpan, AttrEntry), a snapshot is a straight dump of the
// arena sections behind a self-describing header — and mapping one back is
// mmap + pointer arithmetic, with NO fix-up pass over the payload. Cold
// first-query latency on a multi-GB document is therefore page-fault bound,
// not parse bound (measured in bench_hugedoc).
//
// The mapped Document's column views point into the mapping, which is kept
// alive by a shared handle; the interned-name table (small) is materialized
// at map time. Mapped documents are immutable — copying one materializes
// owned storage (e.g. before ApplyEdit).
//
// Safety: MapSnapshot validates magic, format version, header checksum, and
// that every section lies inside the actual file before publishing any
// pointer, so a truncated, version-bumped, or bit-flipped header fails with
// a clean InvalidArgument diagnostic instead of UB (xml_snapshot_test
// exercises the corruption matrix).

#ifndef GKX_XML_SNAPSHOT_HPP_
#define GKX_XML_SNAPSHOT_HPP_

#include <string>
#include <string_view>

#include "base/status.hpp"
#include "xml/document.hpp"

namespace gkx::xml {

/// Current snapshot format version; bumped on any layout change. Mapping a
/// snapshot with a different version fails cleanly.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Writes `doc`'s arena to `path` (atomically: temp file + rename).
Status SaveSnapshot(const Document& doc, const std::string& path);

/// Memory-maps a snapshot written by SaveSnapshot. The returned Document
/// serves queries directly out of the mapping.
Result<Document> MapSnapshot(const std::string& path);

/// Serializes `doc`'s arena into `out` — byte-identical to the file
/// SaveSnapshot writes, but in memory. The WAL uses this to embed whole
/// documents (Put payloads, edit subtrees) inside journal records.
void SaveSnapshotBytes(const Document& doc, std::string* out);

/// Decodes a snapshot byte string produced by SaveSnapshotBytes with the
/// same full validation MapSnapshot performs (magic, version, checksum,
/// section bounds). Returns an owned deep copy — the result does not alias
/// `bytes`. `label` names the source in error diagnostics.
Result<Document> LoadSnapshotBytes(std::string_view bytes,
                                   const std::string& label = "snapshot bytes");

}  // namespace gkx::xml

#endif  // GKX_XML_SNAPSHOT_HPP_
