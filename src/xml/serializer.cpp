#include "xml/serializer.hpp"

#include <vector>

#include "base/string_util.hpp"

namespace gkx::xml {
namespace {

void Indent(std::string* out, int levels, int width) {
  if (width <= 0) return;
  out->append(static_cast<size_t>(levels) * static_cast<size_t>(width), ' ');
}

void Newline(std::string* out, int width) {
  if (width > 0) out->push_back('\n');
}

void OpenTag(const Document& doc, NodeId id, const SerializeOptions& options,
             bool self_close, std::string* out) {
  out->push_back('<');
  out->append(doc.TagName(id));
  const std::span<const NameId> label_ids = doc.labels(id);
  if (!options.labels_attribute.empty() && !label_ids.empty()) {
    std::vector<std::string> labels;
    labels.reserve(label_ids.size());
    for (NameId label : label_ids) {
      labels.emplace_back(doc.NameText(label));
    }
    out->push_back(' ');
    out->append(options.labels_attribute);
    out->append("=\"");
    out->append(EscapeXml(Join(labels, " ")));
    out->push_back('"');
  }
  const int32_t attr_count = doc.attribute_count(id);
  for (int32_t i = 0; i < attr_count; ++i) {
    const AttributeRef attr = doc.attribute(id, i);
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeXml(attr.value));
    out->push_back('"');
  }
  out->append(self_close ? "/>" : ">");
}

}  // namespace

std::string SerializeDocument(const Document& doc, const SerializeOptions& options) {
  return SerializeSubtree(doc, doc.root(), options);
}

std::string SerializeSubtree(const Document& doc, NodeId root,
                             const SerializeOptions& options) {
  std::string out;
  if (doc.empty()) return out;

  // Iterative pre/post traversal — documents can be arbitrarily deep chains
  // (the reductions build Θ(n)-deep spines), so no recursion.
  struct Frame {
    NodeId node;
    bool closing;
  };
  std::vector<Frame> stack = {{root, false}};
  const int base_depth = doc.depth(root);
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const int level = doc.depth(frame.node) - base_depth;
    if (frame.closing) {
      Indent(&out, level, options.indent);
      out.append("</");
      out.append(doc.TagName(frame.node));
      out.push_back('>');
      Newline(&out, options.indent);
      continue;
    }

    const std::string_view text = doc.text(frame.node);
    const NodeId first_child = doc.first_child(frame.node);
    Indent(&out, level, options.indent);
    if (text.empty() && first_child == kNullNode) {
      OpenTag(doc, frame.node, options, /*self_close=*/true, &out);
      Newline(&out, options.indent);
      continue;
    }
    OpenTag(doc, frame.node, options, /*self_close=*/false, &out);
    if (first_child == kNullNode) {
      // Text-only element, kept on one line.
      out.append(EscapeXml(text));
      out.append("</");
      out.append(doc.TagName(frame.node));
      out.push_back('>');
      Newline(&out, options.indent);
      continue;
    }
    if (!text.empty()) out.append(EscapeXml(text));
    Newline(&out, options.indent);
    stack.push_back(Frame{frame.node, true});
    // Children in reverse so they pop in document order.
    std::vector<NodeId> children = doc.Children(frame.node);
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(Frame{*it, false});
    }
  }
  return out;
}

}  // namespace gkx::xml
