#include "mview/answer_cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

namespace gkx::mview {

namespace {

constexpr char kKeySeparator = '\x1f';

std::string MapKey(const std::string& doc_key, const std::string& canonical) {
  std::string key;
  key.reserve(doc_key.size() + 1 + canonical.size());
  key += doc_key;
  key += kKeySeparator;
  key += canonical;
  return key;
}

/// Approximate payload bytes of a cached answer (entry bookkeeping plus the
/// variable-size value payload; exactness is not the point, stability is).
int64_t AnswerBytes(const std::string& map_key,
                    const eval::Engine::Answer& answer) {
  int64_t bytes = static_cast<int64_t>(sizeof(CachedAnswer) + map_key.size() +
                                       answer.evaluator.size());
  switch (answer.value.type()) {
    case xpath::ValueType::kNodeSet:
      bytes += static_cast<int64_t>(answer.value.nodes().size() *
                                    sizeof(xml::NodeId));
      break;
    case xpath::ValueType::kString:
      bytes += static_cast<int64_t>(answer.value.string().size());
      break;
    case xpath::ValueType::kBoolean:
    case xpath::ValueType::kNumber:
      break;
  }
  return bytes;
}

}  // namespace

AnswerCache::AnswerCache(const Options& options) : options_(options) {
  size_t shards = options.shards == 0 ? 1 : options.shards;
  size_t capacity = options.capacity == 0 ? 1 : options.capacity;
  if (shards > capacity) shards = capacity;
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  per_shard_bytes_ = static_cast<int64_t>(
      (options.byte_budget == 0 ? 1 : options.byte_budget) / shards);
  if (per_shard_bytes_ < 1) per_shard_bytes_ = 1;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& doc_key) {
  // Shard by document key (not the full map key): one document's entries
  // share a shard, so OnDocumentUpdate walks exactly one bucket.
  return *shards_[std::hash<std::string>{}(doc_key) % shards_.size()];
}

void AnswerCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= it->cached->bytes;
  bytes_.fetch_sub(it->cached->bytes, std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  shard.map.erase(it->map_key);
  shard.lru.erase(it);
}

std::shared_ptr<const CachedAnswer> AnswerCache::Lookup(
    const std::string& doc_key, int64_t revision,
    const std::string& canonical_text) {
  Shard& shard = ShardFor(doc_key);
  const std::string key = MapKey(doc_key, canonical_text);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->revision != revision) {
    if (it->second->revision < revision) {
      // Stale straggler: revisions are store-wide monotonic, so an entry
      // older than the caller's snapshot can never become current again.
      EraseLocked(shard, it->second);
    }
    // A NEWER resident entry means the *caller* is the straggler (it holds
    // a pre-update document snapshot while a fresh insert already landed).
    // Leave the entry in place for current readers — evicting it would let
    // one slow reader thrash the cache under churn.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->cached;
}

void AnswerCache::Insert(const std::string& doc_key, int64_t revision,
                         const std::string& canonical_text,
                         const eval::Engine::Answer& answer,
                         const plan::Footprint& footprint) {
  std::string key = MapKey(doc_key, canonical_text);
  const int64_t bytes = AnswerBytes(key, answer);
  if (bytes > static_cast<int64_t>(options_.max_entry_bytes) ||
      bytes > per_shard_bytes_) {
    declined_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto cached = std::make_shared<CachedAnswer>();
  cached->answer = answer;
  cached->bytes = bytes;

  Shard& shard = ShardFor(doc_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    if (it->second->revision > revision) {
      // The mirror of the Lookup rule: a reader that evaluated against a
      // pre-update snapshot must not clobber the entry a current reader
      // already installed. Declined, so every miss still reconciles to an
      // insert or a decline.
      declined_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    EraseLocked(shard, it->second);
  }
  shard.lru.push_front(Entry{std::move(key), doc_key, revision, footprint,
                             std::move(cached)});
  shard.map.emplace(shard.lru.front().map_key, shard.lru.begin());
  shard.bytes += bytes;
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_ ||
         shard.bytes > per_shard_bytes_) {
    EraseLocked(shard, std::prev(shard.lru.end()));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool AnswerCache::RemapLocked(Entry& entry, const xml::DocumentDelta& delta) {
  if (delta.shift() == 0) return false;
  const eval::Value& value = entry.cached->answer.value;
  if (!value.is_node_set()) return false;
  const eval::NodeSet& nodes = value.nodes();
  // Retained entries provably select no region node (plan/footprint.hpp),
  // so the answer splits cleanly at the old region's end: ids before the
  // region stand, ids at or after it shift by the delta's constant.
  const xml::NodeId boundary = delta.begin + delta.old_count;
  auto first_shifted = std::lower_bound(nodes.begin(), nodes.end(), boundary);
  if (first_shifted == nodes.end()) return false;
  eval::NodeSet shifted(nodes.begin(), nodes.end());
  for (auto it = shifted.begin() + (first_shifted - nodes.begin());
       it != shifted.end(); ++it) {
    *it += delta.shift();
  }
  auto remapped = std::make_shared<CachedAnswer>();
  remapped->answer = entry.cached->answer;
  remapped->answer.value = eval::Value::Nodes(std::move(shifted));
  remapped->bytes = entry.cached->bytes;  // same node count, same accounting
  entry.cached = std::move(remapped);
  remapped_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

AnswerCache::UpdateImpact AnswerCache::OnDocumentUpdate(
    const std::string& doc_key, int64_t old_revision, int64_t new_revision,
    const std::vector<std::string>& changed_names,
    const xml::DocumentDelta* delta) {
  UpdateImpact impact;
  const bool replacement = old_revision >= 0 && new_revision >= 0;
  if (options_.mode == InvalidationMode::kFlushAll) {
    // The baseline mode: any update empties the whole cache. Shards are
    // locked one at a time (never nested) so concurrent updates in
    // different shards cannot deadlock.
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      while (!shard->lru.empty()) {
        EraseLocked(*shard, std::prev(shard->lru.end()));
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        ++impact.invalidated;
      }
    }
    return impact;
  }
  // The injected delta defect: subtree updates skip invalidation (and the
  // id remap) wholesale — entries survive stale. Whole-document updates are
  // untouched, so exactly the delta machinery is on trial.
  const bool fault_retain_all =
      options_.fault_ignore_footprints ||
      (options_.fault_ignore_delta && delta != nullptr);
  Shard& shard = ShardFor(doc_key);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.lru.begin(); it != shard.lru.end();) {
    auto next = std::next(it);
    if (it->doc_key == doc_key) {
      const bool retain =
          replacement && options_.mode == InvalidationMode::kFootprint &&
          it->revision == old_revision &&
          (fault_retain_all ||
           !it->footprint.AffectedBy(changed_names, delta));
      if (retain) {
        it->revision = new_revision;
        retained_.fetch_add(1, std::memory_order_relaxed);
        ++impact.retained;
        if (delta != nullptr && delta->structure_changed() &&
            !fault_retain_all) {
          if (RemapLocked(*it, *delta)) ++impact.remapped;
        }
      } else {
        EraseLocked(shard, it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        ++impact.invalidated;
      }
    }
    it = next;
  }
  return impact;
}

AnswerCache::Counters AnswerCache::counters() const {
  Counters out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.retained = retained_.load(std::memory_order_relaxed);
  out.remapped = remapped_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.declined = declined_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  out.entries = entries_.load(std::memory_order_relaxed);
  return out;
}

size_t AnswerCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void AnswerCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    while (!shard->lru.empty()) {
      EraseLocked(*shard, std::prev(shard->lru.end()));
    }
  }
}

}  // namespace gkx::mview
