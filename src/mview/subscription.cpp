#include "mview/subscription.hpp"

#include <algorithm>
#include <iterator>
#include <thread>
#include <utility>

#include "base/check.hpp"
#include "eval/engine.hpp"
#include "obs/trace.hpp"

namespace gkx::mview {

SubscriptionManager::SubscriptionManager(const service::DocumentStore* store,
                                         ThreadPool* pool)
    : store_(store), pool_(pool) {
  GKX_CHECK(store_ != nullptr && pool_ != nullptr);
}

SubscriptionManager::~SubscriptionManager() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_ = true;  // NotifyDocumentChanged / Subscribe schedule no more
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

bool SubscriptionManager::SelectorMatches(std::string_view selector,
                                          std::string_view key) {
  if (!selector.empty() && selector.back() == '*') {
    return key.substr(0, selector.size() - 1) ==
           selector.substr(0, selector.size() - 1);
  }
  return selector == key;
}

Result<int64_t> SubscriptionManager::Subscribe(
    std::string doc_selector, std::shared_ptr<const plan::Physical> plan,
    SubscriptionCallback callback) {
  if (plan == nullptr || callback == nullptr) {
    return InvalidArgumentError("subscription needs a plan and a callback");
  }
  if (xpath::StaticType(plan->query.root()) != xpath::ValueType::kNodeSet) {
    return InvalidArgumentError(
        "standing query '" + plan->canonical_text +
        "' is not node-set-typed: diffs of added/removed nodes need a "
        "node-set answer");
  }
  auto sub = std::make_shared<Subscription>();
  sub->selector = std::move(doc_selector);
  sub->plan = std::move(plan);
  sub->callback = std::move(callback);

  // Register FIRST, then snapshot the matching keys: a Put racing this
  // Subscribe either lands in the Keys() snapshot below or finds the
  // subscription registered and notifies it — never neither. Double
  // scheduling is absorbed by the scheduled-pair dedup (and a redundant
  // evaluation delivers an empty diff).
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return FailedPreconditionError("subscription manager is down");
    }
    sub->id = next_id_++;
    subs_.emplace(sub->id, sub);
  }
  // Initial snapshots: delivered state starts empty, so the first
  // evaluation of each matching document arrives as a pure-`added` diff.
  for (const std::string& key : store_->Keys()) {
    if (!SelectorMatches(sub->selector, key)) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) break;
    ScheduleLocked(sub, key, /*count_coalesced=*/false);
  }
  return sub->id;
}

bool SubscriptionManager::Unsubscribe(int64_t id) {
  std::shared_ptr<Subscription> sub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subs_.find(id);
    if (it == subs_.end()) return false;
    sub = std::move(it->second);
    subs_.erase(it);
  }
  if (sub->delivering.load(std::memory_order_acquire) ==
      std::this_thread::get_id()) {
    // Reentrant: called from inside this subscription's own callback (the
    // one-shot "deliver once then stop" pattern). This thread already holds
    // delivery_mu — re-locking would self-deadlock — so writing `dead` here
    // is both safe and sufficient: the delivery in progress is the last.
    sub->dead = true;
    return true;
  }
  // Blocks on an in-flight delivery; pending evaluations observe `dead`
  // before delivering.
  std::lock_guard<std::mutex> delivery_lock(sub->delivery_mu);
  sub->dead = true;
  return true;
}

void SubscriptionManager::NotifyDocumentChanged(
    const std::string& doc_key, const std::vector<std::string>& changed_names,
    bool all_changed, bool removed, const xml::DocumentDelta* delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return;
  for (const auto& [id, sub] : subs_) {
    if (!SelectorMatches(sub->selector, doc_key)) continue;
    if (!all_changed && !removed &&
        !sub->plan->footprint.AffectedBy(changed_names, delta) &&
        (delta == nullptr || delta->ids_stable)) {
      // The update provably cannot change this standing query's answer —
      // and, when it came as a subtree delta, it moved no NodeId either,
      // so the last delivered state is still spelled correctly.
      skipped_disjoint_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ScheduleLocked(sub, doc_key, /*count_coalesced=*/true);
  }
}

void SubscriptionManager::ScheduleLocked(
    const std::shared_ptr<Subscription>& sub, const std::string& doc_key,
    bool count_coalesced) {
  if (!scheduled_.emplace(sub->id, doc_key).second) {
    // Already queued: that evaluation will read the current document state
    // when it runs, so this churn is absorbed for free.
    if (count_coalesced) coalesced_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ++outstanding_;
  pool_->Submit([this, sub, doc_key] { RunEvaluation(sub, doc_key); });
}

void SubscriptionManager::RunEvaluation(
    const std::shared_ptr<Subscription>& sub, const std::string& doc_key) {
  // Clear the scheduled mark *before* reading the store: churn landing
  // after this point schedules a fresh evaluation rather than being
  // silently absorbed by one that may already have read the older state.
  {
    std::lock_guard<std::mutex> lock(mu_);
    scheduled_.erase({sub->id, doc_key});
  }

  {
    // Read-and-deliver under the per-subscription mutex: when two
    // evaluations of the same pair are in flight, each snapshots the store
    // only once it holds delivery_mu, so the delivery order IS the snapshot
    // order — a delivery can never regress the subscriber to an older
    // revision than one already delivered. (The cost — evaluation is
    // serialized per subscription — is the point; distinct subscriptions
    // still evaluate in parallel.)
    std::lock_guard<std::mutex> delivery_lock(sub->delivery_mu);
    sub->delivering.store(std::this_thread::get_id(),
                          std::memory_order_release);
    if (!sub->dead) {
      std::shared_ptr<const service::StoredDocument> stored =
          store_->Get(doc_key);
      eval::NodeSet current;
      int64_t revision = -1;
      if (stored != nullptr) {
        eval::Engine engine;
        const uint64_t t0 = obs::NowNs();
        auto run = engine.RunPlan(stored->doc(), *sub->plan);
        if (evaluation_observer_) {
          evaluation_observer_(static_cast<double>(obs::NowNs() - t0) * 1e-9);
        }
        evaluations_.fetch_add(1, std::memory_order_relaxed);
        // Subscribe() pinned the plan to node-set type; evaluation of a
        // typed plan cannot fail at runtime.
        GKX_CHECK(run.ok() && run->value.is_node_set());
        current = std::move(run->value).TakeNodes();
        revision = stored->revision();
      }
      eval::NodeSet& last = sub->delivered[doc_key];
      SubscriptionEvent event;
      event.subscription = sub->id;
      event.doc_key = doc_key;
      event.revision = revision;
      event.doc_removed = stored == nullptr;
      std::set_difference(current.begin(), current.end(), last.begin(),
                          last.end(), std::back_inserter(event.added));
      std::set_difference(last.begin(), last.end(), current.begin(),
                          current.end(), std::back_inserter(event.removed));
      if (!event.added.empty() || !event.removed.empty()) {
        last = std::move(current);
        fired_.fetch_add(1, std::memory_order_relaxed);
        sub->callback(event);
      }
      if (stored == nullptr) sub->delivered.erase(doc_key);
    }
    // Reset while still holding delivery_mu, so no other thread can ever
    // observe its own id in `delivering` without being the holder.
    sub->delivering.store(std::thread::id{}, std::memory_order_release);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (--outstanding_ == 0) idle_cv_.notify_all();
}

void SubscriptionManager::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

SubscriptionManager::Counters SubscriptionManager::counters() const {
  Counters out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.active = static_cast<int64_t>(subs_.size());
  }
  out.fired = fired_.load(std::memory_order_relaxed);
  out.coalesced = coalesced_.load(std::memory_order_relaxed);
  out.skipped_disjoint = skipped_disjoint_.load(std::memory_order_relaxed);
  out.evaluations = evaluations_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace gkx::mview
