// The materialized-answer layer: a cache of fully evaluated answers keyed
// by (document key, store revision, canonical plan text), sitting between
// the plan cache and plan execution in QueryService::Submit/SubmitBatch.
// Where the PlanCache amortizes lex/parse/classify/lower across repeated
// *texts*, the AnswerCache amortizes evaluation itself across repeated
// (document state, query) pairs — the dominant cost on every non-trivial
// plan, and exactly the work the paper shows is polynomial but far from
// free.
//
// Keying and staleness. The revision in the key is the DocumentStore's
// store-wide monotonic id, so a lookup can only hit when the entry was
// produced against the *exact* document state the caller snapshotted —
// serving stale data would require two distinct states to share a revision,
// which the monotonic counter rules out (no ABA across replace or
// remove/re-register). Entries whose revision no longer matches are dead
// weight, never a correctness hazard.
//
// Fine-grained invalidation. On a document update the service reports the
// changed-name set — for a whole-document replacement the union of the two
// revisions' tag sets, for a subtree update (DocumentStore::Update) just
// the names local to the edited region — plus, in the subtree case, the
// xml::DocumentDelta itself. Entries for that document whose plan
// footprint (plan/footprint.hpp) is affected per Footprint::AffectedBy are
// erased; unaffected entries keep their answers — their revision is bumped
// to the new id so they keep hitting, and when a structural delta shifted
// the preorder ids after the edited region, retained node-set answers are
// remapped by the delta's constant shift (the footprint argument
// guarantees no answer node lies inside the region). This is what lets a
// corpus ride out churn at region×name precision: replacing one <item>
// subtree of a big document does not cost the cached answers of queries
// whose footprints only mention names the edit never touched — even though
// those names (and the queries' answers) live in the same document.
// kFlushDocument / kFlushAll exist to measure exactly that difference
// (bench + golden tests), and Options::delta handling can be disabled
// upstream (QueryService::Options::delta_invalidation) to measure the
// whole-document name-only baseline.
//
// Sharding & budget: entries are sharded by document key (one mutex per
// shard), so invalidation walks a single shard and concurrent lookups on
// different documents rarely contend. Each shard evicts LRU-first when it
// exceeds its slice of the entry capacity or the byte budget (answers are
// accounted by approximate payload size; oversized answers are simply not
// cached).
//
// Thread safety: every public method may be called concurrently.

#ifndef GKX_MVIEW_ANSWER_CACHE_HPP_
#define GKX_MVIEW_ANSWER_CACHE_HPP_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/engine.hpp"
#include "plan/footprint.hpp"

namespace gkx::mview {

/// One cached evaluation (immutable; shared with in-flight readers, so
/// eviction and invalidation never tear an answer being served).
struct CachedAnswer {
  eval::Engine::Answer answer;
  int64_t bytes = 0;  // approximate payload accounting
};

class AnswerCache {
 public:
  enum class InvalidationMode {
    kFootprint,      // erase intersecting entries, retain + re-stamp the rest
    kFlushDocument,  // erase every entry of the updated document
    kFlushAll,       // erase everything on any update (the baseline to beat)
  };

  struct Options {
    /// Maximum cached entries across all shards.
    size_t capacity = 8192;
    /// Approximate total payload budget in bytes, across all shards.
    size_t byte_budget = 64u << 20;
    /// Independently locked buckets; entries shard by document key.
    size_t shards = 8;
    /// Answers larger than this are served but not cached.
    size_t max_entry_bytes = 4u << 20;
    InvalidationMode mode = InvalidationMode::kFootprint;
    /// Test-only fault injection: treat every update as footprint-disjoint,
    /// i.e. retain and re-stamp every entry regardless of its footprint.
    /// This *serves stale answers* after any intersecting churn — the soak
    /// harness uses it to prove its oracle catches exactly that defect.
    /// Must stay false in production.
    bool fault_ignore_footprints = false;
    /// Test-only fault injection for the delta pipeline: on subtree updates
    /// (delta present) skip delta-local invalidation entirely — every entry
    /// is retained, re-stamped, and NOT id-remapped. Whole-document updates
    /// keep working, so precisely the region×name machinery is broken:
    /// after an intersecting subtree edit the cache serves truly stale
    /// answers, which the edit-churn soak must catch with a reproducing
    /// seed. Must stay false in production.
    bool fault_ignore_delta = false;
  };

  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;          // includes revision-mismatch drops
    int64_t inserts = 0;
    int64_t invalidations = 0;   // entries erased by document updates
    int64_t retained = 0;        // entries re-stamped across an update
    int64_t remapped = 0;        // retained node-set answers id-shifted
                                 // across a structural subtree delta
    int64_t evictions = 0;       // capacity/byte-budget LRU victims
    int64_t declined = 0;        // not cached: oversized, or outdated by a
                                 // newer resident entry
    int64_t bytes = 0;           // current payload bytes (gauge)
    int64_t entries = 0;         // current entry count (gauge)

    int64_t Lookups() const { return hits + misses; }
    double HitRate() const {
      const int64_t lookups = Lookups();
      return lookups == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups);
    }
  };

  AnswerCache() : AnswerCache(Options{}) {}
  explicit AnswerCache(const Options& options);

  /// The cached answer for (doc_key, revision, canonical plan text), or
  /// nullptr. A resident entry OLDER than `revision` is dropped on the spot
  /// (monotonic revisions: it can never be served again) and counts as a
  /// miss; a NEWER one is left in place (the caller holds a pre-update
  /// document snapshot — current readers still want that entry) and also
  /// counts as a miss.
  std::shared_ptr<const CachedAnswer> Lookup(const std::string& doc_key,
                                             int64_t revision,
                                             const std::string& canonical_text);

  /// Caches `answer` for the triple. Oversized answers are declined; an
  /// existing entry for the same (doc_key, canonical) pair is replaced
  /// unless it carries a newer revision than `revision` (a straggling
  /// reader never clobbers a current answer).
  void Insert(const std::string& doc_key, int64_t revision,
              const std::string& canonical_text,
              const eval::Engine::Answer& answer,
              const plan::Footprint& footprint);

  /// What one OnDocumentUpdate call did — the per-update churn sample the
  /// observability layer feeds into its update histograms (the Counters
  /// fields with the same names are the running totals).
  struct UpdateImpact {
    int64_t invalidated = 0;
    int64_t retained = 0;
    int64_t remapped = 0;
  };

  /// Invalidation hook for a corpus mutation of `doc_key`.
  ///   * Replacement (old_revision/new_revision both >= 0): under
  ///     kFootprint, entries stamped old_revision whose footprint is
  ///     unaffected (Footprint::AffectedBy over `changed_names` and the
  ///     optional `delta`) are re-stamped to new_revision and retained —
  ///     remapping node-set answers across the delta's id shift when the
  ///     edit changed structure; every other entry of the document is
  ///     erased (entries at other revisions are unservable stragglers from
  ///     racing inserts).
  ///   * Install or removal (old_revision < 0 or new_revision < 0): every
  ///     entry of the document is erased — an install may follow a Remove
  ///     whose incarnation left entries behind.
  /// `changed_names` must be sorted and duplicate-free: the whole-document
  /// union when `delta` is null, the delta-local union otherwise. `delta`
  /// need only live for the duration of the call. Returns this update's
  /// churn impact (entries erased / retained / id-remapped).
  UpdateImpact OnDocumentUpdate(const std::string& doc_key,
                                int64_t old_revision, int64_t new_revision,
                                const std::vector<std::string>& changed_names,
                                const xml::DocumentDelta* delta = nullptr);

  Counters counters() const;

  size_t size() const;

  /// Hard bound on size() (per-shard capacity × shard count).
  size_t capacity_bound() const { return per_shard_capacity_ * shards_.size(); }

  void Clear();

 private:
  struct Entry {
    std::string map_key;   // doc_key + '\x1f' + canonical_text
    std::string doc_key;
    int64_t revision = 0;
    plan::Footprint footprint;
    std::shared_ptr<const CachedAnswer> cached;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    int64_t bytes = 0;
  };

  Shard& ShardFor(const std::string& doc_key);
  /// Drops `it` from `shard` (bookkeeping only; counters are the caller's).
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it);
  /// Re-bases a retained entry's node-set answer across a structural delta:
  /// every node at or after the old region's end shifts by delta.shift().
  /// The cached answer is immutable (shared with in-flight readers), so a
  /// shifted copy replaces it. Returns true when the answer actually moved.
  bool RemapLocked(Entry& entry, const xml::DocumentDelta& delta);

  Options options_;
  size_t per_shard_capacity_ = 0;
  int64_t per_shard_bytes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> retained_{0};
  std::atomic<int64_t> remapped_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> declined_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> entries_{0};
};

}  // namespace gkx::mview

#endif  // GKX_MVIEW_ANSWER_CACHE_HPP_
