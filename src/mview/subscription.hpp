// Standing queries: instead of re-polling a (document, query) pair, a
// subscriber registers a compiled plan against a document selector and is
// *pushed* diffed answers (added/removed node ids) whenever churn actually
// changes them. This is the push half of the mview layer; the AnswerCache
// is the pull half, and both key relevance on the same plan footprint.
//
// Model. A subscription is (selector, plan, callback). The selector matches
// document keys exactly, or by prefix with a trailing '*' ("doc*", or the
// universal "*"). The trailing '*' is reserved: it is always the prefix
// wildcard, so a document key that literally ends in '*' can only be
// reached by a prefix pattern, never matched exactly. Per matching
// document the manager tracks the last
// *delivered* node-set, starting from empty: the first evaluation delivers
// the full answer as `added`, every subsequent one delivers the symmetric
// difference, and a removed document delivers its last state as `removed`.
// Applying a subscription's events for one document in delivery order
// therefore always reconstructs some legally-observable snapshot — the
// invariant the soak harness checks against the naive oracle.
//
// Re-evaluation and coalescing. Churn notifications do not evaluate
// inline: affected (subscription, document) pairs are marked scheduled and
// re-evaluated on the shared ThreadPool. A pair that is already scheduled
// absorbs further churn for free (`coalesced` counter) — under rapid
// replacement of one document a subscriber sees a handful of consolidated
// diffs, not one callback per Put. A pair whose plan footprint is
// unaffected by the update is skipped outright (`skipped_disjoint`): by the
// footprint soundness argument (plan/footprint.hpp) its answer cannot have
// changed. For subtree updates (DocumentStore::Update) the test is the
// sharpened delta-local one, with one extra condition: skipping is only
// legal when the edit kept NodeIds stable — a structural edit shifts the
// ids behind the region, and the subscriber must be told the new ids even
// when the answer is "the same nodes", so those pairs re-evaluate and
// deliver the shift as a diff.
//
// Delivery ordering: per subscription, evaluation + diff + callback run
// under one mutex, so callbacks for a given subscription never overlap or
// reorder against the state they were diffed from. A callback MAY call
// Unsubscribe on its own subscription (the delivery in progress is then the
// last). Callbacks must not call back into the owning QueryService's
// corpus-mutation paths (they run on pool threads and may run concurrently
// with churn), and must not call Flush or destroy the manager — both wait
// for the very evaluation the callback is running inside.
//
// Thread safety: every public method may be called concurrently.

#ifndef GKX_MVIEW_SUBSCRIPTION_HPP_
#define GKX_MVIEW_SUBSCRIPTION_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.hpp"
#include "base/thread_pool.hpp"
#include "eval/node_set.hpp"
#include "plan/physical.hpp"
#include "service/document_store.hpp"

namespace gkx::mview {

/// One delivered diff. `revision` is the store revision the new state was
/// evaluated against (-1 when the document was removed).
struct SubscriptionEvent {
  int64_t subscription = 0;
  std::string doc_key;
  int64_t revision = -1;
  bool doc_removed = false;
  eval::NodeSet added;    // document order
  eval::NodeSet removed;  // document order
};

/// Must be thread-safe; invoked on ThreadPool workers.
using SubscriptionCallback = std::function<void(const SubscriptionEvent&)>;

class SubscriptionManager {
 public:
  struct Counters {
    int64_t active = 0;            // live subscriptions (gauge)
    int64_t fired = 0;             // callbacks delivered (non-empty diffs)
    int64_t coalesced = 0;         // churn absorbed by an already-scheduled pair
    int64_t skipped_disjoint = 0;  // churn skipped via footprint disjointness
    int64_t evaluations = 0;       // plan evaluations performed
  };

  /// Observes every plan evaluation a subscription performs (wall-clock
  /// seconds of the RunPlan itself). Must be thread-safe; runs on pool
  /// workers.
  using EvaluationObserver = std::function<void(double seconds)>;

  /// `store` and `pool` must outlive the manager (the QueryService owns all
  /// three and destroys the manager first).
  SubscriptionManager(const service::DocumentStore* store, ThreadPool* pool);

  /// Quiesces: no further evaluations are scheduled and all in-flight ones
  /// have finished (and delivered) before destruction returns.
  ~SubscriptionManager();

  SubscriptionManager(const SubscriptionManager&) = delete;
  SubscriptionManager& operator=(const SubscriptionManager&) = delete;

  /// Registers a standing query. The plan's root must be node-set-typed.
  /// The initial answer for every currently-matching document is delivered
  /// asynchronously as a pure-`added` event. Returns the subscription id.
  Result<int64_t> Subscribe(std::string doc_selector,
                            std::shared_ptr<const plan::Physical> plan,
                            SubscriptionCallback callback);

  /// Deactivates a subscription; returns false if the id is unknown. Once
  /// this returns, no further callbacks fire for the id (it blocks on a
  /// delivery already in progress). Safe to call from inside the
  /// subscription's own callback: the in-progress delivery completes and is
  /// the last.
  bool Unsubscribe(int64_t id);

  /// Churn notification (wired to DocumentStore's update listener).
  /// `all_changed` forces every matching subscription to re-evaluate
  /// (installs and removals); otherwise `changed_names` (sorted) gates per
  /// footprint — against the whole-document union when `delta` is null,
  /// against the region-local delta otherwise (see the header comment for
  /// the ids-stable condition). `delta` need only live for this call.
  void NotifyDocumentChanged(const std::string& doc_key,
                             const std::vector<std::string>& changed_names,
                             bool all_changed, bool removed,
                             const xml::DocumentDelta* delta = nullptr);

  /// Blocks until every evaluation scheduled so far has delivered. Only
  /// meaningful once concurrent churn has stopped (tests, soak teardown).
  void Flush();

  /// Installs the evaluation observer. Not thread-safe against in-flight
  /// evaluations — set it once, before traffic (the QueryService does this
  /// in its constructor). The observer must outlive the manager.
  void set_evaluation_observer(EvaluationObserver observer) {
    evaluation_observer_ = std::move(observer);
  }

  Counters counters() const;

  /// True if `selector` matches `key` (exact, or prefix via trailing '*').
  /// A trailing '*' in the selector is always the prefix wildcard — there
  /// is no escape, so keys ending in '*' have no exact-match selector.
  static bool SelectorMatches(std::string_view selector, std::string_view key);

 private:
  struct Subscription {
    int64_t id = 0;
    std::string selector;
    std::shared_ptr<const plan::Physical> plan;
    SubscriptionCallback callback;

    std::mutex delivery_mu;  // serializes evaluate+diff+deliver per sub
    // Thread currently holding delivery_mu, set around the evaluate+deliver
    // critical section: lets Unsubscribe detect it is running inside this
    // subscription's own callback and skip re-locking (self-deadlock).
    std::atomic<std::thread::id> delivering{};
    bool dead = false;       // guarded by delivery_mu
    // Last delivered node-set per document key; guarded by delivery_mu.
    std::unordered_map<std::string, eval::NodeSet> delivered;
  };

  /// Marks (sub, doc) scheduled and posts the evaluation; absorbs the
  /// notification when already scheduled. Caller must hold mu_.
  void ScheduleLocked(const std::shared_ptr<Subscription>& sub,
                      const std::string& doc_key, bool count_coalesced);

  /// Pool task: evaluate the plan on the current document state and deliver
  /// the diff against the last delivered state.
  void RunEvaluation(const std::shared_ptr<Subscription>& sub,
                     const std::string& doc_key);

  const service::DocumentStore* store_;
  ThreadPool* pool_;
  EvaluationObserver evaluation_observer_;  // may be null

  mutable std::mutex mu_;  // registry + schedule + outstanding
  std::condition_variable idle_cv_;
  std::unordered_map<int64_t, std::shared_ptr<Subscription>> subs_;
  std::set<std::pair<int64_t, std::string>> scheduled_;
  int64_t next_id_ = 1;
  int64_t outstanding_ = 0;
  bool shutdown_ = false;

  std::atomic<int64_t> fired_{0};
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> skipped_disjoint_{0};
  std::atomic<int64_t> evaluations_{0};
};

}  // namespace gkx::mview

#endif  // GKX_MVIEW_SUBSCRIPTION_HPP_
