// Directed graphs and BFS reachability — the substrate and ground truth for
// the Theorem 4.3 / Figure 5 reduction (graph reachability -> PF queries).

#ifndef GKX_GRAPHS_DIGRAPH_HPP_
#define GKX_GRAPHS_DIGRAPH_HPP_

#include <cstdint>
#include <vector>

#include "base/check.hpp"
#include "base/rng.hpp"

namespace gkx::graphs {

class Digraph {
 public:
  explicit Digraph(int32_t num_vertices) {
    GKX_CHECK_GE(num_vertices, 1);
    adjacency_.resize(static_cast<size_t>(num_vertices));
  }

  int32_t num_vertices() const { return static_cast<int32_t>(adjacency_.size()); }
  int64_t num_edges() const { return num_edges_; }

  /// Adds u -> v (duplicates ignored).
  void AddEdge(int32_t u, int32_t v);

  bool HasEdge(int32_t u, int32_t v) const;

  const std::vector<int32_t>& OutEdges(int32_t u) const {
    GKX_CHECK(u >= 0 && u < num_vertices());
    return adjacency_[static_cast<size_t>(u)];
  }

  /// Adds a self-loop to every vertex (the paper's trick to reduce
  /// reachability to fixed-length path existence).
  void AddSelfLoops();

 private:
  std::vector<std::vector<int32_t>> adjacency_;
  int64_t num_edges_ = 0;
};

/// BFS reachability set from src.
std::vector<bool> ReachableFrom(const Digraph& graph, int32_t src);

/// BFS reachability test (src reaches dst; trivially true for src == dst).
bool IsReachable(const Digraph& graph, int32_t src, int32_t dst);

/// G(n, p) random digraph (no self-loops unless added explicitly).
Digraph RandomDigraph(Rng* rng, int32_t n, double edge_probability);

/// Simple path 0 -> 1 -> ... -> n-1.
Digraph PathGraph(int32_t n);

/// Directed cycle over n vertices.
Digraph CycleGraph(int32_t n);

}  // namespace gkx::graphs

#endif  // GKX_GRAPHS_DIGRAPH_HPP_
