#include "graphs/digraph.hpp"

#include <algorithm>
#include <deque>

namespace gkx::graphs {

void Digraph::AddEdge(int32_t u, int32_t v) {
  GKX_CHECK(u >= 0 && u < num_vertices());
  GKX_CHECK(v >= 0 && v < num_vertices());
  auto& out = adjacency_[static_cast<size_t>(u)];
  if (std::find(out.begin(), out.end(), v) == out.end()) {
    out.push_back(v);
    ++num_edges_;
  }
}

bool Digraph::HasEdge(int32_t u, int32_t v) const {
  GKX_CHECK(u >= 0 && u < num_vertices());
  const auto& out = adjacency_[static_cast<size_t>(u)];
  return std::find(out.begin(), out.end(), v) != out.end();
}

void Digraph::AddSelfLoops() {
  for (int32_t v = 0; v < num_vertices(); ++v) AddEdge(v, v);
}

std::vector<bool> ReachableFrom(const Digraph& graph, int32_t src) {
  GKX_CHECK(src >= 0 && src < graph.num_vertices());
  std::vector<bool> seen(static_cast<size_t>(graph.num_vertices()), false);
  std::deque<int32_t> queue = {src};
  seen[static_cast<size_t>(src)] = true;
  while (!queue.empty()) {
    int32_t u = queue.front();
    queue.pop_front();
    for (int32_t v : graph.OutEdges(u)) {
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

bool IsReachable(const Digraph& graph, int32_t src, int32_t dst) {
  return ReachableFrom(graph, src)[static_cast<size_t>(dst)];
}

Digraph RandomDigraph(Rng* rng, int32_t n, double edge_probability) {
  Digraph graph(n);
  for (int32_t u = 0; u < n; ++u) {
    for (int32_t v = 0; v < n; ++v) {
      if (u != v && rng->Bernoulli(edge_probability)) graph.AddEdge(u, v);
    }
  }
  return graph;
}

Digraph PathGraph(int32_t n) {
  Digraph graph(n);
  for (int32_t v = 0; v + 1 < n; ++v) graph.AddEdge(v, v + 1);
  return graph;
}

Digraph CycleGraph(int32_t n) {
  Digraph graph(n);
  for (int32_t v = 0; v < n; ++v) graph.AddEdge(v, (v + 1) % n);
  return graph;
}

}  // namespace gkx::graphs
