// The XPath evaluation context: a ⟨node, position, size⟩ triple (§2.2 of the
// paper). position/size are 1-based; the initial context is
// ⟨root, 1, 1⟩.

#ifndef GKX_EVAL_CONTEXT_HPP_
#define GKX_EVAL_CONTEXT_HPP_

#include <cstdint>

#include "xml/document.hpp"

namespace gkx::eval {

struct Context {
  xml::NodeId node = 0;
  int64_t position = 1;
  int64_t size = 1;

  bool operator==(const Context& other) const {
    return node == other.node && position == other.position && size == other.size;
  }
};

/// Initial context for a document (⟨root, 1, 1⟩).
inline Context RootContext(const xml::Document& doc) {
  return Context{doc.root(), 1, 1};
}

/// Packs a context into a 64-bit memo key. Limits: |D| < 2^24 nodes and
/// positions/sizes < 2^20 — far beyond any workload here (checked).
inline uint64_t PackContext(const Context& ctx) {
  GKX_CHECK(ctx.node >= 0 && ctx.node < (1 << 24));
  GKX_CHECK(ctx.position >= 0 && ctx.position < (1 << 20));
  GKX_CHECK(ctx.size >= 0 && ctx.size < (1 << 20));
  return (static_cast<uint64_t>(ctx.node) << 40) |
         (static_cast<uint64_t>(ctx.position) << 20) |
         static_cast<uint64_t>(ctx.size);
}

}  // namespace gkx::eval

#endif  // GKX_EVAL_CONTEXT_HPP_
