#include "eval/recursive_base.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "base/string_util.hpp"

namespace gkx::eval {

using xpath::BinaryOp;
using xpath::Expr;
using xpath::Function;
using xpath::FunctionCall;
using xpath::PathExpr;
using xpath::UnionExpr;

Status RecursiveEvaluatorBase::Bind(const xml::Document& doc,
                                    const xpath::Query& query) {
  if (doc.empty()) return InvalidArgumentError("empty document");
  doc_ = &doc;
  query_ = &query;
  eval_count_.store(0, std::memory_order_relaxed);
  tests_.clear();
  tests_.reserve(static_cast<size_t>(query.num_steps()));
  for (int id = 0; id < query.num_steps(); ++id) {
    tests_.push_back(ResolvedTest::Resolve(doc, query.step(id).test));
  }
  return Prepare();
}

Result<Value> RecursiveEvaluatorBase::Evaluate(const xml::Document& doc,
                                               const xpath::Query& query,
                                               const Context& ctx) {
  GKX_RETURN_IF_ERROR(Bind(doc, query));
  return Eval(query.root(), ctx);
}

Status RecursiveEvaluatorBase::ApplyBoundStep(const xpath::Step& step,
                                              xml::NodeId origin,
                                              NodeSet* out) {
  GKX_CHECK(doc_ != nullptr && query_ != nullptr);
  // Single-pointer capture: fits std::function's small-buffer storage, so
  // the per-origin construction stays allocation-free.
  PredicateFn eval_predicate = [this](const Expr& expr,
                                      const Context& ctx) -> Result<bool> {
    auto value = Eval(expr, ctx);
    if (!value.ok()) return value.status();
    return PredicateTruth(*value, ctx);
  };
  return ApplyStep(*doc_, step, tests_[static_cast<size_t>(step.id)], origin,
                   eval_predicate, out);
}

bool RecursiveEvaluatorBase::LookupMemo(const Expr&, const Context&, Value*) {
  return false;
}

void RecursiveEvaluatorBase::StoreMemo(const Expr&, const Context&, const Value&) {}

Status RecursiveEvaluatorBase::Prepare() { return Status::Ok(); }

Result<Value> RecursiveEvaluatorBase::Eval(const Expr& expr, const Context& ctx) {
  Value memoized;
  if (LookupMemo(expr, ctx, &memoized)) return memoized;
  eval_count_.fetch_add(1, std::memory_order_relaxed);

  Result<Value> result = [&]() -> Result<Value> {
    switch (expr.kind()) {
      case Expr::Kind::kNumberLiteral:
        return Value::Number(expr.As<xpath::NumberLiteral>().value());
      case Expr::Kind::kStringLiteral:
        return Value::String(expr.As<xpath::StringLiteral>().value());
      case Expr::Kind::kBinary:
        return EvalBinary(expr.As<xpath::BinaryExpr>(), ctx);
      case Expr::Kind::kNegate: {
        auto operand = Eval(expr.As<xpath::NegateExpr>().operand(), ctx);
        if (!operand.ok()) return operand.status();
        return Value::Number(-operand->ToNumber(doc()));
      }
      case Expr::Kind::kFunctionCall:
        return EvalFunction(expr.As<FunctionCall>(), ctx);
      case Expr::Kind::kPath: {
        auto nodes = EvalPathFrom(expr.As<PathExpr>(), ctx.node);
        if (!nodes.ok()) return nodes.status();
        return Value::Nodes(std::move(nodes).value());
      }
      case Expr::Kind::kUnion: {
        const auto& u = expr.As<UnionExpr>();
        NodeSet merged;
        for (size_t i = 0; i < u.branch_count(); ++i) {
          auto branch = EvalNodeSetExpr(u.branch(i), ctx);
          if (!branch.ok()) return branch.status();
          merged = UnionSets(merged, *branch);
        }
        return Value::Nodes(std::move(merged));
      }
    }
    GKX_CHECK(false);
    return InternalError("unreachable");
  }();

  if (result.ok()) StoreMemo(expr, ctx, *result);
  return result;
}

Result<NodeSet> RecursiveEvaluatorBase::EvalNodeSetExpr(const Expr& expr,
                                                        const Context& ctx) {
  auto value = Eval(expr, ctx);
  if (!value.ok()) return value.status();
  if (!value->is_node_set()) {
    return InvalidArgumentError("expected a node-set operand, got " +
                                std::string(xpath::ValueTypeName(value->type())));
  }
  return std::move(value).value().TakeNodes();
}

Result<Value> RecursiveEvaluatorBase::EvalBinary(const xpath::BinaryExpr& binary,
                                                 const Context& ctx) {
  const BinaryOp op = binary.op();
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    auto lhs = Eval(binary.lhs(), ctx);
    if (!lhs.ok()) return lhs.status();
    const bool lhs_true = lhs->ToBoolean();
    if (op == BinaryOp::kAnd && !lhs_true) return Value::Boolean(false);
    if (op == BinaryOp::kOr && lhs_true) return Value::Boolean(true);
    auto rhs = Eval(binary.rhs(), ctx);
    if (!rhs.ok()) return rhs.status();
    return Value::Boolean(rhs->ToBoolean());
  }
  auto lhs = Eval(binary.lhs(), ctx);
  if (!lhs.ok()) return lhs.status();
  auto rhs = Eval(binary.rhs(), ctx);
  if (!rhs.ok()) return rhs.status();
  if (xpath::IsRelationalOp(op)) {
    return Value::Boolean(CompareValues(doc(), op, *lhs, *rhs));
  }
  return Value::Number(
      ArithmeticOp(op, lhs->ToNumber(doc()), rhs->ToNumber(doc())));
}

Result<Value> RecursiveEvaluatorBase::EvalFunction(const FunctionCall& call,
                                                   const Context& ctx) {
  auto string_arg_or_context = [&](size_t index) -> Result<std::string> {
    if (call.arg_count() > index) {
      auto value = Eval(call.arg(index), ctx);
      if (!value.ok()) return value.status();
      return value->ToString(doc());
    }
    return doc().StringValue(ctx.node);
  };

  switch (call.function()) {
    case Function::kPosition:
      return Value::Number(static_cast<double>(ctx.position));
    case Function::kLast:
      return Value::Number(static_cast<double>(ctx.size));
    case Function::kTrue:
      return Value::Boolean(true);
    case Function::kFalse:
      return Value::Boolean(false);
    case Function::kNot: {
      auto arg = Eval(call.arg(0), ctx);
      if (!arg.ok()) return arg.status();
      return Value::Boolean(!arg->ToBoolean());
    }
    case Function::kBoolean: {
      auto arg = Eval(call.arg(0), ctx);
      if (!arg.ok()) return arg.status();
      return Value::Boolean(arg->ToBoolean());
    }
    case Function::kNumber: {
      if (call.arg_count() == 0) {
        return Value::Number(ParseXPathNumber(doc().StringValue(ctx.node)));
      }
      auto arg = Eval(call.arg(0), ctx);
      if (!arg.ok()) return arg.status();
      return Value::Number(arg->ToNumber(doc()));
    }
    case Function::kString: {
      auto text = string_arg_or_context(0);
      if (!text.ok()) return text.status();
      return Value::String(std::move(text).value());
    }
    case Function::kCount: {
      // Count pushdown: a single predicate-free step needs no node set —
      // stream the axis and count matches (duplicate-free by construction,
      // so the materialize + SortUnique of the general path is pure
      // overhead here).
      const Expr& arg = call.arg(0);
      if (arg.kind() == Expr::Kind::kPath) {
        const auto& path = arg.As<PathExpr>();
        if (!path.absolute() && path.step_count() == 1 &&
            path.step(0).predicates.empty()) {
          const xpath::Step& step = path.step(0);
          const ResolvedTest& test = tests_[static_cast<size_t>(step.id)];
          int64_t count = 0;
          ForEachOnAxis(doc(), ctx.node, step.axis, [&](xml::NodeId v) {
            if (test.Matches(doc(), v)) ++count;
            return true;
          });
          return Value::Number(static_cast<double>(count));
        }
      }
      auto nodes = EvalNodeSetExpr(call.arg(0), ctx);
      if (!nodes.ok()) return nodes.status();
      return Value::Number(static_cast<double>(nodes->size()));
    }
    case Function::kSum: {
      auto nodes = EvalNodeSetExpr(call.arg(0), ctx);
      if (!nodes.ok()) return nodes.status();
      double sum = 0.0;
      for (xml::NodeId v : *nodes) {
        sum += ParseXPathNumber(doc().StringValue(v));
      }
      return Value::Number(sum);
    }
    case Function::kConcat: {
      std::string out;
      for (size_t i = 0; i < call.arg_count(); ++i) {
        auto value = Eval(call.arg(i), ctx);
        if (!value.ok()) return value.status();
        out += value->ToString(doc());
      }
      return Value::String(std::move(out));
    }
    case Function::kContains: {
      auto hay = Eval(call.arg(0), ctx);
      if (!hay.ok()) return hay.status();
      auto needle = Eval(call.arg(1), ctx);
      if (!needle.ok()) return needle.status();
      return Value::Boolean(hay->ToString(doc()).find(needle->ToString(doc())) !=
                            std::string::npos);
    }
    case Function::kStartsWith: {
      auto hay = Eval(call.arg(0), ctx);
      if (!hay.ok()) return hay.status();
      auto prefix = Eval(call.arg(1), ctx);
      if (!prefix.ok()) return prefix.status();
      const std::string h = hay->ToString(doc());
      const std::string p = prefix->ToString(doc());
      return Value::Boolean(h.size() >= p.size() && h.compare(0, p.size(), p) == 0);
    }
    case Function::kStringLength: {
      auto text = string_arg_or_context(0);
      if (!text.ok()) return text.status();
      return Value::Number(static_cast<double>(text->size()));
    }
    case Function::kNormalizeSpace: {
      auto text = string_arg_or_context(0);
      if (!text.ok()) return text.status();
      return Value::String(NormalizeSpace(*text));
    }
    case Function::kSubstring: {
      auto text = Eval(call.arg(0), ctx);
      if (!text.ok()) return text.status();
      auto start = Eval(call.arg(1), ctx);
      if (!start.ok()) return start.status();
      const std::string s = text->ToString(doc());
      // §4.2: character p is kept iff round(start) <= p and (3-arg form)
      // p < round(start) + round(length); NaN comparisons are false.
      const double from = XPathRound(start->ToNumber(doc()));
      double limit = std::numeric_limits<double>::infinity();
      if (call.arg_count() == 3) {
        auto length = Eval(call.arg(2), ctx);
        if (!length.ok()) return length.status();
        limit = from + XPathRound(length->ToNumber(doc()));
      }
      std::string out;
      for (size_t i = 0; i < s.size(); ++i) {
        const double p = static_cast<double>(i + 1);
        if (p >= from && p < limit) out += s[i];
      }
      return Value::String(std::move(out));
    }
    case Function::kSubstringBefore:
    case Function::kSubstringAfter: {
      auto hay = Eval(call.arg(0), ctx);
      if (!hay.ok()) return hay.status();
      auto needle = Eval(call.arg(1), ctx);
      if (!needle.ok()) return needle.status();
      const std::string h = hay->ToString(doc());
      const std::string n = needle->ToString(doc());
      const size_t at = h.find(n);
      if (at == std::string::npos) return Value::String("");
      if (call.function() == Function::kSubstringBefore) {
        return Value::String(h.substr(0, at));
      }
      return Value::String(h.substr(at + n.size()));
    }
    case Function::kTranslate: {
      auto text = Eval(call.arg(0), ctx);
      if (!text.ok()) return text.status();
      auto from = Eval(call.arg(1), ctx);
      if (!from.ok()) return from.status();
      auto to = Eval(call.arg(2), ctx);
      if (!to.ok()) return to.status();
      const std::string s = text->ToString(doc());
      const std::string f = from->ToString(doc());
      const std::string t = to->ToString(doc());
      std::string out;
      out.reserve(s.size());
      for (char c : s) {
        const size_t at = f.find(c);
        if (at == std::string::npos) {
          out += c;  // not mentioned: kept
        } else if (at < t.size()) {
          out += t[at];  // mapped
        }  // else: mentioned with no replacement: dropped
      }
      return Value::String(std::move(out));
    }
    case Function::kFloor: {
      auto arg = Eval(call.arg(0), ctx);
      if (!arg.ok()) return arg.status();
      return Value::Number(std::floor(arg->ToNumber(doc())));
    }
    case Function::kCeiling: {
      auto arg = Eval(call.arg(0), ctx);
      if (!arg.ok()) return arg.status();
      return Value::Number(std::ceil(arg->ToNumber(doc())));
    }
    case Function::kRound: {
      auto arg = Eval(call.arg(0), ctx);
      if (!arg.ok()) return arg.status();
      return Value::Number(XPathRound(arg->ToNumber(doc())));
    }
    case Function::kName:
    case Function::kLocalName: {
      // No namespaces in this model, so name == local-name.
      xml::NodeId target = ctx.node;
      if (call.arg_count() == 1) {
        auto nodes = EvalNodeSetExpr(call.arg(0), ctx);
        if (!nodes.ok()) return nodes.status();
        if (nodes->empty()) return Value::String("");
        target = nodes->front();
      }
      return Value::String(std::string(doc().TagName(target)));
    }
  }
  GKX_CHECK(false);
  return InternalError("unreachable");
}

Result<NodeSet> RecursiveEvaluatorBase::EvalPathFrom(const PathExpr& path,
                                                     xml::NodeId origin) {
  NodeSet current;
  current.push_back(path.absolute() ? doc().root() : origin);
  PredicateFn eval_predicate = [this](const Expr& expr,
                                      const Context& ctx) -> Result<bool> {
    auto value = Eval(expr, ctx);
    if (!value.ok()) return value.status();
    return PredicateTruth(*value, ctx);
  };
  for (size_t s = 0; s < path.step_count(); ++s) {
    const xpath::Step& step = path.step(s);
    NodeSet next;
    for (xml::NodeId x : current) {
      GKX_RETURN_IF_ERROR(ApplyStep(doc(), step,
                                    tests_[static_cast<size_t>(step.id)], x,
                                    eval_predicate, &next));
    }
    SortUnique(&next);
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace gkx::eval
